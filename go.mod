module pmv

go 1.22

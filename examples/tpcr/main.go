// Tpcr runs the paper's Section 4.2 workload end to end: it loads the
// TPC-R-like customer/orders/lineitem dataset, builds PMVs for the T1
// and T2 templates, replays a skewed query stream, and reports hit
// probability, partial-result latency, and PMV overhead versus query
// execution time.
//
//	go run ./examples/tpcr [-scale 0.002] [-queries 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pmv"
	"pmv/internal/core"
	"pmv/internal/engine"
	"pmv/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.002, "TPC-R-like scale factor")
	queries := flag.Int("queries", 200, "queries per template")
	flag.Parse()

	dir, err := os.MkdirTemp("", "pmv-tpcr")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := engine.Open(dir, engine.Options{BufferPoolPages: 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	fmt.Printf("loading TPC-R-like data at s=%g...\n", *scale)
	start := time.Now()
	cfg, err := workload.LoadTPCR(eng, workload.TPCRConfig{ScaleFactor: *scale, Seed: 1})
	check(err)
	fmt.Printf("loaded %d customers, %d orders, %d lineitems in %v\n",
		cfg.Customers(), cfg.Orders(), cfg.Lineitems(), time.Since(start))

	t1 := workload.TemplateT1()
	t2 := workload.TemplateT2()
	v1, err := core.NewView(eng, core.Config{Template: t1, MaxEntries: 20000, TuplesPerBCP: 3})
	check(err)
	v2, err := core.NewView(eng, core.Config{Template: t2, MaxEntries: 20000, TuplesPerBCP: 3})
	check(err)

	gen := workload.NewQueryGen(cfg, 99, 0.05)

	type agg struct {
		partialLat, overhead, exec time.Duration
		partials, totals           int
	}
	replay := func(v *core.View, mk func(hot bool) *pmv.Query) agg {
		var a agg
		for i := 0; i < *queries; i++ {
			rep, err := v.ExecutePartial(mk(true), func(core.Result) error { return nil })
			check(err)
			a.partialLat += rep.PartialLatency
			a.overhead += rep.Overhead
			a.exec += rep.ExecLatency
			a.partials += rep.PartialTuples
			a.totals += rep.TotalTuples
		}
		return a
	}

	fmt.Printf("\nreplaying %d T1 queries (h=4: 2 dates x 2 suppliers)...\n", *queries)
	a1 := replay(v1, func(hot bool) *pmv.Query { return gen.T1Query(t1, 2, 2, hot) })
	report("T1", v1, a1.partials, a1.totals, a1.partialLat, a1.overhead, a1.exec, *queries)

	fmt.Printf("\nreplaying %d T2 queries (h=4: 2 dates x 2 suppliers x 1 nation)...\n", *queries)
	a2 := replay(v2, func(hot bool) *pmv.Query { return gen.T2Query(t2, 2, 2, 1, hot) })
	report("T2", v2, a2.partials, a2.totals, a2.partialLat, a2.overhead, a2.exec, *queries)
}

func report(name string, v *core.View, partials, totals int, pl, oh, ex time.Duration, n int) {
	st := v.Stats()
	div := time.Duration(n)
	fmt.Printf("%s: hit=%.2f  partial tuples=%d/%d  avg partial-latency=%v  avg overhead=%v  avg exec=%v (overhead is %.4f%% of exec)\n",
		name, st.HitProbability(), partials, totals, pl/div, oh/div, ex/div,
		100*float64(oh)/float64(ex))
	fmt.Printf("%s view: %d entries, %d tuples, ~%d KiB\n",
		name, v.Len(), v.TupleCount(), v.SizeBytes()/1024)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

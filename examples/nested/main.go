// Nested demonstrates the Section 3.6 nested-query extension: a
// two-level query whose outer rows are cheap to produce but whose
// EXISTS subquery is expensive to check. A PMV built for the
// subquery's template can prove existence from cache alone — the
// checks it answers cost microseconds instead of a full subquery
// execution, so partial results of the whole nested query appear
// quickly.
//
// Scenario: "list suppliers that have at least one delayed shipment
// in a given region". The outer query scans suppliers; the EXISTS
// subquery probes a large shipments table.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"pmv"
)

func main() {
	dir, err := os.MkdirTemp("", "pmv-nested")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := pmv.Open(dir, pmv.Options{})
	check(err)
	defer db.Close()

	check(db.CreateRelation("supplier",
		pmv.Col("skey", pmv.TypeInt),
		pmv.Col("name", pmv.TypeString)))
	check(db.CreateRelation("shipment",
		pmv.Col("skey", pmv.TypeInt),
		pmv.Col("region", pmv.TypeInt),
		pmv.Col("delayed", pmv.TypeInt), // 0/1
		pmv.Col("weight", pmv.TypeFloat)))
	check(db.CreateIndex("shipment", "skey"))
	check(db.CreateIndex("shipment", "region"))

	rng := rand.New(rand.NewSource(4))
	const suppliers = 200
	const shipments = 40000
	for s := 0; s < suppliers; s++ {
		check(db.Insert("supplier", pmv.Int(int64(s)), pmv.Str(fmt.Sprintf("Supplier#%03d", s))))
	}
	for i := 0; i < shipments; i++ {
		delayed := int64(0)
		if rng.Intn(20) == 0 {
			delayed = 1
		}
		check(db.Insert("shipment",
			pmv.Int(rng.Int63n(suppliers)),
			pmv.Int(rng.Int63n(10)),
			pmv.Int(delayed),
			pmv.Float(rng.Float64()*1000)))
	}

	// The subquery template: delayed shipments of supplier S in region R.
	sub := pmv.NewTemplate("delayed_shipments").
		From("shipment").
		Select("shipment.weight").
		Fixed("shipment.delayed", "=", pmv.Int(1)).
		WhereEq("shipment.skey").
		WhereEq("shipment.region").
		MustBuild()
	view, err := db.CreatePartialView(sub, pmv.ViewOptions{
		MaxEntries:   2000,
		TuplesPerBCP: 1, // existence needs one witness
	})
	check(err)

	subQuery := func(skey, region int64) *pmv.Query {
		return pmv.NewQuery(sub).In(0, pmv.Int(skey)).In(1, pmv.Int(region)).Query()
	}

	// The nested query, region 3: for each supplier, EXISTS(subquery).
	runNested := func(label string) {
		start := time.Now()
		proven, executed, hits := 0, 0, 0
		for s := int64(0); s < suppliers; s++ {
			q := subQuery(s, 3)
			exists, ok, err := view.ExistsFast(q)
			check(err)
			if ok && exists {
				proven++ // answered from cache, no execution
				hits++
				continue
			}
			// Cache is silent: execute the subquery (and let it warm
			// the view for next time).
			executed++
			found := false
			_, err = view.ExecutePartial(q, func(pmv.Result) error {
				found = true
				return nil
			})
			check(err)
			if found {
				hits++
			}
		}
		fmt.Printf("%s: %d suppliers with delayed shipments in region 3; "+
			"%d EXISTS checks proven from cache, %d executed (%v)\n",
			label, hits, proven, executed, time.Since(start))
	}

	runNested("cold run")
	runNested("warm run")
	fmt.Printf("view: %d entries, %d cached witnesses\n", view.Len(), view.TupleCount())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Adaptivity demonstrates Section 3.2's design goal that a PMV tracks
// a drifting query pattern: the hot set of basic condition parts
// changes abruptly mid-run, and the view's CLOCK/2Q management evicts
// the stale entries and re-fills with the new hot set — no manual
// invalidation, no maintenance process.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"pmv"
	"pmv/internal/cache"
)

const (
	categories = 50
	regions    = 50
	viewCap    = 16 // deliberately tight: forces replacement
	phaseLen   = 300
)

func main() {
	for _, policy := range []cache.PolicyKind{pmv.PolicyCLOCK, pmv.Policy2Q} {
		run(policy)
	}
}

func run(policy cache.PolicyKind) {
	dir, err := os.MkdirTemp("", "pmv-adaptivity")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := pmv.Open(dir, pmv.Options{})
	check(err)
	defer db.Close()

	check(db.CreateRelation("listing",
		pmv.Col("id", pmv.TypeInt),
		pmv.Col("category", pmv.TypeInt),
		pmv.Col("region", pmv.TypeInt),
		pmv.Col("price", pmv.TypeFloat),
	))
	check(db.CreateIndex("listing", "category"))
	check(db.CreateIndex("listing", "region"))

	rng := rand.New(rand.NewSource(5))
	for id := 0; id < 20000; id++ {
		check(db.Insert("listing",
			pmv.Int(int64(id)),
			pmv.Int(rng.Int63n(categories)),
			pmv.Int(rng.Int63n(regions)),
			pmv.Float(rng.Float64()*1000),
		))
	}

	tpl := pmv.NewTemplate("browse").
		From("listing").
		Select("listing.id", "listing.price").
		WhereEq("listing.category").
		WhereEq("listing.region").
		MustBuild()

	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{
		MaxEntries:   viewCap,
		TuplesPerBCP: 2,
		Policy:       policy,
	})
	check(err)

	// Two disjoint hot sets of (category, region) pairs.
	hotA := hotPairs(rng, 0)
	hotB := hotPairs(rng, 25)

	fmt.Printf("--- policy %s: hot set A for %d queries, then hot set B ---\n", policy, phaseLen)
	window := 0
	windowHits := 0
	for i := 0; i < 2*phaseLen; i++ {
		hot := hotA
		if i >= phaseLen {
			hot = hotB
		}
		pair := hot[rng.Intn(len(hot))]
		q := pmv.NewQuery(tpl).
			In(0, pmv.Int(pair[0])).
			In(1, pmv.Int(pair[1])).
			Query()
		rep, err := view.ExecutePartial(q, func(pmv.Result) error { return nil })
		check(err)
		if rep.Hit {
			windowHits++
		}
		window++
		if window == 50 {
			phase := "A"
			if i >= phaseLen {
				phase = "B"
			}
			fmt.Printf("  queries %4d-%4d (phase %s): hit rate %.2f\n", i-49, i, phase, float64(windowHits)/50)
			window, windowHits = 0, 0
		}
	}
	st := view.Stats()
	fmt.Printf("  overall: hit=%.2f entries-evicted=%d\n\n", st.HitProbability(), st.EntriesEvicted)
}

// hotPairs returns 20 (category, region) pairs drawn from a band of
// the pair space, offset to make the two phases disjoint.
func hotPairs(rng *rand.Rand, offset int64) [][2]int64 {
	out := make([][2]int64, 20)
	for i := range out {
		out[i] = [2]int64{
			(offset + rng.Int63n(20)) % categories,
			(offset + rng.Int63n(20)) % regions,
		}
	}
	return out
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

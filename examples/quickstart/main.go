// Quickstart: define two relations, a query template, and a partial
// materialized view; watch the second execution of a query deliver
// partial results from cache in microseconds while the full answer
// streams behind it.
package main

import (
	"fmt"
	"log"
	"os"

	"pmv"
)

func main() {
	dir, err := os.MkdirTemp("", "pmv-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := pmv.Open(dir, pmv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Schema: products and their current sale discounts.
	check(db.CreateRelation("product",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("category", pmv.TypeInt),
		pmv.Col("name", pmv.TypeString),
	))
	check(db.CreateRelation("sale",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("store", pmv.TypeInt),
		pmv.Col("discount", pmv.TypeInt),
	))
	check(db.CreateIndex("product", "pid"))
	check(db.CreateIndex("product", "category"))
	check(db.CreateIndex("sale", "pid"))
	check(db.CreateIndex("sale", "store"))

	// Data: 2000 products in 20 categories; sales in 10 stores.
	for pid := 0; pid < 2000; pid++ {
		check(db.Insert("product",
			pmv.Int(int64(pid)), pmv.Int(int64(pid%20)), pmv.Str(fmt.Sprintf("product-%04d", pid))))
		check(db.Insert("sale",
			pmv.Int(int64(pid)), pmv.Int(int64((pid/20)%10)), pmv.Int(int64(5+pid%45))))
	}

	// Template: products of given categories on sale in given stores.
	tpl := pmv.NewTemplate("on_sale").
		From("product", "sale").
		Select("product.name", "sale.discount").
		Join("product.pid", "sale.pid").
		WhereEq("product.category").
		WhereEq("sale.store").
		MustBuild()

	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{
		MaxEntries:   1000,
		TuplesPerBCP: 3,
	})
	check(err)

	q := pmv.NewQuery(tpl).
		In(0, pmv.Int(3), pmv.Int(7)). // categories
		In(1, pmv.Int(2), pmv.Int(5)). // stores
		Query()

	for run := 1; run <= 2; run++ {
		fmt.Printf("--- run %d ---\n", run)
		partial, total := 0, 0
		rep, err := view.ExecutePartial(q, func(r pmv.Result) error {
			total++
			if r.Partial {
				partial++
				if partial <= 3 {
					fmt.Printf("  partial (from PMV): %v\n", r.Tuple)
				}
			}
			return nil
		})
		check(err)
		fmt.Printf("  hit=%v  partial=%d/%d tuples  partial-latency=%v  exec=%v  overhead=%v\n",
			rep.Hit, partial, total, rep.PartialLatency, rep.ExecLatency, rep.Overhead)
	}

	st := view.Stats()
	fmt.Printf("view: %d entries, %d cached tuples, hit probability %.2f\n",
		view.Len(), view.TupleCount(), st.HitProbability())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Callcenter reproduces the paper's Section 1 motivating scenario: a
// retailer's call-center operator looks up items related to a
// customer's recent purchases that are currently on sale with a
// discount of at least p%, where p depends on the customer's loyalty
// tier. The operator needs the first offers before the customer hangs
// up — partial results within a millisecond — while the complete list
// streams in behind.
//
// The discount condition is interval-form: the loyalty tiers' cutoffs
// (10%, 20%, 30%, 40%) are natural dividing values, exactly the
// "from/to value lists" discretization of Section 3.1.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"pmv"
)

func main() {
	dir, err := os.MkdirTemp("", "pmv-callcenter")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := pmv.Open(dir, pmv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// related(item, related_item): the catalog's cross-sell graph.
	// sale(item, store, discount): items currently on sale.
	check(db.CreateRelation("related",
		pmv.Col("item", pmv.TypeInt),
		pmv.Col("rel_item", pmv.TypeInt),
	))
	check(db.CreateRelation("sale",
		pmv.Col("item", pmv.TypeInt),
		pmv.Col("store", pmv.TypeInt),
		pmv.Col("discount", pmv.TypeInt),
	))
	check(db.CreateIndex("related", "item"))
	check(db.CreateIndex("related", "rel_item"))
	check(db.CreateIndex("sale", "item"))

	// 5000 items; each related to 6 others; 40% of items on sale with
	// discounts 1..50%.
	rng := rand.New(rand.NewSource(2))
	const items = 5000
	for it := 0; it < items; it++ {
		for k := 0; k < 6; k++ {
			check(db.Insert("related", pmv.Int(int64(it)), pmv.Int(rng.Int63n(items))))
		}
		if rng.Intn(10) < 4 {
			check(db.Insert("sale",
				pmv.Int(int64(it)), pmv.Int(rng.Int63n(20)), pmv.Int(1+rng.Int63n(50))))
		}
	}

	// Template: offers for a purchased item at a minimum discount.
	tpl := pmv.NewTemplate("offers").
		From("related", "sale").
		Select("related.rel_item", "sale.discount").
		Join("related.rel_item", "sale.item").
		WhereEq("related.item").
		WhereInterval("sale.discount").
		MustBuild()

	// Loyalty tiers: platinum ≥ 10%, gold ≥ 20%, silver ≥ 30%,
	// bronze ≥ 40% — the tier cutoffs are the dividing values.
	tiers := map[string]int64{"platinum": 10, "gold": 20, "silver": 30, "bronze": 40}
	dividers := []pmv.Value{pmv.Int(10), pmv.Int(20), pmv.Int(30), pmv.Int(40)}

	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{
		MaxEntries:   2000,
		TuplesPerBCP: 4,
		Dividers:     map[int][]pmv.Value{1: dividers},
	})
	check(err)

	offerQuery := func(purchased []int64, minDiscount int64) *pmv.Query {
		qb := pmv.NewQuery(tpl)
		vals := make([]pmv.Value, len(purchased))
		for i, p := range purchased {
			vals[i] = pmv.Int(p)
		}
		qb.In(0, vals...)
		qb.Range(1, pmv.Ival(pmv.Int(minDiscount), pmv.Null(), true, false)) // [min, +inf)
		return qb.Query()
	}

	// Simulate a shift of calls: a popular item (42) shows up in most
	// carts, so its offers become hot.
	fmt.Println("simulating 30 calls...")
	var firstLatencies []time.Duration
	for call := 0; call < 30; call++ {
		purchased := []int64{42, rng.Int63n(items)}
		tier := []string{"platinum", "gold", "silver", "bronze"}[rng.Intn(4)]
		q := offerQuery(purchased, tiers[tier])

		var firstOffer time.Duration
		start := time.Now()
		n := 0
		rep, err := view.ExecutePartial(q, func(r pmv.Result) error {
			if n == 0 {
				firstOffer = time.Since(start)
			}
			n++
			return nil
		})
		check(err)
		if n > 0 {
			firstLatencies = append(firstLatencies, firstOffer)
		}
		if call < 3 || call > 26 {
			fmt.Printf("  call %2d (%-8s): %2d offers, first after %-10v hit=%v partial=%d\n",
				call, tier, n, firstOffer, rep.Hit, rep.PartialTuples)
		}
	}

	st := view.Stats()
	fmt.Printf("\nview: %d entries, %d tuples, hit probability %.2f\n",
		view.Len(), view.TupleCount(), st.HitProbability())

	// The sale table churns constantly; deferred maintenance keeps the
	// view consistent without slowing the updates.
	fmt.Println("\nending every sale with a discount over 40% (delete maintenance)...")
	nDel, err := db.Delete("sale", func(t pmv.Tuple) bool { return t[2].Int64() > 40 })
	check(err)
	fmt.Printf("deleted %d sale rows; view purged %d cached tuples\n",
		nDel, view.Stats().TuplesPurged)

	// Popularity ranking extension: the hottest cached offers.
	fmt.Println("\nhottest cached offers:")
	for _, rt := range view.HottestTuples(5) {
		fmt.Printf("  %v (entry accessed %d times)\n", rt.Tuple, rt.Accesses)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

package pmv_test

import (
	"fmt"
	"log"
	"os"

	"pmv"
)

// Example demonstrates the full PMV lifecycle: schema, template, view,
// and the two-phase partial/remaining delivery.
func Example() {
	dir, err := os.MkdirTemp("", "pmv-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := pmv.Open(dir, pmv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.CreateRelation("product",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("category", pmv.TypeInt)))
	must(db.CreateRelation("sale",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("discount", pmv.TypeInt)))
	must(db.CreateIndex("product", "category"))
	must(db.CreateIndex("sale", "pid"))

	for pid := int64(0); pid < 100; pid++ {
		must(db.Insert("product", pmv.Int(pid), pmv.Int(pid%4)))
		must(db.Insert("sale", pmv.Int(pid), pmv.Int(pid%30)))
	}

	tpl := pmv.NewTemplate("deals").
		From("product", "sale").
		Select("product.pid", "sale.discount").
		Join("product.pid", "sale.pid").
		WhereEq("product.category").
		MustBuild()
	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 100, TuplesPerBCP: 2})
	if err != nil {
		log.Fatal(err)
	}

	q := pmv.NewQuery(tpl).In(0, pmv.Int(2)).Query()
	// First run: cold cache, everything comes from execution.
	n := 0
	_, err = view.ExecutePartial(q, func(r pmv.Result) error {
		n++
		return nil
	})
	must(err)
	fmt.Printf("cold: %d rows\n", n)

	// Second run: the hottest results arrive from the view first.
	partial := 0
	n = 0
	rep, err := view.ExecutePartial(q, func(r pmv.Result) error {
		n++
		if r.Partial {
			partial++
		}
		return nil
	})
	must(err)
	fmt.Printf("warm: %d rows, %d from cache, hit=%v\n", n, partial, rep.Hit)
	// Output:
	// cold: 25 rows
	// warm: 25 rows, 2 from cache, hit=true
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

GO ?= go

.PHONY: all build vet test test-race cover bench experiments examples torture clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=coverage.out ./... && $(GO) tool cover -func=coverage.out | tail -1

# One benchmark per table/figure of the paper, plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure/table at paper scale (takes a few minutes).
experiments:
	$(GO) run ./cmd/pmvbench -sim-div 1 -rounds 500

# Quick pass over every figure (seconds).
experiments-quick:
	$(GO) run ./cmd/pmvbench

# Crash-recovery torture sweep: random fault-injected workloads, crash,
# reopen, verify against the oracle (see cmd/pmvtorture).
torture:
	$(GO) run ./cmd/pmvtorture -seeds 50 -v

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/callcenter
	$(GO) run ./examples/tpcr
	$(GO) run ./examples/adaptivity
	$(GO) run ./examples/nested

clean:
	rm -f coverage.out test_output.txt bench_output.txt

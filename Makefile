GO ?= go

.PHONY: all build vet staticcheck test test-race cover bench experiments examples torture net-torture cluster-smoke cluster-torture hedge-smoke restart-smoke restart-torture snapshot-torture maint-smoke write-torture fuzz-smoke obs-smoke trace-smoke hot-smoke hot-torture clean

all: build vet staticcheck test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips politely when the tool is not
# installed (dev and CI images are not required to carry it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=coverage.out ./... && $(GO) tool cover -func=coverage.out | tail -1

# One benchmark per table/figure of the paper, plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure/table at paper scale (takes a few minutes).
experiments:
	$(GO) run ./cmd/pmvbench -sim-div 1 -rounds 500

# Quick pass over every figure (seconds).
experiments-quick:
	$(GO) run ./cmd/pmvbench

# Crash-recovery torture sweep: random fault-injected workloads, crash,
# reopen, verify against the oracle (see cmd/pmvtorture).
torture:
	$(GO) run ./cmd/pmvtorture -seeds 50 -v

# Network-plane chaos sweep: pmvd behind a fault-injecting proxy,
# hammered by self-healing clients, verified against the
# exactly-once-or-flagged oracle (see internal/torture/netchaos.go).
net-torture:
	$(GO) run -race ./cmd/pmvtorture -net -seeds 10 -v

# Cluster-plane smoke: the router loopback tests plus one seeded chaos
# cycle (3 shards + router, kills/blackholes/reset bursts) under the
# race detector (see internal/torture/clusterchaos.go).
cluster-smoke:
	$(GO) test -race -count=1 ./internal/cluster/
	$(GO) run -race ./cmd/pmvtorture -cluster -seeds 1 -clients 6 -queries 30 -v

# Cluster-plane chaos sweep: the wide seeded run.
cluster-torture:
	$(GO) run -race ./cmd/pmvtorture -cluster -seeds 10 -v

# Tail-tolerance smoke: the health/breaker/hedge loopback tests under
# the race detector, then one seeded cluster chaos cycle with the tail
# plane on — gray-ramp and flap events join the kill/blackhole/reset
# mix, hedged probes race the slow shard, and the run must still hold
# the exactly-once-or-flagged oracle (see internal/torture/clusterchaos.go).
hedge-smoke:
	$(GO) test -race -count=1 -run 'Health|Breaker|Hedge|Tail|Heartbeat|Budget|Phi|Ewma' ./internal/cluster/ ./internal/wire/ ./internal/netfault/
	$(GO) run -race ./cmd/pmvtorture -cluster -tail -seeds 1 -clients 4 -queries 20 -v

# Warm-restart chaos smoke: full shard reboots from snapshots under
# chaos, each seed run warm then cold to prove the snapshot pays off,
# plus the corrupt/stale rejection ladder
# (see internal/torture/restartchaos.go).
restart-smoke:
	$(GO) run -race ./cmd/pmvtorture -restart -seeds 3 -clients 4 -queries 20 -v

# Warm-restart chaos sweep: the wide seeded run.
restart-torture:
	$(GO) run -race ./cmd/pmvtorture -restart -seeds 10 -v

# Write-plane smoke: the maint package tests plus a short seeded write
# torture run (concurrent ΔR writers vs the per-pid version-timeline
# oracle) under the race detector (see internal/torture/writechaos.go).
maint-smoke:
	$(GO) test -race -count=1 ./internal/maint/
	$(GO) run -race ./cmd/pmvtorture -write -seeds 3 -v

# Write-plane torture sweep: the wide seeded run.
write-torture:
	$(GO) run -race ./cmd/pmvtorture -write -seeds 10 -v

# Snapshot-fault sweep: fill→snapshot→reboot cycles with torn writes,
# sticky fsync failures, read bit rot, and crashes injected under the
# snapshot file (see internal/torture/snapfault.go).
snapshot-torture:
	$(GO) run -race ./cmd/pmvtorture -snap -seeds 10 -v

# Short coverage-guided fuzz of the wire codecs (the seed corpus and
# any fuzzer-found regressions always run as part of plain `make test`).
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzDecodeQuery -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzDecodeRow -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzDecodeUpdate -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzDecodeTraceContext -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzDecodePing -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzDecodeProbe -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzDecodeRefill -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzDecodeHotSet -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzDecodeHotInval -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzReadSnapshot -fuzztime=30s ./internal/snapshot

# Observability smoke test: boot pmvd with -obs on a scratch database,
# probe /healthz and /metrics, and require the key metric families.
obs-smoke:
	@set -e; dir=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$dir"' EXIT; \
	$(GO) build -o "$$dir/pmvd" ./cmd/pmvd; \
	"$$dir/pmvd" -dir "$$dir/db" -addr 127.0.0.1:7071 -obs 127.0.0.1:9091 \
		-snapshot-dir "$$dir/snap" -snapshot-interval 1s & pid=$$!; \
	ok=0; for i in $$(seq 1 50); do \
		if curl -fs http://127.0.0.1:9091/healthz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.2; \
	done; \
	[ $$ok -eq 1 ] || { echo "obs-smoke: endpoint never came up"; exit 1; }; \
	curl -fs http://127.0.0.1:9091/healthz | grep -q '"status":"ok"'; \
	curl -fs http://127.0.0.1:9091/metrics > "$$dir/metrics.txt"; \
	for fam in pmvd_sessions_total pmvd_queries_total pmvd_query_seconds \
	           pmvd_trace_enabled pmvd_slowlog_threshold_seconds go_goroutines \
	           pmvd_snapshot_age_seconds pmvd_snapshot_writes_total \
	           pmvd_snapshot_stale_rejects_total; do \
		grep -q "^# TYPE $$fam " "$$dir/metrics.txt" || { echo "obs-smoke: missing family $$fam"; exit 1; }; \
	done; \
	echo "obs-smoke: OK"

# Cluster-trace smoke: the trace/slowlog/fleet loopback tests under the
# race detector, then a binary-level pass — two scratch pmvd shards
# behind a tracing pmvrouter, checked through pmvcli (fleet, trace
# recent) and the router's /metrics trace and cost families.
trace-smoke:
	$(GO) test -race -count=1 -run 'Trace|Slow|Fleet|Degraded' ./internal/wire/ ./internal/server/ ./internal/cluster/
	@set -e; dir=$$(mktemp -d); \
	trap 'kill $$spid1 $$spid2 $$rpid 2>/dev/null || true; rm -rf "$$dir"' EXIT; \
	$(GO) build -o "$$dir/pmvd" ./cmd/pmvd; \
	$(GO) build -o "$$dir/pmvrouter" ./cmd/pmvrouter; \
	$(GO) build -o "$$dir/pmvcli" ./cmd/pmvcli; \
	"$$dir/pmvd" -dir "$$dir/s1" -addr 127.0.0.1:7181 & spid1=$$!; \
	"$$dir/pmvd" -dir "$$dir/s2" -addr 127.0.0.1:7182 & spid2=$$!; \
	"$$dir/pmvrouter" -addr 127.0.0.1:7180 -shards 127.0.0.1:7181,127.0.0.1:7182 \
		-trace -obs 127.0.0.1:9190 & rpid=$$!; \
	ok=0; for i in $$(seq 1 50); do \
		if printf 'fleet\nquit\n' | "$$dir/pmvcli" -addr 127.0.0.1:7180 2>/dev/null \
			| grep -q '2 up, 0 down'; then ok=1; break; fi; \
		sleep 0.2; \
	done; \
	[ $$ok -eq 1 ] || { echo "trace-smoke: fleet never saw both shards up"; exit 1; }; \
	printf 'trace recent\nquit\n' | "$$dir/pmvcli" -addr 127.0.0.1:7180 | grep -q 'no traces retained'; \
	curl -fs http://127.0.0.1:9190/metrics > "$$dir/metrics.txt"; \
	for fam in pmvrouter_traces_sampled_total pmvrouter_trace_slow_recorded_total \
	           pmvrouter_trace_degraded_recorded_total pmvrouter_trace_store_depth \
	           pmvrouter_query_cost_rows_total pmvrouter_query_cost_wire_bytes_total; do \
		grep -q "^# TYPE $$fam " "$$dir/metrics.txt" || { echo "trace-smoke: missing family $$fam"; exit 1; }; \
	done; \
	echo "trace-smoke: OK"

# Frequency-plane smoke: the freq/hot loopback tests under the race
# detector, one seeded hot-replica invalidation chaos cycle (Zipf α=1.2
# workload, sacrificial hot pair audited by the staleness oracle,
# replication/suppression counters asserted to move), then a
# binary-level pass — three -freq pmvd shards behind a -hot pmvrouter,
# checked through the router's /metrics frequency-plane families.
hot-smoke:
	$(GO) test -race -count=1 -run 'Hot|Freq|Flood|TopK|Sketch|Bitset|Filter|Churn|Admit' ./internal/freq/ ./internal/core/ ./internal/cluster/ ./internal/wire/
	$(GO) run -race ./cmd/pmvtorture -cluster -hot -zipf-alpha 1.2 -seeds 1 -clients 4 -queries 40 -v
	@set -e; dir=$$(mktemp -d); \
	trap 'kill $$spid1 $$spid2 $$spid3 $$rpid 2>/dev/null || true; rm -rf "$$dir"' EXIT; \
	$(GO) build -o "$$dir/pmvd" ./cmd/pmvd; \
	$(GO) build -o "$$dir/pmvrouter" ./cmd/pmvrouter; \
	$(GO) build -o "$$dir/pmvcli" ./cmd/pmvcli; \
	"$$dir/pmvd" -dir "$$dir/s1" -addr 127.0.0.1:7281 -freq -obs 127.0.0.1:9281 & spid1=$$!; \
	"$$dir/pmvd" -dir "$$dir/s2" -addr 127.0.0.1:7282 -freq & spid2=$$!; \
	"$$dir/pmvd" -dir "$$dir/s3" -addr 127.0.0.1:7283 -freq & spid3=$$!; \
	"$$dir/pmvrouter" -addr 127.0.0.1:7280 \
		-shards 127.0.0.1:7281,127.0.0.1:7282,127.0.0.1:7283 \
		-hot -hot-push 100ms -hot-filter 100ms -obs 127.0.0.1:9280 & rpid=$$!; \
	ok=0; for i in $$(seq 1 50); do \
		if printf 'fleet\nquit\n' | "$$dir/pmvcli" -addr 127.0.0.1:7280 2>/dev/null \
			| grep -q '3 up, 0 down'; then ok=1; break; fi; \
		sleep 0.2; \
	done; \
	[ $$ok -eq 1 ] || { echo "hot-smoke: fleet never saw all three shards up"; exit 1; }; \
	curl -fs http://127.0.0.1:9280/metrics > "$$dir/router.txt"; \
	for fam in pmvrouter_hot_pushes_total pmvrouter_hot_invals_total \
	           pmvrouter_hot_replica_hits_total pmvrouter_hot_suppressed_total \
	           pmvrouter_hot_filter_refreshes_total pmvrouter_hot_topk_offers_total; do \
		grep -q "^# TYPE $$fam " "$$dir/router.txt" || { echo "hot-smoke: missing router family $$fam"; exit 1; }; \
	done; \
	curl -fs http://127.0.0.1:9281/metrics > "$$dir/shard.txt"; \
	for fam in pmvd_freq_probes_suppressed_total pmvd_freq_admit_gate_rejects_total \
	           pmvd_freq_hot_set_keys_total pmvd_freq_filter_false_positives_total; do \
		grep -q "^# TYPE $$fam " "$$dir/shard.txt" || { echo "hot-smoke: missing shard family $$fam"; exit 1; }; \
	done; \
	echo "hot-smoke: OK"

# Frequency-plane chaos sweep: the wide seeded hot-replica run.
hot-torture:
	$(GO) run -race ./cmd/pmvtorture -cluster -hot -zipf-alpha 1.2 -seeds 10 -v

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/callcenter
	$(GO) run ./examples/tpcr
	$(GO) run ./examples/adaptivity
	$(GO) run ./examples/nested

clean:
	rm -f coverage.out test_output.txt bench_output.txt

package pmv_test

import (
	"sort"
	"testing"

	"pmv"
)

// TestCrashDurabilityEndToEnd exercises the public WAL surface: data
// written with SyncEveryOp survives an unclean shutdown, views are
// recreated from their persisted definitions, and queries over the
// recovered database are exact.
func TestCrashDurabilityEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db, err := pmv.Open(dir, pmv.Options{EnableWAL: true, SyncEveryOp: true})
	if err != nil {
		t.Fatal(err)
	}
	tpl := storefront(t, db)
	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := pmv.NewQuery(tpl).In(0, pmv.Int(1)).In(1, pmv.Int(2)).Query()
	var before []string
	if _, err := view.ExecutePartial(q, func(r pmv.Result) error {
		before = append(before, r.Tuple.String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("fixture query empty")
	}
	// Post-query DML that must survive the crash.
	if _, err := db.Delete("sale", func(tu pmv.Tuple) bool { return tu[0].Int64()%7 == 0 }); err != nil {
		t.Fatal(err)
	}
	var want []string
	if err := db.Execute(q, func(tu pmv.Tuple) error {
		want = append(want, tu.String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	// Crash: abandon without Close.

	db2, err := pmv.Open(dir, pmv.Options{EnableWAL: true, SyncEveryOp: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Engine().Recovered() == 0 {
		t.Error("nothing was replayed after the crash")
	}
	v2, ok := db2.ViewByName(view.Name())
	if !ok {
		t.Fatal("view definition lost")
	}
	var got []string
	if _, err := v2.ExecutePartial(q, func(r pmv.Result) error {
		got = append(got, r.Tuple.String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("recovered query: %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs after recovery", i)
		}
	}
}

package pmv_test

import (
	"sync"
	"testing"
	"time"

	"pmv"
)

// TestConcurrentPublicAPIWithWAL drives queries, DML, and checkpoints
// concurrently through the public API with write-ahead logging on —
// the configuration a real deployment would run. Run with -race.
func TestConcurrentPublicAPIWithWAL(t *testing.T) {
	db, err := pmv.Open(t.TempDir(), pmv.Options{
		EnableWAL:       true,
		CheckpointEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tpl := storefront(t, db)
	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{
		MaxEntries: 40, TuplesPerBCP: 2, UseMaintIndex: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	// Query workers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < 40; i++ {
				q := pmv.NewQuery(tpl).
					In(0, pmv.Int((seed+i)%8)).
					In(1, pmv.Int((seed*i)%5)).
					Query()
				if _, err := view.ExecutePartial(q, func(pmv.Result) error { return nil }); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(w + 1))
	}
	// DML workers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < 15; i++ {
				pid := seed*10000 + i
				if err := db.Insert("product", pmv.Int(pid), pmv.Int(pid%8), pmv.Str("new")); err != nil {
					errCh <- err
					return
				}
				if err := db.Insert("sale", pmv.Int(pid), pmv.Int(pid%5), pmv.Int(10)); err != nil {
					errCh <- err
					return
				}
				if i%5 == 4 {
					if _, err := db.Delete("sale", func(tu pmv.Tuple) bool {
						return tu[0].Int64() == seed*10000+i-2
					}); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The view must be exactly consistent with fresh execution.
	q := pmv.NewQuery(tpl).In(0, pmv.Int(1)).In(1, pmv.Int(2)).Query()
	viaView := map[string]int{}
	if _, err := view.ExecutePartial(q, func(r pmv.Result) error {
		viaView[r.Tuple.String()]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	direct := map[string]int{}
	if err := db.Execute(q, func(tu pmv.Tuple) error {
		direct[tu.String()]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(viaView) != len(direct) {
		t.Fatalf("view path %d distinct rows, direct %d", len(viaView), len(direct))
	}
	for k, n := range direct {
		if viaView[k] != n {
			t.Errorf("row %s: view %d copies, direct %d", k, viaView[k], n)
		}
	}
}

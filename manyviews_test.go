package pmv_test

import (
	"fmt"
	"testing"

	"pmv"
)

// TestManyViewsFitInMemory validates Section 3.2's sizing argument: with
// L entries of F tuples each, a PMV's footprint is bounded by
// L·F·At — "the memory can hold many PMVs". We create one view per
// (template) department over the same base data, warm them all, and
// check the aggregate footprint stays near the analytical bound.
func TestManyViewsFitInMemory(t *testing.T) {
	db := openDB(t)
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(db.CreateRelation("item",
		pmv.Col("id", pmv.TypeInt),
		pmv.Col("dept", pmv.TypeInt),
		pmv.Col("kind", pmv.TypeInt),
		pmv.Col("price", pmv.TypeFloat)))
	check(db.CreateIndex("item", "dept"))
	check(db.CreateIndex("item", "kind"))
	for i := int64(0); i < 3000; i++ {
		check(db.Insert("item",
			pmv.Int(i), pmv.Int(i%20), pmv.Int((i/20)%50), pmv.Float(float64(i))))
	}

	// One template (hence one PMV) per department — the paper's
	// motivating deployment keeps "a separate Rsale for each store or
	// each department", so each gets its own template and view.
	const nViews = 20
	const L, F = 50, 2
	views := make([]*pmv.View, 0, nViews)
	for d := 0; d < nViews; d++ {
		tpl := pmv.NewTemplate(fmt.Sprintf("dept%02d", d)).
			From("item").
			Select("item.id", "item.price").
			Fixed("item.dept", "=", pmv.Int(int64(d))).
			WhereEq("item.kind").
			MustBuild()
		v, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: L, TuplesPerBCP: F})
		check(err)
		views = append(views, v)
	}

	// Warm every view across its full kind domain.
	for d, v := range views {
		tpl := v.Config().Template
		for k := int64(0); k < 50; k++ {
			q := pmv.NewQuery(tpl).In(0, pmv.Int(k)).Query()
			if _, err := v.ExecutePartial(q, func(pmv.Result) error { return nil }); err != nil {
				t.Fatalf("view %d kind %d: %v", d, k, err)
			}
		}
	}

	// Aggregate footprint: each tuple is ~60 B encoded; bound per view
	// is L·F·At plus key overhead. Allow 2x slack for keys/overheads.
	total := 0
	for _, v := range views {
		sz := v.SizeBytes()
		total += sz
		if v.Len() > L {
			t.Fatalf("view %s has %d entries > L=%d", v.Name(), v.Len(), L)
		}
	}
	const perViewBound = L * F * 60 * 2
	if total > nViews*perViewBound {
		t.Errorf("aggregate footprint %d B exceeds bound %d B", total, nViews*perViewBound)
	}
	t.Logf("%d views, %d bytes total (%.1f KiB/view)", nViews, total, float64(total)/float64(nViews)/1024)

	// All views stay live: replaying hot queries hits everywhere.
	hits := 0
	for _, v := range views {
		tpl := v.Config().Template
		q := pmv.NewQuery(tpl).In(0, pmv.Int(7)).Query()
		rep, err := v.ExecutePartial(q, func(pmv.Result) error { return nil })
		check(err)
		if rep.Hit {
			hits++
		}
	}
	if hits < nViews*9/10 {
		t.Errorf("only %d/%d views hit on hot re-query", hits, nViews)
	}
}

func TestDBStats(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	v, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := pmv.NewQuery(tpl).In(0, pmv.Int(1)).In(1, pmv.Int(2)).Query()
	v.ExecutePartial(q, func(pmv.Result) error { return nil })
	v.ExecutePartial(q, func(pmv.Result) error { return nil })

	st := db.Stats()
	if len(st.Views) != 1 {
		t.Fatalf("views in stats: %d", len(st.Views))
	}
	vs := st.Views[0]
	if vs.Name != v.Name() || vs.Entries == 0 || vs.Tuples == 0 || vs.Bytes == 0 {
		t.Errorf("view summary empty: %+v", vs)
	}
	if vs.HitProb != 0.5 {
		t.Errorf("hit prob = %v, want 0.5 (1 hit of 2 queries)", vs.HitProb)
	}
	if st.ViewBytes != vs.Bytes {
		t.Errorf("aggregate bytes %d != view bytes %d", st.ViewBytes, vs.Bytes)
	}
	if st.PhysicalWrites == 0 && st.BufferMisses == 0 {
		t.Error("engine counters all zero; plumbing broken")
	}
}

// Package pmv is an embedded relational engine with partial
// materialized views, reproducing "Partial Materialized Views"
// (Gang Luo, ICDE 2007).
//
// A partial materialized view (PMV) caches the hottest results of a
// parameterized query template, keyed by basic condition part. When a
// query arrives, cached partial results are delivered immediately
// (typically in microseconds); the full query then executes and the
// remaining results follow, each result delivered exactly once. The
// view refreshes itself for free from query results, needs no work on
// base-relation inserts, and purges invalidated entries on deletes and
// updates.
//
// Quick start:
//
//	db, _ := pmv.Open(dir, pmv.Options{})
//	db.CreateRelation("orders", pmv.Col("orderkey", pmv.TypeInt), ...)
//	db.CreateIndex("orders", "orderdate")
//	tpl, _ := pmv.NewTemplate("t1").
//		From("orders", "lineitem").
//		Select("orders.orderkey", "lineitem.suppkey").
//		Join("orders.orderkey", "lineitem.orderkey").
//		WhereEq("orders.orderdate").
//		WhereEq("lineitem.suppkey").
//		Build()
//	view, _ := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 20000, TuplesPerBCP: 3})
//	q := pmv.NewQuery(tpl).In(0, pmv.Date(d1), pmv.Date(d2)).In(1, pmv.Int(7)).Query()
//	view.ExecutePartial(q, func(r pmv.Result) error { ... })
package pmv

import (
	"context"
	"fmt"
	"time"

	"pmv/internal/buffer"
	"pmv/internal/cache"
	"pmv/internal/catalog"
	"pmv/internal/core"
	"pmv/internal/engine"
	"pmv/internal/exec"
	"pmv/internal/expr"
	"pmv/internal/freq"
	"pmv/internal/lock"
	"pmv/internal/obs"
	"pmv/internal/value"
	"pmv/internal/vfs"
	"pmv/internal/wal"
)

// Re-exported value types and constructors.
type (
	// Value is one typed scalar.
	Value = value.Value
	// Tuple is one row.
	Tuple = value.Tuple
	// Type is a column type.
	Type = value.Type
	// Column describes a relation attribute.
	Column = catalog.Column
)

// Column type constants.
const (
	TypeInt    = value.TypeInt
	TypeFloat  = value.TypeFloat
	TypeString = value.TypeString
	TypeDate   = value.TypeDate
	TypeBool   = value.TypeBool
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = value.Int
	// Float builds a floating-point value.
	Float = value.Float
	// Str builds a string value.
	Str = value.Str
	// Bool builds a boolean value.
	Bool = value.Bool
	// Date builds a date value from days since the Unix epoch.
	Date = value.Date
	// DateFromString parses a YYYY-MM-DD date.
	DateFromString = value.DateFromString
	// Null is the NULL value.
	Null = value.Null
	// Col builds a Column.
	Col = catalog.Col
)

// Core re-exports.
type (
	// Template is a parameterized query template (qt in the paper).
	Template = expr.Template
	// Query is a bound template instance.
	Query = expr.Query
	// Interval is one selection interval.
	Interval = expr.Interval
	// View is a live partial materialized view.
	View = core.View
	// Result is one delivered result tuple (Partial marks tuples
	// served from the view before execution).
	Result = core.Result
	// QueryReport summarizes one partial execution.
	QueryReport = core.QueryReport
	// ViewStats is a view's cumulative counters.
	ViewStats = core.Stats
	// EngineStats is the engine's robustness counters (lock retries,
	// degraded queries, torn-page repairs).
	EngineStats = engine.Stats
	// FS is the filesystem seam every persisted byte flows through;
	// supply one in Options.FS to intercept I/O (fault injection).
	FS = vfs.FS
	// GroupResult is one partial/final aggregate group.
	GroupResult = core.GroupResult
	// AggSpec selects an aggregate function and column.
	AggSpec = exec.AggSpec
	// SortKey is one ORDER BY term.
	SortKey = exec.SortKey
	// Trace is a per-query span recorder; attach one to a context with
	// WithTrace and pass it to the *Ctx entry points.
	Trace = obs.Trace
	// TraceSpan is one recorded trace span.
	TraceSpan = obs.Span
)

// Tracing helpers, re-exported from internal/obs.
var (
	// NewTrace builds an enabled trace with an id and label.
	NewTrace = obs.New
	// WithTrace attaches a trace to a context (no-op for nil traces).
	WithTrace = obs.WithTrace
	// TraceFromContext recovers the trace, or nil.
	TraceFromContext = obs.FromContext
)

// Aggregate functions.
const (
	Count = exec.AggCount
	Sum   = exec.AggSum
	Min   = exec.AggMin
	Max   = exec.AggMax
	Avg   = exec.AggAvg
)

// Failure sentinels, re-exported so callers can classify errors with
// errors.Is and decide how to degrade.
var (
	// ErrCorruptPage marks a page whose checksum failed verification.
	ErrCorruptPage = buffer.ErrCorruptPage
	// ErrCorrupt marks persistent-state corruption found in recovery.
	ErrCorrupt = engine.ErrCorrupt
	// ErrLockTimeout marks a lock wait that exhausted its retries.
	ErrLockTimeout = lock.ErrTimeout
	// ErrSyncFailed marks the WAL's sticky fsync failure: durability of
	// recent statements is unknown and the database should be reopened.
	ErrSyncFailed = wal.ErrSyncFailed
)

// Policy names for ViewOptions.
const (
	// PolicyCLOCK is the paper's default entry management (Section 3.2).
	PolicyCLOCK = cache.PolicyCLOCK
	// Policy2Q is the simplified 2Q of Section 3.5.
	Policy2Q = cache.Policy2Q
	// PolicyLRU is an extra baseline.
	PolicyLRU = cache.PolicyLRU
)

// Options configures Open.
type Options struct {
	// BufferPoolPages sizes the page cache (default 1000 frames of
	// 8 KiB, matching the paper's PostgreSQL setup).
	BufferPoolPages int
	// LockTimeout bounds lock waits (default 5s).
	LockTimeout time.Duration
	// EnableWAL turns on write-ahead logging: heap data survives
	// crashes (replayed on the next Open), at the cost of logging every
	// statement. PMV contents are a cache and are rebuilt from queries
	// either way.
	EnableWAL bool
	// SyncEveryOp makes each statement durable before it returns
	// (fsync per statement). Requires EnableWAL.
	SyncEveryOp bool
	// CheckpointEvery runs a background checkpoint (flush + WAL
	// truncation) on this period; 0 checkpoints only on Close.
	// Requires EnableWAL.
	CheckpointEvery time.Duration
	// FS intercepts all file I/O (nil = the real OS). Used by the
	// crash-recovery torture harness to inject faults.
	FS FS
}

// FreqConfig tunes the frequency plane (see internal/freq).
type FreqConfig = freq.Config

// DB is one open database.
type DB struct {
	eng   *engine.Engine
	views map[string]*View
	// freqCfg, when set, attaches a frequency plane to every view —
	// existing and future.
	freqCfg *FreqConfig
}

// EnableFreq attaches a frequency plane (windowed popularity sketch,
// presence filter, admission gate) to every view, including ones
// created later. Call once after Open, before serving traffic.
func (db *DB) EnableFreq(cfg FreqConfig) {
	db.freqCfg = &cfg
	for _, v := range db.views {
		v.EnableFreq(cfg)
	}
}

// FreqEnabled reports whether EnableFreq was called on this database —
// views created later will carry a frequency plane even if none exists
// yet.
func (db *DB) FreqEnabled() bool {
	return db.freqCfg != nil
}

// Open opens (creating if needed) a database directory.
func Open(dir string, opts Options) (*DB, error) {
	eng, err := engine.Open(dir, engine.Options{
		BufferPoolPages: opts.BufferPoolPages,
		LockTimeout:     opts.LockTimeout,
		EnableWAL:       opts.EnableWAL,
		SyncEveryOp:     opts.SyncEveryOp,
		CheckpointEvery: opts.CheckpointEvery,
		FS:              opts.FS,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{eng: eng, views: make(map[string]*View)}
	if err := db.loadViews(); err != nil {
		eng.Close()
		return nil, err
	}
	return db, nil
}

// Close flushes and closes the database.
func (db *DB) Close() error { return db.eng.Close() }

// Engine exposes the underlying engine for advanced use (experiment
// harnesses, statistics).
func (db *DB) Engine() *engine.Engine { return db.eng }

// EngineStats snapshots the engine's robustness counters.
func (db *DB) EngineStats() EngineStats { return db.eng.Stats() }

// CreateRelation defines a base relation.
func (db *DB) CreateRelation(name string, cols ...Column) error {
	_, err := db.eng.CreateRelation(name, catalog.NewSchema(cols...))
	return err
}

// CreateIndex builds a secondary index on the given columns.
func (db *DB) CreateIndex(rel string, cols ...string) error {
	_, err := db.eng.CreateIndex("", rel, cols...)
	return err
}

// Insert adds one tuple.
func (db *DB) Insert(rel string, vals ...Value) error {
	return db.eng.Insert(rel, Tuple(vals))
}

// Delete removes tuples satisfying pred, returning how many.
func (db *DB) Delete(rel string, pred func(Tuple) bool) (int, error) {
	deleted, err := db.eng.DeleteWhere(rel, pred)
	return len(deleted), err
}

// DeleteCtx is Delete with a context: a trace attached via WithTrace
// records the view maintenance (purge) work the delete triggers.
func (db *DB) DeleteCtx(ctx context.Context, rel string, pred func(Tuple) bool) (int, error) {
	deleted, err := db.eng.DeleteWhereCtx(ctx, rel, pred)
	return len(deleted), err
}

// Update rewrites tuples satisfying pred, returning how many.
func (db *DB) Update(rel string, pred func(Tuple) bool, apply func(Tuple) Tuple) (int, error) {
	return db.eng.UpdateWhere(rel, pred, apply)
}

// UpdateCtx is Update with a context (see DeleteCtx).
func (db *DB) UpdateCtx(ctx context.Context, rel string, pred func(Tuple) bool, apply func(Tuple) Tuple) (int, error) {
	return db.eng.UpdateWhereCtx(ctx, rel, pred, apply)
}

// Checkpoint makes all data durable and truncates the write-ahead log.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Analyze recomputes optimizer statistics for every relation; run it
// after bulk loads so the planner can pick the most selective driving
// relation.
func (db *DB) Analyze() error { return db.eng.AnalyzeAll() }

// Execute runs a bound query without any PMV involvement, streaming
// the template's select list.
func (db *DB) Execute(q *Query, fn func(Tuple) error) error {
	return db.eng.ExecuteProject(q, q.Template.Select, fn)
}

// ViewOptions configures CreatePartialView.
type ViewOptions struct {
	// MaxEntries bounds stored basic condition parts (L). Default
	// 10000.
	MaxEntries int
	// TuplesPerBCP is F: cached result tuples per basic condition
	// part. Default 2.
	TuplesPerBCP int
	// Policy selects entry replacement (default CLOCK).
	Policy cache.PolicyKind
	// Dividers supplies dividing values per interval-form condition
	// index (required for interval-form conditions).
	Dividers map[int][]Value
	// UseMaintIndex enables in-memory maintenance indices so deletes
	// avoid delta joins (the full-version [25] optimization).
	UseMaintIndex bool
	// MaxConditionParts caps Operation O1 (default 4096).
	MaxConditionParts int
}

// CreatePartialView defines a PMV over the template and registers it
// for automatic deferred maintenance.
func (db *DB) CreatePartialView(tpl *Template, opts ViewOptions) (*View, error) {
	v, err := core.NewView(db.eng, core.Config{
		Name:              "pmv_" + tpl.Name,
		Template:          tpl,
		MaxEntries:        opts.MaxEntries,
		TuplesPerBCP:      opts.TuplesPerBCP,
		Policy:            opts.Policy,
		Dividers:          opts.Dividers,
		UseMaintIndex:     opts.UseMaintIndex,
		MaxConditionParts: opts.MaxConditionParts,
	})
	if err != nil {
		return nil, err
	}
	if _, dup := db.views[v.Name()]; dup {
		v.Drop()
		return nil, fmt.Errorf("pmv: view %q already exists", v.Name())
	}
	db.views[v.Name()] = v
	if db.freqCfg != nil {
		v.EnableFreq(*db.freqCfg)
	}
	if err := db.saveViews(); err != nil {
		return nil, err
	}
	return v, nil
}

// ViewByName returns a previously created view.
func (db *DB) ViewByName(name string) (*View, bool) {
	v, ok := db.views[name]
	return v, ok
}

// LearnDividers derives interval dividing values from a trace of query
// intervals (Section 3.1's discretization-from-traces fallback).
var LearnDividers = core.LearnDividers

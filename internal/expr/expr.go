// Package expr models the query language of the paper: parameterized
// templates of the form
//
//	qt: select Ls from R1, R2, ..., Rn where Cjoin and Cselect
//
// (Section 2.1), where Cjoin holds equi-join predicates plus
// parameterless single-relation predicates, and Cselect is a
// conjunction of m selection-condition templates C1..Cm, each a
// disjunction of either equalities or pairwise-disjoint intervals over
// one attribute.
package expr

import (
	"errors"
	"fmt"
	"strings"

	"pmv/internal/value"
)

// ErrMalformed reports an invalid template or query instance.
var ErrMalformed = errors.New("expr: malformed")

// ColumnRef names an attribute as relation.column.
type ColumnRef struct {
	Rel string `json:"rel"`
	Col string `json:"col"`
}

// String renders the reference SQL-style.
func (c ColumnRef) String() string { return c.Rel + "." + c.Col }

// CompareOp is a scalar comparison operator for fixed predicates.
type CompareOp uint8

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", uint8(op))
	}
}

// Eval applies the operator to (a, b). Comparisons with NULL are false.
func (op CompareOp) Eval(a, b value.Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c := value.Compare(a, b)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// JoinPred is one equi-join predicate Left = Right.
type JoinPred struct {
	Left  ColumnRef `json:"left"`
	Right ColumnRef `json:"right"`
}

// FixedPred is a parameterless single-relation predicate that lives in
// Cjoin (e.g. R1.b = 100 in the paper's grammar).
type FixedPred struct {
	Col ColumnRef   `json:"col"`
	Op  CompareOp   `json:"op"`
	Val value.Value `json:"val"`
}

// CondForm distinguishes the two disjunctive forms of Section 2.1.
type CondForm uint8

// Selection-condition forms.
const (
	// EqualityForm: ∨ (R.a = v_r)
	EqualityForm CondForm = iota
	// IntervalForm: ∨ (v_r < R.a < w_r), intervals pairwise disjoint
	IntervalForm
)

// CondTemplate is one selection-condition template Ci: the attribute it
// constrains and which disjunctive form its instances take.
type CondTemplate struct {
	Col  ColumnRef `json:"col"`
	Form CondForm  `json:"form"`
}

// Template is one parameterized query template qt.
type Template struct {
	Name      string         `json:"name"`
	Relations []string       `json:"relations"` // R1..Rn in plan (driver-first) order
	Select    []ColumnRef    `json:"select"`    // Ls
	Join      []JoinPred     `json:"join"`
	Fixed     []FixedPred    `json:"fixed"`
	Conds     []CondTemplate `json:"conds"` // C1..Cm
}

// Validate checks structural consistency of the template.
func (t *Template) Validate() error {
	if len(t.Relations) == 0 {
		return fmt.Errorf("%w: template %q has no relations", ErrMalformed, t.Name)
	}
	rels := make(map[string]bool, len(t.Relations))
	for _, r := range t.Relations {
		if rels[r] {
			return fmt.Errorf("%w: template %q lists relation %q twice (self-joins need aliases)", ErrMalformed, t.Name, r)
		}
		rels[r] = true
	}
	check := func(c ColumnRef) error {
		if !rels[c.Rel] {
			return fmt.Errorf("%w: template %q references unknown relation in %s", ErrMalformed, t.Name, c)
		}
		return nil
	}
	for _, c := range t.Select {
		if err := check(c); err != nil {
			return err
		}
	}
	for _, j := range t.Join {
		if err := check(j.Left); err != nil {
			return err
		}
		if err := check(j.Right); err != nil {
			return err
		}
	}
	for _, f := range t.Fixed {
		if err := check(f.Col); err != nil {
			return err
		}
	}
	if len(t.Conds) == 0 {
		return fmt.Errorf("%w: template %q has no selection conditions", ErrMalformed, t.Name)
	}
	for _, c := range t.Conds {
		if err := check(c.Col); err != nil {
			return err
		}
	}
	return nil
}

// String renders the template as pseudo-SQL for diagnostics.
func (t *Template) String() string {
	var sb strings.Builder
	sb.WriteString("select ")
	for i, c := range t.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.String())
	}
	sb.WriteString(" from ")
	sb.WriteString(strings.Join(t.Relations, ", "))
	sb.WriteString(" where ...")
	return sb.String()
}

// Interval is one (possibly unbounded, possibly closed) interval over
// an attribute. A NULL bound means unbounded on that side.
type Interval struct {
	Lo, Hi         value.Value
	LoIncl, HiIncl bool
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v value.Value) bool {
	if v.IsNull() {
		return false
	}
	if !iv.Lo.IsNull() {
		c := value.Compare(v, iv.Lo)
		if c < 0 || (c == 0 && !iv.LoIncl) {
			return false
		}
	}
	if !iv.Hi.IsNull() {
		c := value.Compare(v, iv.Hi)
		if c > 0 || (c == 0 && !iv.HiIncl) {
			return false
		}
	}
	return true
}

// Overlaps reports whether two intervals share any point.
func (iv Interval) Overlaps(o Interval) bool {
	// iv entirely below o?
	if !iv.Hi.IsNull() && !o.Lo.IsNull() {
		c := value.Compare(iv.Hi, o.Lo)
		if c < 0 || (c == 0 && !(iv.HiIncl && o.LoIncl)) {
			return false
		}
	}
	// iv entirely above o?
	if !iv.Lo.IsNull() && !o.Hi.IsNull() {
		c := value.Compare(iv.Lo, o.Hi)
		if c > 0 || (c == 0 && !(iv.LoIncl && o.HiIncl)) {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two overlapping intervals.
func (iv Interval) Intersect(o Interval) Interval {
	out := iv
	if iv.Lo.IsNull() || (!o.Lo.IsNull() && higherLo(o, iv)) {
		out.Lo, out.LoIncl = o.Lo, o.LoIncl
	}
	if iv.Hi.IsNull() || (!o.Hi.IsNull() && lowerHi(o, iv)) {
		out.Hi, out.HiIncl = o.Hi, o.HiIncl
	}
	return out
}

// higherLo reports whether a's lower bound is stricter than b's.
func higherLo(a, b Interval) bool {
	if b.Lo.IsNull() {
		return true
	}
	c := value.Compare(a.Lo, b.Lo)
	return c > 0 || (c == 0 && !a.LoIncl && b.LoIncl)
}

// lowerHi reports whether a's upper bound is stricter than b's.
func lowerHi(a, b Interval) bool {
	if b.Hi.IsNull() {
		return true
	}
	c := value.Compare(a.Hi, b.Hi)
	return c < 0 || (c == 0 && !a.HiIncl && b.HiIncl)
}

// String renders the interval.
func (iv Interval) String() string {
	var sb strings.Builder
	if iv.LoIncl {
		sb.WriteByte('[')
	} else {
		sb.WriteByte('(')
	}
	if iv.Lo.IsNull() {
		sb.WriteString("-inf")
	} else {
		sb.WriteString(iv.Lo.String())
	}
	sb.WriteString(", ")
	if iv.Hi.IsNull() {
		sb.WriteString("+inf")
	} else {
		sb.WriteString(iv.Hi.String())
	}
	if iv.HiIncl {
		sb.WriteByte(']')
	} else {
		sb.WriteByte(')')
	}
	return sb.String()
}

// CondInstance is one bound selection condition Ci: the parameter list
// of a query. Exactly one of Values/Intervals is used, matching the
// template's form.
type CondInstance struct {
	Values    []value.Value // equality form
	Intervals []Interval    // interval form; pairwise disjoint
}

// Matches reports whether attribute value v satisfies the condition.
func (ci CondInstance) Matches(form CondForm, v value.Value) bool {
	switch form {
	case EqualityForm:
		for _, ev := range ci.Values {
			if value.Equal(v, ev) {
				return true
			}
		}
		return false
	case IntervalForm:
		for _, iv := range ci.Intervals {
			if iv.Contains(v) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Query is one bound instance of a template: per-condition parameters.
type Query struct {
	Template *Template
	Conds    []CondInstance // len == len(Template.Conds)
}

// Validate checks that the instance matches its template: right arity,
// right forms, intervals pairwise disjoint (the paper requires it).
func (q *Query) Validate() error {
	if q.Template == nil {
		return fmt.Errorf("%w: query without template", ErrMalformed)
	}
	if len(q.Conds) != len(q.Template.Conds) {
		return fmt.Errorf("%w: query has %d conditions, template %q has %d",
			ErrMalformed, len(q.Conds), q.Template.Name, len(q.Template.Conds))
	}
	for i, ci := range q.Conds {
		form := q.Template.Conds[i].Form
		switch form {
		case EqualityForm:
			if len(ci.Values) == 0 || len(ci.Intervals) != 0 {
				return fmt.Errorf("%w: condition %d wants equality values", ErrMalformed, i)
			}
			// Disjuncts must be distinct (the equality analogue of the
			// paper's disjoint-intervals requirement); duplicates would
			// both double-deliver results and duplicate bcps.
			for a := 0; a < len(ci.Values); a++ {
				for b := a + 1; b < len(ci.Values); b++ {
					if value.Equal(ci.Values[a], ci.Values[b]) {
						return fmt.Errorf("%w: condition %d lists value %s twice",
							ErrMalformed, i, ci.Values[a])
					}
				}
			}
		case IntervalForm:
			if len(ci.Intervals) == 0 || len(ci.Values) != 0 {
				return fmt.Errorf("%w: condition %d wants intervals", ErrMalformed, i)
			}
			for a := 0; a < len(ci.Intervals); a++ {
				for b := a + 1; b < len(ci.Intervals); b++ {
					if ci.Intervals[a].Overlaps(ci.Intervals[b]) {
						return fmt.Errorf("%w: condition %d intervals %s and %s overlap",
							ErrMalformed, i, ci.Intervals[a], ci.Intervals[b])
					}
				}
			}
		}
	}
	return nil
}

// CombinationFactor returns the product of per-condition disjunct
// counts — "h" in the paper's experiments when every disjunct maps to
// one basic condition part.
func (q *Query) CombinationFactor() int {
	h := 1
	for _, ci := range q.Conds {
		if len(ci.Values) > 0 {
			h *= len(ci.Values)
		} else {
			h *= len(ci.Intervals)
		}
	}
	return h
}

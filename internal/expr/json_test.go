package expr

import (
	"encoding/json"
	"testing"

	"pmv/internal/value"
)

// Templates persist in catalog/views metadata; the JSON roundtrip must
// preserve every field including fixed-predicate values.
func TestTemplateJSONRoundtrip(t *testing.T) {
	tpl := testTemplate()
	tpl.Fixed = []FixedPred{{
		Col: ColumnRef{Rel: "r", Col: "price"},
		Op:  OpGe,
		Val: value.Float(9.5),
	}}
	data, err := json.Marshal(tpl)
	if err != nil {
		t.Fatal(err)
	}
	var got Template
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != tpl.Name || len(got.Relations) != 2 || len(got.Select) != 1 ||
		len(got.Join) != 1 || len(got.Conds) != 2 {
		t.Fatalf("structure lost: %+v", got)
	}
	if len(got.Fixed) != 1 || got.Fixed[0].Op != OpGe ||
		value.Compare(got.Fixed[0].Val, value.Float(9.5)) != 0 {
		t.Errorf("fixed predicate lost: %+v", got.Fixed)
	}
	if got.Conds[1].Form != IntervalForm {
		t.Error("condition form lost")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("roundtripped template invalid: %v", err)
	}
}

package expr

import (
	"errors"
	"testing"
	"testing/quick"

	"pmv/internal/value"
)

func iv(lo, hi int64) Interval {
	return Interval{Lo: value.Int(lo), Hi: value.Int(hi), LoIncl: true, HiIncl: false}
}

func TestCompareOpEval(t *testing.T) {
	two, three := value.Int(2), value.Int(3)
	cases := []struct {
		op   CompareOp
		a, b value.Value
		want bool
	}{
		{OpEq, two, two, true},
		{OpEq, two, three, false},
		{OpNe, two, three, true},
		{OpLt, two, three, true},
		{OpLe, two, two, true},
		{OpGt, three, two, true},
		{OpGe, two, three, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %s %v = %v", c.a, c.op, c.b, got)
		}
	}
	// NULL comparisons are always false.
	for _, op := range []CompareOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if op.Eval(value.Null(), two) || op.Eval(two, value.Null()) {
			t.Errorf("NULL %s x = true", op)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	x := iv(10, 20)
	for _, c := range []struct {
		v    int64
		want bool
	}{{9, false}, {10, true}, {15, true}, {19, true}, {20, false}} {
		if got := x.Contains(value.Int(c.v)); got != c.want {
			t.Errorf("[10,20).Contains(%d) = %v", c.v, got)
		}
	}
	open := Interval{Lo: value.Int(10), Hi: value.Int(20)}
	if open.Contains(value.Int(10)) || open.Contains(value.Int(20)) {
		t.Error("open interval contains its bounds")
	}
	unbounded := Interval{}
	if !unbounded.Contains(value.Int(1 << 60)) {
		t.Error("(-inf,+inf) rejects values")
	}
	if unbounded.Contains(value.Null()) {
		t.Error("interval contains NULL")
	}
	loOnly := Interval{Lo: value.Int(5), LoIncl: true}
	if loOnly.Contains(value.Int(4)) || !loOnly.Contains(value.Int(1<<50)) {
		t.Error("[5, +inf) misbehaves")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{iv(0, 10), iv(10, 20), false}, // half-open adjacency
		{iv(0, 11), iv(10, 20), true},
		{iv(10, 20), iv(0, 10), false},
		{iv(0, 100), iv(40, 50), true},
		{Interval{}, iv(5, 6), true},
		{
			Interval{Lo: value.Int(0), Hi: value.Int(10), LoIncl: true, HiIncl: true},
			Interval{Lo: value.Int(10), Hi: value.Int(20), LoIncl: true, HiIncl: false},
			true, // closed meets closed at 10
		},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestIntervalOverlapsQuick(t *testing.T) {
	// Overlap iff some integer point is in both (dense enough grid).
	f := func(a1, a2, b1, b2 int8) bool {
		lo1, hi1 := minmax(int64(a1), int64(a2))
		lo2, hi2 := minmax(int64(b1), int64(b2))
		x := iv(lo1, hi1+1)
		y := iv(lo2, hi2+1)
		brute := false
		for v := lo1; v <= hi1; v++ {
			if y.Contains(value.Int(v)) {
				brute = true
				break
			}
		}
		return x.Overlaps(y) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func minmax(a, b int64) (int64, int64) {
	if a < b {
		return a, b
	}
	return b, a
}

func TestIntervalIntersect(t *testing.T) {
	got := iv(0, 100).Intersect(iv(50, 200))
	if got.Lo.Int64() != 50 || got.Hi.Int64() != 100 {
		t.Errorf("intersect = %v", got)
	}
	// Intersection with unbounded keeps the bounded side.
	got = Interval{}.Intersect(iv(1, 2))
	if got.Lo.Int64() != 1 || got.Hi.Int64() != 2 {
		t.Errorf("unbounded intersect = %v", got)
	}
	// Open vs closed bound at the same point: the stricter (open) wins.
	a := Interval{Lo: value.Int(5), LoIncl: true, Hi: value.Int(10), HiIncl: true}
	b := Interval{Lo: value.Int(5), LoIncl: false, Hi: value.Int(10), HiIncl: false}
	got = a.Intersect(b)
	if got.LoIncl || got.HiIncl {
		t.Errorf("strictness lost: %v", got)
	}
}

func TestIntervalString(t *testing.T) {
	s := Interval{Lo: value.Int(1), LoIncl: true}.String()
	if s != "[1, +inf)" {
		t.Errorf("String() = %q", s)
	}
}

func testTemplate() *Template {
	return &Template{
		Name:      "t",
		Relations: []string{"r", "s"},
		Select:    []ColumnRef{{Rel: "r", Col: "a"}},
		Join:      []JoinPred{{Left: ColumnRef{Rel: "r", Col: "k"}, Right: ColumnRef{Rel: "s", Col: "k"}}},
		Conds: []CondTemplate{
			{Col: ColumnRef{Rel: "r", Col: "f"}, Form: EqualityForm},
			{Col: ColumnRef{Rel: "s", Col: "g"}, Form: IntervalForm},
		},
	}
}

func TestTemplateValidate(t *testing.T) {
	if err := testTemplate().Validate(); err != nil {
		t.Fatalf("valid template rejected: %v", err)
	}
	bad := testTemplate()
	bad.Relations = nil
	if err := bad.Validate(); !errors.Is(err, ErrMalformed) {
		t.Errorf("no relations: %v", err)
	}
	bad = testTemplate()
	bad.Relations = []string{"r", "r"}
	if err := bad.Validate(); !errors.Is(err, ErrMalformed) {
		t.Errorf("duplicate relation: %v", err)
	}
	bad = testTemplate()
	bad.Select = []ColumnRef{{Rel: "zzz", Col: "a"}}
	if err := bad.Validate(); !errors.Is(err, ErrMalformed) {
		t.Errorf("unknown relation in select: %v", err)
	}
	bad = testTemplate()
	bad.Conds = nil
	if err := bad.Validate(); !errors.Is(err, ErrMalformed) {
		t.Errorf("no conditions: %v", err)
	}
}

func TestQueryValidate(t *testing.T) {
	tpl := testTemplate()
	ok := &Query{Template: tpl, Conds: []CondInstance{
		{Values: []value.Value{value.Int(1)}},
		{Intervals: []Interval{iv(0, 10), iv(20, 30)}},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if h := ok.CombinationFactor(); h != 2 {
		t.Errorf("combination factor = %d", h)
	}

	bad := &Query{Template: tpl, Conds: []CondInstance{
		{Values: []value.Value{value.Int(1)}},
	}}
	if err := bad.Validate(); !errors.Is(err, ErrMalformed) {
		t.Errorf("arity mismatch: %v", err)
	}
	bad = &Query{Template: tpl, Conds: []CondInstance{
		{Intervals: []Interval{iv(0, 1)}}, // equality condition got intervals
		{Intervals: []Interval{iv(0, 10)}},
	}}
	if err := bad.Validate(); !errors.Is(err, ErrMalformed) {
		t.Errorf("wrong form: %v", err)
	}
	bad = &Query{Template: tpl, Conds: []CondInstance{
		{Values: []value.Value{value.Int(1)}},
		{Intervals: []Interval{iv(0, 10), iv(5, 15)}}, // overlapping
	}}
	if err := bad.Validate(); !errors.Is(err, ErrMalformed) {
		t.Errorf("overlapping intervals: %v", err)
	}
	if err := (&Query{}).Validate(); !errors.Is(err, ErrMalformed) {
		t.Errorf("nil template: %v", err)
	}
}

func TestCondInstanceMatches(t *testing.T) {
	eq := CondInstance{Values: []value.Value{value.Int(1), value.Int(5)}}
	if !eq.Matches(EqualityForm, value.Int(5)) || eq.Matches(EqualityForm, value.Int(2)) {
		t.Error("equality matching broken")
	}
	ivs := CondInstance{Intervals: []Interval{iv(0, 10), iv(20, 30)}}
	if !ivs.Matches(IntervalForm, value.Int(25)) || ivs.Matches(IntervalForm, value.Int(15)) {
		t.Error("interval matching broken")
	}
}

func TestTemplateString(t *testing.T) {
	s := testTemplate().String()
	if s == "" {
		t.Error("empty template string")
	}
}

// Package cache implements the replacement policies that manage which
// basic condition parts a PMV keeps: CLOCK (Section 3.2), a simplified
// 2Q (Section 3.5 / Section 4.1), and LRU as an extra baseline. The
// same policies drive both the live PMV store and the hit-probability
// simulator, so simulated and measured hit rates are comparable.
package cache

import "fmt"

// Policy decides which keys stay in the main cache. The PMV store
// calls Lookup when a query references a bcp (Operation O1/O2) and
// RequestAdmit when it has result tuples to cache for one (Operation
// O3); evicted keys have their tuples dropped.
type Policy interface {
	// Lookup records a reference and reports whether key is in the
	// main cache.
	Lookup(key string) bool
	// RequestAdmit asks to place key in the main cache. It reports
	// whether the key was admitted and which keys were evicted to make
	// room. Policies with an admission filter (2Q) may decline.
	RequestAdmit(key string) (admitted bool, evicted []string)
	// Remove drops key from all internal structures (PMV maintenance
	// purges entries whose cached tuples were invalidated).
	Remove(key string)
	// Contains reports main-cache membership without recording a
	// reference.
	Contains(key string) bool
	// Len returns the number of keys in the main cache.
	Len() int
	// Cap returns the main cache capacity.
	Cap() int
	// Name identifies the policy in experiment output.
	Name() string
}

// PolicyKind selects a policy implementation.
type PolicyKind string

// Supported policies.
const (
	PolicyCLOCK PolicyKind = "clock"
	Policy2Q    PolicyKind = "2q"
	PolicyLRU   PolicyKind = "lru"
)

// New constructs a policy of the given kind and main-cache capacity.
// For 2Q, the A1 admission queue gets 50% of capacity extra, matching
// Section 4.1's setup where a bcp-only entry costs 4% of a full entry
// (the experiment harness adjusts capacities for equal byte budgets).
func New(kind PolicyKind, capacity int) (Policy, error) {
	switch kind {
	case PolicyCLOCK:
		return NewClock(capacity), nil
	case Policy2Q:
		return NewTwoQueue(capacity, capacity/2), nil
	case PolicyLRU:
		return NewLRU(capacity), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q", kind)
	}
}

package cache

import "testing"

// TestGatedBlocksFreshKeys pins the decorator contract: a fresh key
// failing the gate is declined with no policy footprint; a tracked key
// re-admits without consulting the gate; Admit bypasses the gate.
func TestGatedBlocksFreshKeys(t *testing.T) {
	allowed := map[string]bool{"hot": true}
	gateCalls := 0
	g := Gate(NewClock(4), func(key string) bool {
		gateCalls++
		return allowed[key]
	})

	if adm, _ := g.RequestAdmit("cold"); adm {
		t.Fatal("cold key admitted through the gate")
	}
	if g.Contains("cold") || g.Len() != 0 {
		t.Fatal("declined key left a policy footprint")
	}

	if adm, _ := g.RequestAdmit("hot"); !adm {
		t.Fatal("hot key not admitted")
	}
	before := gateCalls
	if adm, _ := g.RequestAdmit("hot"); !adm {
		t.Fatal("tracked key re-admission declined")
	}
	if gateCalls != before {
		t.Fatal("gate consulted for a tracked key")
	}

	// Bypass: a cold key with proven popularity goes straight through.
	if adm, _ := g.Admit("cold"); !adm {
		t.Fatal("Admit did not bypass the gate")
	}
	if g.Unwrap().Name() != "CLOCK" || g.Name() != "CLOCK+gate" {
		t.Fatalf("names: %q / %q", g.Unwrap().Name(), g.Name())
	}
}

// TestGatedTwoQueueFlow checks the gate composes with 2Q's A1
// admission filter: a gated-through fresh key still needs the second
// RequestAdmit to reach the main cache.
func TestGatedTwoQueueFlow(t *testing.T) {
	g := Gate(NewTwoQueue(4, 2), func(string) bool { return true })
	if adm, _ := g.RequestAdmit("k"); adm {
		t.Fatal("2Q admitted a first-sighting key to the main cache")
	}
	if adm, _ := g.RequestAdmit("k"); !adm {
		t.Fatal("2Q declined the promoting second request")
	}
	if _, ok := g.Unwrap().(*TwoQueue); !ok {
		t.Fatal("Unwrap lost the concrete policy type")
	}
}

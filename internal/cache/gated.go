package cache

// Gated decorates a Policy with a popularity-threshold admission
// filter: a key the base policy does not yet track must clear the
// gate before its first RequestAdmit is even forwarded, so one-shot
// keys from a cold scan never churn the replacement structures. Keys
// the policy already tracks re-admit ungated — they cleared the gate
// when they entered. The frequency plane supplies the gate (a sliding
// count-min estimate against a threshold); the decorator keeps the
// policies themselves frequency-oblivious.
type Gated struct {
	base Policy
	gate func(key string) bool
}

// Gate wraps base with an admission gate. gate is called for fresh
// keys only and must be cheap — it runs on the probe path.
func Gate(base Policy, gate func(key string) bool) *Gated {
	return &Gated{base: base, gate: gate}
}

// Unwrap returns the underlying policy (for callers that special-case
// a concrete policy, e.g. 2Q's double-admit idiom).
func (g *Gated) Unwrap() Policy { return g.base }

// Lookup records a reference and reports main-cache membership.
func (g *Gated) Lookup(key string) bool { return g.base.Lookup(key) }

// RequestAdmit forwards to the base policy, unless key is fresh and
// fails the gate — then it is declined without leaving any footprint.
func (g *Gated) RequestAdmit(key string) (admitted bool, evicted []string) {
	if !g.base.Contains(key) && !g.gate(key) {
		return false, nil
	}
	return g.base.RequestAdmit(key)
}

// Admit bypasses the gate: admission for keys whose popularity was
// proven elsewhere (a warm-restart snapshot, a router's top-k push).
func (g *Gated) Admit(key string) (admitted bool, evicted []string) {
	return g.base.RequestAdmit(key)
}

// Remove drops key from the base policy.
func (g *Gated) Remove(key string) { g.base.Remove(key) }

// Contains reports main-cache membership without a reference.
func (g *Gated) Contains(key string) bool { return g.base.Contains(key) }

// Len returns the base policy's main-cache size.
func (g *Gated) Len() int { return g.base.Len() }

// Cap returns the base policy's main-cache capacity.
func (g *Gated) Cap() int { return g.base.Cap() }

// Name identifies the gated policy in experiment output.
func (g *Gated) Name() string { return g.base.Name() + "+gate" }

package cache

// Clock is the CLOCK (second-chance) policy of Section 3.2: a circular
// buffer of entries with reference bits; the hand sweeps, clearing bits,
// and evicts the first unreferenced entry.
type Clock struct {
	capacity int
	slots    []clockSlot
	index    map[string]int
	hand     int
	used     int
}

type clockSlot struct {
	key   string
	ref   bool
	valid bool
}

// NewClock returns a CLOCK policy with the given capacity.
func NewClock(capacity int) *Clock {
	if capacity < 1 {
		capacity = 1
	}
	return &Clock{
		capacity: capacity,
		slots:    make([]clockSlot, capacity),
		index:    make(map[string]int, capacity),
	}
}

// Name implements Policy.
func (c *Clock) Name() string { return "CLOCK" }

// Lookup implements Policy: a hit sets the reference bit.
func (c *Clock) Lookup(key string) bool {
	if i, ok := c.index[key]; ok {
		c.slots[i].ref = true
		return true
	}
	return false
}

// Contains implements Policy.
func (c *Clock) Contains(key string) bool {
	_, ok := c.index[key]
	return ok
}

// RequestAdmit implements Policy: CLOCK always admits, evicting the
// hand's victim when full.
func (c *Clock) RequestAdmit(key string) (bool, []string) {
	if i, ok := c.index[key]; ok {
		c.slots[i].ref = true
		return true, nil
	}
	var evicted []string
	if c.used < c.capacity {
		// Find a free slot (holes left by Remove are reused).
		for range c.slots {
			if !c.slots[c.hand].valid {
				break
			}
			c.hand = (c.hand + 1) % c.capacity
		}
	} else {
		// Sweep: clear reference bits until an unreferenced victim.
		for {
			s := &c.slots[c.hand]
			if s.valid && s.ref {
				s.ref = false
				c.hand = (c.hand + 1) % c.capacity
				continue
			}
			if s.valid {
				evicted = append(evicted, s.key)
				delete(c.index, s.key)
				s.valid = false
				c.used--
			}
			break
		}
	}
	c.slots[c.hand] = clockSlot{key: key, ref: true, valid: true}
	c.index[key] = c.hand
	c.hand = (c.hand + 1) % c.capacity
	c.used++
	return true, evicted
}

// Remove implements Policy.
func (c *Clock) Remove(key string) {
	if i, ok := c.index[key]; ok {
		c.slots[i] = clockSlot{}
		delete(c.index, key)
		c.used--
	}
}

// Len implements Policy.
func (c *Clock) Len() int { return c.used }

// Cap implements Policy.
func (c *Clock) Cap() int { return c.capacity }

package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestNewFactory(t *testing.T) {
	for _, kind := range []PolicyKind{PolicyCLOCK, Policy2Q, PolicyLRU} {
		p, err := New(kind, 10)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p.Cap() < 1 {
			t.Errorf("%s: cap %d", kind, p.Cap())
		}
	}
	if _, err := New("bogus", 10); err == nil {
		t.Error("unknown policy accepted")
	}
}

// policies under test, with a fresh instance per case.
func allPolicies(capacity int) []Policy {
	return []Policy{NewClock(capacity), NewTwoQueue(capacity, capacity/2), NewLRU(capacity)}
}

func TestCapacityNeverExceeded(t *testing.T) {
	for _, p := range allPolicies(8) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(100))
			if !p.Lookup(k) {
				p.RequestAdmit(k)
			}
			if p.Len() > p.Cap() {
				t.Fatalf("%s: len %d > cap %d", p.Name(), p.Len(), p.Cap())
			}
		}
	}
}

func TestAdmitThenLookup(t *testing.T) {
	for _, p := range allPolicies(4) {
		adm, _ := p.RequestAdmit("a")
		if _, isTQ := p.(*TwoQueue); isTQ {
			if adm {
				t.Errorf("%s: first sighting admitted", p.Name())
			}
			// Second sighting promotes.
			adm, _ = p.RequestAdmit("a")
		}
		if !adm {
			t.Errorf("%s: admission failed", p.Name())
		}
		if !p.Lookup("a") || !p.Contains("a") {
			t.Errorf("%s: admitted key not found", p.Name())
		}
	}
}

func TestRemove(t *testing.T) {
	for _, p := range allPolicies(4) {
		p.RequestAdmit("a")
		p.RequestAdmit("a") // promote for 2Q
		p.Remove("a")
		if p.Contains("a") || p.Lookup("a") {
			t.Errorf("%s: removed key still present", p.Name())
		}
		if p.Len() != 0 {
			t.Errorf("%s: len %d after remove", p.Name(), p.Len())
		}
		// Removing a missing key is a no-op.
		p.Remove("ghost")
	}
}

func TestEvictionReportsVictims(t *testing.T) {
	for _, p := range []Policy{NewClock(3), NewLRU(3)} {
		var evicted []string
		for i := 0; i < 10; i++ {
			_, ev := p.RequestAdmit(fmt.Sprintf("k%d", i))
			evicted = append(evicted, ev...)
		}
		if len(evicted) != 7 {
			t.Errorf("%s: %d evictions for 10 admits into 3 slots", p.Name(), len(evicted))
		}
		// Evicted keys are gone.
		for _, k := range evicted {
			if p.Contains(k) {
				t.Errorf("%s: evicted %q still present", p.Name(), k)
			}
		}
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	l := NewLRU(2)
	l.RequestAdmit("a")
	l.RequestAdmit("b")
	l.Lookup("a") // a is now most recent
	_, ev := l.RequestAdmit("c")
	if len(ev) != 1 || ev[0] != "b" {
		t.Errorf("evicted %v, want [b]", ev)
	}
	if !l.Contains("a") || !l.Contains("c") || l.Contains("b") {
		t.Error("LRU state wrong")
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock(2)
	c.RequestAdmit("a")
	c.RequestAdmit("b")
	// Admitting c sweeps: both a and b lose their reference bits; a is
	// evicted (hand order). b survives with ref cleared.
	c.RequestAdmit("c")
	if c.Contains("a") {
		t.Error("a survived")
	}
	// Touch c; then admitting d must evict b (ref cleared), not c.
	c.Lookup("c")
	_, ev := c.RequestAdmit("d")
	if len(ev) != 1 || ev[0] != "b" {
		t.Errorf("evicted %v, want [b]", ev)
	}
	if !c.Contains("c") {
		t.Error("referenced entry evicted")
	}
}

func TestClockReusesRemovedSlots(t *testing.T) {
	c := NewClock(3)
	c.RequestAdmit("a")
	c.RequestAdmit("b")
	c.RequestAdmit("c")
	c.Remove("b")
	_, ev := c.RequestAdmit("d")
	if len(ev) != 0 {
		t.Errorf("eviction despite free slot: %v", ev)
	}
	if c.Len() != 3 {
		t.Errorf("len = %d", c.Len())
	}
}

func Test2QAdmissionFilter(t *testing.T) {
	q := NewTwoQueue(4, 2)
	// One-hit wonders never enter Am.
	for i := 0; i < 10; i++ {
		adm, _ := q.RequestAdmit(fmt.Sprintf("once%d", i))
		if adm {
			t.Fatal("single-sighting key admitted")
		}
	}
	if q.Len() != 0 {
		t.Errorf("Am holds %d one-hit wonders", q.Len())
	}
	// A repeated key is admitted on its second sighting while in A1.
	q.RequestAdmit("hot")
	adm, _ := q.RequestAdmit("hot")
	if !adm || !q.Contains("hot") {
		t.Error("repeated key not promoted")
	}
}

func Test2QA1IsFIFOAndBounded(t *testing.T) {
	q := NewTwoQueue(4, 2)
	q.RequestAdmit("a") // A1: [a]
	q.RequestAdmit("b") // A1: [a b]
	q.RequestAdmit("c") // A1: [b c] (a fell off)
	if q.InA1("a") {
		t.Error("A1 exceeded its bound")
	}
	// "a" fell out of A1: seeing it again does NOT promote.
	adm, _ := q.RequestAdmit("a")
	if adm {
		t.Error("key promoted after falling out of A1")
	}
}

func Test2QPromotionClearsA1(t *testing.T) {
	q := NewTwoQueue(4, 4)
	q.RequestAdmit("x")
	if !q.InA1("x") {
		t.Fatal("x not in A1")
	}
	q.RequestAdmit("x")
	if q.InA1("x") {
		t.Error("promoted key still in A1")
	}
}

func TestPolicyNames(t *testing.T) {
	if NewClock(1).Name() != "CLOCK" || NewTwoQueue(1, 1).Name() != "2Q" || NewLRU(1).Name() != "LRU" {
		t.Error("policy names wrong")
	}
}

func TestSkewedWorkloadHitRates(t *testing.T) {
	// Under a skewed workload with a working set larger than the
	// cache, 2Q's admission filter should beat plain CLOCK.
	run := func(p Policy) float64 {
		rng := rand.New(rand.NewSource(42))
		hits, total := 0, 0
		for i := 0; i < 60000; i++ {
			var k string
			if rng.Intn(100) < 60 {
				k = fmt.Sprintf("hot%d", rng.Intn(50)) // hot set of 50
			} else {
				k = fmt.Sprintf("cold%d", rng.Intn(100000)) // huge cold tail
			}
			if i > 20000 { // measure after warm-up
				total++
				if p.Lookup(k) {
					hits++
					continue
				}
			} else if p.Lookup(k) {
				continue
			}
			p.RequestAdmit(k)
		}
		return float64(hits) / float64(total)
	}
	clock := run(NewClock(102))
	twoq := run(NewTwoQueue(100, 50))
	if twoq <= clock {
		t.Errorf("2Q (%.3f) did not beat CLOCK (%.3f) on scan-polluted workload", twoq, clock)
	}
	if twoq < 0.5 {
		t.Errorf("2Q hit rate %.3f suspiciously low", twoq)
	}
}

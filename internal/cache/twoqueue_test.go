package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// checkTwoQueueInvariants asserts the structural invariants that every
// 2Q interleaving must preserve: Am never exceeds its capacity, A1
// never exceeds its capacity, and no key sits in both queues at once
// (promotion must remove from A1, admission to A1 must not duplicate
// an Am resident).
func checkTwoQueueInvariants(t *testing.T, q *TwoQueue, universe []string) {
	t.Helper()
	if q.Len() > q.Cap() {
		t.Fatalf("Am holds %d entries, capacity %d", q.Len(), q.Cap())
	}
	inA1 := 0
	for _, k := range universe {
		if q.InA1(k) {
			inA1++
			if q.Contains(k) {
				t.Fatalf("key %q is in both A1 and Am", k)
			}
		}
	}
	if inA1 > q.a1Cap {
		t.Fatalf("A1 holds %d entries, capacity %d", inA1, q.a1Cap)
	}
}

func Test2QEvictedKeyRestartsAdmission(t *testing.T) {
	q := NewTwoQueue(2, 2)
	promote := func(k string) (bool, []string) {
		q.RequestAdmit(k)
		return q.RequestAdmit(k)
	}
	promote("a")
	promote("b")

	// Promoting more keys than Am holds must evict, and CLOCK only
	// spares referenced entries; with none referenced the first
	// promotion beyond capacity evicts someone.
	var evicted []string
	for _, k := range []string{"c", "d"} {
		_, ev := promote(k)
		evicted = append(evicted, ev...)
	}
	if len(evicted) == 0 {
		t.Fatal("filling Am past capacity evicted nothing")
	}
	victim := evicted[0]
	if q.Contains(victim) {
		t.Fatalf("evicted key %q still in Am", victim)
	}
	if q.InA1(victim) {
		t.Fatalf("evicted key %q moved to A1; eviction must fully forget it", victim)
	}

	// The victim starts over: first sighting goes to A1 unadmitted,
	// the second promotes.
	if ok, _ := q.RequestAdmit(victim); ok {
		t.Fatalf("evicted key %q readmitted on first sighting", victim)
	}
	if !q.InA1(victim) {
		t.Fatalf("evicted key %q not queued in A1 on first re-sighting", victim)
	}
	if ok, _ := q.RequestAdmit(victim); !ok {
		t.Fatalf("evicted key %q not promoted on second re-sighting", victim)
	}
}

func Test2QRemoveWhileInA1ResetsHistory(t *testing.T) {
	q := NewTwoQueue(4, 2)
	q.RequestAdmit("x")
	if !q.InA1("x") {
		t.Fatal("first sighting did not enqueue in A1")
	}
	q.Remove("x")
	if q.InA1("x") || q.Contains("x") {
		t.Fatal("Remove left state behind")
	}
	// With its A1 history wiped the next sighting is a first sighting
	// again — admitting here would defeat the 2Q admission filter.
	if ok, _ := q.RequestAdmit("x"); ok {
		t.Fatal("key admitted right after Remove; A1 history survived")
	}
}

func Test2QA1OverflowDropsPromotionClaim(t *testing.T) {
	q := NewTwoQueue(4, 2)
	q.RequestAdmit("a")
	q.RequestAdmit("b")
	// "c" overflows A1 and pushes out "a", the oldest.
	q.RequestAdmit("c")
	if q.InA1("a") {
		t.Fatal("A1 overflow kept the oldest entry")
	}
	// "a" lost its history: this sighting re-enters A1 instead of
	// promoting.
	if ok, _ := q.RequestAdmit("a"); ok {
		t.Fatal("key promoted from evicted A1 slot")
	}
}

func Test2QRandomOpsPreserveInvariants(t *testing.T) {
	q := NewTwoQueue(8, 4)
	universe := make([]string, 24)
	for i := range universe {
		universe[i] = fmt.Sprintf("k%d", i)
	}
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 20_000; op++ {
		k := universe[rng.Intn(len(universe))]
		switch rng.Intn(4) {
		case 0, 1:
			if ok, _ := q.RequestAdmit(k); ok && !q.Contains(k) {
				t.Fatalf("op %d: key %q admitted but not in Am", op, k)
			}
		case 2:
			q.Lookup(k)
		case 3:
			q.Remove(k)
			if q.Contains(k) || q.InA1(k) {
				t.Fatalf("op %d: key %q survived Remove", op, k)
			}
		}
		checkTwoQueueInvariants(t, q, universe)
	}
}

// Test2QConcurrentHammer drives the policy the way a view does — many
// goroutines serialized on one mutex — and validates the structural
// invariants after every mutation. Run with -race: it proves the
// documented locking discipline (callers lock; the policy itself is
// unsynchronized) actually covers promotion, A1 overflow, eviction,
// and removal interleavings.
func Test2QConcurrentHammer(t *testing.T) {
	q := NewTwoQueue(16, 8)
	universe := make([]string, 48)
	for i := range universe {
		universe[i] = fmt.Sprintf("k%d", i)
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	fail := make(chan string, 1)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}
	const workers = 8
	const opsPerWorker = 4_000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPerWorker; op++ {
				k := universe[rng.Intn(len(universe))]
				mu.Lock()
				switch rng.Intn(5) {
				case 0, 1, 2:
					if ok, _ := q.RequestAdmit(k); ok && !q.Contains(k) {
						report("worker %d: key %q admitted but not in Am", seed, k)
					}
				case 3:
					if q.Lookup(k) && !q.Contains(k) {
						report("worker %d: key %q hit but not contained", seed, k)
					}
				case 4:
					q.Remove(k)
					if q.Contains(k) || q.InA1(k) {
						report("worker %d: key %q survived Remove", seed, k)
					}
				}
				if q.Len() > q.Cap() {
					report("worker %d: Am %d over capacity %d", seed, q.Len(), q.Cap())
				}
				if q.InA1(k) && q.Contains(k) {
					report("worker %d: key %q in both queues", seed, k)
				}
				mu.Unlock()
			}
		}(int64(w + 1))
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	checkTwoQueueInvariants(t, q, universe)
}

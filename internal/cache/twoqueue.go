package cache

import "container/list"

// TwoQueue is the simplified 2Q of Section 4.1: the main cache Am is a
// CLOCK of N entries holding bcps with their cached tuples; A1 is a
// FIFO of N′ = 50%·N bcp-only entries. A bcp's first appearance puts it
// in A1; a second appearance while still in A1 promotes it to Am. Only
// Am serves partial results.
type TwoQueue struct {
	am      *Clock
	a1      *list.List // FIFO of keys; front = oldest
	a1Index map[string]*list.Element
	a1Cap   int
}

// NewTwoQueue returns a 2Q policy with Am capacity amCap and A1
// capacity a1Cap.
func NewTwoQueue(amCap, a1Cap int) *TwoQueue {
	if a1Cap < 1 {
		a1Cap = 1
	}
	return &TwoQueue{
		am:      NewClock(amCap),
		a1:      list.New(),
		a1Index: make(map[string]*list.Element, a1Cap),
		a1Cap:   a1Cap,
	}
}

// Name implements Policy.
func (q *TwoQueue) Name() string { return "2Q" }

// Lookup implements Policy: only Am counts as a hit.
func (q *TwoQueue) Lookup(key string) bool { return q.am.Lookup(key) }

// Contains implements Policy.
func (q *TwoQueue) Contains(key string) bool { return q.am.Contains(key) }

// InA1 reports whether key currently sits in the admission queue
// (exported for tests and stats).
func (q *TwoQueue) InA1(key string) bool {
	_, ok := q.a1Index[key]
	return ok
}

// RequestAdmit implements Policy. First sighting → A1, not admitted;
// sighting while in A1 → promoted to Am (admitted); already in Am →
// admitted (reference recorded).
func (q *TwoQueue) RequestAdmit(key string) (bool, []string) {
	if q.am.Contains(key) {
		q.am.Lookup(key)
		return true, nil
	}
	if el, ok := q.a1Index[key]; ok {
		q.a1.Remove(el)
		delete(q.a1Index, key)
		return q.am.RequestAdmit(key)
	}
	// First sighting: enqueue in A1, evicting its oldest if full.
	if q.a1.Len() >= q.a1Cap {
		oldest := q.a1.Front()
		q.a1.Remove(oldest)
		delete(q.a1Index, oldest.Value.(string))
	}
	q.a1Index[key] = q.a1.PushBack(key)
	return false, nil
}

// Remove implements Policy.
func (q *TwoQueue) Remove(key string) {
	q.am.Remove(key)
	if el, ok := q.a1Index[key]; ok {
		q.a1.Remove(el)
		delete(q.a1Index, key)
	}
}

// Len implements Policy (main cache only).
func (q *TwoQueue) Len() int { return q.am.Len() }

// Cap implements Policy (main cache only).
func (q *TwoQueue) Cap() int { return q.am.Cap() }

// LRU is a classic least-recently-used policy, included as an extra
// baseline beyond the paper's CLOCK/2Q comparison.
type LRU struct {
	capacity int
	ll       *list.List // front = most recent
	index    map[string]*list.Element
}

// NewLRU returns an LRU policy with the given capacity.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{capacity: capacity, ll: list.New(), index: make(map[string]*list.Element, capacity)}
}

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// Lookup implements Policy.
func (l *LRU) Lookup(key string) bool {
	if el, ok := l.index[key]; ok {
		l.ll.MoveToFront(el)
		return true
	}
	return false
}

// Contains implements Policy.
func (l *LRU) Contains(key string) bool {
	_, ok := l.index[key]
	return ok
}

// RequestAdmit implements Policy: always admits, evicting the LRU tail.
func (l *LRU) RequestAdmit(key string) (bool, []string) {
	if el, ok := l.index[key]; ok {
		l.ll.MoveToFront(el)
		return true, nil
	}
	var evicted []string
	if l.ll.Len() >= l.capacity {
		tail := l.ll.Back()
		l.ll.Remove(tail)
		k := tail.Value.(string)
		delete(l.index, k)
		evicted = append(evicted, k)
	}
	l.index[key] = l.ll.PushFront(key)
	return true, evicted
}

// Remove implements Policy.
func (l *LRU) Remove(key string) {
	if el, ok := l.index[key]; ok {
		l.ll.Remove(el)
		delete(l.index, key)
	}
}

// Len implements Policy.
func (l *LRU) Len() int { return l.ll.Len() }

// Cap implements Policy.
func (l *LRU) Cap() int { return l.capacity }

package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchPolicy(b *testing.B, p Policy) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("bcp-%08d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[int(float64(len(keys))*rng.Float64()*rng.Float64())] // mild skew
		if !p.Lookup(k) {
			p.RequestAdmit(k)
		}
	}
}

func BenchmarkClock(b *testing.B)    { benchPolicy(b, NewClock(512)) }
func BenchmarkTwoQueue(b *testing.B) { benchPolicy(b, NewTwoQueue(512, 256)) }
func BenchmarkLRU(b *testing.B)      { benchPolicy(b, NewLRU(512)) }

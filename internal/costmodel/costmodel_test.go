package costmodel

import (
	"math"
	"testing"
)

func TestPaperQualitativeFacts(t *testing.T) {
	m := Default()
	for p := 0.0; p < 1.0; p += 0.05 {
		mv, pmv := m.MVWorkload(p), m.PMVWorkload(p)
		// "maintaining VPM is at least two orders of magnitude cheaper
		// than maintaining VM" (Figure 11).
		if mv/pmv < 100 {
			t.Errorf("p=%.2f: MV/PMV = %.1f < 100", p, mv/pmv)
		}
	}
	// PMV needs no maintenance at p = 100%.
	if m.PMVWorkload(1.0) != 0 {
		t.Errorf("PMV workload at p=1 is %f, want 0", m.PMVWorkload(1.0))
	}
	// Inserting into VM is cheaper than deleting from VM.
	if m.MVWorkload(1.0) >= m.MVWorkload(0.0) {
		t.Error("MV insert-heavy workload not cheaper than delete-heavy")
	}
}

func TestMonotonicity(t *testing.T) {
	m := Default()
	for p := 0.0; p < 0.95; p += 0.05 {
		if m.MVWorkload(p+0.05) >= m.MVWorkload(p) {
			t.Errorf("MV workload not decreasing at p=%.2f", p)
		}
		if m.PMVWorkload(p+0.05) >= m.PMVWorkload(p) {
			t.Errorf("PMV workload not decreasing at p=%.2f", p)
		}
		if m.Speedup(p+0.05) <= m.Speedup(p) {
			t.Errorf("speedup not increasing at p=%.2f", p)
		}
	}
}

func TestSpeedupRange(t *testing.T) {
	m := Default()
	// Figure 12's range: roughly 100x at p=0 rising toward several
	// hundred near p=1.
	if s := m.Speedup(0); s < 50 || s > 300 {
		t.Errorf("speedup at p=0: %.0f, expected ~100", s)
	}
	if s := m.Speedup(0.95); s < 300 || s > 1000 {
		t.Errorf("speedup at p=0.95: %.0f, expected several hundred", s)
	}
	if s := m.Speedup(1.0); s < 1e300 {
		t.Errorf("speedup at p=1 should be effectively infinite, got %f", s)
	}
}

func TestFigure11Shape(t *testing.T) {
	m := Default()
	// The figure's log y-axis spans 1..10000: both curves must fit.
	for _, pt := range m.Sweep(10) {
		if pt.MVIO > 10000 || pt.MVIO < 1000 {
			t.Errorf("p=%.1f: MV = %.0f outside the figure's visual band", pt.P, pt.MVIO)
		}
		if pt.P < 1 && (pt.PMVIO < 1 || pt.PMVIO > 100) {
			t.Errorf("p=%.1f: PMV = %.1f outside the figure's visual band", pt.P, pt.PMVIO)
		}
	}
}

func TestSweepGrid(t *testing.T) {
	m := Default()
	pts := m.Sweep(4)
	if len(pts) != 5 {
		t.Fatalf("sweep size %d", len(pts))
	}
	if pts[0].P != 0 || pts[4].P != 1 {
		t.Error("grid endpoints wrong")
	}
	if got := m.Sweep(0); len(got) != 11 {
		t.Errorf("default grid size %d", len(got))
	}
}

func TestWorkloadScalesWithDeltaR(t *testing.T) {
	a := Default()
	b := Default()
	b.DeltaR = 2 * a.DeltaR
	if math.Abs(b.MVWorkload(0.5)-2*a.MVWorkload(0.5)) > 1e-9 {
		t.Error("MV workload not linear in |ΔR|")
	}
}

func TestPointString(t *testing.T) {
	m := Default()
	pts := m.Sweep(1)
	if pts[0].String() == "" || pts[1].String() == "" {
		t.Error("empty point rendering")
	}
	// p=1 renders the infinite speedup specially.
	if got := pts[1].String(); got == "" {
		t.Error("p=1 point not rendered")
	}
}

// Package costmodel is the Section 4.3 analytical model comparing the
// maintenance cost of a traditional materialized view VM against a
// partial materialized view VPM when a transaction T applies p·|ΔR|
// inserts and (1−p)·|ΔR| deletes to a base relation R of the Figure 1
// template. The cost metric is the total workload TW in I/Os; the cost
// of updating R itself is identical for both methods and omitted, as
// in the paper.
//
// The paper cites its full version [25] for the model's constants and
// reports only the resulting curves, so the defaults here were chosen
// to reproduce every qualitative fact the text states:
//
//   - maintaining VPM is at least two orders of magnitude cheaper than
//     maintaining VM at every p (Figure 11);
//   - inserting into VM is cheaper than deleting from VM, so both
//     curves decrease as p grows;
//   - VPM needs no work at all for inserts, so its curve falls to
//     (almost) zero as p → 100%;
//   - the speedup ratio rises with p, from roughly a hundred to
//     several hundred (Figure 12).
//
// Cost story per changed R tuple: VM maintenance must join the delta
// tuple with S (an index probe) and then insert or delete each derived
// row in the disk-resident VM (deletes costing more than inserts —
// locate + remove + index fix-up). VPM maintenance ignores inserts
// entirely; for deletes it probes the in-memory maintenance index
// ([25] optimization), touching disk only when the referenced PMV page
// has been evicted (PMVFaultProb). A small fixed commit-time cost
// accounts for writing back the PMV pages the transaction dirtied.
package costmodel

import "fmt"

// Model parameterizes the analytical comparison.
type Model struct {
	// DeltaR is |ΔR|, the number of changed tuples (paper: 1000).
	DeltaR int
	// JoinFanout is the number of derived (join result) rows per
	// changed R tuple.
	JoinFanout float64
	// IdxProbeIO is the I/O cost of joining one delta tuple with the
	// other base relation (index descent, amortized over caching).
	IdxProbeIO float64
	// MVInsertIO is the I/O cost of adding one derived row to VM.
	MVInsertIO float64
	// MVDeleteIO is the I/O cost of removing one derived row from VM
	// (locate + remove + index fix-up; more than an insert).
	MVDeleteIO float64
	// PMVFaultProb is the chance a PMV maintenance probe touches a
	// non-resident page (most of the PMV is memory-cached).
	PMVFaultProb float64
	// PMVFaultIO is the I/O cost of such a fault.
	PMVFaultIO float64
	// PMVFixedIO is the per-transaction cost of writing back dirtied
	// PMV pages at commit, independent of p.
	PMVFixedIO float64
}

// Default returns the calibrated model used for Figures 11 and 12.
func Default() Model {
	return Model{
		DeltaR:       1000,
		JoinFanout:   1,
		IdxProbeIO:   1.0,
		MVInsertIO:   1.0,
		MVDeleteIO:   2.0,
		PMVFaultProb: 0.02,
		PMVFaultIO:   1.0,
		PMVFixedIO:   3.5,
	}
}

// MVWorkload returns TW for maintaining the traditional MV at insert
// fraction p.
func (m Model) MVWorkload(p float64) float64 {
	ins := m.IdxProbeIO + m.JoinFanout*m.MVInsertIO
	del := m.IdxProbeIO + m.JoinFanout*m.MVDeleteIO
	return float64(m.DeltaR) * (p*ins + (1-p)*del)
}

// PMVWorkload returns TW for maintaining the PMV at insert fraction p.
// Inserts are free (deferred maintenance); deletes cost only residual
// page faults; at p = 100% the per-tuple term vanishes, as the paper
// notes.
func (m Model) PMVWorkload(p float64) float64 {
	del := m.JoinFanout * m.PMVFaultProb * m.PMVFaultIO
	w := float64(m.DeltaR) * (1 - p) * del
	if p < 1 {
		w += m.PMVFixedIO
	}
	// At exactly p = 100% nothing was deleted and nothing dirtied:
	// the paper states the overhead is 0.
	if p >= 1 {
		return 0
	}
	return w
}

// Speedup returns MVWorkload/PMVWorkload. It reports +Inf at p = 100%
// (the PMV needs no maintenance at all there).
func (m Model) Speedup(p float64) float64 {
	pmv := m.PMVWorkload(p)
	if pmv == 0 {
		return inf
	}
	return m.MVWorkload(p) / pmv
}

const inf = 1e308 // effectively infinite; avoids Inf in JSON output

// Point is one sample of the p sweep.
type Point struct {
	P       float64
	MVIO    float64
	PMVIO   float64
	Speedup float64
}

// Sweep evaluates the model on an even grid of n+1 points over
// p ∈ [0, 1].
func (m Model) Sweep(n int) []Point {
	if n < 1 {
		n = 10
	}
	out := make([]Point, 0, n+1)
	for i := 0; i <= n; i++ {
		p := float64(i) / float64(n)
		out = append(out, Point{
			P:       p,
			MVIO:    m.MVWorkload(p),
			PMVIO:   m.PMVWorkload(p),
			Speedup: m.Speedup(p),
		})
	}
	return out
}

// String renders a point for harness output.
func (pt Point) String() string {
	sp := fmt.Sprintf("%.0f", pt.Speedup)
	if pt.Speedup >= inf {
		sp = "inf"
	}
	return fmt.Sprintf("p=%3.0f%%  MV=%8.1f IO  PMV=%6.2f IO  speedup=%s",
		pt.P*100, pt.MVIO, pt.PMVIO, sp)
}

package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pmv/internal/buffer"
	"pmv/internal/storage"
)

func newTree(t testing.TB, frames int) *Tree {
	t.Helper()
	mgr, err := storage.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	pool := buffer.NewPool(mgr, frames)
	tr, err := Open(pool, mgr, "idx.test")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestInsertContainsDelete(t *testing.T) {
	tr := newTree(t, 64)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(key(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		ok, err := tr.Contains(key(i))
		if err != nil || !ok {
			t.Fatalf("contains %d: %v %v", i, ok, err)
		}
	}
	if ok, _ := tr.Contains(key(1000)); ok {
		t.Error("phantom key")
	}
	for i := 0; i < 100; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		ok, _ := tr.Contains(key(i))
		if want := i%2 == 1; ok != want {
			t.Errorf("after delete: contains(%d) = %v", i, ok)
		}
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	tr := newTree(t, 16)
	if err := tr.Insert(key(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(key(1)); !errors.Is(err, ErrKeyExists) {
		t.Errorf("duplicate insert: %v", err)
	}
	if err := tr.Delete(key(2)); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("missing delete: %v", err)
	}
}

func TestScanOrderAndRange(t *testing.T) {
	tr := newTree(t, 64)
	perm := rand.New(rand.NewSource(3)).Perm(500)
	for _, i := range perm {
		if err := tr.Insert(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	err := tr.Scan(nil, nil, func(k []byte) error {
		got = append(got, int(binary.BigEndian.Uint64(k)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 || !sort.IntsAreSorted(got) {
		t.Fatalf("full scan: %d keys, sorted=%v", len(got), sort.IntsAreSorted(got))
	}
	// Bounded range [100, 200).
	got = got[:0]
	err = tr.Scan(key(100), key(200), func(k []byte) error {
		got = append(got, int(binary.BigEndian.Uint64(k)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 || got[0] != 100 || got[99] != 199 {
		t.Errorf("range scan: n=%d first=%d last=%d", len(got), got[0], got[len(got)-1])
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newTree(t, 64)
	for i := 0; i < 50; i++ {
		tr.Insert(key(i))
	}
	n := 0
	err := tr.Scan(nil, nil, func([]byte) error {
		n++
		if n == 10 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil || n != 10 {
		t.Errorf("early stop: n=%d err=%v", n, err)
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	tr := newTree(t, 256)
	const n = 20000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("height %d after %d inserts — no splits happened?", h, n)
	}
	c, err := tr.Count()
	if err != nil || c != n {
		t.Errorf("count %d want %d (err %v)", c, n, err)
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	tr := newTree(t, 128)
	ref := make(map[string]bool)
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 5000; op++ {
		k := key(rng.Intn(800))
		switch rng.Intn(3) {
		case 0, 1:
			err := tr.Insert(k)
			if ref[string(k)] {
				if !errors.Is(err, ErrKeyExists) {
					t.Fatalf("op %d: expected ErrKeyExists, got %v", op, err)
				}
			} else if err != nil {
				t.Fatalf("op %d: insert: %v", op, err)
			} else {
				ref[string(k)] = true
			}
		case 2:
			err := tr.Delete(k)
			if ref[string(k)] {
				if err != nil {
					t.Fatalf("op %d: delete: %v", op, err)
				}
				delete(ref, string(k))
			} else if !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("op %d: expected ErrKeyNotFound, got %v", op, err)
			}
		}
	}
	// Final state must match the model exactly, in order.
	want := make([]string, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	tr.Scan(nil, nil, func(k []byte) error {
		got = append(got, string(k))
		return nil
	})
	if len(got) != len(want) {
		t.Fatalf("size mismatch: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := newTree(t, 128)
	var keys []string
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("%0*d", 1+rng.Intn(60), i)
		keys = append(keys, k)
		if err := tr.Insert([]byte(k)); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	sort.Strings(keys)
	i := 0
	err := tr.Scan(nil, nil, func(k []byte) error {
		if string(k) != keys[i] {
			return fmt.Errorf("position %d: got %q want %q", i, k, keys[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Errorf("scanned %d of %d", i, len(keys))
	}
}

func TestKeyTooLarge(t *testing.T) {
	tr := newTree(t, 16)
	if err := tr.Insert(bytes.Repeat([]byte{1}, 5000)); !errors.Is(err, ErrKeyTooLarge) {
		t.Errorf("oversized key: %v", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(mgr, 64)
	tr, err := Open(pool, mgr, "idx.p")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	mgr2, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	pool2 := buffer.NewPool(mgr2, 64)
	tr2, err := Open(pool2, mgr2, "idx.p")
	if err != nil {
		t.Fatal(err)
	}
	c, err := tr2.Count()
	if err != nil || c != 3000 {
		t.Errorf("after reopen: count=%d err=%v", c, err)
	}
	for _, i := range []int{0, 1499, 2999} {
		if ok, _ := tr2.Contains(key(i)); !ok {
			t.Errorf("key %d lost across reopen", i)
		}
	}
}

func TestPackUnpackRID(t *testing.T) {
	k := []byte("logical")
	rid := storage.RID{Page: 77, Slot: 9}
	entry := PackRID(k, rid)
	k2, rid2, err := UnpackRID(entry)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k, k2) || rid2 != rid {
		t.Errorf("roundtrip: %q %v", k2, rid2)
	}
	if _, _, err := UnpackRID([]byte("tiny")); err == nil {
		t.Error("short entry accepted")
	}
}

func TestSuccessor(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{1, 2, 3}, []byte{1, 2, 4}},
		{[]byte{1, 0xFF}, []byte{2}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
	}
	for _, c := range cases {
		got := Successor(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("Successor(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Property: in < Successor(in), and no key with prefix `in` is >= it.
	for i := 0; i < 100; i++ {
		p := key(i * 37)
		s := Successor(p)
		if bytes.Compare(p, s) >= 0 {
			t.Errorf("successor not greater: %v %v", p, s)
		}
		ext := append(append([]byte{}, p...), 0xFF, 0xFF)
		if bytes.Compare(ext, s) >= 0 {
			t.Errorf("extension %v escapes successor %v", ext, s)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := newTree(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(key(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	tr := newTree(b, 1024)
	for i := 0; i < 100000; i++ {
		tr.Insert(key(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Contains(key(i % 100000))
	}
}

func TestConcurrentReaders(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 5000; i++ {
		if err := tr.Insert(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int) {
			for i := 0; i < 300; i++ {
				k := (seed*131 + i*37) % 5000
				ok, err := tr.Contains(key(k))
				if err != nil {
					done <- err
					return
				}
				if !ok {
					done <- fmt.Errorf("key %d missing", k)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadersDuringWrites(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 1000; i++ {
		tr.Insert(key(i))
	}
	stop := make(chan struct{})
	errc := make(chan error, 4)
	for g := 0; g < 3; g++ {
		go func(seed int) {
			i := 0
			for {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				if _, err := tr.Contains(key((seed + i) % 1000)); err != nil {
					errc <- err
					return
				}
				i++
			}
		}(g * 311)
	}
	for i := 1000; i < 3000; i++ {
		if err := tr.Insert(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for g := 0; g < 3; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	c, _ := tr.Count()
	if c != 3000 {
		t.Errorf("count = %d", c)
	}
}

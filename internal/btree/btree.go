// Package btree implements a disk-resident B+tree over the buffer
// pool. It stores variable-length byte keys in memcmp order (produced
// by keycodec) and is used for every secondary index in the engine —
// the selection and join attribute indexes the paper's query plans
// depend on.
//
// Entries are unique byte strings. Callers that need duplicate logical
// keys (a secondary index mapping key → many RIDs) append the 6-byte
// RID encoding to the logical key, which both disambiguates duplicates
// and makes deletes exact; see PackRID/UnpackRID.
//
// Deletion is lazy: entries are removed from leaves but nodes are not
// merged or rebalanced. For the paper's workloads (bulk load, then
// reads with a modest delete rate) this is the standard trade-off;
// space is reclaimed by rebuilding the index.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"pmv/internal/buffer"
	"pmv/internal/storage"
)

// Sentinel errors.
var (
	ErrKeyExists   = errors.New("btree: key exists")
	ErrKeyNotFound = errors.New("btree: key not found")
	ErrKeyTooLarge = errors.New("btree: key too large")
)

// ErrStopScan stops a scan early without error.
var ErrStopScan = errors.New("btree: stop scan")

const (
	metaPage  = storage.PageID(0)
	metaMagic = 0xB7EE0001
	nodeLeaf  = 1
	nodeInner = 2
	maxKeyLen = 1024
	// serialized node header: type(1) + count(2) + next(4) + rightmost(4)
	nodeHdr = 11
)

// Tree is one B+tree index.
type Tree struct {
	pool *buffer.Pool
	file string

	mu   sync.RWMutex
	root storage.PageID
}

// Open opens (creating if empty) the B+tree stored in file.
func Open(pool *buffer.Pool, mgr *storage.Manager, file string) (*Tree, error) {
	t := &Tree{pool: pool, file: file}
	f, err := mgr.Open(file)
	if err != nil {
		return nil, err
	}
	if f.NumPages() == 0 {
		// Fresh tree: meta page + empty root leaf.
		mfr, mid, err := pool.NewPage(file)
		if err != nil {
			return nil, err
		}
		if mid != metaPage {
			pool.Unpin(mfr, false)
			return nil, fmt.Errorf("btree: meta page allocated at %d", mid)
		}
		rfr, rid, err := pool.NewPage(file)
		if err != nil {
			pool.Unpin(mfr, false)
			return nil, err
		}
		root := &node{isLeaf: true, next: storage.InvalidPageID}
		root.serialize(rfr.Buf)
		pool.Unpin(rfr, true)
		binary.BigEndian.PutUint32(mfr.Buf[0:], metaMagic)
		binary.BigEndian.PutUint32(mfr.Buf[4:], uint32(rid))
		pool.Unpin(mfr, true)
		t.root = rid
		return t, nil
	}
	mfr, err := pool.Fetch(file, metaPage)
	if err != nil {
		return nil, err
	}
	switch binary.BigEndian.Uint32(mfr.Buf[0:]) {
	case metaMagic:
		t.root = storage.PageID(binary.BigEndian.Uint32(mfr.Buf[4:]))
		pool.Unpin(mfr, false)
		return t, nil
	case 0:
		// An all-zero meta page means the file was allocated but its
		// content never reached disk (a crash before flush). The tree
		// holds nothing durable; reformat it with a fresh empty root.
		// Recovery rebuilds secondary indexes from the heap afterwards.
		rfr, rid, err := pool.NewPage(file)
		if err != nil {
			pool.Unpin(mfr, false)
			return nil, err
		}
		root := &node{isLeaf: true, next: storage.InvalidPageID}
		root.serialize(rfr.Buf)
		pool.Unpin(rfr, true)
		binary.BigEndian.PutUint32(mfr.Buf[0:], metaMagic)
		binary.BigEndian.PutUint32(mfr.Buf[4:], uint32(rid))
		pool.Unpin(mfr, true)
		t.root = rid
		return t, nil
	default:
		pool.Unpin(mfr, false)
		return nil, fmt.Errorf("btree: %s: bad meta magic", file)
	}
}

// File returns the backing file name.
func (t *Tree) File() string { return t.file }

// node is the in-memory form of one page. Nodes are read, mutated, and
// re-serialized whole; with 8 KiB pages this keeps the code simple and
// the constant factors acceptable.
type node struct {
	isLeaf   bool
	next     storage.PageID // leaf sibling chain
	keys     [][]byte
	children []storage.PageID // inner only; len(children) == len(keys)+1
}

func (n *node) serializedSize() int {
	sz := nodeHdr + 2*len(n.keys) // slot offsets
	for _, k := range n.keys {
		sz += 2 + len(k)
		if !n.isLeaf {
			sz += 4
		}
	}
	return sz
}

func (n *node) serialize(buf []byte) {
	if n.isLeaf {
		buf[0] = nodeLeaf
	} else {
		buf[0] = nodeInner
	}
	binary.BigEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	binary.BigEndian.PutUint32(buf[3:], uint32(n.next))
	if !n.isLeaf {
		binary.BigEndian.PutUint32(buf[7:], uint32(n.children[len(n.keys)]))
	} else {
		binary.BigEndian.PutUint32(buf[7:], 0)
	}
	off := nodeHdr + 2*len(n.keys)
	for i, k := range n.keys {
		binary.BigEndian.PutUint16(buf[nodeHdr+2*i:], uint16(off))
		binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
		copy(buf[off+2:], k)
		off += 2 + len(k)
		if !n.isLeaf {
			binary.BigEndian.PutUint32(buf[off:], uint32(n.children[i]))
			off += 4
		}
	}
}

func deserialize(buf []byte) (*node, error) {
	n := &node{}
	switch buf[0] {
	case nodeLeaf:
		n.isLeaf = true
	case nodeInner:
		n.isLeaf = false
	default:
		return nil, fmt.Errorf("btree: bad node type %d", buf[0])
	}
	count := int(binary.BigEndian.Uint16(buf[1:]))
	n.next = storage.PageID(binary.BigEndian.Uint32(buf[3:]))
	n.keys = make([][]byte, count)
	if !n.isLeaf {
		n.children = make([]storage.PageID, count+1)
		n.children[count] = storage.PageID(binary.BigEndian.Uint32(buf[7:]))
	}
	for i := 0; i < count; i++ {
		off := int(binary.BigEndian.Uint16(buf[nodeHdr+2*i:]))
		klen := int(binary.BigEndian.Uint16(buf[off:]))
		key := make([]byte, klen)
		copy(key, buf[off+2:off+2+klen])
		n.keys[i] = key
		if !n.isLeaf {
			n.children[i] = storage.PageID(binary.BigEndian.Uint32(buf[off+2+klen:]))
		}
	}
	return n, nil
}

func (t *Tree) readNode(id storage.PageID) (*node, error) {
	fr, err := t.pool.Fetch(t.file, id)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(fr, false)
	return deserialize(fr.Buf)
}

func (t *Tree) writeNode(id storage.PageID, n *node) error {
	fr, err := t.pool.Fetch(t.file, id)
	if err != nil {
		return err
	}
	n.serialize(fr.Buf)
	t.pool.Unpin(fr, true)
	return nil
}

func (t *Tree) allocNode(n *node) (storage.PageID, error) {
	fr, id, err := t.pool.NewPage(t.file)
	if err != nil {
		return storage.InvalidPageID, err
	}
	n.serialize(fr.Buf)
	t.pool.Unpin(fr, true)
	return id, nil
}

func (t *Tree) setRoot(id storage.PageID) error {
	fr, err := t.pool.Fetch(t.file, metaPage)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(fr.Buf[4:], uint32(id))
	t.pool.Unpin(fr, true)
	t.root = id
	return nil
}

// searchIdx returns the first index i with keys[i] >= key.
func searchIdx(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIdx returns the child slot to descend into for key. Keys in
// child i are < keys[i]; the rightmost child holds keys >= the last
// separator.
func childIdx(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Insert adds key to the tree. Inserting a key that already exists
// returns ErrKeyExists.
func (t *Tree) Insert(key []byte) error {
	if len(key) > maxKeyLen {
		return ErrKeyTooLarge
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sep, right, err := t.insertRec(t.root, key)
	if err != nil {
		return err
	}
	if right == storage.InvalidPageID {
		return nil
	}
	// Root split: grow the tree by one level.
	newRoot := &node{
		isLeaf:   false,
		next:     storage.InvalidPageID,
		keys:     [][]byte{sep},
		children: []storage.PageID{t.root, right},
	}
	id, err := t.allocNode(newRoot)
	if err != nil {
		return err
	}
	return t.setRoot(id)
}

// insertRec inserts into the subtree at id. On split it returns the
// separator key and new right sibling page; otherwise right is
// InvalidPageID.
func (t *Tree) insertRec(id storage.PageID, key []byte) ([]byte, storage.PageID, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	if n.isLeaf {
		i := searchIdx(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			return nil, storage.InvalidPageID, ErrKeyExists
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = append([]byte(nil), key...)
		if n.serializedSize() <= storage.PageDataSize {
			return nil, storage.InvalidPageID, t.writeNode(id, n)
		}
		return t.splitLeaf(id, n)
	}
	ci := childIdx(n.keys, key)
	sep, right, err := t.insertRec(n.children[ci], key)
	if err != nil || right == storage.InvalidPageID {
		return nil, storage.InvalidPageID, err
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, storage.InvalidPageID)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if n.serializedSize() <= storage.PageDataSize {
		return nil, storage.InvalidPageID, t.writeNode(id, n)
	}
	return t.splitInner(id, n)
}

func (t *Tree) splitLeaf(id storage.PageID, n *node) ([]byte, storage.PageID, error) {
	mid := len(n.keys) / 2
	right := &node{
		isLeaf: true,
		next:   n.next,
		keys:   append([][]byte(nil), n.keys[mid:]...),
	}
	rid, err := t.allocNode(right)
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	n.keys = n.keys[:mid]
	n.next = rid
	if err := t.writeNode(id, n); err != nil {
		return nil, storage.InvalidPageID, err
	}
	sep := append([]byte(nil), right.keys[0]...)
	return sep, rid, nil
}

func (t *Tree) splitInner(id storage.PageID, n *node) ([]byte, storage.PageID, error) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		isLeaf:   false,
		next:     storage.InvalidPageID,
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]storage.PageID(nil), n.children[mid+1:]...),
	}
	rid, err := t.allocNode(right)
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(id, n); err != nil {
		return nil, storage.InvalidPageID, err
	}
	return append([]byte(nil), sep...), rid, nil
}

// Delete removes key from the tree (lazy: no rebalancing).
func (t *Tree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.isLeaf {
			i := searchIdx(n.keys, key)
			if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
				return ErrKeyNotFound
			}
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			return t.writeNode(id, n)
		}
		id = n.children[childIdx(n.keys, key)]
	}
}

// Contains reports whether key is present.
func (t *Tree) Contains(key []byte) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		if n.isLeaf {
			i := searchIdx(n.keys, key)
			return i < len(n.keys) && bytes.Equal(n.keys[i], key), nil
		}
		id = n.children[childIdx(n.keys, key)]
	}
}

// Scan visits every key k with lo <= k < hi in order. A nil hi means
// "to the end". fn returning ErrStopScan ends the scan cleanly.
func (t *Tree) Scan(lo, hi []byte, fn func(key []byte) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.isLeaf {
			return t.scanLeaves(n, lo, hi, fn)
		}
		id = n.children[childIdx(n.keys, lo)]
	}
}

func (t *Tree) scanLeaves(n *node, lo, hi []byte, fn func([]byte) error) error {
	i := searchIdx(n.keys, lo)
	for {
		for ; i < len(n.keys); i++ {
			k := n.keys[i]
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return nil
			}
			if err := fn(k); err != nil {
				if errors.Is(err, ErrStopScan) {
					return nil
				}
				return err
			}
		}
		if n.next == storage.InvalidPageID {
			return nil
		}
		next, err := t.readNode(n.next)
		if err != nil {
			return err
		}
		n = next
		i = 0
	}
}

// Count returns the number of keys (full scan; for tests and stats).
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Scan(nil, nil, func([]byte) error {
		n++
		return nil
	})
	return n, err
}

// Height returns the tree height (root = 1; for tests and stats).
func (t *Tree) Height() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := 1
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return 0, err
		}
		if n.isLeaf {
			return h, nil
		}
		id = n.children[0]
		h++
	}
}

// PackRID appends the 6-byte encoding of rid to key, producing the
// unique entry stored in a secondary index.
func PackRID(key []byte, rid storage.RID) []byte {
	out := make([]byte, 0, len(key)+6)
	out = append(out, key...)
	out = binary.BigEndian.AppendUint32(out, uint32(rid.Page))
	out = binary.BigEndian.AppendUint16(out, uint16(rid.Slot))
	return out
}

// UnpackRID splits a stored entry into the logical key and the RID.
func UnpackRID(entry []byte) ([]byte, storage.RID, error) {
	if len(entry) < 6 {
		return nil, storage.RID{}, fmt.Errorf("btree: entry too short for RID")
	}
	k := entry[:len(entry)-6]
	p := binary.BigEndian.Uint32(entry[len(entry)-6:])
	s := binary.BigEndian.Uint16(entry[len(entry)-2:])
	return k, storage.RID{Page: storage.PageID(p), Slot: s}, nil
}

// Successor returns the smallest byte string greater than every string
// with prefix p: p with a 0xFF-terminated carry applied. A nil return
// means "no upper bound" (p was all 0xFF).
func Successor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

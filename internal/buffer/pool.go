// Package buffer implements a pin-counted buffer pool over the disk
// manager with CLOCK (second-chance) replacement — the same policy the
// paper assumes for the host DBMS's buffer pool. The pool exposes
// hit/miss counters so experiments can attribute the PMV's speed to
// memory residency, as Section 4.2 does.
package buffer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"pmv/internal/storage"
)

// ErrNoFrames is returned when every frame is pinned and nothing can be
// evicted.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// ErrCorruptPage is returned when a page read from disk fails its
// checksum (a torn write or external corruption).
var ErrCorruptPage = errors.New("buffer: corrupt page")

// PageTag names a page globally: file name plus page id.
type PageTag struct {
	File string
	Page storage.PageID
}

// Frame is one resident page. Callers access Buf only while holding a
// pin, and must declare writes via Unpin(dirty=true).
type Frame struct {
	tag   PageTag
	Buf   []byte
	pins  int
	ref   bool
	dirty bool
	valid bool
}

// Tag returns the identity of the page held by the frame.
func (f *Frame) Tag() PageTag { return f.tag }

// Pool is a fixed-size buffer pool.
type Pool struct {
	mgr    *storage.Manager
	mu     sync.Mutex
	frames []Frame
	table  map[PageTag]int
	hand   int

	hits   atomic.Int64
	misses atomic.Int64

	// PreFlush, when set, runs before any dirty page is written back —
	// the write-ahead hook: the engine points it at the WAL's Sync so
	// no page ever reaches disk before the records that produced it.
	// It must not call back into the pool.
	PreFlush func() error
}

// NewPool creates a pool of size frames backed by mgr.
func NewPool(mgr *storage.Manager, size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{
		mgr:    mgr,
		frames: make([]Frame, size),
		table:  make(map[PageTag]int, size),
	}
	for i := range p.frames {
		p.frames[i].Buf = make([]byte, storage.PageSize)
	}
	return p
}

// Stats returns cumulative hit and miss counts.
func (p *Pool) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// Size returns the number of frames.
func (p *Pool) Size() int { return len(p.frames) }

// Fetch pins the page and returns its frame, reading from disk on miss.
func (p *Pool) Fetch(file string, id storage.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tag := PageTag{File: file, Page: id}
	if i, ok := p.table[tag]; ok {
		fr := &p.frames[i]
		fr.pins++
		fr.ref = true
		p.hits.Add(1)
		return fr, nil
	}
	p.misses.Add(1)
	fr, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	f, err := p.mgr.Open(file)
	if err != nil {
		return nil, err
	}
	if err := f.ReadPage(id, fr.Buf); err != nil {
		fr.valid = false
		return nil, err
	}
	if err := verifyChecksum(fr.Buf, tag); err != nil {
		fr.valid = false
		return nil, err
	}
	fr.tag = tag
	fr.pins = 1
	fr.ref = true
	fr.dirty = false
	fr.valid = true
	p.table[tag] = p.indexOf(fr)
	return fr, nil
}

// NewPage allocates a fresh page in file, pins it, and returns the
// frame and new page id. The frame starts zeroed and dirty.
func (p *Pool) NewPage(file string) (*Frame, storage.PageID, error) {
	f, err := p.mgr.Open(file)
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	id, err := f.Allocate()
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, err := p.victimLocked()
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	for i := range fr.Buf {
		fr.Buf[i] = 0
	}
	fr.tag = PageTag{File: file, Page: id}
	fr.pins = 1
	fr.ref = true
	fr.dirty = true
	fr.valid = true
	p.table[fr.tag] = p.indexOf(fr)
	return fr, id, nil
}

// Unpin releases one pin; dirty marks the page as modified.
func (p *Pool) Unpin(fr *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned page %v", fr.tag))
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

// FlushAll writes every dirty page back to disk. Pages stay resident.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		if err := p.flushLocked(&p.frames[i]); err != nil {
			return err
		}
	}
	return nil
}

// FlushFile writes back dirty pages of one file and drops them from the
// pool (used when a relation is dropped).
func (p *Pool) FlushFile(file string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		fr := &p.frames[i]
		if !fr.valid || fr.tag.File != file {
			continue
		}
		if fr.pins > 0 {
			return fmt.Errorf("buffer: flush of pinned page %v", fr.tag)
		}
		if err := p.flushLocked(fr); err != nil {
			return err
		}
		delete(p.table, fr.tag)
		fr.valid = false
	}
	return nil
}

// DiscardFile drops every resident page of file without writing any of
// them back (used when a file is about to be deleted, e.g. an index
// rebuild during recovery). Pinned pages make it fail.
func (p *Pool) DiscardFile(file string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		fr := &p.frames[i]
		if !fr.valid || fr.tag.File != file {
			continue
		}
		if fr.pins > 0 {
			return fmt.Errorf("buffer: discard of pinned page %v", fr.tag)
		}
		delete(p.table, fr.tag)
		fr.valid = false
		fr.dirty = false
	}
	return nil
}

func (p *Pool) flushLocked(fr *Frame) error {
	if !fr.valid || !fr.dirty {
		return nil
	}
	if p.PreFlush != nil {
		if err := p.PreFlush(); err != nil {
			return err
		}
	}
	f, err := p.mgr.Open(fr.tag.File)
	if err != nil {
		return err
	}
	stampChecksum(fr.Buf)
	if err := f.WritePage(fr.tag.Page, fr.Buf); err != nil {
		return err
	}
	fr.dirty = false
	return nil
}

// stampChecksum writes the CRC-32 of the page content into the
// trailer. A computed value of zero is stored as 1 so that a stored
// zero unambiguously means "never checksummed" (e.g. a freshly
// allocated page the crashed process never wrote back).
func stampChecksum(buf []byte) {
	sum := crc32.ChecksumIEEE(buf[:storage.PageDataSize])
	if sum == 0 {
		sum = 1
	}
	binary.BigEndian.PutUint32(buf[storage.PageDataSize:], sum)
}

// verifyChecksum validates a page read from disk.
func verifyChecksum(buf []byte, tag PageTag) error {
	stored := binary.BigEndian.Uint32(buf[storage.PageDataSize:])
	if stored == 0 {
		return nil // never written back: nothing to verify
	}
	sum := crc32.ChecksumIEEE(buf[:storage.PageDataSize])
	if sum == 0 {
		sum = 1
	}
	if sum != stored {
		return fmt.Errorf("buffer: checksum mismatch on page %v (stored %08x, computed %08x): %w",
			tag, stored, sum, ErrCorruptPage)
	}
	return nil
}

func (p *Pool) indexOf(fr *Frame) int {
	// Frames are a contiguous slice; pointer arithmetic via tag lookup
	// would race, so compute the index directly.
	for i := range p.frames {
		if &p.frames[i] == fr {
			return i
		}
	}
	panic("buffer: frame not in pool")
}

// victimLocked finds a free or evictable frame using CLOCK.
func (p *Pool) victimLocked() (*Frame, error) {
	n := len(p.frames)
	// Two full sweeps: the first clears reference bits, the second must
	// find an unpinned frame if one exists.
	for sweep := 0; sweep < 2*n; sweep++ {
		fr := &p.frames[p.hand]
		p.hand = (p.hand + 1) % n
		if !fr.valid {
			return fr, nil
		}
		if fr.pins > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if err := p.flushLocked(fr); err != nil {
			return nil, err
		}
		delete(p.table, fr.tag)
		fr.valid = false
		return fr, nil
	}
	return nil, ErrNoFrames
}

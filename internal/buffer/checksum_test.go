package buffer

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pmv/internal/storage"
)

func TestChecksumRoundtrip(t *testing.T) {
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(mgr, 2)
	fr, id, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	copy(fr.Buf, []byte("checksummed content"))
	p.Unpin(fr, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	// Reopen: the checksum written at flush must verify.
	mgr2, _ := storage.NewManager(dir)
	defer mgr2.Close()
	p2 := NewPool(mgr2, 2)
	fr2, err := p2.Fetch("f", id)
	if err != nil {
		t.Fatalf("clean page failed verification: %v", err)
	}
	p2.Unpin(fr2, false)
}

func TestChecksumDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(mgr, 2)
	fr, id, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	copy(fr.Buf, []byte("precious data"))
	p.Unpin(fr, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	// Flip a byte in the page body on disk.
	path := filepath.Join(dir, "f.pg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[int(id)*storage.PageSize+5] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	mgr2, _ := storage.NewManager(dir)
	defer mgr2.Close()
	p2 := NewPool(mgr2, 2)
	if _, err := p2.Fetch("f", id); !errors.Is(err, ErrCorruptPage) {
		t.Errorf("corruption not detected: %v", err)
	}
}

func TestZeroPageSkipsVerification(t *testing.T) {
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	// Allocate a page directly (zeros on disk, no pool write-back) —
	// the crash pattern. Fetch must treat it as unverified, not corrupt.
	f, err := mgr.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(mgr, 2)
	fr, err := p.Fetch("f", id)
	if err != nil {
		t.Fatalf("zero page rejected: %v", err)
	}
	p.Unpin(fr, false)
}

package buffer

import (
	"errors"
	"sync"
	"testing"

	"pmv/internal/storage"
)

func newPool(t *testing.T, frames int) (*Pool, *storage.Manager) {
	t.Helper()
	mgr, err := storage.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return NewPool(mgr, frames), mgr
}

func TestNewPageAndFetch(t *testing.T) {
	p, _ := newPool(t, 4)
	fr, id, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	fr.Buf[0] = 0xCC
	p.Unpin(fr, true)

	fr2, err := p.Fetch("f", id)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Buf[0] != 0xCC {
		t.Error("cached write lost")
	}
	p.Unpin(fr2, false)
	hits, misses := p.Stats()
	if hits == 0 {
		t.Errorf("expected a hit, got hits=%d misses=%d", hits, misses)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	p, _ := newPool(t, 2)
	// Create 3 pages in a 2-frame pool: first must be evicted and
	// written back.
	var ids []storage.PageID
	for i := 0; i < 3; i++ {
		fr, id, err := p.NewPage("f")
		if err != nil {
			t.Fatal(err)
		}
		fr.Buf[0] = byte(i + 1)
		p.Unpin(fr, true)
		ids = append(ids, id)
	}
	// Page 0 was evicted; fetching it re-reads the written-back copy.
	fr, err := p.Fetch("f", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if fr.Buf[0] != 1 {
		t.Errorf("page 0 content = %d, want 1", fr.Buf[0])
	}
	p.Unpin(fr, false)
}

func TestAllPinnedFails(t *testing.T) {
	p, _ := newPool(t, 2)
	a, _, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.NewPage("f"); !errors.Is(err, ErrNoFrames) {
		t.Errorf("expected ErrNoFrames, got %v", err)
	}
	p.Unpin(a, true)
	if _, _, err := p.NewPage("f"); err != nil {
		t.Errorf("after unpin: %v", err)
	}
	p.Unpin(b, true)
}

func TestPinnedPageNotEvicted(t *testing.T) {
	p, _ := newPool(t, 2)
	pinned, pid, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	pinned.Buf[0] = 0x77
	// Churn the other frame repeatedly.
	for i := 0; i < 5; i++ {
		fr, _, err := p.NewPage("f")
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(fr, true)
	}
	if pinned.Tag().Page != pid || pinned.Buf[0] != 0x77 {
		t.Error("pinned frame was recycled")
	}
	p.Unpin(pinned, true)
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	p, _ := newPool(t, 2)
	fr, _, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, false)
	defer func() {
		if recover() == nil {
			t.Error("double unpin did not panic")
		}
	}()
	p.Unpin(fr, false)
}

func TestFlushAllPersists(t *testing.T) {
	p, mgr := newPool(t, 4)
	fr, id, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	fr.Buf[10] = 0x42
	p.Unpin(fr, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Read directly from disk, bypassing the pool.
	f, err := mgr.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	if err := f.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[10] != 0x42 {
		t.Error("FlushAll did not write dirty page")
	}
}

func TestFlushFileDropsPages(t *testing.T) {
	p, _ := newPool(t, 4)
	fr, id, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, true)
	if err := p.FlushFile("f"); err != nil {
		t.Fatal(err)
	}
	// The page must be re-read from disk (a miss).
	_, missesBefore := p.Stats()
	fr2, err := p.Fetch("f", id)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr2, false)
	_, missesAfter := p.Stats()
	if missesAfter != missesBefore+1 {
		t.Error("FlushFile left page resident")
	}
}

func TestFlushFilePinnedFails(t *testing.T) {
	p, _ := newPool(t, 4)
	fr, _, err := p.NewPage("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FlushFile("f"); err == nil {
		t.Error("flush of pinned page succeeded")
	}
	p.Unpin(fr, true)
}

func TestClockGivesSecondChance(t *testing.T) {
	p, _ := newPool(t, 2)
	a, _, _ := p.NewPage("f")
	p.Unpin(a, true)
	b, bid, _ := p.NewPage("f")
	p.Unpin(b, true)
	// Allocating C sweeps: clears both reference bits, evicts A
	// (hand order breaks the tie), and leaves B with ref = false.
	c, cid, _ := p.NewPage("f")
	p.Unpin(c, true)
	// C holds its reference bit; B does not. The next allocation must
	// give C its second chance and evict B.
	d, _, _ := p.NewPage("f")
	p.Unpin(d, true)

	hits, _ := p.Stats()
	fr, err := p.Fetch("f", cid)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, false)
	hits2, _ := p.Stats()
	if hits2 != hits+1 {
		t.Error("referenced page C was evicted before unreferenced B")
	}
	_, misses := p.Stats()
	fr, err = p.Fetch("f", bid)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, false)
	_, misses2 := p.Stats()
	if misses2 != misses+1 {
		t.Error("unreferenced page B survived the sweep")
	}
}

func TestConcurrentFetches(t *testing.T) {
	p, _ := newPool(t, 8)
	var ids []storage.PageID
	for i := 0; i < 16; i++ {
		fr, id, err := p.NewPage("f")
		if err != nil {
			t.Fatal(err)
		}
		fr.Buf[0] = byte(i)
		p.Unpin(fr, true)
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(seed+i)%len(ids)]
				fr, err := p.Fetch("f", id)
				if err != nil {
					t.Error(err)
					return
				}
				if fr.Buf[0] != byte(id) {
					t.Errorf("page %d holds %d", id, fr.Buf[0])
					p.Unpin(fr, false)
					return
				}
				p.Unpin(fr, false)
			}
		}(g)
	}
	wg.Wait()
}

package workload

import (
	"fmt"
	"math/rand"

	"pmv/internal/catalog"
	"pmv/internal/engine"
	"pmv/internal/expr"
	"pmv/internal/value"
)

// TPCRConfig sizes the TPC-R-like dataset of Section 4.2. The paper's
// Table 1 cardinalities are customer = 0.15·s M, orders = 1.5·s M,
// lineitem = 6·s M, with 10 orders per customer and 4 lineitems per
// order. The absolute row counts here scale the same way; benches use
// milli-scale factors (s=0.002 ⇒ 300 customers) so sweeps finish in
// seconds — the shape of every s-sweep is preserved (see DESIGN.md).
type TPCRConfig struct {
	// ScaleFactor is the TPC-R s. Fractional values are supported.
	ScaleFactor float64
	// Seed makes generation deterministic.
	Seed int64
	// Days is the orderdate domain size (TPC-R spans ~2406 days;
	// smaller domains concentrate the workload for small scales).
	Days int
	// Suppliers is the suppkey domain size (TPC-R: 10000·s).
	Suppliers int
	// Nations is the nationkey domain size (TPC-R: 25).
	Nations int
	// CorrelatedSupp partitions the supplier domain among nations and
	// draws each lineitem's supplier from its customer's nation's
	// block. This mirrors the paper's observation that retailers keep
	// "a separate Rsale for each store or each department": it makes
	// the T2 basic condition part (date, supplier, nation(supplier))
	// exactly as dense as T1's (date, supplier), which the controlled
	// overhead experiments need.
	CorrelatedSupp bool
	// Deterministic replaces random attribute assignment with
	// round-robin, so every (date, supplier) combination has the same
	// known result density — the controlled setting of Section 4.2
	// ("for each basic condition part, the number of query result
	// tuples that belong to it is greater than F").
	Deterministic bool
}

func (c *TPCRConfig) fill() {
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 0.002
	}
	if c.Days <= 0 {
		c.Days = 60
	}
	if c.Suppliers <= 0 {
		c.Suppliers = 50
	}
	if c.Nations <= 0 {
		c.Nations = 25
	}
}

// Customers returns the customer cardinality for the scale factor.
func (c TPCRConfig) Customers() int { return int(150000 * c.ScaleFactor) }

// Orders returns the orders cardinality (10 per customer).
func (c TPCRConfig) Orders() int { return 10 * c.Customers() }

// Lineitems returns the lineitem cardinality (4 per order).
func (c TPCRConfig) Lineitems() int { return 4 * c.Orders() }

// SuppliersPerNation returns the supplier block size under
// CorrelatedSupp.
func (c TPCRConfig) SuppliersPerNation() int {
	spn := c.Suppliers / c.Nations
	if spn < 1 {
		spn = 1
	}
	return spn
}

// NationOfSupplier returns the nation owning a supplier block under
// CorrelatedSupp.
func (c TPCRConfig) NationOfSupplier(supp int) int {
	n := supp / c.SuppliersPerNation()
	if n >= c.Nations {
		n = c.Nations - 1
	}
	return n
}

// TPCRSchemas returns the three relation schemas. Filler columns
// approximate the paper's Table 1 bytes-per-tuple ratios
// (customer ≈ 153 B, orders ≈ 76 B, lineitem ≈ 126 B).
func TPCRSchemas() (customer, orders, lineitem catalog.Schema) {
	customer = catalog.NewSchema(
		catalog.Col("custkey", value.TypeInt),
		catalog.Col("nationkey", value.TypeInt),
		catalog.Col("name", value.TypeString),
		catalog.Col("address", value.TypeString),
		catalog.Col("phone", value.TypeString),
		catalog.Col("acctbal", value.TypeFloat),
		catalog.Col("comment", value.TypeString),
	)
	orders = catalog.NewSchema(
		catalog.Col("orderkey", value.TypeInt),
		catalog.Col("custkey", value.TypeInt),
		catalog.Col("orderdate", value.TypeDate),
		catalog.Col("totalprice", value.TypeFloat),
		catalog.Col("orderpriority", value.TypeString),
		catalog.Col("clerk", value.TypeString),
	)
	lineitem = catalog.NewSchema(
		catalog.Col("orderkey", value.TypeInt),
		catalog.Col("suppkey", value.TypeInt),
		catalog.Col("partkey", value.TypeInt),
		catalog.Col("quantity", value.TypeInt),
		catalog.Col("extendedprice", value.TypeFloat),
		catalog.Col("shipmode", value.TypeString),
		catalog.Col("comment", value.TypeString),
	)
	return customer, orders, lineitem
}

// epochDay anchors generated orderdates (2026-01-01 in days since the
// Unix epoch).
const epochDay = 20454

var shipModes = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

// mix32 is a deterministic avalanche hash (fmix32 from MurmurHash3),
// used to spread attribute assignments without the periodic
// correlations plain round-robin would introduce.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x & 0x7fffffff
}

func pseudoText(rng *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz    "
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

// LoadTPCR creates and populates the customer/orders/lineitem
// relations with the paper's indexes (one on each selection and join
// attribute) and returns the config actually used.
func LoadTPCR(eng *engine.Engine, cfg TPCRConfig) (TPCRConfig, error) {
	cfg.fill()
	cSchema, oSchema, lSchema := TPCRSchemas()
	if _, err := eng.CreateRelation("customer", cSchema); err != nil {
		return cfg, err
	}
	if _, err := eng.CreateRelation("orders", oSchema); err != nil {
		return cfg, err
	}
	if _, err := eng.CreateRelation("lineitem", lSchema); err != nil {
		return cfg, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	nC, nO := cfg.Customers(), cfg.Orders()
	nations := make([]int, nC)

	var batch []value.Tuple
	flush := func(rel string) error {
		err := eng.InsertBulk(rel, batch, false)
		batch = batch[:0]
		return err
	}

	for ck := 0; ck < nC; ck++ {
		if cfg.Deterministic {
			nations[ck] = ck % cfg.Nations
		} else {
			nations[ck] = rng.Intn(cfg.Nations)
		}
		batch = append(batch, value.Tuple{
			value.Int(int64(ck)),
			value.Int(int64(nations[ck])),
			value.Str(fmt.Sprintf("Customer#%09d", ck)),
			value.Str(pseudoText(rng, 25)),
			value.Str(fmt.Sprintf("%02d-%03d-%03d-%04d", rng.Intn(35)+10, rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))),
			value.Float(rng.Float64() * 10000),
			value.Str(pseudoText(rng, 46)),
		})
		if len(batch) >= 1000 {
			if err := flush("customer"); err != nil {
				return cfg, err
			}
		}
	}
	if err := flush("customer"); err != nil {
		return cfg, err
	}

	for ok := 0; ok < nO; ok++ {
		day := rng.Intn(cfg.Days)
		if cfg.Deterministic {
			day = ok % cfg.Days
		}
		batch = append(batch, value.Tuple{
			value.Int(int64(ok)),
			value.Int(int64(ok % nC)), // exactly 10 orders per customer
			value.Date(epochDay + int64(day)),
			value.Float(rng.Float64() * 100000),
			value.Str(priorities[rng.Intn(len(priorities))]),
			value.Str(fmt.Sprintf("Clerk#%06d-%s", rng.Intn(1000), pseudoText(rng, 6))),
		})
		if len(batch) >= 1000 {
			if err := flush("orders"); err != nil {
				return cfg, err
			}
		}
	}
	if err := flush("orders"); err != nil {
		return cfg, err
	}

	for ok := 0; ok < nO; ok++ {
		for li := 0; li < 4; li++ { // exactly 4 lineitems per order
			var supp int
			switch {
			case cfg.CorrelatedSupp && cfg.Deterministic:
				spn := cfg.SuppliersPerNation()
				supp = nations[ok%nC]*spn + int(mix32(uint32(ok*4+li)))%spn
			case cfg.CorrelatedSupp:
				spn := cfg.SuppliersPerNation()
				supp = nations[ok%nC]*spn + rng.Intn(spn)
			case cfg.Deterministic:
				supp = int(mix32(uint32(ok*4+li))) % cfg.Suppliers
			default:
				supp = rng.Intn(cfg.Suppliers)
			}
			batch = append(batch, value.Tuple{
				value.Int(int64(ok)),
				value.Int(int64(supp)),
				value.Int(rng.Int63n(200000)),
				value.Int(int64(rng.Intn(50) + 1)),
				value.Float(rng.Float64() * 100000),
				value.Str(shipModes[rng.Intn(len(shipModes))]),
				value.Str(pseudoText(rng, 65)),
			})
		}
		if len(batch) >= 1000 {
			if err := flush("lineitem"); err != nil {
				return cfg, err
			}
		}
	}
	if err := flush("lineitem"); err != nil {
		return cfg, err
	}

	// Indexes on each selection/join attribute, as in Section 4.2.
	for _, ix := range [][2]string{
		{"customer", "custkey"}, {"customer", "nationkey"},
		{"orders", "orderkey"}, {"orders", "custkey"}, {"orders", "orderdate"},
		{"lineitem", "orderkey"}, {"lineitem", "suppkey"},
	} {
		if _, err := eng.CreateIndex("", ix[0], ix[1]); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// TemplateT1 is the paper's T1: lineitems by supplier and order date,
// joining orders ⋈ lineitem.
func TemplateT1() *expr.Template {
	return &expr.Template{
		Name:      "t1",
		Relations: []string{"orders", "lineitem"},
		Select: []expr.ColumnRef{
			{Rel: "orders", Col: "orderkey"},
			{Rel: "orders", Col: "orderdate"},
			{Rel: "orders", Col: "totalprice"},
			{Rel: "lineitem", Col: "suppkey"},
			{Rel: "lineitem", Col: "extendedprice"},
			{Rel: "lineitem", Col: "shipmode"},
		},
		Join: []expr.JoinPred{
			{Left: expr.ColumnRef{Rel: "orders", Col: "orderkey"}, Right: expr.ColumnRef{Rel: "lineitem", Col: "orderkey"}},
		},
		Conds: []expr.CondTemplate{
			{Col: expr.ColumnRef{Rel: "orders", Col: "orderdate"}, Form: expr.EqualityForm},
			{Col: expr.ColumnRef{Rel: "lineitem", Col: "suppkey"}, Form: expr.EqualityForm},
		},
	}
}

// TemplateT2 is the paper's T2: T1 plus customer with a nationkey
// condition.
func TemplateT2() *expr.Template {
	t := TemplateT1()
	t.Name = "t2"
	t.Relations = []string{"orders", "lineitem", "customer"}
	t.Select = append(t.Select,
		expr.ColumnRef{Rel: "customer", Col: "nationkey"},
		expr.ColumnRef{Rel: "customer", Col: "name"},
	)
	t.Join = append(t.Join, expr.JoinPred{
		Left:  expr.ColumnRef{Rel: "orders", Col: "custkey"},
		Right: expr.ColumnRef{Rel: "customer", Col: "custkey"},
	})
	t.Conds = append(t.Conds, expr.CondTemplate{
		Col: expr.ColumnRef{Rel: "customer", Col: "nationkey"}, Form: expr.EqualityForm,
	})
	return t
}

// QueryGen builds T1/T2 query instances with controlled hot/cold
// composition, mirroring Section 4.2's setup where each query breaks
// into h basic condition parts of which one is hot (in the PMV).
type QueryGen struct {
	cfg TPCRConfig
	rng *rand.Rand
	// Hot pools: small subsets of each domain that repeat across
	// queries, so their combinations stay cached.
	hotDays  []int64
	hotSupps []int64
	hotNats  []int64
}

// NewQueryGen returns a generator over the loaded dataset's domains.
// hotFraction picks the share of each domain treated as hot.
func NewQueryGen(cfg TPCRConfig, seed int64, hotFraction float64) *QueryGen {
	cfg.fill()
	rng := rand.New(rand.NewSource(seed))
	pool := func(n int) []int64 {
		k := int(float64(n) * hotFraction)
		if k < 1 {
			k = 1
		}
		perm := rng.Perm(n)
		out := make([]int64, k)
		for i := 0; i < k; i++ {
			out[i] = int64(perm[i])
		}
		return out
	}
	return &QueryGen{
		cfg:      cfg,
		rng:      rng,
		hotDays:  pool(cfg.Days),
		hotSupps: pool(cfg.Suppliers),
		hotNats:  pool(cfg.Nations),
	}
}

func (g *QueryGen) dates(e int, hot bool) []value.Value {
	out := make([]value.Value, 0, e)
	seen := map[int64]bool{}
	for len(out) < e {
		var d int64
		if hot && len(out) == 0 {
			d = g.hotDays[g.rng.Intn(len(g.hotDays))]
		} else {
			d = int64(g.rng.Intn(g.cfg.Days))
		}
		if !seen[d] {
			seen[d] = true
			out = append(out, value.Date(epochDay+d))
		}
	}
	return out
}

func (g *QueryGen) keys(n, domain int, hotPool []int64, hot bool) []value.Value {
	out := make([]value.Value, 0, n)
	seen := map[int64]bool{}
	for len(out) < n {
		var k int64
		if hot && len(out) == 0 {
			k = hotPool[g.rng.Intn(len(hotPool))]
		} else {
			k = int64(g.rng.Intn(domain))
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, value.Int(k))
		}
	}
	return out
}

// T1Query builds a T1 instance with e dates and f suppliers; when hot,
// the first date and supplier come from the hot pools so the query's
// (d1, s1) part recurs across queries.
func (g *QueryGen) T1Query(tpl *expr.Template, e, f int, hot bool) *expr.Query {
	return &expr.Query{
		Template: tpl,
		Conds: []expr.CondInstance{
			{Values: g.dates(e, hot)},
			{Values: g.keys(f, g.cfg.Suppliers, g.hotSupps, hot)},
		},
	}
}

// T2Query builds a T2 instance with e dates, f suppliers, g2 nations.
func (g *QueryGen) T2Query(tpl *expr.Template, e, f, g2 int, hot bool) *expr.Query {
	return &expr.Query{
		Template: tpl,
		Conds: []expr.CondInstance{
			{Values: g.dates(e, hot)},
			{Values: g.keys(f, g.cfg.Suppliers, g.hotSupps, hot)},
			{Values: g.keys(g2, g.cfg.Nations, g.hotNats, hot)},
		},
	}
}

// Package workload generates the paper's evaluation inputs: Zipfian
// basic-condition-part draws for the Section 4.1 simulation, the
// TPC-R-like customer/orders/lineitem dataset of Section 4.2 (Table 1),
// and bound template queries for T1/T2.
package workload

import (
	"math"
	"math/rand"
)

// Zipf draws ranks 0..n-1 with probability proportional to
// 1/(rank+1)^alpha — the e_i ∝ 1/i^α distribution of Section 4.1.
//
// math/rand's Zipf requires alpha > 1 strictly and parameterizes
// differently; this implementation uses inverse-CDF sampling over the
// exact finite distribution, so alpha values like 1.01 and 1.07 (the
// paper's) behave exactly as specified.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a sampler over n ranks with skew alpha.
func NewZipf(rng *rand.Rand, n int, alpha float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples one rank in [0, N).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MassOfTop returns the probability mass of the top-k ranks — used to
// verify the paper's calibration ("10% of the 1M bcps get 90% of the
// chance" at α=1.07).
func (z *Zipf) MassOfTop(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= len(z.cdf) {
		return 1
	}
	return z.cdf[k-1]
}

// PermutedZipf composes a Zipf sampler with a fixed pseudo-random
// permutation so that hot ranks are scattered across the id space
// (hot bcps are not adjacent in reality).
type PermutedZipf struct {
	z    *Zipf
	perm []int
}

// NewPermutedZipf builds a permuted sampler using rng for both the
// permutation and subsequent draws.
func NewPermutedZipf(rng *rand.Rand, n int, alpha float64) *PermutedZipf {
	return &PermutedZipf{z: NewZipf(rng, n, alpha), perm: rng.Perm(n)}
}

// Draw samples one permuted id in [0, N).
func (p *PermutedZipf) Draw() int { return p.perm[p.z.Draw()] }

// N returns the id-space size.
func (p *PermutedZipf) N() int { return p.z.N() }

package workload

import (
	"math/rand"
	"testing"

	"pmv/internal/engine"
	"pmv/internal/storage"
	"pmv/internal/value"
)

func TestZipfMassOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 1000, 1.07)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 must dominate rank 100, which must dominate rank 900.
	if counts[0] <= counts[100] || counts[100] <= counts[900] {
		t.Errorf("mass not decreasing: %d %d %d", counts[0], counts[100], counts[900])
	}
}

func TestZipfPaperCalibration(t *testing.T) {
	// The paper: at α=1.07, 10% of 1M bcps get ~90% of the mass; at
	// α=1.01, 21% get ~90%.
	rng := rand.New(rand.NewSource(1))
	z107 := NewZipf(rng, 1_000_000, 1.07)
	if m := z107.MassOfTop(100_000); m < 0.85 || m > 0.95 {
		t.Errorf("α=1.07: top 10%% mass = %.3f, paper says ~0.90", m)
	}
	z101 := NewZipf(rng, 1_000_000, 1.01)
	if m := z101.MassOfTop(210_000); m < 0.85 || m > 0.95 {
		t.Errorf("α=1.01: top 21%% mass = %.3f, paper says ~0.90", m)
	}
}

func TestZipfDrawInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 10, 1.5)
	for i := 0; i < 10000; i++ {
		if d := z.Draw(); d < 0 || d >= 10 {
			t.Fatalf("draw %d out of range", d)
		}
	}
	if z.N() != 10 {
		t.Errorf("N = %d", z.N())
	}
	if z.MassOfTop(0) != 0 || z.MassOfTop(10) != 1 || z.MassOfTop(99) != 1 {
		t.Error("MassOfTop edge cases broken")
	}
}

func TestPermutedZipfScatters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewPermutedZipf(rng, 1000, 1.2)
	counts := make(map[int]int)
	for i := 0; i < 50000; i++ {
		counts[p.Draw()]++
	}
	// The most frequent id should usually NOT be id 0 (permutation
	// scatters hot ranks).
	best, bestID := 0, -1
	for id, c := range counts {
		if c > best {
			best, bestID = c, id
		}
	}
	if bestID == 0 {
		t.Log("hot rank landed on id 0 (possible but unlikely); permutation may be identity")
	}
	if p.N() != 1000 {
		t.Errorf("N = %d", p.N())
	}
}

func TestTPCRCardinalities(t *testing.T) {
	cfg := TPCRConfig{ScaleFactor: 0.001}
	cfg.fill()
	if cfg.Customers() != 150 || cfg.Orders() != 1500 || cfg.Lineitems() != 6000 {
		t.Errorf("cardinalities: %d/%d/%d", cfg.Customers(), cfg.Orders(), cfg.Lineitems())
	}
}

func loadSmall(t *testing.T, cfg TPCRConfig) (*engine.Engine, TPCRConfig) {
	t.Helper()
	eng, err := engine.Open(t.TempDir(), engine.Options{BufferPoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	out, err := LoadTPCR(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, out
}

func TestLoadTPCRCounts(t *testing.T) {
	eng, cfg := loadSmall(t, TPCRConfig{ScaleFactor: 0.0005, Seed: 1})
	for rel, want := range map[string]int64{
		"customer": int64(cfg.Customers()),
		"orders":   int64(cfg.Orders()),
		"lineitem": int64(cfg.Lineitems()),
	} {
		r, err := eng.Catalog().GetRelation(rel)
		if err != nil {
			t.Fatal(err)
		}
		if r.Heap.Count() != want {
			t.Errorf("%s: %d tuples, want %d", rel, r.Heap.Count(), want)
		}
	}
}

func TestLoadTPCRReferentialIntegrity(t *testing.T) {
	eng, cfg := loadSmall(t, TPCRConfig{ScaleFactor: 0.0005, Seed: 1})
	orders, _ := eng.Catalog().GetRelation("orders")
	perCust := make(map[int64]int)
	err := orders.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		ck := tu[1].Int64()
		if ck < 0 || ck >= int64(cfg.Customers()) {
			t.Fatalf("orders.custkey %d out of range", ck)
		}
		perCust[ck]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for ck, n := range perCust {
		if n != 10 {
			t.Errorf("customer %d has %d orders, want 10", ck, n)
		}
	}
	lineitem, _ := eng.Catalog().GetRelation("lineitem")
	perOrder := make(map[int64]int)
	lineitem.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		perOrder[tu[0].Int64()]++
		return nil
	})
	for ok, n := range perOrder {
		if n != 4 {
			t.Errorf("order %d has %d lineitems, want 4", ok, n)
		}
	}
}

func TestLoadTPCRDeterministicSeed(t *testing.T) {
	eng1, _ := loadSmall(t, TPCRConfig{ScaleFactor: 0.0002, Seed: 7})
	eng2, _ := loadSmall(t, TPCRConfig{ScaleFactor: 0.0002, Seed: 7})
	r1, _ := eng1.Catalog().GetRelation("customer")
	r2, _ := eng2.Catalog().GetRelation("customer")
	var rows1, rows2 []string
	r1.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		rows1 = append(rows1, tu.String())
		return nil
	})
	r2.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		rows2 = append(rows2, tu.String())
		return nil
	})
	if len(rows1) != len(rows2) {
		t.Fatal("sizes differ")
	}
	for i := range rows1 {
		if rows1[i] != rows2[i] {
			t.Fatalf("row %d differs between same-seed loads", i)
		}
	}
}

func TestCorrelatedSuppliers(t *testing.T) {
	eng, cfg := loadSmall(t, TPCRConfig{
		ScaleFactor: 0.0005, Seed: 1, Nations: 5, Suppliers: 25,
		CorrelatedSupp: true, Deterministic: true,
	})
	// Every lineitem's supplier must belong to its customer's nation's
	// block.
	customers, _ := eng.Catalog().GetRelation("customer")
	nationOf := make(map[int64]int64)
	customers.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		nationOf[tu[0].Int64()] = tu[1].Int64()
		return nil
	})
	orders, _ := eng.Catalog().GetRelation("orders")
	orderCust := make(map[int64]int64)
	orders.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		orderCust[tu[0].Int64()] = tu[1].Int64()
		return nil
	})
	lineitem, _ := eng.Catalog().GetRelation("lineitem")
	bad := 0
	lineitem.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		supp := int(tu[1].Int64())
		wantNation := nationOf[orderCust[tu[0].Int64()]]
		if int64(cfg.NationOfSupplier(supp)) != wantNation {
			bad++
		}
		return nil
	})
	if bad != 0 {
		t.Errorf("%d lineitems violate supplier-nation correlation", bad)
	}
}

func TestTemplates(t *testing.T) {
	if err := TemplateT1().Validate(); err != nil {
		t.Errorf("T1: %v", err)
	}
	if err := TemplateT2().Validate(); err != nil {
		t.Errorf("T2: %v", err)
	}
	if len(TemplateT2().Relations) != 3 || len(TemplateT2().Conds) != 3 {
		t.Error("T2 shape wrong")
	}
}

func TestQueryGenProducesValidQueries(t *testing.T) {
	cfg := TPCRConfig{ScaleFactor: 0.001}
	cfg.fill()
	gen := NewQueryGen(cfg, 5, 0.1)
	t1, t2 := TemplateT1(), TemplateT2()
	for i := 0; i < 200; i++ {
		q1 := gen.T1Query(t1, 2, 3, i%2 == 0)
		if err := q1.Validate(); err != nil {
			t.Fatalf("T1 query %d: %v", i, err)
		}
		if q1.CombinationFactor() != 6 {
			t.Fatalf("T1 h = %d", q1.CombinationFactor())
		}
		q2 := gen.T2Query(t2, 2, 2, 2, true)
		if err := q2.Validate(); err != nil {
			t.Fatalf("T2 query %d: %v", i, err)
		}
		if q2.CombinationFactor() != 8 {
			t.Fatalf("T2 h = %d", q2.CombinationFactor())
		}
	}
}

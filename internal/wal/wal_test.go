package wal

import (
	"os"
	"path/filepath"
	"testing"

	"pmv/internal/storage"
	"pmv/internal/value"
)

func openLog(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	payloads := []string{"alpha", "beta", "gamma"}
	for _, p := range payloads {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := l.Replay(func(p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "alpha" || got[2] != "gamma" {
		t.Errorf("replayed %v", got)
	}
	l.Close()
}

func TestDurableAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	l.Append([]byte("persist"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// "Crash": no Close.
	l2 := openLog(t, path)
	defer l2.Close()
	if l2.Empty() {
		t.Fatal("synced record lost")
	}
	n := 0
	l2.Replay(func(p []byte) error {
		n++
		if string(p) != "persist" {
			t.Errorf("payload %q", p)
		}
		return nil
	})
	if n != 1 {
		t.Errorf("replayed %d records", n)
	}
}

func TestTornTailTrimmed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	l.Append([]byte("good"))
	l.Sync()
	l.Close()
	// Simulate a torn append: garbage after the intact record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 99, 1, 2, 3}) // frame claims 99 bytes, truncated
	f.Close()

	l2 := openLog(t, path)
	defer l2.Close()
	n := 0
	l2.Replay(func(p []byte) error {
		n++
		return nil
	})
	if n != 1 {
		t.Errorf("replayed %d records after torn tail, want 1", n)
	}
	// Appending after the trim works.
	if err := l2.Append([]byte("more")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	n = 0
	l2.Replay(func([]byte) error { n++; return nil })
	if n != 2 {
		t.Errorf("after post-trim append: %d records", n)
	}
}

func TestCorruptedRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	l.Sync()
	l.Close()
	// Flip a byte inside the second record's payload.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	l2 := openLog(t, path)
	defer l2.Close()
	n := 0
	l2.Replay(func([]byte) error { n++; return nil })
	if n != 1 {
		t.Errorf("replayed %d records with corrupt second, want 1", n)
	}
}

func TestCheckpointTruncatesAndKeepsBase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	l.Append([]byte("pre"))
	if err := l.Checkpoint(42); err != nil {
		t.Fatal(err)
	}
	if !l.Empty() || l.Base() != 42 {
		t.Errorf("after checkpoint: empty=%v base=%d", l.Empty(), l.Base())
	}
	l.Append([]byte("post"))
	l.Sync()
	l.Close()

	l2 := openLog(t, path)
	defer l2.Close()
	if l2.Base() != 42 {
		t.Errorf("base lost across reopen: %d", l2.Base())
	}
	var got []string
	l2.Replay(func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if len(got) != 1 || got[0] != "post" {
		t.Errorf("replay after checkpoint: %v", got)
	}
}

func TestRecordCodec(t *testing.T) {
	recs := []*Record{
		{Seq: 7, Op: OpInsert, Rel: "orders", RID: storage.RID{Page: 3, Slot: 9},
			Tuple: value.Tuple{value.Int(1), value.Str("x")}},
		{Seq: 8, Op: OpDelete, Rel: "r", RID: storage.RID{Page: 0, Slot: 0}},
		{Seq: 1 << 40, Op: OpUpdate, Rel: "a_very_long_relation_name", RID: storage.RID{Page: 1, Slot: 2},
			Tuple: value.Tuple{value.Null(), value.Float(2.5)}},
	}
	for _, r := range recs {
		got, err := DecodeRecord(r.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if got.Seq != r.Seq || got.Op != r.Op || got.Rel != r.Rel || got.RID != r.RID {
			t.Errorf("roundtrip: %+v -> %+v", r, got)
		}
		if value.CompareTuples(got.Tuple, r.Tuple) != 0 {
			t.Errorf("tuple roundtrip: %v -> %v", r.Tuple, got.Tuple)
		}
	}
	if _, err := DecodeRecord([]byte{1, 2}); err == nil {
		t.Error("short record accepted")
	}
	bad := (&Record{Seq: 1, Op: 99, Rel: "r"}).Encode()
	if _, err := DecodeRecord(bad); err == nil {
		t.Error("unknown op accepted")
	}
}

package wal

import (
	"encoding/binary"
	"fmt"

	"pmv/internal/storage"
	"pmv/internal/value"
)

// OpKind distinguishes logged heap operations.
type OpKind byte

// Logged operations. Updates that cannot be applied in place are
// logged as a delete followed by an insert.
const (
	OpInsert OpKind = 1
	OpDelete OpKind = 2
	OpUpdate OpKind = 3
)

// Record is one logged heap operation.
type Record struct {
	// Seq is the operation sequence number; heap pages are stamped
	// with it (the redo guard).
	Seq uint64
	Op  OpKind
	Rel string
	RID storage.RID
	// Tuple is the inserted/new tuple (empty for deletes).
	Tuple value.Tuple
}

// Encode renders the record payload:
//
//	u64 seq | u8 op | u16 len(rel) | rel | u32 page | u16 slot | tuple
func (r *Record) Encode() []byte {
	buf := make([]byte, 0, 32+len(r.Rel))
	buf = binary.BigEndian.AppendUint64(buf, r.Seq)
	buf = append(buf, byte(r.Op))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Rel)))
	buf = append(buf, r.Rel...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.RID.Page))
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.RID.Slot))
	if r.Op != OpDelete {
		buf = value.EncodeTuple(buf, r.Tuple)
	}
	return buf
}

// DecodeRecord parses one record payload.
func DecodeRecord(b []byte) (*Record, error) {
	if len(b) < 8+1+2 {
		return nil, fmt.Errorf("wal: record too short (%d bytes)", len(b))
	}
	r := &Record{}
	r.Seq = binary.BigEndian.Uint64(b)
	r.Op = OpKind(b[8])
	n := int(binary.BigEndian.Uint16(b[9:]))
	off := 11
	if off+n+6 > len(b) {
		return nil, fmt.Errorf("wal: truncated record body")
	}
	r.Rel = string(b[off : off+n])
	off += n
	r.RID.Page = storage.PageID(binary.BigEndian.Uint32(b[off:]))
	r.RID.Slot = binary.BigEndian.Uint16(b[off+4:])
	off += 6
	if r.Op != OpDelete {
		t, _, err := value.DecodeTuple(b[off:])
		if err != nil {
			return nil, fmt.Errorf("wal: record tuple: %w", err)
		}
		r.Tuple = t
	}
	switch r.Op {
	case OpInsert, OpDelete, OpUpdate:
	default:
		return nil, fmt.Errorf("wal: unknown op %d", r.Op)
	}
	return r, nil
}

// Package wal implements a redo-only write-ahead log for the engine's
// heap operations. Each DML statement appends one physiological record
// (sequence number + relation + RID + tuple payload); heap pages are
// stamped with the sequence number of the last record applied, so
// recovery can replay the log idempotently after a crash. Secondary
// indexes are not logged — they are rebuilt from the heaps during
// recovery, which keeps the log format small and the redo logic
// single-page.
//
// Record framing:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// A torn tail (crash mid-append) fails its CRC and is trimmed on open —
// the standard redo-log convention that the tail op simply did not
// become durable.
//
// The file header persists a base sequence number, advanced at every
// checkpoint to the engine's current operation counter, so sequence
// numbers stay monotonic across truncations and page stamps from
// before a checkpoint can never outrank post-checkpoint records.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"pmv/internal/vfs"
)

// file header: magic (4) + base sequence number (8)
const (
	magic      = 0x57414C31 // "WAL1"
	headerSize = 12
)

// ErrSyncFailed is the sticky error a Log returns after an fsync has
// failed: the kernel may have dropped the dirty pages while marking
// them clean, so re-attempting the fsync could falsely report
// durability for data that never reached disk (the fsync-gate
// problem). The log refuses further appends and syncs; the engine
// must surface the error and recover by reopening.
var ErrSyncFailed = errors.New("wal: fsync failed; log durability unknown")

// appendWriter adapts a vfs.File to io.Writer at a tracked offset, so
// the buffered append path needs no Seek in the File interface.
type appendWriter struct {
	f   vfs.File
	off int64
}

func (w *appendWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// Log is one write-ahead log file.
type Log struct {
	mu      sync.Mutex
	f       vfs.File
	aw      *appendWriter
	w       *bufio.Writer
	base    uint64 // sequence-number floor persisted at last checkpoint
	synced  bool   // no appends since the last fsync
	syncErr error  // sticky: set when an fsync fails
	empty   bool
	path    string
}

// Open opens (creating if needed) the log at path via the OS,
// trimming any torn tail record.
func Open(path string) (*Log, error) { return OpenFS(vfs.OS(), path) }

// OpenFS opens (creating if needed) the log at path through fs,
// trimming any torn tail record.
func OpenFS(fs vfs.FS, path string) (*Log, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, synced: true}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	end := int64(headerSize)
	if info.Size < headerSize {
		// Either a brand-new log or a crash tore the initial header
		// extension. A short file can only be the never-used state
		// (every later header write is an in-place overwrite of a
		// full-size file), so rewrite it with base 0.
		if err := l.writeHeader(0); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync header: %w", err)
		}
		l.empty = true
	} else {
		var hdr [headerSize]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: read header: %w", err)
		}
		if binary.BigEndian.Uint32(hdr[0:]) != magic {
			f.Close()
			return nil, fmt.Errorf("wal: %s: bad magic", path)
		}
		l.base = binary.BigEndian.Uint64(hdr[4:])
		valid, err := l.scanEnd(info.Size)
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, err
		}
		end = valid
		l.empty = valid == headerSize
	}
	l.aw = &appendWriter{f: f, off: end}
	l.w = bufio.NewWriterSize(l.aw, 1<<16)
	return l, nil
}

func (l *Log) writeHeader(base uint64) error {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], magic)
	binary.BigEndian.PutUint64(hdr[4:], base)
	if _, err := l.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	return nil
}

// scanEnd returns the byte offset just past the last intact record.
func (l *Log) scanEnd(size int64) (int64, error) {
	r := bufio.NewReaderSize(io.NewSectionReader(l.f, headerSize, size-headerSize), 1<<16)
	off := int64(headerSize)
	var frame [8]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return off, nil
		}
		n := binary.BigEndian.Uint32(frame[0:])
		crc := binary.BigEndian.Uint32(frame[4:])
		if int64(n) > size {
			return off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil
		}
		off += 8 + int64(n)
	}
}

// Base returns the sequence-number floor persisted at the last
// checkpoint; the engine's operation counter resumes above it.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Empty reports whether the log holds no records (a clean shutdown
// checkpoints and truncates, so a non-empty log on open means
// recovery is needed).
func (l *Log) Empty() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.empty
}

// Append adds one record. It is buffered; call Sync to make it
// durable. After a failed fsync the log refuses new records: their
// durability could never be honestly reported.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(frame[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	l.synced = false
	l.empty = false
	return nil
}

// Sync flushes buffered records to stable storage. It is a no-op when
// nothing was appended since the last sync, so callers (like the
// buffer pool's pre-flush hook) can invoke it liberally.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.synced {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		// The buffered frames are in the page cache now but not
		// durable; treat a flush failure like a failed fsync.
		l.syncErr = fmt.Errorf("%w: flush: %w", ErrSyncFailed, err)
		return l.syncErr
	}
	if err := l.f.Sync(); err != nil {
		// Sticky fsync-gate: synced stays false and the error is
		// latched so no later call can report durability the disk
		// never acknowledged.
		l.syncErr = fmt.Errorf("%w: %w", ErrSyncFailed, err)
		return l.syncErr
	}
	l.synced = true
	return nil
}

// Replay streams every intact record in append order.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	info, err := l.f.Stat()
	if err != nil {
		return err
	}
	r := bufio.NewReaderSize(io.NewSectionReader(l.f, headerSize, info.Size-headerSize), 1<<16)
	var frame [8]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return nil
		}
		n := binary.BigEndian.Uint32(frame[0:])
		crc := binary.BigEndian.Uint32(frame[4:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// Checkpoint truncates the log after the caller has made all logged
// effects durable (buffer pool flushed), and persists base as the new
// sequence-number floor.
func (l *Log) Checkpoint(base uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.syncLocked(); err != nil {
		return err
	}
	// The new base must be durable before the records are discarded: a
	// crash after the truncation but before a header write would leave
	// an empty log with a stale base, restarting sequence numbers below
	// existing page stamps (whose replays would then be wrongly
	// skipped). Writing the header first is safe in both crash windows:
	// old records under the new base replay idempotently.
	if err := l.writeHeader(base); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = fmt.Errorf("%w: checkpoint: %w", ErrSyncFailed, err)
		return l.syncErr
	}
	if err := l.f.Truncate(headerSize); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = fmt.Errorf("%w: checkpoint: %w", ErrSyncFailed, err)
		return l.syncErr
	}
	l.base = base
	l.empty = true
	l.aw.off = headerSize
	l.w.Reset(l.aw)
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	cerr := l.f.Close()
	l.f = nil
	if err != nil {
		return err
	}
	return cerr
}

package wal

import (
	"errors"
	"path/filepath"
	"testing"

	"pmv/internal/vfs"
)

// TestFsyncGateSticky is the regression test for the fsync-gate: after
// one failed fsync the log must refuse all further appends and syncs
// with ErrSyncFailed, even though the underlying device would accept a
// retry — a re-run fsync reporting success says nothing about pages
// the kernel already dropped. The record caught behind the failed
// fsync must not be visible after reopen.
func TestFsyncGateSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")

	inj := vfs.NewInjector(7)
	// Sync #1 is the fresh-file header sync in OpenFS; fail sync #2
	// (the first record sync) exactly once. Sticky is deliberately
	// false: the stickiness under test is the log's own latch, not the
	// injector's.
	inj.Add(vfs.Rule{Kind: vfs.FaultSyncFail, Op: vfs.OpSync, AfterOps: 2})
	fs := vfs.NewFaulty(vfs.OS(), inj)

	l, err := OpenFS(fs, path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Append([]byte("doomed record")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("first sync: got %v, want ErrSyncFailed", err)
	} else if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("first sync: cause not preserved through wrap: %v", err)
	}

	// The injected fault is spent; the device would now sync fine. The
	// log must still refuse: durability of the failed batch is unknown.
	if err := l.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("second sync after failure: got %v, want sticky ErrSyncFailed", err)
	}
	if err := l.Append([]byte("after failure")); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("append after failed sync: got %v, want ErrSyncFailed", err)
	}
	if err := l.Close(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("close after failed sync: got %v, want ErrSyncFailed", err)
	}

	// Reopen through the real OS: the record behind the failed fsync
	// must not have become durable (no false durability).
	l2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if !l2.Empty() {
		t.Fatal("record appeared durable despite failed fsync")
	}
}

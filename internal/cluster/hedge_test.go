package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"pmv/internal/value"
)

func TestHedgeBudgetCapsAmplification(t *testing.T) {
	h := newHedgeBudget(0.05, 4)
	// The bucket starts full: 4 hedges fire, the 5th is refused.
	for i := 0; i < 4; i++ {
		if !h.tryTake() {
			t.Fatalf("hedge %d refused with a full bucket", i)
		}
	}
	if h.tryTake() {
		t.Fatal("hedge granted from an empty bucket")
	}
	// 20 primaries at 5% earn exactly one more token.
	for i := 0; i < 20; i++ {
		h.earn()
	}
	if !h.tryTake() {
		t.Fatal("earned token not granted")
	}
	if h.tryTake() {
		t.Fatal("second hedge granted from one earned token")
	}
	// Earning never overflows the burst cap.
	for i := 0; i < 10000; i++ {
		h.earn()
	}
	for i := 0; i < 4; i++ {
		if !h.tryTake() {
			t.Fatalf("token %d missing after refill", i)
		}
	}
	if h.tryTake() {
		t.Fatal("bucket overflowed its burst cap")
	}
}

func TestHedgeDelayAdaptsAndClamps(t *testing.T) {
	cfg := tailConfig(1)
	tt := newTailTolerance(cfg, 1)
	// No samples: hedge waits the maximum (hedging blind wastes tokens).
	if d := tt.hedgeDelay(0); d != cfg.HedgeMaxDelay {
		t.Fatalf("blind hedge delay = %v, want max %v", d, cfg.HedgeMaxDelay)
	}
	now := time.Now()
	for i := 0; i < 50; i++ {
		tt.health[0].observe(outcomeProbe, 5*time.Millisecond, true, now)
	}
	// Steady 5ms latency, near-zero deviation: delay ~= ewma + 3*dev.
	if d := tt.hedgeDelay(0); d < cfg.HedgeMinDelay || d > 10*time.Millisecond {
		t.Fatalf("adaptive hedge delay = %v, want ~5ms", d)
	}
	// A very fast shard clamps up to the minimum.
	tt2 := newTailTolerance(cfg, 1)
	for i := 0; i < 50; i++ {
		tt2.health[0].observe(outcomeProbe, 10*time.Microsecond, true, now)
	}
	if d := tt2.hedgeDelay(0); d != cfg.HedgeMinDelay {
		t.Fatalf("fast-shard hedge delay = %v, want min %v", d, cfg.HedgeMinDelay)
	}
}

// TestHedgeArbiterMultisetMax drives the correctness core of hedging:
// whatever the interleaving of the two row streams, the merged stream
// is their multiset maximum — no duplicates when both arms answer in
// full, no losses when they answer different prefixes, and duplicate
// rows within one stream survive (DS needs every copy).
func TestHedgeArbiterMultisetMax(t *testing.T) {
	row := func(i int64) value.Tuple { return value.Tuple{value.Int(i)} }

	t.Run("both-answer-in-full", func(t *testing.T) {
		a := newHedgeArbiter()
		var got []int64
		emit := func(tp value.Tuple) error {
			got = append(got, tp[0].Int64())
			return nil
		}
		s0, s1 := a.source(0, emit), a.source(1, emit)
		for i := int64(0); i < 10; i++ {
			s0(row(i))
		}
		for i := int64(0); i < 10; i++ {
			s1(row(i))
		}
		if len(got) != 10 {
			t.Fatalf("merged %d rows from two full answers, want 10", len(got))
		}
	})

	t.Run("in-stream-duplicates-survive", func(t *testing.T) {
		a := newHedgeArbiter()
		n := 0
		emit := func(value.Tuple) error { n++; return nil }
		s0, s1 := a.source(0, emit), a.source(1, emit)
		// The cache can legitimately hold the same tuple twice (DS
		// consumes each copy); both copies must flow through.
		s0(row(7))
		s0(row(7))
		if n != 2 {
			t.Fatalf("same-stream duplicate suppressed: %d emitted, want 2", n)
		}
		// The hedge's copies of the same two rows are duplicates.
		s1(row(7))
		s1(row(7))
		if n != 2 {
			t.Fatalf("cross-stream duplicate emitted: %d, want 2", n)
		}
		// A third copy only the hedge saw is new information.
		s1(row(7))
		if n != 3 {
			t.Fatalf("multiset max lost a row: %d, want 3", n)
		}
	})

	t.Run("random-interleavings", func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 200; trial++ {
			a := newHedgeArbiter()
			counts := make(map[int64]int)
			var mu sync.Mutex
			emit := func(tp value.Tuple) error {
				mu.Lock()
				counts[tp[0].Int64()]++
				mu.Unlock()
				return nil
			}
			// Each arm delivers a random prefix of the same 8-row answer,
			// concurrently, in order within its stream.
			n0, n1 := rng.Intn(9), rng.Intn(9)
			var wg sync.WaitGroup
			for src, n := range map[int]int{0: n0, 1: n1} {
				wg.Add(1)
				go func(src, n int) {
					defer wg.Done()
					s := a.source(src, emit)
					for i := 0; i < n; i++ {
						s(row(int64(i)))
					}
				}(src, n)
			}
			wg.Wait()
			// The merge must be the elementwise max: rows 0..max(n0,n1)-1
			// exactly once each.
			want := n0
			if n1 > want {
				want = n1
			}
			for i := int64(0); i < int64(want); i++ {
				if counts[i] != 1 {
					t.Fatalf("trial %d (n0=%d n1=%d): row %d emitted %d times",
						trial, n0, n1, i, counts[i])
				}
			}
			if len(counts) != want {
				t.Fatalf("trial %d: %d distinct rows, want %d", trial, len(counts), want)
			}
		}
	})
}

// write.go is the cluster plane's write path. A ΔR batch arriving at
// the router (MsgUpdate) fans to every shard — each holds the full
// base data — with exactly one shard, the round-robined primary,
// asked to run maintenance and report the affected bcp keys. The ack
// to the writer requires every shard to have applied the batch; there
// is no write failover, because re-sending a batch whose fate is
// unknown could apply non-idempotent ops twice (writers that know
// their ops are idempotent retry on the typed error themselves).
//
// After the ack the router fans the primary's reported damage to the
// shards owning those keys as epoch-stamped MsgInvalidate frames,
// asynchronously. Delivery is best-effort with a ladder of
// degradations — retry once after re-teaching the shard map on
// MsgErrEpoch, then fall back to an epoch-less whole-view
// invalidation — and a rung that fails entirely only costs cache
// freshness on that shard: every shard also maintains its own views
// locally when it applies the batch, and the DS duplicate-multiset
// audit turns any surviving staleness into a loud query failure, not
// a silently wrong answer.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pmv/client"
	"pmv/internal/obs"
	"pmv/internal/wire"
)

// handleUpdate fans one ΔR batch to every shard and acks when all
// have applied it.
func (r *Router) handleUpdate(sess *rsession, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeUpdate(payload)
	if err != nil {
		return r.writeErr(bw, err)
	}
	if len(req.Ops) == 0 {
		return r.writeErr(bw, errors.New("router: empty update batch"))
	}

	tr, external := r.sessionTrace(sess, "update", -1)
	allocMark := tr.AllocMark()
	start := time.Now()

	ctx, cancel := r.adminCtx()
	defer cancel()
	ctx = obs.WithTrace(ctx, tr)

	nShards := len(r.pools)
	primary := int(r.rr.Add(1)-1) % nShards

	type result struct {
		rep wire.UpdateReply
		err error
	}
	results := make([]result, nShards)
	var wg sync.WaitGroup
	for shard := range r.pools {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			sm := r.metrics.Shards[shard]
			sm.Updates.Add(1)
			c := r.pools[shard].get()
			rep, uerr := c.Update(ctx, shard == primary, req.Ops...)
			r.pools[shard].put(c, uerr == nil || errors.Is(uerr, client.ErrRemote))
			if uerr != nil {
				sm.UpdateFailures.Add(1)
			}
			results[shard] = result{rep, uerr}
		}(shard)
	}
	wg.Wait()
	for shard := range results {
		if uerr := results[shard].err; uerr != nil {
			r.metrics.UpdateFailures.Add(1)
			return r.writeErr(bw, fmt.Errorf("router: update failed on shard %s: %w",
				r.cfg.Shards[shard], uerr))
		}
	}
	prim := results[primary].rep
	r.metrics.Updates.Add(1)
	r.metrics.UpdateOps.Add(int64(prim.Applied))
	r.metrics.UpdateRows.Add(int64(prim.Rows))
	if r.hot != nil {
		// Before the ack: drop router replicas for the damaged keys
		// synchronously (a post-ack read must never be answered from a
		// pre-write replica) and fan MsgHotInval for pushed keys to
		// every shard — replicas live everywhere, unlike owned entries.
		r.hot.invalidate(prim.Keys, prim.Wide)
	}
	r.spawnInvalidate(primary, prim.Keys, prim.Wide)
	if tr != nil {
		allocd := tr.AllocMark() - allocMark
		tr.SpanCost(obs.KindServe, start, int64(prim.Rows), 0, 0,
			obs.Cost{Rows: int64(prim.Rows), Allocs: allocd})
		r.metrics.TracesSampled.Add(1)
		r.metrics.CostAllocs.Add(allocd)
	}
	r.emitSpans(sess, tr, external)
	return r.reply(bw, prim)
}

// spawnInvalidate fans the primary's reported damage to the shards
// owning the affected keys, asynchronously (the writer's ack already
// went out; invalidation is a freshness upgrade, not a correctness
// gate). One goroutine per target shard; Shutdown waits for them.
func (r *Router) spawnInvalidate(primary int, keys map[string][][]byte, wide map[string]bool) {
	if len(keys) == 0 && len(wide) == 0 {
		return
	}
	select {
	case <-r.closing:
		return
	default:
	}
	m := r.shardMap()
	start := time.Now()

	// Per-key damage grouped by owning shard (wide views are covered by
	// the whole-view fan below; their key lists would be redundant).
	perShard := make(map[int]map[string][]string)
	for view, ks := range keys {
		if wide[view] {
			continue
		}
		for _, k := range ks {
			owner := m.Owner(string(k))
			if owner == primary {
				continue // the primary maintained its own cache
			}
			if perShard[owner] == nil {
				perShard[owner] = make(map[string][]string)
			}
			perShard[owner][view] = append(perShard[owner][view], string(k))
		}
	}
	var wideViews []string
	for view, w := range wide {
		if w {
			wideViews = append(wideViews, view)
		}
	}

	for shard := range r.pools {
		if shard == primary {
			continue
		}
		var reqs []wire.InvalidateRequest
		for view, ks := range perShard[shard] {
			reqs = append(reqs, wire.InvalidateRequest{View: view, Epoch: m.Epoch(), Keys: ks})
		}
		for _, view := range wideViews {
			reqs = append(reqs, wire.InvalidateRequest{View: view, Epoch: m.Epoch(), All: true})
		}
		if len(reqs) == 0 {
			continue
		}
		r.invalWG.Add(1)
		go func(shard int, reqs []wire.InvalidateRequest) {
			defer r.invalWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.InvalTimeout)
			defer cancel()
			c := r.pools[shard].get()
			healthy := true
			for i := range reqs {
				if r.sendInval(ctx, c, shard, reqs[i], m) != nil {
					healthy = false
				}
			}
			r.pools[shard].put(c, healthy)
			r.metrics.FanoutLagNs.Add(int64(time.Since(start)))
		}(shard, reqs)
	}
}

// sendInval delivers one invalidation, descending the degradation
// ladder on failure: MsgErrEpoch re-teaches the shard map and retries
// once; any remaining failure degrades a per-key request to an
// epoch-less whole-view invalidation (always accepted if the shard is
// reachable at all). A rung that fails entirely is counted and left
// to the shard's own local maintenance plus the DS audit.
func (r *Router) sendInval(ctx context.Context, c *client.Client, shard int, req wire.InvalidateRequest, m *ShardMap) error {
	sm := r.metrics.Shards[shard]
	sm.InvalsSent.Add(1)
	r.metrics.FanoutSent.Add(1)
	_, err := c.Invalidate(ctx, req)
	if err == nil {
		return nil
	}
	if errors.Is(err, wire.ErrEpoch) && ctx.Err() == nil && r.installOn(shard, m) {
		r.metrics.FanoutRetries.Add(1)
		if _, err2 := c.Invalidate(ctx, req); err2 == nil {
			return nil
		}
	}
	if !req.All && ctx.Err() == nil {
		r.metrics.FanoutDegrades.Add(1)
		if _, derr := c.Invalidate(ctx, wire.InvalidateRequest{View: req.View, All: true}); derr == nil {
			return nil
		}
	}
	sm.InvalFailures.Add(1)
	r.metrics.FanoutFailures.Add(1)
	return err
}

// maintStats renders the router's fan-out counters in the write
// plane's stats shape (queue/batch fields stay zero — batching
// happens on the shards).
func (m *Metrics) maintStats() *wire.MaintStats {
	return &wire.MaintStats{
		FanoutSent:     m.FanoutSent.Load(),
		FanoutRetries:  m.FanoutRetries.Load(),
		FanoutDegrades: m.FanoutDegrades.Load(),
		FanoutFailures: m.FanoutFailures.Load(),
		FanoutLagNs:    m.FanoutLagNs.Load(),
	}
}

package cluster

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(100*time.Millisecond, time.Second, 1)
	now := time.Now()

	if admit, trial := b.allow(now); !admit || trial {
		t.Fatalf("closed breaker: admit=%v trial=%v, want true,false", admit, trial)
	}
	if !b.trip(now) {
		t.Fatal("trip on a closed breaker reported no transition")
	}
	if b.trip(now) {
		t.Fatal("trip on an open breaker reported a transition")
	}
	if admit, _ := b.allow(now); admit {
		t.Fatal("open breaker admitted a probe inside its cooldown")
	}
	// Past the jittered wait the next caller is the half-open trial;
	// concurrent callers are refused while it flies.
	later := now.Add(200 * time.Millisecond)
	admit, trial := b.allow(later)
	if !admit || !trial {
		t.Fatalf("post-cooldown: admit=%v trial=%v, want the trial", admit, trial)
	}
	if admit, _ := b.allow(later); admit {
		t.Fatal("second probe admitted while a trial is in flight")
	}
	// A healthy trial closes and resets the cooldown escalation.
	if !b.resolveTrial(true, later) {
		t.Fatal("healthy trial resolution reported no transition")
	}
	if breakerState(b.state.Load()) != bkClosed {
		t.Fatalf("state after healthy trial = %v, want closed", breakerState(b.state.Load()))
	}
	if b.cooldown != b.base {
		t.Fatalf("cooldown after close = %v, want base %v", b.cooldown, b.base)
	}
}

func TestBreakerFailedTrialEscalates(t *testing.T) {
	b := newBreaker(100*time.Millisecond, time.Second, 2)
	now := time.Now()
	b.trip(now)
	first := b.wait
	if first < 50*time.Millisecond || first >= 100*time.Millisecond {
		t.Fatalf("first jittered wait = %v, want [base/2, base)", first)
	}
	now = now.Add(2 * first)
	if admit, trial := b.allow(now); !admit || !trial {
		t.Fatal("trial not admitted after the wait")
	}
	if !b.resolveTrial(false, now) {
		t.Fatal("failed trial resolution reported no transition")
	}
	if breakerState(b.state.Load()) != bkOpen {
		t.Fatal("failed trial did not reopen the breaker")
	}
	// Cooldown doubles per re-trip, capped at max.
	if b.wait < 100*time.Millisecond || b.wait >= 200*time.Millisecond {
		t.Fatalf("escalated wait = %v, want [100ms, 200ms)", b.wait)
	}
	for i := 0; i < 10; i++ {
		now = now.Add(time.Hour)
		b.allow(now)
		b.resolveTrial(false, now)
	}
	if b.cooldown > time.Second {
		t.Fatalf("cooldown escalated past max: %v", b.cooldown)
	}
}

// TestBreakerResetRacesTrial pins the epoch-install race: a shard-map
// re-teach resets the breaker while a half-open trial is in flight, and
// the trial's late resolution must be a no-op rather than re-tripping a
// breaker the install just cleared.
func TestBreakerResetRacesTrial(t *testing.T) {
	b := newBreaker(100*time.Millisecond, time.Second, 3)
	now := time.Now()
	b.trip(now)
	now = now.Add(200 * time.Millisecond)
	if admit, trial := b.allow(now); !admit || !trial {
		t.Fatal("trial not admitted")
	}
	b.reset() // epoch install while the trial flies
	if b.resolveTrial(false, now) {
		t.Fatal("stale trial resolution transitioned a reset breaker")
	}
	if breakerState(b.state.Load()) != bkClosed {
		t.Fatal("breaker not closed after reset")
	}
	if b.cooldown != b.base {
		t.Fatal("reset did not clear cooldown escalation")
	}
}

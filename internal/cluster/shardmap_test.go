package cluster

import (
	"fmt"
	"testing"
)

func testShards(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	return out
}

func TestShardMapRejectsBadInputs(t *testing.T) {
	if _, err := NewShardMap(0, testShards(3), 8); err == nil {
		t.Fatal("epoch 0 accepted; it is reserved for 'no map installed'")
	}
	if _, err := NewShardMap(1, nil, 8); err == nil {
		t.Fatal("empty shard list accepted")
	}
}

func TestShardMapDeterministic(t *testing.T) {
	a, err := NewShardMap(1, testShards(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardMap(1, testShards(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("bcp-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q owned by %d on one ring, %d on an identical one", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestShardMapDistribution(t *testing.T) {
	m, err := NewShardMap(1, testShards(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const n = 30_000
	for i := 0; i < n; i++ {
		counts[m.Owner(fmt.Sprintf("bcp-%d", i))]++
	}
	for s, c := range counts {
		frac := float64(c) / n
		// 64 vnodes keeps a 3-shard ring within a loose band of fair
		// share; a broken hash or an unsorted ring lands far outside it.
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("shard %d owns %.1f%% of keys; ring badly skewed: %v", s, frac*100, counts)
		}
	}
}

func TestShardMapStabilityUnderGrowth(t *testing.T) {
	m3, err := NewShardMap(1, testShards(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := NewShardMap(2, testShards(4), 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20_000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("bcp-%d", i)
		if m3.Owner(key) != m4.Owner(key) {
			moved++
		}
	}
	// Consistent hashing's whole point: adding shard 4 of 4 should move
	// roughly 1/4 of the key space, nowhere near a full reshuffle.
	if frac := float64(moved) / n; frac > 0.45 {
		t.Fatalf("adding one shard moved %.1f%% of keys; not consistent hashing", frac*100)
	}
}

func TestShardMapWireRoundTrip(t *testing.T) {
	m, err := NewShardMap(7, testShards(3), 32)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromWire(m.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch() != 7 || back.NumShards() != 3 {
		t.Fatalf("round trip lost identity: epoch=%d shards=%d", back.Epoch(), back.NumShards())
	}
	for i := 0; i < 5_000; i++ {
		key := fmt.Sprintf("bcp-%d", i)
		if m.Owner(key) != back.Owner(key) {
			t.Fatalf("key %q changed owner across the wire", key)
		}
	}
}

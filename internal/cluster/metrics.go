package cluster

import (
	"sync/atomic"

	"pmv/internal/server"
	"pmv/internal/wire"
)

// Metrics is the router's counter set: session-plane counters mirroring
// the single-node server's, router-level phase histograms, and one
// ShardMetrics block per shard so an operator can see exactly which
// shard is failing probes, refusing refills, or answering slowly.
type Metrics struct {
	SessionsTotal   atomic.Int64
	SessionsActive  atomic.Int64
	Queries         atomic.Int64
	Rows            atomic.Int64
	PartialRows     atomic.Int64
	Shed            atomic.Int64
	DeadlineExpired atomic.Int64
	Degraded        atomic.Int64
	PartialOnly     atomic.Int64
	Errors          atomic.Int64
	ConnRejected    atomic.Int64
	IdleReaped      atomic.Int64
	CorruptFrames   atomic.Int64
	SessionResets   atomic.Int64

	// DSLeftover counts queries failed because partial tuples were never
	// matched by Operation O3 — the cluster-level consistency oracle.
	DSLeftover atomic.Int64

	// Observability plane: per-query cost accounting (rows streamed to
	// clients, bytes on the wire, heap bytes attributed to traced
	// queries) and the trace/slow-ring recording counters. Degraded
	// records count queries the slow ring captured because they shrank
	// to a flagged subset, independent of latency.
	CostRows         atomic.Int64
	CostBytes        atomic.Int64
	CostAllocs       atomic.Int64
	TracesSampled    atomic.Int64
	SlowRecorded     atomic.Int64
	DegradedRecorded atomic.Int64

	// Write plane: batches acked (all shards applied), ops/rows from the
	// primary's reply, batches failed on any shard, and the invalidation
	// fan-out's delivery ladder.
	Updates        atomic.Int64
	UpdateOps      atomic.Int64
	UpdateRows     atomic.Int64
	UpdateFailures atomic.Int64
	FanoutSent     atomic.Int64
	FanoutRetries  atomic.Int64
	FanoutDegrades atomic.Int64
	FanoutFailures atomic.Int64
	FanoutLagNs    atomic.Int64 // cumulative ack-to-delivered lag

	// Tail-tolerance plane: hedges refused by the token budget (the
	// per-shard hedge counters live in ShardMetrics).
	HedgeDenied atomic.Int64

	// Scatter times the probe fan-out (O1 + the slowest shard's O2),
	// Exec the routed O3, Total whole routed queries.
	Scatter server.Hist
	Exec    server.Hist
	Total   server.Hist

	// Shards holds one block per shard id.
	Shards []*ShardMetrics
}

// ShardMetrics counts one shard's share of the router's traffic.
type ShardMetrics struct {
	Addr string

	Probes         atomic.Int64 // probe batches sent
	ProbeRows      atomic.Int64 // Ls′ partials received
	ProbeFailures  atomic.Int64 // probe batches lost to errors (degradation)
	EpochInstalls  atomic.Int64 // shard-map installs pushed (startup + MsgErrEpoch)
	Execs          atomic.Int64 // routed O3s attempted
	ExecFailures   atomic.Int64 // routed O3s failed (failover or give-up)
	RefillsSent    atomic.Int64 // refill batches dispatched
	RefillTuples   atomic.Int64 // tuples the shard confirmed cached
	RefillFailures atomic.Int64 // refill batches lost (never retried)
	Updates        atomic.Int64 // update batches sent
	UpdateFailures atomic.Int64 // update batches the shard failed
	InvalsSent     atomic.Int64 // invalidation requests dispatched
	InvalFailures  atomic.Int64 // invalidations lost after the full ladder

	// Tail-tolerance plane (all zero when Config.TailTolerance is off).
	Beats        atomic.Int64 // heartbeat pings sent
	BeatFailures atomic.Int64 // heartbeat pings failed
	HedgesSent   atomic.Int64 // hedge probes launched
	HedgeWins    atomic.Int64 // races the hedge arm won
	BreakerTrips atomic.Int64 // closed/half-open -> open transitions
	BreakerSkips atomic.Int64 // probes skipped-and-flagged by an open breaker
	TrialProbes  atomic.Int64 // probes admitted as half-open trials

	// ProbeLatency times this shard's probe round trips.
	ProbeLatency server.Hist
}

func newMetrics(shards []string) *Metrics {
	m := &Metrics{Shards: make([]*ShardMetrics, len(shards))}
	for i, addr := range shards {
		m.Shards[i] = &ShardMetrics{Addr: addr}
	}
	return m
}

// ServerStats renders the session-plane counters in the wire's
// single-node shape, so `pmvcli stats` against a router shows the same
// dashboard it shows against a shard.
func (m *Metrics) ServerStats() wire.ServerStats {
	return wire.ServerStats{
		SessionsTotal:   m.SessionsTotal.Load(),
		SessionsActive:  m.SessionsActive.Load(),
		Queries:         m.Queries.Load(),
		Rows:            m.Rows.Load(),
		PartialRows:     m.PartialRows.Load(),
		Shed:            m.Shed.Load(),
		DeadlineExpired: m.DeadlineExpired.Load(),
		Degraded:        m.Degraded.Load(),
		PartialOnly:     m.PartialOnly.Load(),
		Errors:          m.Errors.Load(),
		Updates:         m.Updates.Load(),
		UpdateOps:       m.UpdateOps.Load(),
		UpdateRows:      m.UpdateRows.Load(),
		ConnRejected:    m.ConnRejected.Load(),
		IdleReaped:      m.IdleReaped.Load(),
		CorruptFrames:   m.CorruptFrames.Load(),
		SessionResets:   m.SessionResets.Load(),
		CostRows:        m.CostRows.Load(),
		CostBytes:       m.CostBytes.Load(),
		CostAllocs:      m.CostAllocs.Load(),
		TracesSampled:   m.TracesSampled.Load(),
		PartialPhase:    m.Scatter.Snapshot(),
		ExecPhase:       m.Exec.Snapshot(),
		Total:           m.Total.Snapshot(),
	}
}

// health.go is the router's per-shard health model, the first layer of
// the tail-tolerance plane: every probe, exec, refill, and heartbeat
// outcome feeds a latency digest (EWMA + EWMA absolute deviation) and
// a phi-accrual-style failure detector per shard. The digest drives
// the hedge delay (hedge.go) and the latency trip condition of the
// circuit breaker (breaker.go); phi and the consecutive-failure count
// drive the availability trips. Everything here is atomics — health is
// updated from every probe goroutine concurrently and read on every
// scatter, so it must never contend or allocate.
//
// The whole plane hangs off Router.tt, which is nil unless
// Config.TailTolerance is set: a disabled router takes none of these
// paths, allocates nothing for them, and emits byte-identical wire
// traffic to a pre-v4 router (pinned by TestTailDisabledZeroAlloc).
package cluster

import (
	"bufio"
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"pmv/internal/wire"
)

// outcomeKind says which protocol step produced an observation.
// Latency feeds the EWMA digest only for probes and heartbeats — exec
// latency is dominated by query cost, not shard sickness, and refill
// is fire-and-forget — but success/failure feeds the failure detector
// from all four.
type outcomeKind int

const (
	outcomeProbe outcomeKind = iota
	outcomeExec
	outcomeRefill
	outcomeBeat
)

// ewmaAlpha weights new latency samples; 0.2 reacts to a graying
// shard within a handful of probes without flapping on one outlier.
const ewmaAlpha = 0.2

// shardHealth is one shard's live health model.
type shardHealth struct {
	ewmaNs      atomic.Int64 // EWMA latency (probe + heartbeat round trips)
	devNs       atomic.Int64 // EWMA absolute deviation of the same
	lastOKNs    atomic.Int64 // wall-clock ns of the last success (0 = never)
	intervalNs  atomic.Int64 // EWMA interval between successes
	consecFails atomic.Int64 // consecutive failures across all kinds
	samples     atomic.Int64 // successful latency samples absorbed
}

// observe absorbs one outcome. The EWMA read-modify-write is lock-free
// and deliberately tolerant of lost updates under contention: the
// digest is a smoothing filter, not an accounting ledger.
func (h *shardHealth) observe(kind outcomeKind, d time.Duration, ok bool, now time.Time) {
	if !ok {
		h.consecFails.Add(1)
		return
	}
	h.consecFails.Store(0)
	nowNs := now.UnixNano()
	if last := h.lastOKNs.Load(); last > 0 {
		gap := nowNs - last
		if gap > 0 {
			h.intervalNs.Store(blend(h.intervalNs.Load(), gap))
		}
	}
	h.lastOKNs.Store(nowNs)
	if kind != outcomeProbe && kind != outcomeBeat {
		return
	}
	sample := int64(d)
	old := h.ewmaNs.Load()
	if old == 0 {
		h.ewmaNs.Store(sample)
	} else {
		h.ewmaNs.Store(blend(old, sample))
		dev := sample - old
		if dev < 0 {
			dev = -dev
		}
		h.devNs.Store(blend(h.devNs.Load(), dev))
	}
	h.samples.Add(1)
}

// blend is one EWMA step in integer nanoseconds.
func blend(old, sample int64) int64 {
	if old == 0 {
		return sample
	}
	return old + int64(ewmaAlpha*float64(sample-old))
}

// phi is the phi-accrual suspicion level at now: how many orders of
// magnitude less likely than "normal" the current silence is, assuming
// exponentially distributed success arrivals with the observed mean
// interval. 0 while healthy, climbing without bound during silence.
func (h *shardHealth) phi(now time.Time) float64 {
	last := h.lastOKNs.Load()
	if last == 0 {
		return 0 // never heard from: bootstrapping, not suspicion
	}
	mean := h.intervalNs.Load()
	if mean <= 0 {
		return 0
	}
	elapsed := now.UnixNano() - last
	if elapsed <= 0 {
		return 0
	}
	// P(silence >= elapsed) = exp(-elapsed/mean); phi = -log10 of it.
	return float64(elapsed) / float64(mean) * math.Log10E
}

// tailTolerance bundles the whole plane: health models, breakers, and
// the hedge token budget. Owned by Router, nil when disabled.
type tailTolerance struct {
	cfg      *Config
	health   []*shardHealth
	breakers []*breaker
	hedge    *hedgeBudget // nil when hedging is off
}

func newTailTolerance(cfg *Config, nShards int) *tailTolerance {
	tt := &tailTolerance{
		cfg:      cfg,
		health:   make([]*shardHealth, nShards),
		breakers: make([]*breaker, nShards),
	}
	for i := 0; i < nShards; i++ {
		tt.health[i] = &shardHealth{}
		tt.breakers[i] = newBreaker(cfg.BreakerCooldown, cfg.BreakerMaxCooldown, int64(i+1))
	}
	if cfg.Hedge {
		tt.hedge = newHedgeBudget(cfg.HedgeRate, cfg.HedgeBurst)
	}
	return tt
}

// latencySick reports whether shard's latency digest exceeds the trip
// threshold: above an absolute floor AND above BreakerLatencyFactor ×
// the fleet's median EWMA. The relative test is what distinguishes a
// gray shard from a uniformly slow (but healthy) cluster.
func (tt *tailTolerance) latencySick(shard int) bool {
	own := tt.health[shard].ewmaNs.Load()
	if own < int64(tt.cfg.BreakerLatencyFloor) {
		return false
	}
	med := tt.fleetMedianEwma()
	if med <= 0 {
		return false
	}
	return float64(own) > tt.cfg.BreakerLatencyFactor*float64(med)
}

// fleetMedianEwma is the median of the per-shard latency digests,
// ignoring shards with no samples yet. Small fixed-size selection: the
// shard count is a config-time constant measured in ones or tens.
func (tt *tailTolerance) fleetMedianEwma() int64 {
	var vals [64]int64
	n := 0
	for _, h := range tt.health {
		if v := h.ewmaNs.Load(); v > 0 && n < len(vals) {
			vals[n] = v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	// Insertion sort; n is tiny.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[n/2]
}

// sick reports whether any trip condition currently holds for shard.
func (tt *tailTolerance) sick(shard int, now time.Time) bool {
	h := tt.health[shard]
	if h.consecFails.Load() >= int64(tt.cfg.BreakerFailThreshold) {
		return true
	}
	if h.phi(now) >= tt.cfg.BreakerPhi {
		return true
	}
	return tt.latencySick(shard)
}

// noteOutcome is the single funnel every shard interaction reports
// through: it updates the health model and runs the breaker state
// machine (trip on a sick closed shard, resolve a half-open trial).
func (r *Router) noteOutcome(shard int, kind outcomeKind, d time.Duration, err error, trial bool) {
	tt := r.tt
	if tt == nil {
		return
	}
	// Epoch mismatches are protocol signals (the shard needs the map
	// re-taught), not sickness; they neither fail nor heal the model.
	// A trial must still be resolved or the breaker would stay half-open
	// forever — an epoch answer is a live, prompt shard, so the trial
	// settles on latency alone.
	if errors.Is(err, wire.ErrEpoch) {
		if trial {
			tt.breakers[shard].resolveTrial(!tt.latencySick(shard), time.Now())
		}
		return
	}
	now := time.Now()
	ok := err == nil
	tt.health[shard].observe(kind, d, ok, now)
	br := tt.breakers[shard]
	if trial {
		healthy := ok && !tt.latencySick(shard)
		if br.resolveTrial(healthy, now) && !healthy {
			r.metrics.Shards[shard].BreakerTrips.Add(1)
		}
		return
	}
	if br.state.Load() == int32(bkClosed) && tt.sick(shard, now) {
		if br.trip(now) {
			r.metrics.Shards[shard].BreakerTrips.Add(1)
		}
	}
}

// allowProbe asks shard's breaker whether a probe may be sent. The
// second result marks the probe as the half-open trial; its outcome
// decides the breaker's next state. Always (true, false) when the
// plane is disabled — one nil check, no allocation.
func (r *Router) allowProbe(shard int) (admit, trial bool) {
	if r.tt == nil {
		return true, false
	}
	admit, trial = r.tt.breakers[shard].allow(time.Now())
	if !admit {
		r.metrics.Shards[shard].BreakerSkips.Add(1)
	} else if trial {
		r.metrics.Shards[shard].TrialProbes.Add(1)
	}
	return admit, trial
}

// breakerOpen reports whether shard's breaker currently refuses
// traffic, for O3 failover ordering (open shards are tried last, never
// skipped — O3 is the correctness path).
func (r *Router) breakerOpen(shard int) bool {
	if r.tt == nil {
		return false
	}
	return r.tt.breakers[shard].state.Load() == int32(bkOpen)
}

// execOrder is the O3 failover order: round-robin from firstShard, but
// with open-breaker shards moved to the back (still tried — O3 is the
// correctness path and a breaker is only a tail heuristic — just last,
// so the common case never waits out a known-sick shard's timeout).
// Returns nil when the plane is disabled; the caller's modular
// round-robin stands and nothing allocates.
func (r *Router) execOrder(firstShard, nShards int) []int {
	if r.tt == nil {
		return nil
	}
	order := make([]int, 0, nShards)
	var open []int
	for attempt := 0; attempt < nShards; attempt++ {
		shard := (firstShard + attempt) % nShards
		if r.breakerOpen(shard) {
			open = append(open, shard)
			continue
		}
		order = append(order, shard)
	}
	return append(order, open...)
}

// probeBudget is the remaining deadline budget to ride on a probe or
// refill request: zero (absent on the wire) when the plane is disabled
// or the context is unbounded.
func (r *Router) probeBudget(ctx context.Context) time.Duration {
	if r.tt == nil {
		return 0
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	if d := time.Until(dl); d > 0 {
		return d
	}
	return time.Nanosecond // already expired: tell the shard anyway
}

// resetBreakers closes every breaker after a shard-map install: the
// operator (or the epoch protocol) re-taught the cluster, so suspicion
// accrued under the old map is stale. Latency digests survive — if a
// shard is still gray it will re-trip within a few probes.
func (tt *tailTolerance) resetBreakers() {
	for i, br := range tt.breakers {
		br.reset()
		tt.health[i].consecFails.Store(0)
	}
}

// healthWire renders shard's live health for the fleet view; nil when
// the plane is disabled.
func (r *Router) healthWire(shard int) *wire.ShardHealth {
	tt := r.tt
	if tt == nil {
		return nil
	}
	h := tt.health[shard]
	sm := r.metrics.Shards[shard]
	return &wire.ShardHealth{
		EwmaMs:      float64(h.ewmaNs.Load()) / 1e6,
		DevMs:       float64(h.devNs.Load()) / 1e6,
		Phi:         h.phi(time.Now()),
		ConsecFails: h.consecFails.Load(),
		Breaker:     breakerState(tt.breakers[shard].state.Load()).String(),
		Beats:       sm.Beats.Load(),
		BeatFails:   sm.BeatFailures.Load(),
		HedgesSent:  sm.HedgesSent.Load(),
		HedgeWins:   sm.HedgeWins.Load(),
		Trips:       sm.BreakerTrips.Load(),
		Skips:       sm.BreakerSkips.Load(),
	}
}

// handlePing answers MsgPing with the router's authoritative shard-map
// epoch, so routers can be health-checked the same way shards are.
func (r *Router) handlePing(bw *bufio.Writer, payload []byte) error {
	nonce, err := wire.DecodePing(payload)
	if err != nil {
		return r.writeErr(bw, err)
	}
	var buf [16]byte
	return wire.WriteFrame(bw, wire.MsgPong, wire.EncodePong(buf[:0], nonce, r.shardMap().Epoch()))
}

// heartbeatLoop pings every shard each HeartbeatInterval so the
// failure detector has a signal on an idle cluster and sick shards are
// re-scored (and recovered shards re-admitted) without waiting for
// query traffic. One goroutine per tick per shard: a blackholed shard
// must not stall the others' beats.
func (r *Router) heartbeatLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-r.closing:
			return
		case <-t.C:
		}
		for shard := range r.pools {
			r.wg.Add(1)
			go func(shard int) {
				defer r.wg.Done()
				r.heartbeat(shard)
			}(shard)
		}
	}
}

// heartbeat sends one ping. A beat can double as the breaker's
// half-open trial: when a shard's cooldown has elapsed, the beat's
// outcome (including its latency, which a gray shard cannot hide)
// decides recovery — so live queries never pay for trial traffic
// against a still-sick shard.
func (r *Router) heartbeat(shard int) {
	tt := r.tt
	sm := r.metrics.Shards[shard]
	// The beat's job is to MEASURE latency, so its timeout must be far
	// above any latency worth measuring: a gray shard should fail the
	// relative-latency test, not the timeout. Capping at the interval
	// would misread every RTT above it as down — and false-trip healthy
	// shards on scheduler hiccups when the interval is aggressive.
	timeout := 4 * r.cfg.HeartbeatInterval
	if timeout < time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_, trial := tt.breakers[shard].allow(time.Now())
	sm.Beats.Add(1)
	c := r.pools[shard].get()
	rtt, epoch, err := c.Ping(ctx)
	r.pools[shard].put(c, err == nil)
	if err != nil {
		sm.BeatFailures.Add(1)
	}
	r.noteOutcome(shard, outcomeBeat, rtt, err, trial)
	if err == nil {
		m := r.shardMap()
		if epoch < m.Epoch() {
			// The shard answered with a stale (or zero: rebooted) epoch:
			// re-teach the map now instead of waiting for the next probe
			// to fail typed.
			r.installOn(shard, m)
		}
	}
}

package cluster_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"pmv/client"
	"pmv/internal/obs"
	"pmv/internal/wire"
)

// spanKinds collects the kinds present in an assembled trace, split by
// whether the span was recorded by the router itself or reported by a
// shard.
func spanKinds(spans []wire.TraceSpan) (local, sourced map[string]int) {
	local, sourced = map[string]int{}, map[string]int{}
	for _, sp := range spans {
		if sp.Source == "" {
			local[sp.Kind]++
		} else {
			sourced[sp.Kind]++
		}
	}
	return local, sourced
}

// TestRouterTraceAssemblesClusterTimeline is the tentpole's end-to-end
// check: with router tracing on, one routed query yields one assembled
// trace covering the router's O1 and serve spans plus the per-shard
// span reports (probe, exec, and — asynchronously — refill), and the
// per-shard reports reconcile against the cluster's real topology.
func TestRouterTraceAssemblesClusterTimeline(t *testing.T) {
	r, srvs, _, want := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()
	ctx := context.Background()

	shardAddrs := map[string]bool{}
	for _, s := range srvs {
		shardAddrs[s.Addr().String()] = true
	}

	on := true
	tp, err := c.Trace(ctx, wire.TraceRequest{Trace: &on})
	if err != nil || !tp.Trace {
		t.Fatalf("enabling router tracing: %+v, %v", tp, err)
	}

	// Cold query: pure O3 plus a refill fan-back.
	runQuery(t, c, 3, 2, want[[2]int64{3, 2}])
	tg, err := c.TraceGet(ctx, 0)
	if err != nil || len(tg.Recent) == 0 {
		t.Fatalf("no retained traces after a traced query: %+v, %v", tg, err)
	}
	coldID := tg.Recent[0]

	// Warm query: poll until refill feeds a probe hit, then inspect the
	// hitting query's trace.
	deadline := time.Now().Add(5 * time.Second)
	var rep client.Report
	for {
		rep = runQuery(t, c, 3, 2, want[[2]int64{3, 2}])
		if rep.Hit && rep.PartialTuples > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refill never fed a probe hit: %+v", rep)
		}
		time.Sleep(50 * time.Millisecond)
	}

	tg, err = c.TraceGet(ctx, 0)
	if err != nil || len(tg.Recent) == 0 {
		t.Fatalf("recent traces: %+v, %v", tg, err)
	}
	hot, err := c.TraceGet(ctx, tg.Recent[0])
	if err != nil || !hot.Found {
		t.Fatalf("trace %d not found: %v", tg.Recent[0], err)
	}
	at := hot.Trace
	if at.View != "pmv_on_sale" {
		t.Fatalf("trace view = %q", at.View)
	}
	local, sourced := spanKinds(at.Spans)
	if local["o1"] == 0 || local["serve"] == 0 {
		t.Fatalf("router-local o1/serve spans missing: local=%v sourced=%v", local, sourced)
	}
	if sourced["o2_probe"] == 0 {
		t.Fatalf("no shard-reported o2_probe span on a hitting query: sourced=%v", sourced)
	}
	if sourced["serve"] == 0 {
		t.Fatalf("no shard-reported serve span: sourced=%v", sourced)
	}
	// Reconcile shard reports against the topology: every sourced span
	// must name a real shard.
	for _, sp := range at.Spans {
		if sp.Source != "" && !shardAddrs[strings.TrimSuffix(sp.Source, " (lost)")] {
			t.Fatalf("span sourced from unknown peer %q", sp.Source)
		}
	}
	// The router's serve span bills at least the rows the client got.
	if at.CostRows < int64(rep.TotalTuples) || at.CostBytes <= 0 {
		t.Fatalf("trace cost bill too small: rows=%d bytes=%d want rows>=%d",
			at.CostRows, at.CostBytes, rep.TotalTuples)
	}

	// The cold query's refill fan-back lands after its reply; the stored
	// trace is live, so the refill spans appear on a later read.
	deadline = time.Now().Add(5 * time.Second)
	for {
		cold, err := c.TraceGet(ctx, coldID)
		if err != nil || !cold.Found {
			t.Fatalf("cold trace %d lost: %v", coldID, err)
		}
		_, csourced := spanKinds(cold.Trace.Spans)
		if csourced["refill"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shard-reported refill span ever appeared: %v", csourced)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRouterExternalTraceFansBack drives the wire trace context end to
// end: a client-owned trace rides the query to the router, the router's
// assembled timeline fans back as a span report, and the router retains
// the trace under the caller's id.
func TestRouterExternalTraceFansBack(t *testing.T) {
	r, _, _, want := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()
	ctx := context.Background()

	tr := obs.New(42, "pmv_on_sale")
	rows := 0
	_, err := c.ExecutePartial(obs.WithTrace(ctx, tr), "pmv_on_sale", conds(1, 1),
		func(client.Row) error { rows++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rows != want[[2]int64{1, 1}] {
		t.Fatalf("traced query returned %d rows, want %d", rows, want[[2]int64{1, 1}])
	}

	// Every fanned-back span carries the router's address (the wire span
	// report does not forward per-shard sources); the router's own serve
	// span is the one billing the full row count.
	var serve, o1 bool
	for _, sp := range tr.AllSpans() {
		if sp.Source != r.Addr().String() {
			continue
		}
		switch sp.Kind {
		case obs.KindServe:
			if sp.Rows == int64(rows) {
				serve = true
			}
		case obs.KindO1:
			o1 = true
		}
	}
	if !serve || !o1 {
		t.Fatalf("router span report incomplete (serve=%v o1=%v): %v", serve, o1, tr.AllSpans())
	}

	// The router retained the trace under the caller's id, so the
	// operator can pull the same timeline later.
	tg, err := c.TraceGet(ctx, 42)
	if err != nil || !tg.Found || tg.Trace.ID != 42 {
		t.Fatalf("router did not retain external trace 42: %+v, %v", tg, err)
	}
}

// TestRouterDegradedRecordedRegardless pins the slow-ring blind-spot
// fix: with tracing AND the slow threshold off, a query that silently
// loses a shard's partials is still recorded, with a reason.
func TestRouterDegradedRecordedRegardless(t *testing.T) {
	r, srvs, _, want := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()
	ctx := context.Background()

	// Warm every cache so probes have something to lose, then kill one
	// shard.
	for cat := int64(0); cat < 8; cat++ {
		for st := int64(0); st < 5; st++ {
			runQuery(t, c, cat, st, want[[2]int64{cat, st}])
		}
	}
	time.Sleep(200 * time.Millisecond)
	srvs[1].Shutdown()

	degraded := 0
	for cat := int64(0); cat < 8; cat++ {
		for st := int64(0); st < 5; st++ {
			if runQuery(t, c, cat, st, want[[2]int64{cat, st}]).Degraded {
				degraded++
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no query degraded with a shard down; nothing to record")
	}

	sl, err := c.Slowlog(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sl.ThresholdNs != -1 {
		t.Fatalf("slow threshold = %d, want disabled (-1)", sl.ThresholdNs)
	}
	recorded := 0
	for _, q := range sl.Queries {
		if q.Reason == "" || q.Reason == "slow" {
			t.Fatalf("degraded record carries no degradation reason: %+v", q)
		}
		if !strings.Contains(q.Reason, "degraded") {
			t.Fatalf("unexpected reason %q", q.Reason)
		}
		recorded++
	}
	if recorded == 0 {
		t.Fatal("degraded queries were never recorded in the slow ring (the blind spot)")
	}
	if r.Metrics().DegradedRecorded.Load() == 0 {
		t.Fatal("DegradedRecorded counter never moved")
	}
}

// TestRouterFleetFederation checks the federated fleet view against a
// healthy cluster and again with a shard down.
func TestRouterFleetFederation(t *testing.T) {
	r, srvs, _, want := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()
	ctx := context.Background()

	runQuery(t, c, 2, 3, want[[2]int64{2, 3}])

	fl, err := c.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Epoch != 1 || len(fl.Shards) != 3 {
		t.Fatalf("fleet = epoch %d, %d shards", fl.Epoch, len(fl.Shards))
	}
	if fl.ShardsUp != 3 || fl.ShardsDown != 0 || fl.ShardsStale != 0 {
		t.Fatalf("healthy fleet reported up=%d down=%d stale=%d", fl.ShardsUp, fl.ShardsDown, fl.ShardsStale)
	}
	if fl.Router.Queries == 0 {
		t.Fatalf("router counters missing from fleet view: %+v", fl.Router)
	}
	for _, fs := range fl.Shards {
		if !fs.Up || fs.Stats == nil {
			t.Fatalf("healthy shard %s reported up=%v stats=%v (%s)", fs.Addr, fs.Up, fs.Stats != nil, fs.Error)
		}
		if fs.Epoch != fl.Epoch {
			t.Fatalf("shard %s epoch %d != fleet epoch %d", fs.Addr, fs.Epoch, fl.Epoch)
		}
	}
	if fl.MaintBacklog < 0 {
		t.Fatalf("negative maint backlog %d", fl.MaintBacklog)
	}

	srvs[2].Shutdown()
	fl, err = c.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fl.ShardsUp != 2 || fl.ShardsDown != 1 {
		t.Fatalf("fleet with a dead shard reported up=%d down=%d", fl.ShardsUp, fl.ShardsDown)
	}
	var sawDown bool
	for _, fs := range fl.Shards {
		if !fs.Up {
			sawDown = true
			if fs.Error == "" {
				t.Fatalf("down shard %s carries no error", fs.Addr)
			}
		}
	}
	if !sawDown {
		t.Fatal("no shard marked down")
	}
}

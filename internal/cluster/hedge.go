// hedge.go races a second O2 probe against a shard that is sitting on
// the first one past its usual latency. Hedging is safe in this
// protocol for two reasons, one per layer:
//
//   - Between hedge and original, the arbiter below merges the two row
//     streams into their multiset maximum: a row is forwarded only
//     when its source has produced it more times than the merged
//     stream has emitted it. Whichever copy arrives first wins, per
//     row, under any interleaving — so the client and the DS multiset
//     see exactly one emission per cached tuple even when both probes
//     answer in full.
//   - Between the merged probe stream and O3, the DS multiset consumes
//     duplicates exactly as before; the arbiter guarantees DS is fed
//     the same multiset a lone probe would have fed it.
//
// The hedge goes to the same shard (only the bcp owner holds the
// cached partials — a different shard would legally answer "no rows"
// and the hedge would erase the partials it raced to save) but over a
// fresh session from the pool, which is what rescues probes stuck
// behind one sick connection or a dropped packet. A token budget caps
// hedge amplification: each primary probe earns HedgeRate tokens and a
// hedge spends one, so steady-state extra probe load is at most
// HedgeRate (default 5%).
package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"pmv/client"
	"pmv/internal/value"
	"pmv/internal/wire"
)

// hedgeBudget is the token bucket capping hedge amplification.
type hedgeBudget struct {
	mu     sync.Mutex
	tokens float64
	rate   float64 // earned per primary probe
	burst  float64 // bucket cap
}

func newHedgeBudget(rate, burst float64) *hedgeBudget {
	return &hedgeBudget{tokens: burst, rate: rate, burst: burst}
}

// earn credits one primary probe's worth of hedge allowance.
func (h *hedgeBudget) earn() {
	h.mu.Lock()
	if h.tokens += h.rate; h.tokens > h.burst {
		h.tokens = h.burst
	}
	h.mu.Unlock()
}

// tryTake spends one token if available.
func (h *hedgeBudget) tryTake() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tokens < 1 {
		return false
	}
	h.tokens--
	return true
}

// hedgeDelay is how long to wait on shard's primary probe before
// racing a hedge: the shard's usual latency plus three deviations,
// clamped to the configured window. A shard with no samples yet gets
// the maximum delay (hedging blind wastes tokens).
func (tt *tailTolerance) hedgeDelay(shard int) time.Duration {
	h := tt.health[shard]
	if h.samples.Load() == 0 {
		return tt.cfg.HedgeMaxDelay
	}
	d := time.Duration(h.ewmaNs.Load() + 3*h.devNs.Load())
	if d < tt.cfg.HedgeMinDelay {
		d = tt.cfg.HedgeMinDelay
	}
	if d > tt.cfg.HedgeMaxDelay {
		d = tt.cfg.HedgeMaxDelay
	}
	return d
}

// hedgeArbiter merges the original and hedge row streams of one probe
// batch into their multiset maximum. counts is keyed by the encoded
// tuple; per-source arrival counts and the merged emission count
// implement "emit iff this source has now seen this row more times
// than the merge has emitted it".
type hedgeArbiter struct {
	mu     sync.Mutex
	counts map[string]*hedgeCount
}

type hedgeCount struct {
	perSource [2]int
	emitted   int
}

func newHedgeArbiter() *hedgeArbiter {
	return &hedgeArbiter{counts: make(map[string]*hedgeCount)}
}

// admit records one row arrival from source and reports whether it is
// a first arrival (forward it) or a duplicate of the other stream's
// copy (drop it).
func (a *hedgeArbiter) admit(source int, key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.counts[key]
	if c == nil {
		c = &hedgeCount{}
		a.counts[key] = c
	}
	c.perSource[source]++
	if c.perSource[source] > c.emitted {
		c.emitted = c.perSource[source]
		return true
	}
	return false
}

// source wraps emit for one stream of the race.
func (a *hedgeArbiter) source(i int, emit func(value.Tuple) error) func(value.Tuple) error {
	var keyBuf []byte // per-source goroutine; never shared
	return func(t value.Tuple) error {
		keyBuf = value.EncodeTuple(keyBuf[:0], t)
		if !a.admit(i, string(keyBuf)) {
			return nil
		}
		return emit(t)
	}
}

// probeResult is one arm's outcome in the race.
type probeResult struct {
	rep   client.Report
	err   error
	hedge bool
}

// hedgedProbeShard runs one shard's probe batch with hedging: the
// primary probe starts immediately; if it is still outstanding after
// the shard's adaptive hedge delay and the token budget allows, a
// hedge races it over another session. First successful completion
// wins and cancels the loser (whose connection the client closes
// promptly — see client attempt cancellation); if one arm fails, the
// other's result stands.
func (r *Router) hedgedProbeShard(ctx context.Context, shard int, view string, m *ShardMap, batch []wire.ProbePart, trial bool, emit func(value.Tuple) error) (client.Report, error) {
	tt := r.tt
	if tt == nil || tt.hedge == nil {
		return r.probeShard(ctx, shard, view, m, batch, trial, emit)
	}
	tt.hedge.earn()
	arb := newHedgeArbiter()
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	results := make(chan probeResult, 2)
	go func() {
		rep, err := r.probeShard(pctx, shard, view, m, batch, trial, arb.source(0, emit))
		results <- probeResult{rep, err, false}
	}()

	timer := time.NewTimer(tt.hedgeDelay(shard))
	defer timer.Stop()
	var hcancel context.CancelFunc
	hedged := false
	outstanding := 1
	for {
		select {
		case <-timer.C:
			if !tt.hedge.tryTake() {
				r.metrics.HedgeDenied.Add(1)
				continue // timer is drained; only results remain
			}
			hedged = true
			outstanding++
			r.metrics.Shards[shard].HedgesSent.Add(1)
			var hctx context.Context
			hctx, hcancel = context.WithCancel(ctx)
			defer hcancel()
			go func() {
				rep, err := r.probeOnce(hctx, shard, view, m, batch, arb.source(1, emit))
				results <- probeResult{rep, err, true}
			}()
		case res := <-results:
			if res.err == nil {
				// Winner: cancel the loser. Its goroutine finishes into
				// the buffered channel; the canceled client call returns
				// promptly because cancellation closes its connection.
				if res.hedge {
					r.metrics.Shards[shard].HedgeWins.Add(1)
					pcancel()
				} else if hedged {
					hcancel()
				}
				return res.rep, nil
			}
			outstanding--
			if !res.hedge && !hedged {
				// Primary failed hard before any hedge launched: fail the
				// shard the way an unhedged probe would. Hard-down shards
				// are the breaker's job, not worth a token.
				return res.rep, res.err
			}
			if outstanding == 0 {
				return res.rep, res.err
			}
			// One arm is dead; wait for the survivor.
		}
	}
}

// probeOnce is probeShard without the epoch-retry loop, for hedge
// arms: if the hedge hits a stale-epoch answer the primary's retry
// path handles re-teaching, and a failed hedge costs nothing.
func (r *Router) probeOnce(ctx context.Context, shard int, view string, m *ShardMap, batch []wire.ProbePart, emit func(value.Tuple) error) (client.Report, error) {
	sm := r.metrics.Shards[shard]
	sm.Probes.Add(1)
	start := time.Now()
	c := r.pools[shard].get()
	rows := 0
	rep, err := c.ProbeParts(ctx, view, m.Epoch(), batch, r.probeBudget(ctx), func(t client.Tuple) error {
		rows++
		return emit(t)
	})
	r.pools[shard].put(c, err == nil || errors.Is(err, client.ErrRemote) || errors.Is(err, wire.ErrEpoch))
	sm.ProbeLatency.Observe(time.Since(start))
	sm.ProbeRows.Add(int64(rows))
	if err != nil {
		sm.ProbeFailures.Add(1)
	}
	r.noteOutcome(shard, outcomeProbe, time.Since(start), err, false)
	return rep, err
}

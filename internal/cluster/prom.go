package cluster

import (
	"io"
	"time"

	"pmv/internal/obs"
)

// WritePrometheus renders the router's metrics in the Prometheus text
// exposition format: router-level session/query counters, the
// scatter/exec/total phase histograms, and per-shard families labeled
// shard="<addr>" so one dashboard shows which shard is degrading the
// fan-out.
func (r *Router) WritePrometheus(w io.Writer) error {
	m := r.metrics
	p := obs.NewPromWriter(w)

	p.Counter("pmvrouter_sessions_total", "Client sessions accepted.", float64(m.SessionsTotal.Load()))
	p.Gauge("pmvrouter_sessions_active", "Client sessions currently open.", float64(m.SessionsActive.Load()))
	p.Counter("pmvrouter_queries_total", "Routed queries completed.", float64(m.Queries.Load()))
	p.Counter("pmvrouter_rows_total", "Result rows streamed to clients.", float64(m.Rows.Load()))
	p.Counter("pmvrouter_partial_rows_total", "O2 partial rows streamed to clients.", float64(m.PartialRows.Load()))
	p.Counter("pmvrouter_shed_total", "Queries shed to probes-only answers by admission control.", float64(m.Shed.Load()))
	p.Counter("pmvrouter_deadline_expired_total", "Queries truncated by their deadline.", float64(m.DeadlineExpired.Load()))
	p.Counter("pmvrouter_degraded_total", "Queries that lost a shard's partials or failed over O3.", float64(m.Degraded.Load()))
	p.Counter("pmvrouter_partial_only_total", "Queries closed from the PMV plane alone.", float64(m.PartialOnly.Load()))
	p.Counter("pmvrouter_errors_total", "Requests answered with an error frame.", float64(m.Errors.Load()))
	p.Counter("pmvrouter_ds_leftover_total", "Queries failed by the duplicate-multiset consistency audit.", float64(m.DSLeftover.Load()))
	p.Counter("pmvrouter_updates_total", "Update batches acked (applied on every shard).", float64(m.Updates.Load()))
	p.Counter("pmvrouter_update_ops_total", "Update ops applied (primary's count).", float64(m.UpdateOps.Load()))
	p.Counter("pmvrouter_update_rows_total", "Base-relation rows touched by updates (primary's count).", float64(m.UpdateRows.Load()))
	p.Counter("pmvrouter_update_failures_total", "Update batches failed on at least one shard.", float64(m.UpdateFailures.Load()))
	p.Counter("pmvrouter_fanout_sent_total", "Invalidation requests dispatched to key owners.", float64(m.FanoutSent.Load()))
	p.Counter("pmvrouter_fanout_retries_total", "Invalidations retried after re-teaching the shard map.", float64(m.FanoutRetries.Load()))
	p.Counter("pmvrouter_fanout_degrades_total", "Invalidations degraded to whole-view bumps.", float64(m.FanoutDegrades.Load()))
	p.Counter("pmvrouter_fanout_failures_total", "Invalidations lost after the full degradation ladder.", float64(m.FanoutFailures.Load()))
	p.Counter("pmvrouter_fanout_lag_seconds_total", "Cumulative ack-to-delivered invalidation lag.", float64(m.FanoutLagNs.Load())/1e9)
	p.Counter("pmvrouter_conn_rejected_total", "Connections refused by the MaxConns cap.", float64(m.ConnRejected.Load()))
	p.Counter("pmvrouter_idle_reaped_total", "Sessions closed for idling past IdleTimeout.", float64(m.IdleReaped.Load()))
	p.Counter("pmvrouter_corrupt_frames_total", "Sessions dropped on framing violations.", float64(m.CorruptFrames.Load()))
	p.Counter("pmvrouter_session_resets_total", "Sessions torn down by abrupt transport errors.", float64(m.SessionResets.Load()))

	p.Counter("pmvrouter_query_cost_rows_total", "Result rows billed by per-query cost accounting.", float64(m.CostRows.Load()))
	p.Counter("pmvrouter_query_cost_wire_bytes_total", "Row-stream bytes (payload plus framing) written to clients.", float64(m.CostBytes.Load()))
	p.Counter("pmvrouter_query_cost_alloc_bytes_total", "Heap bytes attributed to traced routed requests.", float64(m.CostAllocs.Load()))
	p.Counter("pmvrouter_traces_sampled_total", "Routed requests that recorded a trace.", float64(m.TracesSampled.Load()))
	p.Counter("pmvrouter_trace_slow_recorded_total", "Queries recorded in the slow ring by the latency threshold.", float64(m.SlowRecorded.Load()))
	p.Counter("pmvrouter_trace_degraded_recorded_total", "Queries recorded in the slow ring for degrading, regardless of latency.", float64(m.DegradedRecorded.Load()))
	p.Gauge("pmvrouter_trace_store_depth", "Assembled traces currently retained for pmvcli trace.", float64(r.traces.depth()))

	p.Gauge("pmvrouter_shard_map_epoch", "Epoch of the authoritative shard map.", float64(r.shardMap().Epoch()))

	hist := func(name, help string, h interface {
		Dump() ([]obs.Bucket, int64, float64)
	}) {
		buckets, count, sum := h.Dump()
		p.Header(name, "histogram", help)
		p.Histogram(name, "", buckets, count, sum)
	}
	hist("pmvrouter_scatter_seconds", "Probe fan-out latency (O1 plus the slowest shard's O2).", &m.Scatter)
	hist("pmvrouter_exec_seconds", "Routed O3 execution latency.", &m.Exec)
	hist("pmvrouter_query_seconds", "Whole routed query latency.", &m.Total)

	shardCounter := func(name, help string, get func(*ShardMetrics) int64) {
		p.Header(name, "counter", help)
		for _, sm := range m.Shards {
			p.Sample(name, obs.Label("shard", sm.Addr), float64(get(sm)))
		}
	}
	shardCounter("pmvrouter_shard_probes_total", "Probe batches sent to the shard.",
		func(sm *ShardMetrics) int64 { return sm.Probes.Load() })
	shardCounter("pmvrouter_shard_probe_rows_total", "Ls' partial tuples received from the shard.",
		func(sm *ShardMetrics) int64 { return sm.ProbeRows.Load() })
	shardCounter("pmvrouter_shard_probe_failures_total", "Probe batches lost to shard failures.",
		func(sm *ShardMetrics) int64 { return sm.ProbeFailures.Load() })
	shardCounter("pmvrouter_shard_epoch_installs_total", "Shard-map installs pushed to the shard.",
		func(sm *ShardMetrics) int64 { return sm.EpochInstalls.Load() })
	shardCounter("pmvrouter_shard_execs_total", "Routed O3 executions attempted on the shard.",
		func(sm *ShardMetrics) int64 { return sm.Execs.Load() })
	shardCounter("pmvrouter_shard_exec_failures_total", "Routed O3 executions the shard failed.",
		func(sm *ShardMetrics) int64 { return sm.ExecFailures.Load() })
	shardCounter("pmvrouter_shard_refills_total", "Refill batches dispatched to the shard.",
		func(sm *ShardMetrics) int64 { return sm.RefillsSent.Load() })
	shardCounter("pmvrouter_shard_refill_tuples_total", "Tuples the shard confirmed cached from refills.",
		func(sm *ShardMetrics) int64 { return sm.RefillTuples.Load() })
	shardCounter("pmvrouter_shard_refill_failures_total", "Refill batches lost (refill never retries).",
		func(sm *ShardMetrics) int64 { return sm.RefillFailures.Load() })
	shardCounter("pmvrouter_shard_updates_total", "Update batches sent to the shard.",
		func(sm *ShardMetrics) int64 { return sm.Updates.Load() })
	shardCounter("pmvrouter_shard_update_failures_total", "Update batches the shard failed.",
		func(sm *ShardMetrics) int64 { return sm.UpdateFailures.Load() })
	shardCounter("pmvrouter_shard_invals_total", "Invalidation requests dispatched to the shard.",
		func(sm *ShardMetrics) int64 { return sm.InvalsSent.Load() })
	shardCounter("pmvrouter_shard_inval_failures_total", "Invalidations the shard never received.",
		func(sm *ShardMetrics) int64 { return sm.InvalFailures.Load() })

	if r.tt != nil {
		p.Counter("pmvrouter_hedge_denied_total", "Hedge probes refused by the token budget.", float64(m.HedgeDenied.Load()))
		shardCounter("pmvrouter_shard_beats_total", "Heartbeat pings sent to the shard.",
			func(sm *ShardMetrics) int64 { return sm.Beats.Load() })
		shardCounter("pmvrouter_shard_beat_failures_total", "Heartbeat pings the shard failed.",
			func(sm *ShardMetrics) int64 { return sm.BeatFailures.Load() })
		shardCounter("pmvrouter_shard_hedges_total", "Hedge probes launched against the shard.",
			func(sm *ShardMetrics) int64 { return sm.HedgesSent.Load() })
		shardCounter("pmvrouter_shard_hedge_wins_total", "Probe races the hedge arm won.",
			func(sm *ShardMetrics) int64 { return sm.HedgeWins.Load() })
		shardCounter("pmvrouter_shard_breaker_trips_total", "Circuit-breaker transitions to open.",
			func(sm *ShardMetrics) int64 { return sm.BreakerTrips.Load() })
		shardCounter("pmvrouter_shard_breaker_skips_total", "Probes skipped-and-flagged by an open breaker.",
			func(sm *ShardMetrics) int64 { return sm.BreakerSkips.Load() })
		shardCounter("pmvrouter_shard_trial_probes_total", "Probes admitted as half-open breaker trials.",
			func(sm *ShardMetrics) int64 { return sm.TrialProbes.Load() })

		healthGauge := func(name, help string, get func(shard int) float64) {
			p.Header(name, "gauge", help)
			for shard, sm := range m.Shards {
				p.Sample(name, obs.Label("shard", sm.Addr), get(shard))
			}
		}
		now := time.Now()
		healthGauge("pmvrouter_shard_health_ewma_seconds", "EWMA probe/heartbeat round-trip latency.",
			func(shard int) float64 { return float64(r.tt.health[shard].ewmaNs.Load()) / 1e9 })
		healthGauge("pmvrouter_shard_health_phi", "Phi-accrual suspicion level (0 = healthy).",
			func(shard int) float64 { return r.tt.health[shard].phi(now) })
		healthGauge("pmvrouter_shard_breaker_state", "Breaker state (0 closed, 1 open, 2 half-open).",
			func(shard int) float64 { return float64(r.tt.breakers[shard].state.Load()) })
	}

	if hs := r.hotStats(); hs != nil {
		p.Counter("pmvrouter_hot_pushes_total", "MsgHotSet replication rounds fanned to the shards.", float64(hs.Pushes))
		p.Counter("pmvrouter_hot_push_keys_total", "Hot keys carried by MsgHotSet pushes.", float64(hs.PushKeys))
		p.Counter("pmvrouter_hot_push_tuples_total", "Tuples carried by MsgHotSet pushes.", float64(hs.PushTuples))
		p.Counter("pmvrouter_hot_push_failures_total", "MsgHotSet sends that failed after the epoch retry.", float64(hs.PushFails))
		p.Counter("pmvrouter_hot_invals_total", "MsgHotInval fan-outs after write batches.", float64(hs.Invals))
		p.Counter("pmvrouter_hot_inval_keys_total", "Replicated keys invalidated by MsgHotInval fan-outs.", float64(hs.InvalKeys))
		p.Counter("pmvrouter_hot_inval_failures_total", "MsgHotInval sends lost after the full degradation ladder.", float64(hs.InvalFails))
		p.Counter("pmvrouter_hot_replica_hits_total", "Probes answered from the router's replica cache.", float64(hs.ReplicaHits))
		p.Gauge("pmvrouter_hot_replica_keys", "Keys currently held in the router's replica cache.", float64(hs.ReplicaKeys))
		p.Counter("pmvrouter_hot_replica_evicts_total", "Replica entries dropped (writes or top-k churn).", float64(hs.ReplicaEvicts))
		p.Counter("pmvrouter_hot_suppressed_total", "Owner probes skipped because a presence-filter bitset proved the key absent.", float64(hs.Suppressed))
		p.Counter("pmvrouter_hot_filter_refreshes_total", "Per-shard presence-filter snapshot refetches.", float64(hs.FilterRefreshes))
		p.Counter("pmvrouter_hot_topk_offers_total", "Exact-probe observations offered to the top-k trackers.", float64(hs.TopKOffers))
		p.Counter("pmvrouter_hot_topk_churn_total", "Space-saving counter evictions (hot-set instability).", float64(hs.TopKChurn))
	}

	p.Header("pmvrouter_shard_probe_seconds", "histogram", "Per-shard probe round-trip latency.")
	for _, sm := range m.Shards {
		buckets, count, sum := sm.ProbeLatency.Dump()
		p.Histogram("pmvrouter_shard_probe_seconds", obs.Label("shard", sm.Addr), buckets, count, sum)
	}

	obs.WriteGoRuntime(p)
	return p.Flush()
}

package cluster_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"pmv"
	"pmv/client"
	"pmv/internal/cluster"
	"pmv/internal/server"
	"pmv/internal/wire"
)

// hotCluster is testCluster with the frequency plane on end to end:
// every shard runs a sketch/filter (EnableFreq) and the router runs
// top-k tracking, replica serving, suppression, and MsgHotSet fan-out
// on aggressive timers so convergence fits a test deadline.
func hotCluster(t *testing.T) (*cluster.Router, map[[2]int64]int) {
	t.Helper()
	var (
		addrs []string
		want  map[[2]int64]int
	)
	for i := 0; i < 3; i++ {
		db, w := shardFixture(t)
		// AdmitThreshold 1 lets the first refill cache an entry, so the
		// test does not depend on sketch warm-up to fill shard caches.
		db.EnableFreq(pmv.FreqConfig{Window: time.Minute, AdmitThreshold: 1})
		want = w
		s := server.New(db, shardConfig())
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Shutdown() })
		addrs = append(addrs, s.Addr().String())
	}
	r, err := cluster.NewRouter(cluster.Config{
		Shards:                addrs,
		DialTimeout:           time.Second,
		RefillTimeout:         time.Second,
		DrainTimeout:          2 * time.Second,
		DefaultDeadline:       10 * time.Second,
		Hot:                   true,
		HotK:                  8,
		HotPushInterval:       50 * time.Millisecond,
		FilterRefreshInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Shutdown() })
	return r, want
}

func routerHot(t *testing.T, c *client.Client) *wire.HotStats {
	t.Helper()
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Hot == nil {
		t.Fatal("router stats carry no hot-plane counters with Hot on")
	}
	return st.Hot
}

// TestHotReplicaServesAndInvalidates drives the full replication
// lifecycle through the wire: a repeatedly-queried pair becomes hot,
// gets captured into the router's replica cache and pushed to the
// shards, serves reads locally — still exact — and a routed write
// invalidates every copy before its ack, so no later read ever sees
// the old value.
func TestHotReplicaServesAndInvalidates(t *testing.T) {
	r, want := hotCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()

	// Warm until the plane demonstrably works the pair: replica cache
	// serving reads and at least one MsgHotSet round pushed.
	n := want[[2]int64{3, 2}]
	deadline := time.Now().Add(10 * time.Second)
	for {
		runQuery(t, c, 3, 2, n)
		hs := routerHot(t, c)
		if hs.ReplicaHits > 0 && hs.Pushes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hot plane never warmed: %+v", hs)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Overwrite one member's discount through the router. Pair (3,2)
	// holds pids 19+40k; pid 19's seeded discount is 19.
	if _, err := c.Update(context.Background(), true,
		client.Set("sale", "pid", client.Int(19), "discount", client.Int(777))); err != nil {
		t.Fatal(err)
	}

	// A read can still race an in-flight push or capture and trip the DS
	// audit — that read fails loudly with a typed error and repairs the
	// plane; it never answers wrong. A CLEAN read, though, must deliver
	// pid 19 exactly once with the new value: a 19 on a clean read means
	// a stale replica answered silently, the one forbidden outcome.
	fresh := func() bool {
		t.Helper()
		var vals []int64
		rows := 0
		_, err := c.ExecutePartial(context.Background(), "pmv_on_sale", conds(3, 2), func(row client.Row) error {
			rows++
			if row.Tuple[0].Int64() == 19 {
				vals = append(vals, row.Tuple[1].Int64())
			}
			return nil
		})
		if err != nil {
			if errors.Is(err, client.ErrRemote) {
				return false // flagged (DS audit): retry after the repair
			}
			t.Fatal(err)
		}
		if rows != n {
			t.Fatalf("clean post-write read returned %d rows, want %d", rows, n)
		}
		if len(vals) != 1 {
			t.Fatalf("clean read delivered pid 19 %d times: %v", len(vals), vals)
		}
		if vals[0] == 19 {
			t.Fatal("clean post-ack read served the pre-write discount: stale replica")
		}
		return vals[0] == 777
	}
	freshDeadline := time.Now().Add(10 * time.Second)
	for !fresh() {
		if time.Now().After(freshDeadline) {
			t.Fatal("post-write reads never converged on pid 19's new discount")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The write's damage report must have fanned MsgHotInval for the
	// pushed pair; the re-queried pair then re-warms through capture.
	deadline = time.Now().Add(10 * time.Second)
	for {
		hs := routerHot(t, c)
		if hs.Invals > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write to a pushed hot key fanned no MsgHotInval: %+v", hs)
		}
		time.Sleep(25 * time.Millisecond)
	}
	before := routerHot(t, c).ReplicaHits
	deadline = time.Now().Add(10 * time.Second)
	for {
		fresh() // every clean read must stay exact and post-write
		if routerHot(t, c).ReplicaHits > before {
			return // replica cache re-warmed post-write, still fresh
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica cache never re-warmed after the invalidation")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestHotSuppressionProvesAbsence pins negative-probe suppression over
// the wire: once the router holds a shard's presence-filter snapshot, a
// query for a key no shard caches skips the owner probe entirely and
// still answers exactly (zero rows — category 9 does not exist).
func TestHotSuppressionProvesAbsence(t *testing.T) {
	r, want := hotCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()

	// Teach the router the view and give the filter loop one round.
	runQuery(t, c, 3, 2, want[[2]int64{3, 2}])
	deadline := time.Now().Add(10 * time.Second)
	for routerHot(t, c).FilterRefreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("filter snapshots never refreshed")
		}
		time.Sleep(25 * time.Millisecond)
	}

	deadline = time.Now().Add(10 * time.Second)
	for {
		runQuery(t, c, 9, 0, 0)
		if routerHot(t, c).Suppressed > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("absent-key probe was never suppressed")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

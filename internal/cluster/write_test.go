package cluster_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"pmv/client"
	"pmv/internal/maint"
	"pmv/internal/wire"
)

// TestRouterUpdateFansOut pins the cluster write path: one ΔR batch
// through the router applies on every shard, the primary's affected
// keys fan back out as invalidations, and routed queries stay exact
// afterwards.
func TestRouterUpdateFansOut(t *testing.T) {
	r, srvs, dbs, want := testCluster(t)
	for i, s := range srvs {
		p, err := maint.New(maint.Config{Source: dbs[i], MaxDelay: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		s.SetMaint(p)
	}
	c := client.New(r.Addr().String())
	defer c.Close()

	// Warm every key on every shard so invalidations have targets.
	for pass := 0; pass < 2; pass++ {
		for cat := int64(0); cat < 8; cat++ {
			for st := int64(0); st < 5; st++ {
				runQuery(t, c, cat, st, want[[2]int64{cat, st}])
			}
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Delete pids 0..39: exactly one pid from each of the 40
	// (category, store) keys, so the damage spans every shard's slice
	// of the key space.
	var ops []client.Op
	for pid := int64(0); pid < 40; pid++ {
		ops = append(ops, client.Delete("sale", "pid", client.Int(pid)))
	}
	rep, err := c.Update(context.Background(), true, ops...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 40 || rep.Rows != 40 {
		t.Fatalf("applied=%d rows=%d, want 40/40", rep.Applied, rep.Rows)
	}
	if len(rep.Keys["pmv_on_sale"]) == 0 && !rep.Wide["pmv_on_sale"] {
		t.Fatalf("primary reported no damage: %+v", rep)
	}

	// Every routed query must reflect the delete immediately — each
	// combo lost exactly one pid.
	for cat := int64(0); cat < 8; cat++ {
		for st := int64(0); st < 5; st++ {
			runQuery(t, c, cat, st, want[[2]int64{cat, st}]-1)
		}
	}

	// The async fan-out must land: the router dispatched invalidations
	// to the non-primary shards (or degraded, but never silently).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, serr := c.Stats(context.Background())
		if serr != nil {
			t.Fatal(serr)
		}
		if st.Server.Updates != 1 {
			t.Fatalf("router update counter: %+v", st.Server)
		}
		if st.Maint != nil && st.Maint.FanoutSent > 0 && st.Maint.FanoutFailures == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fan-out never dispatched: %+v", st.Maint)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterUpdateShardDownFailsLoudly pins the no-failover contract:
// with one shard gone, the writer gets a typed error and nothing is
// silently dropped.
func TestRouterUpdateShardDownFailsLoudly(t *testing.T) {
	r, srvs, _, _ := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()

	srvs[2].Shutdown()
	_, err := c.Update(context.Background(), true,
		client.Delete("sale", "pid", client.Int(5)))
	if err == nil {
		t.Fatal("update acked with a shard down")
	}
	if !strings.Contains(err.Error(), "update failed on shard") {
		t.Fatalf("wrong error shape: %v", err)
	}

	st, serr := c.Stats(context.Background())
	if serr != nil {
		t.Fatal(serr)
	}
	if st.Server.Updates != 0 {
		t.Fatalf("failed update still acked in stats: %+v", st.Server)
	}

	// The router itself refuses direct invalidate frames — those are
	// shard requests.
	if _, err := c.Invalidate(context.Background(), wire.InvalidateRequest{
		View: "pmv_on_sale", All: true,
	}); err == nil || !strings.Contains(err.Error(), "shard request") {
		t.Fatalf("router accepted an invalidate: %v", err)
	}
}

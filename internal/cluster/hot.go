// hot.go is the router half of the frequency plane: a space-saving
// top-k tracker over probed bcp keys per view, a bounded router-side
// replica cache of the hottest entries' Ls′ tuples, per-shard
// presence-filter bitsets for negative-probe suppression, and the
// periodic MsgHotSet fan-out that replicates the hot set to every
// shard.
//
// Correctness leans on two one-sided contracts:
//
//   - Suppression (a shard's bitset proves a key absent, so the probe
//     is skipped) can only lose a would-be partial — Operation O3
//     recomputes the row — never fabricate one. A stale bitset
//     therefore degrades hit rate, not answers.
//   - Replica answers (the router emits a hot key's tuples itself)
//     are audited by the DS duplicate multiset like any partial: a
//     stale replica's tuples are never matched by O3 and fail the
//     query loudly. Writes keep that window tiny by dropping router
//     replicas synchronously before the ack, and the seq discipline
//     below keeps shard-side replicas ordered.
//
// Seq ordering: the global push/inval sequence is allocated BEFORE a
// push snapshots the replica cache and AFTER an invalidation empties
// it (both under the plane's mutex). Any push whose snapshot saw
// pre-write data therefore carries a smaller seq than the write's
// HotInval, and the shards' per-key floors drop it — an in-flight
// push can never resurrect a stale replica.
//
// Capture ordering: the router's own replica cache has the same
// resurrection hazard from a different direction — a probe (or O3
// refill) that started before a write can deliver pre-write tuples
// after the write already dropped the view's replicas, and a capture
// of those tuples would serve stale data to every later read. Each
// query therefore snapshots the view's invalidation generation before
// its probes are dispatched, and capture discards tuples whose
// generation is no longer current. View-level granularity is
// deliberately coarse: a write cancels every in-flight capture for the
// view, costing warm-up speed, never correctness.
//
// Self-repair: both disciplines above are best-effort against a
// network that can lose a HotInval outright (shard dead past the
// whole-view fallback). A shard-side replica that misses its
// invalidation has no other death: local maintenance only kills owned
// damage, and later pushes skip populated entries. The DS audit is the
// detector — a stale replica's partials are never matched by execution
// — and repair() is the reaction: on any DS leftover the router drops
// the query's replicas and re-fans HotInval for its pushed keys, so
// staleness costs loud flagged queries for one round trip, never a
// silent wrong answer and never a permanently poisoned cache.
//
// One deliberate trade: suppressing a probe also starves the owner
// shard's popularity sketch for that key, so a suppressed key cannot
// earn shard-side admission through refill. Keys hot enough to matter
// are tracked by the router's own top-k and warmed through the
// replication path instead (ApplyHotSet bypasses the admission gate);
// mid-popularity absent keys simply stay uncached and are answered by
// O3 — a cache-miss cost, never a correctness one.
package cluster

import (
	"context"
	"errors"
	"maps"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pmv/client"
	"pmv/internal/core"
	"pmv/internal/freq"
	"pmv/internal/value"
	"pmv/internal/wire"
)

// hotReplicaTupleCap bounds one replica entry's tuple capture; shards
// re-enforce their own F bound (TuplesPerBCP) on ApplyHotSet anyway.
const hotReplicaTupleCap = 64

// probeLocal verdicts.
const (
	hotProbe      = iota // nothing local: probe the owner
	hotServed            // answered from the router's replica cache
	hotSuppressed        // owner's bitset proves the key absent: skip
)

// hotPlane is the router's frequency-plane state; nil unless
// Config.Hot — every touchpoint is a single nil check when disabled,
// and a disabled router emits byte-identical wire traffic.
type hotPlane struct {
	r *Router

	// seq orders pushes against invalidations cluster-wide (see the
	// package comment for the allocation discipline).
	seq atomic.Uint64

	mu    sync.Mutex
	views map[string]*hotView

	fmu     sync.RWMutex
	filters []map[string]*freq.Bitset // per shard: view -> latest snapshot

	pushes, pushKeys, pushTuples, pushFails atomic.Int64
	invals, invalKeys, invalFails           atomic.Int64
	replicaHits, replicaEvicts              atomic.Int64
	suppressed, filterRefreshes             atomic.Int64
}

// hotView is one view's tracker, replica cache, and pushed-key set.
type hotView struct {
	topk *freq.TopK
	// replicas holds captured Ls′ tuples for tracked keys, bounded to
	// the tracker's counter capacity (4k keys, hotReplicaTupleCap
	// tuples each).
	replicas map[string]*hotReplica
	// pushed remembers keys ever sent in a MsgHotSet, so a write only
	// fans HotInval for keys that may actually be replicated somewhere.
	pushed map[string]struct{}
	// gen counts the view's invalidations; captures snapshotted under
	// an older generation are discarded (see the package comment).
	gen uint64
}

// hotReplica is one key's captured entry: tuples plus their encoded
// forms for dedup (the same key's partials arrive once per query).
type hotReplica struct {
	tuples []value.Tuple
	seen   map[string]struct{}
}

func newHotPlane(r *Router) *hotPlane {
	return &hotPlane{
		r:       r,
		views:   make(map[string]*hotView),
		filters: make([]map[string]*freq.Bitset, len(r.pools)),
	}
}

// viewLocked returns (creating if needed) a view's hot state. Caller
// holds h.mu.
func (h *hotPlane) viewLocked(name string) *hotView {
	hv := h.views[name]
	if hv == nil {
		hv = &hotView{
			topk:     freq.NewTopK(h.r.cfg.HotK),
			replicas: make(map[string]*hotReplica),
			pushed:   make(map[string]struct{}),
		}
		h.views[name] = hv
	}
	return hv
}

// filterFor returns the freshest bitset snapshot for (shard, view);
// nil suppresses nothing.
func (h *hotPlane) filterFor(shard int, view string) *freq.Bitset {
	h.fmu.RLock()
	defer h.fmu.RUnlock()
	if m := h.filters[shard]; m != nil {
		return m[view]
	}
	return nil
}

// probeLocal runs the frequency plane's per-part work before a probe
// is sent to its owner: offer the key to the top-k tracker (every
// exact probe is a popularity observation), answer from the replica
// cache when possible, and otherwise consult the owner's bitset for a
// proof of absence. emit must be the query's synchronized partial
// emitter; replica tuples flow through it so the DS multiset audits
// them like any shard-served partial. Only exact parts reach here —
// an inexact part needs shard-side residual filtering, so a raw
// replica answer could emit rows outside the query.
func (h *hotPlane) probeLocal(view string, owner int, key string, emit func(value.Tuple) error) int {
	h.mu.Lock()
	hv := h.viewLocked(view)
	hv.topk.Offer(key)
	var tuples []value.Tuple
	if rep := hv.replicas[key]; rep != nil && len(rep.tuples) > 0 {
		tuples = slices.Clone(rep.tuples)
	}
	h.mu.Unlock()
	if tuples != nil {
		h.replicaHits.Add(1)
		for _, t := range tuples {
			if emit(t) != nil {
				break // the caller sees emitFail; stop feeding it
			}
		}
		return hotServed
	}
	if bs := h.filterFor(owner, view); !bs.MayContain(key) {
		h.suppressed.Add(1)
		return hotSuppressed
	}
	return hotProbe
}

// suppressOnly is probeLocal for inexact parts: absence proof still
// holds (no entry under the bcp key means the probe would miss), but
// replica answers and popularity tracking are exact-part business.
func (h *hotPlane) suppressOnly(view string, owner int, key string) bool {
	if bs := h.filterFor(owner, view); !bs.MayContain(key) {
		h.suppressed.Add(1)
		return true
	}
	return false
}

// viewGen returns the view's current invalidation generation. Queries
// snapshot it before dispatching probes and pass it to capture, so a
// tuple read before a write can never repopulate a replica the write
// dropped.
func (h *hotPlane) viewGen(name string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.viewLocked(name).gen
}

// capture records one emitted Ls′ tuple into the replica cache when
// its bcp key is currently tracked by the view's top-k. gen must be
// the viewGen snapshot taken before the query's probes were
// dispatched; a stale generation means a write landed while the tuple
// was in flight, and the capture is discarded. Tuples are deduped on
// their encoding — the same hot key's partials arrive once per query —
// and cloned, because the caller's tuple buffer is not ours to retain.
func (h *hotPlane) capture(meta *viewMeta, t value.Tuple, gen uint64) {
	condVals := make([]value.Value, len(meta.condPos))
	for i, p := range meta.condPos {
		condVals[i] = t[p]
	}
	key := meta.coder.KeyFromCondValues(condVals)
	h.mu.Lock()
	defer h.mu.Unlock()
	hv := h.viewLocked(meta.name)
	if hv.gen != gen {
		return
	}
	if !hv.topk.Tracked(key) {
		return
	}
	rep := hv.replicas[key]
	if rep == nil {
		rep = &hotReplica{seen: make(map[string]struct{})}
		hv.replicas[key] = rep
	}
	if len(rep.tuples) >= hotReplicaTupleCap {
		return
	}
	enc := string(value.EncodeTuple(nil, t))
	if _, dup := rep.seen[enc]; dup {
		return
	}
	rep.seen[enc] = struct{}{}
	rep.tuples = append(rep.tuples, t.Clone())
}

// invalidate is the write path's synchronous hook, called after every
// shard acked a ΔR batch and BEFORE the writer's ack: drop router
// replicas for the damaged keys (so a post-ack read can never be
// served pre-write data by the router itself), then fan MsgHotInval
// for the pushed ones to every shard asynchronously. keys/wide are
// the primary's damage report, per view.
func (h *hotPlane) invalidate(keys map[string][][]byte, wide map[string]bool) {
	if len(keys) == 0 && len(wide) == 0 {
		return
	}
	perView := make(map[string][]string)
	h.mu.Lock()
	for view, hv := range h.views {
		if wide[view] || len(keys[view]) > 0 {
			// Cancel in-flight captures: a probe dispatched before this
			// write may still deliver pre-write tuples after the drop
			// below.
			hv.gen++
		}
		if wide[view] {
			if n := len(hv.replicas); n > 0 {
				h.replicaEvicts.Add(int64(n))
				hv.replicas = make(map[string]*hotReplica)
			}
			if len(hv.pushed) > 0 {
				ks := make([]string, 0, len(hv.pushed))
				for k := range hv.pushed {
					ks = append(ks, k)
				}
				sort.Strings(ks)
				perView[view] = ks
				hv.pushed = make(map[string]struct{})
			}
			continue
		}
		for _, k := range keys[view] {
			key := string(k)
			if _, ok := hv.replicas[key]; ok {
				delete(hv.replicas, key)
				h.replicaEvicts.Add(1)
			}
			if _, ok := hv.pushed[key]; ok {
				perView[view] = append(perView[view], key)
			}
		}
	}
	h.mu.Unlock()
	if len(perView) == 0 {
		return
	}
	// Seq after the drop: any push that snapshotted pre-write replicas
	// allocated its seq earlier, so the floors this inval raises block
	// it on every shard.
	m := h.r.shardMap()
	for view, ks := range perView {
		h.fanInval(view, ks, m)
	}
}

// fanInval allocates the next hot seq and fans one MsgHotInval to
// every shard asynchronously.
func (h *hotPlane) fanInval(view string, ks []string, m *ShardMap) {
	req := wire.HotInvalRequest{View: view, Epoch: m.Epoch(), Seq: h.seq.Add(1), Keys: ks}
	h.invals.Add(1)
	h.invalKeys.Add(int64(len(ks)))
	for shard := range h.r.pools {
		h.r.invalWG.Add(1)
		go func(shard int, req wire.HotInvalRequest) {
			defer h.r.invalWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), h.r.cfg.InvalTimeout)
			defer cancel()
			if err := h.sendHotInval(ctx, shard, req, m); err != nil {
				h.invalFails.Add(1)
			}
		}(shard, req)
	}
}

// repair reacts to a failed duplicate-multiset audit (a DS leftover):
// some cache served partial tuples execution could not reproduce, and
// with replication in play the stale copy may be a shard-side hot
// entry whose HotInval was lost to the network — unlike an owned
// entry, no local maintenance will ever invalidate it, later pushes
// skip populated entries, and its stale partials poison the router's
// own replica through capture. Drop the query's replicas, cancel
// in-flight captures, and re-fan HotInval for every pushed key the
// query touched; the next read then misses, recomputes, and re-warms
// from fresh data. Until the repair lands the audit keeps failing
// queries loudly — the plane trades availability, never correctness.
func (h *hotPlane) repair(meta *viewMeta, parts []core.ConditionPart) {
	h.mu.Lock()
	hv := h.viewLocked(meta.name)
	hv.gen++
	var ks []string
	for i := range parts {
		key := parts[i].BCPKey
		if _, ok := hv.replicas[key]; ok {
			delete(hv.replicas, key)
			h.replicaEvicts.Add(1)
		}
		if _, ok := hv.pushed[key]; ok {
			ks = append(ks, key)
		}
	}
	h.mu.Unlock()
	if len(ks) == 0 {
		return
	}
	h.fanInval(meta.name, ks, h.r.shardMap())
}

// sendHotInval delivers one hot invalidation, descending the same
// ladder as the write plane's per-key fan-out: MsgErrEpoch re-teaches
// the shard map and retries once; any remaining failure degrades to
// an epoch-less whole-view invalidation, which kills the shard's
// replicas (they are ordinary generation-stamped entries) at the cost
// of its whole cache for the view. A rung that fails entirely leaves
// the DS audit as the backstop — a surviving stale replica flags the
// query, it never answers wrong.
func (h *hotPlane) sendHotInval(ctx context.Context, shard int, req wire.HotInvalRequest, m *ShardMap) error {
	c := h.r.pools[shard].get()
	_, err := c.HotInval(ctx, req)
	if errors.Is(err, wire.ErrEpoch) && ctx.Err() == nil && h.r.installOn(shard, m) {
		_, err = c.HotInval(ctx, req)
	}
	if err != nil && ctx.Err() == nil {
		if _, derr := c.Invalidate(ctx, wire.InvalidateRequest{View: req.View, All: true}); derr == nil {
			h.r.pools[shard].put(c, true)
			return nil
		}
	}
	h.r.pools[shard].put(c, err == nil || errors.Is(err, client.ErrRemote))
	return err
}

// hotPushLoop periodically replicates each view's hot set to every
// shard; hotFilterLoop periodically refetches each shard's presence
// filters. Both stop with the router.
func (r *Router) hotPushLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HotPushInterval)
	defer t.Stop()
	for {
		select {
		case <-r.closing:
			return
		case <-t.C:
		}
		r.hot.pushAll()
	}
}

func (r *Router) hotFilterLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.FilterRefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-r.closing:
			return
		case <-t.C:
		}
		r.hot.refreshFilters()
	}
}

// pushAll cuts one MsgHotSet per view with replicated tuples and fans
// it to every shard. The seq is allocated before the snapshot (see the
// package comment); replicas for keys the tracker has since evicted
// are pruned here, keeping the cache O(k).
func (h *hotPlane) pushAll() {
	h.mu.Lock()
	names := make([]string, 0, len(h.views))
	for name := range h.views {
		names = append(names, name)
	}
	h.mu.Unlock()
	sort.Strings(names)
	m := h.r.shardMap()
	for _, name := range names {
		seq := h.seq.Add(1)
		h.mu.Lock()
		hv := h.viewLocked(name)
		for key := range hv.replicas {
			if !hv.topk.Tracked(key) {
				delete(hv.replicas, key)
				h.replicaEvicts.Add(1)
			}
		}
		var keys []wire.HotKey
		var tuples int
		for _, kc := range hv.topk.Top() {
			rep := hv.replicas[kc.Key]
			if rep == nil || len(rep.tuples) == 0 {
				continue
			}
			keys = append(keys, wire.HotKey{Key: kc.Key, Tuples: slices.Clone(rep.tuples)})
			tuples += len(rep.tuples)
			hv.pushed[kc.Key] = struct{}{}
		}
		h.mu.Unlock()
		if len(keys) == 0 {
			continue
		}
		req := wire.HotSetRequest{View: name, Epoch: m.Epoch(), Seq: seq, Keys: keys}
		h.pushes.Add(1)
		h.pushKeys.Add(int64(len(keys)))
		h.pushTuples.Add(int64(tuples))
		var wg sync.WaitGroup
		for shard := range h.r.pools {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), h.r.cfg.RefillTimeout)
				defer cancel()
				c := h.r.pools[shard].get()
				_, err := c.HotSet(ctx, req)
				if errors.Is(err, wire.ErrEpoch) && ctx.Err() == nil && h.r.installOn(shard, m) {
					_, err = c.HotSet(ctx, req)
				}
				h.r.pools[shard].put(c, err == nil || errors.Is(err, client.ErrRemote))
				if err != nil {
					h.pushFails.Add(1)
				}
			}(shard)
		}
		wg.Wait()
	}
}

// refreshFilters refetches every (shard, view) presence-filter bitset
// the router has view metadata for. A fetch failure clears that slot —
// better to probe normally than to suppress on a snapshot whose shard
// may have restarted with a different cache.
func (h *hotPlane) refreshFilters() {
	r := h.r
	r.vmu.Lock()
	names := make([]string, 0, len(r.views))
	for name := range r.views {
		names = append(names, name)
	}
	r.vmu.Unlock()
	sort.Strings(names)
	if len(names) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.DialTimeout+2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for shard := range r.pools {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			fresh := make(map[string]*freq.Bitset, len(names))
			healthy := true
			c := r.pools[shard].get()
			for _, name := range names {
				fr, err := c.Filter(ctx, name)
				if err != nil {
					fresh[name] = nil
					if !errors.Is(err, client.ErrRemote) {
						healthy = false
					}
					continue
				}
				fresh[name] = freq.NewBitset(fr.Bits, fr.Hashes, fr.Gen, fr.Keys)
			}
			r.pools[shard].put(c, healthy)
			h.fmu.Lock()
			if h.filters[shard] == nil {
				h.filters[shard] = fresh
			} else {
				maps.Copy(h.filters[shard], fresh)
			}
			h.fmu.Unlock()
			h.filterRefreshes.Add(1)
		}(shard)
	}
	wg.Wait()
}

// hotStats renders the plane's counters; nil when disabled.
func (r *Router) hotStats() *wire.HotStats {
	h := r.hot
	if h == nil {
		return nil
	}
	out := &wire.HotStats{
		Pushes:          h.pushes.Load(),
		PushKeys:        h.pushKeys.Load(),
		PushTuples:      h.pushTuples.Load(),
		PushFails:       h.pushFails.Load(),
		Invals:          h.invals.Load(),
		InvalKeys:       h.invalKeys.Load(),
		InvalFails:      h.invalFails.Load(),
		ReplicaHits:     h.replicaHits.Load(),
		ReplicaEvicts:   h.replicaEvicts.Load(),
		Suppressed:      h.suppressed.Load(),
		FilterRefreshes: h.filterRefreshes.Load(),
	}
	h.mu.Lock()
	for _, hv := range h.views {
		out.ReplicaKeys += int64(len(hv.replicas))
		offers, churn := hv.topk.Stats()
		out.TopKOffers += offers
		out.TopKChurn += churn
	}
	h.mu.Unlock()
	return out
}

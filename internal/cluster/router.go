// router.go is the scatter-gather front end of the cluster plane. A
// Router speaks the same wire protocol as pmvd, so existing clients
// point at it unchanged, but behind each query it runs the paper's
// protocol across shards:
//
//	O1  locally — BreakConditions via an engine-free BCPCoder built
//	    from the view's template and dividers (fetched once per view
//	    from a shard),
//	O2  scattered — condition parts are grouped by the shard map's
//	    owner and probed concurrently; cached Ls′ partials stream to
//	    the client as they arrive, each recorded in the router's DS
//	    duplicate multiset first,
//	O3  on any one shard — every shard holds the full base data, so
//	    the blocking plan runs once, round-robined with failover while
//	    zero O3 rows have been emitted; duplicates of already-streamed
//	    partials are consumed from DS instead of re-emitted,
//	refill — O3 rows that were not served from cache fan back to the
//	    bcp owners asynchronously, never retried (shard-side refill is
//	    idempotent at entry granularity, so at-most-once is safe and
//	    at-least-once is not needed).
//
// Degradation mirrors the single-node PMV-less path: a shard that is
// down, blackholed, or answering MsgErrEpoch after a restart costs its
// partials (Report.Degraded), never correctness. If every shard
// refuses O3 but partials were delivered, the query closes
// PartialOnly+Degraded — the same contract as single-node admission
// shedding. Leftover DS tokens on a cleanly completed query are a
// consistency violation and fail the query loudly.
package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"maps"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pmv/client"
	"pmv/internal/core"
	"pmv/internal/expr"
	"pmv/internal/obs"
	"pmv/internal/value"
	"pmv/internal/wire"
)

// Config tunes a Router.
type Config struct {
	// Shards lists the shard addresses (index = shard id). Required.
	Shards []string
	// VNodes is the consistent-hash virtual-node count (default 64).
	VNodes int
	// Epoch stamps the initial shard map (default 1; must be nonzero).
	Epoch uint64
	// PoolSize bounds concurrently routed O3s; queries beyond it are
	// shed to probes-only answers. Default: GOMAXPROCS.
	PoolSize int
	// ClientsPerShard caps each shard's idle connection pool (default 4).
	ClientsPerShard int
	// DefaultDeadline bounds queries that carry none (0 = unbounded).
	DefaultDeadline time.Duration
	// DialTimeout bounds each shard dial (default 2s).
	DialTimeout time.Duration
	// RefillTimeout bounds each asynchronous refill fan-out (default 2s).
	RefillTimeout time.Duration
	// InvalTimeout bounds each asynchronous invalidation fan-out after
	// a write batch (default 2s).
	InvalTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight sessions.
	// Default 5s.
	DrainTimeout time.Duration
	// MaxConns caps concurrently open client sessions (0 = unlimited).
	MaxConns int
	// IdleTimeout reclaims client sessions idle between requests (0 =
	// sessions may idle forever).
	IdleTimeout time.Duration
	// FrameTimeout bounds one request frame's arrival once started.
	// Default 30s; negative disables.
	FrameTimeout time.Duration
	// WriteTimeout bounds each response write. Default 30s; negative
	// disables.
	WriteTimeout time.Duration
	// Trace samples every routed query into the trace store at startup
	// (togglable at runtime via MsgTrace).
	Trace bool
	// SlowThreshold records routed queries at or above this duration in
	// the slow ring (0 = disabled at startup; togglable via MsgTrace).
	SlowThreshold time.Duration

	// TailTolerance enables the tail-tolerance plane: per-shard health
	// scoring fed by every probe/exec/refill outcome plus a heartbeat,
	// circuit breakers that skip-and-flag sick shards instead of
	// awaiting them, and deadline-budget propagation on probe/refill
	// requests. Off by default; when off, none of the machinery runs,
	// allocates, or adds wire bytes.
	TailTolerance bool
	// Hedge enables hedged O2 probes (implies TailTolerance): a probe
	// still outstanding past the shard's adaptive hedge delay races a
	// second copy, first-wins with cancellation, capped by a token
	// budget.
	Hedge bool
	// HeartbeatInterval paces the health pings (default 500ms).
	HeartbeatInterval time.Duration
	// BreakerFailThreshold trips a breaker after this many consecutive
	// failures (default 3).
	BreakerFailThreshold int
	// BreakerPhi trips a breaker when the phi-accrual suspicion level
	// reaches it (default 8 — the silence is ~10⁸× longer than normal).
	BreakerPhi float64
	// BreakerLatencyFactor trips a breaker whose shard's latency EWMA
	// exceeds this multiple of the fleet's median EWMA (default 6),
	// but only above BreakerLatencyFloor (default 5ms) — the gray-shard
	// trip that decouples routed p99 from a slow-but-alive shard.
	BreakerLatencyFactor float64
	BreakerLatencyFloor  time.Duration
	// BreakerCooldown is the first open period before a half-open trial
	// (default 500ms, jittered, doubling per re-trip up to
	// BreakerMaxCooldown, default 8s).
	BreakerCooldown    time.Duration
	BreakerMaxCooldown time.Duration
	// HedgeMinDelay / HedgeMaxDelay clamp the adaptive hedge delay
	// (defaults 1ms / 50ms).
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// HedgeRate is the hedge-token income per primary probe (default
	// 0.05 — steady-state hedge amplification is capped at 5% extra
	// probes); HedgeBurst is the bucket cap (default 4).
	HedgeRate  float64
	HedgeBurst float64

	// Hot enables the router half of the frequency plane: a per-view
	// top-k tracker over probed bcp keys, a router-side replica cache
	// answering hot probes locally, per-shard presence-filter bitsets
	// suppressing provably-absent owner probes, and the periodic
	// MsgHotSet fan-out replicating the hot set to every shard. Off by
	// default; when off, none of the machinery runs, allocates, or
	// adds wire bytes.
	Hot bool
	// HotK is the per-view hot-set size (default 8).
	HotK int
	// HotPushInterval paces MsgHotSet replication (default 1s).
	HotPushInterval time.Duration
	// FilterRefreshInterval paces presence-filter snapshot refetches
	// (default 1s).
	FilterRefreshInterval time.Duration
}

func (c *Config) fill() error {
	if len(c.Shards) == 0 {
		return errors.New("cluster: router needs at least one shard")
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0)
	}
	if c.ClientsPerShard <= 0 {
		c.ClientsPerShard = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RefillTimeout <= 0 {
		c.RefillTimeout = 2 * time.Second
	}
	if c.InvalTimeout <= 0 {
		c.InvalTimeout = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.FrameTimeout == 0 {
		c.FrameTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.Hedge {
		c.TailTolerance = true
	}
	if c.TailTolerance {
		if c.HeartbeatInterval <= 0 {
			c.HeartbeatInterval = 500 * time.Millisecond
		}
		if c.BreakerFailThreshold <= 0 {
			c.BreakerFailThreshold = 3
		}
		if c.BreakerPhi <= 0 {
			c.BreakerPhi = 8
		}
		if c.BreakerLatencyFactor <= 0 {
			c.BreakerLatencyFactor = 6
		}
		if c.BreakerLatencyFloor <= 0 {
			c.BreakerLatencyFloor = 5 * time.Millisecond
		}
		if c.BreakerCooldown <= 0 {
			c.BreakerCooldown = 500 * time.Millisecond
		}
		if c.BreakerMaxCooldown <= 0 {
			c.BreakerMaxCooldown = 8 * time.Second
		}
		if c.HedgeMinDelay <= 0 {
			c.HedgeMinDelay = time.Millisecond
		}
		if c.HedgeMaxDelay <= 0 {
			c.HedgeMaxDelay = 50 * time.Millisecond
		}
		if c.HedgeRate <= 0 {
			c.HedgeRate = 0.05
		}
		if c.HedgeBurst <= 0 {
			c.HedgeBurst = 4
		}
	}
	if c.Hot {
		if c.HotK <= 0 {
			c.HotK = 8
		}
		if c.HotPushInterval <= 0 {
			c.HotPushInterval = time.Second
		}
		if c.FilterRefreshInterval <= 0 {
			c.FilterRefreshInterval = time.Second
		}
	}
	return nil
}

// Router serves the pmvd wire protocol by scattering the PMV protocol
// over a set of shards.
type Router struct {
	cfg     Config
	metrics *Metrics
	sem     chan struct{} // admission slots for routed O3s
	rr      atomic.Int64  // exec round-robin cursor

	smu  sync.Mutex
	smap *ShardMap

	pools []*pool

	vmu   sync.Mutex
	views map[string]*viewMeta

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*rsession]struct{}
	closing  chan struct{}
	wg       sync.WaitGroup

	refillWG sync.WaitGroup
	invalWG  sync.WaitGroup

	traceOn atomic.Bool   // sample every routed query
	slowNs  atomic.Int64  // slow threshold in ns; -1 = off
	queryID atomic.Uint64 // local trace/slow-record id source
	traces  *traceStore
	slow    *slowRing

	// tt is the tail-tolerance plane (health scoring, breakers, hedge
	// budget); nil unless Config.TailTolerance — every touchpoint is a
	// single nil check when disabled.
	tt *tailTolerance

	// hot is the frequency plane (top-k tracking, replica cache,
	// probe suppression, MsgHotSet fan-out); nil unless Config.Hot,
	// same disabled-cost contract as tt.
	hot *hotPlane
}

// viewMeta is the router's cached routing metadata for one view:
// everything needed to run O1 and project Ls′ rows without a database.
type viewMeta struct {
	name      string
	tpl       *expr.Template
	coder     *core.BCPCoder
	nUserCols int
	condPos   []int // each condition attribute's slot in Ls′ rows
}

// NewRouter builds a router over cfg.Shards without listening.
func NewRouter(cfg Config) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	smap, err := NewShardMap(cfg.Epoch, cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:      cfg,
		metrics:  newMetrics(cfg.Shards),
		sem:      make(chan struct{}, cfg.PoolSize),
		smap:     smap,
		pools:    make([]*pool, len(cfg.Shards)),
		views:    make(map[string]*viewMeta),
		sessions: make(map[*rsession]struct{}),
		closing:  make(chan struct{}),
		traces:   newTraceStore(),
		slow:     &slowRing{},
	}
	r.traceOn.Store(cfg.Trace)
	if cfg.SlowThreshold > 0 {
		r.slowNs.Store(int64(cfg.SlowThreshold))
	} else {
		r.slowNs.Store(-1)
	}
	if cfg.TailTolerance {
		r.tt = newTailTolerance(&r.cfg, len(cfg.Shards))
	}
	if cfg.Hot {
		r.hot = newHotPlane(r)
	}
	for i, addr := range cfg.Shards {
		r.pools[i] = newPool(addr, cfg.DialTimeout, cfg.ClientsPerShard)
	}
	return r, nil
}

// Metrics exposes the live counters.
func (r *Router) Metrics() *Metrics { return r.metrics }

// shardMap returns the current map.
func (r *Router) shardMap() *ShardMap {
	r.smu.Lock()
	defer r.smu.Unlock()
	return r.smap
}

// Start listens on addr and accepts sessions until Shutdown. It also
// pushes the shard map to every shard in the background, best-effort —
// a shard that is down bootstraps later through the MsgErrEpoch path.
func (r *Router) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	r.Serve(ln)
	return nil
}

// Serve accepts sessions on ln until Shutdown (ownership of ln
// transfers to the router).
func (r *Router) Serve(ln net.Listener) {
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.installEverywhere(r.shardMap())
	}()
	if r.tt != nil {
		r.wg.Add(1)
		go r.heartbeatLoop()
	}
	if r.hot != nil {
		r.wg.Add(2)
		go r.hotPushLoop()
		go r.hotFilterLoop()
	}
	r.wg.Add(1)
	go r.acceptLoop(ln)
}

// Addr returns the bound listen address (nil before Start).
func (r *Router) Addr() net.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return nil
	}
	return r.ln.Addr()
}

// installEverywhere pushes m to every shard, best-effort.
func (r *Router) installEverywhere(m *ShardMap) {
	for i := range r.pools {
		r.installOn(i, m)
	}
}

// installOn pushes m to one shard. Failures are tolerated: the shard
// will ask again through MsgErrEpoch the first time it is probed.
func (r *Router) installOn(shard int, m *ShardMap) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.DialTimeout+time.Second)
	defer cancel()
	c := r.pools[shard].get()
	err := c.InstallShardMap(ctx, m.Wire())
	r.pools[shard].put(c, err == nil)
	if err != nil {
		return false
	}
	r.metrics.Shards[shard].EpochInstalls.Add(1)
	return true
}

// Shutdown stops accepting, drains sessions (bounded by DrainTimeout),
// waits for in-flight refill fan-outs, and closes the shard pools.
func (r *Router) Shutdown() error {
	r.mu.Lock()
	select {
	case <-r.closing:
		r.mu.Unlock()
		return nil
	default:
	}
	close(r.closing)
	ln := r.ln
	for sess := range r.sessions {
		sess.conn.SetReadDeadline(time.Now())
		sess.conn.SetWriteDeadline(time.Now().Add(r.cfg.DrainTimeout))
	}
	r.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}

	done := make(chan struct{})
	go func() { r.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(r.cfg.DrainTimeout):
		r.mu.Lock()
		for sess := range r.sessions {
			sess.conn.Close()
		}
		r.mu.Unlock()
		<-done
	}
	r.refillWG.Wait() // bounded: each refill runs under RefillTimeout
	r.invalWG.Wait()  // bounded: each invalidation runs under InvalTimeout
	for _, p := range r.pools {
		p.close()
	}
	return err
}

// rsession is one accepted client connection.
type rsession struct {
	r    *Router
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// inFrame distinguishes an idle close from a mid-frame stall.
	inFrame bool
	// traceCtx is the wire trace context of the MsgTraced envelope
	// currently being served, nil outside one.
	traceCtx *wire.TraceContext
}

func (sess *rsession) armWrite() {
	if wt := sess.r.cfg.WriteTimeout; wt > 0 {
		sess.conn.SetWriteDeadline(time.Now().Add(wt))
	}
}

func (sess *rsession) readRequest() (byte, []byte, error) {
	sess.inFrame = false
	if idle := sess.r.cfg.IdleTimeout; idle > 0 {
		sess.conn.SetReadDeadline(time.Now().Add(idle))
	} else {
		sess.conn.SetReadDeadline(time.Time{})
	}
	select {
	case <-sess.r.closing:
		sess.conn.SetReadDeadline(time.Now())
	default:
	}
	if _, err := sess.br.Peek(1); err != nil {
		return 0, nil, err
	}
	sess.inFrame = true
	if ft := sess.r.cfg.FrameTimeout; ft > 0 {
		sess.conn.SetReadDeadline(time.Now().Add(ft))
	}
	return wire.ReadFrame(sess.br)
}

func (r *Router) acceptLoop(ln net.Listener) {
	defer r.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		select {
		case <-r.closing:
			r.mu.Unlock()
			c.Close()
			return
		default:
		}
		if r.cfg.MaxConns > 0 && len(r.sessions) >= r.cfg.MaxConns {
			r.mu.Unlock()
			r.metrics.ConnRejected.Add(1)
			go func(c net.Conn) {
				c.SetWriteDeadline(time.Now().Add(time.Second))
				wire.WriteFrame(c, wire.MsgError, []byte("router: connection limit reached"))
				c.Close()
			}(c)
			continue
		}
		sess := &rsession{
			r:    r,
			conn: c,
			br:   bufio.NewReaderSize(c, 64<<10),
			bw:   bufio.NewWriterSize(c, 64<<10),
		}
		r.sessions[sess] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go r.handleSession(sess)
	}
}

// errVersionMismatch terminates a session after the typed MsgErrVersion
// frame has been written.
var errVersionMismatch = errors.New("router: protocol version mismatch")

// errUnknownRequest terminates a session whose stream may be desynced.
var errUnknownRequest = errors.New("router: unknown request type")

func (r *Router) handleSession(sess *rsession) {
	r.metrics.SessionsTotal.Add(1)
	r.metrics.SessionsActive.Add(1)
	defer func() {
		r.metrics.SessionsActive.Add(-1)
		r.mu.Lock()
		delete(r.sessions, sess)
		r.mu.Unlock()
		sess.conn.Close()
		r.wg.Done()
	}()

	for {
		typ, payload, err := sess.readRequest()
		if err != nil {
			switch {
			case errors.Is(err, wire.ErrCorruptFrame) || errors.Is(err, wire.ErrFrameTooLarge):
				r.metrics.CorruptFrames.Add(1)
			case errors.Is(err, os.ErrDeadlineExceeded):
				select {
				case <-r.closing:
				default:
					r.metrics.IdleReaped.Add(1)
				}
			case errors.Is(err, io.EOF):
			default:
				r.metrics.SessionResets.Add(1)
			}
			return
		}
		sess.armWrite()
		err = r.dispatch(sess, typ, payload)
		if err == nil {
			sess.armWrite()
			err = sess.bw.Flush()
		}
		if err != nil {
			switch {
			case errors.Is(err, errVersionMismatch):
			case errors.Is(err, errUnknownRequest):
				r.metrics.CorruptFrames.Add(1)
			default:
				select {
				case <-r.closing:
				default:
					r.metrics.SessionResets.Add(1)
				}
			}
			return
		}
		select {
		case <-r.closing:
			return
		default:
		}
	}
}

// dispatch answers one request; mirror of the single-node dispatch with
// admin traffic proxied to shards where that is meaningful.
func (r *Router) dispatch(sess *rsession, typ byte, payload []byte) error {
	bw := sess.bw
	switch typ {
	case wire.MsgHello:
		return r.handleHello(sess, payload)
	case wire.MsgQuery:
		return r.handleQuery(sess, payload)
	case wire.MsgStats:
		return r.reply(bw, wire.StatsReply{Server: r.metrics.ServerStats(), Maint: r.metrics.maintStats(), Hot: r.hotStats()})
	case wire.MsgUpdate:
		return r.handleUpdate(sess, payload)
	case wire.MsgInvalidate:
		return r.writeErr(bw, errors.New("router: invalidate is a shard request; this is a router"))
	case wire.MsgViews, wire.MsgTables, wire.MsgSchema, wire.MsgCount, wire.MsgPeek, wire.MsgViewStats:
		// Reads against base data or view metadata: any healthy shard's
		// answer is as good as another's.
		return r.forwardFirst(sess, typ, payload)
	case wire.MsgAnalyze, wire.MsgCheckpoint:
		return r.forwardAll(sess, typ, payload)
	case wire.MsgShardMap:
		return r.handleShardMap(bw, payload)
	case wire.MsgShards:
		return r.handleShards(bw)
	case wire.MsgTrace:
		return r.handleTrace(bw, payload)
	case wire.MsgSlowlog:
		return r.handleSlowlog(bw, payload)
	case wire.MsgTraced:
		return r.handleTraced(sess, payload)
	case wire.MsgTraceGet:
		return r.handleTraceGet(bw, payload)
	case wire.MsgFleet:
		return r.handleFleet(bw)
	case wire.MsgPing:
		return r.handlePing(bw, payload)
	case wire.MsgProbeParts, wire.MsgExec, wire.MsgRefill:
		return r.writeErr(bw, errors.New("router: shard-internal request; this is a router"))
	default:
		return fmt.Errorf("%w 0x%02x", errUnknownRequest, typ)
	}
}

func (r *Router) handleHello(sess *rsession, payload []byte) error {
	v, err := wire.DecodeHello(payload)
	if err != nil {
		return r.writeErr(sess.bw, err)
	}
	if v != wire.ProtocolVersion {
		if werr := wire.WriteFrame(sess.bw, wire.MsgErrVersion, wire.EncodeVersionErr(wire.ProtocolVersion)); werr != nil {
			return werr
		}
		if werr := sess.bw.Flush(); werr != nil {
			return werr
		}
		return fmt.Errorf("%w: peer speaks %d, router speaks %d", errVersionMismatch, v, wire.ProtocolVersion)
	}
	return r.reply(sess.bw, wire.HelloReply{Version: int(wire.ProtocolVersion)})
}

func (r *Router) writeErr(bw *bufio.Writer, err error) error {
	r.metrics.Errors.Add(1)
	return wire.WriteFrame(bw, wire.MsgError, []byte(err.Error()))
}

func (r *Router) reply(bw *bufio.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return r.writeErr(bw, err)
	}
	return wire.WriteFrame(bw, wire.MsgReply, data)
}

// adminCtx bounds a proxied admin round trip.
func (r *Router) adminCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), r.cfg.DialTimeout+5*time.Second)
}

// forwardFirst relays an admin request to the first shard that answers.
func (r *Router) forwardFirst(sess *rsession, typ byte, payload []byte) error {
	ctx, cancel := r.adminCtx()
	defer cancel()
	var lastErr error
	for shard := range r.pools {
		c := r.pools[shard].get()
		raw, err := c.Forward(ctx, typ, payload)
		r.pools[shard].put(c, err == nil || errors.Is(err, client.ErrRemote))
		if err == nil {
			sess.armWrite()
			return wire.WriteFrame(sess.bw, wire.MsgReply, raw)
		}
		if errors.Is(err, client.ErrRemote) {
			// The shard answered; its refusal is the answer.
			return r.writeErr(sess.bw, err)
		}
		lastErr = err
	}
	return r.writeErr(sess.bw, fmt.Errorf("router: no shard reachable: %w", lastErr))
}

// forwardAll relays maintenance to every shard; the first failure is
// reported (shards already reached stay done — both commands are
// idempotent).
func (r *Router) forwardAll(sess *rsession, typ byte, payload []byte) error {
	ctx, cancel := r.adminCtx()
	defer cancel()
	for shard := range r.pools {
		c := r.pools[shard].get()
		_, err := c.Forward(ctx, typ, payload)
		r.pools[shard].put(c, err == nil || errors.Is(err, client.ErrRemote))
		if err != nil {
			return r.writeErr(sess.bw, fmt.Errorf("router: shard %s: %w", r.cfg.Shards[shard], err))
		}
	}
	return r.reply(sess.bw, wire.OKReply{OK: true})
}

// handleShardMap reads (empty payload) or replaces (JSON payload) the
// authoritative map. A replacement must advance the epoch; it is pushed
// to every shard before the reply so a successful install means the
// cluster is routed by the new map.
func (r *Router) handleShardMap(bw *bufio.Writer, payload []byte) error {
	if len(payload) > 0 {
		var mr wire.ShardMapReply
		if err := json.Unmarshal(payload, &mr); err != nil {
			return r.writeErr(bw, fmt.Errorf("router: bad shard map: %w", err))
		}
		m, err := FromWire(mr)
		if err != nil {
			return r.writeErr(bw, err)
		}
		r.smu.Lock()
		if m.Epoch() <= r.smap.Epoch() {
			cur := r.smap.Epoch()
			r.smu.Unlock()
			return r.writeErr(bw, fmt.Errorf("router: new epoch %d does not advance current %d", m.Epoch(), cur))
		}
		if len(m.Shards()) != len(r.smap.Shards()) {
			r.smu.Unlock()
			return r.writeErr(bw, errors.New("router: changing the shard set requires a restart (static pools)"))
		}
		r.smap = m
		r.smu.Unlock()
		if r.tt != nil {
			// Epoch-aware reset: the re-teach invalidates suspicion
			// accrued under the old map, and the install traffic itself
			// must not be refused by a breaker left open.
			r.tt.resetBreakers()
		}
		r.installEverywhere(m)
	}
	return r.reply(bw, r.shardMap().Wire())
}

// handleShards reports cluster status: per-shard reachability, the
// epoch each shard has installed, and its view occupancy.
func (r *Router) handleShards(bw *bufio.Writer) error {
	m := r.shardMap()
	out := wire.ShardsReply{
		Epoch:  m.Epoch(),
		VNodes: m.Wire().VNodes,
		Shards: make([]wire.ShardInfo, len(r.pools)),
	}
	ctx, cancel := r.adminCtx()
	defer cancel()
	var wg sync.WaitGroup
	for shard := range r.pools {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			info := wire.ShardInfo{Addr: r.cfg.Shards[shard]}
			c := r.pools[shard].get()
			sm, err := c.ShardMap(ctx)
			if err == nil {
				info.Up = true
				info.Epoch = sm.Epoch
				if views, verr := c.Views(ctx); verr == nil {
					info.Views = views
				}
				if st, serr := c.Stats(ctx); serr == nil {
					info.Snapshot = st.Snapshot
				}
			} else {
				info.Error = err.Error()
			}
			r.pools[shard].put(c, err == nil)
			out.Shards[shard] = info
		}(shard)
	}
	wg.Wait()
	return r.reply(bw, out)
}

// viewMeta returns the cached routing metadata for a view, fetching it
// from the first healthy shard on a cold miss.
func (r *Router) viewMeta(ctx context.Context, name string) (*viewMeta, error) {
	r.vmu.Lock()
	if vm, ok := r.views[name]; ok {
		r.vmu.Unlock()
		return vm, nil
	}
	r.vmu.Unlock()

	// Open-breaker shards go last: a cold metadata miss on a fresh view
	// must not stall every first query behind a known-sick shard when
	// any healthy one can answer.
	order := r.execOrder(0, len(r.pools))
	var lastErr error
	for i := range r.pools {
		shard := i
		if order != nil {
			shard = order[i]
		}
		c := r.pools[shard].get()
		views, err := c.Views(ctx)
		r.pools[shard].put(c, err == nil)
		if err != nil {
			lastErr = err
			continue
		}
		for _, vi := range views {
			if vi.Name != name {
				continue
			}
			coder, err := core.NewBCPCoder(vi.Template, vi.Dividers, vi.MaxConditionParts)
			if err != nil {
				return nil, err
			}
			_, condPos := core.SelectPlusLayout(vi.Template)
			vm := &viewMeta{
				name:      name,
				tpl:       vi.Template,
				coder:     coder,
				nUserCols: len(vi.Template.Select),
				condPos:   condPos,
			}
			r.vmu.Lock()
			r.views[name] = vm
			r.vmu.Unlock()
			return vm, nil
		}
		return nil, fmt.Errorf("router: no view %q", name)
	}
	return nil, fmt.Errorf("router: no shard reachable for view metadata: %w", lastErr)
}

// handleQuery runs the scattered PMV protocol for one client query.
func (r *Router) handleQuery(sess *rsession, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeQuery(payload)
	if err != nil {
		return r.writeErr(bw, err)
	}

	// Trace setup before any shard call: the trace rides the context
	// into every probe/exec/refill, so shard span reports fan back into
	// it automatically through the client layer.
	tr, external := r.sessionTrace(sess, req.View, r.slowNs.Load())
	o := &queryObs{tr: tr, external: external, view: req.View, allocMark: tr.AllocMark()}

	ctx := context.Background()
	deadline := req.Deadline
	if deadline <= 0 {
		deadline = r.cfg.DefaultDeadline
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	ctx = obs.WithTrace(ctx, tr)

	meta, err := r.viewMeta(ctx, req.View)
	if err != nil {
		return r.writeErr(bw, err)
	}
	q := &expr.Query{Template: meta.tpl, Conds: req.Conds}
	if err := q.Validate(); err != nil {
		return r.writeErr(bw, err)
	}

	// Operation O1, locally.
	var o1Start time.Time
	if tr.Enabled() {
		o1Start = time.Now()
	}
	skipped := false
	parts, o1err := meta.coder.BreakConditions(q)
	if o1err != nil {
		if !errors.Is(o1err, core.ErrTooManyParts) {
			return r.writeErr(bw, o1err)
		}
		skipped, parts = true, nil
	}
	if tr.Enabled() {
		var inexact int64
		for i := range parts {
			if !parts[i].Exact {
				inexact++
			}
		}
		tr.Span(obs.KindO1, o1Start, int64(len(parts)), inexact, 0)
	}

	// Admission: decided before any work, like the single-node server.
	shed := false
	select {
	case r.sem <- struct{}{}:
		defer func() { <-r.sem }()
		tr.Event(obs.KindQueue, 1, 0, 0)
	default:
		shed = true
		tr.Event(obs.KindQueue, 0, 0, 0)
	}

	// Shared emission state. ds is the DS duplicate multiset, keyed on
	// the encoded full Ls′ tuple; every emitted partial is recorded
	// BEFORE its row frame is written, so O3 can always consume it.
	var (
		emitMu          sync.Mutex
		ds              = make(map[string]int)
		partialsEmitted int
		rowBuf          []byte
		emitFail        error
	)
	emitLocked := func(t value.Tuple, partial bool) error {
		sess.armWrite()
		rowBuf = wire.EncodeRow(rowBuf[:0], t[:meta.nUserCols], partial)
		o.wireBytes += int64(len(rowBuf)) + frameOverhead
		if werr := wire.WriteFrame(bw, wire.MsgRow, rowBuf); werr != nil {
			emitFail = werr
			return werr
		}
		if partial {
			if werr := bw.Flush(); werr != nil {
				emitFail = werr
				return werr
			}
			partialsEmitted++
		}
		return nil
	}

	// The capture generation: a write to this view between here and a
	// capture discards the capture, so in-flight pre-write tuples can
	// never repopulate a dropped replica.
	var hotGen uint64
	if r.hot != nil {
		hotGen = r.hot.viewGen(meta.name)
	}

	start := time.Now()
	hit, degraded := r.scatterProbes(ctx, meta, parts, func(t value.Tuple) error {
		if r.hot != nil {
			// Capture hot keys' partials into the replica cache; dup-safe
			// (replica-served tuples re-arrive here and are deduped).
			r.hot.capture(meta, t, hotGen)
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		ds[string(value.EncodeTuple(nil, t))]++
		return emitLocked(t, true)
	})
	partialLatency := time.Since(start)
	if emitFail != nil {
		return emitFail
	}
	r.metrics.Scatter.Observe(partialLatency)
	r.metrics.PartialRows.Add(int64(partialsEmitted))
	if degraded {
		// The query may still close cleanly, but some shard's cached
		// partials were silently lost — record it either way.
		o.degrade("probe degraded: shard partials lost")
	}

	baseRep := wire.Report{
		Hit:            hit,
		Skipped:        skipped,
		Degraded:       degraded,
		Shed:           shed,
		ConditionParts: len(parts),
		PartialTuples:  partialsEmitted,
		PartialLatency: partialLatency,
	}

	if shed {
		// Probes-only answer: bounded work under overload, flagged.
		baseRep.PartialOnly = true
		baseRep.TotalTuples = partialsEmitted
		o.degrade("shed: partial-only answer")
		return r.finishQuery(sess, baseRep, start, o)
	}

	// Operation O3 on one shard, with failover while zero O3 rows have
	// reached the client. Each attempt starts from a fresh DS snapshot:
	// a failed attempt may have consumed tokens for duplicates it
	// dropped, and replaying against the consumed map would either
	// re-emit a partial or fake a consistency violation.
	snapshot := maps.Clone(ds)
	nShards := len(r.pools)
	firstShard := int(r.rr.Add(1)-1) % nShards
	var (
		execRep  client.Report
		execErr  error
		execRows int
		refill   []value.Tuple
		execOK   bool
		attempts int
	)
	var o3Start time.Time
	if tr.Enabled() {
		o3Start = time.Now()
	}
	order := r.execOrder(firstShard, nShards)
	for attempt := 0; attempt < nShards; attempt++ {
		attempts++
		shard := (firstShard + attempt) % nShards
		if order != nil {
			shard = order[attempt]
		}
		ds = maps.Clone(snapshot)
		execRows, refill = 0, nil
		sm := r.metrics.Shards[shard]
		sm.Execs.Add(1)
		c := r.pools[shard].get()
		execRep, execErr = c.ExecPlain(ctx, meta.name, req.Conds, func(t client.Tuple) error {
			emitMu.Lock()
			defer emitMu.Unlock()
			key := string(value.EncodeTuple(nil, t))
			if n := ds[key]; n > 0 {
				if n == 1 {
					delete(ds, key)
				} else {
					ds[key] = n - 1
				}
				return nil // duplicate of an already-streamed partial
			}
			if werr := emitLocked(t, false); werr != nil {
				return werr
			}
			execRows++
			refill = append(refill, t.Clone())
			return nil
		})
		r.pools[shard].put(c, execErr == nil || errors.Is(execErr, client.ErrRemote))
		if execErr == nil || ctx.Err() == nil {
			// Exec latency is workload-shaped, so only the verdict feeds
			// the failure detector (d=0); a deadline-ended attempt blames
			// neither side.
			r.noteOutcome(shard, outcomeExec, 0, execErr, false)
		}
		if emitFail != nil {
			return emitFail
		}
		if execErr == nil {
			execOK = true
			break
		}
		sm.ExecFailures.Add(1)
		if ctx.Err() != nil {
			break // the deadline, not the shard, ended the attempt
		}
		if execRows > 0 {
			// Rows from a now-dead O3 already reached the client; a
			// second execution could duplicate them. Fail typed — the
			// client sees a subset plus an error, never duplicates.
			break
		}
	}

	if !execOK {
		if execRows == 0 && partialsEmitted > 0 && ctx.Err() == nil {
			// Every shard refused O3 but the partials stand: close the
			// stream the way single-node degradation does. This is the
			// slow-ring's most important customer: the query degraded to
			// the flagged PMV-only subset, so it is recorded with a
			// reason regardless of how fast it was.
			r.metrics.Degraded.Add(1)
			baseRep.Degraded = true
			baseRep.PartialOnly = true
			baseRep.TotalTuples = partialsEmitted
			o.degrade(fmt.Sprintf("o3 failed on every shard: %v", execErr))
			return r.finishQuery(sess, baseRep, start, o)
		}
		return r.writeErr(bw, fmt.Errorf("router: query execution failed: %w", execErr))
	}
	if tr.Enabled() {
		tr.Span(obs.KindO3, o3Start, int64(execRows), int64(attempts), 0)
	}

	// Exactly-once audit: on a clean completion every recorded partial
	// must have been matched by an O3 row. Deadline truncation excuses
	// leftovers (O3 stopped early by contract).
	if !execRep.DeadlineExpired {
		leftover := 0
		for _, n := range ds {
			leftover += n
		}
		if leftover > 0 {
			if r.hot != nil {
				// A leftover with replication in play can mean a stale
				// shard-side hot entry whose invalidation was lost; fan a
				// fresh one so the next read converges.
				r.hot.repair(meta, parts)
			}
			r.metrics.DSLeftover.Add(1)
			return r.writeErr(bw, fmt.Errorf("router: consistency violation: %d partial tuples never produced by execution", leftover))
		}
	}

	r.metrics.Exec.Observe(execRep.ExecLatency)
	baseRep.DeadlineExpired = execRep.DeadlineExpired
	baseRep.TotalTuples = partialsEmitted + execRows
	baseRep.ExecLatency = execRep.ExecLatency

	if len(refill) > 0 {
		r.spawnRefill(tr, meta, refill, hotGen)
	}
	return r.finishQuery(sess, baseRep, start, o)
}

// finishQuery records the closing metrics and observability (trace
// store, slow ring, span fan-back), then writes the MsgDone frame.
func (r *Router) finishQuery(sess *rsession, rep wire.Report, start time.Time, o *queryObs) error {
	r.metrics.Queries.Add(1)
	r.metrics.Rows.Add(int64(rep.TotalTuples))
	if rep.Shed {
		r.metrics.Shed.Add(1)
	}
	if rep.PartialOnly {
		r.metrics.PartialOnly.Add(1)
	}
	if rep.DeadlineExpired {
		r.metrics.DeadlineExpired.Add(1)
	}
	if rep.Degraded && !rep.PartialOnly {
		r.metrics.Degraded.Add(1)
	}
	r.metrics.Total.Observe(time.Since(start))
	r.recordQuery(sess, rep, start, o)
	sess.armWrite()
	return wire.WriteFrame(sess.bw, wire.MsgDone, wire.EncodeReport(nil, rep))
}

// scatterProbes groups parts by owner and probes the owning shards
// concurrently. emit is called once per cached Ls′ tuple (from probe
// goroutines — it must be internally synchronized). Returns whether any
// bcp hit and whether any shard's partials were lost to failure.
func (r *Router) scatterProbes(ctx context.Context, meta *viewMeta, parts []core.ConditionPart, emit func(value.Tuple) error) (hit, degraded bool) {
	if len(parts) == 0 {
		return false, false
	}
	m := r.shardMap()
	groups := make(map[int][]wire.ProbePart)
	for i := range parts {
		p := &parts[i]
		wp := wire.ProbePart{Key: p.BCPKey, Exact: p.Exact}
		if !p.Exact {
			wp.Conds = p.CondInstances()
		}
		owner := m.Owner(p.BCPKey)
		// Frequency plane: an exact part may be answered from the
		// router's replica cache (hot key) or skipped outright when the
		// owner's presence-filter bitset proves the key absent; either
		// way the owner probe is saved. Inexact parts need shard-side
		// residual filtering, so only the absence proof applies.
		if r.hot != nil {
			if p.Exact {
				switch r.hot.probeLocal(meta.name, owner, p.BCPKey, emit) {
				case hotServed:
					hit = true
					continue
				case hotSuppressed:
					continue
				}
			} else if r.hot.suppressOnly(meta.name, owner, p.BCPKey) {
				continue
			}
		}
		groups[owner] = append(groups[owner], wp)
	}

	tr := obs.FromContext(ctx)
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		skipped bool
	)
	for shard, batch := range groups {
		// Breaker gate: a shard scored sick is skipped-and-flagged, the
		// same degradation contract as a dead shard — except no one
		// waits for it.
		admit, trial := r.allowProbe(shard)
		if !admit {
			skipped = true
			if tr.Enabled() {
				tr.AddSpans(obs.Span{
					Kind:   obs.KindO2Probe,
					Start:  time.Since(tr.Begin),
					N1:     int64(len(batch)),
					Source: r.cfg.Shards[shard] + " (breaker open)",
				})
			}
			continue
		}
		wg.Add(1)
		go func(shard int, batch []wire.ProbePart, trial bool) {
			defer wg.Done()
			var pStart time.Time
			if tr.Enabled() {
				pStart = time.Now()
			}
			rep, err := r.hedgedProbeShard(ctx, shard, meta.name, m, batch, trial, emit)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				degraded = true
				if tr.Enabled() {
					// A successful probe's spans fan back from the shard
					// itself; only a lost shard needs a router-observed
					// span, or it would vanish from the timeline.
					tr.AddSpans(obs.Span{
						Kind:   obs.KindO2Probe,
						Start:  pStart.Sub(tr.Begin),
						Dur:    time.Since(pStart),
						N1:     int64(len(batch)),
						Source: r.cfg.Shards[shard] + " (lost)",
					})
				}
				return
			}
			if rep.Hit {
				hit = true
			}
		}(shard, batch, trial)
	}
	wg.Wait()
	return hit, degraded || skipped
}

// probeShard sends one probe batch, re-installing the shard map and
// retrying once when the shard answers MsgErrEpoch (the deterministic
// restart-recovery path: a rebooted shard holds epoch 0 until a router
// re-teaches it the map). Epoch errors arrive before any row, so the
// retry can never duplicate a partial.
func (r *Router) probeShard(ctx context.Context, shard int, view string, m *ShardMap, batch []wire.ProbePart, trial bool, emit func(value.Tuple) error) (client.Report, error) {
	sm := r.metrics.Shards[shard]
	for attempt := 0; ; attempt++ {
		sm.Probes.Add(1)
		start := time.Now()
		c := r.pools[shard].get()
		rows := 0
		rep, err := c.ProbeParts(ctx, view, m.Epoch(), batch, r.probeBudget(ctx), func(t client.Tuple) error {
			rows++
			return emit(t)
		})
		r.pools[shard].put(c, err == nil || errors.Is(err, client.ErrRemote) || errors.Is(err, wire.ErrEpoch))
		sm.ProbeLatency.Observe(time.Since(start))
		sm.ProbeRows.Add(int64(rows))
		if err == nil {
			r.noteOutcome(shard, outcomeProbe, time.Since(start), nil, trial)
			return rep, nil
		}
		if errors.Is(err, wire.ErrEpoch) && attempt == 0 && ctx.Err() == nil {
			if r.installOn(shard, m) {
				continue
			}
		}
		sm.ProbeFailures.Add(1)
		r.noteOutcome(shard, outcomeProbe, time.Since(start), err, trial)
		return rep, err
	}
}

// spawnRefill fans the query's uncached O3 tuples back to their bcp
// owners asynchronously. Fire-and-forget by design: refill is free
// work, the shard side is idempotent at entry granularity, and the
// query's answer is already complete — so a lost refill costs a future
// cache miss, nothing else. A non-nil tr rides into the refill
// contexts so the shards' refill spans land in the router's stored
// trace — after the reply, which is why `pmvcli trace` reads the live
// trace rather than a snapshot.
func (r *Router) spawnRefill(tr *obs.Trace, meta *viewMeta, tuples []value.Tuple, hotGen uint64) {
	select {
	case <-r.closing:
		return
	default:
	}
	m := r.shardMap()
	condVals := make([]value.Value, len(meta.condPos))
	groups := make(map[int][]value.Tuple)
	for _, t := range tuples {
		for i, p := range meta.condPos {
			condVals[i] = t[p]
		}
		owner := m.Owner(meta.coder.KeyFromCondValues(condVals))
		groups[owner] = append(groups[owner], t)
		if r.hot != nil {
			// A refilled tuple is a cache miss for a demanded key — the
			// capture that lets a newly hot key's entry be replicated
			// before any shard has it cached.
			r.hot.capture(meta, t, hotGen)
		}
	}
	for shard, batch := range groups {
		r.refillWG.Add(1)
		go func(shard int, batch []value.Tuple) {
			defer r.refillWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.RefillTimeout)
			defer cancel()
			ctx = obs.WithTrace(ctx, tr)
			sm := r.metrics.Shards[shard]
			sm.RefillsSent.Add(1)
			c := r.pools[shard].get()
			cached, err := c.Refill(ctx, meta.name, m.Epoch(), batch, r.probeBudget(ctx))
			r.pools[shard].put(c, err == nil || errors.Is(err, client.ErrRemote) || errors.Is(err, wire.ErrEpoch))
			r.noteOutcome(shard, outcomeRefill, 0, err, false)
			if err != nil {
				sm.RefillFailures.Add(1)
				if errors.Is(err, wire.ErrEpoch) {
					// This batch is lost (refill never retries), but
					// re-teaching the map saves the ones after it.
					r.installOn(shard, m)
				}
				return
			}
			sm.RefillTuples.Add(int64(cached))
		}(shard, batch)
	}
}

// pool is a small free-list of self-healing clients for one shard.
// Clients that saw transport trouble are closed rather than pooled, so
// a session that died mid-stream never pollutes a later request.
type pool struct {
	addr  string
	limit int

	mu     sync.Mutex
	free   []*client.Client
	seq    int64
	closed bool

	dialTimeout time.Duration
}

func newPool(addr string, dialTimeout time.Duration, limit int) *pool {
	return &pool{addr: addr, limit: limit, dialTimeout: dialTimeout}
}

func (p *pool) get() *client.Client {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c
	}
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	return client.NewConfig(client.Config{
		Addr:        p.addr,
		DialTimeout: p.dialTimeout,
		MaxRetries:  2,
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  250 * time.Millisecond,
		Seed:        seq,
	})
}

// put returns a client to the pool when its last call ended healthy;
// otherwise (or when the pool is full or closed) the client is closed.
func (p *pool) put(c *client.Client, healthy bool) {
	if healthy {
		p.mu.Lock()
		if !p.closed && len(p.free) < p.limit {
			p.free = append(p.free, c)
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
	}
	c.Close()
}

func (p *pool) close() {
	p.mu.Lock()
	free := p.free
	p.free, p.closed = nil, true
	p.mu.Unlock()
	for _, c := range free {
		c.Close()
	}
}

// breaker.go is the per-shard circuit breaker: closed (traffic flows),
// open (probes are skipped-and-flagged instead of awaited), half-open
// (one trial admitted after a jittered cooldown; its outcome decides).
// The trip decision itself lives in health.go — the breaker is only
// the admission state machine. Skipping a shard is always safe in this
// protocol: a missing O2 answer legally degrades the query to a
// flagged partial, exactly like a dead shard does today, and O3 never
// consults the breaker for correctness (only for failover ordering).
package cluster

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

type breakerState int32

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one shard's admission state machine. state is atomic so
// the closed-state fast path is a single load; transitions take mu.
type breaker struct {
	state atomic.Int32

	mu       sync.Mutex
	openedAt time.Time
	wait     time.Duration // jittered current cooldown
	cooldown time.Duration // escalating base, reset on close
	trial    bool          // a half-open trial is in flight

	base, max time.Duration
	rng       *rand.Rand // jitter; guarded by mu
}

func newBreaker(base, max time.Duration, seed int64) *breaker {
	return &breaker{base: base, max: max, cooldown: base,
		rng: rand.New(rand.NewSource(seed))}
}

// allow asks whether one probe may be sent now. In the open state the
// answer flips to (true, true) — admit as the half-open trial — once
// the jittered cooldown has elapsed; while a trial is in flight every
// other caller is refused.
func (b *breaker) allow(now time.Time) (admit, trial bool) {
	if b.state.Load() == int32(bkClosed) {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch breakerState(b.state.Load()) {
	case bkClosed: // raced a close
		return true, false
	case bkOpen:
		if now.Sub(b.openedAt) < b.wait {
			return false, false
		}
		b.state.Store(int32(bkHalfOpen))
		b.trial = true
		return true, true
	default: // half-open
		if b.trial {
			return false, false
		}
		b.trial = true
		return true, true
	}
}

// trip opens a closed (or half-open) breaker. Returns whether a
// transition happened. The cooldown is jittered to [wait/2, wait) so a
// fleet of routers does not re-trial a recovering shard in lockstep.
func (b *breaker) trip(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripLocked(now)
}

func (b *breaker) tripLocked(now time.Time) bool {
	if breakerState(b.state.Load()) == bkOpen {
		return false
	}
	b.state.Store(int32(bkOpen))
	b.openedAt = now
	b.trial = false
	b.wait = b.cooldown/2 + time.Duration(b.rng.Int63n(int64(b.cooldown/2)+1))
	if b.cooldown *= 2; b.cooldown > b.max {
		b.cooldown = b.max
	}
	return true
}

// resolveTrial settles the in-flight half-open trial: healthy closes
// the breaker (and resets the cooldown escalation), sick re-opens with
// a longer cooldown. Returns whether this call performed a transition
// (false when no trial was outstanding — e.g. the breaker was reset by
// an epoch install while the trial flew).
func (b *breaker) resolveTrial(healthy bool, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if breakerState(b.state.Load()) != bkHalfOpen || !b.trial {
		return false
	}
	b.trial = false
	if healthy {
		b.state.Store(int32(bkClosed))
		b.cooldown = b.base
		return true
	}
	return b.tripLocked(now)
}

// reset force-closes the breaker (epoch-aware reset on shard-map
// install: suspicion accrued under the old map is stale).
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state.Store(int32(bkClosed))
	b.trial = false
	b.cooldown = b.base
}

package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"pmv/internal/wire"
)

func tailConfig(nShards int) *Config {
	shards := make([]string, nShards)
	for i := range shards {
		shards[i] = "127.0.0.1:0"
	}
	cfg := &Config{Shards: shards, TailTolerance: true}
	if err := cfg.fill(); err != nil {
		panic(err)
	}
	return cfg
}

func TestHealthEwmaTracksLatency(t *testing.T) {
	h := &shardHealth{}
	now := time.Now()
	for i := 0; i < 50; i++ {
		h.observe(outcomeProbe, 10*time.Millisecond, true, now.Add(time.Duration(i)*time.Millisecond))
	}
	if got := time.Duration(h.ewmaNs.Load()); got != 10*time.Millisecond {
		t.Fatalf("steady EWMA = %v, want 10ms", got)
	}
	// A graying shard pulls the digest up within a handful of samples.
	for i := 0; i < 20; i++ {
		h.observe(outcomeProbe, 100*time.Millisecond, true, now)
	}
	if got := time.Duration(h.ewmaNs.Load()); got < 90*time.Millisecond {
		t.Fatalf("EWMA after graying = %v, want near 100ms", got)
	}
	// Exec outcomes feed the failure detector, never the digest.
	before := h.ewmaNs.Load()
	h.observe(outcomeExec, time.Hour, true, now)
	if h.ewmaNs.Load() != before {
		t.Fatal("exec latency leaked into the probe latency digest")
	}
}

func TestHealthConsecFailsAndPhi(t *testing.T) {
	h := &shardHealth{}
	now := time.Now()
	// Establish a steady success cadence so phi has a mean interval.
	for i := 0; i < 20; i++ {
		h.observe(outcomeBeat, time.Millisecond, true, now.Add(time.Duration(i)*100*time.Millisecond))
	}
	last := now.Add(19 * 100 * time.Millisecond)
	if phi := h.phi(last.Add(50 * time.Millisecond)); phi > 1 {
		t.Fatalf("phi during normal cadence = %v, want near 0", phi)
	}
	if phi := h.phi(last.Add(10 * time.Second)); phi < 8 {
		t.Fatalf("phi after 100 missed intervals = %v, want suspicious", phi)
	}
	h.observe(outcomeProbe, 0, false, last)
	h.observe(outcomeProbe, 0, false, last)
	if h.consecFails.Load() != 2 {
		t.Fatalf("consecFails = %d, want 2", h.consecFails.Load())
	}
	h.observe(outcomeProbe, time.Millisecond, true, last)
	if h.consecFails.Load() != 0 {
		t.Fatal("a success did not clear consecFails")
	}
}

func TestLatencySickIsRelative(t *testing.T) {
	cfg := tailConfig(3)
	tt := newTailTolerance(cfg, 3)
	now := time.Now()
	// A uniformly slow fleet is healthy: nobody is 6x the median.
	for shard := 0; shard < 3; shard++ {
		for i := 0; i < 30; i++ {
			tt.health[shard].observe(outcomeProbe, 50*time.Millisecond, true, now)
		}
	}
	for shard := 0; shard < 3; shard++ {
		if tt.latencySick(shard) {
			t.Fatalf("uniformly slow shard %d scored sick", shard)
		}
	}
	// One gray shard at 10x the others trips the relative test.
	for i := 0; i < 30; i++ {
		tt.health[0].observe(outcomeProbe, 500*time.Millisecond, true, now)
	}
	if !tt.latencySick(0) {
		t.Fatal("10x-gray shard not scored latency-sick")
	}
	if tt.latencySick(1) || tt.latencySick(2) {
		t.Fatal("healthy shard scored sick beside a gray one")
	}
	// Below the absolute floor nothing is sick, however skewed.
	tt2 := newTailTolerance(cfg, 3)
	for shard := 0; shard < 3; shard++ {
		d := 100 * time.Microsecond
		if shard == 0 {
			d = 2 * time.Millisecond // 20x, but under the 5ms floor
		}
		for i := 0; i < 30; i++ {
			tt2.health[shard].observe(outcomeProbe, d, true, now)
		}
	}
	if tt2.latencySick(0) {
		t.Fatal("sub-floor latency scored sick")
	}
}

func TestNoteOutcomeTripsAndResolves(t *testing.T) {
	cfg := tailConfig(2)
	r := &Router{cfg: *cfg, metrics: newMetrics([]string{"a", "b"})}
	r.tt = newTailTolerance(&r.cfg, 2)

	for i := 0; i < int(cfg.BreakerFailThreshold); i++ {
		r.noteOutcome(0, outcomeProbe, 0, errors.New("boom"), false)
	}
	if breakerState(r.tt.breakers[0].state.Load()) != bkOpen {
		t.Fatal("consecutive failures did not trip the breaker")
	}
	if r.metrics.Shards[0].BreakerTrips.Load() != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", r.metrics.Shards[0].BreakerTrips.Load())
	}
	if admit, _ := r.allowProbe(0); admit {
		t.Fatal("probe admitted through an open breaker")
	}
	if r.metrics.Shards[0].BreakerSkips.Load() != 1 {
		t.Fatal("skip not counted")
	}

	// The trial resolves the breaker: simulate the cooldown elapsing,
	// admit the trial, and heal it.
	r.tt.breakers[0].mu.Lock()
	r.tt.breakers[0].openedAt = time.Now().Add(-time.Hour)
	r.tt.breakers[0].mu.Unlock()
	admit, trial := r.allowProbe(0)
	if !admit || !trial {
		t.Fatal("trial not admitted after cooldown")
	}
	r.noteOutcome(0, outcomeProbe, time.Millisecond, nil, true)
	if breakerState(r.tt.breakers[0].state.Load()) != bkClosed {
		t.Fatal("healthy trial did not close the breaker")
	}
}

// TestNoteOutcomeEpochTrialResolves pins the stuck-trial case: a trial
// probe answered with an epoch error must still settle the half-open
// state (an epoch answer is a live, prompt shard), or the breaker
// would refuse traffic forever.
func TestNoteOutcomeEpochTrialResolves(t *testing.T) {
	cfg := tailConfig(1)
	r := &Router{cfg: *cfg, metrics: newMetrics([]string{"a"})}
	r.tt = newTailTolerance(&r.cfg, 1)
	br := r.tt.breakers[0]
	br.trip(time.Now())
	br.mu.Lock()
	br.openedAt = time.Now().Add(-time.Hour)
	br.mu.Unlock()
	if admit, trial := r.allowProbe(0); !admit || !trial {
		t.Fatal("trial not admitted")
	}
	r.noteOutcome(0, outcomeProbe, time.Millisecond, wire.ErrEpoch, true)
	if breakerState(br.state.Load()) != bkClosed {
		t.Fatal("epoch-answered trial left the breaker half-open")
	}
}

// TestTailDisabledZeroAlloc pins the acceptance bar: with the plane
// disabled (tt == nil) every touchpoint on the query path is one nil
// check — no allocation, no atomics.
func TestTailDisabledZeroAlloc(t *testing.T) {
	r := &Router{}
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		if admit, trial := r.allowProbe(0); !admit || trial {
			t.Fatal("disabled allowProbe refused")
		}
	}); n != 0 {
		t.Fatalf("allowProbe allocates %v per run when disabled", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		r.noteOutcome(0, outcomeProbe, time.Millisecond, nil, false)
	}); n != 0 {
		t.Fatalf("noteOutcome allocates %v per run when disabled", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if r.probeBudget(ctx) != 0 {
			t.Fatal("disabled probeBudget returned nonzero")
		}
	}); n != 0 {
		t.Fatalf("probeBudget allocates %v per run when disabled", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if r.execOrder(0, 3) != nil {
			t.Fatal("disabled execOrder returned an order")
		}
	}); n != 0 {
		t.Fatalf("execOrder allocates %v per run when disabled", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if r.breakerOpen(0) {
			t.Fatal("disabled breakerOpen reported open")
		}
	}); n != 0 {
		t.Fatalf("breakerOpen allocates %v per run when disabled", n)
	}
}

func TestExecOrderPushesOpenBreakersLast(t *testing.T) {
	cfg := tailConfig(4)
	r := &Router{cfg: *cfg, metrics: newMetrics([]string{"a", "b", "c", "d"})}
	r.tt = newTailTolerance(&r.cfg, 4)
	r.tt.breakers[1].trip(time.Now())
	order := r.execOrder(0, 4)
	want := []int{0, 2, 3, 1}
	for i, s := range want {
		if order[i] != s {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Every shard still appears: O3 never skips, only reorders.
	if len(order) != 4 {
		t.Fatalf("order dropped shards: %v", order)
	}
}

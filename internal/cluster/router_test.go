package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pmv"
	"pmv/client"
	"pmv/internal/cluster"
	"pmv/internal/server"
)

// shardFixture builds the storefront database every shard serves. All
// shards hold identical base data — the cluster partitions the hot PMV
// cache, not the relations — so any shard can run Operation O3.
func shardFixture(t testing.TB) (*pmv.DB, map[[2]int64]int) {
	t.Helper()
	db, err := pmv.Open(t.TempDir(), pmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(db.CreateRelation("product",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("category", pmv.TypeInt),
		pmv.Col("name", pmv.TypeString)))
	check(db.CreateRelation("sale",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("store", pmv.TypeInt),
		pmv.Col("discount", pmv.TypeInt)))
	check(db.CreateIndex("product", "pid"))
	check(db.CreateIndex("product", "category"))
	check(db.CreateIndex("sale", "pid"))
	check(db.CreateIndex("sale", "store"))
	for pid := int64(0); pid < 400; pid++ {
		check(db.Insert("product", pmv.Int(pid), pmv.Int(pid%8), pmv.Str("p")))
		check(db.Insert("sale", pmv.Int(pid), pmv.Int((pid/8)%5), pmv.Int(pid%50)))
	}
	tpl := pmv.NewTemplate("on_sale").
		From("product", "sale").
		Select("product.pid", "sale.discount").
		Join("product.pid", "sale.pid").
		WhereEq("product.category").
		WhereEq("sale.store").
		MustBuild()
	if _, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 64, TuplesPerBCP: 8}); err != nil {
		t.Fatal(err)
	}
	want := make(map[[2]int64]int)
	for c := int64(0); c < 8; c++ {
		for st := int64(0); st < 5; st++ {
			q := pmv.NewQuery(tpl).In(0, pmv.Int(c)).In(1, pmv.Int(st)).Query()
			n := 0
			check(db.Execute(q, func(pmv.Tuple) error { n++; return nil }))
			want[[2]int64{c, st}] = n
		}
	}
	return db, want
}

func shardConfig() server.Config {
	return server.Config{PoolSize: 2, DrainTimeout: 2 * time.Second}
}

// testCluster starts three loopback shards and a router over them.
func testCluster(t *testing.T) (*cluster.Router, []*server.Server, []*pmv.DB, map[[2]int64]int) {
	t.Helper()
	var (
		srvs  []*server.Server
		dbs   []*pmv.DB
		addrs []string
		want  map[[2]int64]int
	)
	for i := 0; i < 3; i++ {
		db, w := shardFixture(t)
		want = w
		s := server.New(db, shardConfig())
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Shutdown() })
		srvs = append(srvs, s)
		dbs = append(dbs, db)
		addrs = append(addrs, s.Addr().String())
	}
	r, err := cluster.NewRouter(cluster.Config{
		Shards:          addrs,
		DialTimeout:     time.Second,
		RefillTimeout:   time.Second,
		DrainTimeout:    2 * time.Second,
		DefaultDeadline: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Shutdown() })
	return r, srvs, dbs, want
}

func conds(c, st int64) []client.Cond {
	return []client.Cond{client.Eq(client.Int(c)), client.Eq(client.Int(st))}
}

// runQuery executes one routed query and enforces the streaming
// invariants: partial rows strictly precede full rows, and the total
// count is the exact multiset size (no duplicates, no losses).
func runQuery(t *testing.T, c *client.Client, cat, st int64, want int) client.Report {
	t.Helper()
	rows, partials := 0, 0
	sawFull := false
	rep, err := c.ExecutePartial(context.Background(), "pmv_on_sale", conds(cat, st), func(r client.Row) error {
		rows++
		if r.Partial {
			if sawFull {
				return fmt.Errorf("partial row after a full row")
			}
			partials++
		} else {
			sawFull = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("query (%d,%d): %v", cat, st, err)
	}
	if rows != want {
		t.Fatalf("query (%d,%d): %d rows, want %d (report %+v)", cat, st, rows, want, rep)
	}
	if rep.PartialTuples != partials {
		t.Fatalf("query (%d,%d): report says %d partials, stream delivered %d", cat, st, rep.PartialTuples, partials)
	}
	return rep
}

func TestRouterScatterGatherExactResults(t *testing.T) {
	r, _, _, want := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()

	// Two passes: the first runs cold (pure O3 everywhere) and seeds the
	// shard caches through refill; the second must still be exact with
	// partials in play.
	for pass := 0; pass < 2; pass++ {
		for cat := int64(0); cat < 8; cat++ {
			for st := int64(0); st < 5; st++ {
				runQuery(t, c, cat, st, want[[2]int64{cat, st}])
			}
		}
		// Refill is asynchronous; give the fan-out a moment to land
		// before the warm pass.
		time.Sleep(200 * time.Millisecond)
	}
}

func TestRouterRefillFeedsProbes(t *testing.T) {
	r, _, _, want := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()

	runQuery(t, c, 3, 2, want[[2]int64{3, 2}])

	// The cold query's O3 rows fan back to the owning shard; once that
	// lands, a re-query must hit and stream partials.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := runQuery(t, c, 3, 2, want[[2]int64{3, 2}])
		if rep.Hit && rep.PartialTuples > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("refill never fed a probe hit: %+v", rep)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestRouterShardDownStaysExact(t *testing.T) {
	r, srvs, _, want := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()

	// Warm the caches, then kill one shard outright.
	for cat := int64(0); cat < 8; cat++ {
		for st := int64(0); st < 5; st++ {
			runQuery(t, c, cat, st, want[[2]int64{cat, st}])
		}
	}
	srvs[1].Shutdown()

	// Every query must still deliver the exact multiset: probes to the
	// dead shard degrade away, O3 fails over to a live shard.
	degraded := 0
	for cat := int64(0); cat < 8; cat++ {
		for st := int64(0); st < 5; st++ {
			rep := runQuery(t, c, cat, st, want[[2]int64{cat, st}])
			if rep.Degraded {
				degraded++
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no query was flagged Degraded with a shard down; degradation is invisible")
	}
}

func TestRouterShardRestartReinstallsEpoch(t *testing.T) {
	r, srvs, dbs, want := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()

	for cat := int64(0); cat < 8; cat++ {
		for st := int64(0); st < 5; st++ {
			runQuery(t, c, cat, st, want[[2]int64{cat, st}])
		}
	}

	// Restart shard 0 on its old address: the replacement server has
	// epoch 0, so the next probe routed to it gets MsgErrEpoch and the
	// router must re-teach it the map.
	addr := srvs[0].Addr().String()
	srvs[0].Shutdown()
	replacement := server.New(dbs[0], shardConfig())
	var err error
	for i := 0; i < 100; i++ {
		if err = replacement.Start(addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { replacement.Shutdown() })

	installsBefore := r.Metrics().Shards[0].EpochInstalls.Load()
	for cat := int64(0); cat < 8; cat++ {
		for st := int64(0); st < 5; st++ {
			runQuery(t, c, cat, st, want[[2]int64{cat, st}])
		}
	}
	if got := r.Metrics().Shards[0].EpochInstalls.Load(); got <= installsBefore {
		t.Fatalf("no epoch re-install after shard restart (installs %d -> %d)", installsBefore, got)
	}

	// And the re-taught shard serves probes again: its map answers the
	// router's epoch, not 0.
	sc := client.New(addr)
	defer sc.Close()
	sm, err := sc.ShardMap(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sm.Epoch == 0 {
		t.Fatal("restarted shard still has epoch 0 after queries; re-install never landed")
	}
}

func TestRouterShardsStatus(t *testing.T) {
	r, _, _, _ := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()

	rep, err := c.Shards(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 || len(rep.Shards) != 3 {
		t.Fatalf("shards reply = epoch %d, %d shards; want epoch 1, 3 shards", rep.Epoch, len(rep.Shards))
	}
	for _, si := range rep.Shards {
		if !si.Up {
			t.Fatalf("shard %s reported down in a healthy cluster: %s", si.Addr, si.Error)
		}
		if len(si.Views) == 0 {
			t.Fatalf("shard %s reported no views", si.Addr)
		}
	}
}

func TestRouterAdminProxying(t *testing.T) {
	r, _, _, _ := testCluster(t)
	c := client.New(r.Addr().String())
	defer c.Close()
	ctx := context.Background()

	views, err := c.Views(ctx)
	if err != nil || len(views) != 1 || views[0].Name != "pmv_on_sale" {
		t.Fatalf("views via router = %v, %v", views, err)
	}
	if views[0].Template == nil || views[0].MaxConditionParts == 0 {
		t.Fatalf("view info lacks routing metadata: %+v", views[0])
	}
	n, err := c.Count(ctx, "product")
	if err != nil || n != 400 {
		t.Fatalf("count via router = %d, %v", n, err)
	}
	if err := c.Analyze(ctx); err != nil {
		t.Fatalf("analyze via router: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats via router: %v", err)
	}
	if st.Server.SessionsActive < 1 {
		t.Fatalf("router stats show no active session: %+v", st.Server)
	}
}

package cluster

import (
	"testing"

	"pmv/internal/core"
	"pmv/internal/expr"
	"pmv/internal/value"
)

// hotTestMeta builds routing metadata for a one-relation view with a
// single equality condition, enough for the replica cache's key
// encoding without a live shard.
func hotTestMeta(t *testing.T) *viewMeta {
	t.Helper()
	tpl := &expr.Template{
		Name:      "v",
		Relations: []string{"r"},
		Select:    []expr.ColumnRef{{Rel: "r", Col: "x"}},
		Conds: []expr.CondTemplate{
			{Col: expr.ColumnRef{Rel: "r", Col: "f"}, Form: expr.EqualityForm},
		},
	}
	coder, err := core.NewBCPCoder(tpl, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, condPos := core.SelectPlusLayout(tpl)
	return &viewMeta{name: "v", tpl: tpl, coder: coder, nUserCols: 1, condPos: condPos}
}

// track offers key until the view's top-k tracks it.
func track(h *hotPlane, view, key string) {
	h.mu.Lock()
	h.viewLocked(view).topk.Offer(key)
	h.mu.Unlock()
}

func replicaTuples(h *hotPlane, view, key string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := h.viewLocked(view).replicas[key]
	if rep == nil {
		return 0
	}
	return len(rep.tuples)
}

// TestHotCaptureGenerationDiscardsStale pins the capture-ordering
// guard: a tuple snapshotted under an older invalidation generation —
// a probe that raced a write — must never repopulate the replica cache
// the write emptied.
func TestHotCaptureGenerationDiscardsStale(t *testing.T) {
	meta := hotTestMeta(t)
	h := newHotPlane(&Router{cfg: Config{HotK: 4}})
	tup := value.Tuple{value.Int(10), value.Int(7)} // Ls′: select x, cond f
	key := meta.coder.KeyFromCondValues([]value.Value{tup[meta.condPos[0]]})
	track(h, "v", key)

	gen := h.viewGen("v")
	h.capture(meta, tup, gen)
	if n := replicaTuples(h, "v", key); n != 1 {
		t.Fatalf("fresh capture cached %d tuples, want 1", n)
	}

	// A write lands: replicas drop, the generation moves on.
	h.invalidate(map[string][][]byte{"v": {[]byte(key)}}, nil)
	if n := replicaTuples(h, "v", key); n != 0 {
		t.Fatalf("invalidate left %d replica tuples", n)
	}
	h.capture(meta, tup, gen)
	if n := replicaTuples(h, "v", key); n != 0 {
		t.Fatal("stale-generation capture repopulated the dropped replica")
	}

	// A capture under the fresh generation is ordinary warm-up.
	h.capture(meta, tup, h.viewGen("v"))
	if n := replicaTuples(h, "v", key); n != 1 {
		t.Fatalf("fresh-generation capture cached %d tuples, want 1", n)
	}
}

// TestHotRepairDropsQueryReplicas pins the self-healing reaction to a
// failed duplicate-multiset audit: the query's replicas are dropped and
// the generation bumped, so in-flight captures cannot resurrect the
// suspect data.
func TestHotRepairDropsQueryReplicas(t *testing.T) {
	meta := hotTestMeta(t)
	h := newHotPlane(&Router{cfg: Config{HotK: 4}})
	tup := value.Tuple{value.Int(10), value.Int(7)}
	key := meta.coder.KeyFromCondValues([]value.Value{tup[meta.condPos[0]]})
	track(h, "v", key)

	gen := h.viewGen("v")
	h.capture(meta, tup, gen)
	h.repair(meta, []core.ConditionPart{{BCPKey: key}})
	if n := replicaTuples(h, "v", key); n != 0 {
		t.Fatal("repair left the suspect replica cached")
	}
	if h.replicaEvicts.Load() != 1 {
		t.Fatalf("replicaEvicts = %d, want 1", h.replicaEvicts.Load())
	}
	h.capture(meta, tup, gen)
	if n := replicaTuples(h, "v", key); n != 0 {
		t.Fatal("pre-repair capture resurrected the suspect replica")
	}
}

// TestHotDisabledZeroAlloc pins the disabled plane's cost: with
// Config.Hot off every query-path touchpoint is one nil check, and the
// stats surface renders nothing.
func TestHotDisabledZeroAlloc(t *testing.T) {
	r := &Router{}
	if n := testing.AllocsPerRun(100, func() {
		if r.hotStats() != nil {
			t.Fatal("disabled hotStats returned counters")
		}
	}); n != 0 {
		t.Fatalf("hotStats allocates %v per run when disabled", n)
	}
}

// Package cluster is the sharded PMV plane: a consistent-hash shard
// map over encoded bcp keys and a scatter-gather router that runs the
// paper's protocol across shards — Operation O1 locally, O2 probes
// fanned to the owners of each condition part, the DS duplicate
// multiset merged router-side, Operation O3 on any one shard (every
// shard holds the full base data; only the hot cache is partitioned),
// and refill deltas fanned back to the owners.
//
// The shard map is epoch-stamped. Shards validate the epoch on every
// probe/refill and answer the typed MsgErrEpoch when it is stale or
// missing (a freshly restarted shard has epoch 0), so misrouted cache
// traffic fails typed and the router re-installs the map instead of
// silently building hot sets on the wrong shard.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"pmv/internal/wire"
)

// ShardMap assigns encoded bcp keys to shards by consistent hashing
// with virtual nodes: each shard address is hashed at VNodes points
// onto a 64-bit ring, and a key belongs to the shard owning the first
// ring point at or after the key's hash. Adding or removing one shard
// therefore moves only ~1/n of the key space — the property every
// future rebalancing PR depends on.
//
// A ShardMap is immutable after Build; routers swap whole maps (with a
// bumped epoch) rather than mutating one in place.
type ShardMap struct {
	epoch  uint64
	vnodes int
	shards []string
	ring   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultVNodes is the virtual-node count used when none is given:
// enough that a 3-shard ring's load imbalance stays within a few
// percent, small enough that map install payloads stay trivial.
const DefaultVNodes = 64

// New builds a shard map over the given shard addresses (index =
// shard id). epoch must be nonzero — epoch 0 is reserved to mean "no
// map installed" on shards.
func NewShardMap(epoch uint64, shards []string, vnodes int) (*ShardMap, error) {
	if epoch == 0 {
		return nil, fmt.Errorf("cluster: epoch 0 is reserved for 'no map installed'")
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: shard map needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	m := &ShardMap{
		epoch:  epoch,
		vnodes: vnodes,
		shards: append([]string(nil), shards...),
		ring:   make([]ringPoint, 0, len(shards)*vnodes),
	}
	for si, addr := range m.shards {
		for v := 0; v < vnodes; v++ {
			m.ring = append(m.ring, ringPoint{
				hash:  hashKey(fmt.Sprintf("%s#%d", addr, v)),
				shard: si,
			})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		// Deterministic tie-break so every router derives the identical
		// ring from the same (epoch, shards, vnodes) triple.
		return m.ring[i].shard < m.ring[j].shard
	})
	return m, nil
}

// FromWire rebuilds a shard map from its wire form.
func FromWire(r wire.ShardMapReply) (*ShardMap, error) {
	return NewShardMap(r.Epoch, r.Shards, r.VNodes)
}

// Wire renders the map for installation on shards.
func (m *ShardMap) Wire() wire.ShardMapReply {
	return wire.ShardMapReply{
		Epoch:  m.epoch,
		VNodes: m.vnodes,
		Shards: append([]string(nil), m.shards...),
	}
}

// Epoch returns the map's epoch.
func (m *ShardMap) Epoch() uint64 { return m.epoch }

// Shards returns the shard addresses (index = shard id).
func (m *ShardMap) Shards() []string { return append([]string(nil), m.shards...) }

// NumShards returns the shard count.
func (m *ShardMap) NumShards() int { return len(m.shards) }

// Owner returns the shard id owning an encoded bcp key.
func (m *ShardMap) Owner(key string) int {
	h := hashKey(key)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0 // wrap around the ring
	}
	return m.ring[i].shard
}

// hashKey is FNV-1a over the key bytes with a 64-bit avalanche
// finalizer — fast, dependency-free, and stable across processes (the
// property the epoch protocol relies on: every router and rebuild
// derives the same ring).
//
// The finalizer matters: raw FNV-1a avalanches poorly on short strings
// sharing a long prefix, which is exactly what vnode labels are
// ("host:port#v" differing in a few digits). Without it, a 3-shard
// 64-vnode ring leaves one shard under 5% of the key space for about
// 7% of address draws (observed as a shard receiving zero probes in
// cluster tests); with it the minimum share stays above 20%.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	// murmur3 fmix64
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

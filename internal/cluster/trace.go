// trace.go is the router's half of the cluster observability plane:
// unwrap MsgTraced envelopes from traced clients, assemble routed
// queries' cross-shard timelines out of the span reports shards fan
// back, retain recent traces in a bounded store for `pmvcli trace
// <id>`, keep a slow/degraded query ring (degraded queries are
// recorded regardless of latency — the router is the only place that
// can see a query silently shrink to a PMV-only subset), and federate
// shard stats into one fleet view for MsgFleet.
//
// Span offsets: the router's own spans are offsets from the routed
// query's start; shard-reported spans are offsets from the shard
// request's arrival. The assembly does not re-anchor them — shard
// offsets are per-shard timelines, which is exactly what an operator
// wants when comparing O2 probe latency across shards.
package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"pmv/internal/obs"
	"pmv/internal/server"
	"pmv/internal/wire"
)

// frameOverhead is the framing cost of one wire frame (u32 length +
// u32 CRC-32C + u8 type), billed per row/reply frame so wire-byte
// accounting reflects what actually crossed the network.
const frameOverhead = 9

// traceStoreCap bounds the assembled-trace store; the oldest trace is
// evicted first. Sized to hold a chaos run's worth of interesting
// queries without growing a long-lived router.
const traceStoreCap = 256

// slowRingCap bounds the router's slow/degraded query ring.
const slowRingCap = 128

// storedTrace is one retained routed query. It keeps the live
// *obs.Trace rather than a flattened copy so spans that arrive after
// the reply — the asynchronous refill fan-back — are present when the
// trace is read.
type storedTrace struct {
	id     uint64
	view   string
	unixNs int64
	durNs  int64
	reason string
	rep    wire.Report
	tr     *obs.Trace
}

// assemble renders the stored trace in its wire shape, aggregating
// the per-span cost bills.
func (st *storedTrace) assemble() *wire.AssembledTrace {
	c := st.tr.Cost()
	return &wire.AssembledTrace{
		ID:         st.id,
		View:       st.view,
		UnixNs:     st.unixNs,
		DurNs:      st.durNs,
		Reason:     st.reason,
		Report:     st.rep,
		Spans:      server.WireSpans(st.tr),
		CostRows:   c.Rows,
		CostBytes:  c.Bytes,
		CostAllocs: c.Allocs,
		CostFsyncs: c.Fsyncs,
	}
}

// traceStore is the bounded FIFO store of recent traces.
type traceStore struct {
	mu    sync.Mutex
	byID  map[uint64]*storedTrace
	order []uint64 // insertion order; evict from the front
}

func newTraceStore() *traceStore {
	return &traceStore{byID: make(map[uint64]*storedTrace, traceStoreCap)}
}

func (s *traceStore) add(st *storedTrace) {
	s.mu.Lock()
	if _, dup := s.byID[st.id]; !dup {
		s.byID[st.id] = st
		s.order = append(s.order, st.id)
		if len(s.order) > traceStoreCap {
			delete(s.byID, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.mu.Unlock()
}

func (s *traceStore) get(id uint64) (*storedTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.byID[id]
	return st, ok
}

// recent returns up to max retained trace ids, newest first.
func (s *traceStore) recent(max int) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.order)
	if max > 0 && max < n {
		n = max
	}
	out := make([]uint64, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, s.order[len(s.order)-i])
	}
	return out
}

func (s *traceStore) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// slowRing is the router's fixed-capacity ring of recorded queries:
// threshold hits plus every degraded query.
type slowRing struct {
	mu   sync.Mutex
	buf  [slowRingCap]wire.SlowQuery
	next int
	n    int
}

func (l *slowRing) add(q wire.SlowQuery) {
	l.mu.Lock()
	l.buf[l.next] = q
	l.next = (l.next + 1) % slowRingCap
	if l.n < slowRingCap {
		l.n++
	}
	l.mu.Unlock()
}

func (l *slowRing) snapshot(limit int) []wire.SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]wire.SlowQuery, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+slowRingCap)%slowRingCap])
	}
	return out
}

// handleTraced unwraps one trace-context-carrying request. Only the
// request types the router serves end to end may be wrapped.
func (r *Router) handleTraced(sess *rsession, payload []byte) error {
	tc, inner, innerPayload, err := wire.DecodeTraced(payload)
	if err != nil {
		return r.writeErr(sess.bw, err)
	}
	switch inner {
	case wire.MsgQuery, wire.MsgUpdate:
	default:
		return r.writeErr(sess.bw, fmt.Errorf("router: request type 0x%02x cannot carry a trace context", inner))
	}
	sess.traceCtx = &tc
	defer func() { sess.traceCtx = nil }()
	return r.dispatch(sess, inner, innerPayload)
}

// sessionTrace builds the trace for one routed request: remote-rooted
// when the session carries a sampled wire context, otherwise gated on
// the router's own trace/slowlog switches.
func (r *Router) sessionTrace(sess *rsession, label string, slowNs int64) (tr *obs.Trace, external bool) {
	if tc := sess.traceCtx; tc != nil && tc.Sampled {
		tr = obs.New(tc.TraceID, label)
		tr.Parent = tc.ParentSpan
		return tr, true
	}
	if r.traceOn.Load() || slowNs >= 0 {
		return obs.New(r.queryID.Add(1), label), false
	}
	return nil, false
}

// emitSpans piggybacks the assembled span summary back to an external
// traced caller, right before the closing frame.
func (r *Router) emitSpans(sess *rsession, tr *obs.Trace, external bool) {
	if !external || tr == nil {
		return
	}
	spans := tr.AllSpans()
	recs := make([]wire.SpanRecord, len(spans))
	for i, sp := range spans {
		recs[i] = wire.SpanRecord{
			Kind:    uint8(sp.Kind),
			StartNs: int64(sp.Start),
			DurNs:   int64(sp.Dur),
			N1:      sp.N1,
			N2:      sp.N2,
			N3:      sp.N3,
			Rows:    sp.Rows,
			Bytes:   sp.Bytes,
			Allocs:  sp.Allocs,
			Fsyncs:  sp.Fsyncs,
		}
	}
	payload, err := wire.EncodeSpans(tr.ID, recs)
	if err != nil {
		return // telemetry never fails the request
	}
	sess.armWrite()
	wire.WriteFrame(sess.bw, wire.MsgSpans, payload)
}

// handleTrace reads or updates the router's tracing and slow-log
// switches, mirroring the single-node semantics.
func (r *Router) handleTrace(bw *bufio.Writer, payload []byte) error {
	var req wire.TraceRequest
	if len(payload) > 0 {
		if err := json.Unmarshal(payload, &req); err != nil {
			return r.writeErr(bw, fmt.Errorf("router: bad trace request: %w", err))
		}
	}
	if req.Trace != nil {
		r.traceOn.Store(*req.Trace)
	}
	if req.SlowThresholdNs != nil {
		ns := *req.SlowThresholdNs
		if ns < 0 {
			ns = -1
		}
		r.slowNs.Store(ns)
	}
	return r.reply(bw, wire.TraceReply{
		Trace:           r.traceOn.Load(),
		SlowThresholdNs: r.slowNs.Load(),
	})
}

// handleSlowlog dumps the router's slow/degraded ring, newest first.
func (r *Router) handleSlowlog(bw *bufio.Writer, payload []byte) error {
	var req wire.SlowlogRequest
	if len(payload) > 0 {
		if err := json.Unmarshal(payload, &req); err != nil {
			return r.writeErr(bw, fmt.Errorf("router: bad slowlog request: %w", err))
		}
	}
	return r.reply(bw, wire.SlowlogReply{
		ThresholdNs: r.slowNs.Load(),
		Queries:     r.slow.snapshot(req.Limit),
	})
}

// handleTraceGet serves one assembled trace, or the retained id list
// when the id is 0 or unknown.
func (r *Router) handleTraceGet(bw *bufio.Writer, payload []byte) error {
	var req wire.TraceGetRequest
	if len(payload) > 0 {
		if err := json.Unmarshal(payload, &req); err != nil {
			return r.writeErr(bw, fmt.Errorf("router: bad trace request: %w", err))
		}
	}
	if req.ID != 0 {
		if st, ok := r.traces.get(req.ID); ok {
			return r.reply(bw, wire.TraceGetReply{Found: true, Trace: st.assemble()})
		}
	}
	return r.reply(bw, wire.TraceGetReply{Recent: r.traces.recent(32)})
}

// handleFleet scrapes every shard's stats in parallel and answers one
// federated fleet view: per-shard health, epoch, snapshot freshness,
// and maintenance backlog, plus fleet-wide aggregates.
func (r *Router) handleFleet(bw *bufio.Writer) error {
	m := r.shardMap()
	out := wire.FleetReply{
		Epoch:           m.Epoch(),
		VNodes:          m.Wire().VNodes,
		Router:          r.metrics.ServerStats(),
		Hot:             r.hotStats(),
		Shards:          make([]wire.FleetShard, len(r.pools)),
		OldestSnapshotS: -1,
	}
	ctx, cancel := r.adminCtx()
	defer cancel()
	var wg sync.WaitGroup
	for shard := range r.pools {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			fs := wire.FleetShard{Addr: r.cfg.Shards[shard], Health: r.healthWire(shard)}
			c := r.pools[shard].get()
			sm, err := c.ShardMap(ctx)
			if err == nil {
				fs.Up = true
				fs.Epoch = sm.Epoch
				if st, serr := c.Stats(ctx); serr == nil {
					fs.Stats = &st
				}
			} else {
				fs.Error = err.Error()
			}
			r.pools[shard].put(c, err == nil)
			out.Shards[shard] = fs
		}(shard)
	}
	wg.Wait()

	sawNever := false
	for i := range out.Shards {
		fs := &out.Shards[i]
		if !fs.Up {
			out.ShardsDown++
			continue
		}
		out.ShardsUp++
		if fs.Epoch != out.Epoch {
			out.ShardsStale++
		}
		if fs.Stats == nil {
			continue
		}
		out.FleetQueries += fs.Stats.Server.Queries
		out.FleetRows += fs.Stats.Server.Rows
		out.FleetErrors += fs.Stats.Server.Errors
		if fs.Stats.Maint != nil {
			out.MaintBacklog += fs.Stats.Maint.QueueDepth
		}
		if snap := fs.Stats.Snapshot; snap != nil {
			if snap.AgeSeconds < 0 {
				sawNever = true
			} else if snap.AgeSeconds > out.OldestSnapshotS {
				out.OldestSnapshotS = snap.AgeSeconds
			}
		}
	}
	if sawNever {
		// A shard that never snapshotted is infinitely stale; -1 keeps
		// the "never" signal distinguishable from a large age.
		out.OldestSnapshotS = -1
	}
	return r.reply(bw, out)
}

// queryObs carries one routed query's observability state from setup
// through finishQuery: the trace (nil when neither the caller nor the
// router wants one), the allocation mark, the wire bytes the row
// stream put on the session, and the degradation reason — set at the
// point a query silently shrinks (shed, lost shard partials, O3
// failing everywhere) so the slow ring records it even when it was
// fast.
type queryObs struct {
	tr        *obs.Trace
	external  bool
	allocMark int64
	wireBytes int64
	view      string
	reason    string
}

// degrade appends one degradation reason.
func (o *queryObs) degrade(reason string) {
	if o.reason == "" {
		o.reason = reason
	} else {
		o.reason += "; " + reason
	}
}

// recordQuery closes one routed query's observability: the serve-level
// cost span, the trace store entry, the slow ring (threshold hits plus
// every degraded query, which are recorded regardless of latency), and
// the span fan-back to an external traced caller.
func (r *Router) recordQuery(sess *rsession, rep wire.Report, start time.Time, o *queryObs) {
	dur := time.Since(start)
	r.metrics.CostRows.Add(int64(rep.TotalTuples))
	r.metrics.CostBytes.Add(o.wireBytes)

	if o.tr != nil {
		allocd := o.tr.AllocMark() - o.allocMark
		o.tr.SpanCost(obs.KindServe, start, int64(rep.TotalTuples), 0, 0,
			obs.Cost{Rows: int64(rep.TotalTuples), Bytes: o.wireBytes, Allocs: allocd})
		r.metrics.TracesSampled.Add(1)
		r.metrics.CostAllocs.Add(allocd)
		r.traces.add(&storedTrace{
			id:     o.tr.ID,
			view:   o.view,
			unixNs: start.UnixNano(),
			durNs:  int64(dur),
			reason: o.reason,
			rep:    rep,
			tr:     o.tr,
		})
	}

	slowNs := r.slowNs.Load()
	slow := slowNs >= 0 && int64(dur) >= slowNs
	if slow || o.reason != "" {
		rec := wire.SlowQuery{
			UnixNs: start.UnixNano(),
			View:   o.view,
			DurNs:  int64(dur),
			Report: rep,
			Reason: o.reason,
		}
		if rec.Reason == "" {
			rec.Reason = "slow"
		}
		if o.tr != nil {
			rec.ID = o.tr.ID
			rec.Spans = server.WireSpans(o.tr)
		} else {
			// Degraded queries are recorded even with tracing and the
			// slow log off — the record then carries the report and
			// reason without spans.
			rec.ID = r.queryID.Add(1)
		}
		r.slow.add(rec)
		if slow {
			r.metrics.SlowRecorded.Add(1)
		}
		if o.reason != "" {
			r.metrics.DegradedRecorded.Add(1)
		}
	}

	r.emitSpans(sess, o.tr, o.external)
}

package cluster_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"pmv/client"
	"pmv/internal/cluster"
	"pmv/internal/netfault"
	"pmv/internal/server"
)

// tailCluster starts three loopback shards with shard 0 behind a
// netfault proxy, and a router (tail tolerance on, knobs via mut) that
// knows shard 0 only by its proxy address.
func tailCluster(t *testing.T, inj *netfault.Injector, mut func(*cluster.Config)) (*cluster.Router, []*server.Server, map[[2]int64]int) {
	t.Helper()
	var (
		srvs  []*server.Server
		addrs []string
		want  map[[2]int64]int
	)
	for i := 0; i < 3; i++ {
		db, w := shardFixture(t)
		want = w
		s := server.New(db, shardConfig())
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Shutdown() })
		srvs = append(srvs, s)
		addrs = append(addrs, s.Addr().String())
	}
	proxy, err := netfault.NewProxy("127.0.0.1:0", addrs[0], inj)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	addrs[0] = proxy.Addr().String()

	cfg := cluster.Config{
		Shards:          addrs,
		DialTimeout:     time.Second,
		RefillTimeout:   time.Second,
		DrainTimeout:    2 * time.Second,
		DefaultDeadline: 10 * time.Second,
		TailTolerance:   true,
		// Keep heartbeats out of the way unless a test wants them.
		HeartbeatInterval: time.Hour,
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := cluster.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Shutdown() })
	return r, srvs, want
}

// ownedByShard0 finds a condition pair whose bcp key shard 0 owns, by
// watching the per-shard probe counter.
func ownedByShard0(t *testing.T, r *cluster.Router, c *client.Client, want map[[2]int64]int) (int64, int64) {
	t.Helper()
	for cat := int64(0); cat < 8; cat++ {
		for st := int64(0); st < 5; st++ {
			before := r.Metrics().Shards[0].Probes.Load()
			runQuery(t, c, cat, st, want[[2]int64{cat, st}])
			if r.Metrics().Shards[0].Probes.Load() > before {
				return cat, st
			}
		}
	}
	t.Fatal("no condition pair probed shard 0")
	return 0, 0
}

// TestHedgeRescuesStuckConnection pins the hedge race end to end: a
// probe whose connection is blackholed mid-flight is rescued by a
// hedge over a fresh session, the query stays exact (the arbiter
// suppresses whatever the stuck arm would double-deliver), and the
// canceled arm's connection is released promptly.
func TestHedgeRescuesStuckConnection(t *testing.T) {
	inj := netfault.NewInjector(1)
	r, _, want := tailCluster(t, inj, func(cfg *cluster.Config) {
		cfg.Hedge = true
		cfg.HedgeMinDelay = time.Millisecond
		cfg.HedgeMaxDelay = 20 * time.Millisecond
		cfg.DefaultDeadline = 5 * time.Second
	})
	c := client.New(r.Addr().String())
	defer c.Close()

	cat, st := ownedByShard0(t, r, c, want)
	// Warm every pair so probes carry cached partials (the duplication
	// surface hedging must keep safe).
	for cc := int64(0); cc < 8; cc++ {
		for ss := int64(0); ss < 5; ss++ {
			runQuery(t, c, cc, ss, want[[2]int64{cc, ss}])
		}
	}
	time.Sleep(300 * time.Millisecond) // let refill land

	// Blackhole the next flow through the proxy: the probe's request
	// vanishes and its session hangs. The hedge must win the race.
	inj.Add(netfault.Rule{Kind: netfault.FaultBlackhole, Op: netfault.OpRead, AfterOps: 1})
	sm := r.Metrics().Shards[0]
	hedgesBefore, winsBefore := sm.HedgesSent.Load(), sm.HedgeWins.Load()
	rep := runQuery(t, c, cat, st, want[[2]int64{cat, st}])
	if rep.Degraded {
		t.Fatalf("hedged query degraded: %+v", rep)
	}
	if sm.HedgesSent.Load() <= hedgesBefore {
		t.Fatal("no hedge launched against the stuck probe")
	}
	if sm.HedgeWins.Load() <= winsBefore {
		t.Fatal("hedge launched but never won the race")
	}

	// Dup oracle: with hedging live, every pair must still deliver the
	// exact multiset — any arbiter leak would double a partial row or
	// trip the router's DS-leftover audit into a typed failure.
	for pass := 0; pass < 2; pass++ {
		for cc := int64(0); cc < 8; cc++ {
			for ss := int64(0); ss < 5; ss++ {
				runQuery(t, c, cc, ss, want[[2]int64{cc, ss}])
			}
		}
	}
	if r.Metrics().DSLeftover.Load() != 0 {
		t.Fatal("hedging produced DS leftovers: duplicate suppression broke the audit")
	}
}

// TestBreakerSkipsGrayShard drives the latency trip: one shard 20x
// slower than the fleet (alive, answering — the gray-failure shape)
// must be skipped-and-flagged within a few heartbeats, so queries stop
// paying its latency while staying exact via O3 on a healthy shard.
func TestBreakerSkipsGrayShard(t *testing.T) {
	inj := netfault.NewInjector(2)
	r, _, want := tailCluster(t, inj, func(cfg *cluster.Config) {
		cfg.HeartbeatInterval = 20 * time.Millisecond
		cfg.BreakerCooldown = 30 * time.Second // no recovery during the test
	})
	c := client.New(r.Addr().String())
	defer c.Close()

	cat, st := ownedByShard0(t, r, c, want)
	// Gray out shard 0: every op through its proxy now costs 60ms.
	inj.SetShape(netfault.Shape{Latency: 60 * time.Millisecond})

	// Heartbeats feed the latency digest without query traffic; wait
	// for the breaker to trip on the relative latency test.
	deadline := time.Now().Add(10 * time.Second)
	for r.Metrics().Shards[0].BreakerTrips.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gray shard never tripped its breaker")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Queries owned by the gray shard now skip it: flagged degraded,
	// exact via O3, and far under the gray shard's latency floor.
	start := time.Now()
	rep := runQuery(t, c, cat, st, want[[2]int64{cat, st}])
	elapsed := time.Since(start)
	if !rep.Degraded {
		t.Fatalf("breaker-skipped query not flagged Degraded: %+v", rep)
	}
	if r.Metrics().Shards[0].BreakerSkips.Load() == 0 {
		t.Fatal("breaker open but no probe was skipped")
	}
	// The probe fan-out no longer waits on the gray shard. 60ms of
	// injected latency per op means even one round trip through the
	// proxy would blow this bound.
	if elapsed > 50*time.Millisecond {
		t.Fatalf("breaker-skipped query took %v; still waiting on the gray shard", elapsed)
	}
}

// TestFlappingShardReteachAndRecovery runs the worst case for the
// breaker state machine: a shard that flaps between healthy and gray
// while a shard-map install resets breakers mid-flap — the half-open
// trial can race the epoch re-teach. Queries must stay exact through
// all of it and the new epoch must land.
func TestFlappingShardReteachAndRecovery(t *testing.T) {
	inj := netfault.NewInjector(3)
	r, _, want := tailCluster(t, inj, func(cfg *cluster.Config) {
		cfg.HeartbeatInterval = 15 * time.Millisecond
		cfg.BreakerCooldown = 30 * time.Millisecond
		cfg.BreakerMaxCooldown = 60 * time.Millisecond
	})
	c := client.New(r.Addr().String())
	defer c.Close()

	for cc := int64(0); cc < 8; cc++ {
		for ss := int64(0); ss < 5; ss++ {
			runQuery(t, c, cc, ss, want[[2]int64{cc, ss}])
		}
	}

	// Flap shard 0: 150ms gray at 60ms/op, 150ms clean, repeating.
	inj.SetShape(netfault.Shape{
		Latency: 60 * time.Millisecond,
		FlapUp:  150 * time.Millisecond, FlapDown: 150 * time.Millisecond,
	})

	stop := time.Now().Add(1200 * time.Millisecond)
	installed := false
	for time.Now().Before(stop) {
		for cc := int64(0); cc < 8; cc++ {
			runQuery(t, c, cc, 2, want[[2]int64{cc, 2}])
		}
		if !installed && r.Metrics().Shards[0].BreakerTrips.Load() > 0 {
			// Mid-flap, re-teach the cluster a bumped epoch: this resets
			// every breaker while trials may be in flight.
			m, err := c.ShardMap(context.Background())
			if err != nil {
				t.Fatalf("read shard map: %v", err)
			}
			m.Epoch++
			if err := c.InstallShardMap(context.Background(), m); err != nil {
				t.Fatalf("install: %v", err)
			}
			installed = true
		}
	}
	if !installed {
		t.Fatal("flapping shard never tripped its breaker")
	}

	// Heal the link; the breaker must re-admit the shard (trial via
	// heartbeat) and serve exact probe traffic under the new epoch.
	inj.SetShape(netfault.Shape{})
	inj.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := runQuery(t, c, 3, 2, want[[2]int64{3, 2}])
		if !rep.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never re-admitted after the flap healed")
		}
		time.Sleep(30 * time.Millisecond)
	}
	if r.Metrics().DSLeftover.Load() != 0 {
		t.Fatal("flap chaos produced DS leftovers")
	}
}

// TestDeadlineReleasesBlackholedProbe pins the probe-abandonment fix
// at the router layer: probes against a blackholed shard must release
// their goroutines and connections when the query deadline fires, not
// linger until a transport timeout.
func TestDeadlineReleasesBlackholedProbe(t *testing.T) {
	inj := netfault.NewInjector(4)
	r, _, want := tailCluster(t, inj, func(cfg *cluster.Config) {
		cfg.DefaultDeadline = 400 * time.Millisecond
	})
	c := client.New(r.Addr().String())
	defer c.Close()

	cat, st := ownedByShard0(t, r, c, want)
	for cc := int64(0); cc < 8; cc++ {
		for ss := int64(0); ss < 5; ss++ {
			runQuery(t, c, cc, ss, want[[2]int64{cc, ss}])
		}
	}
	time.Sleep(200 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// Silence shard 0 completely: every op blackholes its flow.
	inj.Add(netfault.Rule{Kind: netfault.FaultBlackhole, Op: netfault.OpAny, Prob: 1, Sticky: true})

	for i := 0; i < 4; i++ {
		start := time.Now()
		// The query may degrade (partials lost) or fail typed (O3 round
		// robin landing on the dead shard) — either is contractual; what
		// must not happen is hanging past the deadline.
		c.ExecutePartial(context.Background(), "pmv_on_sale", conds(cat, st), func(client.Row) error { return nil })
		if d := time.Since(start); d > 3*time.Second {
			t.Fatalf("query %d took %v against a blackholed shard; probes not abandoned at deadline", i, d)
		}
	}

	// Abandoned probes must not pile up goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew %d -> %d after abandoned probes", baseline, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRouterAnswersPing checks the router-side heartbeat endpoint:
// MsgPing answers the map epoch, so routers are health-checkable the
// same way shards are.
func TestRouterAnswersPing(t *testing.T) {
	r, _, _ := tailCluster(t, netfault.NewInjector(5), nil)
	c := client.New(r.Addr().String())
	defer c.Close()
	rtt, epoch, err := c.Ping(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("router pong epoch = %d, want 1", epoch)
	}
	if rtt <= 0 {
		t.Fatal("rtt not measured")
	}
}

package wire

import (
	"bytes"
	"reflect"
	"testing"

	"pmv/internal/value"
)

func updateFixture() UpdateRequest {
	return UpdateRequest{
		Maint: true,
		Ops: []UpdateOp{
			{Kind: OpInsert, Rel: "sale", Tuple: value.Tuple{value.Int(1), value.Str("x"), value.Int(3)}},
			{Kind: OpDelete, Rel: "sale", Col: "pid", Val: value.Int(7)},
			{Kind: OpUpdate, Rel: "product", Col: "pid", Val: value.Int(2), SetCol: "price", SetVal: value.Float(9.5)},
		},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	req := updateFixture()
	b, err := EncodeUpdate(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Maint != req.Maint || len(got.Ops) != len(req.Ops) {
		t.Fatalf("update round trip changed request:\n got  %+v\n want %+v", got, req)
	}
	for i, op := range got.Ops {
		w := req.Ops[i]
		if op.Kind != w.Kind || op.Rel != w.Rel || op.Col != w.Col || op.SetCol != w.SetCol {
			t.Fatalf("op %d changed: got %+v want %+v", i, op, w)
		}
	}
	if !reflect.DeepEqual(got.Ops[0].Tuple, req.Ops[0].Tuple) {
		t.Fatalf("insert tuple changed: %+v", got.Ops[0].Tuple)
	}
	if value.Compare(got.Ops[2].SetVal, req.Ops[2].SetVal) != 0 {
		t.Fatalf("update assignment value changed: %+v", got.Ops[2].SetVal)
	}
	// Truncations at every byte boundary must error, never panic.
	for i := 0; i < len(b); i++ {
		if _, err := DecodeUpdate(b[:i]); err == nil {
			t.Fatalf("update truncated to %d/%d bytes decoded cleanly", i, len(b))
		}
	}
}

func TestUpdateRejectsBadKind(t *testing.T) {
	req := UpdateRequest{Ops: []UpdateOp{{Kind: 9, Rel: "r"}}}
	if _, err := EncodeUpdate(req); err == nil {
		t.Fatal("unknown op kind encoded cleanly")
	}
	b, err := EncodeUpdate(UpdateRequest{Ops: []UpdateOp{{Kind: OpDelete, Rel: "r", Col: "c", Val: value.Int(1)}}})
	if err != nil {
		t.Fatal(err)
	}
	b[3] = 9 // flags(1) + nops(2), first byte of op 0 is its kind
	if _, err := DecodeUpdate(b); err == nil {
		t.Fatal("unknown op kind decoded cleanly")
	}
}

func invalidateFixture() InvalidateRequest {
	return InvalidateRequest{
		View:  "pmv_on_sale",
		Epoch: 42,
		Keys:  []string{"k1", "", "a longer binary\x00key"},
	}
}

func TestInvalidateRoundTrip(t *testing.T) {
	for _, req := range []InvalidateRequest{
		invalidateFixture(),
		{View: "v", Epoch: 1, All: true},
	} {
		b, err := EncodeInvalidate(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeInvalidate(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.View != req.View || got.Epoch != req.Epoch || got.All != req.All || len(got.Keys) != len(req.Keys) {
			t.Fatalf("invalidate round trip changed request:\n got  %+v\n want %+v", got, req)
		}
		for i := range got.Keys {
			if got.Keys[i] != req.Keys[i] {
				t.Fatalf("key %d changed: %q vs %q", i, got.Keys[i], req.Keys[i])
			}
		}
		for i := 0; i < len(b); i++ {
			if _, err := DecodeInvalidate(b[:i]); err == nil {
				t.Fatalf("invalidate truncated to %d/%d bytes decoded cleanly", i, len(b))
			}
		}
	}
}

// FuzzDecodeUpdate covers both write-plane decoders: hostile bytes
// must produce a typed error, never a panic, and anything that decodes
// must reach an encoding fixed point after one cycle.
func FuzzDecodeUpdate(f *testing.F) {
	if b, err := EncodeUpdate(updateFixture()); err == nil {
		f.Add(b)
	}
	if b, err := EncodeUpdate(UpdateRequest{}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeInvalidate(invalidateFixture()); err == nil {
		f.Add(b)
	}
	if b, err := EncodeInvalidate(InvalidateRequest{View: "v", All: true}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if q1, err := DecodeUpdate(data); err == nil {
			b2, err := EncodeUpdate(q1)
			if err != nil {
				t.Fatalf("re-encode of decoded update failed: %v", err)
			}
			q2, err := DecodeUpdate(b2)
			if err != nil {
				t.Fatalf("decode of re-encoded update failed: %v", err)
			}
			b3, err := EncodeUpdate(q2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(b2, b3) {
				t.Fatal("update encoding not a fixed point after one cycle")
			}
		}
		if q1, err := DecodeInvalidate(data); err == nil {
			b2, err := EncodeInvalidate(q1)
			if err != nil {
				t.Fatalf("re-encode of decoded invalidate failed: %v", err)
			}
			q2, err := DecodeInvalidate(b2)
			if err != nil {
				t.Fatalf("decode of re-encoded invalidate failed: %v", err)
			}
			b3, err := EncodeInvalidate(q2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(b2, b3) {
				t.Fatal("invalidate encoding not a fixed point after one cycle")
			}
		}
	})
}

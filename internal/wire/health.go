// health.go defines the tail-tolerance heartbeat frames: a router
// pings every shard on a fixed cadence so its phi-accrual failure
// detector has a signal even when the query workload goes quiet, and
// the pong carries the shard's installed shard-map epoch so a silently
// rebooted shard (epoch 0) is noticed before the next probe fails
// typed. The payloads are fixed-size and allocation-free to encode —
// the heartbeat loop must cost nothing measurable.
package wire

import (
	"encoding/binary"
	"fmt"
)

const (
	// MsgPing is a liveness probe (8-byte nonce payload). Any server
	// answers MsgPong immediately, before touching the engine, so the
	// round-trip time measures the session and scheduler, not the
	// workload.
	MsgPing byte = 0x18

	// MsgPong answers MsgPing: the echoed nonce followed by the
	// responder's installed shard-map epoch (0 = no map installed).
	MsgPong byte = 0x89
)

// EncodePing encodes a MsgPing payload into dst (appended).
func EncodePing(dst []byte, nonce uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, nonce)
}

// DecodePing parses a MsgPing payload.
func DecodePing(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("wire: ping payload is %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// EncodePong encodes a MsgPong payload into dst (appended).
func EncodePong(dst []byte, nonce, epoch uint64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, nonce)
	return binary.BigEndian.AppendUint64(dst, epoch)
}

// DecodePong parses a MsgPong payload.
func DecodePong(b []byte) (nonce, epoch uint64, err error) {
	if len(b) != 16 {
		return 0, 0, fmt.Errorf("wire: pong payload is %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b), binary.BigEndian.Uint64(b[8:]), nil
}

package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"pmv/internal/expr"
	"pmv/internal/value"
)

func TestHelloRoundTrip(t *testing.T) {
	v, err := DecodeHello(EncodeHello())
	if err != nil {
		t.Fatal(err)
	}
	if v != ProtocolVersion {
		t.Fatalf("hello carries version %d, built with %d", v, ProtocolVersion)
	}
	if _, err := DecodeHello(nil); err == nil {
		t.Fatal("empty hello accepted")
	}
	if _, err := DecodeHello([]byte{1, 2}); err == nil {
		t.Fatal("oversized hello accepted")
	}
}

func TestVersionErrRoundTrip(t *testing.T) {
	v, err := DecodeVersionErr(EncodeVersionErr(7))
	if err != nil || v != 7 {
		t.Fatalf("version-error round trip = %d, %v", v, err)
	}
	if _, err := DecodeVersionErr(nil); err == nil {
		t.Fatal("empty version-error accepted")
	}
}

func TestEpochErrRoundTrip(t *testing.T) {
	for _, e := range []uint64{0, 1, 1 << 40} {
		got, err := DecodeEpochErr(EncodeEpochErr(e))
		if err != nil || got != e {
			t.Fatalf("epoch-error round trip for %d = %d, %v", e, got, err)
		}
	}
	if _, err := DecodeEpochErr([]byte{1, 2, 3}); err == nil {
		t.Fatal("short epoch-error accepted")
	}
}

func probeFixture() ProbeRequest {
	return ProbeRequest{
		View:  "pmv_on_sale",
		Epoch: 42,
		Parts: []ProbePart{
			{Key: "k1", Exact: true},
			{Key: "k2", Conds: []expr.CondInstance{
				{Values: []value.Value{value.Int(3)}},
				{Intervals: []expr.Interval{{Lo: value.Int(1), Hi: value.Int(9), LoIncl: true}}},
			}},
		},
	}
}

func TestProbeRoundTrip(t *testing.T) {
	req := probeFixture()
	b, err := EncodeProbe(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	// DeepEqual would trip on nil-vs-empty slice canonicalization, so
	// pin the semantic content field by field.
	if got.View != req.View || got.Epoch != req.Epoch || len(got.Parts) != len(req.Parts) {
		t.Fatalf("probe round trip changed request:\n got  %+v\n want %+v", got, req)
	}
	for i, p := range got.Parts {
		w := req.Parts[i]
		if p.Key != w.Key || p.Exact != w.Exact || len(p.Conds) != len(w.Conds) {
			t.Fatalf("part %d changed: got %+v want %+v", i, p, w)
		}
	}
	if len(got.Parts[1].Conds[0].Values) != 1 || len(got.Parts[1].Conds[1].Intervals) != 1 {
		t.Fatalf("part conditions lost content: %+v", got.Parts[1].Conds)
	}
	// Truncations at every byte boundary must error, never panic.
	for i := 0; i < len(b); i++ {
		if _, err := DecodeProbe(b[:i]); err == nil {
			t.Fatalf("probe truncated to %d/%d bytes decoded cleanly", i, len(b))
		}
	}
}

func TestRefillRoundTrip(t *testing.T) {
	req := RefillRequest{
		View:  "pmv_on_sale",
		Epoch: 9,
		Tuples: []value.Tuple{
			{value.Int(1), value.Str("a"), value.Int(3), value.Int(0)},
			{value.Int(2), value.Null(), value.Int(3), value.Int(1)},
		},
	}
	b, err := EncodeRefill(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRefill(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("refill round trip changed request:\n got  %+v\n want %+v", got, req)
	}
	for i := 0; i < len(b); i++ {
		if _, err := DecodeRefill(b[:i]); err == nil {
			t.Fatalf("refill truncated to %d/%d bytes decoded cleanly", i, len(b))
		}
	}
}

// TestVersionAndEpochSentinels pins the sentinel identities the client
// and router match on.
func TestVersionAndEpochSentinels(t *testing.T) {
	if ErrVersion == nil || ErrEpoch == nil {
		t.Fatal("cluster sentinels missing")
	}
	if errors.Is(ErrVersion, ErrEpoch) {
		t.Fatal("version and epoch sentinels alias each other")
	}
}

// TestProbeBudgetTail pins the optional-tail contract: a nonzero
// budget adds exactly 8 bytes, zero adds none (byte-identical to a
// pre-budget encoder), and an explicit zero tail is rejected so the
// encoding stays canonical.
func TestProbeBudgetTail(t *testing.T) {
	req := probeFixture()
	plain, err := EncodeProbe(req)
	if err != nil {
		t.Fatal(err)
	}
	req.BudgetNs = 500e6
	b, err := EncodeProbe(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != len(plain)+8 {
		t.Fatalf("budget tail costs %d bytes, want 8", len(b)-len(plain))
	}
	got, err := DecodeProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.BudgetNs != 500e6 {
		t.Fatalf("budget round trip = %d, want %d", got.BudgetNs, uint64(500e6))
	}
	req.BudgetNs = 0
	again, err := EncodeProbe(req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, plain) {
		t.Fatal("zero budget changed the probe encoding")
	}
	if _, err := DecodeProbe(append(plain[:len(plain):len(plain)], 0, 0, 0, 0, 0, 0, 0, 0)); err == nil {
		t.Fatal("explicit zero budget tail accepted")
	}
}

func TestRefillBudgetTail(t *testing.T) {
	req := RefillRequest{View: "v", Epoch: 3,
		Tuples: []value.Tuple{{value.Int(1)}}}
	plain, err := EncodeRefill(req)
	if err != nil {
		t.Fatal(err)
	}
	req.BudgetNs = 250e6
	b, err := EncodeRefill(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != len(plain)+8 {
		t.Fatalf("budget tail costs %d bytes, want 8", len(b)-len(plain))
	}
	got, err := DecodeRefill(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.BudgetNs != 250e6 {
		t.Fatalf("budget round trip = %d, want %d", got.BudgetNs, uint64(250e6))
	}
	if _, err := DecodeRefill(append(plain[:len(plain):len(plain)], 0, 0, 0, 0, 0, 0, 0, 0)); err == nil {
		t.Fatal("explicit zero budget tail accepted")
	}
}

func FuzzDecodeProbe(f *testing.F) {
	if b, err := EncodeProbe(probeFixture()); err == nil {
		f.Add(b)
	}
	budgeted := probeFixture()
	budgeted.BudgetNs = 123456789
	if b, err := EncodeProbe(budgeted); err == nil {
		f.Add(b)
	}
	if b, err := EncodeProbe(ProbeRequest{View: "v", Epoch: 1}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		q1, err := DecodeProbe(data)
		if err != nil {
			return
		}
		// One encode/decode cycle reaches a fixed point (the first
		// cycle may canonicalize empty-slice representations).
		b2, err := EncodeProbe(q1)
		if err != nil {
			t.Fatalf("re-encode of decoded probe failed: %v", err)
		}
		q2, err := DecodeProbe(b2)
		if err != nil {
			t.Fatalf("decode of re-encoded probe failed: %v", err)
		}
		b3, err := EncodeProbe(q2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b2, b3) {
			t.Fatal("probe encoding not a fixed point after one cycle")
		}
	})
}

func FuzzDecodeRefill(f *testing.F) {
	if b, err := EncodeRefill(RefillRequest{
		View: "v", Epoch: 3,
		Tuples: []value.Tuple{{value.Int(1), value.Bool(true)}},
	}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeRefill(RefillRequest{
		View: "v", Epoch: 3, BudgetNs: 987654321,
		Tuples: []value.Tuple{{value.Int(1), value.Bool(true)}},
	}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		q1, err := DecodeRefill(data)
		if err != nil {
			return
		}
		b2, err := EncodeRefill(q1)
		if err != nil {
			t.Fatalf("re-encode of decoded refill failed: %v", err)
		}
		q2, err := DecodeRefill(b2)
		if err != nil {
			t.Fatalf("decode of re-encoded refill failed: %v", err)
		}
		b3, err := EncodeRefill(q2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b2, b3) {
			t.Fatal("refill encoding not a fixed point after one cycle")
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	f.Add(EncodeHello())
	f.Add(EncodeVersionErr(3))
	f.Add(EncodeEpochErr(17))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, err := DecodeHello(data); err == nil {
			if !bytes.Equal([]byte{v}, data) {
				t.Fatal("hello round trip changed bytes")
			}
		}
		if v, err := DecodeVersionErr(data); err == nil {
			if !bytes.Equal(EncodeVersionErr(v), data) {
				t.Fatal("version-error round trip changed bytes")
			}
		}
		if e, err := DecodeEpochErr(data); err == nil {
			if !bytes.Equal(EncodeEpochErr(e), data) {
				t.Fatal("epoch-error round trip changed bytes")
			}
		}
	})
}

package wire

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"pmv/internal/value"
)

func TestHotSetRoundTrip(t *testing.T) {
	req := HotSetRequest{
		View:  "pmv_on_sale",
		Epoch: 7,
		Seq:   42,
		Keys: []HotKey{
			{Key: "a", Tuples: []value.Tuple{
				{value.Int(1), value.Str("x"), value.Int(3)},
				{value.Int(2), value.Null(), value.Int(3)},
			}},
			{Key: "b", Tuples: []value.Tuple{{value.Int(9)}}},
		},
	}
	b, err := EncodeHotSet(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHotSet(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("hot set round trip changed request:\n got  %+v\n want %+v", got, req)
	}
	for i := 0; i < len(b); i++ {
		if _, err := DecodeHotSet(b[:i]); err == nil {
			t.Fatalf("hot set truncated to %d/%d bytes decoded cleanly", i, len(b))
		}
	}
}

func TestHotInvalRoundTrip(t *testing.T) {
	req := HotInvalRequest{View: "v", Epoch: 3, Seq: 9, Keys: []string{"a", "", "c"}}
	b, err := EncodeHotInval(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHotInval(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("hot inval round trip changed request:\n got  %+v\n want %+v", got, req)
	}
	for i := 0; i < len(b); i++ {
		if _, err := DecodeHotInval(b[:i]); err == nil {
			t.Fatalf("hot inval truncated to %d/%d bytes decoded cleanly", i, len(b))
		}
	}
}

// TestStatsOmitFrequencyPlaneWhenOff pins the zero-overhead contract's
// wire half: a node running without the frequency plane serializes
// stats byte-identically to a build that predates it — the freq and
// hot sections only exist when the plane is on.
func TestStatsOmitFrequencyPlaneWhenOff(t *testing.T) {
	b, err := json.Marshal(StatsReply{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range [][]byte{[]byte(`"freq"`), []byte(`"hot"`)} {
		if bytes.Contains(b, key) {
			t.Fatalf("disabled-plane stats carry %s: %s", key, b)
		}
	}
	on, err := json.Marshal(StatsReply{Freq: &FreqStats{}, Hot: &HotStats{}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(on, []byte(`"freq"`)) || !bytes.Contains(on, []byte(`"hot"`)) {
		t.Fatalf("enabled-plane stats dropped their sections: %s", on)
	}
}

// Package wire is the pmvd client/server protocol: length-prefixed
// binary frames over a byte stream.
//
// Every frame is
//
//	u32 big-endian length (of everything after the checksum field)
//	u32 big-endian CRC-32C of the type byte and payload
//	u8  message type
//	payload (length-1 bytes)
//
// The checksum makes in-flight byte corruption detectable: a flipped
// bit anywhere in the frame (length, type, or payload) surfaces as
// ErrCorruptFrame instead of a silently wrong tuple, so readers can
// drop the connection rather than deliver garbage.
//
// The query path is fully binary — condition instances, result rows,
// and the closing report reuse the engine's tuple codec
// (value.EncodeTuple), so a streamed row costs one frame header plus
// its heap-page encoding. Admin commands (stats, views, tables, …) are
// low-rate and reply with JSON payloads in a Reply frame.
//
// A query exchange is:
//
//	C→S  MsgQuery   (view name, deadline, bound conditions)
//	S→C  MsgRow*    (flag bit 0 set on O2 partials, clear on O3 rows)
//	S→C  MsgDone    (QueryReport: flags, counts, per-phase latencies)
//	     — or MsgError at any point, terminating the stream.
//
// The server answers requests in order, one at a time per connection;
// clients pipeline at most one request.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"pmv/internal/expr"
	"pmv/internal/value"
)

// Message types. Requests (client→server) have the high bit clear,
// responses (server→client) have it set.
const (
	// MsgQuery runs the PMV protocol on a view (QueryRequest payload).
	MsgQuery byte = 0x01
	// MsgStats requests the server's counters (empty payload).
	MsgStats byte = 0x02
	// MsgViews lists views with their templates (empty payload).
	MsgViews byte = 0x03
	// MsgTables lists relations (empty payload).
	MsgTables byte = 0x04
	// MsgSchema describes one relation (string payload: name).
	MsgSchema byte = 0x05
	// MsgCount returns a relation's live tuple count (string payload).
	MsgCount byte = 0x06
	// MsgPeek returns a relation's first n tuples (string payload +
	// u32 n).
	MsgPeek byte = 0x07
	// MsgAnalyze recomputes optimizer statistics (empty payload).
	MsgAnalyze byte = 0x08
	// MsgCheckpoint flushes pages and truncates the WAL (empty).
	MsgCheckpoint byte = 0x09
	// MsgTrace reads or updates the server's tracing/slow-query-log
	// settings (JSON TraceRequest payload; empty fields leave the
	// current setting untouched).
	MsgTrace byte = 0x0a
	// MsgSlowlog dumps the slow-query ring buffer (JSON SlowlogRequest).
	MsgSlowlog byte = 0x0b
	// MsgViewStats returns per-view core counters (empty payload).
	MsgViewStats byte = 0x0c

	// MsgRow is one streamed result row (u8 flags + tuple encoding).
	MsgRow byte = 0x81
	// MsgDone closes a query stream with its QueryReport.
	MsgDone byte = 0x82
	// MsgError reports a failure (string payload).
	MsgError byte = 0x83
	// MsgReply carries a JSON-encoded admin response.
	MsgReply byte = 0x84
)

// MaxFrame bounds a frame's length field; a peer announcing more is
// treated as corrupt (protects against unbounded allocations on a
// garbage stream).
const MaxFrame = 16 << 20

// ErrFrameTooLarge marks a frame whose announced length exceeds
// MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrCorruptFrame marks a frame whose bytes fail validation: a
// checksum mismatch, a zero-length header, or an impossible length
// field. The stream position is unrecoverable; the connection must be
// dropped.
var ErrCorruptFrame = errors.New("wire: corrupt frame")

// castagnoli is the CRC-32C table (hardware-accelerated on amd64 and
// arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHdrLen is the fixed header: u32 length + u32 crc + u8 type.
const frameHdrLen = 9

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [frameHdrLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, returning its type and payload. A frame
// that fails validation (bad length, checksum mismatch) returns an
// error wrapping ErrCorruptFrame.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrCorruptFrame)
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	typ := hdr[8]
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
	if crc != binary.BigEndian.Uint32(hdr[4:8]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch on 0x%02x frame", ErrCorruptFrame, typ)
	}
	return typ, payload, nil
}

// QueryRequest is the decoded MsgQuery payload: which view to run
// against, how long the caller is willing to wait, and the bound
// condition instances (matching the view template's condition list).
type QueryRequest struct {
	View string
	// Deadline bounds the whole query (0 = the server's default). When
	// it expires mid-O3 the server finishes the stream with the rows
	// delivered so far and flags DeadlineExpired in the report.
	Deadline time.Duration
	Conds    []expr.CondInstance
}

// Condition-instance kinds on the wire.
const (
	condValues    byte = 0
	condIntervals byte = 1
)

// interval inclusivity flag bits.
const (
	loIncl byte = 1 << iota
	hiIncl
)

// EncodeQuery encodes a QueryRequest as a MsgQuery payload.
func EncodeQuery(q QueryRequest) ([]byte, error) {
	if len(q.View) > 0xffff {
		return nil, fmt.Errorf("wire: view name too long")
	}
	if len(q.Conds) > 0xffff {
		return nil, fmt.Errorf("wire: too many conditions")
	}
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint64(b, uint64(q.Deadline))
	b = binary.BigEndian.AppendUint16(b, uint16(len(q.View)))
	b = append(b, q.View...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(q.Conds)))
	for _, ci := range q.Conds {
		if len(ci.Values) > 0 {
			b = append(b, condValues)
			b = value.EncodeTuple(b, value.Tuple(ci.Values))
			continue
		}
		b = append(b, condIntervals)
		if len(ci.Intervals) > 0xffff {
			return nil, fmt.Errorf("wire: too many intervals")
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(ci.Intervals)))
		for _, iv := range ci.Intervals {
			var fl byte
			if iv.LoIncl {
				fl |= loIncl
			}
			if iv.HiIncl {
				fl |= hiIncl
			}
			b = append(b, fl)
			b = value.EncodeTuple(b, value.Tuple{iv.Lo, iv.Hi})
		}
	}
	return b, nil
}

// DecodeQuery parses a MsgQuery payload.
func DecodeQuery(b []byte) (QueryRequest, error) {
	var q QueryRequest
	if len(b) < 12 {
		return q, fmt.Errorf("wire: short query header")
	}
	q.Deadline = time.Duration(binary.BigEndian.Uint64(b))
	b = b[8:]
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return q, fmt.Errorf("wire: truncated view name")
	}
	q.View = string(b[:n])
	b = b[n:]
	if len(b) < 2 {
		return q, fmt.Errorf("wire: truncated condition count")
	}
	nc := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	q.Conds = make([]expr.CondInstance, 0, nc)
	for i := 0; i < nc; i++ {
		if len(b) < 1 {
			return q, fmt.Errorf("wire: truncated condition %d", i)
		}
		kind := b[0]
		b = b[1:]
		var ci expr.CondInstance
		switch kind {
		case condValues:
			t, used, err := value.DecodeTuple(b)
			if err != nil {
				return q, fmt.Errorf("wire: condition %d values: %w", i, err)
			}
			b = b[used:]
			ci.Values = t
		case condIntervals:
			if len(b) < 2 {
				return q, fmt.Errorf("wire: truncated interval count")
			}
			ni := int(binary.BigEndian.Uint16(b))
			b = b[2:]
			ci.Intervals = make([]expr.Interval, 0, ni)
			for j := 0; j < ni; j++ {
				if len(b) < 1 {
					return q, fmt.Errorf("wire: truncated interval %d.%d", i, j)
				}
				fl := b[0]
				b = b[1:]
				t, used, err := value.DecodeTuple(b)
				if err != nil {
					return q, fmt.Errorf("wire: interval %d.%d bounds: %w", i, j, err)
				}
				if len(t) != 2 {
					return q, fmt.Errorf("wire: interval %d.%d has %d bounds", i, j, len(t))
				}
				b = b[used:]
				ci.Intervals = append(ci.Intervals, expr.Interval{
					Lo: t[0], Hi: t[1],
					LoIncl: fl&loIncl != 0, HiIncl: fl&hiIncl != 0,
				})
			}
		default:
			return q, fmt.Errorf("wire: unknown condition kind %d", kind)
		}
		q.Conds = append(q.Conds, ci)
	}
	if len(b) != 0 {
		return q, fmt.Errorf("wire: %d trailing bytes after query", len(b))
	}
	return q, nil
}

// Row flag bits.
const (
	// RowPartial marks a tuple served from the PMV in Operation O2.
	RowPartial byte = 1 << iota
)

// EncodeRow encodes a MsgRow payload.
func EncodeRow(dst []byte, t value.Tuple, partial bool) []byte {
	var fl byte
	if partial {
		fl |= RowPartial
	}
	dst = append(dst, fl)
	return value.EncodeTuple(dst, t)
}

// DecodeRow parses a MsgRow payload.
func DecodeRow(b []byte) (value.Tuple, bool, error) {
	if len(b) < 1 {
		return nil, false, fmt.Errorf("wire: empty row")
	}
	if b[0]&^RowPartial != 0 {
		return nil, false, fmt.Errorf("wire: unknown row flags 0x%02x", b[0])
	}
	partial := b[0]&RowPartial != 0
	t, used, err := value.DecodeTuple(b[1:])
	if err != nil {
		return nil, false, err
	}
	if used != len(b)-1 {
		return nil, false, fmt.Errorf("wire: %d trailing bytes after row", len(b)-1-used)
	}
	return t, partial, nil
}

// Report is a QueryReport on the wire, plus the service-level Shed
// flag (true when admission control answered from the PMV only
// because every worker slot was busy).
type Report struct {
	Hit             bool          `json:"hit"`
	Skipped         bool          `json:"skipped"`
	Degraded        bool          `json:"degraded"`
	DeadlineExpired bool          `json:"deadline_expired"`
	PartialOnly     bool          `json:"partial_only"`
	Shed            bool          `json:"shed"`
	ConditionParts  int           `json:"condition_parts"`
	PartialTuples   int           `json:"partial_tuples"`
	TotalTuples     int           `json:"total_tuples"`
	PartialLatency  time.Duration `json:"partial_latency_ns"`
	ExecLatency     time.Duration `json:"exec_latency_ns"`
	Overhead        time.Duration `json:"overhead_ns"`
}

// Report flag bits.
const (
	repHit byte = 1 << iota
	repSkipped
	repDegraded
	repDeadline
	repPartialOnly
	repShed
)

// EncodeReport encodes a MsgDone payload.
func EncodeReport(dst []byte, r Report) []byte {
	var fl byte
	if r.Hit {
		fl |= repHit
	}
	if r.Skipped {
		fl |= repSkipped
	}
	if r.Degraded {
		fl |= repDegraded
	}
	if r.DeadlineExpired {
		fl |= repDeadline
	}
	if r.PartialOnly {
		fl |= repPartialOnly
	}
	if r.Shed {
		fl |= repShed
	}
	dst = append(dst, fl)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.ConditionParts))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.PartialTuples))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.TotalTuples))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.PartialLatency))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.ExecLatency))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Overhead))
	return dst
}

// DecodeReport parses a MsgDone payload.
func DecodeReport(b []byte) (Report, error) {
	var r Report
	if len(b) != 1+3*4+3*8 {
		return r, fmt.Errorf("wire: report payload is %d bytes", len(b))
	}
	fl := b[0]
	if fl&^(repHit|repSkipped|repDegraded|repDeadline|repPartialOnly|repShed) != 0 {
		return r, fmt.Errorf("wire: unknown report flags 0x%02x", fl)
	}
	r.Hit = fl&repHit != 0
	r.Skipped = fl&repSkipped != 0
	r.Degraded = fl&repDegraded != 0
	r.DeadlineExpired = fl&repDeadline != 0
	r.PartialOnly = fl&repPartialOnly != 0
	r.Shed = fl&repShed != 0
	b = b[1:]
	r.ConditionParts = int(binary.BigEndian.Uint32(b))
	r.PartialTuples = int(binary.BigEndian.Uint32(b[4:]))
	r.TotalTuples = int(binary.BigEndian.Uint32(b[8:]))
	r.PartialLatency = time.Duration(binary.BigEndian.Uint64(b[12:]))
	r.ExecLatency = time.Duration(binary.BigEndian.Uint64(b[20:]))
	r.Overhead = time.Duration(binary.BigEndian.Uint64(b[28:]))
	return r, nil
}

// EncodePeek encodes a MsgPeek payload (relation name + row limit).
func EncodePeek(rel string, n int) []byte {
	b := make([]byte, 0, len(rel)+6)
	b = binary.BigEndian.AppendUint16(b, uint16(len(rel)))
	b = append(b, rel...)
	b = binary.BigEndian.AppendUint32(b, uint32(n))
	return b
}

// DecodePeek parses a MsgPeek payload.
func DecodePeek(b []byte) (string, int, error) {
	if len(b) < 2 {
		return "", 0, fmt.Errorf("wire: short peek payload")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) != n+4 {
		return "", 0, fmt.Errorf("wire: peek payload length mismatch")
	}
	return string(b[:n]), int(binary.BigEndian.Uint32(b[n:])), nil
}

package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"pmv/internal/expr"
	"pmv/internal/value"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type %d, want %d", i, typ, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	// A length field beyond MaxFrame must be rejected before allocation.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, MsgQuery})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, 300)
	var clean bytes.Buffer
	if err := WriteFrame(&clean, MsgRow, payload); err != nil {
		t.Fatal(err)
	}
	// Flipping any single bit — length, checksum, type, or payload —
	// must surface as a corrupt frame or a read error, never as a
	// successfully decoded wrong frame.
	for i := 0; i < clean.Len(); i++ {
		raw := append([]byte(nil), clean.Bytes()...)
		raw[i] ^= 1 << uint(i%8)
		typ, body, err := ReadFrame(bytes.NewReader(raw))
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted (type 0x%02x, %d bytes)", i, typ, len(body))
		}
	}
	typ, body, err := ReadFrame(&clean)
	if err != nil || typ != MsgRow || !bytes.Equal(body, payload) {
		t.Fatalf("clean frame rejected: %v", err)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := QueryRequest{
		View:     "pmv_orders",
		Deadline: 1500 * time.Millisecond,
		Conds: []expr.CondInstance{
			{Values: []value.Value{value.Int(7), value.Str("x"), value.Null()}},
			{Intervals: []expr.Interval{
				{Lo: value.Date(100), Hi: value.Date(200), LoIncl: true},
				{Lo: value.Null(), Hi: value.Float(3.5), HiIncl: true},
			}},
		},
	}
	b, err := EncodeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuery(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, q)
	}
}

func TestQueryDecodeRejectsGarbage(t *testing.T) {
	q := QueryRequest{View: "v", Conds: []expr.CondInstance{{Values: []value.Value{value.Int(1)}}}}
	b, err := EncodeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeQuery(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeQuery(append(append([]byte(nil), b...), 0)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestRowRoundTrip(t *testing.T) {
	tu := value.Tuple{value.Int(42), value.Str("hello"), value.Bool(true)}
	for _, partial := range []bool{true, false} {
		b := EncodeRow(nil, tu, partial)
		got, p, err := DecodeRow(b)
		if err != nil {
			t.Fatal(err)
		}
		if p != partial {
			t.Fatalf("partial flag %v, want %v", p, partial)
		}
		if value.CompareTuples(got, tu) != 0 {
			t.Fatalf("tuple %v, want %v", got, tu)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := Report{
		Hit: true, DeadlineExpired: true, Shed: true,
		ConditionParts: 4, PartialTuples: 9, TotalTuples: 9,
		PartialLatency: 12345 * time.Nanosecond,
		ExecLatency:    99 * time.Millisecond,
		Overhead:       77 * time.Microsecond,
	}
	got, err := DecodeReport(EncodeReport(nil, r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestPeekRoundTrip(t *testing.T) {
	rel, n, err := DecodePeek(EncodePeek("lineitem", 17))
	if err != nil {
		t.Fatal(err)
	}
	if rel != "lineitem" || n != 17 {
		t.Fatalf("got %q/%d", rel, n)
	}
}

package wire

import (
	"bytes"
	"testing"
)

func TestPingPongRoundTrip(t *testing.T) {
	for _, nonce := range []uint64{0, 1, 1 << 63} {
		got, err := DecodePing(EncodePing(nil, nonce))
		if err != nil || got != nonce {
			t.Fatalf("ping round trip for %d = %d, %v", nonce, got, err)
		}
	}
	for _, c := range []struct{ nonce, epoch uint64 }{
		{0, 0}, {7, 0}, {1 << 40, 99},
	} {
		n, e, err := DecodePong(EncodePong(nil, c.nonce, c.epoch))
		if err != nil || n != c.nonce || e != c.epoch {
			t.Fatalf("pong round trip for %+v = (%d, %d), %v", c, n, e, err)
		}
	}
	if _, err := DecodePing(nil); err == nil {
		t.Fatal("empty ping accepted")
	}
	if _, err := DecodePing(make([]byte, 9)); err == nil {
		t.Fatal("oversized ping accepted")
	}
	if _, _, err := DecodePong(make([]byte, 8)); err == nil {
		t.Fatal("short pong accepted")
	}
}

// TestPingEncodeZeroAlloc pins the heartbeat loop's cost: encoding into
// a reused buffer must not allocate.
func TestPingEncodeZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		buf = EncodePing(buf[:0], 42)
		buf = EncodePong(buf[:0], 42, 7)
	})
	if allocs != 0 {
		t.Fatalf("ping/pong encode allocates %.1f times per run", allocs)
	}
}

func FuzzDecodePing(f *testing.F) {
	f.Add(EncodePing(nil, 42))
	f.Add(EncodePong(nil, 42, 7))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if n, err := DecodePing(data); err == nil {
			if !bytes.Equal(EncodePing(nil, n), data) {
				t.Fatal("ping round trip changed bytes")
			}
		}
		if n, e, err := DecodePong(data); err == nil {
			if !bytes.Equal(EncodePong(nil, n, e), data) {
				t.Fatal("pong round trip changed bytes")
			}
		}
	})
}

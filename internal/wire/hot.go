// hot.go defines the frequency-plane wire surface: hot-entry
// replication pushes (MsgHotSet), hot-key invalidation fan-out
// (MsgHotInval), and presence-filter snapshot fetch (MsgFilter). The
// first two are binary frames in the cluster-plane idiom — strict
// decoding, typed errors, no allocation driven by unvalidated peer
// sizes — because routers push them to shards over the same hostile
// network the probe path uses. MsgFilter answers with a JSON
// FilterReply inside MsgReply like the other admin commands.
//
// Ordering contract: every HotSet/HotInval a router emits for a view
// carries a strictly increasing Seq. A shard records the highest
// invalidation Seq per key as a floor and drops any HotSet at or
// below it, so a push racing an invalidation can never resurrect a
// stale replica. Staleness beyond that degrades to a flagged
// owner-probe via invalidation generations — never a wrong answer.
package wire

import (
	"encoding/binary"
	"fmt"

	"pmv/internal/value"
)

// Frequency-plane message types (requests continue the 0x18 sequence).
const (
	// MsgHotSet pushes replica tuples for the hottest bcp keys from the
	// router to every shard (HotSetRequest payload). Answered with a
	// MsgReply HotSetReply.
	MsgHotSet byte = 0x19
	// MsgHotInval invalidates hot-key replicas on every shard after a
	// write touched their bcps (HotInvalRequest payload). Answered with
	// a MsgReply HotInvalReply.
	MsgHotInval byte = 0x1a
	// MsgFilter reads a view's presence-filter snapshot (payload: view
	// name, u16 length prefix). Answered with a MsgReply FilterReply.
	MsgFilter byte = 0x1b
)

// HotKey is one replicated bcp key with its full cached tuple set.
type HotKey struct {
	Key    string
	Tuples []value.Tuple
}

// HotSetRequest is the decoded MsgHotSet payload: the router's
// current top-k hottest entries for one view, replicated to shards
// that do not own them so any shard can answer the probe.
type HotSetRequest struct {
	View  string
	Epoch uint64
	// Seq orders pushes against invalidations (see package doc).
	Seq  uint64
	Keys []HotKey
}

// EncodeHotSet encodes a HotSetRequest as a MsgHotSet payload.
func EncodeHotSet(req HotSetRequest) ([]byte, error) {
	if len(req.View) > 0xffff {
		return nil, fmt.Errorf("wire: view name too long")
	}
	if len(req.Keys) > 0xffff {
		return nil, fmt.Errorf("wire: too many hot keys")
	}
	b := make([]byte, 0, 256)
	b = binary.BigEndian.AppendUint64(b, req.Epoch)
	b = binary.BigEndian.AppendUint64(b, req.Seq)
	b = binary.BigEndian.AppendUint16(b, uint16(len(req.View)))
	b = append(b, req.View...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(req.Keys)))
	for _, hk := range req.Keys {
		if len(hk.Key) > 0xffff {
			return nil, fmt.Errorf("wire: bcp key too long")
		}
		if len(hk.Tuples) > 0xffff {
			return nil, fmt.Errorf("wire: too many tuples for hot key")
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(hk.Key)))
		b = append(b, hk.Key...)
		b = binary.BigEndian.AppendUint16(b, uint16(len(hk.Tuples)))
		for _, t := range hk.Tuples {
			b = value.EncodeTuple(b, t)
		}
	}
	if len(b)+1 > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeHotSet parses a MsgHotSet payload.
func DecodeHotSet(b []byte) (HotSetRequest, error) {
	var req HotSetRequest
	if len(b) < 20 {
		return req, fmt.Errorf("wire: short hot-set header")
	}
	req.Epoch = binary.BigEndian.Uint64(b)
	req.Seq = binary.BigEndian.Uint64(b[8:])
	b = b[16:]
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return req, fmt.Errorf("wire: truncated view name")
	}
	req.View = string(b[:n])
	b = b[n:]
	if len(b) < 2 {
		return req, fmt.Errorf("wire: truncated hot-key count")
	}
	nk := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	req.Keys = make([]HotKey, 0, min(nk, 1024))
	for i := 0; i < nk; i++ {
		if len(b) < 2 {
			return req, fmt.Errorf("wire: truncated hot key %d length", i)
		}
		kl := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < kl+2 {
			return req, fmt.Errorf("wire: truncated hot key %d", i)
		}
		var hk HotKey
		hk.Key = string(b[:kl])
		b = b[kl:]
		nt := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		hk.Tuples = make([]value.Tuple, 0, min(nt, 1024))
		for j := 0; j < nt; j++ {
			t, used, err := value.DecodeTuple(b)
			if err != nil {
				return req, fmt.Errorf("wire: hot key %d tuple %d: %w", i, j, err)
			}
			b = b[used:]
			hk.Tuples = append(hk.Tuples, t)
		}
		req.Keys = append(req.Keys, hk)
	}
	if len(b) != 0 {
		return req, fmt.Errorf("wire: %d trailing bytes after hot set", len(b))
	}
	return req, nil
}

// HotInvalRequest is the decoded MsgHotInval payload: bcp keys whose
// replicas every shard must invalidate after a write touched them.
type HotInvalRequest struct {
	View  string
	Epoch uint64
	// Seq orders this invalidation against pushes (see package doc).
	Seq  uint64
	Keys []string
}

// EncodeHotInval encodes a HotInvalRequest as a MsgHotInval payload.
func EncodeHotInval(req HotInvalRequest) ([]byte, error) {
	if len(req.View) > 0xffff {
		return nil, fmt.Errorf("wire: view name too long")
	}
	if len(req.Keys) > 0xffff {
		return nil, fmt.Errorf("wire: too many hot-inval keys")
	}
	b := make([]byte, 0, 128)
	b = binary.BigEndian.AppendUint64(b, req.Epoch)
	b = binary.BigEndian.AppendUint64(b, req.Seq)
	b = binary.BigEndian.AppendUint16(b, uint16(len(req.View)))
	b = append(b, req.View...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(req.Keys)))
	for _, k := range req.Keys {
		if len(k) > 0xffff {
			return nil, fmt.Errorf("wire: bcp key too long")
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(k)))
		b = append(b, k...)
	}
	if len(b)+1 > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeHotInval parses a MsgHotInval payload.
func DecodeHotInval(b []byte) (HotInvalRequest, error) {
	var req HotInvalRequest
	if len(b) < 20 {
		return req, fmt.Errorf("wire: short hot-inval header")
	}
	req.Epoch = binary.BigEndian.Uint64(b)
	req.Seq = binary.BigEndian.Uint64(b[8:])
	b = b[16:]
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return req, fmt.Errorf("wire: truncated view name")
	}
	req.View = string(b[:n])
	b = b[n:]
	if len(b) < 2 {
		return req, fmt.Errorf("wire: truncated key count")
	}
	nk := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	req.Keys = make([]string, 0, min(nk, 1024))
	for i := 0; i < nk; i++ {
		if len(b) < 2 {
			return req, fmt.Errorf("wire: truncated key %d length", i)
		}
		kl := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < kl {
			return req, fmt.Errorf("wire: truncated key %d", i)
		}
		req.Keys = append(req.Keys, string(b[:kl]))
		b = b[kl:]
	}
	if len(b) != 0 {
		return req, fmt.Errorf("wire: %d trailing bytes after hot inval", len(b))
	}
	return req, nil
}

// EncodeFilterReq encodes a MsgFilter payload (the view whose
// presence-filter snapshot is wanted).
func EncodeFilterReq(view string) ([]byte, error) {
	if len(view) > 0xffff {
		return nil, fmt.Errorf("wire: view name too long")
	}
	b := make([]byte, 0, 2+len(view))
	b = binary.BigEndian.AppendUint16(b, uint16(len(view)))
	return append(b, view...), nil
}

// DecodeFilterReq parses a MsgFilter payload.
func DecodeFilterReq(b []byte) (string, error) {
	if len(b) < 2 {
		return "", fmt.Errorf("wire: short filter request")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) != n {
		return "", fmt.Errorf("wire: filter request view length %d, have %d bytes", n, len(b))
	}
	return string(b), nil
}

package wire

import (
	"bytes"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	for _, tc := range []TraceContext{
		{TraceID: 1, ParentSpan: 0, Sampled: false},
		{TraceID: 42, ParentSpan: 7, Sampled: true},
		{TraceID: ^uint64(0), ParentSpan: ^uint64(0), Sampled: true},
	} {
		b := AppendTraceContext(nil, tc)
		if len(b) != TraceContextLen {
			t.Fatalf("encoded %d bytes, want %d", len(b), TraceContextLen)
		}
		got, err := DecodeTraceContext(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", tc, err)
		}
		if got != tc {
			t.Fatalf("round trip: got %+v, want %+v", got, tc)
		}
	}
}

func TestTraceContextStrict(t *testing.T) {
	good := AppendTraceContext(nil, TraceContext{TraceID: 9, Sampled: true})

	if _, err := DecodeTraceContext(good[:16]); err == nil {
		t.Fatal("short context accepted")
	}
	if _, err := DecodeTraceContext(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte{}, good...)
	bad[16] |= 0x80
	if _, err := DecodeTraceContext(bad); err == nil {
		t.Fatal("unknown flag bit accepted")
	}
	zero := AppendTraceContext(nil, TraceContext{TraceID: 0})
	if _, err := DecodeTraceContext(zero); err == nil {
		t.Fatal("zero trace id accepted")
	}
}

func TestTracedRoundTrip(t *testing.T) {
	inner, err := EncodeQuery(QueryRequest{View: "v", Conds: nil})
	if err != nil {
		t.Fatal(err)
	}
	tc := TraceContext{TraceID: 77, ParentSpan: 3, Sampled: true}
	b, err := EncodeTraced(tc, MsgQuery, inner)
	if err != nil {
		t.Fatal(err)
	}
	gotTC, gotType, gotPayload, err := DecodeTraced(b)
	if err != nil {
		t.Fatal(err)
	}
	if gotTC != tc || gotType != MsgQuery || !bytes.Equal(gotPayload, inner) {
		t.Fatalf("round trip: tc=%+v type=0x%02x payload %d bytes", gotTC, gotType, len(gotPayload))
	}
}

func TestTracedRejectsNesting(t *testing.T) {
	tc := TraceContext{TraceID: 1, Sampled: true}
	if _, err := EncodeTraced(tc, MsgTraced, nil); err == nil {
		t.Fatal("encoder accepted a nested traced frame")
	}
	b, err := EncodeTraced(tc, MsgStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	b[TraceContextLen] = MsgTraced
	if _, _, _, err := DecodeTraced(b); err == nil {
		t.Fatal("decoder accepted a nested traced frame")
	}
	if _, _, _, err := DecodeTraced(b[:TraceContextLen]); err == nil {
		t.Fatal("decoder accepted a traced frame with no inner type")
	}
}

func TestSpansRoundTrip(t *testing.T) {
	recs := []SpanRecord{
		{Kind: 2, StartNs: 10, DurNs: 500, N1: 1, N2: 3, N3: 1, Rows: 3, Bytes: 96},
		{Kind: 5, StartNs: 600, DurNs: 4000, N1: 40, N2: 37, N3: 3, Rows: 40, Bytes: 1280, Allocs: 8192},
		{Kind: 9, StartNs: -5, DurNs: 0, Fsyncs: 1},
	}
	b, err := EncodeSpans(123, recs)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := DecodeSpans(b)
	if err != nil {
		t.Fatal(err)
	}
	if id != 123 || len(got) != len(recs) {
		t.Fatalf("id=%d spans=%d", id, len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("span %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestSpansStrict(t *testing.T) {
	b, err := EncodeSpans(5, []SpanRecord{{Kind: 1, DurNs: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSpans(b[:len(b)-1]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, _, err := DecodeSpans(append(append([]byte{}, b...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, _, err := DecodeSpans(b[:4]); err == nil {
		t.Fatal("short header accepted")
	}
	zero := append([]byte{}, b...)
	for i := 0; i < 8; i++ {
		zero[i] = 0
	}
	if _, _, err := DecodeSpans(zero); err == nil {
		t.Fatal("zero trace id accepted")
	}
	// Over-cap encodes truncate instead of failing.
	many := make([]SpanRecord, MaxSpansPerFrame+10)
	big, err := EncodeSpans(5, many)
	if err != nil {
		t.Fatal(err)
	}
	if _, got, err := DecodeSpans(big); err != nil || len(got) != MaxSpansPerFrame {
		t.Fatalf("cap: %d spans, err %v", len(got), err)
	}
}

// TestVersionNegotiationGatesTraceFrames pins the negotiation story the
// trace, tail-tolerance, and frequency planes rely on: this build
// announces v5, and the handshake is exact-match, so a peer that
// would not understand MsgTraced/MsgSpans (v3), MsgPing/MsgPong and
// budget tails (v4), or MsgHotSet/MsgHotInval/MsgFilter (v5) never
// gets a session.
func TestVersionNegotiationGatesTraceFrames(t *testing.T) {
	if ProtocolVersion != 5 {
		t.Fatalf("ProtocolVersion = %d, want 5 (hot-replication frames are v5)", ProtocolVersion)
	}
	hello := EncodeHello()
	v, err := DecodeHello(hello)
	if err != nil || v != 5 {
		t.Fatalf("hello advertises %d (%v)", v, err)
	}
	// An older peer's hello must decode (so the server can answer
	// MsgErrVersion) but not match.
	for _, oldV := range []byte{2, 3, 4} {
		old, err := DecodeHello([]byte{oldV})
		if err != nil {
			t.Fatal(err)
		}
		if old == ProtocolVersion {
			t.Fatalf("v%d hello matches v%d", oldV, ProtocolVersion)
		}
	}
	rej, err := DecodeVersionErr(EncodeVersionErr(ProtocolVersion))
	if err != nil || rej != 5 {
		t.Fatalf("version-error round trip: %d, %v", rej, err)
	}
}

func FuzzDecodeTraceContext(f *testing.F) {
	f.Add(AppendTraceContext(nil, TraceContext{TraceID: 1}))
	f.Add(AppendTraceContext(nil, TraceContext{TraceID: 99, ParentSpan: 7, Sampled: true}))
	tr, _ := EncodeTraced(TraceContext{TraceID: 3, Sampled: true}, MsgStats, []byte(`{}`))
	f.Add(tr)
	sp, _ := EncodeSpans(11, []SpanRecord{{Kind: 4, DurNs: 9, Rows: 2}})
	f.Add(sp)
	f.Fuzz(func(t *testing.T, b []byte) {
		// A context that decodes must re-encode byte-identically.
		if tc, err := DecodeTraceContext(b); err == nil {
			re := AppendTraceContext(nil, tc)
			if !bytes.Equal(re, b) {
				t.Fatalf("context not a fixed point: % x -> %+v -> % x", b, tc, re)
			}
		}
		// A traced wrapper that decodes must rebuild byte-identically.
		if tc, inner, payload, err := DecodeTraced(b); err == nil {
			re, err := EncodeTraced(tc, inner, payload)
			if err != nil {
				t.Fatalf("re-encode of decoded traced frame failed: %v", err)
			}
			if !bytes.Equal(re, b) {
				t.Fatal("traced frame not a fixed point")
			}
		}
		// A spans frame that decodes must rebuild byte-identically.
		if id, recs, err := DecodeSpans(b); err == nil {
			re, err := EncodeSpans(id, recs)
			if err != nil {
				t.Fatalf("re-encode of decoded spans failed: %v", err)
			}
			if !bytes.Equal(re, b) {
				t.Fatal("spans frame not a fixed point")
			}
		}
	})
}

func TestObservabilityTypeCodesUnclaimed(t *testing.T) {
	// The new codes must not collide with any existing message type.
	claimed := map[byte]string{
		MsgHello: "hello", MsgProbeParts: "probe", MsgExec: "exec",
		MsgRefill: "refill", MsgShardMap: "shardmap", MsgShards: "shards",
		MsgUpdate: "update", MsgInvalidate: "invalidate",
		MsgRow: "row", MsgDone: "done", MsgError: "error", MsgReply: "reply",
		MsgErrVersion: "errversion", MsgErrEpoch: "errepoch",
	}
	for code, name := range map[byte]string{
		MsgTraced: "traced", MsgTraceGet: "traceget", MsgFleet: "fleet", MsgSpans: "spans",
	} {
		if prev, dup := claimed[code]; dup {
			t.Fatalf("type 0x%02x (%s) collides with %s", code, name, prev)
		}
		claimed[code] = name
	}
}

package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"pmv/internal/expr"
	"pmv/internal/value"
)

// Fuzz targets for the decoders that face hostile bytes: everything a
// peer sends crosses ReadFrame, and MsgQuery payloads cross
// DecodeQuery before touching the engine. The contract under fuzzing
// is the graceful-degradation one: hostile input must produce an
// error, never a panic or an unbounded allocation.

// fuzzFrameCorpus seeds the frame fuzzer with valid frames of every
// shape the round-trip tests cover.
func fuzzFrameCorpus(f *testing.F) {
	for i, p := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 4096)} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, MsgQuery})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
}

func FuzzReadFrame(f *testing.F) {
	fuzzFrameCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that decoded must round-trip byte-identically.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("frame round trip changed bytes")
		}
	})
}

func FuzzDecodeQuery(f *testing.F) {
	seeds := []QueryRequest{
		{View: "v"},
		{
			View:     "pmv_orders",
			Deadline: 1500 * time.Millisecond,
			Conds: []expr.CondInstance{
				{Values: []value.Value{value.Int(7), value.Str("x"), value.Null()}},
				{Intervals: []expr.Interval{
					{Lo: value.Date(100), Hi: value.Date(200), LoIncl: true},
					{Lo: value.Null(), Hi: value.Float(3.5), HiIncl: true},
				}},
			},
		},
	}
	for _, q := range seeds {
		b, err := EncodeQuery(q)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q1, err := DecodeQuery(data)
		if err != nil {
			return
		}
		// Re-encoding a decoded query must be stable: one encode/decode
		// cycle reaches a fixed point (the first cycle may canonicalize
		// an empty condition's representation).
		b2, err := EncodeQuery(q1)
		if err != nil {
			t.Fatalf("re-encode of decoded query failed: %v", err)
		}
		q2, err := DecodeQuery(b2)
		if err != nil {
			t.Fatalf("decode of re-encoded query failed: %v", err)
		}
		b3, err := EncodeQuery(q2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		q3, err := DecodeQuery(b3)
		if err != nil {
			t.Fatalf("second re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(q2, q3) {
			t.Fatalf("query encode/decode not idempotent:\n q2 %+v\n q3 %+v", q2, q3)
		}
	})
}

func FuzzDecodeRow(f *testing.F) {
	f.Add(EncodeRow(nil, value.Tuple{value.Int(42), value.Str("hello"), value.Bool(true)}, true))
	f.Add(EncodeRow(nil, value.Tuple{}, false))
	f.Add(EncodeReport(nil, Report{Hit: true, TotalTuples: 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if tu, partial, err := DecodeRow(data); err == nil {
			b2 := EncodeRow(nil, tu, partial)
			if !bytes.Equal(b2, data) {
				t.Fatalf("row round trip changed bytes")
			}
		}
		if rep, err := DecodeReport(data); err == nil {
			got, err := DecodeReport(EncodeReport(nil, rep))
			if err != nil || got != rep {
				t.Fatalf("report round trip mismatch: %v", err)
			}
		}
		if rel, n, err := DecodePeek(data); err == nil {
			if !bytes.Equal(EncodePeek(rel, n), data) {
				t.Fatalf("peek round trip changed bytes")
			}
		}
	})
}

// TestCorruptFrameTyped pins the typed-error contract the client's
// retry logic relies on.
func TestCorruptFrameTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgRow, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x01
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("payload corruption not typed ErrCorruptFrame: %v", err)
	}
}

func FuzzDecodeHotSet(f *testing.F) {
	seeds := []HotSetRequest{
		{View: "v", Epoch: 1, Seq: 1},
		{
			View: "pmv_orders", Epoch: 7, Seq: 42,
			Keys: []HotKey{
				{Key: "k1", Tuples: []value.Tuple{
					{value.Int(1), value.Str("a")},
					{value.Int(2), value.Str("b")},
				}},
				{Key: "k2"},
			},
		},
	}
	for _, req := range seeds {
		b, err := EncodeHotSet(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeHotSet(data)
		if err != nil {
			return
		}
		// A hot set that decoded must re-encode byte-identically: the
		// format has exactly one encoding per request.
		b2, err := EncodeHotSet(req)
		if err != nil {
			t.Fatalf("re-encode of decoded hot set failed: %v", err)
		}
		if !bytes.Equal(b2, data) {
			t.Fatalf("hot set round trip changed bytes")
		}
	})
}

func FuzzDecodeHotInval(f *testing.F) {
	seeds := []HotInvalRequest{
		{View: "v", Epoch: 1, Seq: 1},
		{View: "pmv_orders", Epoch: 7, Seq: 43, Keys: []string{"k1", "", "k3"}},
	}
	for _, req := range seeds {
		b, err := EncodeHotInval(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeHotInval(data)
		if err != nil {
			return
		}
		b2, err := EncodeHotInval(req)
		if err != nil {
			t.Fatalf("re-encode of decoded hot inval failed: %v", err)
		}
		if !bytes.Equal(b2, data) {
			t.Fatalf("hot inval round trip changed bytes")
		}
	})
}

// update.go defines the write plane's wire surface: ΔR batches
// (MsgUpdate) and PMV invalidation fan-outs (MsgInvalidate). Both
// follow the package's frame idiom — strict decoding with typed
// errors, prealloc caps on peer-supplied sizes, trailing-byte checks —
// because the write path crosses the same hostile network the query
// path does.
package wire

import (
	"encoding/binary"
	"fmt"

	"pmv/internal/value"
)

// Write-plane message types (requests continue the 0x12 sequence).
const (
	// MsgUpdate delivers a ΔR batch (UpdateRequest payload): inserts,
	// predicate deletes, and single-column updates over base relations.
	// Answered with a MsgReply UpdateReply once the batch is applied
	// (and, when maintenance is requested, invalidated locally).
	MsgUpdate byte = 0x13
	// MsgInvalidate delivers a PMV invalidation (InvalidateRequest
	// payload): bump the named view's invalidation generation for a set
	// of bcp keys, or for the whole view (All). Idempotent — applying
	// the same invalidation twice only loses more cache, never
	// correctness — so callers retry it with admin rules. Answered with
	// a MsgReply InvalidateReply.
	MsgInvalidate byte = 0x14
)

// Update op kinds.
const (
	// OpInsert appends Tuple to Rel.
	OpInsert byte = 0
	// OpDelete removes every tuple of Rel whose Col equals Val.
	OpDelete byte = 1
	// OpUpdate sets SetCol to SetVal on every tuple of Rel whose Col
	// equals Val.
	OpUpdate byte = 2
)

// UpdateOp is one ΔR statement. The predicate form is deliberately
// narrow — equality on one column — so the frame stays compact and the
// shard side needs no expression evaluator; richer predicates belong
// to embedded use of the library.
type UpdateOp struct {
	Kind byte
	Rel  string
	// Tuple is the inserted row (OpInsert only).
	Tuple value.Tuple
	// Col/Val form the equality predicate (OpDelete, OpUpdate).
	Col string
	Val value.Value
	// SetCol/SetVal form the assignment (OpUpdate only).
	SetCol string
	SetVal value.Value
}

// UpdateRequest is the decoded MsgUpdate payload.
type UpdateRequest struct {
	// Maint asks the receiving shard to run view maintenance (compute
	// affected bcp keys and invalidate/purge its own cache). A router
	// fanning a batch to replicas sets it on one shard only and covers
	// the rest with MsgInvalidate.
	Maint bool
	Ops   []UpdateOp
}

// update request flag bits.
const updMaint byte = 1 << 0

// EncodeUpdate encodes an UpdateRequest as a MsgUpdate payload.
func EncodeUpdate(req UpdateRequest) ([]byte, error) {
	if len(req.Ops) > 0xffff {
		return nil, fmt.Errorf("wire: too many update ops")
	}
	var fl byte
	if req.Maint {
		fl |= updMaint
	}
	b := make([]byte, 0, 64)
	b = append(b, fl)
	b = binary.BigEndian.AppendUint16(b, uint16(len(req.Ops)))
	for i := range req.Ops {
		op := &req.Ops[i]
		if len(op.Rel) > 0xffff || len(op.Col) > 0xffff || len(op.SetCol) > 0xffff {
			return nil, fmt.Errorf("wire: update op name too long")
		}
		b = append(b, op.Kind)
		b = binary.BigEndian.AppendUint16(b, uint16(len(op.Rel)))
		b = append(b, op.Rel...)
		switch op.Kind {
		case OpInsert:
			b = value.EncodeTuple(b, op.Tuple)
		case OpDelete:
			b = binary.BigEndian.AppendUint16(b, uint16(len(op.Col)))
			b = append(b, op.Col...)
			b = value.EncodeTuple(b, value.Tuple{op.Val})
		case OpUpdate:
			b = binary.BigEndian.AppendUint16(b, uint16(len(op.Col)))
			b = append(b, op.Col...)
			b = binary.BigEndian.AppendUint16(b, uint16(len(op.SetCol)))
			b = append(b, op.SetCol...)
			b = value.EncodeTuple(b, value.Tuple{op.Val, op.SetVal})
		default:
			return nil, fmt.Errorf("wire: unknown update op kind %d", op.Kind)
		}
	}
	if len(b)+1 > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeUpdate parses a MsgUpdate payload.
func DecodeUpdate(b []byte) (UpdateRequest, error) {
	var req UpdateRequest
	if len(b) < 3 {
		return req, fmt.Errorf("wire: short update header")
	}
	fl := b[0]
	if fl&^updMaint != 0 {
		return req, fmt.Errorf("wire: unknown update flags 0x%02x", fl)
	}
	req.Maint = fl&updMaint != 0
	n := int(binary.BigEndian.Uint16(b[1:]))
	b = b[3:]
	req.Ops = make([]UpdateOp, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		if len(b) < 3 {
			return req, fmt.Errorf("wire: truncated update op %d", i)
		}
		var op UpdateOp
		op.Kind = b[0]
		rl := int(binary.BigEndian.Uint16(b[1:]))
		b = b[3:]
		if len(b) < rl {
			return req, fmt.Errorf("wire: truncated update op %d relation", i)
		}
		op.Rel = string(b[:rl])
		b = b[rl:]
		switch op.Kind {
		case OpInsert:
			t, used, err := value.DecodeTuple(b)
			if err != nil {
				return req, fmt.Errorf("wire: update op %d tuple: %w", i, err)
			}
			op.Tuple = t
			b = b[used:]
		case OpDelete:
			col, rest, err := decodeName(b, "predicate column")
			if err != nil {
				return req, fmt.Errorf("wire: update op %d: %w", i, err)
			}
			b = rest
			t, used, err := value.DecodeTuple(b)
			if err != nil {
				return req, fmt.Errorf("wire: update op %d value: %w", i, err)
			}
			if len(t) != 1 {
				return req, fmt.Errorf("wire: update op %d carries %d predicate values", i, len(t))
			}
			op.Col, op.Val = col, t[0]
			b = b[used:]
		case OpUpdate:
			col, rest, err := decodeName(b, "predicate column")
			if err != nil {
				return req, fmt.Errorf("wire: update op %d: %w", i, err)
			}
			setCol, rest, err := decodeName(rest, "assignment column")
			if err != nil {
				return req, fmt.Errorf("wire: update op %d: %w", i, err)
			}
			b = rest
			t, used, err := value.DecodeTuple(b)
			if err != nil {
				return req, fmt.Errorf("wire: update op %d values: %w", i, err)
			}
			if len(t) != 2 {
				return req, fmt.Errorf("wire: update op %d carries %d values", i, len(t))
			}
			op.Col, op.Val, op.SetCol, op.SetVal = col, t[0], setCol, t[1]
			b = b[used:]
		default:
			return req, fmt.Errorf("wire: update op %d has unknown kind %d", i, op.Kind)
		}
		req.Ops = append(req.Ops, op)
	}
	if len(b) != 0 {
		return req, fmt.Errorf("wire: %d trailing bytes after update", len(b))
	}
	return req, nil
}

// decodeName parses one u16-length-prefixed string.
func decodeName(b []byte, what string) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("truncated %s length", what)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("truncated %s", what)
	}
	return string(b[:n]), b[n:], nil
}

// InvalidateRequest is the decoded MsgInvalidate payload.
type InvalidateRequest struct {
	View string
	// Epoch is the sender's shard-map epoch; a shard with a different
	// installed map answers MsgErrEpoch so the sender re-teaches it
	// first (a rebooted shard must learn the map before it can be
	// trusted to hold invalidations for the keys it owns).
	Epoch uint64
	// All bumps the whole view's invalidation generation — the
	// degradation step when per-key delivery failed or the key damage
	// could not be bounded.
	All  bool
	Keys []string
}

// invalidate request flag bits.
const invAll byte = 1 << 0

// EncodeInvalidate encodes an InvalidateRequest as a MsgInvalidate
// payload.
func EncodeInvalidate(req InvalidateRequest) ([]byte, error) {
	if len(req.View) > 0xffff {
		return nil, fmt.Errorf("wire: view name too long")
	}
	var fl byte
	if req.All {
		fl |= invAll
	}
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint64(b, req.Epoch)
	b = append(b, fl)
	b = binary.BigEndian.AppendUint16(b, uint16(len(req.View)))
	b = append(b, req.View...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(req.Keys)))
	for _, k := range req.Keys {
		if len(k) > 0xffff {
			return nil, fmt.Errorf("wire: bcp key too long")
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(k)))
		b = append(b, k...)
	}
	if len(b)+1 > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeInvalidate parses a MsgInvalidate payload.
func DecodeInvalidate(b []byte) (InvalidateRequest, error) {
	var req InvalidateRequest
	if len(b) < 15 {
		return req, fmt.Errorf("wire: short invalidate header")
	}
	req.Epoch = binary.BigEndian.Uint64(b)
	fl := b[8]
	if fl&^invAll != 0 {
		return req, fmt.Errorf("wire: unknown invalidate flags 0x%02x", fl)
	}
	req.All = fl&invAll != 0
	n := int(binary.BigEndian.Uint16(b[9:]))
	b = b[11:]
	if len(b) < n {
		return req, fmt.Errorf("wire: truncated view name")
	}
	req.View = string(b[:n])
	b = b[n:]
	if len(b) < 4 {
		return req, fmt.Errorf("wire: truncated key count")
	}
	nk := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	req.Keys = make([]string, 0, min(nk, 1024))
	for i := 0; i < nk; i++ {
		if len(b) < 2 {
			return req, fmt.Errorf("wire: truncated key %d length", i)
		}
		kl := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < kl {
			return req, fmt.Errorf("wire: truncated key %d", i)
		}
		req.Keys = append(req.Keys, string(b[:kl]))
		b = b[kl:]
	}
	if len(b) != 0 {
		return req, fmt.Errorf("wire: %d trailing bytes after invalidate", len(b))
	}
	return req, nil
}

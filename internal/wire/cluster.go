// cluster.go defines the wire surface of the sharded cluster plane:
// session version negotiation, per-condition-part O2 probes, plain O3
// execution over the expanded select list Ls′, refill deltas, and
// shard-map distribution. Everything here follows the package's frame
// idiom — strict decoding with typed errors, no allocation driven by
// unvalidated peer-supplied sizes — because routers and shards speak
// these frames across the same hostile network the query path does.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pmv/internal/expr"
	"pmv/internal/value"
)

// ProtocolVersion is the wire protocol generation this build speaks.
// Version 2 added the hello handshake and the cluster frames; version
// 3 added the observability plane (MsgTraced trace contexts, MsgSpans
// span piggybacks, MsgTraceGet/MsgFleet router commands); version 4
// added the tail-tolerance plane (MsgPing/MsgPong heartbeats and the
// optional deadline-budget tail on probe/refill payloads); version 5
// added the frequency plane (MsgHotSet/MsgHotInval replication frames
// and the MsgFilter snapshot command). Peers announcing any other
// version get MsgErrVersion and a closed session instead of a
// CRC/decode failure mid-stream — which is what gates the newer
// frames: an old peer never negotiates a session that could carry
// them.
const ProtocolVersion byte = 5

// Cluster-plane message types (requests continue the 0x0c sequence,
// responses the 0x84 one).
const (
	// MsgHello opens a session with the peer's protocol version (1-byte
	// payload). A matching server answers with a MsgReply HelloReply; a
	// mismatch earns MsgErrVersion and the session is closed.
	MsgHello byte = 0x0d
	// MsgProbeParts runs Operation O2 for a batch of externally-computed
	// condition parts (ProbeRequest payload). The response streams
	// MsgRow frames carrying full Ls′ tuples with RowPartial set,
	// closed by MsgDone.
	MsgProbeParts byte = 0x0e
	// MsgExec executes a query plainly over Ls′ — Operation O3 without
	// probe or refill (QueryRequest payload). The response streams
	// MsgRow frames (RowPartial clear) closed by MsgDone.
	MsgExec byte = 0x0f
	// MsgRefill delivers result tuples a router observed during O3 to
	// the shard owning their bcps (RefillRequest payload). Answered
	// with a MsgReply RefillReply.
	MsgRefill byte = 0x10
	// MsgShardMap reads (empty payload) or installs (JSON ShardMapReply
	// payload) the shard map a shard validates probe/refill epochs
	// against. Answered with the now-current MsgReply ShardMapReply.
	MsgShardMap byte = 0x11
	// MsgShards asks a router for its cluster status: the authoritative
	// shard map plus per-shard health and view occupancy (MsgReply
	// ShardsReply). Shards answer it with MsgError.
	MsgShards byte = 0x12

	// MsgErrVersion rejects a hello whose version the server does not
	// speak (1-byte payload: the server's version). The session is
	// closed after the frame.
	MsgErrVersion byte = 0x86
	// MsgErrEpoch rejects a probe/refill whose shard-map epoch does not
	// match the shard's installed one (u64 payload: the shard's current
	// epoch, 0 = no map installed). The session stays usable — the
	// caller refreshes its map and retries.
	MsgErrEpoch byte = 0x87
)

// ErrVersion marks a protocol-version mismatch discovered during the
// hello handshake. It is final: no amount of redialing the same binary
// pair will cure it.
var ErrVersion = errors.New("wire: protocol version mismatch")

// ErrEpoch marks a request routed with a stale (or missing) shard-map
// epoch. Callers refresh the shard's map and retry.
var ErrEpoch = errors.New("wire: stale shard map epoch")

// EncodeHello encodes a MsgHello payload.
func EncodeHello() []byte { return []byte{ProtocolVersion} }

// DecodeHello parses a MsgHello payload.
func DecodeHello(b []byte) (byte, error) {
	if len(b) != 1 {
		return 0, fmt.Errorf("wire: hello payload is %d bytes", len(b))
	}
	return b[0], nil
}

// EncodeVersionErr encodes a MsgErrVersion payload (the responder's
// own version).
func EncodeVersionErr(v byte) []byte { return []byte{v} }

// DecodeVersionErr parses a MsgErrVersion payload.
func DecodeVersionErr(b []byte) (byte, error) {
	if len(b) != 1 {
		return 0, fmt.Errorf("wire: version-error payload is %d bytes", len(b))
	}
	return b[0], nil
}

// EncodeEpochErr encodes a MsgErrEpoch payload (the shard's installed
// epoch).
func EncodeEpochErr(epoch uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, epoch)
}

// DecodeEpochErr parses a MsgErrEpoch payload.
func DecodeEpochErr(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("wire: epoch-error payload is %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// ProbePart is one condition part to probe on a shard: the encoded
// containing bcp key, whether the part equals its bcp, and — for
// non-exact parts — one single-component condition instance per
// template condition, used to re-check cached tuples.
type ProbePart struct {
	Key   string
	Exact bool
	Conds []expr.CondInstance
}

// ProbeRequest is the decoded MsgProbeParts payload.
type ProbeRequest struct {
	View  string
	Epoch uint64
	Parts []ProbePart
	// BudgetNs is the router's remaining deadline budget in
	// nanoseconds; 0 means unbounded. It rides as an optional 8-byte
	// tail on the payload — absent when zero, so a router with budget
	// propagation disabled produces byte-identical frames to older
	// builds.
	BudgetNs uint64
}

// probe part flag bits.
const partExact byte = 1 << 0

// appendCond appends one condition instance in the query-condition
// encoding (kind byte + values tuple, or kind byte + interval list).
func appendCond(b []byte, ci expr.CondInstance) ([]byte, error) {
	if len(ci.Values) > 0 {
		b = append(b, condValues)
		return value.EncodeTuple(b, value.Tuple(ci.Values)), nil
	}
	b = append(b, condIntervals)
	if len(ci.Intervals) > 0xffff {
		return nil, fmt.Errorf("wire: too many intervals")
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(ci.Intervals)))
	for _, iv := range ci.Intervals {
		var fl byte
		if iv.LoIncl {
			fl |= loIncl
		}
		if iv.HiIncl {
			fl |= hiIncl
		}
		b = append(b, fl)
		b = value.EncodeTuple(b, value.Tuple{iv.Lo, iv.Hi})
	}
	return b, nil
}

// decodeCond parses one condition instance, returning the rest of the
// buffer.
func decodeCond(b []byte) (expr.CondInstance, []byte, error) {
	var ci expr.CondInstance
	if len(b) < 1 {
		return ci, nil, fmt.Errorf("wire: truncated condition")
	}
	kind := b[0]
	b = b[1:]
	switch kind {
	case condValues:
		t, used, err := value.DecodeTuple(b)
		if err != nil {
			return ci, nil, fmt.Errorf("wire: condition values: %w", err)
		}
		ci.Values = t
		return ci, b[used:], nil
	case condIntervals:
		if len(b) < 2 {
			return ci, nil, fmt.Errorf("wire: truncated interval count")
		}
		ni := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		ci.Intervals = make([]expr.Interval, 0, ni)
		for j := 0; j < ni; j++ {
			if len(b) < 1 {
				return ci, nil, fmt.Errorf("wire: truncated interval %d", j)
			}
			fl := b[0]
			b = b[1:]
			t, used, err := value.DecodeTuple(b)
			if err != nil {
				return ci, nil, fmt.Errorf("wire: interval %d bounds: %w", j, err)
			}
			if len(t) != 2 {
				return ci, nil, fmt.Errorf("wire: interval %d has %d bounds", j, len(t))
			}
			b = b[used:]
			ci.Intervals = append(ci.Intervals, expr.Interval{
				Lo: t[0], Hi: t[1],
				LoIncl: fl&loIncl != 0, HiIncl: fl&hiIncl != 0,
			})
		}
		return ci, b, nil
	default:
		return ci, nil, fmt.Errorf("wire: unknown condition kind %d", kind)
	}
}

// EncodeProbe encodes a ProbeRequest as a MsgProbeParts payload.
func EncodeProbe(req ProbeRequest) ([]byte, error) {
	if len(req.View) > 0xffff {
		return nil, fmt.Errorf("wire: view name too long")
	}
	if len(req.Parts) > 0xffff {
		return nil, fmt.Errorf("wire: too many probe parts")
	}
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint64(b, req.Epoch)
	b = binary.BigEndian.AppendUint16(b, uint16(len(req.View)))
	b = append(b, req.View...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(req.Parts)))
	for _, p := range req.Parts {
		if len(p.Key) > 0xffff {
			return nil, fmt.Errorf("wire: bcp key too long")
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(p.Key)))
		b = append(b, p.Key...)
		var fl byte
		if p.Exact {
			fl |= partExact
		}
		b = append(b, fl)
		if len(p.Conds) > 0xffff {
			return nil, fmt.Errorf("wire: too many part conditions")
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(p.Conds)))
		for _, ci := range p.Conds {
			var err error
			if b, err = appendCond(b, ci); err != nil {
				return nil, err
			}
		}
	}
	if req.BudgetNs != 0 {
		b = binary.BigEndian.AppendUint64(b, req.BudgetNs)
	}
	return b, nil
}

// DecodeProbe parses a MsgProbeParts payload.
func DecodeProbe(b []byte) (ProbeRequest, error) {
	var req ProbeRequest
	if len(b) < 12 {
		return req, fmt.Errorf("wire: short probe header")
	}
	req.Epoch = binary.BigEndian.Uint64(b)
	b = b[8:]
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return req, fmt.Errorf("wire: truncated view name")
	}
	req.View = string(b[:n])
	b = b[n:]
	if len(b) < 2 {
		return req, fmt.Errorf("wire: truncated part count")
	}
	np := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	req.Parts = make([]ProbePart, 0, min(np, 1024))
	for i := 0; i < np; i++ {
		if len(b) < 2 {
			return req, fmt.Errorf("wire: truncated part %d key length", i)
		}
		kl := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < kl+3 {
			return req, fmt.Errorf("wire: truncated part %d", i)
		}
		var p ProbePart
		p.Key = string(b[:kl])
		b = b[kl:]
		fl := b[0]
		if fl&^partExact != 0 {
			return req, fmt.Errorf("wire: unknown part flags 0x%02x", fl)
		}
		p.Exact = fl&partExact != 0
		nc := int(binary.BigEndian.Uint16(b[1:]))
		b = b[3:]
		p.Conds = make([]expr.CondInstance, 0, min(nc, 64))
		for j := 0; j < nc; j++ {
			ci, rest, err := decodeCond(b)
			if err != nil {
				return req, fmt.Errorf("wire: part %d condition %d: %w", i, j, err)
			}
			b = rest
			p.Conds = append(p.Conds, ci)
		}
		req.Parts = append(req.Parts, p)
	}
	switch len(b) {
	case 0:
	case 8:
		req.BudgetNs = binary.BigEndian.Uint64(b)
		if req.BudgetNs == 0 {
			return req, fmt.Errorf("wire: zero budget tail on probe")
		}
	default:
		return req, fmt.Errorf("wire: %d trailing bytes after probe", len(b))
	}
	return req, nil
}

// RefillRequest is the decoded MsgRefill payload: Ls′ result tuples a
// router observed during Operation O3, bound for the shard that owns
// their bcps.
type RefillRequest struct {
	View   string
	Epoch  uint64
	Tuples []value.Tuple
	// BudgetNs mirrors ProbeRequest.BudgetNs: remaining router budget
	// in nanoseconds as an optional 8-byte tail, absent when zero.
	BudgetNs uint64
}

// EncodeRefill encodes a RefillRequest as a MsgRefill payload.
func EncodeRefill(req RefillRequest) ([]byte, error) {
	if len(req.View) > 0xffff {
		return nil, fmt.Errorf("wire: view name too long")
	}
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint64(b, req.Epoch)
	b = binary.BigEndian.AppendUint16(b, uint16(len(req.View)))
	b = append(b, req.View...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(req.Tuples)))
	for _, t := range req.Tuples {
		b = value.EncodeTuple(b, t)
	}
	if req.BudgetNs != 0 {
		b = binary.BigEndian.AppendUint64(b, req.BudgetNs)
	}
	if len(b)+1 > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeRefill parses a MsgRefill payload.
func DecodeRefill(b []byte) (RefillRequest, error) {
	var req RefillRequest
	if len(b) < 14 {
		return req, fmt.Errorf("wire: short refill header")
	}
	req.Epoch = binary.BigEndian.Uint64(b)
	b = b[8:]
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return req, fmt.Errorf("wire: truncated view name")
	}
	req.View = string(b[:n])
	b = b[n:]
	if len(b) < 4 {
		return req, fmt.Errorf("wire: truncated tuple count")
	}
	nt := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	req.Tuples = make([]value.Tuple, 0, min(nt, 1024))
	for i := 0; i < nt; i++ {
		t, used, err := value.DecodeTuple(b)
		if err != nil {
			return req, fmt.Errorf("wire: refill tuple %d: %w", i, err)
		}
		b = b[used:]
		req.Tuples = append(req.Tuples, t)
	}
	switch len(b) {
	case 0:
	case 8:
		req.BudgetNs = binary.BigEndian.Uint64(b)
		if req.BudgetNs == 0 {
			return req, fmt.Errorf("wire: zero budget tail on refill")
		}
	default:
		return req, fmt.Errorf("wire: %d trailing bytes after refill", len(b))
	}
	return req, nil
}

// ExecRequest is the MsgExec payload — structurally a QueryRequest
// (view, deadline, bound conditions); the distinct message type is
// what selects plain Ls′ execution instead of the PMV protocol.
type ExecRequest = QueryRequest

// EncodeExec encodes a MsgExec payload.
func EncodeExec(req ExecRequest) ([]byte, error) { return EncodeQuery(req) }

// DecodeExec parses a MsgExec payload.
func DecodeExec(b []byte) (ExecRequest, error) { return DecodeQuery(b) }

package wire

import (
	"pmv/internal/expr"
	"pmv/internal/value"
)

// Admin replies travel as JSON inside a MsgReply frame. They are
// defined here (not in the server) so the client package can decode
// them without linking the engine.

// ViewInfo describes one partial materialized view. Template is
// included so remote tools (pmvcli -addr) can bind queries without
// opening the database directory.
type ViewInfo struct {
	Name         string         `json:"name"`
	Template     *expr.Template `json:"template"`
	MaxEntries   int            `json:"max_entries"`
	TuplesPerBCP int            `json:"tuples_per_bcp"`
	Policy       string         `json:"policy"`
	Entries      int            `json:"entries"`
	Tuples       int            `json:"tuples"`
	Bytes        int            `json:"bytes"`
	HitProb      float64        `json:"hit_prob"`
	// Cluster routing metadata: the interval dividers (keyed by
	// condition position) and the O1 part cap a router needs to run
	// BreakConditions locally and compute bcp keys that agree with the
	// shard's own coder.
	MaxConditionParts int                   `json:"max_condition_parts,omitempty"`
	Dividers          map[int][]value.Value `json:"dividers,omitempty"`
}

// TableInfo describes one base relation.
type TableInfo struct {
	Name    string `json:"name"`
	Columns int    `json:"columns"`
	Indexes int    `json:"indexes"`
	Tuples  int64  `json:"tuples"`
}

// ColumnInfo is one column of a schema.
type ColumnInfo struct {
	Name string     `json:"name"`
	Type value.Type `json:"type"`
}

// IndexInfo is one secondary index of a schema.
type IndexInfo struct {
	Name string   `json:"name"`
	Cols []string `json:"cols"`
}

// SchemaReply answers MsgSchema.
type SchemaReply struct {
	Columns []ColumnInfo `json:"columns"`
	Indexes []IndexInfo  `json:"indexes"`
}

// CountReply answers MsgCount.
type CountReply struct {
	Count int64 `json:"count"`
}

// PeekReply answers MsgPeek.
type PeekReply struct {
	Rows []value.Tuple `json:"rows"`
}

// OKReply answers side-effect commands (analyze, checkpoint).
type OKReply struct {
	OK bool `json:"ok"`
}

// HistSnapshot summarizes one latency histogram (nanoseconds).
type HistSnapshot struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// ServerStats is the service layer's counter snapshot.
type ServerStats struct {
	SessionsTotal   int64 `json:"sessions_total"`
	SessionsActive  int64 `json:"sessions_active"`
	Queries         int64 `json:"queries"`
	Rows            int64 `json:"rows"`
	PartialRows     int64 `json:"partial_rows"`
	Shed            int64 `json:"shed"`
	DeadlineExpired int64 `json:"deadline_expired"`
	Degraded        int64 `json:"degraded"`
	PartialOnly     int64 `json:"partial_only"`
	Errors          int64 `json:"errors"`

	// Write plane.
	Updates       int64 `json:"updates"`
	UpdateOps     int64 `json:"update_ops"`
	UpdateRows    int64 `json:"update_rows"`
	Invalidations int64 `json:"invalidations"`

	// Network-plane failure modes.
	ConnRejected  int64 `json:"conn_rejected"`
	IdleReaped    int64 `json:"idle_reaped"`
	ReadTimeouts  int64 `json:"read_timeouts"`
	WriteTimeouts int64 `json:"write_timeouts"`
	CorruptFrames int64 `json:"corrupt_frames"`
	SessionResets int64 `json:"session_resets"`

	// Cost accounting: cumulative per-query resource bills (rows
	// scanned or streamed, bytes written to the wire, heap bytes
	// sampled on traced queries, WAL fsyncs attributed to batches).
	CostRows   int64 `json:"cost_rows"`
	CostBytes  int64 `json:"cost_bytes"`
	CostAllocs int64 `json:"cost_allocs"`
	CostFsyncs int64 `json:"cost_fsyncs"`
	// TracesSampled counts queries that ran with a live trace.
	TracesSampled int64 `json:"traces_sampled"`

	// PartialPhase times Operations O1+O2 (time to the last partial
	// row), ExecPhase times Operation O3, Total times whole queries.
	PartialPhase HistSnapshot `json:"partial_phase"`
	ExecPhase    HistSnapshot `json:"exec_phase"`
	Total        HistSnapshot `json:"total"`
}

// EngineStatsReply mirrors the engine's robustness counters.
type EngineStatsReply struct {
	LockRetries     int64 `json:"lock_retries"`
	LockTimeouts    int64 `json:"lock_timeouts"`
	DegradedQueries int64 `json:"degraded_queries"`
	TornPageRepairs int64 `json:"torn_page_repairs"`
}

// DBStatsReply mirrors the database-level counters.
type DBStatsReply struct {
	BufferHits     int64 `json:"buffer_hits"`
	BufferMisses   int64 `json:"buffer_misses"`
	PhysicalReads  int64 `json:"physical_reads"`
	PhysicalWrites int64 `json:"physical_writes"`
	ViewBytes      int   `json:"view_bytes"`
}

// SnapshotStats is the snapshot manager's health: how warm restarts
// are doing and how fresh the on-disk snapshot is.
type SnapshotStats struct {
	// Epoch is the shard-map epoch persisted beside the snapshot.
	Epoch uint64 `json:"epoch"`
	// AgeSeconds since the last successful write (-1 = never written).
	AgeSeconds float64 `json:"age_seconds"`
	// LastWriteBytes / LastWriteNs describe the last successful write.
	LastWriteBytes int64 `json:"last_write_bytes"`
	LastWriteNs    int64 `json:"last_write_ns"`
	Writes         int64 `json:"writes"`
	WriteErrors    int64 `json:"write_errors"`
	// WarmEntries / WarmTuples were admitted at the last boot.
	WarmEntries int64 `json:"warm_entries"`
	WarmTuples  int64 `json:"warm_tuples"`
	// StaleRejects / CorruptRejects count snapshots refused at boot.
	StaleRejects   int64 `json:"stale_rejects"`
	CorruptRejects int64 `json:"corrupt_rejects"`
	// PendingSkips counts snapshot writes skipped because a
	// maintenance batch was in flight (warm-booting across that window
	// could serve invalidated entries).
	PendingSkips int64 `json:"pending_skips"`
	// LastBoot is the human-readable outcome of the last Load.
	LastBoot string `json:"last_boot"`
}

// MaintStats is the write plane's counter snapshot: ingest queue
// health, batching behavior, the heavy/light split, and invalidation
// accounting.
type MaintStats struct {
	// Ingest queue.
	QueueDepth  int64 `json:"queue_depth"`
	QueueCap    int64 `json:"queue_cap"`
	OpsIngested int64 `json:"ops_ingested"`
	OpsApplied  int64 `json:"ops_applied"`
	OpErrors    int64 `json:"op_errors"`

	// Batching.
	Batches     int64 `json:"batches"`
	SizeFlushes int64 `json:"size_flushes"`
	AgeFlushes  int64 `json:"age_flushes"`
	MaxBatchOps int64 `json:"max_batch_ops"`
	LockWaitNs  int64 `json:"lock_wait_ns"`
	ApplyNs     int64 `json:"apply_ns"`
	MaintNs     int64 `json:"maint_ns"`
	// CoalescedOps counts ops applied through a multi-op scan run
	// (point ops on the same relation+column share one heap scan);
	// GroupSyncs/SyncNs count the per-batch WAL group commits.
	CoalescedOps int64 `json:"coalesced_ops"`
	GroupSyncs   int64 `json:"group_syncs"`
	SyncNs       int64 `json:"sync_ns"`

	// Heavy/light classification and local maintenance.
	KeysAffected  int64 `json:"keys_affected"`
	LightKeys     int64 `json:"light_keys"`
	HeavyKeys     int64 `json:"heavy_keys"`
	EntriesPurged int64 `json:"entries_purged"`
	TuplesPurged  int64 `json:"tuples_purged"`
	KeyGenBumps   int64 `json:"key_gen_bumps"`
	WideGenBumps  int64 `json:"wide_gen_bumps"`
	PurgeDegrades int64 `json:"purge_degrades"`

	// Cluster fan-out (router side; zero on shards).
	FanoutSent     int64 `json:"fanout_sent"`
	FanoutRetries  int64 `json:"fanout_retries"`
	FanoutDegrades int64 `json:"fanout_degrades"`
	FanoutFailures int64 `json:"fanout_failures"`
	FanoutLagNs    int64 `json:"fanout_lag_ns"`
}

// StatsReply answers MsgStats.
type StatsReply struct {
	Server ServerStats      `json:"server"`
	DB     DBStatsReply     `json:"db"`
	Engine EngineStatsReply `json:"engine"`
	// Snapshot is nil when the shard runs without warm restarts.
	Snapshot *SnapshotStats `json:"snapshot,omitempty"`
	// Maint is nil when the node runs without the write plane.
	Maint *MaintStats `json:"maint,omitempty"`
	// Freq is nil when the node runs without the frequency plane.
	Freq *FreqStats `json:"freq,omitempty"`
	// Hot is nil except on routers running hot-entry replication.
	Hot *HotStats `json:"hot,omitempty"`
}

// TraceRequest is the MsgTrace payload (JSON). Nil fields leave the
// corresponding setting unchanged, so an empty request just reads the
// current state.
type TraceRequest struct {
	// Trace turns per-query tracing on or off.
	Trace *bool `json:"trace,omitempty"`
	// SlowThresholdNs sets the slow-query log threshold; queries whose
	// total latency reaches it are logged with their full trace.
	// Negative disables the slow-query log.
	SlowThresholdNs *int64 `json:"slow_threshold_ns,omitempty"`
}

// TraceReply answers MsgTrace with the effective settings.
type TraceReply struct {
	Trace bool `json:"trace"`
	// SlowThresholdNs is the active threshold (-1 = slow log disabled).
	SlowThresholdNs int64 `json:"slow_threshold_ns"`
}

// TraceSpan is one trace span on the wire.
type TraceSpan struct {
	Kind    string `json:"kind"`
	StartNs int64  `json:"start_ns"` // offset from query begin
	DurNs   int64  `json:"dur_ns"`
	N1      int64  `json:"n1"`
	N2      int64  `json:"n2"`
	N3      int64  `json:"n3"`
	// Rows/Bytes/Allocs/Fsyncs are the span's cost bill (zero when
	// cost accounting did not run for this span).
	Rows   int64 `json:"rows,omitempty"`
	Bytes  int64 `json:"bytes,omitempty"`
	Allocs int64 `json:"allocs,omitempty"`
	Fsyncs int64 `json:"fsyncs,omitempty"`
	// Source names the peer that reported the span (empty = recorded
	// locally; a shard address for spans fanned back over the wire).
	Source string `json:"source,omitempty"`
	// Detail is the span's human-readable counter rendering.
	Detail string `json:"detail,omitempty"`
}

// SlowQuery is one slow-query log record: the query's identity, its
// closing report, and the full trace that explains where the time went.
type SlowQuery struct {
	ID     uint64 `json:"id"`
	UnixNs int64  `json:"unix_ns"`
	View   string `json:"view"`
	DurNs  int64  `json:"dur_ns"`
	// Reason says why the query was recorded: "slow" for a threshold
	// hit, or a degradation reason ("shard probe lost", "o3 failover
	// exhausted", …) for routed queries that lost part of the fleet —
	// those are recorded regardless of latency.
	Reason string      `json:"reason,omitempty"`
	Report Report      `json:"report"`
	Spans  []TraceSpan `json:"spans"`
}

// SlowlogRequest is the MsgSlowlog payload (JSON).
type SlowlogRequest struct {
	// Limit caps returned records (0 = all retained).
	Limit int `json:"limit,omitempty"`
}

// SlowlogReply answers MsgSlowlog, newest first.
type SlowlogReply struct {
	// Threshold is the active slow threshold (-1 = disabled).
	ThresholdNs int64       `json:"threshold_ns"`
	Queries     []SlowQuery `json:"queries"`
}

// HelloReply answers MsgHello when the versions agree.
type HelloReply struct {
	Version int `json:"version"`
}

// RefillReply answers MsgRefill with how many tuples the shard
// actually cached (admission policy and the F bound may decline some).
type RefillReply struct {
	Cached int `json:"cached"`
}

// UpdateReply answers MsgUpdate: how much of the batch applied, and —
// when maintenance ran — which bcp keys each view saw invalidated, so
// a router can fan the damage to the shards owning those keys. Keys
// are raw key bytes ([]byte → base64 under JSON, since bcp keys are
// binary).
type UpdateReply struct {
	// Applied counts ops that executed cleanly; Rows is the total
	// affected row count across them.
	Applied int `json:"applied"`
	Rows    int `json:"rows"`
	// Keys maps view name → affected bcp keys (maintenance runs only).
	Keys map[string][][]byte `json:"keys,omitempty"`
	// Wide marks views whose damage could not be bounded to keys — the
	// whole view's invalidation generation was bumped.
	Wide map[string]bool `json:"wide,omitempty"`
}

// HotSetReply answers MsgHotSet: how many keys the shard replicated
// and how many it dropped as stale (push Seq at or below the key's
// recorded invalidation floor).
type HotSetReply struct {
	Replicated int `json:"replicated"`
	Stale      int `json:"stale"`
	Tuples     int `json:"tuples"`
}

// HotInvalReply answers MsgHotInval.
type HotInvalReply struct {
	// Keys is how many keys had their replica floor raised (all of
	// them — the floor also gates future pushes for keys not cached).
	Keys int `json:"keys"`
}

// FilterReply answers MsgFilter with one view's presence-filter
// snapshot: the plain-bloom bitset (bit i set ⇔ counter i nonzero),
// the hash count, and the filter generation the snapshot was taken
// at. A router holds the bitset read-only and suppresses probes for
// keys it proves absent; Gen lets it discard the bitset when the
// shard resets the filter. Bits is empty when the view runs without
// the frequency plane.
type FilterReply struct {
	View   string `json:"view"`
	Bits   []byte `json:"bits,omitempty"`
	Hashes int    `json:"hashes,omitempty"`
	Gen    uint64 `json:"gen"`
	Keys   int    `json:"keys"`
}

// FreqStats is a node's frequency-plane counter snapshot, summed
// across views (nil in StatsReply when the plane is off).
type FreqStats struct {
	ProbesSuppressed     int64 `json:"probes_suppressed"`
	FilterPositives      int64 `json:"filter_positives"`
	FilterFalsePositives int64 `json:"filter_false_positives"`
	AdmitGateRejects     int64 `json:"admit_gate_rejects"`
	HotSetKeys           int64 `json:"hot_set_keys"`
	HotSetTuples         int64 `json:"hot_set_tuples"`
	HotInvalKeys         int64 `json:"hot_inval_keys"`
	// Sketch health (summed / maxed across views).
	SketchTouches   int64   `json:"sketch_touches"`
	SketchRotations int64   `json:"sketch_rotations"`
	SketchLoad      float64 `json:"sketch_load"`
}

// HotStats is a router's hot-replication counter snapshot (nil in
// FleetReply/StatsReply when the plane is off).
type HotStats struct {
	// Pushes / PushKeys / PushTuples count MsgHotSet fan-out.
	Pushes     int64 `json:"pushes"`
	PushKeys   int64 `json:"push_keys"`
	PushTuples int64 `json:"push_tuples"`
	PushFails  int64 `json:"push_fails"`
	// Invals / InvalKeys count MsgHotInval fan-out; InvalFails are
	// sends that failed after retry and degraded to a view-wide bump.
	Invals     int64 `json:"invals"`
	InvalKeys  int64 `json:"inval_keys"`
	InvalFails int64 `json:"inval_fails"`
	// ReplicaHits counts probes answered from the router's replica
	// cache without touching the owner shard.
	ReplicaHits   int64 `json:"replica_hits"`
	ReplicaKeys   int64 `json:"replica_keys"`
	ReplicaEvicts int64 `json:"replica_evicts"`
	// Suppressed counts owner probes skipped because the shard's
	// presence-filter bitset proved the key absent; FilterRefreshes
	// counts bitset refetches.
	Suppressed      int64 `json:"suppressed"`
	FilterRefreshes int64 `json:"filter_refreshes"`
	// TopKChurn is the space-saving tracker's eviction count — a
	// measure of how unstable the hot set is.
	TopKOffers int64 `json:"topk_offers"`
	TopKChurn  int64 `json:"topk_churn"`
}

// InvalidateReply answers MsgInvalidate.
type InvalidateReply struct {
	// Keys is how many per-key generations were bumped; Wide is true
	// when the whole view was invalidated instead.
	Keys int  `json:"keys"`
	Wide bool `json:"wide"`
}

// ShardMapReply is the serialized shard map: the epoch stamping every
// probe/refill, the virtual-node count, and the shard addresses in
// ring order (index = shard id).
type ShardMapReply struct {
	Epoch  uint64   `json:"epoch"`
	VNodes int      `json:"vnodes"`
	Shards []string `json:"shards"`
}

// ShardInfo is one shard's row in a router's MsgShards answer.
type ShardInfo struct {
	Addr  string `json:"addr"`
	Up    bool   `json:"up"`
	Epoch uint64 `json:"epoch"`
	Error string `json:"error,omitempty"`
	// Views carries the shard's view occupancy/hit-probability so
	// `pmvcli shards` can show per-shard cache health.
	Views []ViewInfo `json:"views,omitempty"`
	// Snapshot carries the shard's warm-restart health (nil when the
	// shard runs without snapshots).
	Snapshot *SnapshotStats `json:"snapshot,omitempty"`
}

// ShardsReply answers MsgShards on a router.
type ShardsReply struct {
	Epoch  uint64      `json:"epoch"`
	VNodes int         `json:"vnodes"`
	Shards []ShardInfo `json:"shards"`
}

// TraceGetRequest is the MsgTraceGet payload (JSON), addressed to a
// router's trace store.
type TraceGetRequest struct {
	// ID selects one assembled trace; 0 lists retained trace ids.
	ID uint64 `json:"id,omitempty"`
}

// AssembledTrace is one routed query's reconstructed cross-shard
// timeline: the router's own spans plus every shard span report,
// ordered by start offset, each tagged with its Source shard.
type AssembledTrace struct {
	ID     uint64 `json:"id"`
	View   string `json:"view"`
	UnixNs int64  `json:"unix_ns"`
	DurNs  int64  `json:"dur_ns"`
	// Reason is set when the query was recorded for degradation rather
	// than (or in addition to) latency.
	Reason string      `json:"reason,omitempty"`
	Report Report      `json:"report"`
	Spans  []TraceSpan `json:"spans"`
	// Cost is the query's aggregate resource bill across all spans.
	CostRows   int64 `json:"cost_rows"`
	CostBytes  int64 `json:"cost_bytes"`
	CostAllocs int64 `json:"cost_allocs"`
	CostFsyncs int64 `json:"cost_fsyncs"`
}

// TraceGetReply answers MsgTraceGet.
type TraceGetReply struct {
	Found bool `json:"found"`
	// Trace is the assembled trace when Found.
	Trace *AssembledTrace `json:"trace,omitempty"`
	// Recent lists retained trace ids (newest first) when ID was 0 or
	// unknown, so an operator can pick one.
	Recent []uint64 `json:"recent,omitempty"`
}

// FleetShard is one shard's row in the federated fleet view: reachable
// or not, its shard-map epoch, and — when up — its full stats reply so
// snapshot freshness and maint backlog federate through one endpoint.
type FleetShard struct {
	Addr  string      `json:"addr"`
	Up    bool        `json:"up"`
	Error string      `json:"error,omitempty"`
	Epoch uint64      `json:"epoch"`
	Stats *StatsReply `json:"stats,omitempty"`
	// Health is the router's live tail-tolerance score for this shard;
	// absent when the plane is disabled.
	Health *ShardHealth `json:"health,omitempty"`
}

// ShardHealth is the router's view of one shard's health: the latency
// digest, phi-accrual suspicion, breaker state, and the tail-plane
// counters (heartbeats, hedges, trips).
type ShardHealth struct {
	EwmaMs      float64 `json:"ewma_ms"`       // EWMA probe/heartbeat round trip
	DevMs       float64 `json:"dev_ms"`        // EWMA absolute deviation
	Phi         float64 `json:"phi"`           // phi-accrual suspicion (0 = healthy)
	ConsecFails int64   `json:"consec_fails"`  // consecutive failed interactions
	Breaker     string  `json:"breaker"`       // closed | open | half-open
	Beats       int64   `json:"beats"`         // heartbeats sent
	BeatFails   int64   `json:"beat_fails"`    // heartbeats failed
	HedgesSent  int64   `json:"hedges_sent"`   // hedge probes launched
	HedgeWins   int64   `json:"hedge_wins"`    // races the hedge won
	Trips       int64   `json:"breaker_trips"` // transitions to open
	Skips       int64   `json:"breaker_skips"` // probes skipped while open
}

// FleetReply answers MsgFleet on a router: the router's own counters
// plus every shard's scraped stats and fleet-wide aggregates.
type FleetReply struct {
	Epoch  uint64       `json:"epoch"`
	VNodes int          `json:"vnodes"`
	Router ServerStats  `json:"router"`
	Shards []FleetShard `json:"shards"`
	// Hot is the router's hot-replication counters (nil when off).
	Hot *HotStats `json:"hot,omitempty"`
	// Aggregates across reachable shards.
	ShardsUp        int     `json:"shards_up"`
	ShardsDown      int     `json:"shards_down"`
	ShardsStale     int     `json:"shards_stale"`      // epoch behind the router's
	FleetQueries    int64   `json:"fleet_queries"`     // sum of shard query counts
	FleetRows       int64   `json:"fleet_rows"`        // sum of shard row counts
	FleetErrors     int64   `json:"fleet_errors"`      // sum of shard error counts
	MaintBacklog    int64   `json:"maint_backlog"`     // sum of shard ingest queue depths
	OldestSnapshotS float64 `json:"oldest_snapshot_s"` // stalest shard snapshot age (-1 = a shard never wrote one)
}

// ViewStatsEntry flattens one view's core counters for MsgViewStats.
// (Defined here rather than reusing core.Stats so the client package
// does not link the engine.)
type ViewStatsEntry struct {
	Name               string  `json:"name"`
	Queries            int64   `json:"queries"`
	QueryHits          int64   `json:"query_hits"`
	HitProb            float64 `json:"hit_prob"`
	PartsProbed        int64   `json:"parts_probed"`
	PartHits           int64   `json:"part_hits"`
	PartialTuples      int64   `json:"partial_tuples"`
	EntriesCreated     int64   `json:"entries_created"`
	EntriesEvicted     int64   `json:"entries_evicted"`
	TuplesCached       int64   `json:"tuples_cached"`
	TuplesEvicted      int64   `json:"tuples_evicted"`
	TuplesPurged       int64   `json:"tuples_purged"`
	InsertsSeen        int64   `json:"inserts_seen"`
	DeletesSeen        int64   `json:"deletes_seen"`
	UpdatesSeen        int64   `json:"updates_seen"`
	UpdatesSkipped     int64   `json:"updates_skipped"`
	EntriesInvalidated int64   `json:"entries_invalidated"`
	TuplesInvalidated  int64   `json:"tuples_invalidated"`
	KeyGenBumps        int64   `json:"key_gen_bumps"`
	ViewGenBumps       int64   `json:"view_gen_bumps"`
	MaintTimeNs        int64   `json:"maint_time_ns"`
	LockWaitTimeNs     int64   `json:"lock_wait_time_ns"`
	O3TimeNs           int64   `json:"o3_time_ns"`
	DegradedQueries    int64   `json:"degraded_queries"`
	DeadlineQueries    int64   `json:"deadline_queries"`
	PartialOnlyQueries int64   `json:"partial_only_queries"`
	// Frequency plane (zero when off).
	ProbesSuppressed     int64 `json:"probes_suppressed,omitempty"`
	FilterPositives      int64 `json:"filter_positives,omitempty"`
	FilterFalsePositives int64 `json:"filter_false_positives,omitempty"`
	AdmitGateRejects     int64 `json:"admit_gate_rejects,omitempty"`
	HotSetKeys           int64 `json:"hot_set_keys,omitempty"`
	HotSetTuples         int64 `json:"hot_set_tuples,omitempty"`
	HotInvalKeys         int64 `json:"hot_inval_keys,omitempty"`
	// Occupancy state: live entries/tuples/bytes against the L bound.
	Entries    int     `json:"entries"`
	MaxEntries int     `json:"max_entries"`
	Occupancy  float64 `json:"occupancy"`
	Tuples     int     `json:"tuples"`
	Bytes      int     `json:"bytes"`
}

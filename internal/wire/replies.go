package wire

import (
	"pmv/internal/expr"
	"pmv/internal/value"
)

// Admin replies travel as JSON inside a MsgReply frame. They are
// defined here (not in the server) so the client package can decode
// them without linking the engine.

// ViewInfo describes one partial materialized view. Template is
// included so remote tools (pmvcli -addr) can bind queries without
// opening the database directory.
type ViewInfo struct {
	Name         string         `json:"name"`
	Template     *expr.Template `json:"template"`
	MaxEntries   int            `json:"max_entries"`
	TuplesPerBCP int            `json:"tuples_per_bcp"`
	Policy       string         `json:"policy"`
	Entries      int            `json:"entries"`
	Tuples       int            `json:"tuples"`
	Bytes        int            `json:"bytes"`
	HitProb      float64        `json:"hit_prob"`
}

// TableInfo describes one base relation.
type TableInfo struct {
	Name    string `json:"name"`
	Columns int    `json:"columns"`
	Indexes int    `json:"indexes"`
	Tuples  int64  `json:"tuples"`
}

// ColumnInfo is one column of a schema.
type ColumnInfo struct {
	Name string     `json:"name"`
	Type value.Type `json:"type"`
}

// IndexInfo is one secondary index of a schema.
type IndexInfo struct {
	Name string   `json:"name"`
	Cols []string `json:"cols"`
}

// SchemaReply answers MsgSchema.
type SchemaReply struct {
	Columns []ColumnInfo `json:"columns"`
	Indexes []IndexInfo  `json:"indexes"`
}

// CountReply answers MsgCount.
type CountReply struct {
	Count int64 `json:"count"`
}

// PeekReply answers MsgPeek.
type PeekReply struct {
	Rows []value.Tuple `json:"rows"`
}

// OKReply answers side-effect commands (analyze, checkpoint).
type OKReply struct {
	OK bool `json:"ok"`
}

// HistSnapshot summarizes one latency histogram (nanoseconds).
type HistSnapshot struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// ServerStats is the service layer's counter snapshot.
type ServerStats struct {
	SessionsTotal   int64 `json:"sessions_total"`
	SessionsActive  int64 `json:"sessions_active"`
	Queries         int64 `json:"queries"`
	Rows            int64 `json:"rows"`
	PartialRows     int64 `json:"partial_rows"`
	Shed            int64 `json:"shed"`
	DeadlineExpired int64 `json:"deadline_expired"`
	Degraded        int64 `json:"degraded"`
	PartialOnly     int64 `json:"partial_only"`
	Errors          int64 `json:"errors"`

	// PartialPhase times Operations O1+O2 (time to the last partial
	// row), ExecPhase times Operation O3, Total times whole queries.
	PartialPhase HistSnapshot `json:"partial_phase"`
	ExecPhase    HistSnapshot `json:"exec_phase"`
	Total        HistSnapshot `json:"total"`
}

// EngineStatsReply mirrors the engine's robustness counters.
type EngineStatsReply struct {
	LockRetries     int64 `json:"lock_retries"`
	LockTimeouts    int64 `json:"lock_timeouts"`
	DegradedQueries int64 `json:"degraded_queries"`
	TornPageRepairs int64 `json:"torn_page_repairs"`
}

// DBStatsReply mirrors the database-level counters.
type DBStatsReply struct {
	BufferHits     int64 `json:"buffer_hits"`
	BufferMisses   int64 `json:"buffer_misses"`
	PhysicalReads  int64 `json:"physical_reads"`
	PhysicalWrites int64 `json:"physical_writes"`
	ViewBytes      int   `json:"view_bytes"`
}

// StatsReply answers MsgStats.
type StatsReply struct {
	Server ServerStats      `json:"server"`
	DB     DBStatsReply     `json:"db"`
	Engine EngineStatsReply `json:"engine"`
}

// trace.go defines the wire surface of the cluster observability
// plane: the trace context carried in-band with query/probe/exec/
// refill/update frames (Dapper-style — a trace id, the sender's span
// id, and a sampling bit), the MsgTraced request wrapper that carries
// it, and the MsgSpans response frame a traced peer uses to piggyback
// its span summary back to the caller just before closing the request.
//
// The context costs zero bytes when tracing is off: an untraced
// request is the plain inner frame, byte-identical to protocol v2's.
// Only when a trace is sampled does the sender wrap the request in
// MsgTraced, adding 18 bytes. Version 3 of the protocol gates the new
// frames — a v2 peer never sees them because the hello handshake
// rejects the session first.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Observability message types. Requests continue the 0x0c sequence
// (0x13/0x14 are the write plane's), responses the 0x84 one.
const (
	// MsgTraced wraps one request frame with a trace context: payload =
	// TraceContext (17 bytes) ‖ inner type byte ‖ inner payload. The
	// receiver serves the inner request exactly as if it had arrived
	// bare, parents its own spans under the context, and piggybacks a
	// MsgSpans frame onto the response. Nesting is rejected.
	MsgTraced byte = 0x15
	// MsgTraceGet asks a router for one assembled cross-shard trace
	// (JSON TraceGetRequest payload; answered with a MsgReply
	// TraceGetReply). ID 0 lists the ids the trace store retains.
	MsgTraceGet byte = 0x16
	// MsgFleet asks a router for the federated fleet view: per-shard
	// health, epoch, snapshot freshness, and maint backlog aggregated
	// from every shard's stats (empty payload; answered with a MsgReply
	// FleetReply).
	MsgFleet byte = 0x17

	// MsgSpans carries a traced peer's span summary: payload = trace id
	// (u64) ‖ span count (u16) ‖ count × SpanRecord. It is emitted at
	// most once per traced request, immediately before the closing
	// MsgDone/MsgReply frame, and never for untraced requests.
	MsgSpans byte = 0x88
)

// TraceContext is the wire trace context: enough for a shard's spans
// to parent correctly under the router's (and the router's under the
// client's), nothing more. Assembly happens at the trace's root from
// the piggybacked MsgSpans reports.
type TraceContext struct {
	// TraceID identifies the whole distributed trace (nonzero).
	TraceID uint64
	// ParentSpan is the sender's span id — the id the receiver's spans
	// hang under (0 = the receiver is the root's direct child).
	ParentSpan uint64
	// Sampled tells the receiver to record and report spans. A context
	// with Sampled clear still propagates the id for log correlation.
	Sampled bool
}

// TraceContextLen is the encoded size of a TraceContext.
const TraceContextLen = 17

// tcSampled is the only defined trace-context flag bit.
const tcSampled byte = 1 << 0

// AppendTraceContext appends the 17-byte encoding of tc to b.
func AppendTraceContext(b []byte, tc TraceContext) []byte {
	b = binary.BigEndian.AppendUint64(b, tc.TraceID)
	b = binary.BigEndian.AppendUint64(b, tc.ParentSpan)
	var fl byte
	if tc.Sampled {
		fl |= tcSampled
	}
	return append(b, fl)
}

// DecodeTraceContext parses exactly one encoded TraceContext,
// rejecting unknown flag bits, a zero trace id, and any length
// mismatch.
func DecodeTraceContext(b []byte) (TraceContext, error) {
	var tc TraceContext
	if len(b) != TraceContextLen {
		return tc, fmt.Errorf("wire: trace context is %d bytes, want %d", len(b), TraceContextLen)
	}
	fl := b[16]
	if fl&^tcSampled != 0 {
		return tc, fmt.Errorf("wire: unknown trace-context flags 0x%02x", fl)
	}
	tc.TraceID = binary.BigEndian.Uint64(b)
	tc.ParentSpan = binary.BigEndian.Uint64(b[8:])
	tc.Sampled = fl&tcSampled != 0
	if tc.TraceID == 0 {
		return tc, fmt.Errorf("wire: zero trace id")
	}
	return tc, nil
}

// EncodeTraced wraps an encoded inner request in a MsgTraced payload.
func EncodeTraced(tc TraceContext, inner byte, payload []byte) ([]byte, error) {
	if inner == MsgTraced {
		return nil, fmt.Errorf("wire: nested traced frame")
	}
	if tc.TraceID == 0 {
		return nil, fmt.Errorf("wire: zero trace id")
	}
	b := make([]byte, 0, TraceContextLen+1+len(payload))
	b = AppendTraceContext(b, tc)
	b = append(b, inner)
	b = append(b, payload...)
	if len(b)+1 > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeTraced parses a MsgTraced payload into its context, the inner
// request type, and the inner payload (a subslice of b).
func DecodeTraced(b []byte) (TraceContext, byte, []byte, error) {
	if len(b) < TraceContextLen+1 {
		return TraceContext{}, 0, nil, fmt.Errorf("wire: short traced frame (%d bytes)", len(b))
	}
	tc, err := DecodeTraceContext(b[:TraceContextLen])
	if err != nil {
		return TraceContext{}, 0, nil, err
	}
	inner := b[TraceContextLen]
	if inner == MsgTraced {
		return TraceContext{}, 0, nil, fmt.Errorf("wire: nested traced frame")
	}
	return tc, inner, b[TraceContextLen+1:], nil
}

// SpanRecord is one span in a MsgSpans frame: the kind's numeric code
// (obs.Kind), its timing relative to the reporting peer's own trace
// begin, the per-kind counters, and the cost bill.
type SpanRecord struct {
	Kind    uint8
	StartNs int64
	DurNs   int64
	N1      int64
	N2      int64
	N3      int64
	Rows    int64
	Bytes   int64
	Allocs  int64
	Fsyncs  int64
}

// spanRecLen is one encoded SpanRecord: kind byte + nine i64 fields.
const spanRecLen = 1 + 9*8

// MaxSpansPerFrame bounds a MsgSpans frame; a traced request that
// records more reports the first MaxSpansPerFrame spans.
const MaxSpansPerFrame = 4096

// EncodeSpans encodes a MsgSpans payload. Spans beyond
// MaxSpansPerFrame are dropped (the frame is a summary, not a log).
func EncodeSpans(traceID uint64, recs []SpanRecord) ([]byte, error) {
	if traceID == 0 {
		return nil, fmt.Errorf("wire: zero trace id")
	}
	if len(recs) > MaxSpansPerFrame {
		recs = recs[:MaxSpansPerFrame]
	}
	b := make([]byte, 0, 10+len(recs)*spanRecLen)
	b = binary.BigEndian.AppendUint64(b, traceID)
	b = binary.BigEndian.AppendUint16(b, uint16(len(recs)))
	for _, r := range recs {
		b = append(b, r.Kind)
		for _, v := range [...]int64{r.StartNs, r.DurNs, r.N1, r.N2, r.N3, r.Rows, r.Bytes, r.Allocs, r.Fsyncs} {
			b = binary.BigEndian.AppendUint64(b, uint64(v))
		}
	}
	if len(b)+1 > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeSpans parses a MsgSpans payload, rejecting any length that is
// not exactly header + count × record.
func DecodeSpans(b []byte) (uint64, []SpanRecord, error) {
	if len(b) < 10 {
		return 0, nil, fmt.Errorf("wire: short spans header (%d bytes)", len(b))
	}
	traceID := binary.BigEndian.Uint64(b)
	if traceID == 0 {
		return 0, nil, fmt.Errorf("wire: zero trace id")
	}
	n := int(binary.BigEndian.Uint16(b[8:]))
	b = b[10:]
	if len(b) != n*spanRecLen {
		return 0, nil, fmt.Errorf("wire: spans payload is %d bytes, want %d for %d spans", len(b), n*spanRecLen, n)
	}
	recs := make([]SpanRecord, n)
	for i := range recs {
		r := &recs[i]
		r.Kind = b[0]
		b = b[1:]
		for _, dst := range [...]*int64{&r.StartNs, &r.DurNs, &r.N1, &r.N2, &r.N3, &r.Rows, &r.Bytes, &r.Allocs, &r.Fsyncs} {
			*dst = int64(binary.BigEndian.Uint64(b))
			b = b[8:]
		}
	}
	return traceID, recs, nil
}

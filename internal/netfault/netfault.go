// Package netfault injects network faults into net.Conn traffic, the
// network-plane sibling of internal/vfs: every decision comes from one
// seeded generator, so a seed fully determines the fault sequence for
// a deterministic workload, and faults are armed as composable rules.
//
// Three entry points, smallest to largest:
//
//   - WrapConn wraps one net.Conn so its reads and writes pass through
//     the injector (shaping + faults).
//   - Listener wraps a net.Listener so every accepted conn is wrapped.
//   - Proxy is an in-process TCP proxy: clients dial it, it dials the
//     real server, and all bytes in both directions flow through one
//     wrapped conn. This is how the torture harness sits between real
//     client and server processes without touching either's sockets.
//
// The fault model covers what flaky networks actually do to a
// length-prefixed protocol: added latency and jittered delays,
// bandwidth throttling, connection resets mid-frame, single-bit
// payload corruption (caught by the wire checksum), blackholes (the
// peer goes silent but the conn stays open — the slowloris shape), and
// partial writes (a prefix of the buffer lands, then the conn dies).
package netfault

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultKind selects what an armed Rule does when it fires.
type FaultKind uint8

const (
	// FaultReset closes the connection immediately; the peer sees a
	// broken stream, typically mid-frame.
	FaultReset FaultKind = iota
	// FaultCorrupt flips one random bit in the data moved by the
	// operation.
	FaultCorrupt
	// FaultBlackhole silences the connection without closing it: from
	// then on reads absorb the peer's bytes without delivering them and
	// writes vanish. Only deadlines or a close get a peer unstuck.
	FaultBlackhole
	// FaultPartialWrite delivers a strict prefix of the buffer, then
	// closes the connection (a mid-frame tear at byte granularity).
	FaultPartialWrite
)

// String names the fault kind for diagnostics.
func (k FaultKind) String() string {
	switch k {
	case FaultReset:
		return "reset"
	case FaultCorrupt:
		return "corrupt"
	case FaultBlackhole:
		return "blackhole"
	case FaultPartialWrite:
		return "partial-write"
	default:
		return fmt.Sprintf("fault(%d)", k)
	}
}

// Op classifies conn operations for rule matching.
type Op uint8

// Operations a Rule can match.
const (
	OpRead Op = iota
	OpWrite
	// OpAny matches both directions.
	OpAny
)

// Rule arms one failpoint, mirroring vfs.Rule: it fires on operations
// matching Op when either its scripted trigger (AfterOps matching
// operations seen, injector-wide) or its probabilistic trigger (Prob
// per matching operation) goes off.
type Rule struct {
	Kind FaultKind
	// Op restricts which operations the rule matches (OpAny = all).
	Op Op
	// AfterOps fires the rule on the Nth matching operation (1-based).
	// Zero disables the scripted trigger.
	AfterOps int64
	// Prob fires the rule on each matching operation with this
	// probability, using the injector's seeded generator.
	Prob float64
	// Sticky keeps the rule armed after it fires.
	Sticky bool
}

// Shape is always-on traffic shaping applied to every operation
// (faults ride on top of it).
type Shape struct {
	// Latency delays every read and write.
	Latency time.Duration
	// Jitter adds a seeded-random extra delay in [0, Jitter).
	Jitter time.Duration
	// BytesPerSec caps throughput per conn direction (0 = unlimited),
	// modeled as a post-transfer sleep proportional to bytes moved.
	BytesPerSec int

	// RampLatency, when nonzero, adds extra latency that grows linearly
	// from zero to RampLatency over RampOver (clocked from the shape's
	// install) and then holds — the graying-shard signature, a node that
	// degrades instead of dying. RampOver <= 0 means the full ramp is in
	// effect immediately.
	RampLatency time.Duration
	RampOver    time.Duration

	// FlapUp/FlapDown, when both are nonzero, gate every shaping delay
	// (Latency, Jitter, ramp) on a square wave clocked from the shape's
	// install: shaped for FlapUp, clean for FlapDown, repeating — a
	// flapping link that looks healthy exactly long enough to be trusted
	// again.
	FlapUp   time.Duration
	FlapDown time.Duration
}

// Stats counts injected faults by kind, plus traffic totals.
type Stats struct {
	Conns         int64
	Ops           int64
	BytesRead     int64
	BytesWritten  int64
	Resets        int64
	Corruptions   int64
	Blackholes    int64
	PartialWrites int64
}

// Injector owns the fault schedule shared by every conn it wraps.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	shape   Shape
	shapeAt time.Time // when the current shape was installed (ramp/flap clock)
	rules   []Rule
	matched []int64
	fired   []bool
	stats   Stats
}

// NewInjector returns an injector with no rules armed and no shaping.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Add arms one rule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
	in.matched = append(in.matched, 0)
	in.fired = append(in.fired, false)
}

// Clear disarms every rule and resets their scripted-trigger state;
// shaping and stats are untouched. Conns already blackholed stay dead
// (the silence is per-conn), but fresh conns run clean until new rules
// are armed — this is how a chaos driver heals a link.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
	in.matched = nil
	in.fired = nil
}

// SetShape installs always-on traffic shaping and restarts the
// ramp/flap clock.
func (in *Injector) SetShape(s Shape) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.shape = s
	in.shapeAt = time.Now()
}

// Stats returns the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// decide records one operation and returns the fault to apply plus the
// shaping delay to sleep before it. A nil injector never faults.
func (in *Injector) decide(op Op) (kind FaultKind, hit bool, delay time.Duration) {
	if in == nil {
		return 0, false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Ops++
	delay = in.shape.Latency
	if in.shape.Jitter > 0 {
		delay += time.Duration(in.rng.Int63n(int64(in.shape.Jitter)))
	}
	if in.shape.RampLatency > 0 || (in.shape.FlapUp > 0 && in.shape.FlapDown > 0) {
		elapsed := time.Since(in.shapeAt)
		if r := in.shape.RampLatency; r > 0 {
			if over := in.shape.RampOver; over > 0 && elapsed < over {
				r = time.Duration(int64(r) * int64(elapsed) / int64(over))
			}
			delay += r
		}
		if up, down := in.shape.FlapUp, in.shape.FlapDown; up > 0 && down > 0 {
			if elapsed%(up+down) >= up {
				delay = 0 // clean half of the flap cycle
			}
		}
	}
	for i := range in.rules {
		r := &in.rules[i]
		if r.Op != OpAny && r.Op != op {
			continue
		}
		in.matched[i]++
		if in.fired[i] && !r.Sticky {
			continue
		}
		trigger := (r.AfterOps > 0 && in.matched[i] >= r.AfterOps) ||
			(r.Prob > 0 && in.rng.Float64() < r.Prob)
		if !trigger {
			continue
		}
		in.fired[i] = true
		switch r.Kind {
		case FaultReset:
			in.stats.Resets++
		case FaultCorrupt:
			in.stats.Corruptions++
		case FaultBlackhole:
			in.stats.Blackholes++
		case FaultPartialWrite:
			in.stats.PartialWrites++
		}
		return r.Kind, true, delay
	}
	return 0, false, delay
}

// intn returns a seeded random int in [0, n).
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return in.rng.Intn(n)
}

// throttleSleep returns the bandwidth-cap sleep for moving n bytes.
func (in *Injector) throttleSleep(n int) time.Duration {
	if in == nil || n <= 0 {
		return 0
	}
	in.mu.Lock()
	bps := in.shape.BytesPerSec
	in.mu.Unlock()
	if bps <= 0 {
		return 0
	}
	return time.Duration(int64(n)) * time.Second / time.Duration(bps)
}

func (in *Injector) addRead(n int) {
	in.mu.Lock()
	in.stats.BytesRead += int64(n)
	in.mu.Unlock()
}

func (in *Injector) addWrite(n int) {
	in.mu.Lock()
	in.stats.BytesWritten += int64(n)
	in.mu.Unlock()
}

// Conn is a fault-injecting net.Conn wrapper. It is safe for the
// usual net.Conn concurrency (one reader plus one writer).
type Conn struct {
	net.Conn
	inj        *Injector
	blackholed atomic.Bool
	closeOnce  sync.Once
	closeErr   error
}

// WrapConn wraps c so its traffic passes through inj.
func WrapConn(c net.Conn, inj *Injector) *Conn {
	if inj != nil {
		inj.mu.Lock()
		inj.stats.Conns++
		inj.mu.Unlock()
	}
	return &Conn{Conn: c, inj: inj}
}

// Read delivers bytes from the peer, subject to shaping and faults. A
// blackholed conn absorbs the peer's bytes without delivering any:
// the read blocks until the conn's read deadline fires or the conn is
// closed, exactly like a peer that went silent.
func (c *Conn) Read(p []byte) (int, error) {
	kind, hit, delay := c.inj.decide(OpRead)
	if delay > 0 {
		time.Sleep(delay)
	}
	if hit {
		switch kind {
		case FaultReset:
			c.Close()
			return 0, fmt.Errorf("netfault: injected reset on read: %w", net.ErrClosed)
		case FaultBlackhole:
			c.blackholed.Store(true)
		}
	}
	if c.blackholed.Load() {
		// Absorb and discard until deadline or close.
		buf := make([]byte, 4096)
		for {
			if _, err := c.Conn.Read(buf); err != nil {
				return 0, err
			}
		}
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.inj.addRead(n)
		if hit && kind == FaultCorrupt {
			p[c.inj.intn(n)] ^= 1 << uint(c.inj.intn(8))
		}
		if sl := c.inj.throttleSleep(n); sl > 0 {
			time.Sleep(sl)
		}
	}
	return n, err
}

// Write sends bytes to the peer, subject to shaping and faults. The
// caller's buffer is never modified: corruption happens on a copy.
func (c *Conn) Write(p []byte) (int, error) {
	kind, hit, delay := c.inj.decide(OpWrite)
	if delay > 0 {
		time.Sleep(delay)
	}
	if hit {
		switch kind {
		case FaultReset:
			c.Close()
			return 0, fmt.Errorf("netfault: injected reset on write: %w", net.ErrClosed)
		case FaultBlackhole:
			c.blackholed.Store(true)
		case FaultPartialWrite:
			n := c.inj.intn(len(p)) // strict prefix
			if n > 0 {
				if m, err := c.Conn.Write(p[:n]); err != nil {
					return m, err
				}
				c.inj.addWrite(n)
			}
			c.Close()
			return n, fmt.Errorf("netfault: injected partial write (%d/%d bytes): %w",
				n, len(p), net.ErrClosed)
		}
	}
	if c.blackholed.Load() {
		// The bytes vanish; the writer believes they were sent.
		return len(p), nil
	}
	if hit && kind == FaultCorrupt && len(p) > 0 {
		dirty := append([]byte(nil), p...)
		dirty[c.inj.intn(len(dirty))] ^= 1 << uint(c.inj.intn(8))
		p = dirty
	}
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.inj.addWrite(n)
		if sl := c.inj.throttleSleep(n); sl > 0 {
			time.Sleep(sl)
		}
	}
	return n, err
}

// Close closes the underlying conn once (faults close it internally;
// user code closes it again harmlessly).
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.Conn.Close() })
	return c.closeErr
}

// Listener wraps a net.Listener so every accepted conn is
// fault-injected. Useful for torturing a server in-process without a
// proxy hop.
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener wraps ln with the fault schedule of inj.
func WrapListener(ln net.Listener, inj *Injector) *Listener {
	return &Listener{Listener: ln, inj: inj}
}

// Accept accepts the next conn, wrapped.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.inj), nil
}

// Proxy is an in-process fault-injecting TCP proxy. Each accepted
// client conn gets one upstream conn; all bytes both ways flow through
// the fault-wrapped client side, so one wrap covers requests and
// responses alike.
type Proxy struct {
	inj      *Injector
	upstream string
	ln       net.Listener

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup
}

// NewProxy starts a proxy on addr (e.g. "127.0.0.1:0") forwarding to
// upstream.
func NewProxy(addr, upstream string, inj *Injector) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{inj: inj, upstream: upstream, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		up, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
		if err != nil {
			down.Close()
			continue
		}
		faulty := WrapConn(down, p.inj)
		if !p.track(faulty, up) {
			faulty.Close()
			up.Close()
			return
		}
		p.wg.Add(2)
		go p.pipe(up, faulty)
		go p.pipe(faulty, up)
	}
}

// track registers the pair for Close; false once the proxy is closing.
func (p *Proxy) track(a, b net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closing {
		return false
	}
	p.conns[a] = struct{}{}
	p.conns[b] = struct{}{}
	return true
}

// pipe copies src to dst until either side dies, then tears both down
// (a proxy never half-closes: real middleboxes kill the whole flow).
func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	buf := make([]byte, 32<<10)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if rerr != nil {
			break
		}
	}
	src.Close()
	dst.Close()
	p.mu.Lock()
	delete(p.conns, src)
	delete(p.conns, dst)
	p.mu.Unlock()
}

// Close stops accepting, severs every live flow, and waits for the
// pipe goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closing = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

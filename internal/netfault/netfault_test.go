package netfault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair returns two ends of a loopback TCP conn, the a-side wrapped
// with inj.
func pipePair(t *testing.T, inj *Injector) (wrapped *Conn, peer net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { a.Close(); r.c.Close() })
	return WrapConn(a, inj), r.c
}

func TestPassthroughClean(t *testing.T) {
	c, peer := pipePair(t, NewInjector(1))
	msg := bytes.Repeat([]byte("abc"), 1000)
	go func() {
		peer.Write(msg)
		peer.Close()
	}()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("clean injector changed bytes")
	}
}

func TestResetFiresOnSchedule(t *testing.T) {
	inj := NewInjector(2)
	inj.Add(Rule{Kind: FaultReset, Op: OpWrite, AfterOps: 3})
	c, peer := pipePair(t, inj)
	go io.Copy(io.Discard, peer)
	var err error
	writes := 0
	for i := 0; i < 10; i++ {
		if _, err = c.Write([]byte("x")); err != nil {
			break
		}
		writes++
	}
	if err == nil {
		t.Fatal("scheduled reset never fired")
	}
	if writes != 2 {
		t.Fatalf("reset after %d writes, want 2", writes)
	}
	if !errors.Is(err, net.ErrClosed) {
		t.Fatalf("reset error not net.ErrClosed: %v", err)
	}
	if inj.Stats().Resets != 1 {
		t.Fatalf("stats = %+v", inj.Stats())
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	inj := NewInjector(3)
	inj.Add(Rule{Kind: FaultCorrupt, Op: OpWrite, AfterOps: 1})
	c, peer := pipePair(t, inj)
	msg := bytes.Repeat([]byte{0x00}, 256)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, b := range got {
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", flipped)
	}
	for i, b := range msg {
		if b != 0 {
			t.Fatalf("caller buffer mutated at %d", i)
		}
	}
}

func TestBlackholeSilencesBothDirections(t *testing.T) {
	inj := NewInjector(4)
	inj.Add(Rule{Kind: FaultBlackhole, Op: OpRead, AfterOps: 1})
	c, peer := pipePair(t, inj)
	go peer.Write([]byte("hello"))
	// Reads absorb but never deliver; the deadline is the only way out.
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := c.Read(buf); n != 0 || !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read returned n=%d err=%v", n, err)
	}
	// Writes succeed but the bytes vanish.
	if _, err := c.Write([]byte("into the void")); err != nil {
		t.Fatalf("blackholed write errored: %v", err)
	}
	peer.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, err := peer.Read(buf); err == nil {
		t.Fatalf("peer received %d bytes through a blackhole", n)
	}
}

func TestPartialWriteTearsMidBuffer(t *testing.T) {
	inj := NewInjector(5)
	inj.Add(Rule{Kind: FaultPartialWrite, Op: OpWrite, AfterOps: 1})
	c, peer := pipePair(t, inj)
	msg := bytes.Repeat([]byte("q"), 4096)
	n, err := c.Write(msg)
	if err == nil {
		t.Fatal("partial write reported success")
	}
	if n >= len(msg) {
		t.Fatalf("partial write delivered %d of %d bytes", n, len(msg))
	}
	got, _ := io.ReadAll(peer)
	if len(got) != n {
		t.Fatalf("peer received %d bytes, writer reported %d", len(got), n)
	}
}

func TestShapeLatency(t *testing.T) {
	inj := NewInjector(6)
	inj.SetShape(Shape{Latency: 30 * time.Millisecond})
	c, peer := pipePair(t, inj)
	go func() {
		io.Copy(io.Discard, peer)
	}()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Fatalf("3 writes with 30ms latency took %v", d)
	}
}

func TestRampLatencyGrows(t *testing.T) {
	inj := NewInjector(8)
	inj.SetShape(Shape{RampLatency: 100 * time.Millisecond, RampOver: 10 * time.Second})
	// Drive the ramp clock by hand: at 25% of RampOver the added delay
	// must be 25% of RampLatency, and past RampOver it holds at full.
	at := func(elapsed time.Duration) time.Duration {
		inj.mu.Lock()
		inj.shapeAt = time.Now().Add(-elapsed)
		inj.mu.Unlock()
		_, _, d := inj.decide(OpRead)
		return d
	}
	// The clock reads real elapsed time, so allow a scheduling margin.
	if d := at(2500 * time.Millisecond); d < 25*time.Millisecond || d > 35*time.Millisecond {
		t.Fatalf("delay at 25%% of ramp = %v, want ~25ms", d)
	}
	if d := at(20 * time.Second); d != 100*time.Millisecond {
		t.Fatalf("delay past ramp = %v, want the full 100ms", d)
	}
	if d := at(0); d > 5*time.Millisecond {
		t.Fatalf("delay at ramp start = %v, want ~0", d)
	}
}

func TestRampWithoutOverIsImmediate(t *testing.T) {
	inj := NewInjector(9)
	inj.SetShape(Shape{RampLatency: 40 * time.Millisecond})
	if _, _, d := inj.decide(OpWrite); d != 40*time.Millisecond {
		t.Fatalf("RampOver=0 delay = %v, want the full ramp immediately", d)
	}
}

func TestFlapGatesShaping(t *testing.T) {
	inj := NewInjector(10)
	inj.SetShape(Shape{
		Latency: 30 * time.Millisecond,
		FlapUp:  100 * time.Millisecond, FlapDown: 100 * time.Millisecond,
	})
	at := func(elapsed time.Duration) time.Duration {
		inj.mu.Lock()
		inj.shapeAt = time.Now().Add(-elapsed)
		inj.mu.Unlock()
		_, _, d := inj.decide(OpRead)
		return d
	}
	if d := at(50 * time.Millisecond); d != 30*time.Millisecond {
		t.Fatalf("up-phase delay = %v, want the shaped 30ms", d)
	}
	if d := at(150 * time.Millisecond); d != 0 {
		t.Fatalf("down-phase delay = %v, want clean 0", d)
	}
	// The wave repeats: second cycle's up phase is shaped again.
	if d := at(250 * time.Millisecond); d != 30*time.Millisecond {
		t.Fatalf("second-cycle up-phase delay = %v, want 30ms", d)
	}
}

func TestProxyForwardsAndResets(t *testing.T) {
	// Echo server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	inj := NewInjector(7)
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String(), inj)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Clean round trip through the proxy.
	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through proxy: %q, %v", buf, err)
	}

	// Arm a sticky reset: the next flow dies and the client observes it.
	inj.Add(Rule{Kind: FaultReset, Op: OpAny, Prob: 1, Sticky: true})
	c2, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetDeadline(time.Now().Add(2 * time.Second))
	c2.Write([]byte("doomed"))
	if _, err := io.ReadFull(c2, buf); err == nil {
		t.Fatal("flow survived a sticky reset rule")
	}
	if inj.Stats().Resets == 0 {
		t.Fatalf("stats = %+v", inj.Stats())
	}
}

package freq

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSketchCountsAndWindow(t *testing.T) {
	s := NewSketch(SketchConfig{Depth: 4, Width: 256, Window: 40 * time.Millisecond})
	for i := 0; i < 10; i++ {
		s.Touch("hot")
	}
	s.Touch("cold")
	if got := s.Estimate("hot"); got < 10 {
		t.Fatalf("count-min underestimated: hot = %d, want >= 10", got)
	}
	if got := s.Estimate("cold"); got < 1 {
		t.Fatalf("count-min underestimated: cold = %d, want >= 1", got)
	}
	if got := s.Estimate("never"); got > 2 {
		t.Fatalf("absent key estimated %d with near-empty sketch", got)
	}
	// After two full windows of silence the estimate must decay to 0.
	time.Sleep(90 * time.Millisecond)
	if got := s.Estimate("hot"); got != 0 {
		t.Fatalf("windowed estimate did not decay: hot = %d after 2 windows", got)
	}
	st := s.Stats()
	if st.Touches != 11 || st.Rotations == 0 {
		t.Fatalf("stats = %+v, want 11 touches and >0 rotations", st)
	}
}

func TestSketchNeverUnderestimates(t *testing.T) {
	s := NewSketch(SketchConfig{Depth: 4, Width: 64, Window: time.Hour})
	truth := map[string]uint32{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k%d", i%97)
		truth[k]++
		s.Touch(k)
	}
	for k, n := range truth {
		if got := s.Estimate(k); got < n {
			t.Fatalf("estimate(%s) = %d < true count %d", k, got, n)
		}
	}
}

func TestFilterAddRemoveReset(t *testing.T) {
	f := NewFilter(128, 12, 8)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for live key %s", k)
		}
	}
	if f.Keys() != 100 {
		t.Fatalf("keys = %d, want 100", f.Keys())
	}
	// Removing must restore provable absence (no other key shares all
	// counter slots at this occupancy with overwhelming probability;
	// tolerate a handful of residual positives).
	for _, k := range keys[:50] {
		f.Remove(k)
	}
	residual := 0
	for _, k := range keys[:50] {
		if f.MayContain(k) {
			residual++
		}
	}
	if residual > 5 {
		t.Fatalf("%d/50 removed keys still reported present", residual)
	}
	for _, k := range keys[50:] {
		if !f.MayContain(k) {
			t.Fatalf("remove of other keys broke live key %s", k)
		}
	}
	gen := f.Gen()
	f.Reset()
	if f.Gen() != gen+1 || f.Keys() != 0 {
		t.Fatalf("reset: gen %d->%d keys %d", gen, f.Gen(), f.Keys())
	}
	for _, k := range keys {
		if f.MayContain(k) {
			t.Fatalf("key %s survived reset", k)
		}
	}
}

func TestFilterFalsePositiveRate(t *testing.T) {
	f := NewFilter(256, 12, 8)
	for i := 0; i < 256; i++ {
		f.Add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	// The bench bar is 1%; the design point is ~0.3%. Assert 1% with
	// full occupancy so the sizing can never silently regress past the
	// acceptance criterion.
	if rate := float64(fp) / probes; rate > 0.01 {
		t.Fatalf("false-positive rate %.4f > 0.01 at full occupancy", rate)
	}
}

func TestBitsetSnapshotAgrees(t *testing.T) {
	f := NewFilter(64, 12, 8)
	for i := 0; i < 64; i++ {
		f.Add(fmt.Sprintf("m-%d", i))
	}
	bits, hashes, gen, keys := f.Snapshot()
	b := NewBitset(bits, hashes, gen, keys)
	if b == nil {
		t.Fatal("snapshot did not round-trip into a bitset")
	}
	for i := 0; i < 64; i++ {
		if !b.MayContain(fmt.Sprintf("m-%d", i)) {
			t.Fatalf("bitset false negative for m-%d", i)
		}
	}
	// The bitset and the live filter must agree exactly on any key at
	// snapshot time (bit set iff counter nonzero, same hash family).
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if b.MayContain(k) != f.MayContain(k) {
			t.Fatalf("bitset and filter disagree on %s", k)
		}
	}
	if (*Bitset)(nil).MayContain("x") != true {
		t.Fatal("nil bitset must suppress nothing")
	}
	if NewBitset([]byte{1, 2, 3}, 8, 0, 0) != nil {
		t.Fatal("non-power-of-two bitset must be rejected")
	}
}

func TestTopKRanksHeavyHitters(t *testing.T) {
	tk := NewTopK(4)
	// 4 heavy keys among a stream of 400 distinct light ones.
	for round := 0; round < 50; round++ {
		for h := 0; h < 4; h++ {
			tk.Offer(fmt.Sprintf("hot-%d", h))
		}
		for l := 0; l < 8; l++ {
			tk.Offer(fmt.Sprintf("cold-%d-%d", round, l))
		}
	}
	top := tk.Top()
	if len(top) != 4 {
		t.Fatalf("top = %d keys, want 4", len(top))
	}
	seen := map[string]bool{}
	for _, kc := range top {
		seen[kc.Key] = true
	}
	for h := 0; h < 4; h++ {
		if !seen[fmt.Sprintf("hot-%d", h)] {
			t.Fatalf("hot-%d missing from top-k: %+v", h, top)
		}
	}
	offers, _ := tk.Stats()
	if offers != 50*12 {
		t.Fatalf("offers = %d, want %d", offers, 50*12)
	}
}

// TestConcurrentFrequencyPlane hammers all three structures from many
// goroutines; run under -race this is the satellite's sketch race
// test. Correctness assertion: the count-min lower bound must hold
// even under contention.
func TestConcurrentFrequencyPlane(t *testing.T) {
	s := NewSketch(SketchConfig{Depth: 4, Width: 512, Window: time.Hour})
	f := NewFilter(512, 12, 8)
	tk := NewTopK(8)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := fmt.Sprintf("k%d", i%31)
				s.Touch(k)
				s.Estimate(k)
				tk.Offer(k)
				switch i % 4 {
				case 0:
					f.Add(k)
				case 1:
					f.MayContain(k)
				case 2:
					f.Remove(k)
				default:
					f.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	// Every key k%31 was touched workers*perWorker/31-ish times; the
	// sketch may overestimate but never undercount.
	want := uint32(workers * perWorker / 31)
	if got := s.Estimate("k0"); got < want {
		t.Fatalf("concurrent touches lost: estimate(k0) = %d < %d", got, want)
	}
	if offers, _ := tk.Stats(); offers != workers*perWorker {
		t.Fatalf("topk lost offers: %d != %d", offers, workers*perWorker)
	}
}

// Package freq is the frequency plane: online popularity estimation
// for bcp keys. It holds three small data structures that together
// implement the paper's Section 3.5 popularity ranking online —
//
//   - Sketch, a windowed (two-epoch rotating) count-min sketch that
//     estimates per-key probe frequency over a sliding window,
//   - Filter, a per-view counting-bloom presence filter maintained on
//     every PMV entry insert/purge, with an exportable plain-bloom
//     bitset for router-side negative-probe suppression,
//   - TopK, a space-saving tracker of the hottest keys, feeding
//     hot-entry replication.
//
// All three are safe for concurrent use; the probe hot path pays one
// short mutex per touch. Sizing and error bounds are documented in
// DESIGN.md §4j.
package freq

import (
	"hash/maphash"
	"sync"
	"time"
)

// hashSeed is a fixed maphash seed so sketch/filter placements are
// deterministic across runs (the snapshot layer never persists these
// structures, so determinism is purely a debugging nicety).
var hashSeed = maphash.MakeSeed()

// hash2 derives two independent 32-bit hashes of key; row i of a
// depth-d structure uses h1 + i*h2 (Kirsch–Mitzenmacher double
// hashing, the standard trick that makes d hash functions cost one).
func hash2(key string) (uint32, uint32) {
	h := maphash.String(hashSeed, key)
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1 // odd, so it strides the whole table
	return h1, h2
}

// SketchConfig sizes a Sketch.
type SketchConfig struct {
	// Depth is the number of hash rows (default 4). The estimate error
	// probability falls exponentially in depth: P[err > εN] ≤ e^-depth.
	Depth int
	// Width is the number of counters per row (default 1024, rounded up
	// to a power of two). The additive error bound is ε = e/width of
	// the window's total touch count.
	Width int
	// Window is the rotation period (default 1s). Counts live in two
	// epochs — current and previous — and an estimate sums both, so the
	// effective sliding window covers between one and two periods.
	Window time.Duration
}

func (c *SketchConfig) fill() {
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.Width <= 0 {
		c.Width = 1024
	}
	// Round width up to a power of two so the row index is a mask.
	w := 1
	for w < c.Width {
		w <<= 1
	}
	c.Width = w
	if c.Window <= 0 {
		c.Window = time.Second
	}
}

// Sketch is a windowed count-min sketch. Touch increments the current
// epoch; Estimate reads current+previous, so a key's estimate decays
// to zero within two window periods of its last touch instead of
// growing without bound. Rotation is lazy — the first Touch or
// Estimate past the window boundary swaps the epochs — so an idle
// sketch costs nothing.
type Sketch struct {
	cfg  SketchConfig
	mask uint32

	mu         sync.Mutex
	cur, prev  []uint32 // depth*width counters each
	curStart   time.Time
	touches    int64 // lifetime touches (stats)
	rotations  int64
	curTouches int64 // touches in the current epoch
}

// NewSketch builds a sketch from cfg (zero values take defaults).
func NewSketch(cfg SketchConfig) *Sketch {
	cfg.fill()
	n := cfg.Depth * cfg.Width
	return &Sketch{
		cfg:      cfg,
		mask:     uint32(cfg.Width - 1),
		cur:      make([]uint32, n),
		prev:     make([]uint32, n),
		curStart: time.Now(),
	}
}

// rotateLocked swaps epochs when the window has elapsed. Counters from
// two windows ago are cleared, not summed — that is what bounds the
// estimate to a sliding window.
func (s *Sketch) rotateLocked(now time.Time) {
	for now.Sub(s.curStart) >= s.cfg.Window {
		s.cur, s.prev = s.prev, s.cur
		clear(s.cur)
		s.curStart = s.curStart.Add(s.cfg.Window)
		s.rotations++
		s.curTouches = 0
		if now.Sub(s.curStart) >= 2*s.cfg.Window {
			// Idle gap longer than the whole window: both epochs are
			// dead. Reset the clock instead of spinning through it.
			clear(s.prev)
			s.curStart = now
		}
	}
}

// Touch records one observation of key and returns its new windowed
// estimate (so callers gating on a threshold pay a single lock).
func (s *Sketch) Touch(key string) uint32 {
	h1, h2 := hash2(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotateLocked(time.Now())
	s.touches++
	s.curTouches++
	est := ^uint32(0)
	for d := 0; d < s.cfg.Depth; d++ {
		i := d*s.cfg.Width + int((h1+uint32(d)*h2)&s.mask)
		s.cur[i]++
		if v := s.cur[i] + s.prev[i]; v < est {
			est = v
		}
	}
	return est
}

// Estimate returns the windowed count-min estimate for key: the
// minimum over rows of current+previous epoch counters. It never
// underestimates a key's true windowed count; it overestimates with
// probability ≤ e^-Depth by more than (e/Width)·N where N is the
// window's touch total.
func (s *Sketch) Estimate(key string) uint32 {
	h1, h2 := hash2(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotateLocked(time.Now())
	est := ^uint32(0)
	for d := 0; d < s.cfg.Depth; d++ {
		i := d*s.cfg.Width + int((h1+uint32(d)*h2)&s.mask)
		if v := s.cur[i] + s.prev[i]; v < est {
			est = v
		}
	}
	return est
}

// SketchStats is a point-in-time counter snapshot.
type SketchStats struct {
	Touches     int64 // lifetime touches
	Rotations   int64 // epoch swaps
	EpochLoad   int64 // touches in the current epoch
	Depth       int
	Width       int
	WindowNanos int64
}

// Stats snapshots the sketch's counters.
func (s *Sketch) Stats() SketchStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SketchStats{
		Touches:     s.touches,
		Rotations:   s.rotations,
		EpochLoad:   s.curTouches,
		Depth:       s.cfg.Depth,
		Width:       s.cfg.Width,
		WindowNanos: int64(s.cfg.Window),
	}
}

package freq

import (
	"container/heap"
	"sort"
	"sync"
)

// TopK tracks the approximately-k hottest keys with the space-saving
// algorithm (Metwally et al.): a bounded set of counters; an arriving
// key that has a counter increments it, otherwise it evicts the
// minimum counter and inherits its count as error. Guarantees: any key
// whose true frequency exceeds N/capacity is present, and a counter's
// true count lies in [count-err, count].
type TopK struct {
	k int

	mu       sync.Mutex
	counters map[string]*tkCounter
	h        tkHeap
	offers   int64
	churn    int64 // evict-and-replace events (top-k instability signal)
}

type tkCounter struct {
	key   string
	count uint64
	err   uint64
	idx   int // heap index
}

// KeyCount is one ranked key.
type KeyCount struct {
	Key   string
	Count uint64
	Err   uint64
}

// NewTopK tracks the hottest keys with 4*k counters (headroom keeps
// the guaranteed-present bound loose enough for Zipf tails).
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = 8
	}
	return &TopK{k: k, counters: make(map[string]*tkCounter, 4*k)}
}

// K returns the configured k.
func (t *TopK) K() int { return t.k }

// Offer records one observation of key.
func (t *TopK) Offer(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.offers++
	if c, ok := t.counters[key]; ok {
		c.count++
		heap.Fix(&t.h, c.idx)
		return
	}
	if len(t.counters) < 4*t.k {
		c := &tkCounter{key: key, count: 1}
		t.counters[key] = c
		heap.Push(&t.h, c)
		return
	}
	// Space-saving replacement: the minimum counter's key is evicted
	// and the newcomer inherits its count as upper bound.
	min := t.h[0]
	delete(t.counters, min.key)
	t.churn++
	min.key = key
	min.err = min.count
	min.count++
	t.counters[key] = min
	heap.Fix(&t.h, 0)
}

// Tracked reports whether key currently holds a counter. A tracked key
// is either genuinely hot or recently arrived; callers use this as a
// cheap pre-filter for per-key bookkeeping that must stay O(k).
func (t *TopK) Tracked(key string) bool {
	t.mu.Lock()
	_, ok := t.counters[key]
	t.mu.Unlock()
	return ok
}

// Top returns up to k keys, hottest first.
func (t *TopK) Top() []KeyCount {
	t.mu.Lock()
	out := make([]KeyCount, 0, len(t.counters))
	for _, c := range t.counters {
		out = append(out, KeyCount{Key: c.key, Count: c.count, Err: c.err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > t.k {
		out = out[:t.k]
	}
	return out
}

// Stats returns (offers, churn).
func (t *TopK) Stats() (int64, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.offers, t.churn
}

// tkHeap is a min-heap over counters by count.
type tkHeap []*tkCounter

func (h tkHeap) Len() int           { return len(h) }
func (h tkHeap) Less(i, j int) bool { return h[i].count < h[j].count }
func (h tkHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *tkHeap) Push(x any)        { c := x.(*tkCounter); c.idx = len(*h); *h = append(*h, c) }
func (h *tkHeap) Pop() any          { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

package freq

import (
	"sync"
)

// Filter is a counting-bloom presence filter over a view's cached bcp
// keys. The view adds a key exactly when an entry enters its map and
// removes it exactly when the entry leaves, so a negative answer is a
// proof of absence (no false negatives for live entries); a positive
// answer is wrong with the usual bloom false-positive probability,
// which only costs a wasted lookup, never a wrong answer.
//
// Snapshot exports the filter as a plain bitset (bit i set ⇔ counter i
// nonzero) stamped with a generation; a router holds the bitset
// read-only and suppresses probes for keys it proves absent. Staleness
// is one-sided there too: a snapshot that has not seen a later insert
// can suppress a would-be hit — losing a partial, which O3 recomputes
// — but can never fabricate a tuple.
type Filter struct {
	mu     sync.RWMutex
	counts []uint16
	mask   uint32
	hashes int
	keys   int    // live Add-Remove balance
	gen    uint64 // bumped on Reset, so stale snapshots are detectable
}

// NewFilter sizes a filter for about capacity keys at bitsPerKey
// counters each (defaults: 12 counters/key, 8 hashes — FPR ≈ 0.3% at
// full capacity, comfortably under the 1% bench bar). The table is
// rounded up to a power of two.
func NewFilter(capacity, bitsPerKey, hashes int) *Filter {
	if capacity <= 0 {
		capacity = 64
	}
	if bitsPerKey <= 0 {
		bitsPerKey = 12
	}
	if hashes <= 0 {
		hashes = 8
	}
	n := 1
	for n < capacity*bitsPerKey {
		n <<= 1
	}
	return &Filter{
		counts: make([]uint16, n),
		mask:   uint32(n - 1),
		hashes: hashes,
	}
}

// Add records one live entry under key.
func (f *Filter) Add(key string) {
	h1, h2 := hash2(key)
	f.mu.Lock()
	for i := 0; i < f.hashes; i++ {
		j := (h1 + uint32(i)*h2) & f.mask
		if f.counts[j] != ^uint16(0) { // saturate, never wrap
			f.counts[j]++
		}
	}
	f.keys++
	f.mu.Unlock()
}

// Remove forgets one live entry under key. Removing a key that was
// never added corrupts a counting bloom; the view's entry map is the
// single source of truth, so Add/Remove pair exactly by construction
// (CheckInvariants cross-checks Contains for every live entry).
func (f *Filter) Remove(key string) {
	h1, h2 := hash2(key)
	f.mu.Lock()
	for i := 0; i < f.hashes; i++ {
		j := (h1 + uint32(i)*h2) & f.mask
		if f.counts[j] > 0 && f.counts[j] != ^uint16(0) {
			f.counts[j]--
		}
	}
	if f.keys > 0 {
		f.keys--
	}
	f.mu.Unlock()
}

// MayContain reports whether key may have a live entry. False means
// provably absent.
func (f *Filter) MayContain(key string) bool {
	h1, h2 := hash2(key)
	f.mu.RLock()
	defer f.mu.RUnlock()
	for i := 0; i < f.hashes; i++ {
		if f.counts[(h1+uint32(i)*h2)&f.mask] == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter and advances its generation (the view calls
// this on a whole-view generation bump, where every entry died at
// once and per-key removal would be O(entries) under the view lock).
func (f *Filter) Reset() {
	f.mu.Lock()
	clear(f.counts)
	f.keys = 0
	f.gen++
	f.mu.Unlock()
}

// Keys returns the live key balance.
func (f *Filter) Keys() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.keys
}

// Gen returns the reset generation.
func (f *Filter) Gen() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.gen
}

// Snapshot exports the filter as a plain bloom bitset plus its
// generation and live-key count. The bitset length is len(counts)/8.
func (f *Filter) Snapshot() (bits []byte, hashes int, gen uint64, keys int) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	bits = make([]byte, len(f.counts)/8)
	for i, c := range f.counts {
		if c > 0 {
			bits[i>>3] |= 1 << (i & 7)
		}
	}
	return bits, f.hashes, f.gen, f.keys
}

// Bitset is a read-only plain-bloom view of a Filter snapshot, held by
// a router for negative-probe suppression. The zero value (or a nil
// pointer) suppresses nothing.
type Bitset struct {
	bits   []byte
	mask   uint32
	hashes int
	Gen    uint64
	Keys   int
}

// NewBitset wraps a Snapshot export. len(bits) must be a power of two;
// anything else returns nil (suppress nothing rather than suppress
// wrongly).
func NewBitset(bits []byte, hashes int, gen uint64, keys int) *Bitset {
	n := len(bits) * 8
	if n == 0 || n&(n-1) != 0 || hashes <= 0 {
		return nil
	}
	return &Bitset{bits: bits, mask: uint32(n - 1), hashes: hashes, Gen: gen, Keys: keys}
}

// MayContain reports whether the snapshot may contain key. A nil
// Bitset answers true (no proof of absence — probe normally).
func (b *Bitset) MayContain(key string) bool {
	if b == nil {
		return true
	}
	h1, h2 := hash2(key)
	for i := 0; i < b.hashes; i++ {
		j := (h1 + uint32(i)*h2) & b.mask
		if b.bits[j>>3]&(1<<(j&7)) == 0 {
			return false
		}
	}
	return true
}

package freq

import "time"

// Config tunes one view's frequency plane. The zero value takes the
// documented defaults everywhere.
type Config struct {
	// SketchDepth / SketchWidth size the count-min sketch (defaults
	// 4 × 1024).
	SketchDepth int
	SketchWidth int
	// Window is the sketch's epoch rotation period (default 1s); an
	// estimate covers between one and two windows.
	Window time.Duration
	// AdmitThreshold is the minimum windowed probe-frequency estimate a
	// key needs before the view will cache it (default 2: a key must be
	// asked for at least twice in a window to earn an entry, which is
	// exactly the reuse test a cold scan's one-shot keys fail).
	AdmitThreshold uint32
	// FilterBitsPerKey / FilterHashes size the presence filter
	// (defaults 12 and 8 — FPR ≈ 0.3% at full occupancy).
	FilterBitsPerKey int
	FilterHashes     int
}

func (c *Config) fill() {
	if c.AdmitThreshold == 0 {
		c.AdmitThreshold = 2
	}
}

// ViewFreq bundles one view's estimator and presence filter. A single
// ViewFreq is shared by the view's probe/admission path and the write
// plane's heavy/light classifier, so "popular enough to cache" and
// "popular enough to matter for invalidation" read the same counts.
type ViewFreq struct {
	cfg    Config
	Sketch *Sketch
	Filter *Filter
}

// New builds a view's frequency plane; capacity is the view's entry
// bound (sizes the filter).
func New(cfg Config, capacity int) *ViewFreq {
	cfg.fill()
	return &ViewFreq{
		cfg: cfg,
		Sketch: NewSketch(SketchConfig{
			Depth:  cfg.SketchDepth,
			Width:  cfg.SketchWidth,
			Window: cfg.Window,
		}),
		Filter: NewFilter(capacity, cfg.FilterBitsPerKey, cfg.FilterHashes),
	}
}

// AdmitThreshold returns the sliding admission threshold.
func (f *ViewFreq) AdmitThreshold() uint32 { return f.cfg.AdmitThreshold }

package keycodec

import (
	"testing"

	"pmv/internal/value"
)

var benchKeyTuple = value.Tuple{value.Int(42), value.Str("supplier-key"), value.Date(20454)}

func BenchmarkEncode(b *testing.B) {
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendTuple(buf[:0], benchKeyTuple)
	}
}

func BenchmarkDecode(b *testing.B) {
	enc := Encode(benchKeyTuple)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTuple(enc, len(benchKeyTuple)); err != nil {
			b.Fatal(err)
		}
	}
}

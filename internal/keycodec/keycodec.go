// Package keycodec encodes tuples of values into byte strings whose
// bytewise (memcmp) order equals value.CompareTuples order. The B+tree
// stores only these encoded keys, which keeps its comparison loop a
// single bytes.Compare.
//
// Encoding per value:
//
//	null:   0x00
//	int:    0x02 + 8 bytes big-endian with the sign bit flipped
//	float:  0x03 + 8 bytes of order-preserving IEEE 754 transform
//	string: 0x04 + escaped bytes + terminator (0x00 0x01 escapes a zero
//	        byte, 0x00 0x00 terminates), so "a" < "aa" < "b" holds
//	date:   0x05 + same as int
//	bool:   0x06 + one byte
//
// Tag bytes are ordered so that NULL sorts first, matching
// value.Compare. Int and Float share a numeric ordering in
// value.Compare only when types are mixed inside one column; the engine
// never builds an index over a mixed-type column, so the per-type tags
// are safe here.
package keycodec

import (
	"encoding/binary"
	"fmt"
	"math"

	"pmv/internal/value"
)

// Type tags, chosen so bytewise tag order matches value.Compare's
// cross-type order (NULL first, then by value.Type).
const (
	tagNull   = 0x00
	tagInt    = 0x02
	tagFloat  = 0x03
	tagString = 0x04
	tagDate   = 0x05
	tagBool   = 0x06
)

// AppendValue appends the order-preserving encoding of v to dst.
func AppendValue(dst []byte, v value.Value) []byte {
	switch v.Type() {
	case value.TypeNull:
		return append(dst, tagNull)
	case value.TypeInt:
		dst = append(dst, tagInt)
		return appendOrderedInt(dst, v.Int64())
	case value.TypeDate:
		dst = append(dst, tagDate)
		return appendOrderedInt(dst, v.Int64())
	case value.TypeFloat:
		dst = append(dst, tagFloat)
		return appendOrderedFloat(dst, v.Float64())
	case value.TypeString:
		dst = append(dst, tagString)
		return appendOrderedString(dst, v.Str())
	case value.TypeBool:
		dst = append(dst, tagBool)
		if v.BoolVal() {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		panic(fmt.Sprintf("keycodec: unknown type %v", v.Type()))
	}
}

// AppendTuple appends the order-preserving encoding of every value in t.
func AppendTuple(dst []byte, t value.Tuple) []byte {
	for _, v := range t {
		dst = AppendValue(dst, v)
	}
	return dst
}

// Encode returns the order-preserving encoding of t as a fresh slice.
func Encode(t value.Tuple) []byte {
	return AppendTuple(make([]byte, 0, 16*len(t)), t)
}

func appendOrderedInt(dst []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(v)^(1<<63))
}

func appendOrderedFloat(dst []byte, f float64) []byte {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		u = ^u // negative: flip all bits
	} else {
		u ^= 1 << 63 // positive: flip sign bit
	}
	return binary.BigEndian.AppendUint64(dst, u)
}

func appendOrderedString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, 0x01)
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, 0x00, 0x00)
}

// DecodeValue parses one encoded value from the front of b, returning
// the value and the number of bytes consumed.
func DecodeValue(b []byte) (value.Value, int, error) {
	if len(b) == 0 {
		return value.Null(), 0, fmt.Errorf("keycodec: empty input")
	}
	switch b[0] {
	case tagNull:
		return value.Null(), 1, nil
	case tagInt, tagDate:
		if len(b) < 9 {
			return value.Null(), 0, fmt.Errorf("keycodec: truncated int")
		}
		v := int64(binary.BigEndian.Uint64(b[1:]) ^ (1 << 63))
		if b[0] == tagInt {
			return value.Int(v), 9, nil
		}
		return value.Date(v), 9, nil
	case tagFloat:
		if len(b) < 9 {
			return value.Null(), 0, fmt.Errorf("keycodec: truncated float")
		}
		u := binary.BigEndian.Uint64(b[1:])
		if u&(1<<63) != 0 {
			u ^= 1 << 63
		} else {
			u = ^u
		}
		return value.Float(math.Float64frombits(u)), 9, nil
	case tagString:
		out := make([]byte, 0, 16)
		i := 1
		for {
			if i >= len(b) {
				return value.Null(), 0, fmt.Errorf("keycodec: unterminated string")
			}
			c := b[i]
			if c != 0x00 {
				out = append(out, c)
				i++
				continue
			}
			if i+1 >= len(b) {
				return value.Null(), 0, fmt.Errorf("keycodec: truncated escape")
			}
			switch b[i+1] {
			case 0x00:
				return value.Str(string(out)), i + 2, nil
			case 0x01:
				out = append(out, 0x00)
				i += 2
			default:
				return value.Null(), 0, fmt.Errorf("keycodec: bad escape byte %#x", b[i+1])
			}
		}
	case tagBool:
		if len(b) < 2 {
			return value.Null(), 0, fmt.Errorf("keycodec: truncated bool")
		}
		return value.Bool(b[1] != 0), 2, nil
	default:
		return value.Null(), 0, fmt.Errorf("keycodec: unknown tag %#x", b[0])
	}
}

// DecodeTuple parses n encoded values from b.
func DecodeTuple(b []byte, n int) (value.Tuple, int, error) {
	t := make(value.Tuple, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		v, k, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("keycodec: column %d: %w", i, err)
		}
		t = append(t, v)
		off += k
	}
	return t, off, nil
}

package keycodec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pmv/internal/value"
)

// TestOrderPreservation is the package's core contract: bytewise order
// of encodings equals value.Compare order.
func TestOrderPreservation(t *testing.T) {
	vals := []value.Value{
		value.Null(),
		value.Int(math.MinInt64), value.Int(-1), value.Int(0), value.Int(1), value.Int(math.MaxInt64),
		value.Float(math.Inf(-1)), value.Float(-1e300), value.Float(-1.5), value.Float(-0.0),
		value.Float(0.0), value.Float(1.5), value.Float(1e300), value.Float(math.Inf(1)),
		value.Str(""), value.Str("a"), value.Str("a\x00"), value.Str("a\x00b"), value.Str("aa"), value.Str("b"),
		value.Date(-100), value.Date(0), value.Date(100),
		value.Bool(false), value.Bool(true),
	}
	for _, a := range vals {
		for _, b := range vals {
			if a.Type() != b.Type() && !(a.IsNull() || b.IsNull()) {
				continue // cross-type order not used by indexes
			}
			ea, eb := Encode(value.Tuple{a}), Encode(value.Tuple{b})
			want := value.Compare(a, b)
			got := bytes.Compare(ea, eb)
			if sign(got) != sign(want) {
				t.Errorf("order mismatch: %v vs %v: value %d, bytes %d", a, b, want, got)
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestOrderPreservationQuickInts(t *testing.T) {
	f := func(a, b int64) bool {
		ea := Encode(value.Tuple{value.Int(a)})
		eb := Encode(value.Tuple{value.Int(b)})
		return sign(bytes.Compare(ea, eb)) == sign(value.Compare(value.Int(a), value.Int(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderPreservationQuickFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea := Encode(value.Tuple{value.Float(a)})
		eb := Encode(value.Tuple{value.Float(b)})
		return sign(bytes.Compare(ea, eb)) == sign(value.Compare(value.Float(a), value.Float(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderPreservationQuickStrings(t *testing.T) {
	f := func(a, b string) bool {
		ea := Encode(value.Tuple{value.Str(a)})
		eb := Encode(value.Tuple{value.Str(b)})
		return sign(bytes.Compare(ea, eb)) == sign(value.Compare(value.Str(a), value.Str(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompositeOrderPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func() value.Tuple {
		return value.Tuple{
			value.Int(rng.Int63n(5)),
			value.Str(string(rune('a' + rng.Intn(3)))),
			value.Float(float64(rng.Intn(4))),
		}
	}
	for i := 0; i < 2000; i++ {
		a, b := mk(), mk()
		ea, eb := Encode(a), Encode(b)
		if sign(bytes.Compare(ea, eb)) != sign(value.CompareTuples(a, b)) {
			t.Fatalf("composite mismatch: %v vs %v", a, b)
		}
	}
}

func TestRoundtrip(t *testing.T) {
	tup := value.Tuple{
		value.Null(), value.Int(-7), value.Float(3.25),
		value.Str("he\x00llo"), value.Date(9), value.Bool(true),
	}
	enc := Encode(tup)
	dec, n, err := DecodeTuple(enc, len(tup))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d", n, len(enc))
	}
	if value.CompareTuples(tup, dec) != 0 {
		t.Errorf("roundtrip %v -> %v", tup, dec)
	}
}

func TestRoundtripQuick(t *testing.T) {
	f := func(i int64, s string, fl float64, b bool) bool {
		if math.IsNaN(fl) {
			return true
		}
		tup := value.Tuple{value.Int(i), value.Str(s), value.Float(fl), value.Bool(b)}
		dec, _, err := DecodeTuple(Encode(tup), len(tup))
		return err == nil && value.CompareTuples(tup, dec) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringPrefixProperty(t *testing.T) {
	// "a" must sort before "aa": terminator below all content bytes.
	a := Encode(value.Tuple{value.Str("a")})
	aa := Encode(value.Tuple{value.Str("aa")})
	if bytes.Compare(a, aa) >= 0 {
		t.Error(`"a" >= "aa" in encoded order`)
	}
	// Zero bytes must not break ordering: "a\x00" < "a\x01".
	z0 := Encode(value.Tuple{value.Str("a\x00")})
	z1 := Encode(value.Tuple{value.Str("a\x01")})
	if bytes.Compare(z0, z1) >= 0 {
		t.Error(`"a\x00" >= "a\x01" in encoded order`)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0x02},             // truncated int
		{0x03, 1, 2},       // truncated float
		{0x04, 'a'},        // unterminated string
		{0x04, 'a', 0x00},  // truncated escape
		{0x04, 0x00, 0x07}, // invalid escape byte
		{0x06},             // truncated bool
		{0xEE},             // unknown tag
	}
	for _, c := range cases {
		if _, _, err := DecodeValue(c); err == nil {
			t.Errorf("DecodeValue(%v) succeeded", c)
		}
	}
}

func TestAppendValueGrowsBuffer(t *testing.T) {
	buf := make([]byte, 0, 1)
	buf = AppendValue(buf, value.Int(1))
	buf = AppendValue(buf, value.Str("abc"))
	dec, _, err := DecodeTuple(buf, 2)
	if err != nil || dec[0].Int64() != 1 || dec[1].Str() != "abc" {
		t.Errorf("append chain broken: %v %v", dec, err)
	}
}

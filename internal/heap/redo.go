package heap

import (
	"errors"
	"fmt"

	"pmv/internal/storage"
	"pmv/internal/value"
)

// WAL-aware heap operations. Normal-path variants stamp the touched
// page with the operation's sequence number (LSN); Apply* variants
// perform idempotent redo during recovery, guarded by the page LSN:
// a record is skipped when the page already reflects it (its stamp is
// at least the record's sequence number).

// InsertLSN appends t, stamping the page with lsn (0 = no stamp; the
// non-WAL path).
func (h *Heap) InsertLSN(t value.Tuple, lsn uint64) (storage.RID, error) {
	rec := value.EncodeTuple(nil, t)
	if len(rec) > storage.PageSize-64 {
		return storage.RID{}, fmt.Errorf("heap: tuple of %d bytes exceeds page capacity", len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.insertLocked(rec, lsn)
}

func (h *Heap) insertLocked(rec []byte, lsn uint64) (storage.RID, error) {
	if h.lastPage != storage.InvalidPageID {
		fr, err := h.pool.Fetch(h.file, h.lastPage)
		if err != nil {
			return storage.RID{}, err
		}
		sp := storage.NewSlottedPage(fr.Buf)
		slot, err := sp.Insert(rec)
		if err == nil {
			if lsn > 0 {
				sp.SetLSN(lsn)
			}
			h.pool.Unpin(fr, true)
			h.count++
			return storage.RID{Page: h.lastPage, Slot: slot}, nil
		}
		h.pool.Unpin(fr, false)
		if !errors.Is(err, storage.ErrPageFull) {
			return storage.RID{}, err
		}
	}
	fr, id, err := h.pool.NewPage(h.file)
	if err != nil {
		return storage.RID{}, err
	}
	sp := storage.NewSlottedPage(fr.Buf)
	sp.Init()
	slot, err := sp.Insert(rec)
	if err != nil {
		h.pool.Unpin(fr, true)
		return storage.RID{}, err
	}
	if lsn > 0 {
		sp.SetLSN(lsn)
	}
	h.pool.Unpin(fr, true)
	h.lastPage = id
	h.count++
	return storage.RID{Page: id, Slot: slot}, nil
}

// DeleteLSN removes the tuple at rid, stamping the page.
func (h *Heap) DeleteLSN(rid storage.RID, lsn uint64) error {
	fr, err := h.pool.Fetch(h.file, rid.Page)
	if err != nil {
		return err
	}
	sp := storage.NewSlottedPage(fr.Buf)
	if sp.Read(rid.Slot) == nil {
		h.pool.Unpin(fr, false)
		return fmt.Errorf("heap: %v: %w", rid, ErrNotFound)
	}
	if err := sp.Delete(rid.Slot); err != nil {
		h.pool.Unpin(fr, false)
		return err
	}
	if lsn > 0 {
		sp.SetLSN(lsn)
	}
	h.pool.Unpin(fr, true)
	h.mu.Lock()
	h.count--
	h.mu.Unlock()
	return nil
}

// UpdateInPlaceLSN rewrites rid's tuple within its page, stamping it.
// It reports storage.ErrPageFull when the new tuple does not fit (the
// WAL path then logs a delete + insert pair instead).
func (h *Heap) UpdateInPlaceLSN(rid storage.RID, t value.Tuple, lsn uint64) error {
	rec := value.EncodeTuple(nil, t)
	fr, err := h.pool.Fetch(h.file, rid.Page)
	if err != nil {
		return err
	}
	sp := storage.NewSlottedPage(fr.Buf)
	if sp.Read(rid.Slot) == nil {
		h.pool.Unpin(fr, false)
		return fmt.Errorf("heap: %v: %w", rid, ErrNotFound)
	}
	if err := sp.Update(rid.Slot, rec); err != nil {
		h.pool.Unpin(fr, false)
		return err
	}
	if lsn > 0 {
		sp.SetLSN(lsn)
	}
	h.pool.Unpin(fr, true)
	return nil
}

// ensurePage extends the heap file (with initialized pages) so that
// page id exists, returning without I/O when it already does.
func (h *Heap) ensurePage(id storage.PageID) error {
	f, err := h.mgr.Open(h.file)
	if err != nil {
		return err
	}
	for f.NumPages() <= id {
		fr, nid, err := h.pool.NewPage(h.file)
		if err != nil {
			return err
		}
		storage.NewSlottedPage(fr.Buf).Init()
		h.pool.Unpin(fr, true)
		if nid > h.lastPage || h.lastPage == storage.InvalidPageID {
			h.lastPage = nid
		}
	}
	if id > h.lastPage || h.lastPage == storage.InvalidPageID {
		h.lastPage = id
	}
	return nil
}

// ApplyInsert redoes an insert at exactly rid. Returns whether the
// record was applied (false: the page already reflected it).
func (h *Heap) ApplyInsert(rid storage.RID, t value.Tuple, lsn uint64) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.ensurePage(rid.Page); err != nil {
		return false, err
	}
	fr, err := h.pool.Fetch(h.file, rid.Page)
	if err != nil {
		return false, err
	}
	defer h.pool.Unpin(fr, true)
	sp := storage.NewSlottedPage(fr.Buf)
	sp.EnsureInit()
	if sp.LSN() >= lsn {
		return false, nil
	}
	if sp.NumSlots() != rid.Slot {
		return false, fmt.Errorf("heap: redo insert at %v but page has %d slots (lsn %d < %d)",
			rid, sp.NumSlots(), sp.LSN(), lsn)
	}
	slot, err := sp.Insert(value.EncodeTuple(nil, t))
	if err != nil {
		return false, fmt.Errorf("heap: redo insert at %v: %w", rid, err)
	}
	if slot != rid.Slot {
		return false, fmt.Errorf("heap: redo insert landed at slot %d, want %d", slot, rid.Slot)
	}
	sp.SetLSN(lsn)
	h.count++
	return true, nil
}

// ApplyDelete redoes a delete of rid.
func (h *Heap) ApplyDelete(rid storage.RID, lsn uint64) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.ensurePage(rid.Page); err != nil {
		return false, err
	}
	fr, err := h.pool.Fetch(h.file, rid.Page)
	if err != nil {
		return false, err
	}
	defer h.pool.Unpin(fr, true)
	sp := storage.NewSlottedPage(fr.Buf)
	sp.EnsureInit()
	if sp.LSN() >= lsn {
		return false, nil
	}
	if err := sp.Delete(rid.Slot); err != nil {
		return false, fmt.Errorf("heap: redo delete %v: %w", rid, err)
	}
	sp.SetLSN(lsn)
	h.count--
	return true, nil
}

// ApplyUpdate redoes an in-place update of rid.
func (h *Heap) ApplyUpdate(rid storage.RID, t value.Tuple, lsn uint64) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.ensurePage(rid.Page); err != nil {
		return false, err
	}
	fr, err := h.pool.Fetch(h.file, rid.Page)
	if err != nil {
		return false, err
	}
	defer h.pool.Unpin(fr, true)
	sp := storage.NewSlottedPage(fr.Buf)
	sp.EnsureInit()
	if sp.LSN() >= lsn {
		return false, nil
	}
	if err := sp.Update(rid.Slot, value.EncodeTuple(nil, t)); err != nil {
		return false, fmt.Errorf("heap: redo update %v: %w", rid, err)
	}
	sp.SetLSN(lsn)
	return true, nil
}

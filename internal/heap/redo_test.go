package heap

import (
	"errors"
	"testing"

	"pmv/internal/storage"
	"pmv/internal/value"
)

func TestInsertLSNStampsPage(t *testing.T) {
	h, pool, _, _ := newHeap(t)
	rid, err := h.InsertLSN(row(1), 77)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := pool.Fetch(h.File(), rid.Page)
	if err != nil {
		t.Fatal(err)
	}
	sp := storage.NewSlottedPage(fr.Buf)
	if sp.LSN() != 77 {
		t.Errorf("page LSN = %d, want 77", sp.LSN())
	}
	pool.Unpin(fr, false)
	// LSN 0 leaves the stamp unchanged.
	if _, err := h.InsertLSN(row(2), 0); err != nil {
		t.Fatal(err)
	}
	fr, _ = pool.Fetch(h.File(), rid.Page)
	if got := storage.NewSlottedPage(fr.Buf).LSN(); got != 77 {
		t.Errorf("LSN changed by unstamped insert: %d", got)
	}
	pool.Unpin(fr, false)
}

func TestDeleteAndUpdateLSN(t *testing.T) {
	h, pool, _, _ := newHeap(t)
	rid, _ := h.InsertLSN(row(30), 1)
	if err := h.UpdateInPlaceLSN(rid, row(3), 2); err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || value.CompareTuples(got, row(3)) != 0 {
		t.Fatalf("after update: %v %v", got, err)
	}
	// A growing update must refuse (the WAL path needs to know).
	big := value.Tuple{value.Int(1), value.Str(string(make([]byte, 4000)))}
	if err := h.UpdateInPlaceLSN(rid, big, 3); !errors.Is(err, storage.ErrPageFull) {
		t.Fatalf("oversized in-place update: %v", err)
	}
	if err := h.DeleteLSN(rid, 4); err != nil {
		t.Fatal(err)
	}
	fr, _ := pool.Fetch(h.File(), rid.Page)
	if got := storage.NewSlottedPage(fr.Buf).LSN(); got != 4 {
		t.Errorf("page LSN = %d, want 4", got)
	}
	pool.Unpin(fr, false)
	if err := h.DeleteLSN(rid, 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if err := h.UpdateInPlaceLSN(rid, row(1), 6); !errors.Is(err, ErrNotFound) {
		t.Errorf("update of deleted: %v", err)
	}
}

func TestApplyInsertIdempotent(t *testing.T) {
	h, _, _, _ := newHeap(t)
	rid := storage.RID{Page: 0, Slot: 0}
	ok, err := h.ApplyInsert(rid, row(9), 10)
	if err != nil || !ok {
		t.Fatalf("first apply: %v %v", ok, err)
	}
	// Replaying the same record is a no-op (page LSN guard).
	ok, err = h.ApplyInsert(rid, row(9), 10)
	if err != nil || ok {
		t.Fatalf("second apply: applied=%v err=%v", ok, err)
	}
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
	got, err := h.Get(rid)
	if err != nil || value.CompareTuples(got, row(9)) != 0 {
		t.Errorf("content: %v %v", got, err)
	}
}

func TestApplySequenceRebuildsPage(t *testing.T) {
	h, _, _, _ := newHeap(t)
	// Replay a sequence as recovery would: inserts, a delete, an
	// update, all landing on page 0 in LSN order.
	steps := []struct {
		op  string
		rid storage.RID
		tup value.Tuple
		lsn uint64
	}{
		{"ins", storage.RID{Page: 0, Slot: 0}, row(1), 1},
		{"ins", storage.RID{Page: 0, Slot: 1}, row(2), 2},
		{"ins", storage.RID{Page: 0, Slot: 2}, row(3), 3},
		{"del", storage.RID{Page: 0, Slot: 1}, nil, 4},
		{"upd", storage.RID{Page: 0, Slot: 2}, row(1), 5}, // in-place updates never grow (the WAL path guarantees it)
	}
	for _, s := range steps {
		var err error
		var ok bool
		switch s.op {
		case "ins":
			ok, err = h.ApplyInsert(s.rid, s.tup, s.lsn)
		case "del":
			ok, err = h.ApplyDelete(s.rid, s.lsn)
		case "upd":
			ok, err = h.ApplyUpdate(s.rid, s.tup, s.lsn)
		}
		if err != nil || !ok {
			t.Fatalf("%s lsn %d: applied=%v err=%v", s.op, s.lsn, ok, err)
		}
	}
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	got, _ := h.Get(storage.RID{Page: 0, Slot: 2})
	if value.CompareTuples(got, row(1)) != 0 {
		t.Errorf("slot 2 = %v", got)
	}
	if _, err := h.Get(storage.RID{Page: 0, Slot: 1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted slot readable: %v", err)
	}
}

func TestApplyInsertExtendsFile(t *testing.T) {
	h, _, _, _ := newHeap(t)
	// A record for page 3 of an empty heap must allocate pages 0..3.
	rid := storage.RID{Page: 3, Slot: 0}
	ok, err := h.ApplyInsert(rid, row(5), 9)
	if err != nil || !ok {
		t.Fatalf("apply: %v %v", ok, err)
	}
	if h.NumPages() < 4 {
		t.Errorf("heap has %d pages, want >= 4", h.NumPages())
	}
	got, err := h.Get(rid)
	if err != nil || value.CompareTuples(got, row(5)) != 0 {
		t.Errorf("content: %v %v", got, err)
	}
	// Normal inserts continue on the extended file.
	if _, err := h.Insert(row(6)); err != nil {
		t.Fatal(err)
	}
}

func TestApplyInsertSlotMismatchDetected(t *testing.T) {
	h, _, _, _ := newHeap(t)
	if _, err := h.ApplyInsert(storage.RID{Page: 0, Slot: 0}, row(1), 1); err != nil {
		t.Fatal(err)
	}
	// A record claiming slot 5 while the page has 1 slot signals a
	// corrupted/incomplete log: the invariant check must fire.
	if _, err := h.ApplyInsert(storage.RID{Page: 0, Slot: 5}, row(2), 2); err == nil {
		t.Error("slot gap accepted during redo")
	}
}

func TestApplyDeleteGuard(t *testing.T) {
	h, _, _, _ := newHeap(t)
	rid, _ := h.InsertLSN(row(1), 5)
	// A record older than the page stamp must be skipped.
	ok, err := h.ApplyDelete(rid, 3)
	if err != nil || ok {
		t.Fatalf("stale delete applied: %v %v", ok, err)
	}
	if h.Count() != 1 {
		t.Error("stale delete took effect")
	}
	ok, err = h.ApplyDelete(rid, 9)
	if err != nil || !ok {
		t.Fatalf("fresh delete: %v %v", ok, err)
	}
	if h.Count() != 0 {
		t.Error("fresh delete missed")
	}
}

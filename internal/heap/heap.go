// Package heap implements heap files: unordered collections of tuples
// stored in slotted pages reached through the buffer pool. A heap file
// is the physical body of one relation.
package heap

import (
	"errors"
	"fmt"
	"sync"

	"pmv/internal/buffer"
	"pmv/internal/storage"
	"pmv/internal/value"
)

// ErrNotFound is returned when a RID does not name a live tuple.
var ErrNotFound = errors.New("heap: tuple not found")

// Heap is one heap file.
type Heap struct {
	pool *buffer.Pool
	mgr  *storage.Manager
	file string

	mu       sync.Mutex
	lastPage storage.PageID // insertion hint; InvalidPageID before first page
	count    int64          // live tuple count
}

// Open returns a heap over the named file. Existing pages are scanned
// once to recover the live tuple count.
func Open(pool *buffer.Pool, mgr *storage.Manager, file string) (*Heap, error) {
	h := &Heap{pool: pool, mgr: mgr, file: file, lastPage: storage.InvalidPageID}
	f, err := mgr.Open(file)
	if err != nil {
		return nil, err
	}
	n := f.NumPages()
	if n > 0 {
		h.lastPage = n - 1
		if err := h.Scan(func(storage.RID, value.Tuple) error {
			h.count++
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// File returns the underlying file name.
func (h *Heap) File() string { return h.file }

// Count returns the number of live tuples.
func (h *Heap) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// NumPages returns the number of allocated pages.
func (h *Heap) NumPages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lastPage == storage.InvalidPageID {
		return 0
	}
	return int(h.lastPage) + 1
}

// Insert appends t and returns its RID.
func (h *Heap) Insert(t value.Tuple) (storage.RID, error) {
	return h.InsertLSN(t, 0)
}

// Get returns the tuple at rid.
func (h *Heap) Get(rid storage.RID) (value.Tuple, error) {
	fr, err := h.pool.Fetch(h.file, rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(fr, false)
	sp := storage.NewSlottedPage(fr.Buf)
	rec := sp.Read(rid.Slot)
	if rec == nil {
		return nil, fmt.Errorf("heap: %v: %w", rid, ErrNotFound)
	}
	t, _, err := value.DecodeTuple(rec)
	return t, err
}

// Delete removes the tuple at rid.
func (h *Heap) Delete(rid storage.RID) error {
	fr, err := h.pool.Fetch(h.file, rid.Page)
	if err != nil {
		return err
	}
	sp := storage.NewSlottedPage(fr.Buf)
	if sp.Read(rid.Slot) == nil {
		h.pool.Unpin(fr, false)
		return fmt.Errorf("heap: %v: %w", rid, ErrNotFound)
	}
	if err := sp.Delete(rid.Slot); err != nil {
		h.pool.Unpin(fr, false)
		return err
	}
	h.pool.Unpin(fr, true)
	h.mu.Lock()
	h.count--
	h.mu.Unlock()
	return nil
}

// Update rewrites the tuple at rid in place if it fits, otherwise
// deletes it and re-inserts, returning the (possibly new) RID.
func (h *Heap) Update(rid storage.RID, t value.Tuple) (storage.RID, error) {
	rec := value.EncodeTuple(nil, t)
	fr, err := h.pool.Fetch(h.file, rid.Page)
	if err != nil {
		return storage.RID{}, err
	}
	sp := storage.NewSlottedPage(fr.Buf)
	if sp.Read(rid.Slot) == nil {
		h.pool.Unpin(fr, false)
		return storage.RID{}, fmt.Errorf("heap: %v: %w", rid, ErrNotFound)
	}
	err = sp.Update(rid.Slot, rec)
	if err == nil {
		h.pool.Unpin(fr, true)
		return rid, nil
	}
	if !errors.Is(err, storage.ErrPageFull) {
		h.pool.Unpin(fr, false)
		return storage.RID{}, err
	}
	// Does not fit: delete here, insert elsewhere.
	if err := sp.Delete(rid.Slot); err != nil {
		h.pool.Unpin(fr, false)
		return storage.RID{}, err
	}
	h.pool.Unpin(fr, true)
	h.mu.Lock()
	h.count--
	h.mu.Unlock()
	return h.Insert(t)
}

// Scan calls fn for every live tuple in RID order. fn returning
// ErrStopScan ends the scan without error.
func (h *Heap) Scan(fn func(storage.RID, value.Tuple) error) error {
	h.mu.Lock()
	last := h.lastPage
	h.mu.Unlock()
	if last == storage.InvalidPageID {
		return nil
	}
	for pid := storage.PageID(0); pid <= last; pid++ {
		fr, err := h.pool.Fetch(h.file, pid)
		if err != nil {
			return err
		}
		sp := storage.NewSlottedPage(fr.Buf)
		n := sp.NumSlots()
		for slot := uint16(0); slot < n; slot++ {
			rec := sp.Read(slot)
			if rec == nil {
				continue
			}
			t, _, err := value.DecodeTuple(rec)
			if err != nil {
				h.pool.Unpin(fr, false)
				return err
			}
			if err := fn(storage.RID{Page: pid, Slot: slot}, t); err != nil {
				h.pool.Unpin(fr, false)
				if errors.Is(err, ErrStopScan) {
					return nil
				}
				return err
			}
		}
		h.pool.Unpin(fr, false)
	}
	return nil
}

// ErrStopScan signals early scan termination from a Scan callback.
var ErrStopScan = errors.New("heap: stop scan")

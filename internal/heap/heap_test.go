package heap

import (
	"errors"
	"strings"
	"testing"

	"pmv/internal/buffer"
	"pmv/internal/storage"
	"pmv/internal/value"
)

func newHeap(t *testing.T) (*Heap, *buffer.Pool, *storage.Manager, string) {
	t.Helper()
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	pool := buffer.NewPool(mgr, 64)
	h, err := Open(pool, mgr, "heap.t")
	if err != nil {
		t.Fatal(err)
	}
	return h, pool, mgr, dir
}

func row(i int) value.Tuple {
	return value.Tuple{value.Int(int64(i)), value.Str(strings.Repeat("x", i%50))}
}

func TestInsertGet(t *testing.T) {
	h, _, _, _ := newHeap(t)
	var rids []storage.RID
	for i := 0; i < 500; i++ {
		rid, err := h.Insert(row(i))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		rids = append(rids, rid)
	}
	if h.Count() != 500 {
		t.Errorf("count = %d", h.Count())
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("get %v: %v", rid, err)
		}
		if value.CompareTuples(got, row(i)) != 0 {
			t.Errorf("rid %v: got %v", rid, got)
		}
	}
}

func TestDelete(t *testing.T) {
	h, _, _, _ := newHeap(t)
	rid, _ := h.Insert(row(1))
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); !errors.Is(err, ErrNotFound) {
		t.Errorf("get deleted: %v", err)
	}
	if err := h.Delete(rid); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if h.Count() != 0 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestUpdateInPlaceAndMoving(t *testing.T) {
	h, _, _, _ := newHeap(t)
	rid, _ := h.Insert(value.Tuple{value.Str(strings.Repeat("a", 100))})
	// Shrinking update stays in place.
	nrid, err := h.Update(rid, value.Tuple{value.Str("small")})
	if err != nil {
		t.Fatal(err)
	}
	if nrid != rid {
		t.Errorf("shrinking update moved %v -> %v", rid, nrid)
	}
	// Growing update must move.
	big := value.Tuple{value.Str(strings.Repeat("b", 500))}
	nrid2, err := h.Update(nrid, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(nrid2)
	if err != nil || value.CompareTuples(got, big) != 0 {
		t.Errorf("after move: %v %v", got, err)
	}
	if nrid2 == nrid {
		// In-place is fine too if the old slot had room; but the data
		// must be the new value either way.
		got, _ := h.Get(nrid)
		if value.CompareTuples(got, big) != 0 {
			t.Error("update lost")
		}
	}
	if h.Count() != 1 {
		t.Errorf("count = %d after update", h.Count())
	}
}

func TestScanSeesLiveTuplesOnly(t *testing.T) {
	h, _, _, _ := newHeap(t)
	var rids []storage.RID
	for i := 0; i < 100; i++ {
		rid, _ := h.Insert(row(i))
		rids = append(rids, rid)
	}
	for i := 0; i < 100; i += 3 {
		h.Delete(rids[i])
	}
	seen := 0
	err := h.Scan(func(rid storage.RID, tup value.Tuple) error {
		seen++
		i := int(tup[0].Int64())
		if i%3 == 0 {
			t.Errorf("deleted tuple %d visible", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 100 - 34 // ceil(100/3)
	if seen != want {
		t.Errorf("scan saw %d, want %d", seen, want)
	}
}

func TestScanEarlyStop(t *testing.T) {
	h, _, _, _ := newHeap(t)
	for i := 0; i < 50; i++ {
		h.Insert(row(i))
	}
	n := 0
	err := h.Scan(func(storage.RID, value.Tuple) error {
		n++
		if n == 7 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil || n != 7 {
		t.Errorf("early stop: n=%d err=%v", n, err)
	}
}

func TestMultiPageGrowth(t *testing.T) {
	h, _, _, _ := newHeap(t)
	// ~200-byte tuples force multiple pages.
	for i := 0; i < 500; i++ {
		if _, err := h.Insert(value.Tuple{value.Int(int64(i)), value.Str(strings.Repeat("p", 200))}); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 10 {
		t.Errorf("only %d pages for 500 fat tuples", h.NumPages())
	}
	n := 0
	h.Scan(func(storage.RID, value.Tuple) error {
		n++
		return nil
	})
	if n != 500 {
		t.Errorf("scan found %d", n)
	}
}

func TestOversizedTupleRejected(t *testing.T) {
	h, _, _, _ := newHeap(t)
	if _, err := h.Insert(value.Tuple{value.Str(strings.Repeat("z", storage.PageSize))}); err == nil {
		t.Error("page-sized tuple accepted")
	}
}

func TestReopenRecoversCount(t *testing.T) {
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(mgr, 64)
	h, err := Open(pool, mgr, "heap.r")
	if err != nil {
		t.Fatal(err)
	}
	var rids []storage.RID
	for i := 0; i < 300; i++ {
		rid, _ := h.Insert(row(i))
		rids = append(rids, rid)
	}
	h.Delete(rids[5])
	pool.FlushAll()
	mgr.Close()

	mgr2, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	pool2 := buffer.NewPool(mgr2, 64)
	h2, err := Open(pool2, mgr2, "heap.r")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 299 {
		t.Errorf("recovered count = %d, want 299", h2.Count())
	}
	// Inserts continue to work after reopen.
	if _, err := h2.Insert(row(1000)); err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 300 {
		t.Errorf("count after post-reopen insert = %d", h2.Count())
	}
}

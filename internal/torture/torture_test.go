package torture

import "testing"

// Three fixed seeds ride in the normal test suite as a CI-speed smoke
// of the crash-recovery harness; cmd/pmvtorture runs the wide sweep.
func TestTortureSmoke(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		sync bool
	}{
		{seed: 1, sync: false},
		{seed: 2, sync: true},
		{seed: 3, sync: false},
	} {
		rep, err := Run(Options{Seed: tc.seed, SyncEveryOp: tc.sync, Ops: 150})
		if err != nil {
			t.Fatalf("seed %d (sync=%v): %v", tc.seed, tc.sync, err)
		}
		t.Logf("seed %d (sync=%v): crashed=%v acked=%d prefixK=%d replayed=%d repairs=%d faults=%+v",
			rep.Seed, tc.sync, rep.Crashed, rep.AckedOps, rep.PrefixK, rep.Recovered, rep.Repairs, rep.FaultyStats)
	}
}

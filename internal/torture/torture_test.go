package torture

import "testing"

// Three fixed seeds ride in the normal test suite as a CI-speed smoke
// of the crash-recovery harness; cmd/pmvtorture runs the wide sweep.
func TestTortureSmoke(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		sync bool
	}{
		{seed: 1, sync: false},
		{seed: 2, sync: true},
		{seed: 3, sync: false},
	} {
		rep, err := Run(Options{Seed: tc.seed, SyncEveryOp: tc.sync, Ops: 150})
		if err != nil {
			t.Fatalf("seed %d (sync=%v): %v", tc.seed, tc.sync, err)
		}
		t.Logf("seed %d (sync=%v): crashed=%v acked=%d prefixK=%d replayed=%d repairs=%d faults=%+v",
			rep.Seed, tc.sync, rep.Crashed, rep.AckedOps, rep.PrefixK, rep.Recovered, rep.Repairs, rep.FaultyStats)
	}
}

// One seeded cluster-chaos cycle with the tail-tolerance plane on rides
// in the suite: hedged probes race duplicate row streams while shards
// gray-ramp and flap, and the exactly-once oracle plus the DS audit
// must hold. cmd/pmvtorture -cluster -tail runs the wide sweep.
func TestTailChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos cycle is several seconds")
	}
	rep, err := RunCluster(ClusterOptions{Seed: 7, Clients: 4, Queries: 20, Tail: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tailchaos seed 7: %d queries: clean=%d flagged=%d interrupted=%d unavailable=%d remote=%d ctx=%d grays=%d flaps=%d hedges=%d hedgewins=%d trips=%d skips=%d",
		rep.Queries, rep.Clean, rep.Flagged, rep.Interrupted, rep.Unavailable, rep.Remote,
		rep.CtxExpired, rep.GrayRamps, rep.Flaps, rep.Hedges, rep.HedgeWins,
		rep.BreakerTrips, rep.BreakerSkips)
	if rep.Clean == 0 {
		t.Fatal("no query completed cleanly — the harness is all noise")
	}
}

// One seeded netchaos cycle rides in the suite; cmd/pmvtorture -net
// runs the wide sweep.
func TestNetChaosSmoke(t *testing.T) {
	rep, err := RunNet(NetOptions{Seed: 1, Clients: 4, Queries: 25})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("netchaos seed 1: %d queries: clean=%d flagged=%d interrupted=%d unavailable=%d remote=%d ctx=%d retries=%d redials=%d faults=%+v",
		rep.Queries, rep.Clean, rep.Flagged, rep.Interrupted, rep.Unavailable, rep.Remote, rep.CtxExpired,
		rep.Retries, rep.Redials, rep.Faults)
	if rep.Clean == 0 {
		t.Fatal("no query completed cleanly — the harness is all noise")
	}
}

// netchaos.go is the network-plane companion to the crash-recovery
// harness: instead of killing the storage stack it abuses the wire.
// A real pmvd server runs over a clean database; every client byte
// flows through a netfault.Proxy that injects latency, resets, bit
// flips, blackholes, and mid-frame tears; N self-healing clients fire
// queries through it concurrently.
//
// Oracle semantics. The dataset is static for the whole run, so every
// (category, store) query pair has one fixed ground-truth result
// multiset, computed up front through plain local execution. Under
// chaos each query must then land in exactly one of three buckets:
//
//  1. clean completion, report unflagged — the delivered multiset
//     equals ground truth exactly (every row exactly once);
//  2. flagged completion (Shed / PartialOnly / DeadlineExpired /
//     Degraded) or typed ErrInterrupted — the delivered multiset is a
//     subset of ground truth (no duplicate, no invented row);
//  3. typed failure — ErrUnavailable, ErrRemote, or the context's own
//     error, with zero or subset delivery.
//
// Anything else — duplicated rows, fabricated rows, an untyped error —
// is an oracle violation and fails the run, as are leaked goroutines
// or sessions still active after shutdown.
package torture

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"pmv"
	"pmv/client"
	"pmv/internal/netfault"
	"pmv/internal/server"
	"pmv/internal/value"
	"pmv/internal/wire"
)

// NetOptions configures one network-chaos run.
type NetOptions struct {
	// Seed drives the fault schedule, every client's jitter, and the
	// query mix.
	Seed int64
	// Clients is how many concurrent self-healing clients run
	// (default 8).
	Clients int
	// Queries is how many queries each client issues (default 50).
	Queries int
	// Dir is the database directory (default: fresh temp dir, removed
	// on success, kept on failure).
	Dir string
}

// NetReport summarizes one run.
type NetReport struct {
	Seed        int64
	Queries     int // queries issued across all clients
	Clean       int // bucket 1: exact results
	Flagged     int // bucket 2: flagged subsets
	Interrupted int // bucket 2: typed mid-stream interruptions
	Unavailable int // bucket 3: ErrUnavailable after retry budget
	Remote      int // bucket 3: server-reported errors
	CtxExpired  int // bucket 3: the query's own deadline fired client-side
	Retries     int64
	Redials     int64
	Faults      netfault.Stats
	Server      wire.ServerStats
}

const (
	chaosCategories = 8
	chaosStores     = 5
)

// chaosDB builds the static storefront dataset and its per-pair
// ground-truth multisets.
func chaosDB(dir string) (*pmv.DB, map[[2]int64]map[string]int, error) {
	db, err := pmv.Open(dir, pmv.Options{})
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*pmv.DB, map[[2]int64]map[string]int, error) {
		db.Close()
		return nil, nil, err
	}
	steps := []error{
		db.CreateRelation("product",
			pmv.Col("pid", pmv.TypeInt),
			pmv.Col("category", pmv.TypeInt),
			pmv.Col("name", pmv.TypeString)),
		db.CreateRelation("sale",
			pmv.Col("pid", pmv.TypeInt),
			pmv.Col("store", pmv.TypeInt),
			pmv.Col("discount", pmv.TypeInt)),
		db.CreateIndex("product", "pid"),
		db.CreateIndex("product", "category"),
		db.CreateIndex("sale", "pid"),
		db.CreateIndex("sale", "store"),
	}
	for _, err := range steps {
		if err != nil {
			return fail(err)
		}
	}
	for pid := int64(0); pid < 400; pid++ {
		if err := db.Insert("product", pmv.Int(pid), pmv.Int(pid%chaosCategories), pmv.Str("p")); err != nil {
			return fail(err)
		}
		if err := db.Insert("sale", pmv.Int(pid), pmv.Int((pid/8)%chaosStores), pmv.Int(pid%50)); err != nil {
			return fail(err)
		}
	}
	tpl := pmv.NewTemplate("on_sale").
		From("product", "sale").
		Select("product.pid", "sale.discount").
		Join("product.pid", "sale.pid").
		WhereEq("product.category").
		WhereEq("sale.store").
		MustBuild()
	if _, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 64, TuplesPerBCP: 4}); err != nil {
		return fail(err)
	}

	want := make(map[[2]int64]map[string]int)
	for c := int64(0); c < chaosCategories; c++ {
		for st := int64(0); st < chaosStores; st++ {
			q := pmv.NewQuery(tpl).In(0, pmv.Int(c)).In(1, pmv.Int(st)).Query()
			set := make(map[string]int)
			err := db.Execute(q, func(t pmv.Tuple) error {
				set[tupleKey(t)]++
				return nil
			})
			if err != nil {
				return fail(err)
			}
			want[[2]int64{c, st}] = set
		}
	}
	return db, want, nil
}

func tupleKey(t value.Tuple) string {
	return string(value.EncodeTuple(nil, t))
}

// classify checks one query's delivered multiset against ground truth:
// exact demands equality; otherwise any subset passes. The returned
// error describes the violation.
func classify(want map[string]int, got map[string]int, exact bool) error {
	total := 0
	for k, n := range got {
		w := want[k]
		if n > w {
			if w == 0 {
				return fmt.Errorf("fabricated row delivered %d times", n)
			}
			return fmt.Errorf("row duplicated: delivered %d times, ground truth has %d", n, w)
		}
		total += n
	}
	if exact {
		wantTotal := 0
		for _, n := range want {
			wantTotal += n
		}
		if total != wantTotal {
			return fmt.Errorf("clean completion delivered %d of %d rows", total, wantTotal)
		}
	}
	return nil
}

func flagged(rep client.Report) bool {
	return rep.Shed || rep.PartialOnly || rep.DeadlineExpired || rep.Degraded
}

// RunNet executes one network-chaos cycle. A nil error means the
// oracle held for every query and nothing leaked.
func RunNet(opts NetOptions) (NetReport, error) {
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.Queries <= 0 {
		opts.Queries = 50
	}
	cleanup := false
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "pmv-netchaos")
		if err != nil {
			return NetReport{}, err
		}
		opts.Dir = filepath.Join(dir, "db")
		cleanup = true
	}
	rep := NetReport{Seed: opts.Seed}

	baseGoroutines := runtime.NumGoroutine()

	db, want, err := chaosDB(opts.Dir)
	if err != nil {
		return rep, fmt.Errorf("netchaos seed %d: setup: %w", opts.Seed, err)
	}
	defer db.Close()

	// Hardened server: tight-but-survivable deadlines so blackholed and
	// stalled sessions are reclaimed within the run, a small pool so
	// shedding actually happens, and a cap above the steady-state conn
	// count (reconnects transiently double-count a client).
	srv := server.New(db, server.Config{
		PoolSize:     2,
		DrainTimeout: 2 * time.Second,
		MaxConns:     2*opts.Clients + 4,
		IdleTimeout:  500 * time.Millisecond,
		FrameTimeout: time.Second,
		WriteTimeout: time.Second,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return rep, fmt.Errorf("netchaos seed %d: start server: %w", opts.Seed, err)
	}
	defer srv.Shutdown()

	// The chaos schedule: constant low-grade latency plus probabilistic
	// faults on every operation in both directions.
	inj := netfault.NewInjector(opts.Seed)
	inj.SetShape(netfault.Shape{Latency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond})
	inj.Add(netfault.Rule{Kind: netfault.FaultReset, Op: netfault.OpAny, Prob: 0.004, Sticky: true})
	inj.Add(netfault.Rule{Kind: netfault.FaultCorrupt, Op: netfault.OpAny, Prob: 0.002, Sticky: true})
	inj.Add(netfault.Rule{Kind: netfault.FaultPartialWrite, Op: netfault.OpWrite, Prob: 0.002, Sticky: true})
	inj.Add(netfault.Rule{Kind: netfault.FaultBlackhole, Op: netfault.OpAny, Prob: 0.0005, Sticky: true})
	proxy, err := netfault.NewProxy("127.0.0.1:0", srv.Addr().String(), inj)
	if err != nil {
		return rep, fmt.Errorf("netchaos seed %d: proxy: %w", opts.Seed, err)
	}
	defer proxy.Close()

	var (
		mu        sync.Mutex
		violation error
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if violation == nil {
			violation = err
		}
		mu.Unlock()
	}
	bump := func(field *int) {
		mu.Lock()
		*field++
		mu.Unlock()
	}

	clients := make([]*client.Client, opts.Clients)
	for i := range clients {
		clients[i] = client.NewConfig(client.Config{
			Addr:          proxy.Addr().String(),
			DialTimeout:   2 * time.Second,
			DeadlineGrace: time.Second,
			MaxRetries:    4,
			BackoffBase:   5 * time.Millisecond,
			BackoffMax:    100 * time.Millisecond,
			Seed:          opts.Seed + int64(i) + 1,
		})
	}

	for i, c := range clients {
		wg.Add(1)
		go func(id int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed ^ int64(id)<<16))
			for q := 0; q < opts.Queries; q++ {
				pair := [2]int64{rng.Int63n(chaosCategories), rng.Int63n(chaosStores)}
				conds := []client.Cond{
					{Values: []client.Value{client.Int(pair[0])}},
					{Values: []client.Value{client.Int(pair[1])}},
				}
				got := make(map[string]int)
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				qrep, err := c.ExecutePartial(ctx, "pmv_on_sale", conds, func(r client.Row) error {
					got[tupleKey(r.Tuple)]++
					return nil
				})
				cancel()
				switch {
				case err == nil && !flagged(qrep):
					if verr := classify(want[pair], got, true); verr != nil {
						fail(fmt.Errorf("client %d query %d pair %v: %w", id, q, pair, verr))
						return
					}
					bump(&rep.Clean)
				case err == nil:
					if verr := classify(want[pair], got, false); verr != nil {
						fail(fmt.Errorf("client %d query %d pair %v (flagged): %w", id, q, pair, verr))
						return
					}
					bump(&rep.Flagged)
				case errors.Is(err, client.ErrInterrupted):
					if verr := classify(want[pair], got, false); verr != nil {
						fail(fmt.Errorf("client %d query %d pair %v (interrupted): %w", id, q, pair, verr))
						return
					}
					bump(&rep.Interrupted)
				case errors.Is(err, client.ErrUnavailable):
					bump(&rep.Unavailable)
				case errors.Is(err, client.ErrRemote):
					bump(&rep.Remote)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					if verr := classify(want[pair], got, false); verr != nil {
						fail(fmt.Errorf("client %d query %d pair %v (ctx): %w", id, q, pair, verr))
						return
					}
					bump(&rep.CtxExpired)
				default:
					fail(fmt.Errorf("client %d query %d pair %v: untyped error %v", id, q, pair, err))
					return
				}
			}
		}(i, c)
	}
	wg.Wait()

	for _, c := range clients {
		rep.Retries += c.Counters().Retries
		rep.Redials += c.Counters().Redials
		c.Close()
	}
	rep.Queries = opts.Clients * opts.Queries
	rep.Faults = inj.Stats()

	if violation != nil {
		return rep, fmt.Errorf("netchaos seed %d: %w (db kept at %s)", opts.Seed, violation, opts.Dir)
	}

	// Teardown must leave nothing behind: no live sessions, no leaked
	// goroutines (server, proxy, client, and worker goroutines all
	// retire).
	if err := proxy.Close(); err != nil {
		return rep, fmt.Errorf("netchaos seed %d: proxy close: %w", opts.Seed, err)
	}
	if err := srv.Shutdown(); err != nil {
		return rep, fmt.Errorf("netchaos seed %d: shutdown: %w", opts.Seed, err)
	}
	rep.Server = srv.Metrics().Snapshot()
	if n := rep.Server.SessionsActive; n != 0 {
		return rep, fmt.Errorf("netchaos seed %d: %d sessions still active after shutdown", opts.Seed, n)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines {
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("netchaos seed %d: goroutine leak: %d running, %d at start",
				opts.Seed, runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if cleanup {
		os.RemoveAll(filepath.Dir(opts.Dir))
	}
	return rep, nil
}

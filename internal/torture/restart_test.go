package torture

import "testing"

// One warm-vs-cold restart comparison rides in the suite;
// cmd/pmvtorture -restart runs the wide sweep. The compare form is
// deliberate: it asserts not just that the oracle held but that the
// snapshot visibly paid for itself.
func TestRestartChaosSmoke(t *testing.T) {
	warm, cold, err := RunRestartCompare(RestartOptions{Seed: 1, Clients: 4, Queries: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("restartchaos seed 1 warm: %d queries: clean=%d flagged=%d reboots=%d warmboots=%d entries=%d hitrate=%.3f installs=%d",
		warm.Queries, warm.Clean, warm.Flagged, warm.Reboots, warm.WarmBoots,
		warm.WarmEntries, warm.SweepHitRate, warm.EpochInstalls)
	t.Logf("restartchaos seed 1 cold: hitrate=%.3f (probed=%d hits=%d)",
		cold.SweepHitRate, cold.SweepProbed, cold.SweepHits)
	if !warm.CorruptRejected || !warm.StaleRejected {
		t.Fatalf("rejection ladder incomplete: corrupt=%v stale=%v",
			warm.CorruptRejected, warm.StaleRejected)
	}
	if warm.Clean == 0 {
		t.Fatal("no query completed cleanly — the harness is all noise")
	}
}

// One seeded snapshot-fault cycle sequence rides in the suite;
// cmd/pmvtorture -snap runs the wide sweep.
func TestSnapFaultSmoke(t *testing.T) {
	rep, err := RunSnapFault(SnapFaultOptions{Seed: 1, Cycles: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("snapfault seed 1: %d cycles: warm=%d cold=%d write-errors=%d reasons=%v faults=%+v",
		rep.Cycles, rep.WarmBoots, rep.ColdBoots, rep.WriteErrors, rep.ColdReasons, rep.Faults)
	if rep.WarmBoots == 0 {
		t.Fatal("no cycle booted warm — the control scenario never ran")
	}
}

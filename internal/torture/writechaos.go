// writechaos.go tortures the write plane: three shard servers, each
// running a batched maintenance plane, behind per-shard
// fault-injecting proxies; one router fanning ΔR batches to all of
// them; concurrent writers and readers hammering it while a seeded
// chaos driver blackholes links and fires reset bursts.
//
// The oracle is a per-pid version timeline. Each writer owns a
// disjoint pid set and overwrites sale.discount with a monotonically
// increasing sequence (pure overwrites — idempotent, so the writer
// may retry a batch whose fate is unknown). For every read the
// harness brackets the query with two observations per pid: the last
// sequence ACKED before the query started (the staleness floor — an
// ack means every shard applied it) and the last sequence SUBMITTED
// before the query ended (the fabrication ceiling — no higher value
// exists anywhere). A clean, unflagged query must deliver exactly the
// static pid membership of its (category, store) pair with every
// discount inside its pid's window; any older value is a stale tuple
// served unflagged, any newer one is fabricated. Flagged or
// typed-failed reads only drop the floor (a stale partial may have
// streamed before the DS audit failed the query) — the ceiling and
// the membership check still hold. After the chaos window heals, the
// writers drain every un-acked batch and a sweep demands each pair
// converge to a clean, exact answer at each pid's final sequence.
package torture

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pmv/client"
	"pmv/internal/cluster"
	"pmv/internal/maint"
	"pmv/internal/netfault"
	"pmv/internal/server"
)

// WriteOptions configures one write-chaos run.
type WriteOptions struct {
	// Seed drives the chaos schedule, every injector, and the mix.
	Seed int64
	// Writers is how many concurrent writers run (default 4).
	Writers int
	// Writes is how many acked updates each writer lands (default 40).
	Writes int
	// Readers is how many concurrent readers run (default 4).
	Readers int
	// Dir is the parent directory for the shard databases (default:
	// fresh temp dir, removed on success, kept on failure).
	Dir string
}

// WriteReport summarizes one run.
type WriteReport struct {
	Seed int64

	// Write side.
	Writes        int   // acked update batches
	WriteRetries  int   // batches re-sent after a typed failure
	WriteFailures int   // typed update failures observed
	FanoutSent    int64 // router invalidations dispatched

	// Read side, bucketed like netchaos.
	Reads       int
	Clean       int
	Flagged     int
	Interrupted int
	Unavailable int
	Remote      int
	CtxExpired  int

	// Chaos events delivered.
	Blackholes  int
	ResetBursts int
	Faults      netfault.Stats
}

// discountOf maps a pid's version sequence to the discount value it
// writes: sequence 0 is the loader's pid%50, later sequences are
// offset far above it so any value decodes to exactly one sequence.
func discountOf(pid, seq int64) int64 {
	if seq == 0 {
		return pid % 50
	}
	return 10000 + seq
}

// seqOf decodes a served discount back to its sequence (-1 = value
// that never existed for this pid).
func seqOf(pid, v int64) int64 {
	if v == pid%50 {
		return 0
	}
	if v >= 10001 {
		return v - 10000
	}
	return -1
}

// pidTimeline is one pid's write clock: sent is bumped before the
// batch hits the wire, acked after the router confirms every shard
// applied it.
type pidTimeline struct {
	sent  atomic.Int64
	acked atomic.Int64
}

// RunWrite executes one write-chaos cycle. A nil error means the
// staleness oracle held for every read and nothing leaked.
func RunWrite(opts WriteOptions) (WriteReport, error) {
	if opts.Writers <= 0 {
		opts.Writers = 4
	}
	if opts.Writes <= 0 {
		opts.Writes = 40
	}
	if opts.Readers <= 0 {
		opts.Readers = 4
	}
	cleanup := false
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "pmv-writechaos")
		if err != nil {
			return WriteReport{}, err
		}
		opts.Dir = dir
		cleanup = true
	}
	rep := WriteReport{Seed: opts.Seed}
	fail := func(format string, args ...any) (WriteReport, error) {
		return rep, fmt.Errorf("writechaos seed %d: %s (dirs kept at %s)",
			opts.Seed, fmt.Sprintf(format, args...), opts.Dir)
	}

	baseGoroutines := runtime.NumGoroutine()

	// Static pid membership per (category, store) pair — writes only
	// overwrite discounts, never move a pid between pairs.
	members := make(map[[2]int64][]int64)
	for pid := int64(0); pid < 400; pid++ {
		pair := [2]int64{pid % chaosCategories, (pid / 8) % chaosStores}
		members[pair] = append(members[pair], pid)
	}
	timelines := make([]pidTimeline, 400)

	var (
		srvs    [clusterShards]*server.Server
		planes  [clusterShards]*maint.Plane
		injs    [clusterShards]*netfault.Injector
		proxies [clusterShards]*netfault.Proxy
	)
	shardCfg := clusterShardConfig(opts.Writers + opts.Readers)
	for i := 0; i < clusterShards; i++ {
		db, _, err := chaosDB(filepath.Join(opts.Dir, fmt.Sprintf("shard%d", i)))
		if err != nil {
			return fail("shard %d setup: %v", i, err)
		}
		defer db.Close()
		p, err := maint.New(maint.Config{Source: db, MaxDelay: time.Millisecond})
		if err != nil {
			return fail("shard %d plane: %v", i, err)
		}
		planes[i] = p
		defer p.Close()
		s := server.New(db, shardCfg)
		s.SetMaint(p)
		if err := s.Start("127.0.0.1:0"); err != nil {
			return fail("shard %d start: %v", i, err)
		}
		srvs[i] = s
		defer s.Shutdown()

		injs[i] = netfault.NewInjector(opts.Seed*clusterShards + int64(i))
		armBackground(injs[i])
		proxy, err := netfault.NewProxy("127.0.0.1:0", s.Addr().String(), injs[i])
		if err != nil {
			return fail("shard %d proxy: %v", i, err)
		}
		proxies[i] = proxy
		defer proxy.Close()
	}

	proxyAddrs := make([]string, clusterShards)
	for i, p := range proxies {
		proxyAddrs[i] = p.Addr().String()
	}
	r, err := cluster.NewRouter(cluster.Config{
		Shards:          proxyAddrs,
		PoolSize:        2,
		DialTimeout:     time.Second,
		RefillTimeout:   time.Second,
		InvalTimeout:    time.Second,
		DrainTimeout:    2 * time.Second,
		FrameTimeout:    2 * time.Second,
		WriteTimeout:    2 * time.Second,
		DefaultDeadline: 3 * time.Second,
	})
	if err != nil {
		return fail("router: %v", err)
	}
	if err := r.Start("127.0.0.1:0"); err != nil {
		return fail("router start: %v", err)
	}
	defer r.Shutdown()

	// Chaos driver: link abuse only — blackholes and reset bursts. No
	// shard kills: a killed shard would fail every in-flight update
	// (by design), starving the write workload this harness exists to
	// exercise. Kills are clusterchaos's job.
	stopChaos := make(chan struct{})
	chaosDone := make(chan struct{})
	var chaosMu sync.Mutex
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(opts.Seed ^ 0x3417e))
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(time.Duration(150+rng.Intn(250)) * time.Millisecond):
			}
			shard := rng.Intn(clusterShards)
			if rng.Intn(2) == 0 {
				injs[shard].Add(netfault.Rule{Kind: netfault.FaultBlackhole, Op: netfault.OpAny, AfterOps: 1, Sticky: true})
				time.Sleep(time.Duration(80+rng.Intn(120)) * time.Millisecond)
				injs[shard].Clear()
				armBackground(injs[shard])
				chaosMu.Lock()
				rep.Blackholes++
				chaosMu.Unlock()
			} else {
				injs[shard].Add(netfault.Rule{Kind: netfault.FaultReset, Op: netfault.OpAny, Prob: 0.15, Sticky: true})
				time.Sleep(time.Duration(80+rng.Intn(120)) * time.Millisecond)
				injs[shard].Clear()
				armBackground(injs[shard])
				chaosMu.Lock()
				rep.ResetBursts++
				chaosMu.Unlock()
			}
		}
	}()

	var (
		mu        sync.Mutex
		violation error
	)
	abort := func(err error) {
		mu.Lock()
		if violation == nil {
			violation = err
		}
		mu.Unlock()
	}
	violated := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return violation != nil
	}
	bump := func(field *int) {
		mu.Lock()
		*field++
		mu.Unlock()
	}

	newClient := func(seed int64) *client.Client {
		return client.NewConfig(client.Config{
			Addr:          r.Addr().String(),
			DialTimeout:   2 * time.Second,
			DeadlineGrace: time.Second,
			MaxRetries:    4,
			BackoffBase:   5 * time.Millisecond,
			BackoffMax:    100 * time.Millisecond,
			Seed:          seed,
		})
	}

	// sendAcked lands one overwrite, retrying the idempotent op until
	// the router acks or attempts run out. Returns whether it acked.
	sendAcked := func(c *client.Client, rng *rand.Rand, pid, seq int64, attempts int) bool {
		tl := &timelines[pid]
		tl.sent.Store(seq)
		op := client.Set("sale", "pid", client.Int(pid), "discount", client.Int(discountOf(pid, seq)))
		for att := 0; att < attempts; att++ {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, err := c.Update(ctx, true, op)
			cancel()
			if err == nil {
				tl.acked.Store(seq)
				bump(&rep.Writes)
				return true
			}
			bump(&rep.WriteFailures)
			switch {
			case errors.Is(err, client.ErrRemote), errors.Is(err, client.ErrUnavailable),
				errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			default:
				abort(fmt.Errorf("writer pid %d seq %d: untyped error %v", pid, seq, err))
				return false
			}
			bump(&rep.WriteRetries)
			time.Sleep(time.Duration(10+rng.Intn(40)) * time.Millisecond)
		}
		return false
	}

	var wg sync.WaitGroup
	writerClients := make([]*client.Client, opts.Writers)
	for w := 0; w < opts.Writers; w++ {
		writerClients[w] = newClient(opts.Seed + 100 + int64(w))
		wg.Add(1)
		go func(w int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed ^ int64(w)<<20))
			landed := 0
			for landed < opts.Writes && !violated() {
				// Disjoint ownership: writer w owns pid ≡ w (mod writers).
				pid := int64(rng.Intn(400/opts.Writers))*int64(opts.Writers) + int64(w)
				seq := timelines[pid].sent.Load() + 1
				if sendAcked(c, rng, pid, seq, 20) {
					landed++
				}
				time.Sleep(time.Duration(2+rng.Intn(8)) * time.Millisecond)
			}
		}(w, writerClients[w])
	}

	readerClients := make([]*client.Client, opts.Readers)
	reads := (opts.Writers * opts.Writes) / 2
	for id := 0; id < opts.Readers; id++ {
		readerClients[id] = newClient(opts.Seed + 500 + int64(id))
		wg.Add(1)
		go func(id int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed ^ int64(id)<<28))
			for q := 0; q < reads && !violated(); q++ {
				time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
				pair := [2]int64{rng.Int63n(chaosCategories), rng.Int63n(chaosStores)}
				pids := members[pair]

				// The staleness floor: sequences acked before the query
				// started. An older value served by a clean query below
				// is a stale tuple the plane failed to kill.
				floor := make(map[int64]int64, len(pids))
				for _, pid := range pids {
					floor[pid] = timelines[pid].acked.Load()
				}
				got := make(map[int64][]int64)
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				qrep, err := c.ExecutePartial(ctx, "pmv_on_sale",
					[]client.Cond{
						{Values: []client.Value{client.Int(pair[0])}},
						{Values: []client.Value{client.Int(pair[1])}},
					},
					func(row client.Row) error {
						got[row.Tuple[0].Int64()] = append(got[row.Tuple[0].Int64()], row.Tuple[1].Int64())
						return nil
					})
				cancel()
				// The fabrication ceiling: sequences submitted anywhere
				// before the query ended. No shard can hold more.
				ceil := make(map[int64]int64, len(pids))
				for _, pid := range pids {
					ceil[pid] = timelines[pid].sent.Load()
				}

				clean := err == nil && !flagged(qrep)
				if verr := checkRead(pair, pids, got, floor, ceil, clean); verr != nil {
					abort(fmt.Errorf("reader %d read %d: %w", id, q, verr))
					return
				}
				bump(&rep.Reads)
				switch {
				case clean:
					bump(&rep.Clean)
				case err == nil:
					bump(&rep.Flagged)
				case errors.Is(err, client.ErrInterrupted):
					bump(&rep.Interrupted)
				case errors.Is(err, client.ErrUnavailable):
					bump(&rep.Unavailable)
				case errors.Is(err, client.ErrRemote):
					bump(&rep.Remote)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					bump(&rep.CtxExpired)
				default:
					abort(fmt.Errorf("reader %d read %d pair %v: untyped error %v", id, q, pair, err))
					return
				}
			}
		}(id, readerClients[id])
	}

	wg.Wait()
	close(stopChaos)
	<-chaosDone
	for _, inj := range injs {
		inj.Clear()
	}

	// Drain: re-send every batch whose fate is unknown over the healed
	// links until each pid's timeline converges (acked == sent), so the
	// sweep below can demand exact final values.
	if !violated() {
		drain := newClient(opts.Seed + 900)
		rng := rand.New(rand.NewSource(opts.Seed ^ 0xd7a17))
		for pid := int64(0); pid < 400; pid++ {
			tl := &timelines[pid]
			if s := tl.sent.Load(); s != tl.acked.Load() {
				if !sendAcked(drain, rng, pid, s, 50) {
					abort(fmt.Errorf("drain: pid %d never converged (sent %d acked %d)", pid, s, tl.acked.Load()))
					break
				}
			}
		}
		drain.Close()
	}

	// Sweep: every pair must converge to one clean, exact answer at
	// each pid's final sequence — proving every shard holds the final
	// base data and no cache anywhere still serves a pre-drain value.
	if !violated() {
		sweep := newClient(opts.Seed + 1000)
		for cat := int64(0); cat < chaosCategories && !violated(); cat++ {
			for st := int64(0); st < chaosStores && !violated(); st++ {
				pair := [2]int64{cat, st}
				pids := members[pair]
				final := make(map[int64]int64, len(pids))
				for _, pid := range pids {
					final[pid] = timelines[pid].acked.Load()
				}
				converged := false
				var lastErr error
				for att := 0; att < 10 && !converged; att++ {
					got := make(map[int64][]int64)
					ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
					qrep, err := sweep.ExecutePartial(ctx, "pmv_on_sale",
						[]client.Cond{
							{Values: []client.Value{client.Int(cat)}},
							{Values: []client.Value{client.Int(st)}},
						},
						func(row client.Row) error {
							got[row.Tuple[0].Int64()] = append(got[row.Tuple[0].Int64()], row.Tuple[1].Int64())
							return nil
						})
					cancel()
					clean := err == nil && !flagged(qrep)
					if verr := checkRead(pair, pids, got, final, final, clean); verr != nil {
						abort(fmt.Errorf("sweep attempt %d: %w", att, verr))
						break
					}
					if clean {
						converged = true
					} else {
						lastErr = err
						time.Sleep(50 * time.Millisecond)
					}
				}
				if !converged && !violated() {
					abort(fmt.Errorf("sweep pair %v never converged to a clean exact answer (last: %v)", pair, lastErr))
				}
			}
		}
		sweep.Close()
	}

	for _, c := range writerClients {
		c.Close()
	}
	for _, c := range readerClients {
		c.Close()
	}
	rep.FanoutSent = r.Metrics().FanoutSent.Load()
	for _, inj := range injs {
		st := inj.Stats()
		rep.Faults.Conns += st.Conns
		rep.Faults.Ops += st.Ops
		rep.Faults.BytesRead += st.BytesRead
		rep.Faults.BytesWritten += st.BytesWritten
		rep.Faults.Resets += st.Resets
		rep.Faults.Corruptions += st.Corruptions
		rep.Faults.Blackholes += st.Blackholes
		rep.Faults.PartialWrites += st.PartialWrites
	}

	if violation != nil {
		return fail("%v", violation)
	}

	// Teardown must leave nothing behind: router, proxies, planes,
	// shards, and finally the goroutine census.
	if err := r.Shutdown(); err != nil {
		return fail("router shutdown: %v", err)
	}
	if n := r.Metrics().SessionsActive.Load(); n != 0 {
		return fail("%d router sessions still active after shutdown", n)
	}
	for i, p := range proxies {
		if err := p.Close(); err != nil {
			return fail("proxy %d close: %v", i, err)
		}
	}
	for i := 0; i < clusterShards; i++ {
		if err := srvs[i].Shutdown(); err != nil {
			return fail("shard %d shutdown: %v", i, err)
		}
		if err := planes[i].Close(); err != nil {
			return fail("shard %d plane close: %v", i, err)
		}
		if n := srvs[i].Metrics().Snapshot().SessionsActive; n != 0 {
			return fail("shard %d: %d sessions still active after shutdown", i, n)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines {
		if time.Now().After(deadline) {
			return fail("goroutine leak: %d running, %d at start", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if cleanup {
		os.RemoveAll(opts.Dir)
	}
	return rep, nil
}

// checkRead applies the version-timeline oracle to one read's
// delivery. Clean reads must be exact: the full membership, each pid
// once, every sequence inside [floor, ceil]. Non-clean reads drop the
// floor and the completeness demand but keep membership, uniqueness,
// and the ceiling.
func checkRead(pair [2]int64, pids []int64, got map[int64][]int64, floor, ceil map[int64]int64, clean bool) error {
	for pid, vals := range got {
		c, ok := ceil[pid]
		if !ok {
			return fmt.Errorf("pair %v: fabricated pid %d delivered", pair, pid)
		}
		if len(vals) > 1 {
			return fmt.Errorf("pair %v: pid %d delivered %d times", pair, pid, len(vals))
		}
		seq := seqOf(pid, vals[0])
		if seq < 0 || seq > c {
			return fmt.Errorf("pair %v: pid %d delivered discount %d (seq %d), never written (ceiling %d)",
				pair, pid, vals[0], seq, c)
		}
		if clean && seq < floor[pid] {
			return fmt.Errorf("pair %v: STALE tuple served unflagged: pid %d at seq %d, acked floor %d",
				pair, pid, seq, floor[pid])
		}
	}
	if clean && len(got) != len(pids) {
		return fmt.Errorf("pair %v: clean read delivered %d of %d pids", pair, len(got), len(pids))
	}
	return nil
}

// snapfault.go tortures the snapshot file itself: one database, one
// snapshot manager, and a vfs fault injector between the manager and
// the disk. Each cycle fills the cache, writes a snapshot under a
// scripted storage fault (torn write, sticky fsync failure, read-path
// bit rot, or a crash that drops everything unsynced), reboots the
// database cold, and loads whatever survived.
//
// The contract under test is the boot-time validation ladder: a boot
// is either warm with every admitted entry byte-identical to ground
// truth, or cold with a typed reason — never a panic, never a
// fabricated or duplicated tuple. Warm correctness is checked the
// strong way: every (category, store) pair is re-executed through
// Operation O3, whose DS multiset cross-checks cached partials against
// the base data, so a snapshot that resurrected a wrong tuple fails
// the cycle even if it decoded cleanly.
package torture

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pmv"
	"pmv/internal/snapshot"
	"pmv/internal/vfs"
)

// SnapFaultOptions configures one snapshot-fault run.
type SnapFaultOptions struct {
	// Seed drives the fault schedule parameters.
	Seed int64
	// Cycles is how many fill→snapshot→reboot→load cycles to run
	// (default 10; scenarios rotate, so 5 covers each once).
	Cycles int
	// Dir is the working directory (default: fresh temp dir, removed
	// on success, kept on failure).
	Dir string
}

// SnapFaultReport summarizes one run.
type SnapFaultReport struct {
	Seed        int64
	Cycles      int
	WarmBoots   int
	ColdBoots   int
	WriteErrors int
	// ColdReasons tallies the typed cold-boot explanations observed.
	ColdReasons map[string]int
	// Faults aggregates what the injectors actually delivered.
	Faults vfs.FaultStats
}

// snapFaultScenario names the per-cycle storage fault scripts.
const (
	snapNone = iota // control: no faults, boot must be warm
	snapTorn        // torn writes: random prefixes reach the page cache
	snapSync        // sticky fsync failure partway through the commit
	snapRot         // bit rot on the boot-time read path
	snapCrash       // crash mid-commit: unsynced writes are lost
	snapScenarios
)

// RunSnapFault executes one snapshot-fault cycle sequence. A nil error
// means every boot was warm-and-exact or cold-and-typed, and the
// control cycles all booted warm.
func RunSnapFault(opts SnapFaultOptions) (SnapFaultReport, error) {
	if opts.Cycles <= 0 {
		opts.Cycles = 10
	}
	cleanup := false
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "pmv-snapfault")
		if err != nil {
			return SnapFaultReport{}, err
		}
		opts.Dir = dir
		cleanup = true
	}
	rep := SnapFaultReport{Seed: opts.Seed, Cycles: opts.Cycles, ColdReasons: make(map[string]int)}
	fail := func(format string, args ...any) (SnapFaultReport, error) {
		return rep, fmt.Errorf("snapfault seed %d: %s (dirs kept at %s)",
			opts.Seed, fmt.Sprintf(format, args...), opts.Dir)
	}

	dbDir := filepath.Join(opts.Dir, "db")
	snapDir := filepath.Join(opts.Dir, "snap")
	db, want, err := chaosDB(dbDir)
	if err != nil {
		return fail("setup: %v", err)
	}
	defer func() {
		if db != nil {
			db.Close()
		}
	}()

	// fill runs every (category, store) pair through ExecutePartial
	// twice so the cache holds the full working set under any policy,
	// and — when exact is set — demands byte-exact multisets, which is
	// how warm boots are proven correct.
	fill := func(rounds int, exact bool, stage string) error {
		v, ok := db.ViewByName("pmv_on_sale")
		if !ok {
			return fmt.Errorf("%s: view missing after reopen", stage)
		}
		tpl := v.Config().Template
		for r := 0; r < rounds; r++ {
			for c := int64(0); c < chaosCategories; c++ {
				for st := int64(0); st < chaosStores; st++ {
					pair := [2]int64{c, st}
					q := pmv.NewQuery(tpl).In(0, pmv.Int(c)).In(1, pmv.Int(st)).Query()
					got := make(map[string]int)
					if _, err := v.ExecutePartial(q, func(res pmv.Result) error {
						got[tupleKey(res.Tuple)]++
						return nil
					}); err != nil {
						return fmt.Errorf("%s pair %v: %w", stage, pair, err)
					}
					if exact {
						if verr := classify(want[pair], got, true); verr != nil {
							return fmt.Errorf("%s pair %v: %w", stage, pair, verr)
						}
					}
				}
			}
		}
		return nil
	}

	addStats := func(st vfs.FaultStats) {
		rep.Faults.Ops += st.Ops
		rep.Faults.Errors += st.Errors
		rep.Faults.TornWrites += st.TornWrites
		rep.Faults.SyncFailures += st.SyncFailures
		rep.Faults.CorruptReads += st.CorruptReads
		rep.Faults.Crashes += st.Crashes
	}

	for cycle := 0; cycle < opts.Cycles; cycle++ {
		scenario := cycle % snapScenarios
		seed := opts.Seed + int64(cycle)*7919

		if err := fill(2, true, fmt.Sprintf("cycle %d fill", cycle)); err != nil {
			return fail("%v", err)
		}

		// Write the snapshot through a faulted filesystem. The rules
		// target the snapshot file only: the EPOCH sidecar and the
		// database live outside the blast radius, exactly like a real
		// deployment with a dying snapshot volume.
		wrInj := vfs.NewInjector(seed)
		switch scenario {
		case snapTorn:
			wrInj.Add(vfs.Rule{Kind: vfs.FaultTornWrite, Op: vfs.OpWrite, Path: snapshot.FileName, Prob: 0.5, Sticky: true})
		case snapSync:
			wrInj.Add(vfs.Rule{Kind: vfs.FaultSyncFail, Op: vfs.OpSync, Path: snapshot.FileName, AfterOps: 1 + seed%2, Sticky: true})
		case snapCrash:
			wrInj.Add(vfs.Rule{Kind: vfs.FaultCrash, Op: vfs.OpWrite, Path: snapshot.FileName, AfterOps: 1 + seed%4})
		}
		mgr, err := snapshot.NewManager(snapshot.Config{
			Dir:    snapDir,
			Source: db,
			FS:     vfs.NewFaulty(vfs.OS(), wrInj),
		})
		if err != nil {
			return fail("cycle %d manager: %v", cycle, err)
		}
		if err := mgr.WriteNow(); err != nil {
			rep.WriteErrors++
			if scenario == snapNone || scenario == snapRot {
				return fail("cycle %d: snapshot write failed without a write fault armed: %v", cycle, err)
			}
		}
		// Close without a successful re-write must not mask the fault:
		// under a sticky fault it fails again, under a transient one it
		// may repair the snapshot — both are legitimate outcomes.
		if err := mgr.Close(); err != nil {
			rep.WriteErrors++
		}
		addStats(wrInj.Stats())

		// Reboot: the database closes for real, so the only warmth
		// available to the next incarnation is what the snapshot file
		// holds.
		if err := db.Close(); err != nil {
			db = nil
			return fail("cycle %d close: %v", cycle, err)
		}
		db = nil
		db, err = pmv.Open(dbDir, pmv.Options{})
		if err != nil {
			return fail("cycle %d reopen: %v", cycle, err)
		}

		rdInj := vfs.NewInjector(seed ^ 0x0ddf00d)
		if scenario == snapRot {
			rdInj.Add(vfs.Rule{Kind: vfs.FaultCorruptRead, Op: vfs.OpRead, Path: snapshot.FileName, Prob: 0.8, Sticky: true})
		}
		boot, err := snapshot.NewManager(snapshot.Config{
			Dir:    snapDir,
			Source: db,
			FS:     vfs.NewFaulty(vfs.OS(), rdInj),
		})
		if err != nil {
			return fail("cycle %d boot manager: %v", cycle, err)
		}
		res := boot.Load()
		addStats(rdInj.Stats())
		if err := boot.Close(); err != nil {
			// The final snapshot goes through the read-side injector's
			// filesystem; only the rot scenario leaves it armed, and
			// rot does not fault writes.
			return fail("cycle %d boot-side snapshot close: %v", cycle, err)
		}

		if res.Warm {
			rep.WarmBoots++
			if res.Rejected != 0 {
				return fail("cycle %d (scenario %d): warm boot rejected %d entries: %s", cycle, scenario, res.Rejected, res.Reason)
			}
			v, _ := db.ViewByName("pmv_on_sale")
			if err := v.CheckInvariants(); err != nil {
				return fail("cycle %d: invariants after warm admit: %v", cycle, err)
			}
		} else {
			rep.ColdBoots++
			rep.ColdReasons[coldReasonKind(res.Reason)]++
			if scenario == snapNone {
				return fail("cycle %d: control cycle booted cold: %s", cycle, res.Reason)
			}
			if kind := coldReasonKind(res.Reason); kind == "other" {
				return fail("cycle %d (scenario %d): cold boot reason is not typed: %q", cycle, scenario, res.Reason)
			}
			if v, _ := db.ViewByName("pmv_on_sale"); v.Len() != 0 {
				return fail("cycle %d: cold boot still admitted %d entries", cycle, v.Len())
			}
		}

		// Warm or cold, the reopened database must answer every pair
		// exactly — O3's DS cross-check fails here if the snapshot
		// resurrected a tuple the base data does not back.
		if err := fill(1, true, fmt.Sprintf("cycle %d (scenario %d, warm=%v) verify", cycle, scenario, res.Warm)); err != nil {
			return fail("%v", err)
		}
	}

	if err := db.Close(); err != nil {
		db = nil
		return fail("final close: %v", err)
	}
	db = nil
	if cleanup {
		os.RemoveAll(opts.Dir)
	}
	return rep, nil
}

// coldReasonKind buckets a LoadResult reason into the typed categories
// the validation ladder is allowed to produce.
func coldReasonKind(reason string) string {
	switch {
	case reason == "no snapshot":
		return "absent"
	case strings.Contains(reason, "stale"):
		return "stale"
	case strings.Contains(reason, "corrupt"):
		return "corrupt"
	default:
		return "other"
	}
}

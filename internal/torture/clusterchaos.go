// clusterchaos.go tortures the cluster plane: three real shard servers
// behind per-shard fault-injecting proxies, one router scatter-gathering
// across them, N concurrent clients hammering the router. A seeded
// chaos driver kills and restarts shards on their own addresses,
// blackholes their links, and fires reset bursts while the workload
// runs — so exec failover, probe degradation, and the epoch re-install
// path all get exercised under load, not just in unit tests.
//
// The oracle is netchaos.go's, verbatim: the dataset is static, every
// query lands in exactly one bucket (clean → exact multiset; flagged or
// typed-interrupted → subset; typed failure → zero-or-subset), and a
// duplicated row, fabricated row, untyped error, leaked session, or
// leaked goroutine fails the run. A restarted shard comes back with
// epoch 0, so correctness here additionally proves the router re-teaches
// the shard map mid-flight without double-delivering a row.
package torture

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"pmv"
	"pmv/client"
	"pmv/internal/cluster"
	"pmv/internal/netfault"
	"pmv/internal/server"
	"pmv/internal/workload"
)

// ClusterOptions configures one cluster-chaos run.
type ClusterOptions struct {
	// Seed drives the chaos schedule, every injector, and the query mix.
	Seed int64
	// Clients is how many concurrent clients hammer the router
	// (default 6).
	Clients int
	// Queries is how many queries each client issues (default 30).
	Queries int
	// Dir is the parent directory for the shard databases (default:
	// fresh temp dir, removed on success, kept on failure).
	Dir string
	// Tail enables the router's tail-tolerance plane (health scoring,
	// breakers, hedged probes, budget propagation) and adds gray-ramp
	// and flap events to the chaos schedule, so the exactly-once oracle
	// is proved with hedging racing duplicate row streams.
	Tail bool
	// Hot enables the frequency plane end to end — shard sketches and
	// presence filters, router top-k replication and suppression — and
	// adds hot-replica invalidation chaos: a dedicated writer hammers
	// one sacrificial pair's reads until the router replicates it, then
	// overwrites one of its rows with writechaos's monotone version
	// sequence while the chaos schedule runs. That pair leaves the
	// static oracle; every read of it is bracketed with an acked floor
	// and a sent ceiling instead, so the full write path is exercised
	// against live replicas — drops before the ack, MsgHotInval fan-out
	// racing concurrent MsgHotSet pushes, epoch retries against killed
	// shards, the degradation ladder down to a view-wide invalidation —
	// and a replica resurrected past an invalidation, a duplicated
	// replica tuple, or a fabricated suppression all fail loudly. The
	// remaining pairs keep the exact static multiset oracle.
	Hot bool
	// ZipfAlpha skews the query key choice (0 = uniform) so a stable
	// hot set emerges for the router to replicate; absent-key probes
	// are mixed in to exercise suppression under chaos.
	ZipfAlpha float64
}

// ClusterReport summarizes one run.
type ClusterReport struct {
	Seed        int64
	Queries     int
	Clean       int
	Flagged     int
	Interrupted int
	Unavailable int
	Remote      int
	CtxExpired  int
	// Chaos events the driver actually delivered.
	Kills       int
	Blackholes  int
	ResetBursts int
	GrayRamps   int
	Flaps       int
	// Hot-plane activity (zero unless Options.Hot). HotWrites counts
	// acked overwrites of the sacrificial hot row; HotReads counts
	// floor/ceiling-bracketed reads of the hot pair; AuditFailures
	// counts queries the DS audit failed typed — with real writes in
	// the mix these are the audit doing its job (a read racing a write,
	// or a stale replica pending repair), not duplicates.
	HotWrites      int
	HotReads       int
	AbsentQueries  int
	AuditFailures  int64
	HotPushes      int64
	HotInvals      int64
	HotReplicaHits int64
	HotSuppressed  int64
	// Tail-tolerance counters (zero unless Options.Tail).
	Hedges       int64
	HedgeWins    int64
	BreakerTrips int64
	BreakerSkips int64
	// EpochInstalls counts shard-map pushes across all shards; with
	// kills > 0 it must exceed the initial install fan-out, proving the
	// re-teach path ran.
	EpochInstalls int64
	Retries       int64
	Redials       int64
	Faults        netfault.Stats
}

const clusterShards = 3

// The sacrificial hot pair for Options.Hot runs: the hot writer
// hammers its reads until the router replicates it, then overwrites
// hotChaosPid under a monotone version sequence. Workload clients and
// the static convergence sweep skip this pair — the version-timeline
// oracle owns it.
var hotChaosPair = [2]int64{7, 4}

const hotChaosPid = 39

// hotChaosPids returns the static pid membership of hotChaosPair.
func hotChaosPids() []int64 {
	var pids []int64
	for pid := int64(0); pid < 400; pid++ {
		if pid%chaosCategories == hotChaosPair[0] && (pid/chaosCategories)%chaosStores == hotChaosPair[1] {
			pids = append(pids, pid)
		}
	}
	return pids
}

// hotCheckRead is checkRead for the sacrificial hot pair. Clean reads
// keep the full exact contract. Non-clean reads relax uniqueness to
// "distinct versions": a read racing a write may legitimately stream a
// pre-write partial AND the post-write execution row for the same pid
// — the router's DS audit detects the mismatch and closes the query
// flagged or typed, which is exactly this bucket — but the same
// version twice is still a duplicate-delivery bug, and any version
// above the ceiling is still fabricated.
func hotCheckRead(pair [2]int64, pids []int64, got map[int64][]int64, floor, ceil map[int64]int64, clean bool) error {
	if clean {
		return checkRead(pair, pids, got, floor, ceil, true)
	}
	for pid, vals := range got {
		c, ok := ceil[pid]
		if !ok {
			return fmt.Errorf("pair %v: fabricated pid %d delivered", pair, pid)
		}
		if len(vals) > 2 {
			return fmt.Errorf("pair %v: pid %d delivered %d times", pair, pid, len(vals))
		}
		seen := make(map[int64]struct{}, len(vals))
		for _, v := range vals {
			if _, dup := seen[v]; dup {
				return fmt.Errorf("pair %v: pid %d delivered discount %d twice", pair, pid, v)
			}
			seen[v] = struct{}{}
			if seq := seqOf(pid, v); seq < 0 || seq > c {
				return fmt.Errorf("pair %v: pid %d delivered discount %d (seq %d), never written (ceiling %d)",
					pair, pid, v, seq, c)
			}
		}
	}
	return nil
}

// armBackground installs the always-on low-grade chaos every shard link
// carries between targeted events.
func armBackground(inj *netfault.Injector) {
	inj.SetShape(netfault.Shape{Latency: 100 * time.Microsecond, Jitter: 200 * time.Microsecond})
	inj.Add(netfault.Rule{Kind: netfault.FaultReset, Op: netfault.OpAny, Prob: 0.002, Sticky: true})
	inj.Add(netfault.Rule{Kind: netfault.FaultCorrupt, Op: netfault.OpAny, Prob: 0.001, Sticky: true})
	inj.Add(netfault.Rule{Kind: netfault.FaultPartialWrite, Op: netfault.OpWrite, Prob: 0.001, Sticky: true})
}

func clusterShardConfig(clients int) server.Config {
	return server.Config{
		PoolSize:     2,
		DrainTimeout: time.Second,
		MaxConns:     4*clients + 16,
		IdleTimeout:  time.Second,
		FrameTimeout: time.Second,
		WriteTimeout: time.Second,
	}
}

// RunCluster executes one cluster-chaos cycle. A nil error means the
// oracle held for every query and nothing leaked.
func RunCluster(opts ClusterOptions) (ClusterReport, error) {
	if opts.Clients <= 0 {
		opts.Clients = 6
	}
	if opts.Queries <= 0 {
		opts.Queries = 30
	}
	cleanup := false
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "pmv-clusterchaos")
		if err != nil {
			return ClusterReport{}, err
		}
		opts.Dir = dir
		cleanup = true
	}
	rep := ClusterReport{Seed: opts.Seed}
	fail := func(format string, args ...any) (ClusterReport, error) {
		return rep, fmt.Errorf("clusterchaos seed %d: %s (dirs kept at %s)",
			opts.Seed, fmt.Sprintf(format, args...), opts.Dir)
	}

	baseGoroutines := runtime.NumGoroutine()

	// Three shards over identical base data; any one can run O3, so the
	// ground truth from the first applies to them all.
	var (
		want    map[[2]int64]map[string]int
		srvMu   sync.Mutex
		srvs    [clusterShards]*server.Server
		dbs     [clusterShards]*pmv.DB
		addrs   [clusterShards]string
		injs    [clusterShards]*netfault.Injector
		proxies [clusterShards]*netfault.Proxy
	)
	shardCfg := clusterShardConfig(opts.Clients)
	for i := 0; i < clusterShards; i++ {
		db, w, err := chaosDB(filepath.Join(opts.Dir, fmt.Sprintf("shard%d", i)))
		if err != nil {
			return fail("shard %d setup: %v", i, err)
		}
		defer db.Close()
		if opts.Hot {
			// The shard half of the frequency plane: a short window so
			// admission clears within the run's first queries.
			db.EnableFreq(pmv.FreqConfig{Window: 300 * time.Millisecond})
		}
		dbs[i] = db
		if i == 0 {
			want = w
		}
		s := server.New(db, shardCfg)
		if err := s.Start("127.0.0.1:0"); err != nil {
			return fail("shard %d start: %v", i, err)
		}
		srvs[i] = s
		addrs[i] = s.Addr().String()
		defer func(i int) {
			srvMu.Lock()
			s := srvs[i]
			srvMu.Unlock()
			s.Shutdown()
		}(i)

		injs[i] = netfault.NewInjector(opts.Seed*clusterShards + int64(i))
		armBackground(injs[i])
		p, err := netfault.NewProxy("127.0.0.1:0", addrs[i], injs[i])
		if err != nil {
			return fail("shard %d proxy: %v", i, err)
		}
		proxies[i] = p
		defer p.Close()
	}

	proxyAddrs := make([]string, clusterShards)
	for i, p := range proxies {
		proxyAddrs[i] = p.Addr().String()
	}
	routerCfg := cluster.Config{
		Shards:          proxyAddrs,
		PoolSize:        2,
		DialTimeout:     time.Second,
		RefillTimeout:   time.Second,
		DrainTimeout:    2 * time.Second,
		FrameTimeout:    2 * time.Second,
		WriteTimeout:    2 * time.Second,
		DefaultDeadline: 3 * time.Second,
	}
	if opts.Tail {
		// Short heartbeats so breakers score the gray ramps within one
		// chaos event; everything else rides the fill() defaults.
		routerCfg.TailTolerance = true
		routerCfg.Hedge = true
		routerCfg.HeartbeatInterval = 100 * time.Millisecond
	}
	if opts.Hot {
		// Fast push/refresh so replicas and bitsets form, churn, and get
		// invalidated many times within one short run.
		routerCfg.Hot = true
		routerCfg.HotPushInterval = 100 * time.Millisecond
		routerCfg.FilterRefreshInterval = 100 * time.Millisecond
	}
	r, err := cluster.NewRouter(routerCfg)
	if err != nil {
		return fail("router: %v", err)
	}
	if err := r.Start("127.0.0.1:0"); err != nil {
		return fail("router start: %v", err)
	}
	defer r.Shutdown()

	// The chaos driver: a seeded loop of targeted shard abuse running
	// alongside the workload. Kill = full process death and rebind on
	// the same address (the proxy's upstream is fixed); the replacement
	// server has epoch 0, forcing the router's re-install path.
	var (
		chaosErr  error
		chaosMu   sync.Mutex
		stopChaos = make(chan struct{})
		chaosDone = make(chan struct{})
	)
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(time.Duration(100+rng.Intn(200)) * time.Millisecond):
			}
			shard := rng.Intn(clusterShards)
			nKinds := 3
			if opts.Tail {
				nKinds = 5 // gray ramps and flaps need the tail plane to matter
			}
			switch rng.Intn(nKinds) {
			case 0: // kill + restart on the same address
				srvMu.Lock()
				old := srvs[shard]
				srvMu.Unlock()
				old.Shutdown()
				time.Sleep(time.Duration(50+rng.Intn(100)) * time.Millisecond)
				replacement := server.New(dbs[shard], shardCfg)
				var rerr error
				for att := 0; att < 100; att++ {
					if rerr = replacement.Start(addrs[shard]); rerr == nil {
						break
					}
					time.Sleep(20 * time.Millisecond)
				}
				if rerr != nil {
					chaosMu.Lock()
					chaosErr = fmt.Errorf("shard %d rebind %s: %w", shard, addrs[shard], rerr)
					chaosMu.Unlock()
					return
				}
				srvMu.Lock()
				srvs[shard] = replacement
				srvMu.Unlock()
				chaosMu.Lock()
				rep.Kills++
				chaosMu.Unlock()
			case 1: // blackhole the link, then heal it
				injs[shard].Add(netfault.Rule{Kind: netfault.FaultBlackhole, Op: netfault.OpAny, AfterOps: 1, Sticky: true})
				time.Sleep(time.Duration(100+rng.Intn(200)) * time.Millisecond)
				injs[shard].Clear()
				armBackground(injs[shard])
				chaosMu.Lock()
				rep.Blackholes++
				chaosMu.Unlock()
			case 2: // reset burst, then heal
				injs[shard].Add(netfault.Rule{Kind: netfault.FaultReset, Op: netfault.OpAny, Prob: 0.2, Sticky: true})
				time.Sleep(time.Duration(100+rng.Intn(200)) * time.Millisecond)
				injs[shard].Clear()
				armBackground(injs[shard])
				chaosMu.Lock()
				rep.ResetBursts++
				chaosMu.Unlock()
			case 3: // gray ramp: the shard slides toward 10x-slow, then heals
				injs[shard].SetShape(netfault.Shape{
					Latency:     100 * time.Microsecond,
					Jitter:      200 * time.Microsecond,
					RampLatency: time.Duration(20+rng.Intn(40)) * time.Millisecond,
					RampOver:    time.Duration(100+rng.Intn(100)) * time.Millisecond,
				})
				time.Sleep(time.Duration(200+rng.Intn(200)) * time.Millisecond)
				injs[shard].Clear()
				armBackground(injs[shard]) // SetShape resets the ramp clock
				chaosMu.Lock()
				rep.GrayRamps++
				chaosMu.Unlock()
			case 4: // flap: the link oscillates slow/clean, then heals
				injs[shard].SetShape(netfault.Shape{
					Latency:  time.Duration(20+rng.Intn(40)) * time.Millisecond,
					FlapUp:   time.Duration(50+rng.Intn(100)) * time.Millisecond,
					FlapDown: time.Duration(50+rng.Intn(100)) * time.Millisecond,
				})
				time.Sleep(time.Duration(200+rng.Intn(200)) * time.Millisecond)
				injs[shard].Clear()
				armBackground(injs[shard])
				chaosMu.Lock()
				rep.Flaps++
				chaosMu.Unlock()
			}
		}
	}()

	// The workload: netchaos's client loop pointed at the router.
	var (
		mu        sync.Mutex
		violation error
		wg        sync.WaitGroup
	)
	abort := func(err error) {
		mu.Lock()
		if violation == nil {
			violation = err
		}
		mu.Unlock()
	}
	bump := func(field *int) {
		mu.Lock()
		*field++
		mu.Unlock()
	}
	violated := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return violation != nil
	}

	// The hot writer/auditor: hammer the sacrificial pair's reads so the
	// router tracks, captures, and replicates it, and interleave monotone
	// overwrites of hotChaosPid so every MsgHotInval path runs against a
	// live replica. Each read is bracketed writechaos-style — floor = the
	// last sequence acked before the read, ceiling = the last submitted
	// anywhere before it ended. A replica resurrected past an
	// invalidation is a STALE tuple; a duplicate replica tuple is a
	// double delivery; a suppression that swallowed a present row is a
	// missing pid on a clean read.
	var (
		hotTL   pidTimeline
		hotWG   sync.WaitGroup
		stopHot = make(chan struct{})
	)
	if opts.Hot {
		hotPids := hotChaosPids()
		hw := client.NewConfig(client.Config{
			Addr:        r.Addr().String(),
			DialTimeout: 2 * time.Second,
			MaxRetries:  4,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
			Seed:        opts.Seed + 500,
		})
		hotWG.Add(1)
		go func() {
			defer hotWG.Done()
			defer hw.Close()
			rng := rand.New(rand.NewSource(opts.Seed ^ 0x407))
			conds := []client.Cond{
				{Values: []client.Value{client.Int(hotChaosPair[0])}},
				{Values: []client.Value{client.Int(hotChaosPair[1])}},
			}
			for !violated() {
				select {
				case <-stopHot:
					return
				case <-time.After(time.Duration(2+rng.Intn(8)) * time.Millisecond):
				}
				if rng.Intn(4) == 0 {
					// Overwrite: bump the version clock first, then land
					// the idempotent op. An unacked attempt only widens
					// the read window; the post-chaos drain converges it.
					seq := hotTL.sent.Load() + 1
					hotTL.sent.Store(seq)
					op := client.Set("sale", "pid", client.Int(hotChaosPid),
						"discount", client.Int(discountOf(hotChaosPid, seq)))
					for att := 0; att < 10; att++ {
						ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
						_, werr := hw.Update(ctx, true, op)
						cancel()
						if werr == nil {
							hotTL.acked.Store(seq)
							bump(&rep.HotWrites)
							break
						}
						if !errors.Is(werr, client.ErrRemote) && !errors.Is(werr, client.ErrUnavailable) &&
							!errors.Is(werr, context.DeadlineExceeded) && !errors.Is(werr, context.Canceled) {
							abort(fmt.Errorf("hot write seq %d: untyped error %v", seq, werr))
							return
						}
						time.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
					}
					continue
				}
				floor := hotTL.acked.Load()
				got := make(map[int64][]int64)
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				qrep, err := hw.ExecutePartial(ctx, "pmv_on_sale", conds, func(row client.Row) error {
					got[row.Tuple[0].Int64()] = append(got[row.Tuple[0].Int64()], row.Tuple[1].Int64())
					return nil
				})
				cancel()
				ceil := hotTL.sent.Load()
				switch {
				case err == nil, errors.Is(err, client.ErrInterrupted), errors.Is(err, client.ErrUnavailable),
					errors.Is(err, client.ErrRemote), errors.Is(err, context.DeadlineExceeded),
					errors.Is(err, context.Canceled):
				default:
					abort(fmt.Errorf("hot read: untyped error %v", err))
					return
				}
				// Only hotChaosPid moves; the pair's other pids stay at
				// their loader values (sequence 0).
				fm := make(map[int64]int64, len(hotPids))
				cm := make(map[int64]int64, len(hotPids))
				for _, pid := range hotPids {
					fm[pid], cm[pid] = 0, 0
				}
				fm[hotChaosPid], cm[hotChaosPid] = floor, ceil
				clean := err == nil && !flagged(qrep)
				if verr := hotCheckRead(hotChaosPair, hotPids, got, fm, cm, clean); verr != nil {
					abort(fmt.Errorf("hot read: %w", verr))
					return
				}
				bump(&rep.HotReads)
			}
		}()
	}

	clients := make([]*client.Client, opts.Clients)
	for i := range clients {
		clients[i] = client.NewConfig(client.Config{
			Addr:          r.Addr().String(),
			DialTimeout:   2 * time.Second,
			DeadlineGrace: time.Second,
			MaxRetries:    4,
			BackoffBase:   5 * time.Millisecond,
			BackoffMax:    100 * time.Millisecond,
			Seed:          opts.Seed + int64(i) + 1,
		})
	}

	for i, c := range clients {
		wg.Add(1)
		go func(id int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed ^ int64(id)<<16))
			var zipf *workload.Zipf
			if opts.ZipfAlpha > 0 {
				zipf = workload.NewZipf(rng, chaosCategories*chaosStores, opts.ZipfAlpha)
			}
			for q := 0; q < opts.Queries; q++ {
				// Pace the workload so the chaos schedule genuinely
				// interleaves with it instead of firing into an idle
				// cluster.
				time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
				var pair [2]int64
				switch {
				case opts.Hot && rng.Intn(10) == 0:
					// Absent key: no product row carries this category, so
					// the ground truth is the empty multiset and a
					// suppression that fabricated a row would be caught.
					pair = [2]int64{chaosCategories + rng.Int63n(100), rng.Int63n(chaosStores)}
					bump(&rep.AbsentQueries)
				case zipf != nil:
					rank := int64(zipf.Draw())
					pair = [2]int64{rank % chaosCategories, rank / chaosCategories}
				default:
					pair = [2]int64{rng.Int63n(chaosCategories), rng.Int63n(chaosStores)}
				}
				if opts.Hot && pair == hotChaosPair {
					// The sacrificial pair belongs to the version-timeline
					// auditor; the static oracle no longer covers it.
					pair[1] = (pair[1] + 1) % chaosStores
				}
				conds := []client.Cond{
					{Values: []client.Value{client.Int(pair[0])}},
					{Values: []client.Value{client.Int(pair[1])}},
				}
				got := make(map[string]int)
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				qrep, err := c.ExecutePartial(ctx, "pmv_on_sale", conds, func(row client.Row) error {
					got[tupleKey(row.Tuple)]++
					return nil
				})
				cancel()
				switch {
				case err == nil && !flagged(qrep):
					if verr := classify(want[pair], got, true); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v: %w", id, q, pair, verr))
						return
					}
					bump(&rep.Clean)
				case err == nil:
					if verr := classify(want[pair], got, false); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v (flagged): %w", id, q, pair, verr))
						return
					}
					bump(&rep.Flagged)
				case errors.Is(err, client.ErrInterrupted):
					if verr := classify(want[pair], got, false); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v (interrupted): %w", id, q, pair, verr))
						return
					}
					bump(&rep.Interrupted)
				case errors.Is(err, client.ErrUnavailable):
					bump(&rep.Unavailable)
				case errors.Is(err, client.ErrRemote):
					if verr := classify(want[pair], got, false); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v (remote): %w", id, q, pair, verr))
						return
					}
					bump(&rep.Remote)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					if verr := classify(want[pair], got, false); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v (ctx): %w", id, q, pair, verr))
						return
					}
					bump(&rep.CtxExpired)
				default:
					abort(fmt.Errorf("client %d query %d pair %v: untyped error %v", id, q, pair, err))
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	close(stopHot)
	hotWG.Wait()
	close(stopChaos)
	<-chaosDone

	// Chaos is over and the driver always restarts what it kills: heal
	// every link and demand convergence. Every (category, store) pair
	// must produce one clean, exact answer — this probes every bcp key,
	// so any shard that came back with epoch 0 is forced through the
	// re-teach path before the run can pass.
	for _, inj := range injs {
		inj.Clear()
	}
	chaosMu.Lock()
	cerr := chaosErr
	chaosMu.Unlock()
	if cerr == nil && !violated() {
		sweep := client.NewConfig(client.Config{
			Addr:        r.Addr().String(),
			DialTimeout: 2 * time.Second,
			MaxRetries:  4,
			Seed:        opts.Seed + 1000,
		})
		for cat := int64(0); cat < chaosCategories && !violated(); cat++ {
			for st := int64(0); st < chaosStores && !violated(); st++ {
				pair := [2]int64{cat, st}
				if opts.Hot && pair == hotChaosPair {
					// Drained and converged separately below, under the
					// version oracle.
					continue
				}
				conds := []client.Cond{
					{Values: []client.Value{client.Int(cat)}},
					{Values: []client.Value{client.Int(st)}},
				}
				converged := false
				var lastErr error
				// With the tail plane on, a breaker that tripped during
				// chaos may carry an escalated cooldown (up to
				// BreakerMaxCooldown); convergence means outwaiting it so
				// a heartbeat trial can close the breaker again.
				attempts := 8
				if opts.Tail {
					attempts = 40
				}
				for att := 0; att < attempts && !converged; att++ {
					if att > 0 {
						time.Sleep(250 * time.Millisecond)
					}
					got := make(map[string]int)
					ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
					qrep, err := sweep.ExecutePartial(ctx, "pmv_on_sale", conds, func(row client.Row) error {
						got[tupleKey(row.Tuple)]++
						return nil
					})
					cancel()
					switch {
					case err == nil && !flagged(qrep):
						if verr := classify(want[pair], got, true); verr != nil {
							abort(fmt.Errorf("sweep pair %v: %w", pair, verr))
						}
						converged = true
					case err == nil || errors.Is(err, client.ErrInterrupted) ||
						errors.Is(err, context.DeadlineExceeded):
						// Leftover chaos-era state (stale pooled conns,
						// blackholed sessions timing out) may degrade the
						// first attempts; any delivery must still be a
						// subset.
						if verr := classify(want[pair], got, false); verr != nil {
							abort(fmt.Errorf("sweep pair %v (attempt %d): %w", pair, att, verr))
						}
						lastErr = err
					case errors.Is(err, client.ErrUnavailable) || errors.Is(err, client.ErrRemote):
						lastErr = err
					default:
						abort(fmt.Errorf("sweep pair %v: untyped error %v", pair, err))
					}
					if violated() {
						break
					}
				}
				if !converged && !violated() {
					abort(fmt.Errorf("sweep pair %v never converged to a clean exact answer (last: %v)", pair, lastErr))
				}
			}
		}
		sweep.Close()
	}

	// The sacrificial pair converges under the version oracle: drain any
	// un-acked overwrite over the healed links, then demand one clean
	// exact answer at the final sequence — proving no shard 2Q entry and
	// no router hot replica still serves a pre-drain value.
	if opts.Hot && cerr == nil && !violated() {
		hotPids := hotChaosPids()
		drain := client.NewConfig(client.Config{
			Addr:        r.Addr().String(),
			DialTimeout: 2 * time.Second,
			MaxRetries:  4,
			Seed:        opts.Seed + 900,
		})
		if s := hotTL.sent.Load(); s != hotTL.acked.Load() {
			op := client.Set("sale", "pid", client.Int(hotChaosPid),
				"discount", client.Int(discountOf(hotChaosPid, s)))
			landed := false
			for att := 0; att < 50 && !landed; att++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, werr := drain.Update(ctx, true, op)
				cancel()
				switch {
				case werr == nil:
					hotTL.acked.Store(s)
					landed = true
				case errors.Is(werr, client.ErrRemote), errors.Is(werr, client.ErrUnavailable),
					errors.Is(werr, context.DeadlineExceeded), errors.Is(werr, context.Canceled):
					time.Sleep(50 * time.Millisecond)
				default:
					abort(fmt.Errorf("hot drain seq %d: untyped error %v", s, werr))
					landed = true // typed-violation path; stop retrying
				}
			}
			if !landed {
				abort(fmt.Errorf("hot drain: seq %d never acked", s))
			}
		}
		final := make(map[int64]int64, len(hotPids))
		for _, pid := range hotPids {
			final[pid] = 0
		}
		final[hotChaosPid] = hotTL.acked.Load()
		converged := false
		var lastErr error
		for att := 0; att < 40 && !converged && !violated(); att++ {
			if att > 0 {
				time.Sleep(250 * time.Millisecond)
			}
			got := make(map[int64][]int64)
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			qrep, err := drain.ExecutePartial(ctx, "pmv_on_sale",
				[]client.Cond{
					{Values: []client.Value{client.Int(hotChaosPair[0])}},
					{Values: []client.Value{client.Int(hotChaosPair[1])}},
				},
				func(row client.Row) error {
					got[row.Tuple[0].Int64()] = append(got[row.Tuple[0].Int64()], row.Tuple[1].Int64())
					return nil
				})
			cancel()
			clean := err == nil && !flagged(qrep)
			if verr := hotCheckRead(hotChaosPair, hotPids, got, final, final, clean); verr != nil {
				abort(fmt.Errorf("hot converge attempt %d: %w", att, verr))
				break
			}
			if clean {
				converged = true
			} else {
				lastErr = err
			}
		}
		if !converged && !violated() {
			abort(fmt.Errorf("hot pair %v never converged at final seq %d (last: %v)",
				hotChaosPair, hotTL.acked.Load(), lastErr))
		}
		drain.Close()
	}

	for _, c := range clients {
		rep.Retries += c.Counters().Retries
		rep.Redials += c.Counters().Redials
		c.Close()
	}
	rep.Queries = opts.Clients * opts.Queries
	for _, inj := range injs {
		st := inj.Stats()
		rep.Faults.Conns += st.Conns
		rep.Faults.Ops += st.Ops
		rep.Faults.BytesRead += st.BytesRead
		rep.Faults.BytesWritten += st.BytesWritten
		rep.Faults.Resets += st.Resets
		rep.Faults.Corruptions += st.Corruptions
		rep.Faults.Blackholes += st.Blackholes
		rep.Faults.PartialWrites += st.PartialWrites
	}
	for _, sm := range r.Metrics().Shards {
		rep.EpochInstalls += sm.EpochInstalls.Load()
		rep.Hedges += sm.HedgesSent.Load()
		rep.HedgeWins += sm.HedgeWins.Load()
		rep.BreakerTrips += sm.BreakerTrips.Load()
		rep.BreakerSkips += sm.BreakerSkips.Load()
	}
	if opts.Hot {
		sc := client.New(r.Addr().String())
		if st, serr := sc.Stats(context.Background()); serr == nil && st.Hot != nil {
			rep.HotPushes = st.Hot.Pushes
			rep.HotInvals = st.Hot.Invals
			rep.HotReplicaHits = st.Hot.ReplicaHits
			rep.HotSuppressed = st.Hot.Suppressed
		}
		sc.Close()
	}

	if cerr != nil {
		return fail("chaos driver: %v", cerr)
	}
	if violation != nil {
		return fail("%v", violation)
	}
	if rep.Kills > 0 && rep.EpochInstalls <= clusterShards {
		return fail("%d shard kills but only %d epoch installs; the re-teach path never ran", rep.Kills, rep.EpochInstalls)
	}
	// Hedging must never confuse the duplicate-multiset audit: a hedge
	// and its primary both answering is the common case under chaos, and
	// the arbiter has to keep DS consumption exactly-once regardless.
	// With hot writes in the mix, leftovers are expected — a read racing
	// a write, or a stale replica pending repair, fails typed by design
	// and was classified into the workload buckets above.
	rep.AuditFailures = r.Metrics().DSLeftover.Load()
	if !opts.Hot && rep.AuditFailures != 0 {
		return fail("%d queries failed the duplicate-multiset audit", rep.AuditFailures)
	}
	// A hot run that never replicated, served, suppressed, or
	// invalidated anything held the oracle vacuously.
	if opts.Hot && (rep.HotPushes == 0 || rep.HotInvals == 0 ||
		rep.HotReplicaHits == 0 || rep.HotSuppressed == 0) {
		return fail("hot-plane counters never moved: pushes=%d invals=%d replicahits=%d suppressed=%d",
			rep.HotPushes, rep.HotInvals, rep.HotReplicaHits, rep.HotSuppressed)
	}

	// Teardown must leave nothing behind. Order matters: the router
	// first (drains client sessions and its shard pools), then the
	// proxies, then the shards.
	if err := r.Shutdown(); err != nil {
		return fail("router shutdown: %v", err)
	}
	if n := r.Metrics().SessionsActive.Load(); n != 0 {
		return fail("%d router sessions still active after shutdown", n)
	}
	for i, p := range proxies {
		if err := p.Close(); err != nil {
			return fail("proxy %d close: %v", i, err)
		}
	}
	for i := 0; i < clusterShards; i++ {
		srvMu.Lock()
		s := srvs[i]
		srvMu.Unlock()
		if err := s.Shutdown(); err != nil {
			return fail("shard %d shutdown: %v", i, err)
		}
		if n := s.Metrics().Snapshot().SessionsActive; n != 0 {
			return fail("shard %d: %d sessions still active after shutdown", i, n)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines {
		if time.Now().After(deadline) {
			return fail("goroutine leak: %d running, %d at start", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if cleanup {
		os.RemoveAll(opts.Dir)
	}
	return rep, nil
}

// restartchaos.go tortures warm restarts: the cluster-chaos topology
// (three shards behind fault proxies, one router, concurrent clients),
// but a "kill" here is a full process death — server drained, snapshot
// manager closed, database closed — followed by a genuine reboot:
// pmv.Open on the same directory, snapshot load, a fresh server rebound
// on the same address. Nothing survives a kill in memory; whatever the
// replacement shard knows, it learned from disk.
//
// On top of netchaos's oracle (clean → exact multiset; flagged or
// typed-interrupted → subset; typed failure → zero-or-subset; no
// fabricated or duplicated rows ever) the run proves three snapshot
// properties:
//
//  1. Warm beats cold. After the chaos settles, every (category, store)
//     pair is warmed through the router, all three shards are rebooted
//     deterministically, and a convergence sweep runs. With snapshots
//     on, every shard must come back warm and the sweep's probe hit
//     rate is measured; RunRestartCompare reruns the same seed with
//     snapshots off and demands a decisive hit-rate gap.
//  2. Corruption degrades, never lies. A deliberately bit-flipped
//     snapshot must produce a cold boot with a "corrupt" reason — and
//     the shard must then serve exact answers anyway.
//  3. Staleness degrades, never lies. A snapshot stamped with an epoch
//     the shard no longer trusts must produce a cold boot with a
//     stale-epoch reason, again followed by exact answers.
package torture

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"pmv"
	"pmv/client"
	"pmv/internal/cluster"
	"pmv/internal/netfault"
	"pmv/internal/server"
	"pmv/internal/snapshot"
	"pmv/internal/vfs"
)

// RestartOptions configures one restart-chaos run.
type RestartOptions struct {
	// Seed drives the chaos schedule, every injector, and the query mix.
	Seed int64
	// Clients is how many concurrent clients hammer the router
	// (default 6).
	Clients int
	// Queries is how many queries each client issues (default 30).
	Queries int
	// Dir is the parent directory for the shard databases and snapshot
	// directories (default: fresh temp dir, removed on success, kept on
	// failure).
	Dir string
	// Snapshots enables the per-shard snapshot manager. Off, every
	// reboot is a cold start — the control arm RunRestartCompare uses.
	Snapshots bool
	// SnapshotInterval is the background writer period (default 150ms,
	// fast enough that mid-chaos kills race the writer).
	SnapshotInterval time.Duration
}

// RestartReport summarizes one run.
type RestartReport struct {
	Seed        int64
	Snapshots   bool
	Queries     int
	Clean       int
	Flagged     int
	Interrupted int
	Unavailable int
	Remote      int
	CtxExpired  int
	// Reboots counts full kill→reopen cycles the chaos driver delivered
	// (the deterministic final reboot of all shards is extra).
	Reboots     int
	Blackholes  int
	ResetBursts int
	// WarmBoots / ColdBoots classify every reboot, chaos-driven and
	// final alike.
	WarmBoots int
	ColdBoots int
	// FinalWarm counts shards that booted warm at the deterministic
	// post-chaos reboot; with Snapshots it must equal the shard count.
	FinalWarm int
	// WarmEntries totals cache entries admitted across the final warm
	// boots.
	WarmEntries int64
	// SweepProbed / SweepHits aggregate the shards' O2 probe counters
	// over the post-reboot convergence sweep; their ratio is the
	// warm-restart payoff RunRestartCompare asserts on.
	SweepProbed  int64
	SweepHits    int64
	SweepHitRate float64
	// CorruptRejected / StaleRejected confirm the tampered-snapshot
	// reboots were refused for the right reason (Snapshots runs only).
	CorruptRejected bool
	StaleRejected   bool
	EpochInstalls   int64
	Retries         int64
	Redials         int64
	Faults          netfault.Stats
}

const restartShards = clusterShards

// RunRestart executes one restart-chaos cycle. A nil error means the
// oracle held for every query, every boot outcome matched the
// snapshot state, and nothing leaked.
func RunRestart(opts RestartOptions) (RestartReport, error) {
	if opts.Clients <= 0 {
		opts.Clients = 6
	}
	if opts.Queries <= 0 {
		opts.Queries = 30
	}
	if opts.SnapshotInterval <= 0 {
		opts.SnapshotInterval = 150 * time.Millisecond
	}
	cleanup := false
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "pmv-restartchaos")
		if err != nil {
			return RestartReport{}, err
		}
		opts.Dir = dir
		cleanup = true
	}
	rep := RestartReport{Seed: opts.Seed, Snapshots: opts.Snapshots}
	fail := func(format string, args ...any) (RestartReport, error) {
		return rep, fmt.Errorf("restartchaos seed %d: %s (dirs kept at %s)",
			opts.Seed, fmt.Sprintf(format, args...), opts.Dir)
	}

	baseGoroutines := runtime.NumGoroutine()

	var (
		want     map[[2]int64]map[string]int
		srvMu    sync.Mutex
		srvs     [restartShards]*server.Server
		dbs      [restartShards]*pmv.DB
		mgrs     [restartShards]*snapshot.Manager
		dbDirs   [restartShards]string
		snapDirs [restartShards]string
		addrs    [restartShards]string
		injs     [restartShards]*netfault.Injector
		proxies  [restartShards]*netfault.Proxy
	)
	shardCfg := clusterShardConfig(opts.Clients)

	// newManager builds (and boots) a shard's snapshot manager. The
	// load result is returned so callers can classify the boot.
	newManager := func(shard int, db *pmv.DB) (*snapshot.Manager, snapshot.LoadResult, error) {
		if !opts.Snapshots {
			return nil, snapshot.LoadResult{Reason: "snapshots disabled"}, nil
		}
		m, err := snapshot.NewManager(snapshot.Config{
			Dir:      snapDirs[shard],
			Source:   db,
			Interval: opts.SnapshotInterval,
		})
		if err != nil {
			return nil, snapshot.LoadResult{}, err
		}
		res := m.Load()
		m.Start()
		return m, res, nil
	}

	// teardownShard fully stops a shard: drain the server, write the
	// final snapshot, close the database.
	teardownShard := func(shard int) error {
		srvMu.Lock()
		s, db, m := srvs[shard], dbs[shard], mgrs[shard]
		srvs[shard], dbs[shard], mgrs[shard] = nil, nil, nil
		srvMu.Unlock()
		if s == nil {
			return nil
		}
		if err := s.Shutdown(); err != nil {
			return fmt.Errorf("shard %d shutdown: %w", shard, err)
		}
		if m != nil {
			if err := m.Close(); err != nil {
				return fmt.Errorf("shard %d final snapshot: %w", shard, err)
			}
		}
		if err := db.Close(); err != nil {
			return fmt.Errorf("shard %d close: %w", shard, err)
		}
		return nil
	}

	// viewEntries reports a shard's current cache size (0 when the
	// shard is down).
	viewEntries := func(shard int) int {
		srvMu.Lock()
		db := dbs[shard]
		srvMu.Unlock()
		if db == nil {
			return 0
		}
		if v, ok := db.ViewByName("pmv_on_sale"); ok {
			return v.Len()
		}
		return 0
	}

	// rebootShard is the tentpole's moment: full teardown, optional
	// on-disk tampering, then a genuine cold-process boot — reopen the
	// database, load the snapshot, rebind the same address. preEntries
	// reports what the cache held just before the shard died, the
	// yardstick for the warm boot that follows.
	rebootShard := func(shard int, tamper func() error) (res snapshot.LoadResult, preEntries int, err error) {
		preEntries = viewEntries(shard)
		if err := teardownShard(shard); err != nil {
			return snapshot.LoadResult{}, preEntries, err
		}
		if tamper != nil {
			if err := tamper(); err != nil {
				return snapshot.LoadResult{}, preEntries, fmt.Errorf("shard %d tamper: %w", shard, err)
			}
		}
		db, err := pmv.Open(dbDirs[shard], pmv.Options{})
		if err != nil {
			return snapshot.LoadResult{}, preEntries, fmt.Errorf("shard %d reopen: %w", shard, err)
		}
		m, res, err := newManager(shard, db)
		if err != nil {
			db.Close()
			return snapshot.LoadResult{}, preEntries, fmt.Errorf("shard %d snapshot manager: %w", shard, err)
		}
		replacement := server.New(db, shardCfg)
		replacement.SetSnapshots(m)
		var rerr error
		for att := 0; att < 100; att++ {
			if rerr = replacement.Start(addrs[shard]); rerr == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if rerr != nil {
			if m != nil {
				m.Close()
			}
			db.Close()
			return snapshot.LoadResult{}, preEntries, fmt.Errorf("shard %d rebind %s: %w", shard, addrs[shard], rerr)
		}
		srvMu.Lock()
		srvs[shard], dbs[shard], mgrs[shard] = replacement, db, m
		srvMu.Unlock()
		return res, preEntries, nil
	}

	// On any failure path, stop whatever is currently running so the
	// leak and address state doesn't bleed into the next test.
	finished := false
	defer func() {
		if finished {
			return
		}
		for i := 0; i < restartShards; i++ {
			teardownShard(i)
		}
	}()

	for i := 0; i < restartShards; i++ {
		dbDirs[i] = filepath.Join(opts.Dir, fmt.Sprintf("shard%d", i))
		snapDirs[i] = filepath.Join(opts.Dir, fmt.Sprintf("snap%d", i))
		db, w, err := chaosDB(dbDirs[i])
		if err != nil {
			return fail("shard %d setup: %v", i, err)
		}
		if i == 0 {
			want = w
		}
		m, res, err := newManager(i, db)
		if err != nil {
			db.Close()
			return fail("shard %d snapshot manager: %v", i, err)
		}
		if res.Warm {
			db.Close()
			return fail("shard %d first boot claims warm from an empty directory", i)
		}
		s := server.New(db, shardCfg)
		s.SetSnapshots(m)
		if err := s.Start("127.0.0.1:0"); err != nil {
			if m != nil {
				m.Close()
			}
			db.Close()
			return fail("shard %d start: %v", i, err)
		}
		srvMu.Lock()
		srvs[i], dbs[i], mgrs[i] = s, db, m
		srvMu.Unlock()
		addrs[i] = s.Addr().String()

		injs[i] = netfault.NewInjector(opts.Seed*restartShards + int64(i))
		armBackground(injs[i])
		p, err := netfault.NewProxy("127.0.0.1:0", addrs[i], injs[i])
		if err != nil {
			return fail("shard %d proxy: %v", i, err)
		}
		proxies[i] = p
		defer p.Close()
	}

	proxyAddrs := make([]string, restartShards)
	for i, p := range proxies {
		proxyAddrs[i] = p.Addr().String()
	}
	r, err := cluster.NewRouter(cluster.Config{
		Shards:          proxyAddrs,
		PoolSize:        2,
		DialTimeout:     time.Second,
		RefillTimeout:   time.Second,
		DrainTimeout:    2 * time.Second,
		FrameTimeout:    2 * time.Second,
		WriteTimeout:    2 * time.Second,
		DefaultDeadline: 3 * time.Second,
	})
	if err != nil {
		return fail("router: %v", err)
	}
	if err := r.Start("127.0.0.1:0"); err != nil {
		return fail("router start: %v", err)
	}
	defer r.Shutdown()

	// The chaos driver. The kill branch is the one that differs from
	// clusterchaos: the whole shard process dies and reboots from disk.
	var (
		chaosErr  error
		chaosMu   sync.Mutex
		stopChaos = make(chan struct{})
		chaosDone = make(chan struct{})
	)
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(time.Duration(100+rng.Intn(200)) * time.Millisecond):
			}
			shard := rng.Intn(restartShards)
			switch rng.Intn(3) {
			case 0: // kill the shard process; reboot it from disk
				res, _, err := rebootShard(shard, nil)
				if err != nil {
					chaosMu.Lock()
					chaosErr = err
					chaosMu.Unlock()
					return
				}
				chaosMu.Lock()
				rep.Reboots++
				if res.Warm {
					rep.WarmBoots++
				} else {
					rep.ColdBoots++
				}
				chaosMu.Unlock()
			case 1: // blackhole the link, then heal it
				injs[shard].Add(netfault.Rule{Kind: netfault.FaultBlackhole, Op: netfault.OpAny, AfterOps: 1, Sticky: true})
				time.Sleep(time.Duration(100+rng.Intn(200)) * time.Millisecond)
				injs[shard].Clear()
				armBackground(injs[shard])
				chaosMu.Lock()
				rep.Blackholes++
				chaosMu.Unlock()
			case 2: // reset burst, then heal
				injs[shard].Add(netfault.Rule{Kind: netfault.FaultReset, Op: netfault.OpAny, Prob: 0.2, Sticky: true})
				time.Sleep(time.Duration(100+rng.Intn(200)) * time.Millisecond)
				injs[shard].Clear()
				armBackground(injs[shard])
				chaosMu.Lock()
				rep.ResetBursts++
				chaosMu.Unlock()
			}
		}
	}()

	// The workload: netchaos's client loop pointed at the router.
	var (
		mu        sync.Mutex
		violation error
		wg        sync.WaitGroup
	)
	abort := func(err error) {
		mu.Lock()
		if violation == nil {
			violation = err
		}
		mu.Unlock()
	}
	bump := func(field *int) {
		mu.Lock()
		*field++
		mu.Unlock()
	}

	clients := make([]*client.Client, opts.Clients)
	for i := range clients {
		clients[i] = client.NewConfig(client.Config{
			Addr:          r.Addr().String(),
			DialTimeout:   2 * time.Second,
			DeadlineGrace: time.Second,
			MaxRetries:    4,
			BackoffBase:   5 * time.Millisecond,
			BackoffMax:    100 * time.Millisecond,
			Seed:          opts.Seed + int64(i) + 1,
		})
	}

	for i, c := range clients {
		wg.Add(1)
		go func(id int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed ^ int64(id)<<16))
			for q := 0; q < opts.Queries; q++ {
				time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
				pair := [2]int64{rng.Int63n(chaosCategories), rng.Int63n(chaosStores)}
				conds := []client.Cond{
					{Values: []client.Value{client.Int(pair[0])}},
					{Values: []client.Value{client.Int(pair[1])}},
				}
				got := make(map[string]int)
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				qrep, err := c.ExecutePartial(ctx, "pmv_on_sale", conds, func(row client.Row) error {
					got[tupleKey(row.Tuple)]++
					return nil
				})
				cancel()
				switch {
				case err == nil && !flagged(qrep):
					if verr := classify(want[pair], got, true); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v: %w", id, q, pair, verr))
						return
					}
					bump(&rep.Clean)
				case err == nil:
					if verr := classify(want[pair], got, false); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v (flagged): %w", id, q, pair, verr))
						return
					}
					bump(&rep.Flagged)
				case errors.Is(err, client.ErrInterrupted):
					if verr := classify(want[pair], got, false); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v (interrupted): %w", id, q, pair, verr))
						return
					}
					bump(&rep.Interrupted)
				case errors.Is(err, client.ErrUnavailable):
					bump(&rep.Unavailable)
				case errors.Is(err, client.ErrRemote):
					if verr := classify(want[pair], got, false); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v (remote): %w", id, q, pair, verr))
						return
					}
					bump(&rep.Remote)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					if verr := classify(want[pair], got, false); verr != nil {
						abort(fmt.Errorf("client %d query %d pair %v (ctx): %w", id, q, pair, verr))
						return
					}
					bump(&rep.CtxExpired)
				default:
					abort(fmt.Errorf("client %d query %d pair %v: untyped error %v", id, q, pair, err))
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	close(stopChaos)
	<-chaosDone

	// Chaos over: heal every link for the deterministic phases.
	for _, inj := range injs {
		inj.Clear()
	}
	violated := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return violation != nil
	}
	chaosMu.Lock()
	cerr := chaosErr
	chaosMu.Unlock()

	// sweepAll demands one clean, exact answer for every (category,
	// store) pair, retrying through post-chaos residue (stale pooled
	// conns, epoch re-teach after reboots). It is both the convergence
	// oracle and the cache warmer.
	sweep := client.NewConfig(client.Config{
		Addr:        r.Addr().String(),
		DialTimeout: 2 * time.Second,
		MaxRetries:  4,
		Seed:        opts.Seed + 1000,
	})
	sweepAll := func(stage string) {
		for cat := int64(0); cat < chaosCategories && !violated(); cat++ {
			for st := int64(0); st < chaosStores && !violated(); st++ {
				pair := [2]int64{cat, st}
				conds := []client.Cond{
					{Values: []client.Value{client.Int(cat)}},
					{Values: []client.Value{client.Int(st)}},
				}
				converged := false
				var lastErr error
				for att := 0; att < 8 && !converged; att++ {
					got := make(map[string]int)
					ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
					qrep, err := sweep.ExecutePartial(ctx, "pmv_on_sale", conds, func(row client.Row) error {
						got[tupleKey(row.Tuple)]++
						return nil
					})
					cancel()
					switch {
					case err == nil && !flagged(qrep):
						if verr := classify(want[pair], got, true); verr != nil {
							abort(fmt.Errorf("%s pair %v: %w", stage, pair, verr))
						}
						converged = true
					case err == nil || errors.Is(err, client.ErrInterrupted) ||
						errors.Is(err, context.DeadlineExceeded):
						if verr := classify(want[pair], got, false); verr != nil {
							abort(fmt.Errorf("%s pair %v (attempt %d): %w", stage, pair, att, verr))
						}
						lastErr = err
					case errors.Is(err, client.ErrUnavailable) || errors.Is(err, client.ErrRemote):
						lastErr = err
					default:
						abort(fmt.Errorf("%s pair %v: untyped error %v", stage, pair, err))
					}
					if violated() {
						break
					}
				}
				if !converged && !violated() {
					abort(fmt.Errorf("%s pair %v never converged to a clean exact answer (last: %v)", stage, pair, lastErr))
				}
			}
		}
	}

	if cerr == nil && !violated() {
		// Warm every pair twice (a 2Q policy needs two sightings before
		// it caches; one suffices for CLOCK) so the final snapshots hold
		// the full working set.
		sweepAll("warming round 1")
		sweepAll("warming round 2")
	}

	// The deterministic reboot: every shard dies and comes back from
	// disk. With snapshots on, every shard must boot warm and recover
	// exactly the entries it held at death — a shard that owns none of
	// the workload's bcp keys legitimately recovers zero, which is why
	// the lower bound is on the cluster-wide total, not per shard.
	if cerr == nil && !violated() {
		for i := 0; i < restartShards; i++ {
			res, pre, err := rebootShard(i, nil)
			if err != nil {
				cerr = err
				break
			}
			if res.Warm {
				rep.WarmBoots++
				rep.FinalWarm++
				rep.WarmEntries += int64(res.Entries)
			} else {
				rep.ColdBoots++
			}
			if opts.Snapshots && !res.Warm {
				abort(fmt.Errorf("final reboot of shard %d was cold (%s) with snapshots enabled", i, res.Reason))
			}
			if opts.Snapshots && res.Entries != pre {
				abort(fmt.Errorf("final reboot of shard %d admitted %d entries, cache held %d at death: %s", i, res.Entries, pre, res.Reason))
			}
			if opts.Snapshots && res.Rejected != 0 {
				abort(fmt.Errorf("final reboot of shard %d rejected %d snapshot entries: %s", i, res.Rejected, res.Reason))
			}
		}
		if opts.Snapshots && rep.WarmEntries == 0 && !violated() && cerr == nil {
			abort(fmt.Errorf("final reboots recovered zero entries cluster-wide; the warming rounds left nothing to snapshot"))
		}
	}

	// The measured sweep: fresh views (reopened above) count O2 probes
	// and hits from zero, so the hit rate isolates the snapshot's
	// contribution.
	if cerr == nil && !violated() {
		sweepAll("post-reboot sweep")
		srvMu.Lock()
		for i := 0; i < restartShards; i++ {
			if v, ok := dbs[i].ViewByName("pmv_on_sale"); ok {
				st := v.Stats()
				rep.SweepProbed += st.PartsProbed
				rep.SweepHits += st.PartHits
			}
		}
		srvMu.Unlock()
		if rep.SweepProbed > 0 {
			rep.SweepHitRate = float64(rep.SweepHits) / float64(rep.SweepProbed)
		}
	}

	// The rejection ladder, snapshot runs only: tampered snapshots must
	// produce cold boots with the right reason, and the shards must
	// then serve exact answers from nothing.
	if opts.Snapshots && cerr == nil && !violated() {
		res, _, err := rebootShard(0, func() error {
			path := filepath.Join(snapDirs[0], snapshot.FileName)
			img, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			if len(img) == 0 {
				return errors.New("snapshot file empty before corruption")
			}
			img[len(img)-1] ^= 0x40
			return os.WriteFile(path, img, 0o644)
		})
		switch {
		case err != nil:
			cerr = err
		case res.Warm:
			abort(fmt.Errorf("shard 0 booted warm from a corrupted snapshot: %s", res.Reason))
		case !strings.Contains(res.Reason, "corrupt"):
			abort(fmt.Errorf("shard 0 cold boot reason %q does not name corruption", res.Reason))
		default:
			rep.CorruptRejected = true
			rep.ColdBoots++
		}
	}
	if opts.Snapshots && cerr == nil && !violated() {
		srvMu.Lock()
		epoch := mgrs[1].Epoch()
		srvMu.Unlock()
		res, _, err := rebootShard(1, func() error {
			// The shard's trusted epoch moves past the snapshot's stamp,
			// as if the cluster reconfigured while the shard was down.
			return snapshot.WriteEpochState(vfs.OS(), snapDirs[1], epoch+100)
		})
		switch {
		case err != nil:
			cerr = err
		case res.Warm:
			abort(fmt.Errorf("shard 1 booted warm from an epoch-stale snapshot: %s", res.Reason))
		case !strings.Contains(res.Reason, "epoch"):
			abort(fmt.Errorf("shard 1 cold boot reason %q does not name the epoch", res.Reason))
		default:
			rep.StaleRejected = true
			rep.ColdBoots++
		}
	}
	if opts.Snapshots && cerr == nil && !violated() {
		// Both rejected shards are cold now; they must still answer
		// exactly.
		sweepAll("post-rejection sweep")
	}
	sweep.Close()

	for _, c := range clients {
		rep.Retries += c.Counters().Retries
		rep.Redials += c.Counters().Redials
		c.Close()
	}
	rep.Queries = opts.Clients * opts.Queries
	for _, inj := range injs {
		st := inj.Stats()
		rep.Faults.Conns += st.Conns
		rep.Faults.Ops += st.Ops
		rep.Faults.BytesRead += st.BytesRead
		rep.Faults.BytesWritten += st.BytesWritten
		rep.Faults.Resets += st.Resets
		rep.Faults.Corruptions += st.Corruptions
		rep.Faults.Blackholes += st.Blackholes
		rep.Faults.PartialWrites += st.PartialWrites
	}
	for _, sm := range r.Metrics().Shards {
		rep.EpochInstalls += sm.EpochInstalls.Load()
	}

	if cerr != nil {
		return fail("chaos driver: %v", cerr)
	}
	if violation != nil {
		return fail("%v", violation)
	}
	// Every run reboots all shards at least once, so the router's
	// re-teach path must have fired beyond the initial install fan-out.
	if rep.EpochInstalls <= restartShards {
		return fail("%d reboots but only %d epoch installs; the re-teach path never ran", rep.Reboots+restartShards, rep.EpochInstalls)
	}

	// Teardown: router first, then proxies, then shards (server, final
	// snapshot, database).
	if err := r.Shutdown(); err != nil {
		return fail("router shutdown: %v", err)
	}
	if n := r.Metrics().SessionsActive.Load(); n != 0 {
		return fail("%d router sessions still active after shutdown", n)
	}
	for i, p := range proxies {
		if err := p.Close(); err != nil {
			return fail("proxy %d close: %v", i, err)
		}
	}
	for i := 0; i < restartShards; i++ {
		srvMu.Lock()
		s := srvs[i]
		srvMu.Unlock()
		if err := s.Shutdown(); err != nil {
			return fail("shard %d shutdown: %v", i, err)
		}
		if n := s.Metrics().Snapshot().SessionsActive; n != 0 {
			return fail("shard %d: %d sessions still active after shutdown", i, n)
		}
		if err := teardownShard(i); err != nil {
			return fail("%v", err)
		}
	}
	finished = true
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines {
		if time.Now().After(deadline) {
			return fail("goroutine leak: %d running, %d at start", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if cleanup {
		os.RemoveAll(opts.Dir)
	}
	return rep, nil
}

// RunRestartCompare runs the same seed twice — snapshots on, then off —
// and demands the warm restart visibly pay for itself: the warm sweep's
// probe hit rate must beat the cold one by a decisive margin.
func RunRestartCompare(opts RestartOptions) (warm, cold RestartReport, err error) {
	base := opts.Dir
	warmOpts := opts
	warmOpts.Snapshots = true
	if base != "" {
		warmOpts.Dir = filepath.Join(base, "warm")
	}
	warm, err = RunRestart(warmOpts)
	if err != nil {
		return warm, cold, err
	}
	coldOpts := opts
	coldOpts.Snapshots = false
	if base != "" {
		coldOpts.Dir = filepath.Join(base, "cold")
	}
	cold, err = RunRestart(coldOpts)
	if err != nil {
		return warm, cold, err
	}
	if warm.FinalWarm != restartShards {
		return warm, cold, fmt.Errorf("restartchaos seed %d: only %d/%d shards booted warm", opts.Seed, warm.FinalWarm, restartShards)
	}
	const margin = 0.25
	if warm.SweepHitRate < cold.SweepHitRate+margin {
		return warm, cold, fmt.Errorf(
			"restartchaos seed %d: warm sweep hit rate %.3f (%d/%d) does not beat cold %.3f (%d/%d) by %.2f — warm restarts are not paying off",
			opts.Seed, warm.SweepHitRate, warm.SweepHits, warm.SweepProbed,
			cold.SweepHitRate, cold.SweepHits, cold.SweepProbed, margin)
	}
	return warm, cold, nil
}

// Package torture is the crash-recovery torture harness: it drives a
// seeded random DML + ExecutePartial workload against a database whose
// every byte flows through a fault-injecting vfs, crashes it at a
// random failpoint (losing all unsynced state, exactly like a power
// cut under a volatile page cache), reopens it cleanly, and checks the
// recovered state against an oracle model plus the DESIGN.md Section 4
// invariants.
//
// Oracle semantics. The workload is single-threaded, so the acked
// operations form a total order. The WAL appends one record per
// operation in that order, a crash makes durable exactly some prefix
// of the synced bytes, and the buffer pool's PreFlush hook syncs the
// log before any page write-back — so the recovered logical state must
// equal the model state after some prefix K of the acked operations,
// possibly with the single in-flight (crashed) operation partially
// applied on top. With SyncEveryOp the ack itself implies durability,
// so K must cover every acked operation.
package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"pmv"
	"pmv/internal/storage"
	"pmv/internal/value"
	"pmv/internal/vfs"
)

// Options configures one torture run.
type Options struct {
	// Seed drives every random choice (workload and failpoint).
	Seed int64
	// Ops is how many DML/query operations the faulty phase attempts
	// (default 300; the crash usually fires before they finish).
	Ops int
	// SyncEveryOp makes each statement durable on return, switching
	// the oracle to strict acked-implies-durable checking.
	SyncEveryOp bool
	// Dir is the database directory (default: a fresh temp dir,
	// removed on success and kept for inspection on failure).
	Dir string
}

// Report summarizes one run for the harness's logs.
type Report struct {
	Seed        int64
	Crashed     bool // the failpoint fired before the workload ended
	AckedOps    int  // DML statements acknowledged before the crash
	PrefixK     int  // acked prefix the recovered state matched
	Recovered   int  // WAL records replayed on reopen
	Repairs     int64
	QueriesRun  int // healthy-phase queries verified against the model
	FaultyStats vfs.FaultStats
}

type itemState struct {
	grp, val int64
}

type op struct {
	kind string // "insert", "delete", "update"
	k    int64
	grp  int64 // post-state for insert/update
	val  int64
}

type runner struct {
	rng       *rand.Rand
	opts      Options
	seedState map[int64]itemState // durable state after the clean setup
	model     map[int64]itemState // state after every acked op
	acked     []op                // faulty-phase acked ops, in order
	pending   *op                 // the op whose statement hit the crash
	nextK     int64
	report    Report
}

const (
	numGroups = 8
	viewName  = "pmv_torture"
)

func template() *pmv.Template {
	return pmv.NewTemplate("torture").
		From("items").
		Select("items.k", "items.val").
		WhereEq("items.grp").
		MustBuild()
}

// Run executes one full torture cycle: seed, crash, recover, verify.
// A nil error means every check passed.
func Run(opts Options) (Report, error) {
	if opts.Ops <= 0 {
		opts.Ops = 300
	}
	cleanup := false
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "pmv-torture")
		if err != nil {
			return Report{}, err
		}
		opts.Dir = filepath.Join(dir, "db")
		cleanup = true
	}
	r := &runner{
		rng:    rand.New(rand.NewSource(opts.Seed)),
		opts:   opts,
		model:  make(map[int64]itemState),
		report: Report{Seed: opts.Seed},
	}
	if err := r.seedPhase(); err != nil {
		return r.report, fmt.Errorf("seed %d: setup: %w", opts.Seed, err)
	}
	if err := r.faultyPhase(); err != nil {
		return r.report, fmt.Errorf("seed %d: faulty phase: %w", opts.Seed, err)
	}
	if err := r.recoveryPhase(); err != nil {
		return r.report, fmt.Errorf("seed %d: recovery: %w", opts.Seed, err)
	}
	if cleanup {
		os.RemoveAll(filepath.Dir(opts.Dir))
	}
	return r.report, nil
}

func (r *runner) dbOptions(fs pmv.FS) pmv.Options {
	return pmv.Options{
		BufferPoolPages: 64, // small pool forces write-backs mid-run
		EnableWAL:       true,
		SyncEveryOp:     r.opts.SyncEveryOp,
		LockTimeout:     2 * time.Second,
		FS:              fs,
	}
}

// seedPhase creates the schema, view definition, and initial rows over
// the real OS, then closes cleanly so the faulty phase starts from a
// consistent durable image.
func (r *runner) seedPhase() error {
	db, err := pmv.Open(r.opts.Dir, r.dbOptions(nil))
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.CreateRelation("items",
		pmv.Col("k", pmv.TypeInt),
		pmv.Col("grp", pmv.TypeInt),
		pmv.Col("val", pmv.TypeInt),
	); err != nil {
		return err
	}
	if err := db.CreateIndex("items", "grp"); err != nil {
		return err
	}
	if _, err := db.CreatePartialView(template(), pmv.ViewOptions{
		MaxEntries:   16,
		TuplesPerBCP: 4,
	}); err != nil {
		return err
	}
	for i := 0; i < 40; i++ {
		if err := r.applyInsert(db); err != nil {
			return err
		}
	}
	if err := db.Analyze(); err != nil {
		return err
	}
	// Everything above is durable once Close checkpoints; the faulty
	// phase's oracle replays from here.
	r.seedState = copyState(r.model)
	r.acked = r.acked[:0]
	r.report.AckedOps = 0
	return nil
}

// faultyPhase runs the random workload through the fault vfs until the
// scripted crash fires (or the op budget runs out).
func (r *runner) faultyPhase() error {
	inj := vfs.NewInjector(r.opts.Seed)
	// One hard crash at a uniformly random vfs-op count: sometimes
	// during open, sometimes inside a mid-run or closing checkpoint,
	// sometimes during ordinary appends. The range tracks how many vfs
	// ops a full run actually performs in each durability mode, so most
	// seeds crash somewhere interesting and a few complete untouched.
	limit := 80
	if r.opts.SyncEveryOp {
		limit = 500
	}
	inj.Add(vfs.Rule{Kind: vfs.FaultCrash, Op: vfs.OpAny, AfterOps: int64(1 + r.rng.Intn(limit))})
	fs := vfs.NewFaulty(vfs.OS(), inj)

	db, err := pmv.Open(r.opts.Dir, r.dbOptions(fs))
	if err != nil {
		if errors.Is(err, vfs.ErrCrashed) {
			r.report.Crashed = true
			r.report.FaultyStats = inj.Stats()
			return nil
		}
		return err
	}
	view, ok := db.ViewByName(viewName)
	if !ok {
		db.Close()
		return fmt.Errorf("view %s not recreated on open", viewName)
	}

	for i := 0; i < r.opts.Ops; i++ {
		var err error
		if i > 0 && i%25 == 0 {
			// Periodic checkpoints widen the crash surface to the flush
			// + sync + WAL-truncate windows, the hardest to get right.
			err = db.Checkpoint()
		} else {
			switch roll := r.rng.Intn(10); {
			case roll < 3:
				err = r.applyInsert(db)
			case roll < 5:
				err = r.applyDelete(db)
			case roll < 7:
				err = r.applyUpdate(db)
			default:
				err = r.verifyQuery(view, false)
				if err == nil {
					r.report.QueriesRun++
				}
			}
		}
		if err != nil {
			if errors.Is(err, vfs.ErrCrashed) {
				r.report.Crashed = true
				break
			}
			db.Close()
			return err
		}
	}
	// Close releases handles; after a crash its checkpoint fails — that
	// is expected. A crash can also first fire inside this final
	// checkpoint.
	if cerr := db.Close(); cerr != nil {
		if !errors.Is(cerr, vfs.ErrCrashed) {
			return cerr
		}
		r.report.Crashed = true
	}
	r.report.FaultyStats = inj.Stats()
	return nil
}

// recoveryPhase reopens over the real OS, checks the oracle, then
// exercises the recovered database (queries + more DML + invariants)
// and verifies once more after a clean close.
func (r *runner) recoveryPhase() error {
	db, err := pmv.Open(r.opts.Dir, r.dbOptions(nil))
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	r.report.Recovered = db.Engine().Recovered()
	r.report.Repairs = db.Engine().Stats().TornPageRepairs
	r.report.AckedOps = len(r.acked)

	state, err := scanItems(db)
	if err != nil {
		db.Close()
		return err
	}
	k, err := r.matchPrefix(state)
	if err != nil {
		db.Close()
		return err
	}
	r.report.PrefixK = k

	// Continue from the recovered state: the model restarts at prefix K
	// plus whatever the in-flight op left behind.
	r.model = r.stateAt(k)
	if p := r.pending; p != nil {
		if st, ok := state[p.k]; ok {
			r.model[p.k] = st
		} else {
			delete(r.model, p.k)
		}
	}
	r.seedState = copyState(r.model)
	r.acked = r.acked[:0]
	r.pending = nil

	view, ok := db.ViewByName(viewName)
	if !ok {
		db.Close()
		return fmt.Errorf("view %s lost across recovery", viewName)
	}
	for i := 0; i < 30; i++ {
		var err error
		switch r.rng.Intn(4) {
		case 0:
			err = r.applyInsert(db)
		case 1:
			err = r.applyDelete(db)
		case 2:
			err = r.applyUpdate(db)
		default:
			err = r.verifyQuery(view, true)
		}
		if err != nil {
			db.Close()
			return fmt.Errorf("post-recovery workload: %w", err)
		}
	}
	if err := view.CheckInvariants(); err != nil {
		db.Close()
		return err
	}
	if err := db.Close(); err != nil {
		return fmt.Errorf("clean close: %w", err)
	}

	// A clean close makes everything durable: the final reopen must
	// match the model exactly, with nothing to replay.
	db, err = pmv.Open(r.opts.Dir, r.dbOptions(nil))
	if err != nil {
		return fmt.Errorf("final reopen: %w", err)
	}
	defer db.Close()
	if n := db.Engine().Recovered(); n != 0 {
		return fmt.Errorf("recovery ran after a clean close (%d records)", n)
	}
	state, err = scanItems(db)
	if err != nil {
		return err
	}
	if err := equalStates(state, r.model); err != nil {
		return fmt.Errorf("state after clean close: %w", err)
	}
	return nil
}

// --- workload operations -------------------------------------------------

func (r *runner) randomVals() (grp, val int64) {
	return int64(r.rng.Intn(numGroups)), int64(r.rng.Intn(1000))
}

// begin records o as in-flight; ack moves it to the acked log and the
// model. An op that errors stays in-flight (possibly partially
// durable).
func (r *runner) begin(o op) { r.pending = &o }

func (r *runner) ack() {
	o := *r.pending
	r.pending = nil
	r.acked = append(r.acked, o)
	switch o.kind {
	case "insert", "update":
		r.model[o.k] = itemState{grp: o.grp, val: o.val}
	case "delete":
		delete(r.model, o.k)
	}
}

func (r *runner) applyInsert(db *pmv.DB) error {
	k := r.nextK
	r.nextK++
	grp, val := r.randomVals()
	r.begin(op{kind: "insert", k: k, grp: grp, val: val})
	if err := db.Insert("items", pmv.Int(k), pmv.Int(grp), pmv.Int(val)); err != nil {
		return err
	}
	r.ack()
	return nil
}

func (r *runner) pickKey() (int64, bool) {
	if len(r.model) == 0 {
		return 0, false
	}
	keys := make([]int64, 0, len(r.model))
	for k := range r.model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys[r.rng.Intn(len(keys))], true
}

func (r *runner) applyDelete(db *pmv.DB) error {
	k, ok := r.pickKey()
	if !ok {
		return nil
	}
	r.begin(op{kind: "delete", k: k})
	if _, err := db.Delete("items", func(t pmv.Tuple) bool { return t[0].Int64() == k }); err != nil {
		return err
	}
	r.ack()
	return nil
}

func (r *runner) applyUpdate(db *pmv.DB) error {
	k, ok := r.pickKey()
	if !ok {
		return nil
	}
	grp, val := r.randomVals()
	r.begin(op{kind: "update", k: k, grp: grp, val: val})
	_, err := db.Update("items",
		func(t pmv.Tuple) bool { return t[0].Int64() == k },
		func(t pmv.Tuple) pmv.Tuple {
			return pmv.Tuple{t[0], pmv.Int(grp), pmv.Int(val)}
		})
	if err != nil {
		return err
	}
	r.ack()
	return nil
}

// verifyQuery runs ExecutePartial for a random group and checks the
// delivered multiset against the model (invariants 1 and 4: exactly
// once, and never a stale positive). strict additionally requires a
// healthy (non-degraded) answer, which an uncontended database must
// produce.
func (r *runner) verifyQuery(view *pmv.View, strict bool) error {
	grp := int64(r.rng.Intn(numGroups))
	q := pmv.NewQuery(template()).In(0, pmv.Int(grp)).Query()
	got := make(map[string]int)
	rep, err := view.ExecutePartial(q, func(res pmv.Result) error {
		got[fmt.Sprintf("%d|%d", res.Tuple[0].Int64(), res.Tuple[1].Int64())]++
		return nil
	})
	if err != nil {
		return err
	}
	if strict && rep.Degraded {
		return fmt.Errorf("query degraded with no lock contention")
	}
	want := make(map[string]int)
	for k, st := range r.model {
		if st.grp == grp {
			want[fmt.Sprintf("%d|%d", k, st.val)]++
		}
	}
	if len(got) != len(want) {
		return fmt.Errorf("group %d: got %d distinct tuples, want %d", grp, len(got), len(want))
	}
	for key, n := range want {
		if got[key] != n {
			return fmt.Errorf("group %d: tuple %s delivered %d times, want %d", grp, key, got[key], n)
		}
	}
	return nil
}

// --- oracle --------------------------------------------------------------

// scanItems reads the base relation's heap directly.
func scanItems(db *pmv.DB) (map[int64]itemState, error) {
	rel, err := db.Engine().Catalog().GetRelation("items")
	if err != nil {
		return nil, err
	}
	state := make(map[int64]itemState)
	err = rel.Heap.Scan(func(_ storage.RID, t value.Tuple) error {
		k := t[0].Int64()
		if _, dup := state[k]; dup {
			return fmt.Errorf("duplicate key %d in recovered heap", k)
		}
		state[k] = itemState{grp: t[1].Int64(), val: t[2].Int64()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return state, nil
}

func copyState(m map[int64]itemState) map[int64]itemState {
	out := make(map[int64]itemState, len(m))
	for k, st := range m {
		out[k] = st
	}
	return out
}

// stateAt replays the acked log's first k ops over the seed state.
func (r *runner) stateAt(k int) map[int64]itemState {
	state := copyState(r.seedState)
	for _, o := range r.acked[:k] {
		switch o.kind {
		case "insert", "update":
			state[o.k] = itemState{grp: o.grp, val: o.val}
		case "delete":
			delete(state, o.k)
		}
	}
	return state
}

// matchPrefix finds the acked prefix K the recovered state matches,
// tolerating the in-flight op's key in any of its before/after/absent
// states when K covers every acked op. With SyncEveryOp only the full
// prefix is admissible (acked means durable).
func (r *runner) matchPrefix(recovered map[int64]itemState) (int, error) {
	lo := 0
	if r.opts.SyncEveryOp {
		lo = len(r.acked)
	}
	var firstDiff error
	for k := len(r.acked); k >= lo; k-- {
		want := r.stateAt(k)
		var skip map[int64]bool
		if k == len(r.acked) && r.pending != nil {
			skip = map[int64]bool{r.pending.k: true}
		}
		err := equalStatesExcept(recovered, want, skip)
		if err == nil {
			if skip != nil {
				if err := r.checkInFlight(recovered, want); err != nil {
					return 0, err
				}
			}
			return k, nil
		}
		if firstDiff == nil {
			firstDiff = err
		}
	}
	return 0, fmt.Errorf("recovered state matches no acked prefix (acked=%d, in-flight=%v): %v",
		len(r.acked), r.pending != nil, firstDiff)
}

// checkInFlight bounds what the partially-durable crashed op may have
// left behind: the key's before state, its after state, or absent (an
// update that moved its tuple logs delete+insert and may lose the
// second half).
func (r *runner) checkInFlight(recovered, before map[int64]itemState) error {
	p := r.pending
	got, present := recovered[p.k]
	bef, hadBefore := before[p.k]
	after := itemState{grp: p.grp, val: p.val}
	switch p.kind {
	case "insert":
		if present && got != after {
			return fmt.Errorf("in-flight insert of key %d recovered as %+v", p.k, got)
		}
	case "delete":
		if present && (!hadBefore || got != bef) {
			return fmt.Errorf("in-flight delete of key %d recovered as %+v", p.k, got)
		}
	case "update":
		if present && got != after && (!hadBefore || got != bef) {
			return fmt.Errorf("in-flight update of key %d recovered as %+v (before %+v, after %+v)",
				p.k, got, bef, after)
		}
	}
	return nil
}

func equalStates(got, want map[int64]itemState) error {
	return equalStatesExcept(got, want, nil)
}

func equalStatesExcept(got, want map[int64]itemState, skip map[int64]bool) error {
	for k, w := range want {
		if skip[k] {
			continue
		}
		g, ok := got[k]
		if !ok {
			return fmt.Errorf("key %d missing (want %+v)", k, w)
		}
		if g != w {
			return fmt.Errorf("key %d is %+v, want %+v", k, g, w)
		}
	}
	for k := range got {
		if skip[k] {
			continue
		}
		if _, ok := want[k]; !ok {
			return fmt.Errorf("key %d present but should not exist (%+v)", k, got[k])
		}
	}
	return nil
}

package torture

import "testing"

// One seeded write-chaos cycle rides in the suite; cmd/pmvtorture
// -write and `make write-torture` run the wide sweep. Sized down so
// the suite stays fast; chaos still fires (the driver starts
// immediately) and the drain + sweep phases always run.
func TestWriteChaosSmoke(t *testing.T) {
	rep, err := RunWrite(WriteOptions{Seed: 1, Writers: 2, Writes: 15, Readers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("writechaos seed 1: writes=%d retries=%d failures=%d fanout=%d reads=%d clean=%d flagged=%d remote=%d blackholes=%d bursts=%d faults=%+v",
		rep.Writes, rep.WriteRetries, rep.WriteFailures, rep.FanoutSent,
		rep.Reads, rep.Clean, rep.Flagged, rep.Remote, rep.Blackholes, rep.ResetBursts, rep.Faults)
	if rep.Writes == 0 {
		t.Fatal("no write ever acked — the harness is all noise")
	}
	if rep.Clean == 0 {
		t.Fatal("no read completed cleanly — the harness is all noise")
	}
}

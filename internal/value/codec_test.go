package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, tup Tuple) {
	t.Helper()
	enc := EncodeTuple(nil, tup)
	if len(enc) != EncodedSize(tup) {
		t.Errorf("EncodedSize(%v) = %d, actual %d", tup, EncodedSize(tup), len(enc))
	}
	dec, n, err := DecodeTuple(enc)
	if err != nil {
		t.Fatalf("decode %v: %v", tup, err)
	}
	if n != len(enc) {
		t.Errorf("decode consumed %d of %d bytes", n, len(enc))
	}
	if CompareTuples(tup, dec) != 0 {
		t.Errorf("roundtrip: %v -> %v", tup, dec)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	cases := []Tuple{
		{},
		{Int(0)},
		{Int(-1), Int(1 << 62), Int(math.MinInt64)},
		{Float(0), Float(-1.5), Float(math.Inf(1)), Float(math.SmallestNonzeroFloat64)},
		{Str(""), Str("hello"), Str("with\x00zero")},
		{Bool(true), Bool(false)},
		{Date(0), Date(-365), Date(40000)},
		{Null(), Int(1), Null()},
		{Int(1), Float(2.5), Str("mixed"), Bool(true), Date(3), Null()},
	}
	for _, c := range cases {
		roundtrip(t, c)
	}
}

func TestCodecRoundtripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	randValue := func() Value {
		switch rng.Intn(6) {
		case 0:
			return Null()
		case 1:
			return Int(rng.Int63() - rng.Int63())
		case 2:
			return Float(rng.NormFloat64() * 1e6)
		case 3:
			b := make([]byte, rng.Intn(40))
			rng.Read(b)
			return Str(string(b))
		case 4:
			return Bool(rng.Intn(2) == 0)
		default:
			return Date(rng.Int63n(100000) - 50000)
		}
	}
	for i := 0; i < 500; i++ {
		tup := make(Tuple, rng.Intn(8))
		for j := range tup {
			tup[j] = randValue()
		}
		roundtrip(t, tup)
	}
}

func TestCodecConcatenatedTuples(t *testing.T) {
	a := Tuple{Int(1), Str("a")}
	b := Tuple{Float(2.5)}
	buf := EncodeTuple(nil, a)
	buf = EncodeTuple(buf, b)
	da, n, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := DecodeTuple(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if CompareTuples(a, da) != 0 || CompareTuples(b, db) != 0 {
		t.Error("concatenated decode broken")
	}
}

func TestCodecTruncationErrors(t *testing.T) {
	enc := EncodeTuple(nil, Tuple{Int(1), Str("hello"), Float(2.5)})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeTuple(enc[:cut]); err == nil && cut < len(enc) {
			// A shorter prefix may still decode if it happens to form a
			// valid tuple; but cutting the header must fail.
			if cut < 2 {
				t.Errorf("decode of %d-byte prefix succeeded", cut)
			}
		}
	}
}

func TestCodecGarbageTag(t *testing.T) {
	buf := []byte{0, 1, 0xEE} // one column with unknown tag
	if _, _, err := DecodeTuple(buf); err == nil {
		t.Error("unknown tag accepted")
	}
}

func TestEncodedSizeQuick(t *testing.T) {
	f := func(i int64, s string, b bool) bool {
		tup := Tuple{Int(i), Str(s), Bool(b), Null()}
		return EncodedSize(tup) == len(EncodeTuple(nil, tup))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	tup := Tuple{Int(5), Str("x"), Float(1.25)}
	a := EncodeTuple(nil, tup)
	b := EncodeTuple(nil, tup)
	if !reflect.DeepEqual(a, b) {
		t.Error("encoding is not deterministic")
	}
}

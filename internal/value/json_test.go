package value

import (
	"encoding/json"
	"testing"
)

func TestJSONRoundtrip(t *testing.T) {
	vals := []Value{
		Null(), Int(-42), Float(2.5), Str("hello \"quoted\""), Date(20454), Bool(true),
	}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got Value
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if Compare(v, got) != 0 || v.Type() != got.Type() {
			t.Errorf("roundtrip %v -> %s -> %v", v, data, got)
		}
	}
}

func TestJSONInsideStructures(t *testing.T) {
	type wrapper struct {
		Vals map[int][]Value `json:"vals"`
	}
	w := wrapper{Vals: map[int][]Value{1: {Int(10), Int(20)}, 3: {Str("x")}}}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got wrapper
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Vals[1]) != 2 || got.Vals[1][1].Int64() != 20 || got.Vals[3][0].Str() != "x" {
		t.Errorf("structure roundtrip: %+v", got)
	}
}

func TestJSONBadInput(t *testing.T) {
	var v Value
	for _, bad := range []string{`{"t":"alien","v":1}`, `{"t":"int","v":"nope"}`, `[1,2]`} {
		if err := json.Unmarshal([]byte(bad), &v); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

package value

import "testing"

var benchTuple = Tuple{
	Int(123456789), Str("a-medium-length-string-payload"), Float(3.14159),
	Date(20454), Bool(true), Null(),
}

func BenchmarkEncodeTuple(b *testing.B) {
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = EncodeTuple(buf[:0], benchTuple)
	}
}

func BenchmarkDecodeTuple(b *testing.B) {
	enc := EncodeTuple(nil, benchTuple)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTuple(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompareTuples(b *testing.B) {
	other := benchTuple.Clone()
	other[0] = Int(123456790)
	for i := 0; i < b.N; i++ {
		CompareTuples(benchTuple, other)
	}
}

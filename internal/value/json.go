package value

import (
	"encoding/json"
	"fmt"
)

// JSON encoding for values: a tagged object {"t": "...", "v": ...}.
// Used by the catalog to persist view definitions (dividing values,
// fixed predicates) across database restarts.

type jsonValue struct {
	T string          `json:"t"`
	V json.RawMessage `json:"v,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	var jv jsonValue
	var err error
	enc := func(x any) (json.RawMessage, error) {
		b, err := json.Marshal(x)
		return json.RawMessage(b), err
	}
	switch v.typ {
	case TypeNull:
		jv.T = "null"
	case TypeInt:
		jv.T = "int"
		jv.V, err = enc(v.i)
	case TypeFloat:
		jv.T = "float"
		jv.V, err = enc(v.f)
	case TypeString:
		jv.T = "string"
		jv.V, err = enc(v.s)
	case TypeDate:
		jv.T = "date"
		jv.V, err = enc(v.i)
	case TypeBool:
		jv.T = "bool"
		jv.V, err = enc(v.i != 0)
	default:
		return nil, fmt.Errorf("value: marshal unknown type %d", v.typ)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(jv)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	switch jv.T {
	case "null":
		*v = Null()
	case "int":
		var i int64
		if err := json.Unmarshal(jv.V, &i); err != nil {
			return err
		}
		*v = Int(i)
	case "float":
		var f float64
		if err := json.Unmarshal(jv.V, &f); err != nil {
			return err
		}
		*v = Float(f)
	case "string":
		var s string
		if err := json.Unmarshal(jv.V, &s); err != nil {
			return err
		}
		*v = Str(s)
	case "date":
		var i int64
		if err := json.Unmarshal(jv.V, &i); err != nil {
			return err
		}
		*v = Date(i)
	case "bool":
		var b bool
		if err := json.Unmarshal(jv.V, &b); err != nil {
			return err
		}
		*v = Bool(b)
	default:
		return fmt.Errorf("value: unmarshal unknown type %q", jv.T)
	}
	return nil
}

package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeNull:   "NULL",
		TypeInt:    "BIGINT",
		TypeFloat:  "DOUBLE",
		TypeString: "VARCHAR",
		TypeDate:   "DATE",
		TypeBool:   "BOOLEAN",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Type() != TypeInt || v.Int64() != 42 {
		t.Errorf("Int: %v", v)
	}
	if v := Float(2.5); v.Type() != TypeFloat || v.Float64() != 2.5 {
		t.Errorf("Float: %v", v)
	}
	if v := Str("abc"); v.Type() != TypeString || v.Str() != "abc" {
		t.Errorf("Str: %v", v)
	}
	if v := Bool(true); v.Type() != TypeBool || !v.BoolVal() {
		t.Errorf("Bool: %v", v)
	}
	if v := Date(10); v.Type() != TypeDate || v.Int64() != 10 {
		t.Errorf("Date: %v", v)
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestDateParsing(t *testing.T) {
	v, err := DateFromString("2026-07-04")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := v.String(); got != "2026-07-04" {
		t.Errorf("roundtrip: %q", got)
	}
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Error("bad date accepted")
	}
	day := time.Date(1970, 1, 2, 12, 0, 0, 0, time.UTC)
	if got := DateFromTime(day).Int64(); got != 1 {
		t.Errorf("DateFromTime = %d, want 1", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Int64 on string", func() { Str("x").Int64() })
	mustPanic("Str on int", func() { Int(1).Str() })
	mustPanic("BoolVal on int", func() { Int(1).BoolVal() })
	mustPanic("Float64 on string", func() { Str("x").Float64() })
}

func TestCompareWithinTypes(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Str("a"), Str("b"), -1},
		{Str("aa"), Str("a"), 1},
		{Bool(false), Bool(true), -1},
		{Date(1), Date(2), -1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareCrossTypes(t *testing.T) {
	// NULL sorts before everything.
	for _, v := range []Value{Int(-1 << 62), Float(math.Inf(-1)), Str(""), Bool(false)} {
		if Compare(Null(), v) >= 0 {
			t.Errorf("NULL not before %v", v)
		}
	}
	// Int and Float compare numerically across the boundary.
	if Compare(Int(2), Float(2.5)) != -1 || Compare(Float(2.5), Int(2)) != 1 {
		t.Error("numeric cross-type comparison broken")
	}
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("equal numerics across types should compare 0")
	}
}

func TestCompareNaN(t *testing.T) {
	nan := Float(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN != NaN under total order")
	}
	if Compare(nan, Float(0)) != -1 || Compare(Float(0), nan) != 1 {
		t.Error("NaN should sort before numbers")
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	vals := []Value{Null(), Int(1), Int(5), Float(1.5), Str("x"), Bool(true), Date(3)}
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("antisymmetry violated for %v, %v", a, b)
			}
		}
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	orig := Tuple{Int(1), Str("a")}
	cl := orig.Clone()
	cl[0] = Int(99)
	if orig[0].Int64() != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestCompareTuples(t *testing.T) {
	a := Tuple{Int(1), Int(2)}
	b := Tuple{Int(1), Int(3)}
	if CompareTuples(a, b) != -1 || CompareTuples(b, a) != 1 || CompareTuples(a, a) != 0 {
		t.Error("tuple comparison broken")
	}
	// Prefix sorts first.
	if CompareTuples(Tuple{Int(1)}, a) != -1 {
		t.Error("shorter prefix should sort first")
	}
}

func TestTupleString(t *testing.T) {
	got := Tuple{Int(1), Str("x"), Null()}.String()
	if got != "(1, x, NULL)" {
		t.Errorf("Tuple.String() = %q", got)
	}
}

func TestCompareIntTransitivityQuick(t *testing.T) {
	f := func(a, b, c int64) bool {
		x, y, z := Int(a), Int(b), Int(c)
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareStringsMatchesGo(t *testing.T) {
	f := func(a, b string) bool {
		got := Compare(Str(a), Str(b))
		switch {
		case a < b:
			return got == -1
		case a > b:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

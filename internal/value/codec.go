package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Tuple wire format (used by heap pages and the PMV store):
//
//	u16 column count
//	per column: u8 type tag, then payload
//	  int/date: 8-byte big-endian two's complement
//	  bool:     1 byte
//	  float:    8-byte big-endian IEEE 754
//	  string:   u32 length + bytes
//	  null:     nothing
//
// The format is self-describing so heap tuples survive schema evolution
// of the reading code, and compact enough that Table 1 style size
// accounting is meaningful.

// EncodeTuple appends the wire encoding of t to dst and returns the
// extended slice.
func EncodeTuple(dst []byte, t Tuple) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.typ))
		switch v.typ {
		case TypeNull:
		case TypeInt, TypeDate:
			dst = binary.BigEndian.AppendUint64(dst, uint64(v.i))
		case TypeBool:
			dst = append(dst, byte(v.i))
		case TypeFloat:
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
		case TypeString:
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.s)))
			dst = append(dst, v.s...)
		default:
			panic(fmt.Sprintf("value: encode unknown type %d", v.typ))
		}
	}
	return dst
}

// DecodeTuple parses one tuple from the front of b, returning the tuple
// and the number of bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("value: short tuple header")
	}
	n := int(binary.BigEndian.Uint16(b))
	off := 2
	t := make(Tuple, 0, n)
	for i := 0; i < n; i++ {
		if off >= len(b) {
			return nil, 0, fmt.Errorf("value: truncated tuple at column %d", i)
		}
		typ := Type(b[off])
		off++
		switch typ {
		case TypeNull:
			t = append(t, Null())
		case TypeInt, TypeDate:
			if off+8 > len(b) {
				return nil, 0, fmt.Errorf("value: truncated int at column %d", i)
			}
			u := binary.BigEndian.Uint64(b[off:])
			off += 8
			if typ == TypeInt {
				t = append(t, Int(int64(u)))
			} else {
				t = append(t, Date(int64(u)))
			}
		case TypeBool:
			if off+1 > len(b) {
				return nil, 0, fmt.Errorf("value: truncated bool at column %d", i)
			}
			if b[off] > 1 {
				// Only 0 and 1 are written; anything else is corruption,
				// not a sloppy encoder.
				return nil, 0, fmt.Errorf("value: bad bool byte 0x%02x at column %d", b[off], i)
			}
			t = append(t, Bool(b[off] != 0))
			off++
		case TypeFloat:
			if off+8 > len(b) {
				return nil, 0, fmt.Errorf("value: truncated float at column %d", i)
			}
			t = append(t, Float(math.Float64frombits(binary.BigEndian.Uint64(b[off:]))))
			off += 8
		case TypeString:
			if off+4 > len(b) {
				return nil, 0, fmt.Errorf("value: truncated string length at column %d", i)
			}
			l := int(binary.BigEndian.Uint32(b[off:]))
			off += 4
			if off+l > len(b) {
				return nil, 0, fmt.Errorf("value: truncated string at column %d", i)
			}
			t = append(t, Str(string(b[off:off+l])))
			off += l
		default:
			return nil, 0, fmt.Errorf("value: unknown type tag %d at column %d", typ, i)
		}
	}
	return t, off, nil
}

// EncodedSize returns the wire size of t without encoding it.
func EncodedSize(t Tuple) int {
	n := 2
	for _, v := range t {
		n++
		switch v.typ {
		case TypeInt, TypeDate, TypeFloat:
			n += 8
		case TypeBool:
			n++
		case TypeString:
			n += 4 + len(v.s)
		}
	}
	return n
}

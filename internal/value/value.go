// Package value defines the typed scalar values and tuples that flow
// through the engine: storage, indexes, the executor, and the PMV layer
// all exchange data as value.Tuple.
//
// Values are deliberately small and immutable. A Value is a tagged union
// of the SQL-ish types the paper's templates need: 64-bit integers,
// 64-bit floats, strings, dates (days since epoch), and booleans, plus
// NULL. Comparison follows SQL ordering with NULL sorting first.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the scalar types supported by the engine.
type Type uint8

// Supported scalar types.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeDate
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeDate:
		return "DATE"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a single typed scalar. The zero Value is NULL.
type Value struct {
	typ Type
	i   int64 // TypeInt, TypeDate (days since 1970-01-01), TypeBool (0/1)
	f   float64
	s   string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{typ: TypeInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{typ: TypeFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{typ: TypeString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{typ: TypeBool, i: i}
}

// Date returns a date value from days since the Unix epoch.
func Date(days int64) Value { return Value{typ: TypeDate, i: days} }

// DateFromTime returns a date value for the calendar day of t (UTC).
func DateFromTime(t time.Time) Value {
	return Date(t.UTC().Unix() / 86400)
}

// DateFromString parses a YYYY-MM-DD date.
func DateFromString(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null(), fmt.Errorf("value: bad date %q: %w", s, err)
	}
	return DateFromTime(t), nil
}

// Type reports the value's type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// Int64 returns the integer payload. It panics if the value is not an
// integer, date, or boolean.
func (v Value) Int64() int64 {
	switch v.typ {
	case TypeInt, TypeDate, TypeBool:
		return v.i
	}
	panic(fmt.Sprintf("value: Int64 on %s", v.typ))
}

// Float64 returns the float payload, widening integers.
func (v Value) Float64() float64 {
	switch v.typ {
	case TypeFloat:
		return v.f
	case TypeInt, TypeDate, TypeBool:
		return float64(v.i)
	}
	panic(fmt.Sprintf("value: Float64 on %s", v.typ))
}

// Str returns the string payload. It panics on non-strings.
func (v Value) Str() string {
	if v.typ != TypeString {
		panic(fmt.Sprintf("value: Str on %s", v.typ))
	}
	return v.s
}

// BoolVal returns the boolean payload. It panics on non-booleans.
func (v Value) BoolVal() bool {
	if v.typ != TypeBool {
		panic(fmt.Sprintf("value: BoolVal on %s", v.typ))
	}
	return v.i != 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeDate:
		return time.Unix(v.i*86400, 0).UTC().Format("2006-01-02")
	case TypeBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(%d)", uint8(v.typ))
	}
}

// Compare orders two values. NULL sorts before everything; values of
// different non-null types order by type tag (the engine never compares
// mixed types on a hot path, but a total order keeps sort stable).
// Returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.typ != b.typ {
		// Int and Float compare numerically across the type boundary.
		if isNumeric(a.typ) && isNumeric(b.typ) {
			return cmpFloat(a.Float64(), b.Float64())
		}
		return cmpInt(int64(a.typ), int64(b.typ))
	}
	switch a.typ {
	case TypeNull:
		return 0
	case TypeInt, TypeDate, TypeBool:
		return cmpInt(a.i, b.i)
	case TypeFloat:
		return cmpFloat(a.f, b.f)
	case TypeString:
		return strings.Compare(a.s, b.s)
	default:
		return 0
	}
}

func isNumeric(t Type) bool { return t == TypeInt || t == TypeFloat }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	// NaN handling: NaN sorts before all numbers, equal to itself.
	case math.IsNaN(a) && math.IsNaN(b):
		return 0
	case math.IsNaN(a):
		return -1
	default:
		return 1
	}
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Tuple is an ordered list of values: one row as seen by the executor.
type Tuple []Value

// Clone returns a copy of the tuple that shares no backing array.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple for display.
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// CompareTuples orders tuples lexicographically.
func CompareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4): the simulation figures delegate to
// internal/sim, the analytical figures to internal/costmodel, and the
// measured figures run the PMV method against the TPC-R-like dataset
// on the embedded engine. cmd/pmvbench and the repository-root
// benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"pmv/internal/cache"
	"pmv/internal/core"
	"pmv/internal/engine"
	"pmv/internal/expr"
	"pmv/internal/storage"
	"pmv/internal/value"
	"pmv/internal/workload"
)

// Env is a loaded TPC-R-like database with the T1 and T2 templates.
type Env struct {
	Eng *engine.Engine
	Cfg workload.TPCRConfig
	T1  *expr.Template
	T2  *expr.Template
	dir string
}

// Setup creates a database under dir (a fresh subdirectory) and loads
// the TPC-R-like dataset at the given scale factor, in the controlled
// configuration of Section 4.2: deterministic round-robin attribute
// assignment so every probed basic condition part has more result
// tuples than F, and nation-correlated suppliers so T2's hot bcps are
// as dense as T1's.
func Setup(dir string, scale float64) (*Env, error) {
	dbdir := filepath.Join(dir, fmt.Sprintf("tpcr_s%g", scale))
	if err := os.RemoveAll(dbdir); err != nil {
		return nil, err
	}
	eng, err := engine.Open(dbdir, engine.Options{BufferPoolPages: 1000})
	if err != nil {
		return nil, err
	}
	cfg, err := workload.LoadTPCR(eng, workload.TPCRConfig{
		ScaleFactor:    scale,
		Seed:           1,
		Days:           50,
		Suppliers:      125,
		Nations:        5,
		CorrelatedSupp: true,
		Deterministic:  true,
	})
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &Env{Eng: eng, Cfg: cfg, T1: workload.TemplateT1(), T2: workload.TemplateT2(), dir: dbdir}, nil
}

// Close releases the environment.
func (e *Env) Close() error { return e.Eng.Close() }

// newView builds a 20K-entry PMV (the Section 4.2 setting) for tpl.
func (e *Env) newView(tpl *expr.Template, f int) (*core.View, error) {
	return core.NewView(e.Eng, core.Config{
		Name:         fmt.Sprintf("%s_f%d_%d", tpl.Name, f, time.Now().UnixNano()),
		Template:     tpl,
		MaxEntries:   20000,
		TuplesPerBCP: f,
		Policy:       cache.PolicyCLOCK,
	})
}

// hotQueryT1 returns a T1 query with h = e·f condition parts of which
// exactly one — (hotDate, hotSupp) = (day 0, supplier 0) — is warm in
// the view; the remaining parts use fresh out-of-domain values, so
// every measured query touches the same hot entry and produces the
// same result volume. This mirrors the Section 4.2 setup ("one of
// these h basic condition parts exists in the PMV").
func (e *Env) hotQueryT1(eCnt, fCnt int, round int) *expr.Query {
	dates := make([]value.Value, 0, eCnt)
	supps := make([]value.Value, 0, fCnt)
	dates = append(dates, dateVal(0))
	supps = append(supps, value.Int(0))
	for i := 1; i < eCnt; i++ {
		dates = append(dates, dateVal(e.Cfg.Days+round*16+i)) // cold: out of domain
	}
	for i := 1; i < fCnt; i++ {
		supps = append(supps, value.Int(int64(e.Cfg.Suppliers+round*16+i)))
	}
	return &expr.Query{Template: e.T1, Conds: []expr.CondInstance{{Values: dates}, {Values: supps}}}
}

// hotQueryT2 is the T2 analogue with h = e·f·g parts. The hot part is
// (day 0, supplier 0, nation-of-supplier-0), which under the
// correlated-supplier configuration is exactly as dense as T1's hot
// part.
func (e *Env) hotQueryT2(eCnt, fCnt, gCnt int, round int) *expr.Query {
	q1 := e.hotQueryT1(eCnt, fCnt, round)
	nats := make([]value.Value, 0, gCnt)
	nats = append(nats, value.Int(int64(e.Cfg.NationOfSupplier(0))))
	for i := 1; i < gCnt; i++ {
		nats = append(nats, value.Int(int64(e.Cfg.Nations+round*16+i)))
	}
	return &expr.Query{Template: e.T2, Conds: append(q1.Conds, expr.CondInstance{Values: nats})}
}

func dateVal(day int) value.Value { return value.Date(20454 + int64(day)) }

// warm seeds the hot (date 0, supp 0[, nation 0]) bcp into the view.
func warm(v *core.View, q *expr.Query) error {
	_, err := v.ExecutePartial(q, func(core.Result) error { return nil })
	return err
}

// measure runs rounds hot queries and returns the median overhead and
// median execution latency (medians suppress GC/scheduler jitter,
// which otherwise dwarfs the microsecond-scale per-part costs).
func measure(v *core.View, mk func(round int) *expr.Query, rounds int) (overhead, exec time.Duration, err error) {
	runtime.GC()
	oSamples := make([]time.Duration, 0, rounds)
	eSamples := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		rep, err := v.ExecutePartial(mk(r), func(core.Result) error { return nil })
		if err != nil {
			return 0, 0, err
		}
		oSamples = append(oSamples, rep.Overhead)
		eSamples = append(eSamples, rep.ExecLatency)
	}
	return median(oSamples), median(eSamples), nil
}

func median(xs []time.Duration) time.Duration {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Fig8Row is one F value of Figure 8 (overhead vs tuples-per-entry).
type Fig8Row struct {
	F          int
	OverheadT1 time.Duration
	OverheadT2 time.Duration
}

// Figure8 sweeps F = 1..5 at h = 4 (T1: 2×2; T2: 2×2×1), fixed scale.
func Figure8(env *Env, rounds int) ([]Fig8Row, error) {
	if rounds <= 0 {
		rounds = 20
	}
	var out []Fig8Row
	for f := 1; f <= 5; f++ {
		v1, err := env.newView(env.T1, f)
		if err != nil {
			return nil, err
		}
		v2, err := env.newView(env.T2, f)
		if err != nil {
			return nil, err
		}
		if err := warm(v1, env.hotQueryT1(1, 1, 0)); err != nil {
			return nil, err
		}
		if err := warm(v2, env.hotQueryT2(1, 1, 1, 0)); err != nil {
			return nil, err
		}
		o1, _, err := measure(v1, func(r int) *expr.Query { return env.hotQueryT1(2, 2, r+1) }, rounds)
		if err != nil {
			return nil, err
		}
		o2, _, err := measure(v2, func(r int) *expr.Query { return env.hotQueryT2(2, 2, 1, r+1) }, rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig8Row{F: f, OverheadT1: o1, OverheadT2: o2})
	}
	return out, nil
}

// Fig9Row is one h value of Figure 9 (overhead vs combination factor).
type Fig9Row struct {
	H          int
	OverheadT1 time.Duration
	OverheadT2 time.Duration
}

// Figure9 sweeps h = 1..10 at F = 3 (h = e·1 for T1, e·1·1 for T2).
func Figure9(env *Env, rounds int) ([]Fig9Row, error) {
	if rounds <= 0 {
		rounds = 20
	}
	v1, err := env.newView(env.T1, 3)
	if err != nil {
		return nil, err
	}
	v2, err := env.newView(env.T2, 3)
	if err != nil {
		return nil, err
	}
	if err := warm(v1, env.hotQueryT1(1, 1, 0)); err != nil {
		return nil, err
	}
	if err := warm(v2, env.hotQueryT2(1, 1, 1, 0)); err != nil {
		return nil, err
	}
	var out []Fig9Row
	for h := 1; h <= 10; h++ {
		o1, _, err := measure(v1, func(r int) *expr.Query { return env.hotQueryT1(h, 1, r+1) }, rounds)
		if err != nil {
			return nil, err
		}
		o2, _, err := measure(v2, func(r int) *expr.Query { return env.hotQueryT2(h, 1, 1, r+1) }, rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig9Row{H: h, OverheadT1: o1, OverheadT2: o2})
	}
	return out, nil
}

// Fig10Row is one scale factor of Figure 10 (execution time vs
// overhead).
type Fig10Row struct {
	Scale      float64
	ExecT1     time.Duration
	OverheadT1 time.Duration
	ExecT2     time.Duration
	OverheadT2 time.Duration
}

// Figure10 sweeps the database scale factor at h = 4, F = 3. The
// scales are milli-versions of the paper's 0.5..2 sweep (see
// DESIGN.md's substitution note); the ratio between execution time and
// overhead is the figure's point.
func Figure10(baseDir string, scales []float64, rounds int) ([]Fig10Row, error) {
	if len(scales) == 0 {
		scales = []float64{0.0005, 0.001, 0.0015, 0.002}
	}
	if rounds <= 0 {
		rounds = 10
	}
	var out []Fig10Row
	for _, s := range scales {
		env, err := Setup(baseDir, s)
		if err != nil {
			return nil, err
		}
		v1, err := env.newView(env.T1, 3)
		if err == nil {
			err = warm(v1, env.hotQueryT1(1, 1, 0))
		}
		if err != nil {
			env.Close()
			return nil, err
		}
		o1, e1, err := measure(v1, func(r int) *expr.Query { return env.hotQueryT1(2, 2, r+1) }, rounds)
		if err != nil {
			env.Close()
			return nil, err
		}
		v2, err := env.newView(env.T2, 3)
		if err == nil {
			err = warm(v2, env.hotQueryT2(1, 1, 1, 0))
		}
		if err != nil {
			env.Close()
			return nil, err
		}
		o2, e2, err := measure(v2, func(r int) *expr.Query { return env.hotQueryT2(2, 2, 1, r+1) }, rounds)
		if err != nil {
			env.Close()
			return nil, err
		}
		out = append(out, Fig10Row{Scale: s, ExecT1: e1, OverheadT1: o1, ExecT2: e2, OverheadT2: o2})
		env.Close()
	}
	return out, nil
}

// Table1Row reports one relation of Table 1 (dataset sizes).
type Table1Row struct {
	Relation string
	Tuples   int64
	Bytes    int64
}

// Table1 loads the dataset at scale s and reports measured tuple
// counts and on-disk heap sizes.
func Table1(baseDir string, scale float64) ([]Table1Row, error) {
	env, err := Setup(baseDir, scale)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	var out []Table1Row
	for _, rel := range []string{"customer", "orders", "lineitem"} {
		r, err := env.Eng.Catalog().GetRelation(rel)
		if err != nil {
			return nil, err
		}
		var bytes int64
		err = scanBytes(env, rel, &bytes)
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Row{Relation: rel, Tuples: r.Heap.Count(), Bytes: bytes})
	}
	return out, nil
}

func scanBytes(env *Env, rel string, total *int64) error {
	r, err := env.Eng.Catalog().GetRelation(rel)
	if err != nil {
		return err
	}
	return r.Heap.Scan(func(_ storage.RID, t value.Tuple) error {
		*total += int64(value.EncodedSize(t))
		return nil
	})
}

package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pmv/internal/cache"
	"pmv/internal/core"
	"pmv/internal/expr"
	"pmv/internal/value"
	"pmv/internal/workload"
)

// This file holds ablation experiments beyond the paper's figures,
// probing the design choices the text calls out: the entry replacement
// policy (Section 3.5), the maintenance strategy (Section 3.4 vs the
// [25] index optimization), and the F trade-off (Section 3.2).

// PolicyRow is one policy's live (non-simulated) hit rate.
type PolicyRow struct {
	Policy  cache.PolicyKind
	HitProb float64
	Partial float64 // mean partial tuples per query
}

// PolicyAblation replays the same Zipf-skewed T1 query stream against
// views differing only in replacement policy.
func PolicyAblation(env *Env, entries, queries int, seed int64) ([]PolicyRow, error) {
	if entries <= 0 {
		entries = 256
	}
	if queries <= 0 {
		queries = 1000
	}
	var out []PolicyRow
	for _, pol := range []cache.PolicyKind{cache.PolicyCLOCK, cache.Policy2Q, cache.PolicyLRU} {
		v, err := core.NewView(env.Eng, core.Config{
			Name:         fmt.Sprintf("abl_pol_%s_%d", pol, time.Now().UnixNano()),
			Template:     env.T1,
			MaxEntries:   entries,
			TuplesPerBCP: 2,
			Policy:       pol,
		})
		if err != nil {
			return nil, err
		}
		gen := newZipfQueryStream(env, seed)
		var partials int64
		for i := 0; i < queries; i++ {
			rep, err := v.ExecutePartial(gen(), func(core.Result) error { return nil })
			if err != nil {
				return nil, err
			}
			partials += int64(rep.PartialTuples)
		}
		st := v.Stats()
		out = append(out, PolicyRow{
			Policy:  pol,
			HitProb: st.HitProbability(),
			Partial: float64(partials) / float64(queries),
		})
		v.Drop()
	}
	return out, nil
}

// newZipfQueryStream yields T1 queries whose (date, supplier) pairs
// follow a heavily skewed distribution over the pair space, so a small
// working set dominates (as in the paper's simulation workload).
func newZipfQueryStream(env *Env, seed int64) func() *expr.Query {
	rng := rand.New(rand.NewSource(seed))
	days, supps := env.Cfg.Days, env.Cfg.Suppliers
	nPairs := days * supps
	// rank = N·u^5: ~50% of draws land in the top ~1% of pairs.
	draw := func() (int, int) {
		u := rng.Float64()
		rank := int(float64(nPairs) * math.Pow(u, 5))
		if rank >= nPairs {
			rank = nPairs - 1
		}
		// Scatter ranks across the pair space deterministically.
		pair := (rank*2654435761 + 17) % nPairs
		return pair % days, pair / days
	}
	return func() *expr.Query {
		d, s := draw()
		return &expr.Query{
			Template: env.T1,
			Conds: []expr.CondInstance{
				{Values: []value.Value{dateVal(d)}},
				{Values: []value.Value{value.Int(int64(s))}},
			},
		}
	}
}

// MaintRow compares delete-maintenance strategies.
type MaintRow struct {
	Strategy string
	Deletes  int
	// Total is the wall time of the delete batch (dominated by the
	// engine's own delete work); Overhead is the time spent inside
	// view maintenance (measured directly).
	Total    time.Duration
	Overhead time.Duration
	PerOp    time.Duration
}

// MaintAblation measures delete maintenance cost for three setups on
// identical fresh databases: no view (baseline), the base delta-join
// strategy, and the [25] in-memory maintenance index.
func MaintAblation(baseDir string, scale float64, deletes int, seed int64) ([]MaintRow, error) {
	if deletes <= 0 {
		deletes = 50
	}
	type setup struct {
		name   string
		useIdx bool
	}
	setups := []setup{
		{"delta-join", false},
		{"maint-index", true},
	}
	var out []MaintRow
	for _, s := range setups {
		env, err := Setup(baseDir, scale)
		if err != nil {
			return nil, err
		}
		v, err := core.NewView(env.Eng, core.Config{
			Name:          fmt.Sprintf("abl_maint_%s", s.name),
			Template:      env.T1,
			MaxEntries:    1000,
			TuplesPerBCP:  4,
			UseMaintIndex: s.useIdx,
		})
		if err != nil {
			env.Close()
			return nil, err
		}
		gen := newZipfQueryStream(env, seed)
		for i := 0; i < 100; i++ {
			if _, err := v.ExecutePartial(gen(), func(core.Result) error { return nil }); err != nil {
				env.Close()
				return nil, err
			}
		}
		// Delete the same deterministic set of lineitems in each setup.
		rng := rand.New(rand.NewSource(seed + 1))
		victims := make(map[int64]bool, deletes)
		for len(victims) < deletes {
			victims[rng.Int63n(int64(env.Cfg.Orders())*4)] = true
		}
		start := time.Now()
		count := 0
		for victim := range victims {
			ok := victim / 4
			li := victim % 4
			seen := int64(0)
			n, err := env.Eng.DeleteWhere("lineitem", func(t value.Tuple) bool {
				if t[0].Int64() != ok {
					return false
				}
				seen++
				return seen-1 == li
			})
			if err != nil {
				env.Close()
				return nil, err
			}
			count += len(n)
		}
		total := time.Since(start)
		maint := v.Stats().MaintTime
		env.Close()
		out = append(out, MaintRow{
			Strategy: s.name,
			Deletes:  count,
			Total:    total,
			Overhead: maint,
			PerOp:    maint / time.Duration(max(count, 1)),
		})
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DividerRow is one divider-granularity setting for range workloads.
type DividerRow struct {
	// Dividers is the number of dividing values over the date domain.
	Dividers int
	// HitProb is the fraction of range queries with at least one
	// cached bcp.
	HitProb float64
	// PartsPerQuery is the mean number of condition parts O1 produced
	// (finer discretization → more parts per range).
	PartsPerQuery float64
	// Partial is the mean partial tuples served per query.
	Partial float64
}

// DividerAblation probes Section 3.1's discretization choice: a T1
// variant whose date condition is interval-form is served under
// different divider granularities, against a workload of week-long
// date ranges. Too-coarse dividers make every bcp huge (low reuse
// across different ranges, heavy re-checking); too-fine dividers
// explode the number of parts per query.
func DividerAblation(env *Env, queries int, seed int64) ([]DividerRow, error) {
	if queries <= 0 {
		queries = 400
	}
	// Interval-form T1: date is a range, supplier stays equality.
	tpl := workload.TemplateT1()
	tpl.Name = "t1_interval"
	tpl.Conds[0].Form = expr.IntervalForm

	var out []DividerRow
	for _, nDiv := range []int{2, 5, 10, 25, 50} {
		divs := make([]value.Value, 0, nDiv)
		for d := 0; d < nDiv; d++ {
			divs = append(divs, dateVal(d*env.Cfg.Days/nDiv))
		}
		v, err := core.NewView(env.Eng, core.Config{
			Name:         fmt.Sprintf("abl_div%d_%d", nDiv, time.Now().UnixNano()),
			Template:     tpl,
			MaxEntries:   256,
			TuplesPerBCP: 2,
			Dividers:     map[int][]value.Value{0: divs},
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		var partials, parts int64
		for i := 0; i < queries; i++ {
			// Week-long range at a skewed start day + one hot supplier.
			start := int(float64(env.Cfg.Days-7) * rng.Float64() * rng.Float64())
			q := &expr.Query{
				Template: tpl,
				Conds: []expr.CondInstance{
					{Intervals: []expr.Interval{{
						Lo: dateVal(start), Hi: dateVal(start + 7),
						LoIncl: true, HiIncl: false,
					}}},
					{Values: []value.Value{value.Int(rng.Int63n(10))}},
				},
			}
			rep, err := v.ExecutePartial(q, func(core.Result) error { return nil })
			if err != nil {
				return nil, err
			}
			partials += int64(rep.PartialTuples)
			parts += int64(rep.ConditionParts)
		}
		out = append(out, DividerRow{
			Dividers:      nDiv,
			HitProb:       v.Stats().HitProbability(),
			PartsPerQuery: float64(parts) / float64(queries),
			Partial:       float64(partials) / float64(queries),
		})
		v.Drop()
	}
	return out, nil
}

// PlannerRow compares query latency with and without ANALYZE
// statistics for a query whose template order starts at the wrong
// (unselective) relation.
type PlannerRow struct {
	Stats   bool
	Median  time.Duration
	Queries int
}

// PlannerAblation builds a skewed two-relation join where the template
// declares the large, weakly-filtered relation first, and measures
// execution latency before and after ANALYZE (which lets the planner
// drive from the small, selective side).
func PlannerAblation(env *Env, queries int) ([]PlannerRow, error) {
	if queries <= 0 {
		queries = 30
	}
	// T1's declared order is (orders, lineitem) with the date condition
	// on orders. Build queries with a very unselective date list and a
	// single-supplier condition: driving from lineitem.suppkey is far
	// cheaper once statistics exist.
	mk := func(r int) *expr.Query {
		nDates := env.Cfg.Days / 2
		dates := make([]value.Value, 0, nDates)
		for d := 0; d < nDates; d++ {
			dates = append(dates, dateVal(d))
		}
		return &expr.Query{
			Template: env.T1,
			Conds: []expr.CondInstance{
				{Values: dates},
				{Values: []value.Value{value.Int(int64(r % env.Cfg.Suppliers))}},
			},
		}
	}
	run := func() (time.Duration, error) {
		samples := make([]time.Duration, 0, queries)
		for r := 0; r < queries; r++ {
			start := time.Now()
			err := env.Eng.Execute(mk(r), func(value.Tuple) error { return nil })
			if err != nil {
				return 0, err
			}
			samples = append(samples, time.Since(start))
		}
		return median(samples), nil
	}

	// Without statistics (fresh Setup never ran ANALYZE).
	noStats, err := run()
	if err != nil {
		return nil, err
	}
	if err := env.Eng.AnalyzeAll(); err != nil {
		return nil, err
	}
	withStats, err := run()
	if err != nil {
		return nil, err
	}
	return []PlannerRow{
		{Stats: false, Median: noStats, Queries: queries},
		{Stats: true, Median: withStats, Queries: queries},
	}, nil
}

// FRow is one point of the F trade-off under a fixed byte budget.
type FRow struct {
	F          int
	MaxEntries int
	HitProb    float64
	PartialAvg float64 // partial tuples per hit query
}

// FAblation fixes a byte budget UB and sweeps F: larger F means fewer
// entries (lower hit probability) but more partial tuples per hit —
// the trade-off Section 3.2 describes.
func FAblation(env *Env, budgetBytes int, queries int, seed int64) ([]FRow, error) {
	if budgetBytes <= 0 {
		budgetBytes = 16 << 10
	}
	if queries <= 0 {
		queries = 1000
	}
	const avgTupleBytes = 100 // At estimate for T1's Ls′ rows
	var out []FRow
	for _, f := range []int{1, 2, 3, 5, 8} {
		entries := budgetBytes / (f * avgTupleBytes)
		if entries < 1 {
			entries = 1
		}
		v, err := core.NewView(env.Eng, core.Config{
			Name:         fmt.Sprintf("abl_f%d_%d", f, time.Now().UnixNano()),
			Template:     env.T1,
			MaxEntries:   entries,
			TuplesPerBCP: f,
		})
		if err != nil {
			return nil, err
		}
		gen := newZipfQueryStream(env, seed)
		var partials, hits int64
		for i := 0; i < queries; i++ {
			rep, err := v.ExecutePartial(gen(), func(core.Result) error { return nil })
			if err != nil {
				return nil, err
			}
			if rep.Hit {
				hits++
				partials += int64(rep.PartialTuples)
			}
		}
		row := FRow{F: f, MaxEntries: entries, HitProb: v.Stats().HitProbability()}
		if hits > 0 {
			row.PartialAvg = float64(partials) / float64(hits)
		}
		out = append(out, row)
		v.Drop()
	}
	return out, nil
}

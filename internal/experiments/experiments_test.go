package experiments

import (
	"testing"
	"time"

	"pmv/internal/core"
)

// The experiment harness is exercised end-to-end at a tiny scale; the
// paper-scale runs live in cmd/pmvbench.

func smallEnv(t *testing.T) *Env {
	t.Helper()
	env, err := Setup(t.TempDir(), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.Close() })
	return env
}

func TestSetupLoadsControlledConfig(t *testing.T) {
	env := smallEnv(t)
	if !env.Cfg.Deterministic || !env.Cfg.CorrelatedSupp {
		t.Error("Setup did not use the controlled configuration")
	}
	r, err := env.Eng.Catalog().GetRelation("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if r.Heap.Count() != int64(env.Cfg.Lineitems()) {
		t.Errorf("lineitem count %d", r.Heap.Count())
	}
}

func TestHotQueriesHaveResults(t *testing.T) {
	env := smallEnv(t)
	v, err := env.newView(env.T1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.ExecutePartial(env.hotQueryT1(1, 1, 0), func(core.Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalTuples < 3 {
		t.Errorf("hot T1 bcp has only %d results; experiments need > F", rep.TotalTuples)
	}
	v2, err := env.newView(env.T2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := v2.ExecutePartial(env.hotQueryT2(1, 1, 1, 0), func(core.Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TotalTuples < 3 {
		t.Errorf("hot T2 bcp has only %d results; experiments need > F", rep2.TotalTuples)
	}
}

func TestFigure8Shape(t *testing.T) {
	env := smallEnv(t)
	rows, err := Figure8(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OverheadT1 <= 0 || r.OverheadT2 <= 0 {
			t.Errorf("F=%d: non-positive overhead", r.F)
		}
		if r.OverheadT1 > 10*time.Millisecond {
			t.Errorf("F=%d: implausible overhead %v", r.F, r.OverheadT1)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	env := smallEnv(t)
	rows, err := Figure9(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFigure10ExecDominatesOverhead(t *testing.T) {
	rows, err := Figure10(t.TempDir(), []float64{0.0005, 0.001}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ExecT1 < 3*r.OverheadT1 {
			t.Errorf("s=%g: T1 exec %v not well above overhead %v", r.Scale, r.ExecT1, r.OverheadT1)
		}
	}
	// Execution time grows with scale.
	if rows[1].ExecT1 <= rows[0].ExecT1 {
		t.Errorf("exec time did not grow with scale: %v -> %v", rows[0].ExecT1, rows[1].ExecT1)
	}
}

func TestTable1Ratios(t *testing.T) {
	rows, err := Table1(t.TempDir(), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Relation] = r
	}
	if byName["orders"].Tuples != 10*byName["customer"].Tuples {
		t.Error("orders/customer ratio broken")
	}
	if byName["lineitem"].Tuples != 4*byName["orders"].Tuples {
		t.Error("lineitem/orders ratio broken")
	}
	// Paper bytes-per-tuple: 153 / 76 / 126 (±15%).
	bpt := func(r Table1Row) float64 { return float64(r.Bytes) / float64(r.Tuples) }
	checks := map[string]float64{"customer": 153, "orders": 76, "lineitem": 126}
	for rel, want := range checks {
		got := bpt(byName[rel])
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%s: %.0f B/tuple, paper %v", rel, got, want)
		}
	}
}

func TestPolicyAblation2QWins(t *testing.T) {
	env := smallEnv(t)
	rows, err := PolicyAblation(env, 64, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]float64{}
	for _, r := range rows {
		byPolicy[string(r.Policy)] = r.HitProb
	}
	if byPolicy["2q"] <= byPolicy["clock"] {
		t.Errorf("2Q (%.3f) did not beat CLOCK (%.3f) on the skewed stream",
			byPolicy["2q"], byPolicy["clock"])
	}
}

func TestMaintAblationIndexWins(t *testing.T) {
	rows, err := MaintAblation(t.TempDir(), 0.001, 20, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var join, idx MaintRow
	for _, r := range rows {
		if r.Strategy == "delta-join" {
			join = r
		} else {
			idx = r
		}
	}
	if idx.Overhead >= join.Overhead {
		t.Errorf("maint index (%v) not cheaper than delta join (%v)", idx.Overhead, join.Overhead)
	}
}

func TestPlannerAblationStatsWin(t *testing.T) {
	env := smallEnv(t)
	rows, err := PlannerAblation(env, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Stats || !rows[1].Stats {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	if rows[1].Median >= rows[0].Median {
		t.Errorf("ANALYZE did not speed up the skewed query: %v -> %v",
			rows[0].Median, rows[1].Median)
	}
}

func TestDividerAblationTradeoff(t *testing.T) {
	env := smallEnv(t)
	rows, err := DividerAblation(env, 200, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Finer discretization always produces at least as many condition
	// parts per query.
	for i := 1; i < len(rows); i++ {
		if rows[i].PartsPerQuery < rows[i-1].PartsPerQuery {
			t.Errorf("parts/query fell from %d to %d dividers",
				rows[i-1].Dividers, rows[i].Dividers)
		}
	}
	// Partial volume should improve when moving past the coarsest
	// setting (a single huge bcp caches only F tuples for the whole
	// domain slice).
	if rows[len(rows)-1].Partial <= rows[0].Partial {
		t.Errorf("finer dividers served no more partials: %.2f vs %.2f",
			rows[0].Partial, rows[len(rows)-1].Partial)
	}
}

func TestFAblationTradeoff(t *testing.T) {
	env := smallEnv(t)
	rows, err := FAblation(env, 16<<10, 600, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Partial volume per hit must grow with F; hit probability must
	// not grow.
	for i := 1; i < len(rows); i++ {
		if rows[i].PartialAvg < rows[i-1].PartialAvg {
			t.Errorf("partial/hit fell from F=%d to F=%d", rows[i-1].F, rows[i].F)
		}
		if rows[i].HitProb > rows[i-1].HitProb+0.02 {
			t.Errorf("hit prob grew with F despite fixed budget")
		}
	}
}

// trace.go is the shard half of the distributed-tracing plane: it
// unwraps MsgTraced requests into the session's trace context, builds
// traces that parent correctly under the caller's span, and piggybacks
// the recorded span summary back as one MsgSpans frame immediately
// before the request's closing frame.
//
// Overhead contract: an untraced request never touches any of this —
// sess.traceCtx stays nil, sessionTrace falls back to the node-local
// trace/slowlog gate that PR 3 established, and emitSpans is a nil
// check. The trace context costs zero wire bytes when tracing is off
// because it only exists inside a MsgTraced wrapper.
package server

import (
	"fmt"
	"time"

	"pmv/internal/obs"
	"pmv/internal/wire"
)

// frameOverhead is the per-frame wire cost beyond the payload: u32
// length, u32 CRC-32C, u8 type. Used to bill response bytes.
const frameOverhead = 9

// handleTraced unwraps one trace-context-carrying request and serves
// the inner request under that context. Only the request types that
// participate in the distributed query/write path may be wrapped;
// admin commands have no spans worth parenting.
func (s *Server) handleTraced(sess *session, payload []byte) error {
	tc, inner, innerPayload, err := wire.DecodeTraced(payload)
	if err != nil {
		return s.writeErr(sess.bw, err)
	}
	switch inner {
	case wire.MsgQuery, wire.MsgProbeParts, wire.MsgExec, wire.MsgRefill, wire.MsgUpdate:
	default:
		return s.writeErr(sess.bw, fmt.Errorf("server: request type 0x%02x cannot carry a trace context", inner))
	}
	sess.traceCtx = &tc
	defer func() { sess.traceCtx = nil }()
	return s.dispatch(sess, inner, innerPayload)
}

// sessionTrace builds the trace for one request: a remote-rooted trace
// when the session carries a sampled wire context (the trace id and
// parent span come from the caller so assembly correlates), otherwise
// the node-local gate — a fresh trace when tracing is on or the
// slow-query log is armed, nil when both are off.
func (s *Server) sessionTrace(sess *session, label string, slowNs int64) (tr *obs.Trace, external bool) {
	if tc := sess.traceCtx; tc != nil && tc.Sampled {
		tr = obs.New(tc.TraceID, label)
		tr.Parent = tc.ParentSpan
		return tr, true
	}
	if s.traceOn.Load() || slowNs >= 0 {
		return obs.New(s.queryID.Add(1), label), false
	}
	return nil, false
}

// spanRecords flattens a trace (local plus fanned-back spans) for a
// MsgSpans frame.
func spanRecords(tr *obs.Trace) []wire.SpanRecord {
	spans := tr.AllSpans()
	recs := make([]wire.SpanRecord, len(spans))
	for i, sp := range spans {
		recs[i] = wire.SpanRecord{
			Kind:    uint8(sp.Kind),
			StartNs: int64(sp.Start),
			DurNs:   int64(sp.Dur),
			N1:      sp.N1,
			N2:      sp.N2,
			N3:      sp.N3,
			Rows:    sp.Rows,
			Bytes:   sp.Bytes,
			Allocs:  sp.Allocs,
			Fsyncs:  sp.Fsyncs,
		}
	}
	return recs
}

// emitSpans piggybacks the trace's span summary onto the response when
// (and only when) the request arrived wrapped in a sampled MsgTraced.
// It is written right before the closing MsgDone/MsgReply so stream
// consumers see it in a deterministic place.
func (s *Server) emitSpans(sess *session, tr *obs.Trace, external bool) error {
	if !external || tr == nil {
		return nil
	}
	payload, err := wire.EncodeSpans(tr.ID, spanRecords(tr))
	if err != nil {
		return nil // a spans frame is telemetry; never fail the request over it
	}
	sess.armWrite()
	return wire.WriteFrame(sess.bw, wire.MsgSpans, payload)
}

// WireSpans converts a trace's spans (local plus fanned-back) to the
// JSON wire shape used by the slowlog and assembled-trace replies.
func WireSpans(tr *obs.Trace) []wire.TraceSpan {
	spans := tr.AllSpans()
	out := make([]wire.TraceSpan, len(spans))
	for i, sp := range spans {
		out[i] = wire.TraceSpan{
			Kind:    sp.Kind.String(),
			StartNs: int64(sp.Start),
			DurNs:   int64(sp.Dur),
			N1:      sp.N1,
			N2:      sp.N2,
			N3:      sp.N3,
			Rows:    sp.Rows,
			Bytes:   sp.Bytes,
			Allocs:  sp.Allocs,
			Fsyncs:  sp.Fsyncs,
			Source:  sp.Source,
			Detail:  sp.Detail(),
		}
	}
	return out
}

// RecordsToSpans converts received MsgSpans records into obs spans
// tagged with the reporting peer's address, ready for Trace.AddSpans.
func RecordsToSpans(source string, recs []wire.SpanRecord) []obs.Span {
	out := make([]obs.Span, len(recs))
	for i, r := range recs {
		out[i] = obs.Span{
			Kind:   obs.Kind(r.Kind),
			Start:  time.Duration(r.StartNs),
			Dur:    time.Duration(r.DurNs),
			N1:     r.N1,
			N2:     r.N2,
			N3:     r.N3,
			Rows:   r.Rows,
			Bytes:  r.Bytes,
			Allocs: r.Allocs,
			Fsyncs: r.Fsyncs,
			Source: source,
		}
	}
	return out
}

package server

import (
	"net"
	"testing"
	"time"

	"pmv/internal/wire"
)

// rawDial opens an unwrapped protocol connection to the test server.
func rawDial(t *testing.T, s *Server) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// statsRoundTrip issues one MsgStats request, proving the session is
// registered and healthy.
func statsRoundTrip(t *testing.T, c net.Conn) {
	t.Helper()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(c, wire.MsgStats, nil); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(c)
	if err != nil || typ != wire.MsgReply {
		t.Fatalf("stats round trip: typ=0x%02x err=%v", typ, err)
	}
	c.SetDeadline(time.Time{})
}

func TestConnCapRejectsOverflow(t *testing.T) {
	s, _, _ := testServer(t, Config{MaxConns: 2})

	c1 := rawDial(t, s)
	statsRoundTrip(t, c1)
	c2 := rawDial(t, s)
	statsRoundTrip(t, c2)

	// Third connection is over the cap: one error frame, then close.
	c3 := rawDial(t, s)
	c3.SetDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadFrame(c3)
	if err != nil {
		t.Fatalf("over-cap conn got no error frame: %v", err)
	}
	if typ != wire.MsgError {
		t.Fatalf("over-cap conn got frame type 0x%02x", typ)
	}
	if string(payload) == "" {
		t.Fatal("over-cap error frame has empty message")
	}
	if _, _, err := wire.ReadFrame(c3); err == nil {
		t.Fatal("over-cap conn stayed open past the error frame")
	}
	if got := s.Metrics().ConnRejected.Load(); got != 1 {
		t.Fatalf("ConnRejected = %d, want 1", got)
	}

	// Capacity frees when a session closes: a fourth conn now succeeds.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c4, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c4.SetDeadline(time.Now().Add(time.Second))
		if err := wire.WriteFrame(c4, wire.MsgStats, nil); err == nil {
			if typ, _, err := wire.ReadFrame(c4); err == nil && typ == wire.MsgReply {
				c4.Close()
				return
			}
		}
		c4.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after closing a session")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestIdleSessionsAreReaped(t *testing.T) {
	s, _, _ := testServer(t, Config{IdleTimeout: 100 * time.Millisecond})

	c := rawDial(t, s)
	statsRoundTrip(t, c)

	// Go silent; the idle deadline (or the reaper) must close us.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("idle session was never closed")
	}
	if got := s.Metrics().IdleReaped.Load(); got < 1 {
		t.Fatalf("IdleReaped = %d, want >= 1", got)
	}

	// The session goroutine must have fully retired.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().SessionsActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("SessionsActive = %d after reap", s.Metrics().SessionsActive.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSlowlorisFrameTimeout(t *testing.T) {
	s, _, _ := testServer(t, Config{FrameTimeout: 100 * time.Millisecond})

	c := rawDial(t, s)
	statsRoundTrip(t, c)

	// Start a frame but never finish it: the per-frame deadline, not
	// the (unset) idle timeout, must kill the session.
	if _, err := c.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("half-sent frame kept the session alive")
	}
	if got := s.Metrics().ReadTimeouts.Load(); got != 1 {
		t.Fatalf("ReadTimeouts = %d, want 1", got)
	}
}

func TestCorruptFrameDropsSession(t *testing.T) {
	s, _, _ := testServer(t, Config{})

	c := rawDial(t, s)
	statsRoundTrip(t, c)

	// A well-framed request whose checksum lies: 1 payload byte, CRC 0.
	if _, err := c.Write([]byte{0, 0, 0, 1, 0, 0, 0, 0, wire.MsgStats}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("corrupt frame kept the session alive")
	}
	if got := s.Metrics().CorruptFrames.Load(); got != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", got)
	}
}

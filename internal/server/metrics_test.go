package server

import (
	"testing"
	"time"
)

// TestQuantileMidpoint pins the histogram's quantile estimate on known
// distributions: bucket i covers nanosecond counts of bit length i, and
// the estimate is the bucket midpoint clamped to the observed maximum.
func TestQuantileMidpoint(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Hist
		if got := h.Snapshot(); got.P50Ns != 0 || got.P99Ns != 0 {
			t.Fatalf("empty histogram quantiles = %+v, want zeros", got)
		}
	})

	t.Run("zeros", func(t *testing.T) {
		var h Hist
		for i := 0; i < 10; i++ {
			h.Observe(0)
		}
		if got := h.quantile(0.50, 10); got != 0 {
			t.Fatalf("p50 of all-zero observations = %d, want 0", got)
		}
	})

	t.Run("point mass", func(t *testing.T) {
		// 100ns has bit length 7, so it lands in bucket [64, 127];
		// midpoint = 64 + (127-64)/2 = 95, under the max of 100.
		var h Hist
		for i := 0; i < 1000; i++ {
			h.Observe(100 * time.Nanosecond)
		}
		for _, q := range []float64{0.50, 0.90, 0.99} {
			if got := h.quantile(q, 1000); got != 95 {
				t.Fatalf("q%.2f = %d, want bucket midpoint 95", q, got)
			}
		}
	})

	t.Run("clamped to max", func(t *testing.T) {
		// 1024 lands in bucket [1024, 2047] whose midpoint 1535
		// exceeds every observation; the estimate must clamp to 1024.
		var h Hist
		h.Observe(1024 * time.Nanosecond)
		if got := h.quantile(0.50, 1); got != 1024 {
			t.Fatalf("p50 = %d, want max-clamped 1024", got)
		}
	})

	t.Run("bimodal", func(t *testing.T) {
		// 90 fast (100ns, bucket [64,127]) + 10 slow (1ms, bucket
		// [524288, 1048575]): p50 sits in the fast bucket, p99 in the
		// slow one — the old upper-bound estimate would have doubled both.
		var h Hist
		for i := 0; i < 90; i++ {
			h.Observe(100 * time.Nanosecond)
		}
		for i := 0; i < 10; i++ {
			h.Observe(time.Millisecond)
		}
		if got := h.quantile(0.50, 100); got != 95 {
			t.Fatalf("p50 = %d, want 95", got)
		}
		p99 := h.quantile(0.99, 100)
		lo, hi := int64(524288), int64(1048575)
		wantMid := lo + (hi-lo)/2
		if p99 != wantMid && p99 != 1000000 { // midpoint, or clamped to max
			t.Fatalf("p99 = %d, want %d (bucket midpoint) or 1000000 (max)", p99, wantMid)
		}
	})
}

// TestHistDump checks the Prometheus export: cumulative counts, bucket
// upper bounds in seconds, and the count/sum pair.
func TestHistDump(t *testing.T) {
	var h Hist
	for i := 0; i < 3; i++ {
		h.Observe(100 * time.Nanosecond) // bucket 7, le 127ns
	}
	for i := 0; i < 2; i++ {
		h.Observe(1000 * time.Nanosecond) // bucket 10, le 1023ns
	}
	buckets, count, sum := h.Dump()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if want := 2300e-9; sum < want*0.999 || sum > want*1.001 {
		t.Fatalf("sum = %g s, want %g", sum, want)
	}
	if len(buckets) != 11 { // up to the highest occupied bucket (index 10)
		t.Fatalf("got %d buckets, want 11", len(buckets))
	}
	last := int64(0)
	for i, b := range buckets {
		if b.Cum < last {
			t.Fatalf("bucket %d cumulative count %d < previous %d", i, b.Cum, last)
		}
		last = b.Cum
		wantLE := float64(int64(1)<<uint(i)-1) / 1e9
		if b.LE != wantLE {
			t.Fatalf("bucket %d le = %g, want %g", i, b.LE, wantLE)
		}
	}
	if buckets[7].Cum != 3 {
		t.Fatalf("cum through le=127ns bucket = %d, want 3", buckets[7].Cum)
	}
	if buckets[10].Cum != 5 {
		t.Fatalf("cum through le=1023ns bucket = %d, want 5", buckets[10].Cum)
	}
}

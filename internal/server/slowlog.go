package server

import (
	"sync"

	"pmv/internal/wire"
)

// slowLogCap bounds the slow-query ring buffer; older records are
// overwritten. Sized so a burst of slow queries is fully visible but a
// long-running server cannot grow without bound.
const slowLogCap = 128

// slowLog is a fixed-capacity ring of the most recent slow queries.
type slowLog struct {
	mu   sync.Mutex
	buf  [slowLogCap]wire.SlowQuery
	next int // index of the next write
	n    int // records held (≤ slowLogCap)
}

func (l *slowLog) add(q wire.SlowQuery) {
	l.mu.Lock()
	l.buf[l.next] = q
	l.next = (l.next + 1) % slowLogCap
	if l.n < slowLogCap {
		l.n++
	}
	l.mu.Unlock()
}

// snapshot returns up to limit records, newest first (0 = all held).
func (l *slowLog) snapshot(limit int) []wire.SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]wire.SlowQuery, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+slowLogCap)%slowLogCap])
	}
	return out
}


package server

import (
	"io"

	"pmv"
	"pmv/internal/obs"
)

// WritePrometheus renders the server's full metric surface in the
// Prometheus text exposition format: service counters, per-phase
// latency histograms, per-view core counters (including the paper's
// hit probability), and Go runtime families. It is the /metrics
// handler's body when pmvd runs with -obs.
func (s *Server) WritePrometheus(w io.Writer) error {
	p := obs.NewPromWriter(w)
	m := &s.metrics

	p.Counter("pmvd_sessions_total", "Sessions accepted since start.", float64(m.SessionsTotal.Load()))
	p.Gauge("pmvd_sessions_active", "Sessions currently open.", float64(m.SessionsActive.Load()))
	p.Counter("pmvd_queries_total", "Queries completed.", float64(m.Queries.Load()))
	p.Counter("pmvd_rows_total", "Result rows streamed.", float64(m.Rows.Load()))
	p.Counter("pmvd_partial_rows_total", "Rows served from PMVs in Operation O2.", float64(m.PartialRows.Load()))
	p.Counter("pmvd_shed_total", "Queries shed to PMV-only answers by admission control.", float64(m.Shed.Load()))
	p.Counter("pmvd_deadline_expired_total", "Queries truncated by their deadline.", float64(m.DeadlineExpired.Load()))
	p.Counter("pmvd_degraded_total", "Queries answered without the view (S-lock timeout).", float64(m.Degraded.Load()))
	p.Counter("pmvd_partial_only_total", "Queries answered by Operations O1+O2 alone.", float64(m.PartialOnly.Load()))
	p.Counter("pmvd_errors_total", "Per-request failures reported to clients.", float64(m.Errors.Load()))
	p.Counter("pmvd_updates_total", "Update batches accepted.", float64(m.Updates.Load()))
	p.Counter("pmvd_update_ops_total", "Update ops applied.", float64(m.UpdateOps.Load()))
	p.Counter("pmvd_update_rows_total", "Base-relation rows touched by updates.", float64(m.UpdateRows.Load()))
	p.Counter("pmvd_invalidations_total", "Invalidation requests honored.", float64(m.Invalidations.Load()))
	p.Counter("pmvd_conn_rejected_total", "Connections refused by the MaxConns cap.", float64(m.ConnRejected.Load()))
	p.Counter("pmvd_idle_reaped_total", "Sessions closed for idling past IdleTimeout.", float64(m.IdleReaped.Load()))
	p.Counter("pmvd_read_timeouts_total", "Request frames that stalled mid-arrival.", float64(m.ReadTimeouts.Load()))
	p.Counter("pmvd_write_timeouts_total", "Responses abandoned to a peer that stopped reading.", float64(m.WriteTimeouts.Load()))
	p.Counter("pmvd_corrupt_frames_total", "Sessions dropped on checksum or framing violations.", float64(m.CorruptFrames.Load()))
	p.Counter("pmvd_session_resets_total", "Sessions torn down by abrupt transport errors.", float64(m.SessionResets.Load()))
	p.Gauge("pmvd_pool_size", "Admission-control worker slots.", float64(cap(s.sem)))
	p.Gauge("pmvd_trace_enabled", "1 when per-query tracing is on.", b2f(s.traceOn.Load()))
	p.Gauge("pmvd_slowlog_threshold_seconds", "Slow-query log threshold (-1 = disabled).", slowSeconds(s.slowNs.Load()))

	// Per-query cost accounting: the resource bill behind the request
	// counters above.
	p.Counter("pmvd_query_cost_rows_total", "Rows streamed to clients across all request types.", float64(m.CostRows.Load()))
	p.Counter("pmvd_query_cost_wire_bytes_total", "Row-frame bytes written to clients (payload plus framing).", float64(m.CostBytes.Load()))
	p.Counter("pmvd_query_cost_alloc_bytes_total", "Heap bytes allocated while serving traced requests.", float64(m.CostAllocs.Load()))
	p.Counter("pmvd_query_cost_fsyncs_total", "WAL fsyncs attributed to traced write batches.", float64(m.CostFsyncs.Load()))
	p.Counter("pmvd_traces_sampled_total", "Requests that recorded a trace.", float64(m.TracesSampled.Load()))

	if ss := s.snapshotStats(); ss != nil {
		p.Gauge("pmvd_snapshot_age_seconds", "Seconds since the last successful cache snapshot (-1 = never).", ss.AgeSeconds)
		p.Gauge("pmvd_snapshot_last_write_bytes", "Size of the last successful cache snapshot.", float64(ss.LastWriteBytes))
		p.Gauge("pmvd_snapshot_last_write_seconds", "Duration of the last successful cache snapshot write.", float64(ss.LastWriteNs)/1e9)
		p.Counter("pmvd_snapshot_writes_total", "Cache snapshots committed.", float64(ss.Writes))
		p.Counter("pmvd_snapshot_write_errors_total", "Cache snapshot commits that failed.", float64(ss.WriteErrors))
		p.Gauge("pmvd_snapshot_warm_entries", "View entries admitted from the snapshot at the last boot.", float64(ss.WarmEntries))
		p.Gauge("pmvd_snapshot_warm_tuples", "Cached tuples admitted from the snapshot at the last boot.", float64(ss.WarmTuples))
		p.Counter("pmvd_snapshot_stale_rejects_total", "Snapshots rejected at boot for stamp mismatches (epoch, generation, revision).", float64(ss.StaleRejects))
		p.Counter("pmvd_snapshot_corrupt_rejects_total", "Snapshots rejected at boot for structural damage.", float64(ss.CorruptRejects))
		p.Counter("pmvd_snapshot_pending_skips_total", "Snapshot writes skipped for an in-flight maintenance batch.", float64(ss.PendingSkips))
		p.Gauge("pmvd_snapshot_epoch", "Shard-map epoch persisted beside the snapshot.", float64(ss.Epoch))
	}

	if ms := s.maintStats(); ms != nil {
		p.Gauge("pmvd_maint_queue_depth", "Update requests waiting in the ingest queue.", float64(ms.QueueDepth))
		p.Gauge("pmvd_maint_queue_cap", "Ingest queue capacity.", float64(ms.QueueCap))
		p.Counter("pmvd_maint_ops_ingested_total", "Ops accepted by the write plane.", float64(ms.OpsIngested))
		p.Counter("pmvd_maint_ops_applied_total", "Ops applied to base relations.", float64(ms.OpsApplied))
		p.Counter("pmvd_maint_op_errors_total", "Ops that failed to apply.", float64(ms.OpErrors))
		p.Counter("pmvd_maint_batches_total", "Batches flushed.", float64(ms.Batches))
		p.Counter("pmvd_maint_size_flushes_total", "Batches flushed on size.", float64(ms.SizeFlushes))
		p.Counter("pmvd_maint_age_flushes_total", "Batches flushed on age.", float64(ms.AgeFlushes))
		p.Gauge("pmvd_maint_max_batch_ops", "Largest batch applied so far.", float64(ms.MaxBatchOps))
		p.Counter("pmvd_maint_lock_wait_seconds_total", "Time batches waited for view X locks.", float64(ms.LockWaitNs)/1e9)
		p.Counter("pmvd_maint_apply_seconds_total", "Time spent applying base-relation ops.", float64(ms.ApplyNs)/1e9)
		p.Counter("pmvd_maint_coalesced_ops_total", "Ops applied through shared-scan coalesced runs.", float64(ms.CoalescedOps))
		p.Counter("pmvd_maint_group_syncs_total", "Per-batch WAL group commits.", float64(ms.GroupSyncs))
		p.Counter("pmvd_maint_sync_seconds_total", "Time spent in group-commit WAL syncs.", float64(ms.SyncNs)/1e9)
		p.Counter("pmvd_maint_maintain_seconds_total", "Time spent in view maintenance.", float64(ms.MaintNs)/1e9)
		p.Counter("pmvd_maint_keys_affected_total", "Affected bcp keys computed.", float64(ms.KeysAffected))
		p.Counter("pmvd_maint_light_keys_total", "Keys classified light (purged eagerly).", float64(ms.LightKeys))
		p.Counter("pmvd_maint_heavy_keys_total", "Keys classified heavy (invalidated lazily).", float64(ms.HeavyKeys))
		p.Counter("pmvd_maint_entries_purged_total", "View entries purged by the light path.", float64(ms.EntriesPurged))
		p.Counter("pmvd_maint_tuples_purged_total", "Cached tuples purged by the light path.", float64(ms.TuplesPurged))
		p.Counter("pmvd_maint_key_gen_bumps_total", "Per-key invalidation-generation bumps.", float64(ms.KeyGenBumps))
		p.Counter("pmvd_maint_wide_gen_bumps_total", "View-wide invalidation-generation bumps.", float64(ms.WideGenBumps))
		p.Counter("pmvd_maint_purge_degrades_total", "Purges degraded to generation bumps on lock failure.", float64(ms.PurgeDegrades))
	}

	if fs := s.freqStats(); fs != nil {
		p.Counter("pmvd_freq_probes_suppressed_total", "O2 probes skipped because the presence filter proved the key absent.", float64(fs.ProbesSuppressed))
		p.Counter("pmvd_freq_filter_positives_total", "Probes the presence filter let through.", float64(fs.FilterPositives))
		p.Counter("pmvd_freq_filter_false_positives_total", "Filter positives that found no live entry.", float64(fs.FilterFalsePositives))
		p.Counter("pmvd_freq_admit_gate_rejects_total", "Cache admissions declined by the popularity gate.", float64(fs.AdmitGateRejects))
		p.Counter("pmvd_freq_hot_set_keys_total", "Hot keys replicated into the cache via MsgHotSet.", float64(fs.HotSetKeys))
		p.Counter("pmvd_freq_hot_set_tuples_total", "Tuples cached from MsgHotSet pushes.", float64(fs.HotSetTuples))
		p.Counter("pmvd_freq_hot_inval_keys_total", "Replicated keys invalidated via MsgHotInval.", float64(fs.HotInvalKeys))
		p.Counter("pmvd_freq_sketch_touches_total", "Popularity observations absorbed by the count-min sketches.", float64(fs.SketchTouches))
		p.Counter("pmvd_freq_sketch_rotations_total", "Sketch epoch rotations (window expiries).", float64(fs.SketchRotations))
		p.Gauge("pmvd_freq_sketch_load", "Highest per-view sketch epoch load (touches this window).", fs.SketchLoad)
	}

	p.Header("pmvd_query_seconds", "histogram", "Query latency by phase (partial = O1+O2, exec = O3, total = whole query).")
	for _, ph := range []struct {
		name string
		h    *Hist
	}{{"partial", &m.PartialPhase}, {"exec", &m.ExecPhase}, {"total", &m.Total}} {
		buckets, count, sum := ph.h.Dump()
		p.Histogram("pmvd_query_seconds", obs.Label("phase", ph.name), buckets, count, sum)
	}

	// Per-view families: snapshot each view once, then emit family by
	// family (Prometheus requires samples of a family to be contiguous).
	type viewRow struct {
		lbl     string
		st      pmv.ViewStats
		entries int
		maxE    int
		tuples  int
		bytes   int
	}
	var rows []viewRow
	for _, v := range s.db.Views() {
		rows = append(rows, viewRow{
			lbl:     obs.Label("view", v.Name()),
			st:      v.Stats(),
			entries: v.Len(),
			maxE:    v.Config().MaxEntries,
			tuples:  v.TupleCount(),
			bytes:   v.SizeBytes(),
		})
	}

	p.Header("pmv_view_hit_probability", "gauge", "Fraction of queries with at least one part cached (the paper's hit probability).")
	for _, r := range rows {
		p.Sample("pmv_view_hit_probability", r.lbl, r.st.HitProbability())
	}
	p.Header("pmv_view_occupancy", "gauge", "Live entries over the MaxEntries bound L.")
	for _, r := range rows {
		occ := 0.0
		if r.maxE > 0 {
			occ = float64(r.entries) / float64(r.maxE)
		}
		p.Sample("pmv_view_occupancy", r.lbl, occ)
	}
	p.Header("pmv_view_entries", "gauge", "Entries currently holding tuples.")
	for _, r := range rows {
		p.Sample("pmv_view_entries", r.lbl, float64(r.entries))
	}
	p.Header("pmv_view_tuples", "gauge", "Cached result tuples.")
	for _, r := range rows {
		p.Sample("pmv_view_tuples", r.lbl, float64(r.tuples))
	}
	p.Header("pmv_view_bytes", "gauge", "Estimated view footprint in bytes.")
	for _, r := range rows {
		p.Sample("pmv_view_bytes", r.lbl, float64(r.bytes))
	}
	for _, fam := range []struct {
		name, help string
		get        func(st pmv.ViewStats) float64
	}{
		{"pmv_view_queries_total", "Queries completed against the view.", func(st pmv.ViewStats) float64 { return float64(st.Queries) }},
		{"pmv_view_query_hits_total", "Queries with at least one cached part.", func(st pmv.ViewStats) float64 { return float64(st.QueryHits) }},
		{"pmv_view_parts_probed_total", "Condition parts generated by Operation O1.", func(st pmv.ViewStats) float64 { return float64(st.PartsProbed) }},
		{"pmv_view_partial_tuples_total", "Tuples served from the view in Operation O2.", func(st pmv.ViewStats) float64 { return float64(st.PartialTuples) }},
		{"pmv_view_tuples_cached_total", "Tuples cached by Operation O3 refills.", func(st pmv.ViewStats) float64 { return float64(st.TuplesCached) }},
		{"pmv_view_entries_evicted_total", "Entries evicted by the replacement policy.", func(st pmv.ViewStats) float64 { return float64(st.EntriesEvicted) }},
		{"pmv_view_tuples_purged_total", "Tuples purged by deferred maintenance.", func(st pmv.ViewStats) float64 { return float64(st.TuplesPurged) }},
		{"pmv_view_degraded_total", "Queries answered without the view (S-lock timeout).", func(st pmv.ViewStats) float64 { return float64(st.DegradedQueries) }},
		{"pmv_view_maint_seconds_total", "Time spent in delete/update maintenance.", func(st pmv.ViewStats) float64 { return st.MaintTime.Seconds() }},
		{"pmv_view_lock_wait_seconds_total", "Time queries waited for the view's S lock.", func(st pmv.ViewStats) float64 { return st.LockWaitTime.Seconds() }},
		{"pmv_view_o3_seconds_total", "Time spent in Operation O3 (query execution).", func(st pmv.ViewStats) float64 { return st.O3Time.Seconds() }},
	} {
		p.Header(fam.name, "counter", fam.help)
		for _, r := range rows {
			p.Sample(fam.name, r.lbl, fam.get(r.st))
		}
	}

	obs.WriteGoRuntime(p)
	return p.Flush()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func slowSeconds(ns int64) float64 {
	if ns < 0 {
		return -1
	}
	return float64(ns) / 1e9
}

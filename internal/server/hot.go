// hot.go implements the shard half of the frequency plane's wire
// surface: hot-entry replication pushes (MsgHotSet), hot-key replica
// invalidation (MsgHotInval), and presence-filter snapshot export
// (MsgFilter). Replication reuses the invalidation epoch discipline —
// a push or inval stamped with a stale shard-map epoch is rejected
// with MsgErrEpoch so a router reorganizing the ring cannot plant
// replicas on shards that left it.
package server

import (
	"fmt"

	"pmv/internal/value"
	"pmv/internal/wire"
)

// handleHotSet caches replica tuples for hot keys a router pushed.
func (s *Server) handleHotSet(sess *session, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeHotSet(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	if req.Epoch != 0 {
		ok, err := s.checkEpoch(bw, req.Epoch)
		if err != nil || !ok {
			return err
		}
	}
	v, found := s.db.ViewByName(req.View)
	if !found {
		return s.writeErr(bw, fmt.Errorf("server: no view %q", req.View))
	}
	keys := make([]string, len(req.Keys))
	tuples := make([][]value.Tuple, len(req.Keys))
	for i, hk := range req.Keys {
		keys[i] = hk.Key
		tuples[i] = hk.Tuples
	}
	replicated, stale, cached, err := v.ApplyHotSet(req.Seq, keys, tuples)
	if err != nil {
		return s.writeErr(bw, err)
	}
	return s.reply(bw, wire.HotSetReply{Replicated: replicated, Stale: stale, Tuples: cached})
}

// handleHotInval raises hot floors and bumps invalidation generations
// for replicated keys a write just damaged.
func (s *Server) handleHotInval(sess *session, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeHotInval(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	if req.Epoch != 0 {
		ok, err := s.checkEpoch(bw, req.Epoch)
		if err != nil || !ok {
			return err
		}
	}
	v, found := s.db.ViewByName(req.View)
	if !found {
		return s.writeErr(bw, fmt.Errorf("server: no view %q", req.View))
	}
	s.metrics.Invalidations.Add(1)
	v.ApplyHotInval(req.Seq, req.Keys)
	return s.reply(bw, wire.HotInvalReply{Keys: len(req.Keys)})
}

// handleFilter exports one view's presence-filter snapshot. A view
// running without the frequency plane answers with empty Bits — the
// router treats that as "suppress nothing".
func (s *Server) handleFilter(sess *session, payload []byte) error {
	bw := sess.bw
	name, err := wire.DecodeFilterReq(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	v, found := s.db.ViewByName(name)
	if !found {
		return s.writeErr(bw, fmt.Errorf("server: no view %q", name))
	}
	rep := wire.FilterReply{View: name}
	if bits, hashes, gen, keys, ok := v.FilterSnapshot(); ok {
		rep.Bits, rep.Hashes, rep.Gen, rep.Keys = bits, hashes, gen, keys
	}
	return s.reply(bw, rep)
}

// freqStats sums the frequency-plane counters across views for the
// stats reply. Nil only when the plane is off entirely: a freq-enabled
// database with no views yet still reports (zero) counters, so
// operators and smoke tests can see the plane is armed before traffic.
func (s *Server) freqStats() *wire.FreqStats {
	var out wire.FreqStats
	any := s.db.FreqEnabled()
	for _, v := range s.db.Views() {
		f := v.Freq()
		if f == nil {
			continue
		}
		any = true
		st := v.Stats()
		out.ProbesSuppressed += st.ProbesSuppressed
		out.FilterPositives += st.FilterPositives
		out.FilterFalsePositives += st.FilterFalsePositives
		out.AdmitGateRejects += st.AdmitGateRejects
		out.HotSetKeys += st.HotSetKeys
		out.HotSetTuples += st.HotSetTuples
		out.HotInvalKeys += st.HotInvalKeys
		sk := f.Sketch.Stats()
		out.SketchTouches += sk.Touches
		out.SketchRotations += sk.Rotations
		if load := float64(sk.EpochLoad); load > out.SketchLoad {
			out.SketchLoad = load
		}
	}
	if !any {
		return nil
	}
	return &out
}

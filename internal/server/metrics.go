package server

import (
	"math/bits"
	"sync/atomic"
	"time"

	"pmv/internal/obs"
	"pmv/internal/wire"
)

// Hist is a lock-free log-scale latency histogram: bucket i holds
// observations whose nanosecond count has bit length i (so bucket
// boundaries double — ~1.5 significant digits of resolution, which is
// plenty for p50/p99 trend tracking at zero coordination cost).
type Hist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// quantile estimates the q-quantile as the midpoint of the bucket the
// quantile rank falls into (clamped to the observed maximum). Bucket i
// covers nanosecond counts of bit length i — [2^(i-1), 2^i) for i ≥ 1,
// exactly {0} for i = 0 — so the midpoint halves the worst-case error
// of reporting the bucket's upper bound, and a distribution that sits
// on one value is estimated within a factor of ~1.5 instead of ~2.
func (h *Hist) quantile(q float64, total int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			lo := int64(1) << uint(i-1)
			hi := int64(1)<<uint(i) - 1
			mid := lo + (hi-lo)/2
			if m := h.max.Load(); mid > m {
				mid = m
			}
			return mid
		}
	}
	return h.max.Load()
}

// Dump exports the histogram as cumulative Prometheus buckets in
// seconds, up to the highest occupied bucket; the writer adds +Inf.
func (h *Hist) Dump() (buckets []obs.Bucket, count int64, sumSeconds float64) {
	top := -1
	var counts [64]int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		le := float64(int64(1)<<uint(i)-1) / 1e9
		buckets = append(buckets, obs.Bucket{LE: le, Cum: cum})
	}
	return buckets, h.count.Load(), float64(h.sum.Load()) / 1e9
}

// Snapshot summarizes the histogram. Concurrent Observes may tear the
// totals slightly; the summary is for monitoring, not accounting.
func (h *Hist) Snapshot() wire.HistSnapshot {
	total := h.count.Load()
	s := wire.HistSnapshot{Count: total, MaxNs: h.max.Load()}
	if total > 0 {
		s.MeanNs = h.sum.Load() / total
		s.P50Ns = h.quantile(0.50, total)
		s.P90Ns = h.quantile(0.90, total)
		s.P99Ns = h.quantile(0.99, total)
	}
	return s
}

// Metrics is the server's counter set. All fields are updated with
// atomics from session goroutines and snapshotted by the stats
// command.
type Metrics struct {
	SessionsTotal   atomic.Int64
	SessionsActive  atomic.Int64
	Queries         atomic.Int64
	Rows            atomic.Int64
	PartialRows     atomic.Int64
	Shed            atomic.Int64
	DeadlineExpired atomic.Int64
	Degraded        atomic.Int64
	PartialOnly     atomic.Int64
	Errors          atomic.Int64

	// Write plane: batches accepted, ops/rows applied, invalidation
	// requests honored.
	Updates       atomic.Int64
	UpdateOps     atomic.Int64
	UpdateRows    atomic.Int64
	Invalidations atomic.Int64

	// Network-plane failure modes, one counter each so a chaos run can
	// audit exactly how its injected faults were absorbed.
	ConnRejected  atomic.Int64 // connections refused by the MaxConns cap
	IdleReaped    atomic.Int64 // sessions closed for idling past IdleTimeout
	ReadTimeouts  atomic.Int64 // frames that stalled mid-arrival (slowloris)
	WriteTimeouts atomic.Int64 // responses abandoned to a peer that stopped reading
	CorruptFrames atomic.Int64 // sessions dropped on checksum/framing violations
	SessionResets atomic.Int64 // sessions torn down by abrupt transport errors

	// Per-query cost accounting (the resource bill, not just the
	// count): rows streamed to clients, wire bytes written for them,
	// heap bytes allocated by traced requests, and WAL fsyncs billed
	// to write batches. CostAllocs only advances for traced requests
	// (sampling the allocator is not free); the others are always on.
	CostRows      atomic.Int64
	CostBytes     atomic.Int64
	CostAllocs    atomic.Int64
	CostFsyncs    atomic.Int64
	TracesSampled atomic.Int64

	PartialPhase Hist // O1+O2: time to the last partial row
	ExecPhase    Hist // O3: query execution
	Total        Hist // whole query, admission wait included
}

// Snapshot captures every counter for the stats reply.
func (m *Metrics) Snapshot() wire.ServerStats {
	return wire.ServerStats{
		SessionsTotal:   m.SessionsTotal.Load(),
		SessionsActive:  m.SessionsActive.Load(),
		Queries:         m.Queries.Load(),
		Rows:            m.Rows.Load(),
		PartialRows:     m.PartialRows.Load(),
		Shed:            m.Shed.Load(),
		DeadlineExpired: m.DeadlineExpired.Load(),
		Degraded:        m.Degraded.Load(),
		PartialOnly:     m.PartialOnly.Load(),
		Errors:          m.Errors.Load(),
		Updates:         m.Updates.Load(),
		UpdateOps:       m.UpdateOps.Load(),
		UpdateRows:      m.UpdateRows.Load(),
		Invalidations:   m.Invalidations.Load(),
		ConnRejected:    m.ConnRejected.Load(),
		IdleReaped:      m.IdleReaped.Load(),
		ReadTimeouts:    m.ReadTimeouts.Load(),
		WriteTimeouts:   m.WriteTimeouts.Load(),
		CorruptFrames:   m.CorruptFrames.Load(),
		SessionResets:   m.SessionResets.Load(),
		CostRows:        m.CostRows.Load(),
		CostBytes:       m.CostBytes.Load(),
		CostAllocs:      m.CostAllocs.Load(),
		CostFsyncs:      m.CostFsyncs.Load(),
		TracesSampled:   m.TracesSampled.Load(),
		PartialPhase:    m.PartialPhase.Snapshot(),
		ExecPhase:       m.ExecPhase.Snapshot(),
		Total:           m.Total.Snapshot(),
	}
}

package server

import (
	"math/bits"
	"sync/atomic"
	"time"

	"pmv/internal/wire"
)

// Hist is a lock-free log-scale latency histogram: bucket i holds
// observations whose nanosecond count has bit length i (so bucket
// boundaries double — ~1.5 significant digits of resolution, which is
// plenty for p50/p99 trend tracking at zero coordination cost).
type Hist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// quantile returns an upper bound on the q-quantile (the top of the
// bucket the quantile falls into, clamped to the observed maximum).
func (h *Hist) quantile(q float64, total int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			hi := int64(1)<<uint(i) - 1
			if m := h.max.Load(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return h.max.Load()
}

// Snapshot summarizes the histogram. Concurrent Observes may tear the
// totals slightly; the summary is for monitoring, not accounting.
func (h *Hist) Snapshot() wire.HistSnapshot {
	total := h.count.Load()
	s := wire.HistSnapshot{Count: total, MaxNs: h.max.Load()}
	if total > 0 {
		s.MeanNs = h.sum.Load() / total
		s.P50Ns = h.quantile(0.50, total)
		s.P90Ns = h.quantile(0.90, total)
		s.P99Ns = h.quantile(0.99, total)
	}
	return s
}

// Metrics is the server's counter set. All fields are updated with
// atomics from session goroutines and snapshotted by the stats
// command.
type Metrics struct {
	SessionsTotal   atomic.Int64
	SessionsActive  atomic.Int64
	Queries         atomic.Int64
	Rows            atomic.Int64
	PartialRows     atomic.Int64
	Shed            atomic.Int64
	DeadlineExpired atomic.Int64
	Degraded        atomic.Int64
	PartialOnly     atomic.Int64
	Errors          atomic.Int64

	PartialPhase Hist // O1+O2: time to the last partial row
	ExecPhase    Hist // O3: query execution
	Total        Hist // whole query, admission wait included
}

// Snapshot captures every counter for the stats reply.
func (m *Metrics) Snapshot() wire.ServerStats {
	return wire.ServerStats{
		SessionsTotal:   m.SessionsTotal.Load(),
		SessionsActive:  m.SessionsActive.Load(),
		Queries:         m.Queries.Load(),
		Rows:            m.Rows.Load(),
		PartialRows:     m.PartialRows.Load(),
		Shed:            m.Shed.Load(),
		DeadlineExpired: m.DeadlineExpired.Load(),
		Degraded:        m.Degraded.Load(),
		PartialOnly:     m.PartialOnly.Load(),
		Errors:          m.Errors.Load(),
		PartialPhase:    m.PartialPhase.Snapshot(),
		ExecPhase:       m.ExecPhase.Snapshot(),
		Total:           m.Total.Snapshot(),
	}
}

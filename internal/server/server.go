// Package server is the pmvd query service: a concurrent, deadline-
// aware network front end over an embedded pmv database.
//
// Each accepted connection is one session, owned by one goroutine that
// reads length-prefixed requests (internal/wire) and answers them in
// order. Query execution — the only expensive request — passes through
// an admission controller: a bounded worker pool sized by
// Config.PoolSize. While a slot is free the full PMV protocol runs
// (O1+O2 partials stream first, then O3's remainder); when every slot
// is busy the server does not queue or hang but sheds the query,
// answering from the partial materialized view alone (Operations
// O1+O2) and flagging the report Shed. That is the paper's
// bounded-quality/bounded-time trade made operational: under overload
// clients keep getting the hot cached answers in microseconds instead
// of joining a convoy behind O3 executions.
//
// Deadlines compose with admission: every admitted query runs under a
// context.Context whose deadline is the client's (or the server
// default), so a query that outlives its budget returns the partial
// rows already streamed, flagged DeadlineExpired, instead of blocking
// the session.
//
// Sessions are hardened against a hostile or broken network plane:
// a connection cap (distinct from the query-admission semaphore)
// bounds accepted sessions; an idle deadline plus a reaper goroutine
// reclaim sessions whose peer went silent between requests; a
// per-frame read deadline caps how long one request may take to
// finish arriving once its first byte is seen (the slowloris shape);
// and write deadlines on row streaming stop a stuck peer from pinning
// a session goroutine mid-response. Every failure mode counts into
// Metrics so operators can see resets, reaps, corrupt frames, and
// timeouts per class.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pmv"
	"pmv/internal/expr"
	"pmv/internal/heap"
	"pmv/internal/maint"
	"pmv/internal/obs"
	"pmv/internal/snapshot"
	"pmv/internal/storage"
	"pmv/internal/value"
	"pmv/internal/wire"
)

// Config tunes a Server.
type Config struct {
	// PoolSize bounds concurrently executing O3s (admitted queries).
	// Queries arriving beyond it are shed to PMV-only answers.
	// Default: GOMAXPROCS.
	PoolSize int
	// DefaultDeadline bounds queries whose request carries no deadline
	// (0 = unbounded).
	DefaultDeadline time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight sessions
	// before force-closing connections. Default 5s.
	DrainTimeout time.Duration
	// Trace starts the server with per-query tracing enabled (also
	// togglable at runtime with the trace admin command).
	Trace bool
	// SlowThreshold enables the slow-query log: queries whose total
	// latency reaches it are recorded with their full trace (0 =
	// disabled; togglable at runtime).
	SlowThreshold time.Duration
	// MaxConns caps concurrently open sessions, independent of the
	// query-admission pool (0 = unlimited). A connection arriving
	// beyond it is answered with one error frame and closed.
	MaxConns int
	// IdleTimeout reclaims sessions whose peer sends nothing between
	// requests for this long, via a per-read deadline plus a reaper
	// goroutine (0 = sessions may idle forever).
	IdleTimeout time.Duration
	// FrameTimeout bounds how long one request frame may take to
	// finish arriving once its first byte has been read — a peer that
	// trickles a frame byte-by-byte (slowloris) loses its session
	// instead of pinning a goroutine. Default 30s; negative disables.
	FrameTimeout time.Duration
	// WriteTimeout bounds each response write, so a peer that stops
	// reading mid-stream cannot pin a session goroutine. Default 30s;
	// negative disables.
	WriteTimeout time.Duration
}

func (c *Config) fill() {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0)
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.FrameTimeout == 0 {
		c.FrameTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
}

// Server serves the pmvd wire protocol over a database.
type Server struct {
	db      *pmv.DB
	cfg     Config
	sem     chan struct{} // admission slots: acquired per executed query
	metrics Metrics

	// Observability state, all togglable at runtime via MsgTrace.
	traceOn atomic.Bool   // per-query tracing
	slowNs  atomic.Int64  // slow-query threshold in ns; < 0 = log off
	queryID atomic.Uint64 // trace ids
	slowlog slowLog

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	closing  chan struct{}
	wg       sync.WaitGroup

	// Cluster plane: the shard map a router installed (epoch 0 until
	// one does), validated against every probe/refill request.
	shardMu  sync.Mutex
	shardMap wire.ShardMapReply

	// Warm-restart plane: nil unless the process runs with snapshots.
	// The server reports the manager's health and forwards shard-map
	// installs to it so snapshots are stamped with the live epoch.
	snap *snapshot.Manager

	// Write plane: nil unless the process runs with batched update
	// ingest; updates then fall back to per-statement application.
	maint *maint.Plane
}

// SetSnapshots attaches the snapshot manager (call before Start).
func (s *Server) SetSnapshots(m *snapshot.Manager) { s.snap = m }

// session is one accepted connection's state: the conn with its
// buffered streams, plus the activity tracking the idle reaper and
// the deadline plumbing need.
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// lastActive is the unix-nano time of the last completed request
	// or flush; the reaper compares it against IdleTimeout.
	lastActive atomic.Int64
	// busy is true while a request is being served — the reaper never
	// closes a session mid-request (write deadlines cover that phase).
	busy atomic.Bool
	// reaped marks a session the reaper closed, so its read error is
	// not double-counted.
	reaped atomic.Bool
	// inFrame is true once the first byte of a request has been read,
	// distinguishing an idle-timeout close from a slowloris kill.
	inFrame bool

	// traceCtx is the wire trace context of the request currently being
	// served, set by handleTraced for the inner dispatch only. Nil for
	// every untraced request (the common case).
	traceCtx *wire.TraceContext
}

func (sess *session) touch() { sess.lastActive.Store(time.Now().UnixNano()) }

// armWrite starts the per-write deadline window; every response write
// (row frames, flushes, reports) must progress within WriteTimeout.
func (sess *session) armWrite() {
	if wt := sess.srv.cfg.WriteTimeout; wt > 0 {
		sess.conn.SetWriteDeadline(time.Now().Add(wt))
	}
}

// readRequest blocks for the next request frame under the session's
// two read budgets: the first byte must arrive within IdleTimeout
// (if set), and the rest of the frame within FrameTimeout.
func (sess *session) readRequest() (byte, []byte, error) {
	sess.inFrame = false
	if idle := sess.srv.cfg.IdleTimeout; idle > 0 {
		sess.conn.SetReadDeadline(time.Now().Add(idle))
	} else {
		sess.conn.SetReadDeadline(time.Time{})
	}
	// Re-arming the deadline races with Shutdown's wake-up poke;
	// checking the closing channel after arming closes the window (a
	// straggler is still force-closed at the end of the drain).
	select {
	case <-sess.srv.closing:
		sess.conn.SetReadDeadline(time.Now())
	default:
	}
	if _, err := sess.br.Peek(1); err != nil {
		return 0, nil, err
	}
	sess.inFrame = true
	if ft := sess.srv.cfg.FrameTimeout; ft > 0 {
		sess.conn.SetReadDeadline(time.Now().Add(ft))
	}
	return wire.ReadFrame(sess.br)
}

// New builds a server over db. The database stays owned by the caller
// (Shutdown does not close it).
func New(db *pmv.DB, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		db:       db,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.PoolSize),
		sessions: make(map[*session]struct{}),
		closing:  make(chan struct{}),
	}
	s.traceOn.Store(cfg.Trace)
	if cfg.SlowThreshold > 0 {
		s.slowNs.Store(int64(cfg.SlowThreshold))
	} else {
		s.slowNs.Store(-1)
	}
	return s
}

// Metrics exposes the live counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// PoolSize reports the effective admission-control pool size.
func (s *Server) PoolSize() int { return cap(s.sem) }

// Start listens on addr (e.g. ":7070", "127.0.0.1:0") and accepts
// sessions in a background goroutine until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.Serve(ln)
	return nil
}

// Serve accepts sessions on ln until Shutdown. Ownership of ln
// transfers to the server (Shutdown closes it). Useful when the caller
// wants a pre-bound or wrapped listener, e.g. a fault-injecting one.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	if s.cfg.IdleTimeout > 0 {
		s.wg.Add(1)
		go s.reaper()
	}
	s.wg.Add(1)
	go s.acceptLoop(ln)
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		select {
		case <-s.closing:
			s.mu.Unlock()
			c.Close()
			return
		default:
		}
		if s.cfg.MaxConns > 0 && len(s.sessions) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.metrics.ConnRejected.Add(1)
			go rejectConn(c)
			continue
		}
		sess := &session{
			srv:  s,
			conn: c,
			br:   bufio.NewReaderSize(c, 64<<10),
			bw:   bufio.NewWriterSize(c, 64<<10),
		}
		sess.touch()
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleSession(sess)
	}
}

// rejectConn answers an over-cap connection with a single error frame,
// best-effort under a short deadline so a slow peer cannot pin the
// goroutine, then closes it.
func rejectConn(c net.Conn) {
	c.SetWriteDeadline(time.Now().Add(time.Second))
	wire.WriteFrame(c, wire.MsgError, []byte("server: connection limit reached"))
	c.Close()
}

// reaper periodically closes sessions that have been idle past
// IdleTimeout. The per-read idle deadline catches most of these; the
// reaper is the backstop that also works when a deadline was cleared
// or the platform missed a poke.
func (s *Server) reaper() {
	defer s.wg.Done()
	interval := s.cfg.IdleTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.closing:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
		s.mu.Lock()
		var victims []*session
		for sess := range s.sessions {
			if sess.busy.Load() || sess.lastActive.Load() > cutoff {
				continue
			}
			victims = append(victims, sess)
		}
		s.mu.Unlock()
		for _, sess := range victims {
			if sess.reaped.CompareAndSwap(false, true) {
				s.metrics.IdleReaped.Add(1)
				sess.conn.Close()
			}
		}
	}
}

// Shutdown stops accepting, lets in-flight requests finish (bounded by
// DrainTimeout), then force-closes whatever remains. Safe to call
// once; the database is left open.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	select {
	case <-s.closing:
		s.mu.Unlock()
		return nil
	default:
	}
	close(s.closing)
	ln := s.ln
	// Wake sessions blocked reading the next request; ones mid-query
	// finish their response first, then observe the closed channel.
	// The write deadline bounds sessions stuck in a response write to a
	// dead peer — they unblock within the drain window instead of
	// needing the force-close hammer.
	for sess := range s.sessions {
		sess.conn.SetReadDeadline(time.Now())
		sess.conn.SetWriteDeadline(time.Now().Add(s.cfg.DrainTimeout))
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// errUnknownRequest terminates a session whose peer sent a request
// type the server does not speak; the stream may be desynced.
var errUnknownRequest = errors.New("server: unknown request type")

// handleSession owns one session for the connection's lifetime.
func (s *Server) handleSession(sess *session) {
	s.metrics.SessionsTotal.Add(1)
	s.metrics.SessionsActive.Add(1)
	defer func() {
		s.metrics.SessionsActive.Add(-1)
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		sess.conn.Close()
		s.wg.Done()
	}()

	for {
		typ, payload, err := sess.readRequest()
		if err != nil {
			s.classifyReadErr(sess, err)
			return
		}
		sess.busy.Store(true)
		sess.armWrite()
		err = s.dispatch(sess, typ, payload)
		if err == nil {
			sess.armWrite()
			err = sess.bw.Flush()
		}
		sess.busy.Store(false)
		sess.touch()
		if err != nil {
			s.classifyDispatchErr(sess, err)
			return
		}
		select {
		case <-s.closing:
			return
		default:
		}
	}
}

// classifyReadErr counts why a session's request read failed. Clean
// EOF and shutdown pokes are not failures; everything else lands in
// exactly one counter so netchaos runs can audit the failure budget.
func (s *Server) classifyReadErr(sess *session, err error) {
	switch {
	case sess.reaped.Load():
		// The reaper closed it and already counted IdleReaped.
	case errors.Is(err, wire.ErrCorruptFrame) || errors.Is(err, wire.ErrFrameTooLarge):
		s.metrics.CorruptFrames.Add(1)
	case errors.Is(err, os.ErrDeadlineExceeded):
		select {
		case <-s.closing:
			return // drain poke, not a network failure
		default:
		}
		if sess.inFrame {
			s.metrics.ReadTimeouts.Add(1) // slowloris: frame stalled mid-arrival
		} else {
			s.metrics.IdleReaped.Add(1) // peer went silent between requests
		}
	case errors.Is(err, io.EOF):
		// Clean close between requests.
	default:
		s.metrics.SessionResets.Add(1)
	}
}

// classifyDispatchErr counts why serving a request terminated the
// session: a response write that timed out or failed, or a request the
// server cannot parse past.
func (s *Server) classifyDispatchErr(sess *session, err error) {
	switch {
	case sess.reaped.Load():
	case errors.Is(err, errVersionMismatch):
		// Clean, typed rejection: the peer got MsgErrVersion and the
		// session is closed on purpose.
	case errors.Is(err, errUnknownRequest):
		s.metrics.CorruptFrames.Add(1)
	case errors.Is(err, os.ErrDeadlineExceeded):
		s.metrics.WriteTimeouts.Add(1)
	default:
		select {
		case <-s.closing:
			return // drain deadline fired mid-response
		default:
		}
		s.metrics.SessionResets.Add(1)
	}
}

// dispatch answers one request. A returned error terminates the
// session (unwritable connection or an unparseable request that may
// have desynced the stream); per-request failures that leave the
// stream well-formed are reported to the client in a MsgError frame
// and return nil.
func (s *Server) dispatch(sess *session, typ byte, payload []byte) error {
	bw := sess.bw
	switch typ {
	case wire.MsgQuery:
		return s.handleQuery(sess, payload)
	case wire.MsgStats:
		return s.reply(bw, s.statsReply())
	case wire.MsgViews:
		return s.reply(bw, s.viewsReply())
	case wire.MsgTables:
		return s.reply(bw, s.tablesReply())
	case wire.MsgSchema:
		return s.handleSchema(bw, string(payload))
	case wire.MsgCount:
		r, err := s.db.Engine().Catalog().GetRelation(string(payload))
		if err != nil {
			return s.writeErr(bw, err)
		}
		return s.reply(bw, wire.CountReply{Count: r.Heap.Count()})
	case wire.MsgPeek:
		return s.handlePeek(bw, payload)
	case wire.MsgAnalyze:
		if err := s.db.Analyze(); err != nil {
			return s.writeErr(bw, err)
		}
		return s.reply(bw, wire.OKReply{OK: true})
	case wire.MsgCheckpoint:
		if err := s.db.Checkpoint(); err != nil {
			return s.writeErr(bw, err)
		}
		return s.reply(bw, wire.OKReply{OK: true})
	case wire.MsgTrace:
		return s.handleTrace(bw, payload)
	case wire.MsgSlowlog:
		return s.handleSlowlog(bw, payload)
	case wire.MsgViewStats:
		return s.reply(bw, s.viewStatsReply())
	case wire.MsgHello:
		return s.handleHello(sess, payload)
	case wire.MsgProbeParts:
		return s.handleProbeParts(sess, payload)
	case wire.MsgExec:
		return s.handleExec(sess, payload)
	case wire.MsgRefill:
		return s.handleRefill(sess, payload)
	case wire.MsgShardMap:
		return s.handleShardMap(bw, payload)
	case wire.MsgPing:
		return s.handlePing(bw, payload)
	case wire.MsgUpdate:
		return s.handleUpdate(sess, payload)
	case wire.MsgInvalidate:
		return s.handleInvalidate(sess, payload)
	case wire.MsgHotSet:
		return s.handleHotSet(sess, payload)
	case wire.MsgHotInval:
		return s.handleHotInval(sess, payload)
	case wire.MsgFilter:
		return s.handleFilter(sess, payload)
	case wire.MsgTraced:
		return s.handleTraced(sess, payload)
	case wire.MsgShards:
		return s.writeErr(bw, errors.New("server: shards is a router request; this is a shard"))
	case wire.MsgTraceGet, wire.MsgFleet:
		return s.writeErr(bw, errors.New("server: trace assembly and fleet federation live in the router; address a pmvrouter"))
	default:
		return fmt.Errorf("%w 0x%02x", errUnknownRequest, typ)
	}
}

// writeErr reports a per-request failure and keeps the session open.
func (s *Server) writeErr(bw *bufio.Writer, err error) error {
	s.metrics.Errors.Add(1)
	return wire.WriteFrame(bw, wire.MsgError, []byte(err.Error()))
}

// reply marshals v into a MsgReply frame.
func (s *Server) reply(bw *bufio.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return s.writeErr(bw, err)
	}
	return wire.WriteFrame(bw, wire.MsgReply, data)
}

// handleQuery runs one PMV query with admission control and deadline
// enforcement, streaming rows as they are produced.
func (s *Server) handleQuery(sess *session, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeQuery(payload)
	if err != nil {
		// The payload is framed, so the stream is still in sync — but
		// a client speaking garbage gets an error, not a hang.
		return s.writeErr(bw, err)
	}
	v, ok := s.db.ViewByName(req.View)
	if !ok {
		return s.writeErr(bw, fmt.Errorf("server: no view %q", req.View))
	}
	q := &expr.Query{Template: v.Config().Template, Conds: req.Conds}

	var (
		rowBuf    []byte
		emitFail  error // distinguishes our write failures from query errors
		wireBytes int64 // response bytes, for the query's cost bill
	)
	emit := func(r pmv.Result) error {
		// Re-arm the write deadline per row: progress, not total
		// response time, is what WriteTimeout bounds.
		sess.armWrite()
		rowBuf = wire.EncodeRow(rowBuf[:0], r.Tuple, r.Partial)
		if err := wire.WriteFrame(bw, wire.MsgRow, rowBuf); err != nil {
			emitFail = err
			return err
		}
		wireBytes += int64(len(rowBuf)) + frameOverhead
		if r.Partial {
			// Partial-first contract: O2 rows reach the client now,
			// not when the buffer happens to fill.
			if err := bw.Flush(); err != nil {
				emitFail = err
				return err
			}
		}
		return nil
	}

	// A trace is allocated when the request carries a sampled wire
	// context, when tracing is on, or when the slow-query log is armed
	// (the log needs spans to be worth dumping). Otherwise tr stays nil
	// and every recording site downstream is a pointer compare.
	slowNs := s.slowNs.Load()
	tr, external := s.sessionTrace(sess, req.View, slowNs)
	allocMark := tr.AllocMark()

	start := time.Now()
	var rep pmv.QueryReport
	var qerr error
	shed := false
	select {
	case s.sem <- struct{}{}:
		ctx := pmv.WithTrace(context.Background(), tr)
		deadline := req.Deadline
		if deadline <= 0 {
			deadline = s.cfg.DefaultDeadline
		}
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		rep, qerr = v.ExecutePartialCtx(ctx, q, emit)
		<-s.sem
	default:
		// Admission control: every worker slot is busy. Shed by
		// answering from the view alone — bounded work, never a queue.
		shed = true
		rep, qerr = v.PartialOnlyCtx(pmv.WithTrace(context.Background(), tr), q, emit)
	}
	if emitFail != nil {
		return emitFail
	}
	if qerr != nil {
		return s.writeErr(bw, qerr)
	}
	total := time.Since(start)

	s.metrics.Queries.Add(1)
	s.metrics.Rows.Add(int64(rep.TotalTuples))
	s.metrics.PartialRows.Add(int64(rep.PartialTuples))
	if shed {
		s.metrics.Shed.Add(1)
	}
	if rep.PartialOnly {
		s.metrics.PartialOnly.Add(1)
	}
	if rep.DeadlineExpired {
		s.metrics.DeadlineExpired.Add(1)
	}
	if rep.Degraded {
		s.metrics.Degraded.Add(1)
	}
	s.metrics.PartialPhase.Observe(rep.PartialLatency)
	s.metrics.ExecPhase.Observe(rep.ExecLatency)
	s.metrics.Total.Observe(total)

	wrep := wire.Report{
		Hit:             rep.Hit,
		Skipped:         rep.Skipped,
		Degraded:        rep.Degraded,
		DeadlineExpired: rep.DeadlineExpired,
		PartialOnly:     rep.PartialOnly,
		Shed:            shed,
		ConditionParts:  rep.ConditionParts,
		PartialTuples:   rep.PartialTuples,
		TotalTuples:     rep.TotalTuples,
		PartialLatency:  rep.PartialLatency,
		ExecLatency:     rep.ExecLatency,
		Overhead:        rep.Overhead,
	}
	// Cost accounting: rows/bytes are always-on cheap adds; the heap
	// bill is sampled only on traced queries (AllocMark reads the
	// runtime, so the untraced path must never pay it).
	s.metrics.CostRows.Add(int64(rep.TotalTuples))
	s.metrics.CostBytes.Add(wireBytes)
	if tr != nil {
		allocd := tr.AllocMark() - allocMark
		tr.SpanCost(obs.KindServe, start, int64(rep.TotalTuples), 0, 0, obs.Cost{
			Rows:   int64(rep.TotalTuples),
			Bytes:  wireBytes,
			Allocs: allocd,
		})
		s.metrics.TracesSampled.Add(1)
		s.metrics.CostAllocs.Add(allocd)
	}
	if tr != nil && slowNs >= 0 && int64(total) >= slowNs {
		s.slowlog.add(wire.SlowQuery{
			ID:     tr.ID,
			UnixNs: time.Now().UnixNano(),
			View:   req.View,
			DurNs:  int64(total),
			Reason: "slow",
			Report: wrep,
			Spans:  WireSpans(tr),
		})
	}
	if err := s.emitSpans(sess, tr, external); err != nil {
		return err
	}
	sess.armWrite()
	return wire.WriteFrame(bw, wire.MsgDone, wire.EncodeReport(nil, wrep))
}

// handleTrace reads/updates the tracing and slow-query-log settings.
func (s *Server) handleTrace(bw *bufio.Writer, payload []byte) error {
	var req wire.TraceRequest
	if len(payload) > 0 {
		if err := json.Unmarshal(payload, &req); err != nil {
			return s.writeErr(bw, fmt.Errorf("server: bad trace request: %w", err))
		}
	}
	if req.Trace != nil {
		s.traceOn.Store(*req.Trace)
	}
	if req.SlowThresholdNs != nil {
		ns := *req.SlowThresholdNs
		if ns < 0 {
			ns = -1
		}
		s.slowNs.Store(ns)
	}
	return s.reply(bw, wire.TraceReply{
		Trace:           s.traceOn.Load(),
		SlowThresholdNs: s.slowNs.Load(),
	})
}

// handleSlowlog dumps the slow-query ring, newest first.
func (s *Server) handleSlowlog(bw *bufio.Writer, payload []byte) error {
	var req wire.SlowlogRequest
	if len(payload) > 0 {
		if err := json.Unmarshal(payload, &req); err != nil {
			return s.writeErr(bw, fmt.Errorf("server: bad slowlog request: %w", err))
		}
	}
	return s.reply(bw, wire.SlowlogReply{
		ThresholdNs: s.slowNs.Load(),
		Queries:     s.slowlog.snapshot(req.Limit),
	})
}

// viewStatsReply flattens every view's core counters.
func (s *Server) viewStatsReply() []wire.ViewStatsEntry {
	views := s.db.Views()
	out := make([]wire.ViewStatsEntry, 0, len(views))
	for _, v := range views {
		st := v.Stats()
		entries := v.Len()
		maxE := v.Config().MaxEntries
		occ := 0.0
		if maxE > 0 {
			occ = float64(entries) / float64(maxE)
		}
		out = append(out, wire.ViewStatsEntry{
			Name:                 v.Name(),
			Queries:              st.Queries,
			QueryHits:            st.QueryHits,
			HitProb:              st.HitProbability(),
			PartsProbed:          st.PartsProbed,
			PartHits:             st.PartHits,
			PartialTuples:        st.PartialTuples,
			EntriesCreated:       st.EntriesCreated,
			EntriesEvicted:       st.EntriesEvicted,
			TuplesCached:         st.TuplesCached,
			TuplesEvicted:        st.TuplesEvicted,
			TuplesPurged:         st.TuplesPurged,
			InsertsSeen:          st.InsertsSeen,
			DeletesSeen:          st.DeletesSeen,
			UpdatesSeen:          st.UpdatesSeen,
			UpdatesSkipped:       st.UpdatesSkipped,
			EntriesInvalidated:   st.EntriesInvalidated,
			TuplesInvalidated:    st.TuplesInvalidated,
			KeyGenBumps:          st.KeyGenBumps,
			ViewGenBumps:         st.ViewGenBumps,
			MaintTimeNs:          int64(st.MaintTime),
			LockWaitTimeNs:       int64(st.LockWaitTime),
			O3TimeNs:             int64(st.O3Time),
			DegradedQueries:      st.DegradedQueries,
			DeadlineQueries:      st.DeadlineQueries,
			PartialOnlyQueries:   st.PartialOnlyQueries,
			ProbesSuppressed:     st.ProbesSuppressed,
			FilterPositives:      st.FilterPositives,
			FilterFalsePositives: st.FilterFalsePositives,
			AdmitGateRejects:     st.AdmitGateRejects,
			HotSetKeys:           st.HotSetKeys,
			HotSetTuples:         st.HotSetTuples,
			HotInvalKeys:         st.HotInvalKeys,
			Entries:              entries,
			MaxEntries:           maxE,
			Occupancy:            occ,
			Tuples:               v.TupleCount(),
			Bytes:                v.SizeBytes(),
		})
	}
	return out
}

func (s *Server) statsReply() wire.StatsReply {
	dbs := s.db.Stats()
	es := s.db.EngineStats()
	return wire.StatsReply{
		Server: s.metrics.Snapshot(),
		DB: wire.DBStatsReply{
			BufferHits:     dbs.BufferHits,
			BufferMisses:   dbs.BufferMisses,
			PhysicalReads:  dbs.PhysicalReads,
			PhysicalWrites: dbs.PhysicalWrites,
			ViewBytes:      dbs.ViewBytes,
		},
		Engine: wire.EngineStatsReply{
			LockRetries:     es.LockRetries,
			LockTimeouts:    es.LockTimeouts,
			DegradedQueries: es.DegradedQueries,
			TornPageRepairs: es.TornPageRepairs,
		},
		Snapshot: s.snapshotStats(),
		Maint:    s.maintStats(),
		Freq:     s.freqStats(),
	}
}

// snapshotStats renders the snapshot manager's health for the wire
// (nil when warm restarts are off).
func (s *Server) snapshotStats() *wire.SnapshotStats {
	if s.snap == nil {
		return nil
	}
	st := s.snap.Stats()
	return &wire.SnapshotStats{
		Epoch:          st.Epoch,
		AgeSeconds:     s.snap.AgeSeconds(),
		LastWriteBytes: st.LastWriteBytes,
		LastWriteNs:    st.LastWriteDurNs,
		Writes:         st.Writes,
		WriteErrors:    st.WriteErrors,
		WarmEntries:    st.WarmEntries,
		WarmTuples:     st.WarmTuples,
		StaleRejects:   st.StaleRejects,
		CorruptRejects: st.CorruptRejects,
		PendingSkips:   st.PendingSkips,
		LastBoot:       st.LastBoot,
	}
}

func (s *Server) viewsReply() []wire.ViewInfo {
	views := s.db.Views()
	out := make([]wire.ViewInfo, 0, len(views))
	for _, v := range views {
		cfg := v.Config()
		st := v.Stats()
		out = append(out, wire.ViewInfo{
			Name:              v.Name(),
			Template:          cfg.Template,
			MaxEntries:        cfg.MaxEntries,
			TuplesPerBCP:      cfg.TuplesPerBCP,
			Policy:            string(cfg.Policy),
			Entries:           v.Len(),
			Tuples:            v.TupleCount(),
			Bytes:             v.SizeBytes(),
			HitProb:           st.HitProbability(),
			MaxConditionParts: cfg.MaxConditionParts,
			Dividers:          cfg.Dividers,
		})
	}
	return out
}

func (s *Server) tablesReply() []wire.TableInfo {
	rels := s.db.Engine().Catalog().Relations()
	out := make([]wire.TableInfo, 0, len(rels))
	for _, r := range rels {
		out = append(out, wire.TableInfo{
			Name:    r.Name,
			Columns: r.Schema.Arity(),
			Indexes: len(r.Indexes),
			Tuples:  r.Heap.Count(),
		})
	}
	return out
}

func (s *Server) handleSchema(bw *bufio.Writer, rel string) error {
	r, err := s.db.Engine().Catalog().GetRelation(rel)
	if err != nil {
		return s.writeErr(bw, err)
	}
	var rep wire.SchemaReply
	for _, c := range r.Schema.Columns {
		rep.Columns = append(rep.Columns, wire.ColumnInfo{Name: c.Name, Type: c.Type})
	}
	for _, ix := range r.Indexes {
		names := make([]string, len(ix.Cols))
		for i, ci := range ix.Cols {
			names[i] = r.Schema.Columns[ci].Name
		}
		rep.Indexes = append(rep.Indexes, wire.IndexInfo{Name: ix.Name, Cols: names})
	}
	return s.reply(bw, rep)
}

func (s *Server) handlePeek(bw *bufio.Writer, payload []byte) error {
	rel, n, err := wire.DecodePeek(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	r, err := s.db.Engine().Catalog().GetRelation(rel)
	if err != nil {
		return s.writeErr(bw, err)
	}
	var rep wire.PeekReply
	err = r.Heap.Scan(func(_ storage.RID, t value.Tuple) error {
		rep.Rows = append(rep.Rows, t.Clone())
		if len(rep.Rows) >= n {
			return heap.ErrStopScan
		}
		return nil
	})
	if err != nil && !errors.Is(err, heap.ErrStopScan) {
		return s.writeErr(bw, err)
	}
	return s.reply(bw, rep)
}

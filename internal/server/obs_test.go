package server

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pmv/client"
	"pmv/internal/wire"
)

// TestTracedQueryReconcilesWithReport is the acceptance test for the
// trace span model: a traced query's spans must agree with the wire
// report the client received — O1's part count, per-part O2 probes
// whose served tuples sum to PartialTuples, and an O3 span accounting
// for every non-cached row.
func TestTracedQueryReconcilesWithReport(t *testing.T) {
	s, _, want := testServer(t, Config{PoolSize: 4, Trace: true, SlowThreshold: time.Nanosecond})
	addr := s.Addr().String()
	ctx := context.Background()

	c := client.New(addr)
	defer c.Close()
	// Warm, then query again so the traced run has O2 hits.
	if _, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(2, 3), nil); err != nil {
		t.Fatal(err)
	}
	rep, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(2, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Hit || rep.PartialTuples == 0 {
		t.Fatalf("warmed query should hit the view: %+v", rep)
	}
	if rep.TotalTuples != want[[2]int64{2, 3}] {
		t.Fatalf("query returned %d rows, ground truth %d", rep.TotalTuples, want[[2]int64{2, 3}])
	}

	// SlowThreshold of 1ns logs every query; the newest entry is ours.
	slog, err := c.Slowlog(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(slog.Queries) != 1 {
		t.Fatalf("slowlog returned %d queries, want 1", len(slog.Queries))
	}
	q := slog.Queries[0]
	if q.View != "pmv_on_sale" || q.ID == 0 || q.DurNs <= 0 {
		t.Fatalf("slowlog entry = %+v", q)
	}
	if q.Report.TotalTuples != rep.TotalTuples || q.Report.PartialTuples != rep.PartialTuples {
		t.Fatalf("slowlog report %+v disagrees with client report %+v", q.Report, rep)
	}

	spans := make(map[string][]wire.TraceSpan)
	for _, sp := range q.Spans {
		spans[sp.Kind] = append(spans[sp.Kind], sp)
	}
	lw := spans["lock_wait"]
	if len(lw) != 1 || lw[0].N1 != 1 {
		t.Fatalf("lock_wait spans = %+v, want one span with acquired=1", lw)
	}
	o1 := spans["o1"]
	if len(o1) != 1 || o1[0].N1 != int64(rep.ConditionParts) {
		t.Fatalf("o1 spans = %+v, report has %d condition parts", o1, rep.ConditionParts)
	}
	probes := spans["o2_probe"]
	if len(probes) != rep.ConditionParts {
		t.Fatalf("%d o2_probe spans for %d condition parts", len(probes), rep.ConditionParts)
	}
	var served int64
	for _, sp := range probes {
		served += sp.N2
	}
	if served != int64(rep.PartialTuples) {
		t.Fatalf("o2_probe spans served %d tuples, report says %d", served, rep.PartialTuples)
	}
	o3 := spans["o3"]
	if len(o3) != 1 {
		t.Fatalf("o3 spans = %+v, want exactly one", o3)
	}
	if got, want := o3[0].N2, int64(rep.TotalTuples-rep.PartialTuples); got != want {
		t.Fatalf("o3 span emitted %d rows, report implies %d", got, want)
	}
	if o3[0].N3 != int64(rep.PartialTuples) {
		t.Fatalf("o3 span suppressed %d duplicates, want %d", o3[0].N3, rep.PartialTuples)
	}
	if len(spans["plan"]) != 1 || len(spans["exec"]) != 1 {
		t.Fatalf("missing plan/exec spans: %v", q.Spans)
	}
}

// TestTraceAdminToggle flips tracing and the slow-query threshold over
// the wire and checks both take effect without a restart.
func TestTraceAdminToggle(t *testing.T) {
	s, _, _ := testServer(t, Config{PoolSize: 2})
	addr := s.Addr().String()
	ctx := context.Background()
	c := client.New(addr)
	defer c.Close()

	// Defaults: tracing off, slowlog disarmed.
	rep, err := c.Trace(ctx, wire.TraceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace || rep.SlowThresholdNs != -1 {
		t.Fatalf("default trace state = %+v", rep)
	}
	if _, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	slog, err := c.Slowlog(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if slog.ThresholdNs != -1 || len(slog.Queries) != 0 {
		t.Fatalf("disarmed slowlog recorded %d queries", len(slog.Queries))
	}

	// Arm both.
	on := true
	zero := int64(0)
	rep, err = c.Trace(ctx, wire.TraceRequest{Trace: &on, SlowThresholdNs: &zero})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Trace || rep.SlowThresholdNs != 0 {
		t.Fatalf("after arming: %+v", rep)
	}
	if _, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(1, 1), nil); err != nil {
		t.Fatal(err)
	}
	slog, err = c.Slowlog(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(slog.Queries) != 1 || len(slog.Queries[0].Spans) == 0 {
		t.Fatalf("armed slowlog = %+v", slog)
	}

	// Disarm the log but keep tracing: nothing new gets recorded.
	neg := int64(-5)
	rep, err = c.Trace(ctx, wire.TraceRequest{SlowThresholdNs: &neg})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Trace || rep.SlowThresholdNs != -1 {
		t.Fatalf("after disarming: %+v", rep)
	}
	if _, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(2, 2), nil); err != nil {
		t.Fatal(err)
	}
	slog, err = c.Slowlog(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(slog.Queries) != 1 {
		t.Fatalf("disarmed slowlog grew to %d entries", len(slog.Queries))
	}
}

// TestViewStatsCommand checks the viewstats admin reply against the
// view's known shape and activity.
func TestViewStatsCommand(t *testing.T) {
	s, _, _ := testServer(t, Config{PoolSize: 2})
	addr := s.Addr().String()
	ctx := context.Background()
	c := client.New(addr)
	defer c.Close()

	for i := int64(0); i < 3; i++ {
		if _, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(i, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := c.ViewStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("viewstats returned %d views, want 1", len(entries))
	}
	e := entries[0]
	if e.Name != "pmv_on_sale" {
		t.Fatalf("view name = %q", e.Name)
	}
	if e.Queries != 3 {
		t.Fatalf("Queries = %d, want 3", e.Queries)
	}
	if e.HitProb < 0 || e.HitProb > 1 {
		t.Fatalf("HitProb = %g out of range", e.HitProb)
	}
	if e.MaxEntries != 64 {
		t.Fatalf("MaxEntries = %d, want 64", e.MaxEntries)
	}
	if e.Entries == 0 || e.TuplesCached == 0 {
		t.Fatalf("no refill recorded: %+v", e)
	}
	if e.Occupancy <= 0 || e.Occupancy > 1 {
		t.Fatalf("Occupancy = %g out of range", e.Occupancy)
	}
	if e.O3TimeNs <= 0 {
		t.Fatalf("O3TimeNs = %d, want > 0", e.O3TimeNs)
	}
}

// TestConcurrentTracedSessions races 32 traced sessions through the
// loopback server while other goroutines read the slowlog and view
// stats — the per-query traces, slowlog ring buffer, and stats
// snapshots must all be data-race-free (run with -race).
func TestConcurrentTracedSessions(t *testing.T) {
	s, _, want := testServer(t, Config{PoolSize: 4, Trace: true, SlowThreshold: time.Nanosecond})
	addr := s.Addr().String()

	const sessions = 32
	const queriesPerSession = 4
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := client.New(addr)
			defer c.Close()
			ctx := context.Background()
			for i := int64(0); i < queriesPerSession; i++ {
				cat, st := (seed+i)%8, (seed*i)%5
				rows := 0
				rep, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(cat, st), func(client.Row) error {
					rows++
					return nil
				})
				if err != nil {
					errCh <- fmt.Errorf("session %d query %d: %w", seed, i, err)
					return
				}
				if !rep.Shed && !rep.Degraded && rows != want[[2]int64{cat, st}] {
					errCh <- fmt.Errorf("traced query (%d,%d): %d rows, want %d", cat, st, rows, want[[2]int64{cat, st}])
					return
				}
				// Race the observability readers against the writers.
				switch i % 3 {
				case 0:
					if _, err := c.Slowlog(ctx, 5); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, err := c.ViewStats(ctx); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	c := client.New(addr)
	defer c.Close()
	slog, err := c.Slowlog(context.Background(), slowLogCap)
	if err != nil {
		t.Fatal(err)
	}
	if len(slog.Queries) != slowLogCap {
		t.Fatalf("slowlog holds %d entries after %d logged queries, want the full ring of %d",
			len(slog.Queries), sessions*queriesPerSession, slowLogCap)
	}
	// The ring is ordered by completion, and trace IDs are assigned at
	// query start — with concurrent sessions those orders can differ,
	// so assert each logged query appears at most once rather than a
	// strict ID order (TestTracedQueryReconcilesWithReport covers
	// newest-first on the sequential path).
	seen := make(map[uint64]bool, len(slog.Queries))
	for _, q := range slog.Queries {
		if seen[q.ID] {
			t.Fatalf("slowlog holds query ID %d twice", q.ID)
		}
		seen[q.ID] = true
	}
}

// TestWritePrometheus runs traffic through the server and checks the
// /metrics payload: required families present, per-view labels intact,
// and every sample line syntactically a `name{labels} value` pair.
func TestWritePrometheus(t *testing.T) {
	s, _, _ := testServer(t, Config{PoolSize: 2})
	addr := s.Addr().String()
	ctx := context.Background()
	c := client.New(addr)
	defer c.Close()
	for i := int64(0); i < 4; i++ {
		if _, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(i%8, i%5), nil); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{
		"# TYPE pmvd_queries_total counter",
		"# TYPE pmvd_query_seconds histogram",
		`pmvd_query_seconds_bucket{phase="total",le="+Inf"}`,
		`pmvd_query_seconds_count{phase="total"}`,
		`pmvd_query_seconds_sum{phase="total"}`,
		`pmv_view_hit_probability{view="pmv_on_sale"}`,
		`pmv_view_occupancy{view="pmv_on_sale"}`,
		`pmv_view_queries_total{view="pmv_on_sale"} 4`,
		"pmvd_slowlog_threshold_seconds -1",
		"pmvd_trace_enabled 0",
		"# TYPE go_goroutines gauge",
		"go_gc_cycles_total",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("metrics output missing %q", needle)
		}
	}

	// Prometheus text format: every non-comment line is `series value`.
	families := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in metrics output")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if families[f[2]] {
				t.Fatalf("family %s declared twice", f[2])
			}
			families[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line %q is not `series value`", line)
		}
		if strings.Count(fields[0], "{") != strings.Count(fields[0], "}") {
			t.Fatalf("unbalanced labels in %q", line)
		}
	}
	if len(families) < 15 {
		t.Fatalf("only %d metric families exposed", len(families))
	}
}

package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"pmv"
	"pmv/client"
	"pmv/internal/wire"
)

// testServer builds a storefront database with one view, starts a
// loopback server over it, and returns the server plus the expected
// full result count for every (category, store) query pair.
func testServer(t testing.TB, cfg Config) (*Server, *pmv.DB, map[[2]int64]int) {
	t.Helper()
	db, err := pmv.Open(t.TempDir(), pmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(db.CreateRelation("product",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("category", pmv.TypeInt),
		pmv.Col("name", pmv.TypeString)))
	check(db.CreateRelation("sale",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("store", pmv.TypeInt),
		pmv.Col("discount", pmv.TypeInt)))
	check(db.CreateIndex("product", "pid"))
	check(db.CreateIndex("product", "category"))
	check(db.CreateIndex("sale", "pid"))
	check(db.CreateIndex("sale", "store"))
	for pid := int64(0); pid < 400; pid++ {
		check(db.Insert("product", pmv.Int(pid), pmv.Int(pid%8), pmv.Str("p")))
		check(db.Insert("sale", pmv.Int(pid), pmv.Int((pid/8)%5), pmv.Int(pid%50)))
	}
	tpl := pmv.NewTemplate("on_sale").
		From("product", "sale").
		Select("product.pid", "sale.discount").
		Join("product.pid", "sale.pid").
		WhereEq("product.category").
		WhereEq("sale.store").
		MustBuild()
	if _, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 64, TuplesPerBCP: 4}); err != nil {
		t.Fatal(err)
	}

	// Ground truth per query pair, computed through plain execution.
	want := make(map[[2]int64]int)
	for c := int64(0); c < 8; c++ {
		for st := int64(0); st < 5; st++ {
			q := pmv.NewQuery(tpl).In(0, pmv.Int(c)).In(1, pmv.Int(st)).Query()
			n := 0
			check(db.Execute(q, func(pmv.Tuple) error { n++; return nil }))
			want[[2]int64{c, st}] = n
		}
	}

	s := New(db, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown() })
	return s, db, want
}

func conds(c, st int64) []client.Cond {
	return []client.Cond{client.Eq(client.Int(c)), client.Eq(client.Int(st))}
}

// TestLoopbackConcurrentSessions drives 64 concurrent client sessions
// through the full protocol — queries interleaved with admin commands —
// and checks every non-shed answer against ground truth. Run with
// -race; the session goroutines, admission semaphore, and metrics all
// get exercised at once.
func TestLoopbackConcurrentSessions(t *testing.T) {
	s, _, want := testServer(t, Config{PoolSize: 4})
	addr := s.Addr().String()

	const sessions = 64
	const queriesPerSession = 6
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := client.New(addr)
			defer c.Close()
			ctx := context.Background()
			for i := int64(0); i < queriesPerSession; i++ {
				cat, st := (seed+i)%8, (seed*i)%5
				rows, partials := 0, 0
				sawFull := false
				rep, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(cat, st), func(r client.Row) error {
					rows++
					if r.Partial {
						if sawFull {
							return fmt.Errorf("partial row after a full row: ordering broken")
						}
						partials++
					} else {
						sawFull = true
					}
					return nil
				})
				if err != nil {
					errCh <- fmt.Errorf("session %d query %d: %w", seed, i, err)
					return
				}
				if rep.TotalTuples != rows {
					errCh <- fmt.Errorf("report says %d tuples, stream had %d", rep.TotalTuples, rows)
					return
				}
				if rep.PartialTuples != partials {
					errCh <- fmt.Errorf("report says %d partials, stream had %d", rep.PartialTuples, partials)
					return
				}
				if rep.Shed {
					if !rep.PartialOnly {
						errCh <- fmt.Errorf("shed query not flagged PartialOnly")
						return
					}
				} else if !rep.Degraded && rows != want[[2]int64{cat, st}] {
					errCh <- fmt.Errorf("query (%d,%d): %d rows, want %d", cat, st, rows, want[[2]int64{cat, st}])
					return
				}
				// Interleave an admin request on the same session.
				if i%3 == 2 {
					if _, err := c.Count(ctx, "product"); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	m := s.Metrics()
	if got := m.SessionsTotal.Load(); got < sessions {
		t.Errorf("SessionsTotal = %d, want >= %d", got, sessions)
	}
	if got := m.Queries.Load(); got != sessions*queriesPerSession {
		t.Errorf("Queries = %d, want %d", got, sessions*queriesPerSession)
	}
	if m.Total.Snapshot().Count != sessions*queriesPerSession {
		t.Error("total latency histogram missed queries")
	}

	// Graceful shutdown: all sessions are idle, so this must return
	// well within the drain timeout and leave no goroutines behind.
	start := time.Now()
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("shutdown took %v with idle sessions", d)
	}
	if got := m.SessionsActive.Load(); got != 0 {
		t.Errorf("SessionsActive = %d after shutdown", got)
	}
}

// TestAdmissionControlSheds saturates every worker slot, then proves
// an arriving query is answered immediately from the view (flagged
// Shed+PartialOnly, every row Partial) instead of queueing behind the
// pool.
func TestAdmissionControlSheds(t *testing.T) {
	s, _, _ := testServer(t, Config{PoolSize: 2})
	addr := s.Addr().String()
	ctx := context.Background()

	c := client.New(addr)
	defer c.Close()
	// Warm the view so the shed answer has cached rows to return.
	if _, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(1, 2), nil); err != nil {
		t.Fatal(err)
	}

	// Occupy every admission slot, as long-running O3s would.
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	drained := false
	drain := func() {
		if drained {
			return
		}
		drained = true
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
	}
	defer drain()

	rows, nonPartial := 0, 0
	start := time.Now()
	rep, err := c.ExecutePartial(ctx, "pmv_on_sale", conds(1, 2), func(r client.Row) error {
		rows++
		if !r.Partial {
			nonPartial++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Shed || !rep.PartialOnly {
		t.Fatalf("saturated query not shed: %+v", rep)
	}
	if rows == 0 {
		t.Fatal("shed answer returned no cached rows from a warm view")
	}
	if nonPartial != 0 {
		t.Fatalf("shed answer contained %d O3 rows", nonPartial)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed answer took %v; shedding must not queue", d)
	}
	if s.Metrics().Shed.Load() == 0 {
		t.Error("Shed counter not incremented")
	}

	// With slots free again the same query runs the full protocol.
	drain()
	rep, err = c.ExecutePartial(ctx, "pmv_on_sale", conds(1, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed {
		t.Fatal("query shed with every slot free")
	}
}

// TestDeadlineExpiredOverWire sends a query whose deadline is already
// unmeetable and checks the wire-level contract: the O2 partials
// arrive flagged Partial, O3 never contributes, and the MsgDone report
// carries DeadlineExpired with no error frame.
func TestDeadlineExpiredOverWire(t *testing.T) {
	s, _, _ := testServer(t, Config{PoolSize: 2})
	addr := s.Addr().String()
	ctx := context.Background()

	warm := client.New(addr)
	defer warm.Close()
	if _, err := warm.ExecutePartial(ctx, "pmv_on_sale", conds(3, 1), nil); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload, err := wire.EncodeQuery(wire.QueryRequest{
		View:     "pmv_on_sale",
		Deadline: time.Nanosecond,
		Conds:    conds(3, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgQuery, payload); err != nil {
		t.Fatal(err)
	}

	partials := 0
	for {
		typ, body, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		switch typ {
		case wire.MsgRow:
			_, partial, err := wire.DecodeRow(body)
			if err != nil {
				t.Fatal(err)
			}
			if !partial {
				t.Fatal("O3 row delivered past an expired deadline")
			}
			partials++
		case wire.MsgDone:
			rep, err := wire.DecodeReport(body)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.DeadlineExpired {
				t.Fatalf("report not flagged DeadlineExpired: %+v", rep)
			}
			if partials == 0 {
				t.Fatal("expired deadline suppressed the O2 partials")
			}
			if rep.PartialTuples != partials || rep.TotalTuples != partials {
				t.Fatalf("report counts %d/%d, stream had %d partials",
					rep.PartialTuples, rep.TotalTuples, partials)
			}
			if s.Metrics().DeadlineExpired.Load() == 0 {
				t.Error("DeadlineExpired counter not incremented")
			}
			return
		case wire.MsgError:
			t.Fatalf("deadline expiry surfaced as an error: %s", body)
		default:
			t.Fatalf("unexpected frame 0x%02x", typ)
		}
	}
}

// TestAdminCommands exercises every admin request over one session.
func TestAdminCommands(t *testing.T) {
	s, _, _ := testServer(t, Config{})
	ctx := context.Background()
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	views, err := c.Views(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].Name != "pmv_on_sale" || views[0].Template == nil {
		t.Fatalf("views = %+v", views)
	}
	tables, err := c.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %+v", tables)
	}
	n, err := c.Count(ctx, "product")
	if err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Fatalf("count(product) = %d", n)
	}
	schema, err := c.Schema(ctx, "sale")
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.Columns) != 3 || len(schema.Indexes) != 2 {
		t.Fatalf("schema = %+v", schema)
	}
	rows, err := c.Peek(ctx, "product", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("peek returned %d rows", len(rows))
	}
	if err := c.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// A bad request gets an error frame but keeps the session usable.
	if _, err := c.Count(ctx, "nosuch"); err == nil {
		t.Fatal("count of missing relation succeeded")
	}
	if _, err := c.Count(ctx, "sale"); err != nil {
		t.Fatalf("session dead after per-request error: %v", err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server.SessionsTotal == 0 || stats.Server.Errors == 0 {
		t.Fatalf("stats = %+v", stats.Server)
	}
}

// BenchmarkServe measures loopback query throughput with a warm view
// and reports the two phases of the PMV latency split as seen by the
// server: time to the last O2 partial row vs O3 execution.
func BenchmarkServe(b *testing.B) {
	s, _, _ := testServer(b, Config{})
	addr := s.Addr().String()
	ctx := context.Background()

	warm := client.New(addr)
	for c := int64(0); c < 8; c++ {
		for st := int64(0); st < 5; st++ {
			if _, err := warm.ExecutePartial(ctx, "pmv_on_sale", conds(c, st), nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	warm.Close()

	var seq int64
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := client.New(addr)
		defer c.Close()
		mu.Lock()
		seq++
		seed := seq
		mu.Unlock()
		i := int64(0)
		for pb.Next() {
			i++
			if _, err := c.ExecutePartial(ctx, "pmv_on_sale", conds((seed+i)%8, (seed*i)%5), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()

	m := s.Metrics()
	if n := m.Queries.Load(); n > 0 {
		b.ReportMetric(float64(m.PartialPhase.Snapshot().P50Ns), "p50-partial-ns")
		b.ReportMetric(float64(m.ExecPhase.Snapshot().P50Ns), "p50-exec-ns")
		b.ReportMetric(float64(m.Total.Snapshot().P99Ns), "p99-total-ns")
	}
}

package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pmv/client"
	"pmv/internal/maint"
	"pmv/internal/wire"
)

// queryPids runs one (category, store) query over the wire and returns
// the delivered pid set.
func queryPids(t *testing.T, c *client.Client, cat, store int64) map[int64]bool {
	t.Helper()
	pids := make(map[int64]bool)
	_, err := c.ExecutePartial(context.Background(), "pmv_on_sale", conds(cat, store), func(r client.Row) error {
		pids[r.Tuple[0].Int64()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pids
}

// TestUpdateOverWire pins the batched write path end to end over a
// loopback connection: apply, maintenance, affected-key reporting, and
// post-update query correctness.
func TestUpdateOverWire(t *testing.T) {
	s, db, _ := testServer(t, Config{})
	p, err := maint.New(maint.Config{Source: db, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	s.SetMaint(p)

	c := client.New(s.Addr().String())
	defer c.Close()

	before := queryPids(t, c, 3, 3) // warm the cache
	if !before[27] {
		t.Fatal("fixture broken: pid 27 not in (3,3) result")
	}
	rep, err := c.Update(context.Background(), true,
		client.Delete("sale", "pid", client.Int(27)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 1 || rep.Rows != 1 {
		t.Fatalf("applied=%d rows=%d, want 1/1", rep.Applied, rep.Rows)
	}
	if len(rep.Keys["pmv_on_sale"]) == 0 {
		t.Fatalf("no affected keys in reply: %+v", rep)
	}
	if rep.Wide["pmv_on_sale"] {
		t.Fatal("single delete reported wide damage")
	}
	after := queryPids(t, c, 3, 3)
	if after[27] {
		t.Fatal("deleted pid 27 still served over the wire")
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Updates != 1 || st.Server.UpdateRows != 1 {
		t.Fatalf("server write counters: %+v", st.Server)
	}
	if st.Maint == nil || st.Maint.OpsApplied != 1 {
		t.Fatalf("maint stats missing or wrong: %+v", st.Maint)
	}
}

// TestUpdatePerStatementFallback pins the no-plane path: ops apply
// directly with synchronous per-statement maintenance, and the stats
// reply carries no maint block.
func TestUpdatePerStatementFallback(t *testing.T) {
	s, _, _ := testServer(t, Config{})
	c := client.New(s.Addr().String())
	defer c.Close()

	before := queryPids(t, c, 3, 3)
	if !before[27] {
		t.Fatal("fixture broken: pid 27 not in (3,3) result")
	}
	rep, err := c.Update(context.Background(), false,
		client.Delete("sale", "pid", client.Int(27)),
		client.Set("sale", "pid", client.Int(91), "discount", client.Int(7)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 2 {
		t.Fatalf("applied=%d, want 2", rep.Applied)
	}
	if after := queryPids(t, c, 3, 3); after[27] {
		t.Fatal("deleted pid 27 still served")
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Maint != nil {
		t.Fatal("per-statement server reported maint stats")
	}
	if st.Server.Updates != 1 || st.Server.UpdateOps != 2 {
		t.Fatalf("server write counters: %+v", st.Server)
	}
}

// TestInvalidateOverWire pins the fan-in handler: per-key bumps for a
// warmed view, wide bumps with All, and the epoch guard.
func TestInvalidateOverWire(t *testing.T) {
	s, db, _ := testServer(t, Config{})
	c := client.New(s.Addr().String())
	defer c.Close()

	queryPids(t, c, 3, 3) // warm some entries
	v := db.Views()[0]
	if v.Len() == 0 {
		t.Fatal("no entries cached after warming query")
	}

	// Collect a live key through the snapshot iterator.
	var key string
	if err := v.SnapshotEntries(func(k string, _ int64, _ []client.Tuple) error {
		key = k
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Invalidate(context.Background(), wire.InvalidateRequest{
		View: "pmv_on_sale", Keys: []string{key},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Keys != 1 {
		t.Fatalf("bumped %d keys, want 1", rep.Keys)
	}
	if rep2, err := c.Invalidate(context.Background(), wire.InvalidateRequest{
		View: "pmv_on_sale", All: true,
	}); err != nil || !rep2.Wide {
		t.Fatalf("wide invalidate: rep=%+v err=%v", rep2, err)
	}
	if vs := v.Stats(); vs.KeyGenBumps == 0 || vs.ViewGenBumps == 0 {
		t.Fatalf("generation counters: %+v", vs)
	}
	// Queries still answer correctly after losing the whole cache.
	queryPids(t, c, 3, 3)

	// A nonzero epoch against a shard with no installed map is refused
	// with the typed epoch error.
	_, err = c.Invalidate(context.Background(), wire.InvalidateRequest{
		View: "pmv_on_sale", All: true, Epoch: 99,
	})
	if !errors.Is(err, wire.ErrEpoch) {
		t.Fatalf("stale epoch: got %v, want ErrEpoch", err)
	}

	if _, err := c.Invalidate(context.Background(), wire.InvalidateRequest{View: "nope", All: true}); err == nil ||
		!strings.Contains(err.Error(), "no view") {
		t.Fatalf("unknown view: got %v", err)
	}
}

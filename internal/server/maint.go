// maint.go implements the write half of the service: ΔR batches
// (MsgUpdate) and invalidation fan-ins (MsgInvalidate). With a write
// plane attached updates go through its ingest queue — group-commit
// batching, one view X-lock grab per batch, heavy/light-classified
// maintenance — and the reply carries the affected bcp keys so a
// router can fan the damage to sibling shards. Without a plane the
// server falls back to per-statement application: every op runs
// directly against the engine with the views attached as observers,
// paying one maintenance pass per statement (the baseline the write
// benchmark measures the plane against).
package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pmv/internal/maint"
	"pmv/internal/obs"
	"pmv/internal/value"
	"pmv/internal/wire"
)

// SetMaint attaches the write plane (call before Start). Nil leaves
// the server on the per-statement path.
func (s *Server) SetMaint(p *maint.Plane) { s.maint = p }

// Maint returns the attached write plane (nil = per-statement mode).
func (s *Server) Maint() *maint.Plane { return s.maint }

// handleUpdate applies one ΔR batch. Partial failures follow the
// plane's contract: remaining ops still apply (the conduit is not
// transactional), and the first failure is reported as the request's
// error.
func (s *Server) handleUpdate(sess *session, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeUpdate(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	if len(req.Ops) == 0 {
		return s.writeErr(bw, errors.New("server: empty update batch"))
	}
	tr, external := s.sessionTrace(sess, "update", -1)
	allocMark := tr.AllocMark()
	start := time.Now()
	var rep wire.UpdateReply
	if s.maint != nil {
		res, aerr := s.maint.Apply(obs.WithTrace(context.Background(), tr), req.Ops, req.Maint)
		if aerr != nil {
			return s.writeErr(bw, aerr)
		}
		rep.Applied, rep.Rows = res.Applied, res.Rows
		if req.Maint {
			rep.Keys = make(map[string][][]byte, len(res.Keys))
			for vname, keys := range res.Keys {
				bs := make([][]byte, len(keys))
				for i, k := range keys {
					bs[i] = []byte(k)
				}
				rep.Keys[vname] = bs
			}
			rep.Wide = res.Wide
		}
	} else {
		var firstErr error
		for i := range req.Ops {
			n, oerr := s.applyDirect(&req.Ops[i])
			if oerr != nil {
				if firstErr == nil {
					firstErr = oerr
				}
				continue
			}
			rep.Applied++
			rep.Rows += n
		}
		if firstErr != nil {
			return s.writeErr(bw, firstErr)
		}
	}
	s.metrics.Updates.Add(1)
	s.metrics.UpdateOps.Add(int64(rep.Applied))
	s.metrics.UpdateRows.Add(int64(rep.Rows))
	if tr != nil {
		allocd := tr.AllocMark() - allocMark
		tr.SpanCost(obs.KindServe, start, int64(rep.Rows), 0, 0,
			obs.Cost{Rows: int64(rep.Rows), Bytes: int64(len(payload)) + frameOverhead, Allocs: allocd})
		s.metrics.TracesSampled.Add(1)
		s.metrics.CostAllocs.Add(allocd)
		s.metrics.CostFsyncs.Add(tr.Cost().Fsyncs)
	}
	s.emitSpans(sess, tr, external)
	return s.reply(bw, rep)
}

// applyDirect runs one op straight against the engine — the
// per-statement baseline. The views are registered observers, so each
// statement triggers its own synchronous maintenance pass.
func (s *Server) applyDirect(op *wire.UpdateOp) (int, error) {
	eng := s.db.Engine()
	switch op.Kind {
	case wire.OpInsert:
		return 1, eng.Insert(op.Rel, op.Tuple)
	case wire.OpDelete:
		pred, err := s.eqPred(op.Rel, op.Col, op.Val)
		if err != nil {
			return 0, err
		}
		victims, err := eng.DeleteWhere(op.Rel, pred)
		return len(victims), err
	case wire.OpUpdate:
		pred, err := s.eqPred(op.Rel, op.Col, op.Val)
		if err != nil {
			return 0, err
		}
		r, err := eng.Catalog().GetRelation(op.Rel)
		if err != nil {
			return 0, err
		}
		si := r.Schema.ColIndex(op.SetCol)
		if si < 0 {
			return 0, fmt.Errorf("server: relation %q has no column %q", op.Rel, op.SetCol)
		}
		set := op.SetVal
		return eng.UpdateWhere(op.Rel, pred, func(t value.Tuple) value.Tuple {
			t[si] = set
			return t
		})
	default:
		return 0, fmt.Errorf("server: unknown update op kind %d", op.Kind)
	}
}

// eqPred builds the op's equality predicate over the relation's
// stored tuples.
func (s *Server) eqPred(rel, col string, val value.Value) (func(value.Tuple) bool, error) {
	r, err := s.db.Engine().Catalog().GetRelation(rel)
	if err != nil {
		return nil, err
	}
	ci := r.Schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("server: relation %q has no column %q", rel, col)
	}
	return func(t value.Tuple) bool {
		return ci < len(t) && value.Compare(t[ci], val) == 0
	}, nil
}

// handleInvalidate bumps invalidation generations for a view. A
// nonzero epoch is validated against the installed shard map (the
// router's fan-out path); epoch 0 skips the check so a local operator
// can invalidate a standalone shard.
func (s *Server) handleInvalidate(sess *session, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeInvalidate(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	if req.Epoch != 0 {
		ok, err := s.checkEpoch(bw, req.Epoch)
		if err != nil || !ok {
			return err
		}
	}
	v, found := s.db.ViewByName(req.View)
	if !found {
		return s.writeErr(bw, fmt.Errorf("server: no view %q", req.View))
	}
	s.metrics.Invalidations.Add(1)
	if req.All {
		v.BumpAllGen()
		return s.reply(bw, wire.InvalidateReply{Wide: true})
	}
	n := v.BumpKeyGens(req.Keys)
	return s.reply(bw, wire.InvalidateReply{Keys: n})
}

// maintStats renders the write plane's counters for the stats reply
// (nil when the plane is off).
func (s *Server) maintStats() *wire.MaintStats {
	if s.maint == nil {
		return nil
	}
	st := s.maint.Stats()
	return &st
}

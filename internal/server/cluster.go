// cluster.go implements the shard half of the cluster plane: the
// hello/version handshake, remote O2 probes and plain O3 execution
// over Ls′, refill ingestion, and shard-map storage with epoch
// validation. Every handler keeps the session's framing discipline —
// per-request failures answer MsgError (or the typed MsgErrEpoch) and
// leave the stream in sync; only a version mismatch terminates the
// session, and it does so after a typed frame, never a mid-stream
// decode failure.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"pmv/internal/core"
	"pmv/internal/expr"
	"pmv/internal/obs"
	"pmv/internal/value"
	"pmv/internal/wire"
)

// errVersionMismatch terminates a session whose hello announced a
// protocol version this build does not speak. The peer has already
// received a MsgErrVersion frame by the time it is returned.
var errVersionMismatch = errors.New("server: protocol version mismatch")

// handleHello answers the session-opening version handshake. Matching
// versions get a HelloReply; anything else gets the typed
// MsgErrVersion frame and loses the session — by contract, before any
// other traffic could desync the stream.
func (s *Server) handleHello(sess *session, payload []byte) error {
	v, err := wire.DecodeHello(payload)
	if err != nil {
		return s.writeErr(sess.bw, err)
	}
	if v != wire.ProtocolVersion {
		if werr := wire.WriteFrame(sess.bw, wire.MsgErrVersion, wire.EncodeVersionErr(wire.ProtocolVersion)); werr != nil {
			return werr
		}
		if werr := sess.bw.Flush(); werr != nil {
			return werr
		}
		return fmt.Errorf("%w: peer speaks %d, server speaks %d", errVersionMismatch, v, wire.ProtocolVersion)
	}
	return s.reply(sess.bw, wire.HelloReply{Version: int(wire.ProtocolVersion)})
}

// clusterEpoch returns the installed shard map's epoch (0 = none).
func (s *Server) clusterEpoch() uint64 {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	return s.shardMap.Epoch
}

// checkEpoch validates a request's shard-map epoch, answering the
// typed MsgErrEpoch frame on mismatch. Returns true when the request
// may proceed.
func (s *Server) checkEpoch(bw *bufio.Writer, epoch uint64) (bool, error) {
	cur := s.clusterEpoch()
	if epoch == cur && cur != 0 {
		return true, nil
	}
	return false, wire.WriteFrame(bw, wire.MsgErrEpoch, wire.EncodeEpochErr(cur))
}

// handleProbeParts runs Operation O2 for a router-computed batch of
// condition parts, streaming each cached Ls′ tuple as a MsgRow with
// RowPartial set (flushed per row — the partial-first contract is the
// whole point of probing before O3).
func (s *Server) handleProbeParts(sess *session, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeProbe(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	ok, err := s.checkEpoch(bw, req.Epoch)
	if err != nil || !ok {
		return err
	}
	v, found := s.db.ViewByName(req.View)
	if !found {
		return s.writeErr(bw, fmt.Errorf("server: no view %q", req.View))
	}
	parts := make([]core.RemotePart, len(req.Parts))
	for i, p := range req.Parts {
		parts[i] = core.RemotePart{Key: p.Key, Exact: p.Exact, Conds: p.Conds}
	}

	tr, external := s.sessionTrace(sess, req.View, -1)
	allocMark := tr.AllocMark()
	var (
		rowBuf    []byte
		emitFail  error
		wireBytes int64
	)
	ctx := obs.WithTrace(context.Background(), tr)
	if req.BudgetNs > 0 {
		// The router rode its remaining deadline budget on the request:
		// past it the router has already given up on this probe, so any
		// further work here is wasted. ProbeBCPs checks the context
		// between parts and aborts typed.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.BudgetNs))
		defer cancel()
	}
	start := time.Now()
	rep, perr := v.ProbeBCPs(ctx, parts, func(t value.Tuple) error {
		sess.armWrite()
		rowBuf = wire.EncodeRow(rowBuf[:0], t, true)
		if err := wire.WriteFrame(bw, wire.MsgRow, rowBuf); err != nil {
			emitFail = err
			return err
		}
		if err := bw.Flush(); err != nil {
			emitFail = err
			return err
		}
		wireBytes += int64(len(rowBuf)) + frameOverhead
		return nil
	})
	if emitFail != nil {
		return emitFail
	}
	if perr != nil {
		return s.writeErr(bw, perr)
	}
	s.metrics.PartialRows.Add(int64(rep.PartialTuples))
	s.metrics.PartialPhase.Observe(time.Since(start))
	s.metrics.CostRows.Add(int64(rep.PartialTuples))
	s.metrics.CostBytes.Add(wireBytes)
	if tr != nil {
		allocd := tr.AllocMark() - allocMark
		tr.SpanCost(obs.KindServe, start, int64(rep.PartialTuples), 0, 0,
			obs.Cost{Rows: int64(rep.PartialTuples), Bytes: wireBytes, Allocs: allocd})
		s.metrics.TracesSampled.Add(1)
		s.metrics.CostAllocs.Add(allocd)
	}
	s.emitSpans(sess, tr, external)
	sess.armWrite()
	return wire.WriteFrame(bw, wire.MsgDone, wire.EncodeReport(nil, wire.Report{
		Hit:            rep.Hit,
		ConditionParts: len(parts),
		PartialTuples:  rep.PartialTuples,
		TotalTuples:    rep.PartialTuples,
		PartialLatency: time.Since(start),
	}))
}

// handleExec executes a query plainly over Ls′ — the shard half of a
// routed Operation O3. Unlike MsgQuery it blocks for an admission slot
// instead of shedding: the router already holds the query's partials
// and is counting on a complete remainder, so a bounded wait beats a
// useless empty answer. The request deadline (or the server default)
// bounds both the wait and the execution.
func (s *Server) handleExec(sess *session, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeExec(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	v, found := s.db.ViewByName(req.View)
	if !found {
		return s.writeErr(bw, fmt.Errorf("server: no view %q", req.View))
	}
	q := &expr.Query{Template: v.Config().Template, Conds: req.Conds}

	tr, external := s.sessionTrace(sess, req.View, -1)
	allocMark := tr.AllocMark()
	ctx := obs.WithTrace(context.Background(), tr)
	deadline := req.Deadline
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	admitStart := time.Now()
	select {
	case s.sem <- struct{}{}:
		tr.Span(obs.KindQueue, admitStart, 1, 0, 0)
	case <-ctx.Done():
		return s.writeErr(bw, fmt.Errorf("server: no admission slot within deadline: %w", ctx.Err()))
	case <-s.closing:
		return s.writeErr(bw, errors.New("server: shutting down"))
	}

	var (
		rowBuf    []byte
		emitFail  error
		rows      int
		wireBytes int64
	)
	start := time.Now()
	execDur, qerr := v.ExecutePlainCtx(ctx, q, func(t value.Tuple) error {
		sess.armWrite()
		rowBuf = wire.EncodeRow(rowBuf[:0], t, false)
		if err := wire.WriteFrame(bw, wire.MsgRow, rowBuf); err != nil {
			emitFail = err
			return err
		}
		rows++
		wireBytes += int64(len(rowBuf)) + frameOverhead
		return nil
	})
	<-s.sem
	if emitFail != nil {
		return emitFail
	}
	rep := wire.Report{TotalTuples: rows, ExecLatency: execDur}
	if qerr != nil {
		if ctxErr := ctx.Err(); errors.Is(ctxErr, context.DeadlineExceeded) && errors.Is(qerr, ctxErr) {
			// Deadline truncation is the service contract, not a failure:
			// the rows delivered stand, flagged.
			rep.DeadlineExpired = true
		} else {
			return s.writeErr(bw, qerr)
		}
	}
	s.metrics.Queries.Add(1)
	s.metrics.Rows.Add(int64(rows))
	if rep.DeadlineExpired {
		s.metrics.DeadlineExpired.Add(1)
	}
	s.metrics.ExecPhase.Observe(execDur)
	s.metrics.Total.Observe(time.Since(start))
	s.metrics.CostRows.Add(int64(rows))
	s.metrics.CostBytes.Add(wireBytes)
	if tr != nil {
		allocd := tr.AllocMark() - allocMark
		tr.SpanCost(obs.KindServe, start, int64(rows), 0, 0,
			obs.Cost{Rows: int64(rows), Bytes: wireBytes, Allocs: allocd})
		s.metrics.TracesSampled.Add(1)
		s.metrics.CostAllocs.Add(allocd)
	}
	s.emitSpans(sess, tr, external)
	sess.armWrite()
	return wire.WriteFrame(bw, wire.MsgDone, wire.EncodeReport(nil, rep))
}

// handleRefill caches router-observed O3 result tuples under their
// bcps, with the same epoch discipline as probes (a refill routed by a
// stale map could cache tuples on a shard that no longer owns them).
func (s *Server) handleRefill(sess *session, payload []byte) error {
	bw := sess.bw
	req, err := wire.DecodeRefill(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	ok, err := s.checkEpoch(bw, req.Epoch)
	if err != nil || !ok {
		return err
	}
	v, found := s.db.ViewByName(req.View)
	if !found {
		return s.writeErr(bw, fmt.Errorf("server: no view %q", req.View))
	}
	if req.BudgetNs > 0 && time.Duration(req.BudgetNs) <= time.Millisecond {
		// The router's deadline budget is effectively spent (it sends a
		// 1ns sentinel for an already-expired context): refill is free
		// best-effort work, so drop it rather than hold the session.
		return s.writeErr(bw, errors.New("server: refill budget exhausted"))
	}
	tr, external := s.sessionTrace(sess, req.View, -1)
	start := time.Now()
	cached, ferr := v.FillTuples(req.Tuples)
	if ferr != nil {
		return s.writeErr(bw, ferr)
	}
	if tr != nil {
		tr.SpanCost(obs.KindRefill, start, int64(cached), 0, 0,
			obs.Cost{Rows: int64(len(req.Tuples)), Bytes: int64(len(payload)) + frameOverhead})
		s.metrics.TracesSampled.Add(1)
	}
	s.emitSpans(sess, tr, external)
	return s.reply(bw, wire.RefillReply{Cached: cached})
}

// handlePing answers a router heartbeat with the echoed nonce and the
// installed shard-map epoch. Deliberately touches no locks beyond the
// epoch read and no engine state: the round trip must measure the
// shard's responsiveness, and a zero/stale epoch in the pong is how a
// rebooted shard asks to be re-taught without failing a live probe.
func (s *Server) handlePing(bw *bufio.Writer, payload []byte) error {
	nonce, err := wire.DecodePing(payload)
	if err != nil {
		return s.writeErr(bw, err)
	}
	var buf [16]byte
	return wire.WriteFrame(bw, wire.MsgPong, wire.EncodePong(buf[:0], nonce, s.clusterEpoch()))
}

// handleShardMap reads (empty payload) or installs the shard map. An
// install with an epoch below the current one is refused by answering
// with the newer installed map — the stale router sees the epoch in
// the reply and refreshes; regressing the epoch would reopen the very
// misrouting window epochs exist to close.
func (s *Server) handleShardMap(bw *bufio.Writer, payload []byte) error {
	if len(payload) > 0 {
		var m wire.ShardMapReply
		if err := json.Unmarshal(payload, &m); err != nil {
			return s.writeErr(bw, fmt.Errorf("server: bad shard map: %w", err))
		}
		if m.Epoch == 0 || len(m.Shards) == 0 || m.VNodes <= 0 {
			return s.writeErr(bw, errors.New("server: shard map needs epoch, shards, and vnodes"))
		}
		s.shardMu.Lock()
		installed := false
		if m.Epoch >= s.shardMap.Epoch {
			s.shardMap = m
			installed = true
		}
		s.shardMu.Unlock()
		if installed && s.snap != nil {
			// Stamp future snapshots with the epoch the cluster just
			// taught us, so a reboot can tell fresh from stale.
			s.snap.SetEpoch(m.Epoch)
		}
	}
	s.shardMu.Lock()
	cur := s.shardMap
	s.shardMu.Unlock()
	return s.reply(bw, cur)
}

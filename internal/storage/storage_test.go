package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var osWriteFile = os.WriteFile

func newPage() *SlottedPage {
	p := NewSlottedPage(make([]byte, PageSize))
	p.Init()
	return p
}

func TestSlottedPageInsertRead(t *testing.T) {
	p := newPage()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte(""), bytes.Repeat([]byte{7}, 100)}
	var slots []uint16
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		if got := p.Read(s); !bytes.Equal(got, recs[i]) {
			t.Errorf("slot %d: got %v want %v", s, got, recs[i])
		}
	}
	if p.NumSlots() != uint16(len(recs)) {
		t.Errorf("NumSlots = %d, want %d", p.NumSlots(), len(recs))
	}
}

func TestSlottedPageDelete(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("doomed"))
	if err := p.Delete(s); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if p.Read(s) != nil {
		t.Error("dead slot still readable")
	}
	if err := p.Delete(s); !errors.Is(err, ErrBadSlot) {
		t.Errorf("double delete: %v", err)
	}
	if err := p.Delete(99); !errors.Is(err, ErrBadSlot) {
		t.Errorf("out-of-range delete: %v", err)
	}
}

func TestSlottedPageUpdateInPlace(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("longest-record"))
	if err := p.Update(s, []byte("short")); err != nil {
		t.Fatalf("shrinking update: %v", err)
	}
	if got := p.Read(s); string(got) != "short" {
		t.Errorf("after update: %q", got)
	}
	if err := p.Update(s, bytes.Repeat([]byte{1}, 200)); !errors.Is(err, ErrPageFull) {
		t.Errorf("growing update: %v", err)
	}
}

func TestSlottedPageFull(t *testing.T) {
	p := newPage()
	rec := bytes.Repeat([]byte{9}, 100)
	inserted := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		inserted++
	}
	// 8 KiB page, 100 B records + 4 B slots: expect ~78 records.
	if inserted < 70 || inserted > 81 {
		t.Errorf("inserted %d records before full", inserted)
	}
	// All still readable after fill.
	for s := uint16(0); s < p.NumSlots(); s++ {
		if p.Read(s) == nil {
			t.Errorf("slot %d unreadable", s)
		}
	}
}

func TestSlottedPageFreeSpaceMonotonic(t *testing.T) {
	p := newPage()
	prev := p.FreeSpace()
	for i := 0; i < 20; i++ {
		if _, err := p.Insert([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		cur := p.FreeSpace()
		if cur >= prev {
			t.Errorf("free space did not shrink: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestSlottedPageNextLink(t *testing.T) {
	p := newPage()
	if p.NextPage() != InvalidPageID {
		t.Error("fresh page has a next link")
	}
	p.SetNextPage(42)
	if p.NextPage() != 42 {
		t.Error("next link not persisted")
	}
}

func TestSlottedPageSurvivesSerialization(t *testing.T) {
	buf := make([]byte, PageSize)
	p := NewSlottedPage(buf)
	p.Init()
	s1, _ := p.Insert([]byte("persist me"))
	p.Delete(s1)
	s2, _ := p.Insert([]byte("keep me"))

	// Re-wrap the same bytes: state must be identical.
	q := NewSlottedPage(buf)
	if q.Read(s1) != nil {
		t.Error("deleted record resurrected")
	}
	if string(q.Read(s2)) != "keep me" {
		t.Error("record lost across re-wrap")
	}
}

func TestRIDCompare(t *testing.T) {
	a := RID{Page: 1, Slot: 2}
	b := RID{Page: 1, Slot: 3}
	c := RID{Page: 2, Slot: 0}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 || b.Compare(c) != -1 {
		t.Error("RID ordering broken")
	}
	if a.String() != "(1,2)" {
		t.Errorf("RID.String() = %q", a.String())
	}
}

func TestFileAllocateReadWrite(t *testing.T) {
	var stats IOStats
	f, err := OpenFile(filepath.Join(t.TempDir(), "x.pg"), &stats)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	id0, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id1, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 || id1 != 1 {
		t.Errorf("ids %d, %d", id0, id1)
	}
	buf := make([]byte, PageSize)
	rand.New(rand.NewSource(1)).Read(buf)
	if err := f.WritePage(id1, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := f.ReadPage(id1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Error("page contents corrupted")
	}
	if err := f.ReadPage(5, got); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	r, w := stats.Snapshot()
	if r == 0 || w == 0 {
		t.Errorf("io not counted: r=%d w=%d", r, w)
	}
}

func TestFileClosedOps(t *testing.T) {
	f, err := OpenFile(filepath.Join(t.TempDir(), "y.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Allocate(); !errors.Is(err, ErrClosed) {
		t.Errorf("allocate after close: %v", err)
	}
	buf := make([]byte, PageSize)
	if err := f.WritePage(0, buf); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "z.pg")
	f, err := OpenFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := f.Allocate()
	buf := bytes.Repeat([]byte{0xAB}, PageSize)
	f.WritePage(id, buf)
	f.Close()

	f2, err := OpenFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumPages() != 1 {
		t.Errorf("NumPages after reopen = %d", f2.NumPages())
	}
	got := make([]byte, PageSize)
	f2.ReadPage(id, got)
	if !bytes.Equal(buf, got) {
		t.Error("contents lost across reopen")
	}
}

func TestManagerOpenRemove(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	f1, err := m.Open("heap.a")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.Open("heap.a")
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("Open is not idempotent")
	}
	if _, err := f1.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("heap.a"); err != nil {
		t.Fatal(err)
	}
	f3, err := m.Open("heap.a")
	if err != nil {
		t.Fatal(err)
	}
	if f3.NumPages() != 0 {
		t.Error("Remove did not delete data")
	}
	if err := m.Remove("no.such"); err != nil {
		t.Errorf("Remove of missing file: %v", err)
	}
}

func TestManagerTornTrailingPageRepaired(t *testing.T) {
	dir := t.TempDir()
	m, _ := NewManager(dir)
	defer m.Close()
	// One full page followed by a torn partial page, as a crash during
	// Allocate's extension would leave behind.
	data := make([]byte, PageSize+100)
	for i := range data {
		data[i] = byte(i)
	}
	if err := writeFileHelper(filepath.Join(dir, "torn.pg"), data); err != nil {
		t.Fatal(err)
	}
	f, err := m.Open("torn")
	if err != nil {
		t.Fatalf("torn trailing page not repaired: %v", err)
	}
	if f.NumPages() != 1 {
		t.Errorf("NumPages = %d after repair, want 1", f.NumPages())
	}
	if got := m.Stats.Repairs.Load(); got != 1 {
		t.Errorf("Repairs = %d, want 1", got)
	}
	// The surviving full page is intact.
	buf := make([]byte, PageSize)
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != byte(i) {
			t.Fatalf("page byte %d corrupted by repair", i)
		}
	}
}

func writeFileHelper(path string, data []byte) error {
	return osWriteFile(path, data, 0o644)
}

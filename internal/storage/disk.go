package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"pmv/internal/vfs"
)

// Sentinel errors for the storage layer.
var (
	ErrPageFull = errors.New("storage: page full")
	ErrBadSlot  = errors.New("storage: bad slot")
	ErrClosed   = errors.New("storage: file closed")
)

// IOStats counts physical page transfers. The Section 4.3 cost model is
// expressed in I/Os, so every read/write that reaches the OS is counted
// here; the experiment harness reads these counters.
type IOStats struct {
	Reads  atomic.Int64
	Writes atomic.Int64
	// Repairs counts torn trailing partial pages truncated on open —
	// the footprint of a crash during a file extension.
	Repairs atomic.Int64
}

// Snapshot returns the current counters.
func (s *IOStats) Snapshot() (reads, writes int64) {
	return s.Reads.Load(), s.Writes.Load()
}

// File is one page-addressed file on disk.
type File struct {
	mu    sync.Mutex
	f     vfs.File
	pages int64 // allocated page count
	stats *IOStats
}

// OpenFile opens (creating if needed) a page file at path via the OS.
func OpenFile(path string, stats *IOStats) (*File, error) {
	return OpenFileFS(vfs.OS(), path, stats)
}

// OpenFileFS opens (creating if needed) a page file at path through
// fs. A non-page-aligned size means a crash tore the zero-page
// extension of Allocate mid-write; the trailing partial page is by
// definition unreferenced (its Allocate never returned), so it is
// truncated away and counted as a repair instead of bricking the file.
func OpenFileFS(fs vfs.FS, path string, stats *IOStats) (*File, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	size := info.Size
	if rem := size % PageSize; rem != 0 {
		size -= rem
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: repair torn page of %s: %w", path, err)
		}
		if stats != nil {
			stats.Repairs.Add(1)
		}
	}
	return &File{f: f, pages: size / PageSize, stats: stats}, nil
}

// NumPages returns the number of allocated pages.
func (fl *File) NumPages() PageID {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return PageID(fl.pages)
}

// Allocate extends the file by one zero page and returns its id.
func (fl *File) Allocate() (PageID, error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return InvalidPageID, ErrClosed
	}
	id := PageID(fl.pages)
	var zero [PageSize]byte
	if _, err := fl.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	fl.pages++
	if fl.stats != nil {
		fl.stats.Writes.Add(1)
	}
	return id, nil
}

// ReadPage fills buf (PageSize bytes) with page id's contents.
func (fl *File) ReadPage(id PageID, buf []byte) error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return ErrClosed
	}
	if int64(id) >= fl.pages {
		return fmt.Errorf("storage: read page %d of %d", id, fl.pages)
	}
	if _, err := fl.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if fl.stats != nil {
		fl.stats.Reads.Add(1)
	}
	return nil
}

// WritePage persists buf as page id.
func (fl *File) WritePage(id PageID, buf []byte) error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return ErrClosed
	}
	if int64(id) >= fl.pages {
		return fmt.Errorf("storage: write page %d of %d", id, fl.pages)
	}
	if _, err := fl.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if fl.stats != nil {
		fl.stats.Writes.Add(1)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (fl *File) Sync() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return ErrClosed
	}
	return fl.f.Sync()
}

// Close releases the handle.
func (fl *File) Close() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return nil
	}
	err := fl.f.Close()
	fl.f = nil
	return err
}

// Manager owns all page files under one directory, keyed by a logical
// name ("heap.orders", "idx.orders.custkey", ...).
type Manager struct {
	dir   string
	fs    vfs.FS
	mu    sync.Mutex
	files map[string]*File
	Stats IOStats
}

// NewManager creates a disk manager rooted at dir over the real OS,
// creating dir if necessary.
func NewManager(dir string) (*Manager, error) {
	return NewManagerFS(dir, nil)
}

// NewManagerFS creates a disk manager rooted at dir whose files are
// opened through fs (nil = the OS passthrough).
func NewManagerFS(dir string, fs vfs.FS) (*Manager, error) {
	if fs == nil {
		fs = vfs.OS()
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", dir, err)
	}
	return &Manager{dir: dir, fs: fs, files: make(map[string]*File)}, nil
}

// Dir returns the root directory.
func (m *Manager) Dir() string { return m.dir }

// FS returns the filesystem the manager opens its files through; the
// engine routes its metadata files through the same seam.
func (m *Manager) FS() vfs.FS { return m.fs }

// Open returns the page file for name, opening it on first use.
func (m *Manager) Open(name string) (*File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return f, nil
	}
	f, err := OpenFileFS(m.fs, filepath.Join(m.dir, name+".pg"), &m.Stats)
	if err != nil {
		return nil, err
	}
	m.files[name] = f
	return f, nil
}

// Remove closes and deletes the page file for name.
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		f.Close()
		delete(m.files, name)
	}
	return m.fs.Remove(filepath.Join(m.dir, name+".pg"))
}

// SyncAll flushes every open file to stable storage — the durability
// step of a checkpoint: page write-backs alone only reach the page
// cache.
func (m *Manager) SyncAll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for name, f := range m.files {
		if err := f.Sync(); err != nil && first == nil {
			first = fmt.Errorf("storage: sync %s: %w", name, err)
		}
	}
	return first
}

// Close closes every open file.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for name, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(m.files, name)
	}
	return first
}

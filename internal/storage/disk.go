package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Sentinel errors for the storage layer.
var (
	ErrPageFull = errors.New("storage: page full")
	ErrBadSlot  = errors.New("storage: bad slot")
	ErrClosed   = errors.New("storage: file closed")
)

// IOStats counts physical page transfers. The Section 4.3 cost model is
// expressed in I/Os, so every read/write that reaches the OS is counted
// here; the experiment harness reads these counters.
type IOStats struct {
	Reads  atomic.Int64
	Writes atomic.Int64
}

// Snapshot returns the current counters.
func (s *IOStats) Snapshot() (reads, writes int64) {
	return s.Reads.Load(), s.Writes.Load()
}

// File is one page-addressed file on disk.
type File struct {
	mu    sync.Mutex
	f     *os.File
	pages int64 // allocated page count
	stats *IOStats
}

// OpenFile opens (creating if needed) a page file at path.
func OpenFile(path string, stats *IOStats) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d not page-aligned", path, info.Size())
	}
	return &File{f: f, pages: info.Size() / PageSize, stats: stats}, nil
}

// NumPages returns the number of allocated pages.
func (fl *File) NumPages() PageID {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return PageID(fl.pages)
}

// Allocate extends the file by one zero page and returns its id.
func (fl *File) Allocate() (PageID, error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return InvalidPageID, ErrClosed
	}
	id := PageID(fl.pages)
	var zero [PageSize]byte
	if _, err := fl.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	fl.pages++
	if fl.stats != nil {
		fl.stats.Writes.Add(1)
	}
	return id, nil
}

// ReadPage fills buf (PageSize bytes) with page id's contents.
func (fl *File) ReadPage(id PageID, buf []byte) error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return ErrClosed
	}
	if int64(id) >= fl.pages {
		return fmt.Errorf("storage: read page %d of %d", id, fl.pages)
	}
	if _, err := fl.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if fl.stats != nil {
		fl.stats.Reads.Add(1)
	}
	return nil
}

// WritePage persists buf as page id.
func (fl *File) WritePage(id PageID, buf []byte) error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return ErrClosed
	}
	if int64(id) >= fl.pages {
		return fmt.Errorf("storage: write page %d of %d", id, fl.pages)
	}
	if _, err := fl.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if fl.stats != nil {
		fl.stats.Writes.Add(1)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (fl *File) Sync() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return ErrClosed
	}
	return fl.f.Sync()
}

// Close releases the handle.
func (fl *File) Close() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return nil
	}
	err := fl.f.Close()
	fl.f = nil
	return err
}

// Manager owns all page files under one directory, keyed by a logical
// name ("heap.orders", "idx.orders.custkey", ...).
type Manager struct {
	dir   string
	mu    sync.Mutex
	files map[string]*File
	Stats IOStats
}

// NewManager creates a disk manager rooted at dir, creating dir if
// necessary.
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", dir, err)
	}
	return &Manager{dir: dir, files: make(map[string]*File)}, nil
}

// Dir returns the root directory.
func (m *Manager) Dir() string { return m.dir }

// Open returns the page file for name, opening it on first use.
func (m *Manager) Open(name string) (*File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return f, nil
	}
	f, err := OpenFile(filepath.Join(m.dir, name+".pg"), &m.Stats)
	if err != nil {
		return nil, err
	}
	m.files[name] = f
	return f, nil
}

// Remove closes and deletes the page file for name.
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		f.Close()
		delete(m.files, name)
	}
	err := os.Remove(filepath.Join(m.dir, name+".pg"))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// Close closes every open file.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for name, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(m.files, name)
	}
	return first
}

// Package storage implements the on-disk layout of the engine: fixed
// 8 KiB pages, a slotted-page record format, per-relation heap files,
// and a disk manager that owns the file handles and counts physical
// I/Os (the unit the paper's Section 4.3 cost model is expressed in).
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed size of every on-disk page.
const PageSize = 8192

// PageTrailer is reserved at the end of every page for a CRC-32
// checksum, computed by the buffer pool on write-back and verified on
// read. Page content (slotted records, B+tree nodes) must stay within
// PageDataSize bytes.
const PageTrailer = 4

// PageDataSize is the page capacity available to content.
const PageDataSize = PageSize - PageTrailer

// PageID identifies a page within one file.
type PageID uint32

// InvalidPageID marks "no page" in page headers and links.
const InvalidPageID = PageID(0xFFFFFFFF)

// RID addresses a record: page plus slot within the page.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// Compare orders RIDs by (page, slot).
func (r RID) Compare(o RID) int {
	switch {
	case r.Page < o.Page:
		return -1
	case r.Page > o.Page:
		return 1
	case r.Slot < o.Slot:
		return -1
	case r.Slot > o.Slot:
		return 1
	default:
		return 0
	}
}

// Slotted page layout:
//
//	offset 0:  u32 next page id (free-list / heap chain link)
//	offset 4:  u16 slot count
//	offset 6:  u16 free-space start (grows up from the header)
//	offset 8:  u16 free-space end   (record data grows down from PageSize)
//	offset 10: u64 page LSN (last WAL record applied; redo guard)
//	offset 18: slot array: per slot u16 offset, u16 length
//	           (offset 0xFFFF = dead slot)
//	...
//	records packed at the tail of the page
const (
	slotDead     = 0xFFFF
	pageHdrSize  = 18
	slotEntrySiz = 4
)

// SlottedPage is a view over one page's bytes providing record
// insert/read/delete. It does not own the buffer.
type SlottedPage struct {
	buf []byte
}

// NewSlottedPage wraps buf (which must be PageSize long).
func NewSlottedPage(buf []byte) *SlottedPage {
	if len(buf) != PageSize {
		panic(fmt.Sprintf("storage: page buffer is %d bytes, want %d", len(buf), PageSize))
	}
	return &SlottedPage{buf: buf}
}

// Init formats the page as an empty slotted page.
func (p *SlottedPage) Init() {
	p.SetNextPage(InvalidPageID)
	binary.BigEndian.PutUint16(p.buf[4:], 0)
	binary.BigEndian.PutUint16(p.buf[6:], pageHdrSize)
	binary.BigEndian.PutUint16(p.buf[8:], PageDataSize)
	p.SetLSN(0)
}

// LSN returns the page's log sequence number: the LSN of the last WAL
// record whose effect is reflected in the page. Redo applies a record
// only when the record's LSN exceeds the page LSN.
func (p *SlottedPage) LSN() uint64 {
	return binary.BigEndian.Uint64(p.buf[10:])
}

// SetLSN stores the page LSN.
func (p *SlottedPage) SetLSN(lsn uint64) {
	binary.BigEndian.PutUint64(p.buf[10:], lsn)
}

// EnsureInit formats the page if it has never been initialized. A
// freshly allocated page is all zeros, and a zero free-space end is
// impossible on a formatted page (Init sets it to PageSize), so that
// field doubles as the initialization marker. Recovery uses this when
// redo reaches a page the crashed process allocated but never flushed.
func (p *SlottedPage) EnsureInit() {
	if p.freeEnd() == 0 {
		p.Init()
	}
}

// NextPage returns the chained page id stored in the header.
func (p *SlottedPage) NextPage() PageID {
	return PageID(binary.BigEndian.Uint32(p.buf[0:]))
}

// SetNextPage stores the chained page id.
func (p *SlottedPage) SetNextPage(id PageID) {
	binary.BigEndian.PutUint32(p.buf[0:], uint32(id))
}

// NumSlots returns the slot-array length, including dead slots.
func (p *SlottedPage) NumSlots() uint16 {
	return binary.BigEndian.Uint16(p.buf[4:])
}

func (p *SlottedPage) freeStart() uint16 { return binary.BigEndian.Uint16(p.buf[6:]) }
func (p *SlottedPage) freeEnd() uint16   { return binary.BigEndian.Uint16(p.buf[8:]) }

// FreeSpace returns the bytes available for one more record, accounting
// for its slot entry.
func (p *SlottedPage) FreeSpace() int {
	free := int(p.freeEnd()) - int(p.freeStart()) - slotEntrySiz
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores rec and returns its slot. It fails if the page is full.
func (p *SlottedPage) Insert(rec []byte) (uint16, error) {
	if len(rec) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	slot := p.NumSlots()
	end := p.freeEnd() - uint16(len(rec))
	copy(p.buf[end:], rec)
	slotOff := pageHdrSize + int(slot)*slotEntrySiz
	binary.BigEndian.PutUint16(p.buf[slotOff:], end)
	binary.BigEndian.PutUint16(p.buf[slotOff+2:], uint16(len(rec)))
	binary.BigEndian.PutUint16(p.buf[4:], slot+1)
	binary.BigEndian.PutUint16(p.buf[6:], uint16(slotOff+slotEntrySiz))
	binary.BigEndian.PutUint16(p.buf[8:], end)
	return slot, nil
}

// Read returns the record at slot, or nil if the slot is dead or out of
// range. The returned slice aliases the page buffer.
func (p *SlottedPage) Read(slot uint16) []byte {
	if slot >= p.NumSlots() {
		return nil
	}
	slotOff := pageHdrSize + int(slot)*slotEntrySiz
	off := binary.BigEndian.Uint16(p.buf[slotOff:])
	if off == slotDead {
		return nil
	}
	length := binary.BigEndian.Uint16(p.buf[slotOff+2:])
	return p.buf[off : off+length]
}

// Delete marks the slot dead. Space is not compacted; heap files are
// append-mostly and vacuuming is out of scope.
func (p *SlottedPage) Delete(slot uint16) error {
	if slot >= p.NumSlots() {
		return fmt.Errorf("storage: delete slot %d of %d: %w", slot, p.NumSlots(), ErrBadSlot)
	}
	slotOff := pageHdrSize + int(slot)*slotEntrySiz
	if binary.BigEndian.Uint16(p.buf[slotOff:]) == slotDead {
		return fmt.Errorf("storage: slot %d already dead: %w", slot, ErrBadSlot)
	}
	binary.BigEndian.PutUint16(p.buf[slotOff:], slotDead)
	return nil
}

// Update replaces the record at slot in place when the new record fits
// in the old record's space; otherwise it reports ErrPageFull and the
// caller must delete + re-insert elsewhere.
func (p *SlottedPage) Update(slot uint16, rec []byte) error {
	if slot >= p.NumSlots() {
		return fmt.Errorf("storage: update slot %d of %d: %w", slot, p.NumSlots(), ErrBadSlot)
	}
	slotOff := pageHdrSize + int(slot)*slotEntrySiz
	off := binary.BigEndian.Uint16(p.buf[slotOff:])
	if off == slotDead {
		return fmt.Errorf("storage: update dead slot %d: %w", slot, ErrBadSlot)
	}
	oldLen := binary.BigEndian.Uint16(p.buf[slotOff+2:])
	if len(rec) > int(oldLen) {
		return ErrPageFull
	}
	copy(p.buf[off:], rec)
	binary.BigEndian.PutUint16(p.buf[slotOff+2:], uint16(len(rec)))
	return nil
}

package maint

import (
	"sync"
	"time"
)

// classifier partitions the update stream's bcp keys into heavy and
// light against a sliding frequency window (the heavy-light IVM idea:
// maintain light keys eagerly, let heavy keys amortize). Frequencies
// live in two buckets rotated every interval; a key's score is the sum
// of both, so the effective window slides between one and two
// intervals without per-key timestamps. Rotation is lazy — driven by
// the classify calls themselves — so an idle plane costs nothing.
type classifier struct {
	mu        sync.Mutex
	threshold int
	interval  time.Duration
	cur, prev map[string]int
	rotated   time.Time
	// est, when non-nil, is the frequency plane's read-side popularity
	// estimate (Config.Estimator); it extends the write-touch window so
	// a key hammered by readers classifies heavy even before its writes
	// alone would.
	est func(string) uint32
}

func newClassifier(threshold int, interval time.Duration, est func(string) uint32) *classifier {
	return &classifier{
		threshold: threshold,
		interval:  interval,
		cur:       make(map[string]int),
		prev:      make(map[string]int),
		rotated:   time.Now(),
		est:       est,
	}
}

// heavy records one touch of key and reports whether it currently
// classifies as heavy: touched at least threshold times across the
// sliding window (counting this touch), or — with a shared estimator
// attached — read at least that often in the frequency plane's window.
func (c *classifier) heavy(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.rotated) >= c.interval {
		c.prev = c.cur
		c.cur = make(map[string]int)
		c.rotated = now
	}
	c.cur[key]++
	if c.cur[key]+c.prev[key] >= c.threshold {
		return true
	}
	return c.est != nil && c.est(key) >= uint32(c.threshold)
}

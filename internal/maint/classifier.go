package maint

import (
	"sync"
	"time"
)

// classifier partitions the update stream's bcp keys into heavy and
// light against a sliding frequency window (the heavy-light IVM idea:
// maintain light keys eagerly, let heavy keys amortize). Frequencies
// live in two buckets rotated every interval; a key's score is the sum
// of both, so the effective window slides between one and two
// intervals without per-key timestamps. Rotation is lazy — driven by
// the classify calls themselves — so an idle plane costs nothing.
type classifier struct {
	mu        sync.Mutex
	threshold int
	interval  time.Duration
	cur, prev map[string]int
	rotated   time.Time
}

func newClassifier(threshold int, interval time.Duration) *classifier {
	return &classifier{
		threshold: threshold,
		interval:  interval,
		cur:       make(map[string]int),
		prev:      make(map[string]int),
		rotated:   time.Now(),
	}
}

// heavy records one touch of key and reports whether it currently
// classifies as heavy (touched at least threshold times across the
// sliding window, counting this touch).
func (c *classifier) heavy(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.rotated) >= c.interval {
		c.prev = c.cur
		c.cur = make(map[string]int)
		c.rotated = now
	}
	c.cur[key]++
	return c.cur[key]+c.prev[key] >= c.threshold
}

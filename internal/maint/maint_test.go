package maint_test

import (
	"context"
	"testing"
	"time"

	"pmv"
	"pmv/internal/maint"
	"pmv/internal/value"
	"pmv/internal/wire"
)

func openDB(t *testing.T) *pmv.DB {
	t.Helper()
	db, err := pmv.Open(t.TempDir(), pmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// storefront is the quickstart-style fixture: product ⋈ sale with
// equality conditions on category and store.
func storefront(t *testing.T, db *pmv.DB) *pmv.Template {
	t.Helper()
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(db.CreateRelation("product",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("category", pmv.TypeInt),
		pmv.Col("name", pmv.TypeString)))
	check(db.CreateRelation("sale",
		pmv.Col("pid", pmv.TypeInt),
		pmv.Col("store", pmv.TypeInt),
		pmv.Col("discount", pmv.TypeInt)))
	check(db.CreateIndex("product", "pid"))
	check(db.CreateIndex("sale", "pid"))
	for pid := int64(0); pid < 400; pid++ {
		check(db.Insert("product", pmv.Int(pid), pmv.Int(pid%8), pmv.Str("p")))
		check(db.Insert("sale", pmv.Int(pid), pmv.Int((pid/8)%5), pmv.Int(pid%50)))
	}
	return pmv.NewTemplate("on_sale").
		From("product", "sale").
		Select("product.pid", "sale.discount").
		Join("product.pid", "sale.pid").
		WhereEq("product.category").
		WhereEq("sale.store").
		MustBuild()
}

// runQuery executes the (category ∈ {1,2}, store = 3) query and
// returns the delivered pid set.
func runQuery(t *testing.T, view *pmv.View, tpl *pmv.Template) map[int64]bool {
	t.Helper()
	q := pmv.NewQuery(tpl).In(0, pmv.Int(1), pmv.Int(2)).In(1, pmv.Int(3)).Query()
	pids := make(map[int64]bool)
	_, err := view.ExecutePartial(q, func(r pmv.Result) error {
		pids[r.Tuple[0].Int64()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pids
}

func newPlane(t *testing.T, db *pmv.DB, cfg maint.Config) *maint.Plane {
	t.Helper()
	cfg.Source = db
	p, err := maint.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestBatchedDeletePurges pins the light-key path end to end: a
// batched delete's affected bcp key is computed, classified light,
// purged under the short X grab, and the next query is correct with a
// clean DS audit.
func TestBatchedDeletePurges(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := runQuery(t, view, tpl) // warm the cache
	if !before[25] {
		t.Fatal("fixture broken: pid 25 not in query result")
	}

	p := newPlane(t, db, maint.Config{MaxDelay: time.Millisecond})
	res, err := p.Apply(context.Background(), []wire.UpdateOp{
		{Kind: wire.OpDelete, Rel: "sale", Col: "pid", Val: value.Int(25)},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Rows != 1 {
		t.Fatalf("applied=%d rows=%d, want 1/1", res.Applied, res.Rows)
	}
	if len(res.Keys[view.Name()]) == 0 {
		t.Fatalf("no affected keys reported: %+v", res.Keys)
	}
	if res.Wide[view.Name()] {
		t.Fatal("single-victim delete reported wide damage")
	}

	after := runQuery(t, view, tpl)
	if after[25] {
		t.Fatal("deleted pid 25 still served")
	}
	if len(after) != len(before)-1 {
		t.Fatalf("result shrank by %d rows, want 1", len(before)-len(after))
	}
	st := p.Stats()
	if st.KeysAffected == 0 || st.LightKeys == 0 {
		t.Fatalf("classification did not run: %+v", st)
	}
	vs := view.Stats()
	if vs.EntriesPurged == 0 && vs.TuplesPurged == 0 {
		t.Fatalf("nothing purged: %+v", vs)
	}
	if err := view.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHeavyKeysInvalidateLazily forces every key heavy and pins the
// generation-bump path: no purge, the stale entry is discarded on its
// next probe, and results stay correct.
func TestHeavyKeysInvalidateLazily(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := runQuery(t, view, tpl)

	p := newPlane(t, db, maint.Config{MaxDelay: time.Millisecond, HeavyThreshold: 1})
	if _, err := p.Apply(context.Background(), []wire.UpdateOp{
		{Kind: wire.OpDelete, Rel: "sale", Col: "pid", Val: value.Int(25)},
	}, true); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.HeavyKeys == 0 || st.LightKeys != 0 {
		t.Fatalf("heavy=%d light=%d, want all heavy", st.HeavyKeys, st.LightKeys)
	}
	if st.EntriesPurged != 0 {
		t.Fatalf("heavy path purged %d entries", st.EntriesPurged)
	}

	after := runQuery(t, view, tpl)
	if after[25] {
		t.Fatal("deleted pid 25 still served after generation bump")
	}
	if len(after) != len(before)-1 {
		t.Fatalf("result shrank by %d rows, want 1", len(before)-len(after))
	}
	vs := view.Stats()
	if vs.KeyGenBumps == 0 {
		t.Fatalf("no generation bumps recorded: %+v", vs)
	}
	if vs.EntriesInvalidated == 0 {
		t.Fatalf("stale entry not lazily discarded: %+v", vs)
	}
	if err := view.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushTriggers pins the batcher's two flush reasons.
func TestFlushTriggers(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	if _, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3}); err != nil {
		t.Fatal(err)
	}
	p := newPlane(t, db, maint.Config{BatchSize: 2, MaxDelay: 50 * time.Millisecond})

	// A single request carrying BatchSize ops flushes on size.
	if _, err := p.Apply(context.Background(), []wire.UpdateOp{
		{Kind: wire.OpInsert, Rel: "product", Tuple: value.Tuple{value.Int(1000), value.Int(1), value.Str("a")}},
		{Kind: wire.OpInsert, Rel: "product", Tuple: value.Tuple{value.Int(1001), value.Int(1), value.Str("b")}},
	}, false); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.SizeFlushes == 0 {
		t.Fatalf("no size flush recorded: %+v", st)
	}
	// A lone small request flushes on age.
	if _, err := p.Apply(context.Background(), []wire.UpdateOp{
		{Kind: wire.OpInsert, Rel: "product", Tuple: value.Tuple{value.Int(1002), value.Int(1), value.Str("c")}},
	}, false); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.AgeFlushes == 0 {
		t.Fatalf("no age flush recorded: %+v", st)
	}
	if st := p.Stats(); st.OpsApplied != 3 {
		t.Fatalf("ops applied = %d, want 3", st.OpsApplied)
	}
}

// TestUpdatesSkippedParity pins the accounting satellite: an update
// touching only an irrelevant column (product.name is outside Ls′ and
// Cjoin) bumps UpdatesSkipped on both the batched and the
// per-statement path, and purges nothing either way.
func TestUpdatesSkippedParity(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3})
	if err != nil {
		t.Fatal(err)
	}
	runQuery(t, view, tpl)

	// Batched path.
	p := newPlane(t, db, maint.Config{MaxDelay: time.Millisecond})
	if _, err := p.Apply(context.Background(), []wire.UpdateOp{
		{Kind: wire.OpUpdate, Rel: "product", Col: "pid", Val: value.Int(25), SetCol: "name", SetVal: value.Str("renamed")},
	}, true); err != nil {
		t.Fatal(err)
	}
	vs := view.Stats()
	if vs.UpdatesSeen != 1 || vs.UpdatesSkipped != 1 {
		t.Fatalf("batched: seen=%d skipped=%d, want 1/1", vs.UpdatesSeen, vs.UpdatesSkipped)
	}
	if vs.TuplesPurged != 0 || vs.KeyGenBumps != 0 {
		t.Fatalf("irrelevant update caused maintenance: %+v", vs)
	}
	p.Close()

	// Per-statement path (plane closed → views re-attached).
	if _, err := db.Update("product",
		func(tu pmv.Tuple) bool { return tu[0] == pmv.Int(26) },
		func(tu pmv.Tuple) pmv.Tuple { tu[2] = pmv.Str("renamed"); return tu }); err != nil {
		t.Fatal(err)
	}
	vs = view.Stats()
	if vs.UpdatesSeen != 2 || vs.UpdatesSkipped != 2 {
		t.Fatalf("per-statement: seen=%d skipped=%d, want 2/2", vs.UpdatesSeen, vs.UpdatesSkipped)
	}

	// A relevant update (discount is in Ls′) purges on both paths.
	p = newPlane(t, db, maint.Config{MaxDelay: time.Millisecond})
	if _, err := p.Apply(context.Background(), []wire.UpdateOp{
		{Kind: wire.OpUpdate, Rel: "sale", Col: "pid", Val: value.Int(25), SetCol: "discount", SetVal: value.Int(49)},
	}, true); err != nil {
		t.Fatal(err)
	}
	vs = view.Stats()
	if vs.UpdatesSkipped != 2 {
		t.Fatalf("relevant update skipped: %+v", vs)
	}
	if vs.TuplesPurged == 0 && vs.KeyGenBumps == 0 && vs.EntriesPurged == 0 {
		t.Fatalf("relevant update caused no maintenance: %+v", vs)
	}
	after := runQuery(t, view, tpl)
	if !after[25] {
		t.Fatal("updated tuple vanished from results")
	}
}

// TestOutOfBandWritesDegradeWide: DML bypassing an attached plane must
// wholesale-invalidate rather than leave stale entries.
func TestOutOfBandWritesDegradeWide(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := runQuery(t, view, tpl)
	newPlane(t, db, maint.Config{MaxDelay: time.Millisecond})

	if _, err := db.Delete("sale", func(tu pmv.Tuple) bool { return tu[0] == pmv.Int(25) }); err != nil {
		t.Fatal(err)
	}
	if vs := view.Stats(); vs.ViewGenBumps == 0 {
		t.Fatalf("out-of-band delete did not bump the view generation: %+v", vs)
	}
	after := runQuery(t, view, tpl)
	if after[25] {
		t.Fatal("out-of-band delete left a stale served tuple")
	}
	if len(after) != len(before)-1 {
		t.Fatalf("result shrank by %d rows, want 1", len(before)-len(after))
	}
}

// TestCloseReattachesPerStatement: after Close, the classic observer
// path must be live again.
func TestCloseReattachesPerStatement(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3})
	if err != nil {
		t.Fatal(err)
	}
	runQuery(t, view, tpl)
	p := newPlane(t, db, maint.Config{MaxDelay: time.Millisecond})
	p.Close()
	if _, err := p.Apply(context.Background(), nil, false); err == nil {
		t.Fatal("Apply after Close succeeded")
	}

	if _, err := db.Delete("sale", func(tu pmv.Tuple) bool { return tu[0] == pmv.Int(25) }); err != nil {
		t.Fatal(err)
	}
	vs := view.Stats()
	if vs.DeletesSeen == 0 {
		t.Fatalf("per-statement observer not re-attached: %+v", vs)
	}
	if vs.ViewGenBumps != 0 {
		t.Fatalf("post-Close delete treated as out-of-band: %+v", vs)
	}
	after := runQuery(t, view, tpl)
	if after[25] {
		t.Fatal("per-statement purge missed the deleted tuple")
	}
}

// TestCoalescedRunEquivalence pins the shared-scan optimisation:
// consecutive point ops on the same relation+column apply through one
// heap scan, with batch order preserved inside the run and per-request
// row attribution identical to sequential application.
func TestCoalescedRunEquivalence(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	view, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := runQuery(t, view, tpl)

	p := newPlane(t, db, maint.Config{MaxDelay: time.Millisecond})
	// One request, one batch: an update run of 3 (pid 25 twice — the
	// later op must win) and a delete run of 2. pids 25/26/65/66 all
	// fall inside the warmed (category ∈ {1,2}, store 3) window.
	res, err := p.Apply(context.Background(), []wire.UpdateOp{
		{Kind: wire.OpUpdate, Rel: "sale", Col: "pid", Val: value.Int(25), SetCol: "discount", SetVal: value.Int(7)},
		{Kind: wire.OpUpdate, Rel: "sale", Col: "pid", Val: value.Int(26), SetCol: "discount", SetVal: value.Int(9)},
		{Kind: wire.OpUpdate, Rel: "sale", Col: "pid", Val: value.Int(25), SetCol: "discount", SetVal: value.Int(11)},
		{Kind: wire.OpDelete, Rel: "sale", Col: "pid", Val: value.Int(65)},
		{Kind: wire.OpDelete, Rel: "sale", Col: "pid", Val: value.Int(66)},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 5 || res.Rows != 5 {
		t.Fatalf("applied=%d rows=%d, want 5/5 (same attribution as sequential)", res.Applied, res.Rows)
	}
	st := p.Stats()
	if st.CoalescedOps != 5 {
		t.Fatalf("coalesced %d ops, want 5 (update run of 3 + delete run of 2)", st.CoalescedOps)
	}
	if st.GroupSyncs == 0 || st.GroupSyncs != st.Batches {
		t.Fatalf("group syncs %d for %d batches, want one per batch", st.GroupSyncs, st.Batches)
	}

	q := pmv.NewQuery(tpl).In(0, pmv.Int(1), pmv.Int(2)).In(1, pmv.Int(3)).Query()
	disc := make(map[int64]int64)
	if _, err := view.ExecutePartial(q, func(r pmv.Result) error {
		disc[r.Tuple[0].Int64()] = r.Tuple[1].Int64()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if disc[25] != 11 {
		t.Errorf("pid 25 discount = %d, want 11 (batch order inside the run)", disc[25])
	}
	if disc[26] != 9 {
		t.Errorf("pid 26 discount = %d, want 9", disc[26])
	}
	if _, ok := disc[65]; ok {
		t.Error("coalesced delete left pid 65 served")
	}
	if _, ok := disc[66]; ok {
		t.Error("coalesced delete left pid 66 served")
	}
	if len(disc) != len(before)-2 {
		t.Errorf("result shrank by %d rows, want 2", len(before)-len(disc))
	}
	if err := view.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSelfMatchUpdateNotCoalesced pins the coalescing guard: an update
// that rewrites its own match column must not share a scan, or a later
// op addressing the new value would miss the tuple.
func TestSelfMatchUpdateNotCoalesced(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	if _, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3}); err != nil {
		t.Fatal(err)
	}
	p := newPlane(t, db, maint.Config{MaxDelay: time.Millisecond})
	res, err := p.Apply(context.Background(), []wire.UpdateOp{
		{Kind: wire.OpUpdate, Rel: "sale", Col: "pid", Val: value.Int(105), SetCol: "pid", SetVal: value.Int(2105)},
		{Kind: wire.OpUpdate, Rel: "sale", Col: "pid", Val: value.Int(2105), SetCol: "discount", SetVal: value.Int(21)},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	// The second op must see the first's rename: rows=2 only if the
	// rename applied singly before the follow-up scanned.
	if res.Applied != 2 || res.Rows != 2 {
		t.Fatalf("applied=%d rows=%d, want 2/2", res.Applied, res.Rows)
	}
	if st := p.Stats(); st.CoalescedOps != 0 {
		t.Fatalf("self-match update joined a coalesced run (%d ops)", st.CoalescedOps)
	}
}

// TestPendingGate: Pending must be true from ingest until maintenance
// completes — the snapshot manager's staleness gate.
func TestPendingGate(t *testing.T) {
	db := openDB(t)
	tpl := storefront(t, db)
	if _, err := db.CreatePartialView(tpl, pmv.ViewOptions{MaxEntries: 50, TuplesPerBCP: 3}); err != nil {
		t.Fatal(err)
	}
	p := newPlane(t, db, maint.Config{MaxDelay: time.Millisecond})
	if p.Pending() {
		t.Fatal("idle plane reports pending work")
	}
	if _, err := p.Apply(context.Background(), []wire.UpdateOp{
		{Kind: wire.OpDelete, Rel: "sale", Col: "pid", Val: value.Int(25)},
	}, true); err != nil {
		t.Fatal(err)
	}
	// wantKeys waited for maintenance, so the batch is fully settled.
	if p.Pending() {
		t.Fatal("settled plane reports pending work")
	}
}

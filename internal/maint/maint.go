// Package maint is the write plane: batched deferred maintenance for
// partial materialized views.
//
// Per-statement maintenance (core's ChangeObserver path) takes the
// view's X lock once per mutated tuple — correct, but the lock
// ping-pong with readers caps write throughput. The Plane replaces it
// with an ingest stage in the batcher idiom: writers enqueue ΔR
// batches on a bounded queue and a single flush worker drains it,
// applying each batch under ONE X-lock window per view. Consecutive
// point ops on the same relation+column coalesce into one heap scan,
// and one WAL sync per batch (group commit) buys every acked request
// per-statement durability at a fraction of the fsync count. View
// maintenance then runs after the ack:
//
//   - affected bcp keys are computed per victim via the view's delta
//     join (global keys — valid on any node caching them),
//   - each key is classified heavy/light against a sliding frequency
//     window,
//   - light keys are purged under a short X-lock grab, heavy keys get
//     an invalidation-generation bump (lazily discarded on next
//     probe), so a hot key's write burst never serializes against its
//     readers,
//   - unboundable damage (failed delta join, failed lock) degrades to
//     a view-wide generation bump — correctness by cache loss.
//
// While a Plane is attached the views are detached from the engine's
// observer list (a collector observer records victims instead), so
// per-statement purge work and its per-tuple X locks disappear from
// the write path entirely. Correctness never depends on any of the
// maintenance arriving: a stale entry that slips through is caught by
// the DS multiset audit at query time — a loud typed error, never a
// silently stale answer.
package maint

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pmv/internal/core"
	"pmv/internal/engine"
	"pmv/internal/freq"
	"pmv/internal/keycodec"
	"pmv/internal/obs"
	"pmv/internal/value"
	"pmv/internal/wire"
)

// Source is what the Plane maintains: an engine and its registered
// views (pmv.DB satisfies it).
type Source interface {
	Engine() *engine.Engine
	Views() []*core.View
}

// ErrClosed is returned by Apply after Close.
var ErrClosed = errors.New("maint: plane closed")

// Config tunes a Plane. Zero values get defaults.
type Config struct {
	Source Source
	// BatchSize flushes a batch once it holds this many ops (default 64).
	BatchSize int
	// MaxDelay flushes a non-empty batch after this long even if small
	// (default 2ms) — the age trigger bounding write latency.
	MaxDelay time.Duration
	// QueueDepth bounds queued requests; Apply blocks (ctx-aware) when
	// full (default 1024).
	QueueDepth int
	// HeavyThreshold: a key touched at least this many times per
	// sliding window classifies heavy (default 32).
	HeavyThreshold int
	// WindowInterval is the classifier's bucket rotation (default 1s).
	WindowInterval time.Duration
	// Estimator, when set, supplies a read-side popularity estimate for
	// a bcp key; the classifier treats a key as heavy when either its
	// own write-touch count or the estimate clears HeavyThreshold, so a
	// read-hot key's writes take the gen-bump path instead of purging
	// under an X-lock its readers are contending for. Left nil, New
	// derives one from the views' frequency planes when present, so
	// both thresholds share one sliding estimator.
	Estimator func(key string) uint32
	// Logf receives plane lifecycle messages (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.Source == nil {
		return errors.New("maint: config needs a source")
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.HeavyThreshold <= 0 {
		c.HeavyThreshold = 32
	}
	if c.WindowInterval <= 0 {
		c.WindowInterval = time.Second
	}
	return nil
}

// Result is one request's outcome. Keys/Wide cover the whole batch the
// request rode in (a superset of the request's own damage — harmless
// for invalidation, which is idempotent and monotone).
type Result struct {
	// Applied counts this request's ops that executed cleanly; Rows is
	// their total affected row count.
	Applied int
	Rows    int
	// Keys maps view name → affected bcp keys; Wide marks views whose
	// damage was unbounded. Populated only when Apply ran with
	// wantKeys (the maintenance stage was awaited).
	Keys map[string][]string
	Wide map[string]bool
}

// request is one Apply call in the queue.
type request struct {
	ops  []wire.UpdateOp
	ack  chan struct{} // closed after base apply (ops/rows/err valid)
	done chan struct{} // closed after maintenance (keys/wide valid)

	// tr is the caller's trace (nil when untraced). The flush worker
	// bills the group-commit fsync to it via the thread-safe AddSpans
	// sink, always before ack closes so the span is visible when Apply
	// returns.
	tr *obs.Trace

	applied int
	rows    int
	err     error
	keys    map[string][]string
	wide    map[string]bool
}

// victim is one recorded base-tuple casualty of a batch.
type victim struct {
	rel string
	old value.Tuple
	new value.Tuple // nil for deletes
}

// batchState is what the collector records while a batch applies.
type batchState struct {
	inserts []string // relation per insert
	victims []victim
}

// Plane is the batched write plane. Create with New, feed with Apply,
// stop with Close (which re-attaches per-statement maintenance).
type Plane struct {
	cfg   Config
	eng   *engine.Engine
	views []*core.View // sorted by name; lock order
	col   *collector
	class *classifier

	queue   chan *request
	closing chan struct{}
	closed  sync.Once
	wg      sync.WaitGroup

	pending atomic.Int64 // requests ingested but not yet maintained

	curMu sync.Mutex
	cur   *batchState

	statsMu sync.Mutex
	stats   wire.MaintStats
}

// New builds a Plane over src and switches its views from
// per-statement to batched maintenance: the views are unregistered
// from the engine's observer list and a collector observer takes
// their place. The flush worker starts immediately.
func New(cfg Config) (*Plane, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	views := append([]*core.View(nil), cfg.Source.Views()...)
	sort.Slice(views, func(i, j int) bool { return views[i].Name() < views[j].Name() })
	if cfg.Estimator == nil {
		var freqs []*freq.ViewFreq
		for _, v := range views {
			if f := v.Freq(); f != nil {
				freqs = append(freqs, f)
			}
		}
		if len(freqs) > 0 {
			cfg.Estimator = func(key string) uint32 {
				var m uint32
				for _, f := range freqs {
					if e := f.Sketch.Estimate(key); e > m {
						m = e
					}
				}
				return m
			}
		}
	}
	p := &Plane{
		cfg:     cfg,
		eng:     cfg.Source.Engine(),
		views:   views,
		class:   newClassifier(cfg.HeavyThreshold, cfg.WindowInterval, cfg.Estimator),
		queue:   make(chan *request, cfg.QueueDepth),
		closing: make(chan struct{}),
	}
	p.col = &collector{p: p}
	for _, v := range p.views {
		p.eng.UnregisterObserver(v)
	}
	p.eng.RegisterObserver(p.col)
	p.wg.Add(1)
	go p.run()
	return p, nil
}

// Close drains the queue, applies the final batch, and re-attaches
// per-statement maintenance. Requests that raced the shutdown fail
// with ErrClosed.
func (p *Plane) Close() error {
	p.closed.Do(func() { close(p.closing) })
	p.wg.Wait()
	for {
		select {
		case r := <-p.queue:
			r.err = ErrClosed
			p.pending.Add(-1)
			close(r.ack)
			close(r.done)
		default:
			p.eng.UnregisterObserver(p.col)
			for _, v := range p.views {
				p.eng.RegisterObserver(v)
			}
			return nil
		}
	}
}

// Pending reports whether any ingested batch has not finished its
// maintenance yet. The snapshot manager gates on it: a snapshot taken
// between base apply and invalidation would warm-boot a stale cache
// with matching staleness stamps.
func (p *Plane) Pending() bool { return p.pending.Load() > 0 }

// Apply enqueues ops and waits. With wantKeys false it returns at the
// ack stage — base data applied, maintenance still in flight — which
// is the replica path (invalidation arrives separately). With
// wantKeys true it waits for maintenance and the Result carries the
// batch's affected keys for fan-out.
//
// A per-op engine failure does not abort the batch: the op is skipped,
// counted, and reported as this request's error; the other ops stand
// (the queue is not transactional — it is a maintenance conduit).
func (p *Plane) Apply(ctx context.Context, ops []wire.UpdateOp, wantKeys bool) (Result, error) {
	r := &request{ops: ops, ack: make(chan struct{}), done: make(chan struct{}), tr: obs.FromContext(ctx)}
	select {
	case <-p.closing:
		return Result{}, ErrClosed
	default:
	}
	p.pending.Add(1)
	select {
	case p.queue <- r:
	case <-p.closing:
		p.pending.Add(-1)
		return Result{}, ErrClosed
	case <-ctx.Done():
		p.pending.Add(-1)
		return Result{}, ctx.Err()
	}
	p.statsMu.Lock()
	p.stats.OpsIngested += int64(len(ops))
	p.statsMu.Unlock()

	wait := r.done
	if !wantKeys {
		wait = r.ack
	}
	select {
	case <-wait:
	case <-ctx.Done():
		// The request is queued and WILL apply; the caller just stops
		// waiting. Report the interruption truthfully.
		return Result{}, ctx.Err()
	}
	res := Result{Applied: r.applied, Rows: r.rows}
	if wantKeys {
		res.Keys, res.Wide = r.keys, r.wide
	}
	return res, r.err
}

// Stats snapshots the plane's counters.
func (p *Plane) Stats() wire.MaintStats {
	p.statsMu.Lock()
	s := p.stats
	p.statsMu.Unlock()
	s.QueueDepth = int64(len(p.queue))
	s.QueueCap = int64(cap(p.queue))
	return s
}

// run is the flush worker: gather a batch (size/age triggers), apply,
// maintain, repeat; on close, drain and exit.
func (p *Plane) run() {
	defer p.wg.Done()
	for {
		select {
		case r := <-p.queue:
			p.applyBatch(p.gather(r))
		case <-p.closing:
			for {
				select {
				case r := <-p.queue:
					p.applyBatch(p.gather(r))
				default:
					return
				}
			}
		}
	}
}

// gather accumulates requests behind first until the batch reaches
// BatchSize ops (size flush) or MaxDelay passes (age flush).
func (p *Plane) gather(first *request) []*request {
	batch := []*request{first}
	n := len(first.ops)
	if n >= p.cfg.BatchSize {
		p.bumpFlush(true)
		return batch
	}
	timer := time.NewTimer(p.cfg.MaxDelay)
	defer timer.Stop()
	for n < p.cfg.BatchSize {
		select {
		case r := <-p.queue:
			batch = append(batch, r)
			n += len(r.ops)
		case <-timer.C:
			p.bumpFlush(false)
			return batch
		case <-p.closing:
			p.bumpFlush(false)
			return batch
		}
	}
	p.bumpFlush(true)
	return batch
}

func (p *Plane) bumpFlush(size bool) {
	p.statsMu.Lock()
	if size {
		p.stats.SizeFlushes++
	} else {
		p.stats.AgeFlushes++
	}
	p.statsMu.Unlock()
}

// applyBatch is one group commit: X-lock every view, apply the ops
// (the collector records victims), release, ack the writers, then run
// the maintenance phase and complete them.
func (p *Plane) applyBatch(batch []*request) {
	nops := 0
	for _, r := range batch {
		nops += len(r.ops)
	}
	p.statsMu.Lock()
	p.stats.Batches++
	if int64(nops) > p.stats.MaxBatchOps {
		p.stats.MaxBatchOps = int64(nops)
	}
	p.statsMu.Unlock()

	// One X-lock window per view for the whole batch — the amortized
	// ChangeBarrier. A lock that cannot be had does not block the
	// batch; that view's cache is wholly invalidated afterwards
	// (readers mid-protocol there may fail their DS audit — loud, not
	// stale).
	lockStart := time.Now()
	releases := make([]func(), 0, len(p.views))
	var unbarriered []*core.View
	for _, v := range p.views {
		release, err := v.LockForMaintenance()
		if err != nil {
			unbarriered = append(unbarriered, v)
			continue
		}
		releases = append(releases, release)
	}
	lockWait := time.Since(lockStart)

	st := &batchState{}
	p.curMu.Lock()
	p.cur = st
	p.curMu.Unlock()

	// Apply in batch order, coalescing consecutive point ops on the
	// same relation+column into one heap scan: N updates of hot keys
	// cost one pass over the heap instead of N.
	applyStart := time.Now()
	refs := make([]opRef, 0, nops)
	for _, r := range batch {
		for i := range r.ops {
			refs = append(refs, opRef{r: r, op: &r.ops[i]})
		}
	}
	var applied, opErrs, coalesced int64
	for i := 0; i < len(refs); {
		j := i + 1
		if coalescable(refs[i].op) {
			for j < len(refs) && sameRun(refs[i].op, refs[j].op) {
				j++
			}
		}
		var a, e int64
		if j-i > 1 {
			a, e = p.applyRun(refs[i:j])
			coalesced += int64(j - i)
		} else {
			a, e = p.applySingle(refs[i])
		}
		applied += a
		opErrs += e
		i = j
	}
	applyDur := time.Since(applyStart)

	p.curMu.Lock()
	p.cur = nil
	p.curMu.Unlock()
	for i := len(releases) - 1; i >= 0; i-- {
		releases[i]()
	}

	// Group commit: one WAL sync covers the whole batch, so every
	// acked request is as durable as a SyncEveryOp statement at a
	// fraction of the fsync count. A failed sync fails the batch —
	// acking would promise durability the log cannot back.
	syncStart := time.Now()
	syncErr := p.eng.SyncWAL()
	syncDur := time.Since(syncStart)
	if syncErr != nil {
		for _, r := range batch {
			if r.err == nil {
				r.err = fmt.Errorf("maint: group commit sync: %w", syncErr)
			}
		}
		if p.cfg.Logf != nil {
			p.cfg.Logf("maint: group commit sync failed: %v", syncErr)
		}
	}
	// Bill the shared fsync to every traced request in the batch —
	// each rider carries the full sync duration (they all waited for
	// it) and one attributed fsync, with N1 recording how many requests
	// shared the group commit. Delivered through AddSpans because the
	// flush worker is not the trace's owner goroutine, and before ack
	// so the span is visible the moment Apply returns.
	for _, r := range batch {
		if r.tr != nil {
			r.tr.AddSpans(obs.Span{
				Kind:   obs.KindSync,
				Start:  syncStart.Sub(r.tr.Begin),
				Dur:    syncDur,
				N1:     int64(len(batch)),
				Fsyncs: 1,
			})
		}
	}
	for _, r := range batch {
		close(r.ack)
	}

	keys, wide := p.maintain(st, unbarriered)

	p.statsMu.Lock()
	p.stats.OpsApplied += applied
	p.stats.OpErrors += opErrs
	p.stats.CoalescedOps += coalesced
	p.stats.GroupSyncs++
	p.stats.SyncNs += syncDur.Nanoseconds()
	p.stats.LockWaitNs += lockWait.Nanoseconds()
	p.stats.ApplyNs += applyDur.Nanoseconds()
	p.statsMu.Unlock()

	for _, r := range batch {
		r.keys, r.wide = keys, wide
		p.pending.Add(-1)
		close(r.done)
	}
}

// applyOp executes one ΔR statement through the engine's DML. The
// plane holds the views' X locks, so no per-statement barrier fires
// (the views are detached; the collector has none).
func (p *Plane) applyOp(op *wire.UpdateOp) (int, error) {
	switch op.Kind {
	case wire.OpInsert:
		if err := p.eng.Insert(op.Rel, op.Tuple); err != nil {
			return 0, err
		}
		return 1, nil
	case wire.OpDelete:
		pred, err := p.eqPred(op.Rel, op.Col, op.Val)
		if err != nil {
			return 0, err
		}
		victims, err := p.eng.DeleteWhere(op.Rel, pred)
		return len(victims), err
	case wire.OpUpdate:
		pred, err := p.eqPred(op.Rel, op.Col, op.Val)
		if err != nil {
			return 0, err
		}
		r, err := p.eng.Catalog().GetRelation(op.Rel)
		if err != nil {
			return 0, err
		}
		si := r.Schema.ColIndex(op.SetCol)
		if si < 0 {
			return 0, fmt.Errorf("maint: relation %s has no column %s", op.Rel, op.SetCol)
		}
		set := op.SetVal
		return p.eng.UpdateWhere(op.Rel, pred, func(t value.Tuple) value.Tuple {
			t[si] = set
			return t
		})
	default:
		return 0, fmt.Errorf("maint: unknown op kind %d", op.Kind)
	}
}

// opRef ties one op back to the request it rode in, for per-request
// applied/rows accounting across coalesced runs.
type opRef struct {
	r  *request
	op *wire.UpdateOp
}

// coalescable reports whether an op may share a scan with neighbours:
// point deletes always; point updates only when they leave their own
// match column untouched (an op that moves a tuple between match
// values must see the heap state its predecessors left).
func coalescable(op *wire.UpdateOp) bool {
	switch op.Kind {
	case wire.OpDelete:
		return true
	case wire.OpUpdate:
		return op.SetCol != op.Col
	}
	return false
}

// sameRun reports whether b can join a's run: same kind, relation, and
// match column, so one scan's predicate covers both.
func sameRun(a, b *wire.UpdateOp) bool {
	return coalescable(b) && a.Kind == b.Kind && a.Rel == b.Rel && a.Col == b.Col
}

// applySingle runs one op through the per-op engine path.
func (p *Plane) applySingle(ref opRef) (applied, errs int64) {
	rows, err := p.applyOp(ref.op)
	if err != nil {
		if ref.r.err == nil {
			ref.r.err = err
		}
		return 0, 1
	}
	ref.r.applied++
	ref.r.rows += rows
	return 1, 0
}

// applyRun executes a coalesced run — ≥2 point ops on the same
// relation and match column — in one heap scan. Equivalence with the
// sequential application holds because no op in a run changes its own
// match column (see coalescable), so the set of matching tuples is
// fixed for the whole run; ops hitting the same tuple apply in batch
// order inside the scan. On an engine error the whole run is reported
// failed (the scan cannot say which ops landed).
func (p *Plane) applyRun(run []opRef) (applied, errs int64) {
	first := run[0].op
	rel, err := p.eng.Catalog().GetRelation(first.Rel)
	if err != nil {
		return p.failRun(run, err)
	}
	ci := rel.Schema.ColIndex(first.Col)
	if ci < 0 {
		return p.failRun(run, fmt.Errorf("maint: relation %s has no column %s", first.Rel, first.Col))
	}
	byVal := make(map[string][]int, len(run))
	for i, ref := range run {
		byVal[valKey(ref.op.Val)] = append(byVal[valKey(ref.op.Val)], i)
	}
	pred := func(t value.Tuple) bool {
		_, ok := byVal[valKey(t[ci])]
		return ok
	}

	switch first.Kind {
	case wire.OpDelete:
		victims, derr := p.eng.DeleteWhere(first.Rel, pred)
		// A value dueling over several delete ops belongs to the first:
		// sequentially, later ops would find the tuples already gone.
		for _, t := range victims {
			run[byVal[valKey(t[ci])][0]].r.rows++
		}
		if derr != nil {
			return p.failRun(run, derr)
		}
	case wire.OpUpdate:
		setIdx := make([]int, len(run))
		for i, ref := range run {
			if setIdx[i] = rel.Schema.ColIndex(ref.op.SetCol); setIdx[i] < 0 {
				return p.failRun(run, fmt.Errorf("maint: relation %s has no column %s", first.Rel, ref.op.SetCol))
			}
		}
		_, uerr := p.eng.UpdateWhere(first.Rel, pred, func(t value.Tuple) value.Tuple {
			for _, i := range byVal[valKey(t[ci])] {
				t[setIdx[i]] = run[i].op.SetVal
				run[i].r.rows++
			}
			return t
		})
		if uerr != nil {
			return p.failRun(run, uerr)
		}
	}
	for _, ref := range run {
		ref.r.applied++
	}
	return int64(len(run)), 0
}

// failRun marks every request in the run with err.
func (p *Plane) failRun(run []opRef, err error) (applied, errs int64) {
	for _, ref := range run {
		if ref.r.err == nil {
			ref.r.err = err
		}
	}
	return 0, int64(len(run))
}

// valKey encodes a value for run-local map lookup.
func valKey(v value.Value) string {
	return string(keycodec.AppendValue(nil, v))
}

func (p *Plane) eqPred(rel, col string, val value.Value) (func(value.Tuple) bool, error) {
	r, err := p.eng.Catalog().GetRelation(rel)
	if err != nil {
		return nil, err
	}
	ci := r.Schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("maint: relation %s has no column %s", rel, col)
	}
	return func(t value.Tuple) bool { return value.Equal(t[ci], val) }, nil
}

// maintain runs the post-ack maintenance phase for one batch: compute
// affected keys per view, classify heavy/light, purge or bump.
func (p *Plane) maintain(st *batchState, unbarriered []*core.View) (map[string][]string, map[string]bool) {
	start := time.Now()
	keys := make(map[string][]string)
	wide := make(map[string]bool)
	for _, v := range unbarriered {
		wide[v.Name()] = true
	}
	var affected, heavyN, lightN, purgedE, purgedT, bumps, wides, degrades int64

	for _, v := range p.views {
		name := v.Name()
		for _, rel := range st.inserts {
			v.NoteInsert(rel)
		}
		seen := make(map[string]bool)
		var vkeys []string
		for i := range st.victims {
			vic := &st.victims[i]
			if !v.InTemplate(vic.rel) {
				continue
			}
			if vic.new != nil {
				changed, err := v.UpdateAffects(vic.rel, vic.old, vic.new)
				if err != nil {
					wide[name] = true
					continue
				}
				if !changed {
					continue
				}
			}
			v.NoteDelete(vic.rel)
			ks, w := v.AffectedKeys(vic.rel, vic.old)
			if w {
				wide[name] = true
				continue
			}
			for _, k := range ks {
				if !seen[k] {
					seen[k] = true
					vkeys = append(vkeys, k)
				}
			}
		}
		keys[name] = vkeys
		affected += int64(len(vkeys))

		if wide[name] {
			v.BumpAllGen()
			wides++
			continue
		}
		var light, heavy []string
		for _, k := range vkeys {
			if p.class.heavy(name + "\x00" + k) {
				heavy = append(heavy, k)
			} else {
				light = append(light, k)
			}
		}
		heavyN += int64(len(heavy))
		lightN += int64(len(light))
		if len(light) > 0 {
			e, t, degraded := v.PurgeKeys(light)
			purgedE += int64(e)
			purgedT += int64(t)
			if degraded {
				degrades++
				bumps += int64(len(light))
			}
		}
		if len(heavy) > 0 {
			v.BumpKeyGens(heavy)
			bumps += int64(len(heavy))
		}
	}

	p.statsMu.Lock()
	p.stats.KeysAffected += affected
	p.stats.HeavyKeys += heavyN
	p.stats.LightKeys += lightN
	p.stats.EntriesPurged += purgedE
	p.stats.TuplesPurged += purgedT
	p.stats.KeyGenBumps += bumps
	p.stats.WideGenBumps += wides
	p.stats.PurgeDegrades += degrades
	p.stats.MaintNs += time.Since(start).Nanoseconds()
	p.statsMu.Unlock()
	return keys, wide
}

// collector is the engine observer standing in for the detached
// views: it records each mutation into the current batch state. It
// deliberately does NOT implement engine.ChangeBarrier — the plane
// already holds the views' X locks across the batch, and a barrier
// here would self-deadlock against them.
//
// Out-of-band DML (anything mutating the engine while a Plane is
// attached but outside its flush worker) has no batch to ride: an
// insert is harmless (inserts never invalidate), but a delete/update
// wholesale-invalidates every view caching the relation — the safe
// degradation for writes that bypassed the plane.
type collector struct {
	p *Plane
}

func (c *collector) OnInsert(rel string, _ value.Tuple) error {
	p := c.p
	p.curMu.Lock()
	if p.cur != nil {
		p.cur.inserts = append(p.cur.inserts, rel)
		p.curMu.Unlock()
		return nil
	}
	p.curMu.Unlock()
	for _, v := range p.views {
		v.NoteInsert(rel)
	}
	return nil
}

func (c *collector) OnDelete(rel string, t value.Tuple) error {
	return c.record(rel, t, nil)
}

func (c *collector) OnUpdate(rel string, old, new value.Tuple) error {
	return c.record(rel, old, new)
}

func (c *collector) record(rel string, old, new value.Tuple) error {
	p := c.p
	p.curMu.Lock()
	if p.cur != nil {
		p.cur.victims = append(p.cur.victims, victim{rel: rel, old: old.Clone(), new: cloneOrNil(new)})
		p.curMu.Unlock()
		return nil
	}
	p.curMu.Unlock()
	for _, v := range p.views {
		if v.InTemplate(rel) {
			v.BumpAllGen()
		}
	}
	if p.cfg.Logf != nil {
		p.cfg.Logf("maint: out-of-band %s mutation invalidated attached views", rel)
	}
	return nil
}

func cloneOrNil(t value.Tuple) value.Tuple {
	if t == nil {
		return nil
	}
	return t.Clone()
}

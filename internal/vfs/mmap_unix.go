//go:build unix

package vfs

import "syscall"

// Mmap implements MemMapper for real OS files: a read-only shared
// mapping of the file's first length bytes. Callers must not write
// through the returned slice and must call unmap exactly once.
func (f osFile) Mmap(length int64) ([]byte, func() error, error) {
	if length <= 0 || int64(int(length)) != length {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.File.Fd()), 0, int(length), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

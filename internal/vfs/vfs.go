// Package vfs is the file-abstraction seam every byte the engine
// persists flows through: the disk manager, the write-ahead log, and
// the JSON metadata files all open their files via an FS. The OS
// implementation is a thin passthrough to *os.File; the fault-injecting
// implementation (fault.go) simulates torn writes, failed fsyncs,
// read-side corruption, and hard crashes for the recovery torture
// harness.
package vfs

import (
	"fmt"
	"io"
	"os"
)

// FileInfo is the minimal metadata the engine needs from Stat.
type FileInfo struct {
	// Size is the file's current length in bytes.
	Size int64
}

// File is one open file. Implementations must be safe for concurrent
// use by multiple goroutines.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync flushes all written data to stable storage. Data not yet
	// synced does not survive a (simulated) machine crash.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Stat reports the file's current size.
	Stat() (FileInfo, error)
	// Close releases the handle without implying durability.
	Close() error
}

// FS opens and manages files by path.
type FS interface {
	// OpenFile opens path read-write, creating it when absent.
	OpenFile(path string) (File, error)
	// MkdirAll creates the directory path with any missing parents.
	MkdirAll(path string) error
	// Remove deletes path; removing an absent file is not an error.
	Remove(path string) error
	// ReadFile returns the full contents of path. An absent file
	// yields an error satisfying errors.Is(err, os.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// WriteFile replaces path with data and syncs it to stable
	// storage before returning.
	WriteFile(path string, data []byte) error
}

// MemMapper is an optional File capability: map the file's first
// length bytes read-only into memory. The snapshot boot path uses it
// to validate a snapshot without copying it through the heap; files
// that do not implement it (the fault-injecting FS) are read normally,
// which keeps the whole path under fault injection. The returned unmap
// must be called exactly once, after which the mapping is invalid.
type MemMapper interface {
	Mmap(length int64) (data []byte, unmap func() error, err error)
}

// OS returns the passthrough filesystem over the real OS.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) Remove(path string) error {
	err := os.Remove(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("vfs: sync %s: %w", path, err)
	}
	return f.Close()
}

// osFile adapts *os.File's Stat to the narrow FileInfo.
type osFile struct{ *os.File }

func (f osFile) Stat() (FileInfo, error) {
	info, err := f.File.Stat()
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Size: info.Size()}, nil
}

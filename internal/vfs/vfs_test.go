package vfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	path := filepath.Join(dir, "a.bin")
	f, err := fs.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil || info.Size != 11 {
		t.Fatalf("stat: %v size %d", err, info.Size)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("read %q", buf)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if info, _ := f.Stat(); info.Size != 5 {
		t.Fatalf("size after truncate: %d", info.Size)
	}
	f.Close()

	if err := fs.WriteFile(path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(path)
	if err != nil || string(data) != "x" {
		t.Fatalf("ReadFile: %v %q", err, data)
	}
	if err := fs.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(path); err != nil {
		t.Fatalf("double remove: %v", err)
	}
	if _, err := fs.ReadFile(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func openFaulty(t *testing.T, inj *Injector) (*Faulty, string) {
	t.Helper()
	fs := NewFaulty(OS(), inj)
	return fs, filepath.Join(t.TempDir(), "f.bin")
}

func TestFaultyUnsyncedWritesLostOnCrash(t *testing.T) {
	inj := NewInjector(1)
	fs, path := openFaulty(t, inj)
	f, err := fs.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("durable!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("volatile"), 8); err != nil {
		t.Fatal(err)
	}
	// Reads see the cache image before the crash.
	buf := make([]byte, 16)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable!volatile" {
		t.Fatalf("cache image %q", buf)
	}

	inj.Crash()
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	if _, err := f.WriteAt([]byte("z"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	f.Close()

	// The durable image holds only the synced prefix.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable!" {
		t.Fatalf("durable image %q", got)
	}
}

func TestFaultyCrashDuringSyncKeepsPrefix(t *testing.T) {
	// Across seeds, a crash firing on the Sync must leave some prefix
	// of the pending writes durable — never a suffix without its
	// prefix, and never bytes past the torn extension cut.
	sawPartial := false
	for seed := int64(0); seed < 20; seed++ {
		inj := NewInjector(seed)
		inj.Add(Rule{Kind: FaultCrash, Op: OpSync, AfterOps: 1})
		fs := NewFaulty(OS(), inj)
		path := filepath.Join(t.TempDir(), "f.bin")
		f, _ := fs.OpenFile(path)
		var want []byte
		for i := 0; i < 8; i++ {
			chunk := bytes.Repeat([]byte{byte('a' + i)}, 100)
			if _, err := f.WriteAt(chunk, int64(i)*100); err != nil {
				t.Fatal(err)
			}
			want = append(want, chunk...)
		}
		if err := f.Sync(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("seed %d: sync: %v", seed, err)
		}
		f.Close()
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[:len(got)]) {
			t.Fatalf("seed %d: durable bytes are not a prefix of the write sequence", seed)
		}
		if len(got) > 0 && len(got) < len(want) {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("no seed produced a partial flush — prefix logic suspect")
	}
}

func TestFaultyTornWrite(t *testing.T) {
	inj := NewInjector(7)
	inj.Add(Rule{Kind: FaultTornWrite, Op: OpWrite, AfterOps: 2})
	fs, path := openFaulty(t, inj)
	f, _ := fs.OpenFile(path)
	if _, err := f.WriteAt(bytes.Repeat([]byte{1}, 64), 0); err != nil {
		t.Fatal(err)
	}
	n, err := f.WriteAt(bytes.Repeat([]byte{2}, 64), 64)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err: %v", err)
	}
	if n >= 64 {
		t.Fatalf("torn write applied %d of 64 bytes", n)
	}
	info, _ := f.Stat()
	if info.Size != 64+int64(n) {
		t.Fatalf("size %d after torn write of %d", info.Size, n)
	}
	if st := inj.Stats(); st.TornWrites != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFaultyStickySyncFailure(t *testing.T) {
	inj := NewInjector(3)
	inj.Add(Rule{Kind: FaultSyncFail, Op: OpSync, AfterOps: 1, Sticky: true})
	fs, path := openFaulty(t, inj)
	f, _ := fs.OpenFile(path)
	f.WriteAt([]byte("data"), 0)
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if len(got) != 0 {
		t.Fatalf("failed syncs leaked %d bytes to the durable image", len(got))
	}
}

func TestFaultyCorruptRead(t *testing.T) {
	inj := NewInjector(5)
	inj.Add(Rule{Kind: FaultCorruptRead, Op: OpRead, AfterOps: 1})
	fs, path := openFaulty(t, inj)
	f, _ := fs.OpenFile(path)
	orig := bytes.Repeat([]byte{0xAA}, 32)
	f.WriteAt(orig, 0)
	buf := make([]byte, 32)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, orig) {
		t.Fatal("corrupt read returned pristine data")
	}
	// Exactly one bit differs.
	diff := 0
	for i := range buf {
		for b := buf[i] ^ orig[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want 1", diff)
	}
	// The cache image itself is untouched: the next read is clean.
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("second read still corrupt; fault should be read-side only")
	}
}

func TestFaultyProbabilisticRule(t *testing.T) {
	inj := NewInjector(11)
	inj.Add(Rule{Kind: FaultError, Op: OpWrite, Prob: 0.5, Sticky: true})
	fs, path := openFaulty(t, inj)
	f, _ := fs.OpenFile(path)
	failed := 0
	for i := 0; i < 100; i++ {
		if _, err := f.WriteAt([]byte{1}, int64(i)); err != nil {
			failed++
		}
	}
	if failed < 20 || failed > 80 {
		t.Fatalf("p=0.5 rule failed %d/100 writes", failed)
	}
}

func TestFaultyTruncateSurvivesSync(t *testing.T) {
	inj := NewInjector(9)
	fs, path := openFaulty(t, inj)
	f, _ := fs.OpenFile(path)
	f.WriteAt(bytes.Repeat([]byte{7}, 100), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("tail"), 10)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if len(got) != 14 || string(got[10:]) != "tail" {
		t.Fatalf("durable image after truncate+write: %d bytes %q", len(got), got)
	}

	// Reopen through the faulty layer: image matches durable content.
	f2, err := fs.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 14)
	if _, err := f2.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[10:]) != "tail" {
		t.Fatalf("reopened image %q", buf)
	}
}

package vfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
)

// Injected-fault sentinel errors.
var (
	// ErrInjected marks an operation failed by a non-crash failpoint.
	ErrInjected = errors.New("vfs: injected fault")
	// ErrCrashed marks every operation after a simulated machine
	// crash: the process keeps running but all I/O is dead, and writes
	// that were never synced are lost.
	ErrCrashed = errors.New("vfs: simulated crash")
)

// FaultKind selects what an armed Rule does when it fires.
type FaultKind uint8

const (
	// FaultError fails the operation with ErrInjected, no side effects.
	FaultError FaultKind = iota
	// FaultTornWrite applies only a random prefix of the write to the
	// file before failing (a short write the caller must handle).
	FaultTornWrite
	// FaultSyncFail fails Sync; nothing reaches stable storage, and
	// the unsynced data stays volatile (the fsync-gate scenario).
	FaultSyncFail
	// FaultCorruptRead flips one random bit in the returned buffer
	// (bit rot / misdirected read surfaced to the checksum layer).
	FaultCorruptRead
	// FaultCrash simulates a machine crash: the operation fails,
	// every later operation on the filesystem fails with ErrCrashed,
	// and all unsynced writes are discarded (lost page cache). When
	// the crash fires on a Sync, a crash-consistent prefix of the
	// pending write sequence becomes durable first, and an extending
	// write at the cut may be torn at byte granularity (torn WAL tail,
	// torn trailing page).
	FaultCrash
)

// String names the fault kind for diagnostics.
func (k FaultKind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultTornWrite:
		return "torn-write"
	case FaultSyncFail:
		return "sync-fail"
	case FaultCorruptRead:
		return "corrupt-read"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("fault(%d)", k)
	}
}

// Op classifies file operations for rule matching.
type Op uint8

// Operations a Rule can match.
const (
	OpOpen Op = iota
	OpRead
	OpWrite
	OpSync
	OpTruncate
	// OpAny matches every operation.
	OpAny
)

// Rule arms one failpoint. A rule fires on operations matching Op and
// Path when either its scripted trigger (AfterOps matching operations
// seen) or its probabilistic trigger (Prob per matching operation)
// goes off.
type Rule struct {
	Kind FaultKind
	// Op restricts which operations the rule matches (OpAny = all).
	Op Op
	// Path, when non-empty, restricts the rule to files whose path
	// contains it as a substring.
	Path string
	// AfterOps fires the rule on the Nth matching operation (1-based).
	// Zero disables the scripted trigger.
	AfterOps int64
	// Prob fires the rule on each matching operation with this
	// probability, using the injector's seeded generator.
	Prob float64
	// Sticky keeps the rule armed after it fires (sync failures are
	// typically sticky; a crash is inherently sticky).
	Sticky bool
}

// FaultStats counts injected faults by kind, plus the total number of
// fault-eligible operations observed.
type FaultStats struct {
	Ops          int64
	Errors       int64
	TornWrites   int64
	SyncFailures int64
	CorruptReads int64
	Crashes      int64
}

// Injector owns the fault schedule shared by every file of a Faulty
// filesystem. All decisions come from one seeded generator, so a seed
// fully determines the fault sequence for a deterministic workload.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   []Rule
	matched []int64 // per-rule count of matching operations
	fired   []bool
	crashed bool
	stats   FaultStats
}

// NewInjector returns an injector with no rules armed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Add arms one rule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
	in.matched = append(in.matched, 0)
	in.fired = append(in.fired, false)
}

// Crash crashes the filesystem immediately (between operations).
func (in *Injector) Crash() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.crashed {
		in.crashed = true
		in.stats.Crashes++
	}
}

// Crashed reports whether a crash fault has fired.
func (in *Injector) Crashed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Stats returns the fault counters.
func (in *Injector) Stats() FaultStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// decide records one operation and returns the fault to apply, if
// any. A nil injector never faults (pure passthrough).
func (in *Injector) decide(op Op, path string) (FaultKind, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return FaultCrash, true
	}
	in.stats.Ops++
	for i := range in.rules {
		r := &in.rules[i]
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		in.matched[i]++
		if in.fired[i] && !r.Sticky {
			continue
		}
		trigger := (r.AfterOps > 0 && in.matched[i] >= r.AfterOps) ||
			(r.Prob > 0 && in.rng.Float64() < r.Prob)
		if !trigger {
			continue
		}
		in.fired[i] = true
		switch r.Kind {
		case FaultError:
			in.stats.Errors++
		case FaultTornWrite:
			in.stats.TornWrites++
		case FaultSyncFail:
			in.stats.SyncFailures++
		case FaultCorruptRead:
			in.stats.CorruptReads++
		case FaultCrash:
			in.stats.Crashes++
			in.crashed = true
		}
		return r.Kind, true
	}
	return 0, false
}

// intn returns a seeded random int in [0, n).
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return in.rng.Intn(n)
}

func faultErr(kind FaultKind, op, path string) error {
	if kind == FaultCrash {
		return fmt.Errorf("vfs: %s %s: %w", op, path, ErrCrashed)
	}
	return fmt.Errorf("vfs: %s %s (%s): %w", op, path, kind, ErrInjected)
}

// Faulty is a fault-injecting filesystem layered over an inner FS.
//
// It models the OS page cache explicitly: WriteAt and Truncate change
// only an in-memory image; Sync makes the accumulated changes durable
// in the inner filesystem. A simulated crash therefore loses exactly
// the writes that were never synced — the semantics a write-ahead log
// must survive. When the crash fires during a Sync, a crash-consistent
// prefix of the pending operation sequence becomes durable, and an
// extending write at the cut point may be torn at an arbitrary byte
// (producing torn WAL tails and torn trailing pages). Interior
// overwrites are atomic at WriteAt granularity — the engine has no
// full-page-write protection, so the fault model documents page-write
// atomicity as an assumption rather than injecting unrecoverable torn
// interior pages.
type Faulty struct {
	inner FS
	inj   *Injector
}

// NewFaulty wraps inner with the fault schedule of inj.
func NewFaulty(inner FS, inj *Injector) *Faulty {
	return &Faulty{inner: inner, inj: inj}
}

// Injector returns the shared fault schedule.
func (fs *Faulty) Injector() *Injector { return fs.inj }

// OpenFile opens path, loading its durable content as the initial
// cache image.
func (fs *Faulty) OpenFile(path string) (File, error) {
	if kind, hit := fs.inj.decide(OpOpen, path); hit {
		return nil, faultErr(kind, "open", path)
	}
	f, err := fs.inner.OpenFile(path)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	data := make([]byte, info.Size)
	if info.Size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &faultyFile{fs: fs, path: path, inner: f, data: data, durable: info.Size}, nil
}

// MkdirAll passes through (directories are created once, before any
// interesting failure window).
func (fs *Faulty) MkdirAll(path string) error { return fs.inner.MkdirAll(path) }

// Remove deletes path unless the filesystem has crashed.
func (fs *Faulty) Remove(path string) error {
	if kind, hit := fs.inj.decide(OpWrite, path); hit && kind == FaultCrash {
		return faultErr(kind, "remove", path)
	}
	return fs.inner.Remove(path)
}

// ReadFile reads path's durable content, subject to read faults.
func (fs *Faulty) ReadFile(path string) ([]byte, error) {
	kind, hit := fs.inj.decide(OpRead, path)
	if hit && kind != FaultCorruptRead {
		return nil, faultErr(kind, "read", path)
	}
	data, err := fs.inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if hit && kind == FaultCorruptRead && len(data) > 0 {
		i := fs.inj.intn(len(data))
		data[i] ^= 1 << uint(fs.inj.intn(8))
	}
	return data, nil
}

// WriteFile durably replaces path. Faults fail the operation without
// partial effects (metadata replacement is modeled atomic).
func (fs *Faulty) WriteFile(path string, data []byte) error {
	if kind, hit := fs.inj.decide(OpWrite, path); hit {
		return faultErr(kind, "write", path)
	}
	return fs.inner.WriteFile(path, data)
}

// pendingOp is one cache mutation not yet made durable: a write
// (data != nil) or a truncate.
type pendingOp struct {
	off  int64
	data []byte
	size int64 // truncate target when data == nil
}

type faultyFile struct {
	fs    *Faulty
	path  string
	inner File

	mu      sync.Mutex
	data    []byte      // the page-cache image all reads and writes hit
	pending []pendingOp // mutations since the last successful Sync
	durable int64       // inner file size (durable image length)
	closed  bool
}

func (f *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("vfs: read %s: %w", f.path, os.ErrClosed)
	}
	kind, hit := f.fs.inj.decide(OpRead, f.path)
	if hit && kind != FaultCorruptRead {
		return 0, faultErr(kind, "read", f.path)
	}
	if off < 0 {
		return 0, errors.New("vfs: negative offset")
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if hit && kind == FaultCorruptRead && n > 0 {
		i := f.fs.inj.intn(n)
		p[i] ^= 1 << uint(f.fs.inj.intn(8))
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *faultyFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	kind, hit := f.fs.inj.decide(OpWrite, f.path)
	if hit && (kind == FaultCrash || kind == FaultError || kind == FaultSyncFail) {
		if kind == FaultSyncFail {
			kind = FaultError // sync-fail rules matched to writes degrade to plain errors
		}
		return 0, faultErr(kind, "write", f.path)
	}
	n := len(p)
	torn := hit && kind == FaultTornWrite
	if torn {
		n = f.fs.inj.intn(len(p)) // strict prefix
	}
	f.applyWrite(p[:n], off)
	if torn {
		return n, faultErr(FaultTornWrite, "write", f.path)
	}
	return n, nil
}

// applyWrite applies one write to the cache image and records it as
// pending.
func (f *faultyFile) applyWrite(p []byte, off int64) {
	if len(p) == 0 {
		return
	}
	if end := off + int64(len(p)); end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], p)
	f.pending = append(f.pending, pendingOp{off: off, data: append([]byte(nil), p...)})
}

func (f *faultyFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if kind, hit := f.fs.inj.decide(OpTruncate, f.path); hit {
		return faultErr(kind, "truncate", f.path)
	}
	if size < 0 {
		return errors.New("vfs: negative truncate")
	}
	if size <= int64(len(f.data)) {
		f.data = f.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.data)
		f.data = grown
	}
	f.pending = append(f.pending, pendingOp{size: size})
	return nil
}

// Sync makes the pending mutations durable. On an injected crash, a
// crash-consistent prefix of the pending sequence reaches the inner
// file first; an extending write at the cut may be torn.
func (f *faultyFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	alreadyCrashed := f.fs.inj.Crashed()
	kind, hit := f.fs.inj.decide(OpSync, f.path)
	switch {
	case hit && kind == FaultCrash:
		// Only a crash firing during THIS sync flushes a partial
		// prefix; once the machine is down nothing more reaches disk.
		if !alreadyCrashed {
			f.flushPrefixLocked(f.fs.inj.intn(len(f.pending) + 1))
		}
		return faultErr(FaultCrash, "sync", f.path)
	case hit:
		// Sync failed: nothing became durable, data stays volatile.
		return faultErr(kind, "sync", f.path)
	}
	if err := f.flushAllLocked(); err != nil {
		return err
	}
	return f.inner.Sync()
}

// flushAllLocked applies every pending op to the inner file.
func (f *faultyFile) flushAllLocked() error {
	for _, op := range f.pending {
		if op.data == nil {
			if err := f.inner.Truncate(op.size); err != nil {
				return err
			}
			f.durable = op.size
			continue
		}
		if _, err := f.inner.WriteAt(op.data, op.off); err != nil {
			return err
		}
		if end := op.off + int64(len(op.data)); end > f.durable {
			f.durable = end
		}
	}
	f.pending = nil
	return nil
}

// flushPrefixLocked durably applies the first k pending ops, tearing
// the k+1st at a random byte when it extends the durable image (a
// partial file extension: torn WAL tail, torn trailing page).
func (f *faultyFile) flushPrefixLocked(k int) {
	for _, op := range f.pending[:k] {
		if op.data == nil {
			if f.inner.Truncate(op.size) == nil {
				f.durable = op.size
			}
			continue
		}
		if _, err := f.inner.WriteAt(op.data, op.off); err == nil {
			if end := op.off + int64(len(op.data)); end > f.durable {
				f.durable = end
			}
		}
	}
	if k < len(f.pending) {
		op := f.pending[k]
		if op.data != nil && op.off+int64(len(op.data)) > f.durable {
			if n := f.fs.inj.intn(len(op.data)); n > 0 {
				f.inner.WriteAt(op.data[:n], op.off)
			}
		}
	}
	f.pending = nil
}

func (f *faultyFile) Stat() (FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FileInfo{Size: int64(len(f.data))}, nil
}

// Close releases the inner handle. Unsynced data is discarded — like
// the real page cache, durability comes only from Sync.
func (f *faultyFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	return f.inner.Close()
}

package exec

import (
	"math/rand"
	"sort"
	"testing"

	"pmv/internal/catalog"
	"pmv/internal/expr"
	"pmv/internal/value"
)

func ivOf(lo, hi int64) expr.Interval {
	return expr.Interval{Lo: value.Int(lo), Hi: value.Int(hi), LoIncl: true, HiIncl: false}
}

// planDB builds R(a, c, f), S(d, e, g) with indexes, deterministic
// contents, and a brute-force oracle.
type planDB struct {
	cat   *catalog.Catalog
	rRows []value.Tuple
	sRows []value.Tuple
	tpl   *expr.Template
}

func newPlanDB(t *testing.T, withIndexes bool) *planDB {
	t.Helper()
	c := testCatalog(t)
	r, _ := c.CreateRelation("R", catalog.NewSchema(
		catalog.Col("a", value.TypeInt), catalog.Col("c", value.TypeInt), catalog.Col("f", value.TypeInt)))
	s, _ := c.CreateRelation("S", catalog.NewSchema(
		catalog.Col("d", value.TypeInt), catalog.Col("e", value.TypeInt), catalog.Col("g", value.TypeInt)))
	db := &planDB{cat: c}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		tup := value.Tuple{value.Int(int64(i)), value.Int(rng.Int63n(40)), value.Int(rng.Int63n(8))}
		r.Heap.Insert(tup)
		db.rRows = append(db.rRows, tup)
	}
	for i := 0; i < 120; i++ {
		tup := value.Tuple{value.Int(rng.Int63n(40)), value.Int(int64(1000 + i)), value.Int(rng.Int63n(8))}
		s.Heap.Insert(tup)
		db.sRows = append(db.sRows, tup)
	}
	if withIndexes {
		c.CreateIndex("", "R", "c")
		c.CreateIndex("r_f", "R", "f")
		c.CreateIndex("s_d", "S", "d")
		c.CreateIndex("s_g", "S", "g")
	}
	db.tpl = &expr.Template{
		Name:      "eqt",
		Relations: []string{"R", "S"},
		Select:    []expr.ColumnRef{{Rel: "R", Col: "a"}, {Rel: "S", Col: "e"}},
		Join: []expr.JoinPred{{
			Left:  expr.ColumnRef{Rel: "R", Col: "c"},
			Right: expr.ColumnRef{Rel: "S", Col: "d"},
		}},
		Conds: []expr.CondTemplate{
			{Col: expr.ColumnRef{Rel: "R", Col: "f"}, Form: expr.EqualityForm},
			{Col: expr.ColumnRef{Rel: "S", Col: "g"}, Form: expr.IntervalForm},
		},
	}
	return db
}

// oracle computes the join brute-force.
func (db *planDB) oracle(q *expr.Query) []string {
	var out []string
	for _, rt := range db.rRows {
		if !q.Conds[0].Matches(expr.EqualityForm, rt[2]) {
			continue
		}
		for _, st := range db.sRows {
			if !value.Equal(rt[1], st[0]) {
				continue
			}
			if !q.Conds[1].Matches(expr.IntervalForm, st[2]) {
				continue
			}
			out = append(out, value.Tuple{rt[0], st[1]}.String())
		}
	}
	sort.Strings(out)
	return out
}

func runPlan(t *testing.T, cat *catalog.Catalog, q *expr.Query) []string {
	t.Helper()
	plan, err := PlanQuery(cat, q)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	aPos, err := plan.Schema.MustIndex(expr.ColumnRef{Rel: "R", Col: "a"})
	if err != nil {
		t.Fatal(err)
	}
	ePos, err := plan.Schema.MustIndex(expr.ColumnRef{Rel: "S", Col: "e"})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	err = ForEach(&Project{Child: plan.Root, Cols: []int{aPos, ePos}}, func(tp value.Tuple) error {
		out = append(out, tp.String())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

func eqStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlannerMatchesOracle(t *testing.T) {
	for _, withIdx := range []bool{true, false} {
		name := "indexed"
		if !withIdx {
			name = "scans-only"
		}
		t.Run(name, func(t *testing.T) {
			db := newPlanDB(t, withIdx)
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 30; i++ {
				var fs []value.Value
				seen := map[int64]bool{}
				for n := 0; n < 1+rng.Intn(3); n++ {
					v := rng.Int63n(8)
					if seen[v] {
						continue
					}
					seen[v] = true
					fs = append(fs, value.Int(v))
				}
				lo := rng.Int63n(8)
				q := &expr.Query{
					Template: db.tpl,
					Conds: []expr.CondInstance{
						{Values: fs},
						{Intervals: []expr.Interval{ivOf(lo, lo+1+rng.Int63n(4))}},
					},
				}
				got := runPlan(t, db.cat, q)
				want := db.oracle(q)
				if !eqStrs(got, want) {
					t.Fatalf("query %d: got %d rows, oracle %d rows", i, len(got), len(want))
				}
			}
		})
	}
}

func TestPlannerMultipleIntervals(t *testing.T) {
	db := newPlanDB(t, true)
	q := &expr.Query{
		Template: db.tpl,
		Conds: []expr.CondInstance{
			{Values: []value.Value{value.Int(1), value.Int(3), value.Int(5)}},
			{Intervals: []expr.Interval{ivOf(0, 2), ivOf(5, 7)}},
		},
	}
	if got, want := runPlan(t, db.cat, q), db.oracle(q); !eqStrs(got, want) {
		t.Fatalf("got %d rows, oracle %d", len(got), len(want))
	}
}

func TestPlannerFixedPredicates(t *testing.T) {
	db := newPlanDB(t, true)
	db.tpl.Fixed = []expr.FixedPred{{
		Col: expr.ColumnRef{Rel: "R", Col: "a"}, Op: expr.OpLt, Val: value.Int(100),
	}}
	q := &expr.Query{
		Template: db.tpl,
		Conds: []expr.CondInstance{
			{Values: []value.Value{value.Int(2)}},
			{Intervals: []expr.Interval{ivOf(0, 8)}},
		},
	}
	got := runPlan(t, db.cat, q)
	// Oracle with the fixed predicate applied by hand.
	var want []string
	for _, rt := range db.rRows {
		if rt[0].Int64() >= 100 || rt[2].Int64() != 2 {
			continue
		}
		for _, st := range db.sRows {
			if value.Equal(rt[1], st[0]) && st[2].Int64() >= 0 && st[2].Int64() < 8 {
				want = append(want, value.Tuple{rt[0], st[1]}.String())
			}
		}
	}
	sort.Strings(want)
	if !eqStrs(got, want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
}

func TestPlannerThreeWayJoin(t *testing.T) {
	db := newPlanDB(t, true)
	// Add a third relation U(k, m) joined on S.e = U.k.
	u, _ := db.cat.CreateRelation("U", catalog.NewSchema(
		catalog.Col("k", value.TypeInt), catalog.Col("m", value.TypeInt)))
	var uRows []value.Tuple
	for i := 0; i < 60; i++ {
		tup := value.Tuple{value.Int(int64(1000 + i*2)), value.Int(int64(i))}
		u.Heap.Insert(tup)
		uRows = append(uRows, tup)
	}
	// Index after load: CreateIndex backfills from the heap.
	db.cat.CreateIndex("u_k", "U", "k")
	tpl := &expr.Template{
		Name:      "three",
		Relations: []string{"R", "S", "U"},
		Select:    []expr.ColumnRef{{Rel: "R", Col: "a"}, {Rel: "U", Col: "m"}},
		Join: []expr.JoinPred{
			{Left: expr.ColumnRef{Rel: "R", Col: "c"}, Right: expr.ColumnRef{Rel: "S", Col: "d"}},
			{Left: expr.ColumnRef{Rel: "S", Col: "e"}, Right: expr.ColumnRef{Rel: "U", Col: "k"}},
		},
		Conds: []expr.CondTemplate{
			{Col: expr.ColumnRef{Rel: "R", Col: "f"}, Form: expr.EqualityForm},
		},
	}
	q := &expr.Query{Template: tpl, Conds: []expr.CondInstance{
		{Values: []value.Value{value.Int(1), value.Int(4)}},
	}}
	plan, err := PlanQuery(db.cat, q)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	aPos, _ := plan.Schema.MustIndex(expr.ColumnRef{Rel: "R", Col: "a"})
	mPos, _ := plan.Schema.MustIndex(expr.ColumnRef{Rel: "U", Col: "m"})
	ForEach(&Project{Child: plan.Root, Cols: []int{aPos, mPos}}, func(tp value.Tuple) error {
		got = append(got, tp.String())
		return nil
	})
	sort.Strings(got)

	var want []string
	for _, rt := range db.rRows {
		if rt[2].Int64() != 1 && rt[2].Int64() != 4 {
			continue
		}
		for _, st := range db.sRows {
			if !value.Equal(rt[1], st[0]) {
				continue
			}
			for _, ut := range uRows {
				if value.Equal(st[1], ut[0]) {
					want = append(want, value.Tuple{rt[0], ut[1]}.String())
				}
			}
		}
	}
	sort.Strings(want)
	if !eqStrs(got, want) {
		t.Fatalf("three-way: got %d rows, want %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("three-way oracle empty; test data bad")
	}
}

func TestPlannerRejectsInvalidQuery(t *testing.T) {
	db := newPlanDB(t, true)
	bad := &expr.Query{Template: db.tpl, Conds: []expr.CondInstance{{Values: []value.Value{value.Int(1)}}}}
	if _, err := PlanQuery(db.cat, bad); err == nil {
		t.Error("invalid query planned")
	}
}

func TestPlannerUnknownRelation(t *testing.T) {
	db := newPlanDB(t, true)
	tpl := *db.tpl
	tpl.Relations = []string{"R", "GHOST"}
	q := &expr.Query{Template: &tpl, Conds: []expr.CondInstance{
		{Values: []value.Value{value.Int(1)}},
		{Intervals: []expr.Interval{ivOf(0, 1)}},
	}}
	if _, err := PlanQuery(db.cat, q); err == nil {
		t.Error("unknown relation planned")
	}
}

package exec

import (
	"sort"
	"testing"

	"pmv/internal/buffer"
	"pmv/internal/catalog"
	"pmv/internal/storage"
	"pmv/internal/value"
)

func rows(ns ...int64) []value.Tuple {
	out := make([]value.Tuple, len(ns))
	for i, n := range ns {
		out[i] = value.Tuple{value.Int(n)}
	}
	return out
}

func drain(t *testing.T, it Iterator) []value.Tuple {
	t.Helper()
	out, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func firstCols(ts []value.Tuple) []int64 {
	out := make([]int64, len(ts))
	for i, tp := range ts {
		out[i] = tp[0].Int64()
	}
	return out
}

func eqInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSliceIterReplay(t *testing.T) {
	it := NewSliceIter(rows(1, 2, 3))
	if got := firstCols(drain(t, it)); !eqInts(got, []int64{1, 2, 3}) {
		t.Errorf("first pass: %v", got)
	}
	// Re-open replays.
	if got := firstCols(drain(t, it)); !eqInts(got, []int64{1, 2, 3}) {
		t.Errorf("second pass: %v", got)
	}
}

func TestNextBeforeOpen(t *testing.T) {
	it := NewSliceIter(rows(1))
	if _, _, err := it.Next(); err == nil {
		t.Error("Next before Open succeeded")
	}
}

func TestFilter(t *testing.T) {
	f := &Filter{
		Child: NewSliceIter(rows(1, 2, 3, 4, 5, 6)),
		Pred:  func(tp value.Tuple) bool { return tp[0].Int64()%2 == 0 },
	}
	if got := firstCols(drain(t, f)); !eqInts(got, []int64{2, 4, 6}) {
		t.Errorf("filter: %v", got)
	}
}

func TestProject(t *testing.T) {
	src := []value.Tuple{{value.Int(1), value.Str("a"), value.Bool(true)}}
	p := &Project{Child: NewSliceIter(src), Cols: []int{2, 0}}
	got := drain(t, p)
	if len(got) != 1 || !got[0][0].BoolVal() || got[0][1].Int64() != 1 {
		t.Errorf("project: %v", got)
	}
}

func TestLimit(t *testing.T) {
	l := &Limit{Child: NewSliceIter(rows(1, 2, 3, 4)), N: 2}
	if got := firstCols(drain(t, l)); !eqInts(got, []int64{1, 2}) {
		t.Errorf("limit: %v", got)
	}
	// Zero limit yields nothing.
	l0 := &Limit{Child: NewSliceIter(rows(1)), N: 0}
	if got := drain(t, l0); len(got) != 0 {
		t.Errorf("limit 0: %v", got)
	}
}

func TestMaterializeIsBlocking(t *testing.T) {
	calls := 0
	counting := &Filter{
		Child: NewSliceIter(rows(1, 2, 3)),
		Pred: func(value.Tuple) bool {
			calls++
			return true
		},
	}
	m := &Materialize{Child: counting}
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("Open consumed %d of 3 child rows — not blocking", calls)
	}
	var got []int64
	for {
		tp, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, tp[0].Int64())
	}
	if !eqInts(got, []int64{1, 2, 3}) {
		t.Errorf("materialize: %v", got)
	}
	m.Close()
}

func TestSort(t *testing.T) {
	src := []value.Tuple{
		{value.Int(3), value.Str("c")},
		{value.Int(1), value.Str("b")},
		{value.Int(1), value.Str("a")},
		{value.Int(2), value.Str("d")},
	}
	s := &Sort{Child: NewSliceIter(src), Keys: []SortKey{{Col: 0}, {Col: 1, Desc: true}}}
	got := drain(t, s)
	want := []string{"1b", "1a", "2d", "3c"}
	for i, tp := range got {
		k := tp[0].String() + tp[1].Str()
		if k != want[i] {
			t.Errorf("position %d: %s want %s", i, k, want[i])
		}
	}
}

func TestDistinct(t *testing.T) {
	d := &Distinct{Child: NewSliceIter(rows(1, 2, 1, 3, 2, 1))}
	if got := firstCols(drain(t, d)); !eqInts(got, []int64{1, 2, 3}) {
		t.Errorf("distinct: %v", got)
	}
}

func TestHashAggregate(t *testing.T) {
	src := []value.Tuple{
		{value.Str("a"), value.Int(1)},
		{value.Str("b"), value.Int(10)},
		{value.Str("a"), value.Int(3)},
		{value.Str("b"), value.Int(20)},
		{value.Str("a"), value.Int(2)},
	}
	agg := &HashAggregate{
		Child:     NewSliceIter(src),
		GroupCols: []int{0},
		Aggs: []AggSpec{
			{Func: AggCount}, {Func: AggSum, Col: 1}, {Func: AggMin, Col: 1},
			{Func: AggMax, Col: 1}, {Func: AggAvg, Col: 1},
		},
	}
	got := drain(t, agg)
	if len(got) != 2 {
		t.Fatalf("groups: %d", len(got))
	}
	// Groups come out in encoded-key order: "a" then "b".
	a := got[0]
	if a[0].Str() != "a" || a[1].Int64() != 3 || a[2].Float64() != 6 ||
		a[3].Int64() != 1 || a[4].Int64() != 3 || a[5].Float64() != 2 {
		t.Errorf("group a: %v", a)
	}
	b := got[1]
	if b[0].Str() != "b" || b[1].Int64() != 2 || b[2].Float64() != 30 {
		t.Errorf("group b: %v", b)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	agg := &HashAggregate{Child: NewSliceIter(nil), GroupCols: []int{0}, Aggs: []AggSpec{{Func: AggCount}}}
	if got := drain(t, agg); len(got) != 0 {
		t.Errorf("empty input produced groups: %v", got)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	left := []value.Tuple{{value.Int(1)}, {value.Int(2)}}
	right := []value.Tuple{{value.Int(2)}, {value.Int(3)}}
	j := &NestedLoopJoin{
		Left:  NewSliceIter(left),
		Right: NewSliceIter(right),
		On:    func(tp value.Tuple) bool { return value.Equal(tp[0], tp[1]) },
	}
	got := drain(t, j)
	if len(got) != 1 || got[0][0].Int64() != 2 || got[0][1].Int64() != 2 {
		t.Errorf("nlj: %v", got)
	}
	// Cross join when On is nil.
	j2 := &NestedLoopJoin{Left: NewSliceIter(left), Right: NewSliceIter(right)}
	if got := drain(t, j2); len(got) != 4 {
		t.Errorf("cross join size: %d", len(got))
	}
}

func TestHashJoin(t *testing.T) {
	left := []value.Tuple{{value.Int(1), value.Str("l1")}, {value.Int(2), value.Str("l2")}, {value.Int(2), value.Str("l3")}}
	right := []value.Tuple{{value.Int(2), value.Str("r1")}, {value.Int(2), value.Str("r2")}, {value.Int(9), value.Str("r9")}}
	j := &HashJoin{
		Left: NewSliceIter(left), LeftCol: 0,
		Right: NewSliceIter(right), RightCol: 0,
	}
	got := drain(t, j)
	if len(got) != 4 { // 2 left matches x 2 right matches
		t.Fatalf("hash join size: %d", len(got))
	}
	for _, tp := range got {
		if tp[0].Int64() != 2 || tp[2].Int64() != 2 {
			t.Errorf("bad join row: %v", tp)
		}
	}
	// Residual filters.
	j2 := &HashJoin{
		Left: NewSliceIter(left), LeftCol: 0,
		Right: NewSliceIter(right), RightCol: 0,
		Residual: func(tp value.Tuple) bool { return tp[3].Str() == "r1" },
	}
	if got := drain(t, j2); len(got) != 2 {
		t.Errorf("residual join size: %d", len(got))
	}
}

// --- relation-backed tests for scans, index joins, and the planner ---

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	pool := buffer.NewPool(mgr, 128)
	c, err := catalog.Open(dir, pool, mgr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSeqScanAndIndexScan(t *testing.T) {
	c := testCatalog(t)
	r, _ := c.CreateRelation("n", catalog.NewSchema(catalog.Col("v", value.TypeInt)))
	ix, _ := c.CreateIndex("n_v", "n", "v")
	for i := 0; i < 50; i++ {
		tup := value.Tuple{value.Int(int64(i % 10))}
		rid, _ := r.Heap.Insert(tup)
		ix.Insert(tup, rid)
	}
	ss := &SeqScan{Rel: r}
	if got := drain(t, ss); len(got) != 50 {
		t.Errorf("seq scan: %d", len(got))
	}
	is := &IndexScan{Rel: r, Index: ix, Ranges: []KeyRange{EqKeyRange(value.Int(3))}}
	got := drain(t, is)
	if len(got) != 5 {
		t.Errorf("index scan eq: %d", len(got))
	}
	for _, tp := range got {
		if tp[0].Int64() != 3 {
			t.Errorf("wrong tuple: %v", tp)
		}
	}
	// Interval range [2, 5).
	iv := IntervalKeyRange(ivOf(2, 5))
	is2 := &IndexScan{Rel: r, Index: ix, Ranges: []KeyRange{iv}}
	got = drain(t, is2)
	if len(got) != 15 {
		t.Errorf("index scan range: %d", len(got))
	}
	vals := firstCols(got)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if vals[0] != 2 || vals[len(vals)-1] != 4 {
		t.Errorf("range contents: %v", vals)
	}
}

package exec

import (
	"fmt"
	"sort"

	"pmv/internal/keycodec"
	"pmv/internal/value"
)

// AggFunc enumerates the aggregate functions supported by the
// GROUP BY extension of Section 3.6.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String renders the function name.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// AggSpec is one aggregate output: Func applied to column Col
// (ignored for COUNT).
type AggSpec struct {
	Func AggFunc
	Col  int
}

type aggState struct {
	count int64
	sum   float64
	min   value.Value
	max   value.Value
}

func (s *aggState) add(v value.Value) {
	s.count++
	if v.IsNull() {
		return
	}
	switch v.Type() {
	case value.TypeInt, value.TypeFloat, value.TypeDate, value.TypeBool:
		s.sum += v.Float64()
	}
	if s.min.IsNull() || value.Compare(v, s.min) < 0 {
		s.min = v
	}
	if s.max.IsNull() || value.Compare(v, s.max) > 0 {
		s.max = v
	}
}

func (s *aggState) result(f AggFunc) value.Value {
	switch f {
	case AggCount:
		return value.Int(s.count)
	case AggSum:
		return value.Float(s.sum)
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	case AggAvg:
		if s.count == 0 {
			return value.Null()
		}
		return value.Float(s.sum / float64(s.count))
	default:
		return value.Null()
	}
}

// HashAggregate groups child rows by GroupCols and emits one row per
// group: group columns followed by the aggregate results. It is a
// blocking operator. Output group order is the encoded-key order, so
// results are deterministic.
type HashAggregate struct {
	Child     Iterator
	GroupCols []int
	Aggs      []AggSpec

	inner *sliceIter
}

// Open drains the child and computes all groups.
func (a *HashAggregate) Open() error {
	type group struct {
		key    value.Tuple
		states []aggState
	}
	groups := make(map[string]*group)
	err := ForEach(a.Child, func(t value.Tuple) error {
		keyT := make(value.Tuple, len(a.GroupCols))
		for i, c := range a.GroupCols {
			keyT[i] = t[c]
		}
		k := string(keycodec.Encode(keyT))
		g, ok := groups[k]
		if !ok {
			g = &group{key: keyT, states: make([]aggState, len(a.Aggs))}
			groups[k] = g
		}
		for i, spec := range a.Aggs {
			if spec.Func == AggCount {
				g.states[i].count++
				continue
			}
			g.states[i].add(t[spec.Col])
		}
		return nil
	})
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]value.Tuple, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		row := make(value.Tuple, 0, len(g.key)+len(a.Aggs))
		row = append(row, g.key...)
		for i, spec := range a.Aggs {
			row = append(row, g.states[i].result(spec.Func))
		}
		rows = append(rows, row)
	}
	a.inner = &sliceIter{rows: rows}
	return a.inner.Open()
}

// Next emits the next group row.
func (a *HashAggregate) Next() (value.Tuple, bool, error) {
	if a.inner == nil {
		return nil, false, ErrNotOpen
	}
	return a.inner.Next()
}

// Close releases group state.
func (a *HashAggregate) Close() error {
	a.inner = nil
	return nil
}

// SortKey is one ORDER BY term.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort is a blocking in-memory sort (the ORDER BY extension).
type Sort struct {
	Child Iterator
	Keys  []SortKey

	inner *sliceIter
}

// Open drains and sorts the child.
func (s *Sort) Open() error {
	rows, err := Collect(s.Child)
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range s.Keys {
			c := value.Compare(rows[i][k.Col], rows[j][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.inner = &sliceIter{rows: rows}
	return s.inner.Open()
}

// Next emits the next sorted row.
func (s *Sort) Next() (value.Tuple, bool, error) {
	if s.inner == nil {
		return nil, false, ErrNotOpen
	}
	return s.inner.Next()
}

// Close releases the buffer.
func (s *Sort) Close() error {
	s.inner = nil
	return nil
}

// Distinct suppresses duplicate rows (multiset → set), streaming.
type Distinct struct {
	Child Iterator
	seen  map[string]struct{}
}

// Open opens the child and resets the seen set.
func (d *Distinct) Open() error {
	d.seen = make(map[string]struct{})
	return d.Child.Open()
}

// Next returns the next not-yet-seen row.
func (d *Distinct) Next() (value.Tuple, bool, error) {
	for {
		t, ok, err := d.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := string(value.EncodeTuple(nil, t))
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return t, true, nil
	}
}

// Close closes the child and drops the seen set.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Child.Close()
}

package exec

import (
	"pmv/internal/catalog"
	"pmv/internal/keycodec"
	"pmv/internal/storage"
	"pmv/internal/value"
)

// IndexJoin is an index nested-loop join: for each outer row it probes
// the inner relation's index on the join column and concatenates
// matches — the access path the paper's Eqt plan uses ("the index on
// S.d is used to search S for matching tuples").
type IndexJoin struct {
	Outer    Iterator
	OuterCol int // position of the join attribute in outer rows
	Inner    *catalog.Relation
	InnerIdx *catalog.Index // single-column index on the inner join attribute
	Residual Pred           // optional filter on the concatenated row

	cur     value.Tuple
	matches []value.Tuple
	mpos    int
}

// Open opens the outer input.
func (j *IndexJoin) Open() error {
	j.cur = nil
	j.matches = nil
	j.mpos = 0
	return j.Outer.Open()
}

// Next produces the next concatenated (outer ++ inner) row.
func (j *IndexJoin) Next() (value.Tuple, bool, error) {
	for {
		for j.mpos < len(j.matches) {
			inner := j.matches[j.mpos]
			j.mpos++
			row := make(value.Tuple, 0, len(j.cur)+len(inner))
			row = append(row, j.cur...)
			row = append(row, inner...)
			if j.Residual == nil || j.Residual(row) {
				return row, true, nil
			}
		}
		outer, ok, err := j.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.cur = outer
		j.matches = j.matches[:0]
		j.mpos = 0
		key := keycodec.AppendValue(nil, outer[j.OuterCol])
		err = j.InnerIdx.LookupEq(key, func(rid storage.RID) error {
			t, err := j.Inner.Heap.Get(rid)
			if err != nil {
				return err
			}
			j.matches = append(j.matches, t)
			return nil
		})
		if err != nil {
			return nil, false, err
		}
	}
}

// Close closes the outer input.
func (j *IndexJoin) Close() error { return j.Outer.Close() }

// HashJoin builds the right input into a hash table on its join column
// and probes it with left rows. Used for delta joins in PMV
// maintenance, where the delta side is small and has no index.
type HashJoin struct {
	Left     Iterator
	LeftCol  int
	Right    Iterator
	RightCol int
	Residual Pred

	table   map[string][]value.Tuple
	cur     value.Tuple
	matches []value.Tuple
	mpos    int
}

// Open builds the hash table from the right input.
func (j *HashJoin) Open() error {
	j.table = make(map[string][]value.Tuple)
	j.cur = nil
	j.matches = nil
	j.mpos = 0
	if err := ForEach(j.Right, func(t value.Tuple) error {
		k := string(keycodec.AppendValue(nil, t[j.RightCol]))
		j.table[k] = append(j.table[k], t)
		return nil
	}); err != nil {
		return err
	}
	return j.Left.Open()
}

// Next produces the next (left ++ right) match.
func (j *HashJoin) Next() (value.Tuple, bool, error) {
	for {
		for j.mpos < len(j.matches) {
			right := j.matches[j.mpos]
			j.mpos++
			row := make(value.Tuple, 0, len(j.cur)+len(right))
			row = append(row, j.cur...)
			row = append(row, right...)
			if j.Residual == nil || j.Residual(row) {
				return row, true, nil
			}
		}
		left, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.cur = left
		k := string(keycodec.AppendValue(nil, left[j.LeftCol]))
		j.matches = j.table[k]
		j.mpos = 0
	}
}

// Close closes the left input and drops the table.
func (j *HashJoin) Close() error {
	j.table = nil
	return j.Left.Close()
}

// NestedLoopJoin is the fallback join for predicates with no usable
// index: it re-scans the (materialized) right side per left row.
type NestedLoopJoin struct {
	Left  Iterator
	Right Iterator
	On    Pred // evaluated over the concatenated row; nil = cross join

	rightRows []value.Tuple
	cur       value.Tuple
	rpos      int
	done      bool
}

// Open materializes the right input.
func (j *NestedLoopJoin) Open() error {
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.cur = nil
	j.rpos = 0
	j.done = false
	return j.Left.Open()
}

// Next produces the next concatenated row satisfying On.
func (j *NestedLoopJoin) Next() (value.Tuple, bool, error) {
	for {
		if j.cur == nil {
			left, ok, err := j.Left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
			j.cur = left
			j.rpos = 0
		}
		for j.rpos < len(j.rightRows) {
			right := j.rightRows[j.rpos]
			j.rpos++
			row := make(value.Tuple, 0, len(j.cur)+len(right))
			row = append(row, j.cur...)
			row = append(row, right...)
			if j.On == nil || j.On(row) {
				return row, true, nil
			}
		}
		j.cur = nil
	}
}

// Close closes the left input and drops the buffer.
func (j *NestedLoopJoin) Close() error {
	j.rightRows = nil
	return j.Left.Close()
}

package exec

import (
	"sort"
	"testing"

	"pmv/internal/catalog"
	"pmv/internal/expr"
	"pmv/internal/value"
)

// baseScanRel walks a plan tree to the driving access path's relation.
func baseScanRel(t *testing.T, it Iterator) string {
	t.Helper()
	for {
		switch op := it.(type) {
		case *Filter:
			it = op.Child
		case *IndexJoin:
			it = op.Outer
		case *NestedLoopJoin:
			it = op.Left
		case *IndexScan:
			return op.Rel.Name
		case *SeqScan:
			return op.Rel.Name
		default:
			t.Fatalf("unexpected operator %T", it)
		}
	}
}

// driverDB: big(id, k, tag) has 2000 rows and a weak condition (2
// distinct tags); small(k, code) has 100 rows and a selective condition
// (100 distinct codes). The template declares big first; statistics
// should flip the driver to small.
func driverDB(t *testing.T) (*catalog.Catalog, *expr.Template) {
	t.Helper()
	c := testCatalog(t)
	big, _ := c.CreateRelation("big", catalog.NewSchema(
		catalog.Col("id", value.TypeInt), catalog.Col("k", value.TypeInt), catalog.Col("tag", value.TypeInt)))
	small, _ := c.CreateRelation("small", catalog.NewSchema(
		catalog.Col("k", value.TypeInt), catalog.Col("code", value.TypeInt)))
	for i := 0; i < 2000; i++ {
		big.Heap.Insert(value.Tuple{value.Int(int64(i)), value.Int(int64(i % 100)), value.Int(int64(i % 2))})
	}
	for i := 0; i < 100; i++ {
		small.Heap.Insert(value.Tuple{value.Int(int64(i)), value.Int(int64(i))})
	}
	c.CreateIndex("", "big", "k")
	c.CreateIndex("", "big", "tag")
	c.CreateIndex("", "small", "k")
	c.CreateIndex("", "small", "code")
	tpl := &expr.Template{
		Name:      "skew",
		Relations: []string{"big", "small"},
		Select:    []expr.ColumnRef{{Rel: "big", Col: "id"}},
		Join: []expr.JoinPred{{
			Left:  expr.ColumnRef{Rel: "big", Col: "k"},
			Right: expr.ColumnRef{Rel: "small", Col: "k"},
		}},
		Conds: []expr.CondTemplate{
			{Col: expr.ColumnRef{Rel: "big", Col: "tag"}, Form: expr.EqualityForm},
			{Col: expr.ColumnRef{Rel: "small", Col: "code"}, Form: expr.EqualityForm},
		},
	}
	return c, tpl
}

func skewQuery(tpl *expr.Template) *expr.Query {
	return &expr.Query{Template: tpl, Conds: []expr.CondInstance{
		{Values: []value.Value{value.Int(1)}}, // tag=1: half of big
		{Values: []value.Value{value.Int(7)}}, // code=7: 1 of small
	}}
}

func TestDriverChoiceWithoutStats(t *testing.T) {
	c, tpl := driverDB(t)
	plan, err := PlanQuery(c, skewQuery(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if got := baseScanRel(t, plan.Root); got != "big" {
		t.Errorf("without stats, driver = %s, want template order (big)", got)
	}
}

func TestDriverChoiceWithStats(t *testing.T) {
	c, tpl := driverDB(t)
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanQuery(c, skewQuery(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if got := baseScanRel(t, plan.Root); got != "small" {
		t.Errorf("with stats, driver = %s, want small (100x more selective)", got)
	}
}

func TestDriverChoicePreservesResults(t *testing.T) {
	c, tpl := driverDB(t)
	q := skewQuery(tpl)
	collect := func() []string {
		plan, err := PlanQuery(c, q)
		if err != nil {
			t.Fatal(err)
		}
		pos, err := plan.Schema.MustIndex(expr.ColumnRef{Rel: "big", Col: "id"})
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		ForEach(&Project{Child: plan.Root, Cols: []int{pos}}, func(tp value.Tuple) error {
			out = append(out, tp.String())
			return nil
		})
		sort.Strings(out)
		return out
	}
	before := collect()
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	after := collect()
	if len(before) == 0 {
		t.Fatal("query empty; fixture broken")
	}
	if !eqStrs(before, after) {
		t.Fatalf("driver choice changed results: %d vs %d rows", len(before), len(after))
	}
}

func TestDriverChoiceFasterOnSkew(t *testing.T) {
	c, tpl := driverDB(t)
	q := skewQuery(tpl)
	countTuples := func() int {
		// Count the rows flowing out of the driving scan by draining
		// the full plan; the small-driver plan touches ~20 big rows vs
		// ~1000 for the big-driver plan, observable via buffer stats —
		// here we just assert both plans agree and are planable.
		plan, err := PlanQuery(c, q)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(plan.Root)
		if err != nil {
			t.Fatal(err)
		}
		return len(rows)
	}
	n1 := countTuples()
	c.AnalyzeAll()
	n2 := countTuples()
	if n1 != n2 {
		t.Fatalf("row counts differ: %d vs %d", n1, n2)
	}
}

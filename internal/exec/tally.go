package exec

import "pmv/internal/value"

// Tally counts the rows flowing through it — the executor's
// observability tap. The engine inserts one above the plan root when a
// query carries a trace, so a per-query span can report how many rows
// the plan actually produced (before the PMV layer's DS suppression).
// Cost when tracing is off: Tally is simply not in the pipeline.
type Tally struct {
	Child Iterator
	// N is the number of rows pulled through since Open.
	N int64
}

// Open resets the count and opens the child.
func (t *Tally) Open() error {
	t.N = 0
	return t.Child.Open()
}

// Next counts and passes through the next child row.
func (t *Tally) Next() (value.Tuple, bool, error) {
	tup, ok, err := t.Child.Next()
	if ok {
		t.N++
	}
	return tup, ok, err
}

// Close closes the child.
func (t *Tally) Close() error { return t.Child.Close() }

package exec

import (
	"testing"

	"pmv/internal/catalog"
	"pmv/internal/expr"
	"pmv/internal/value"
)

// TestTopKComposition exercises the Sort+Limit composition used for
// top-k delivery over template queries.
func TestTopKComposition(t *testing.T) {
	rows := make([]value.Tuple, 0, 50)
	for i := int64(0); i < 50; i++ {
		rows = append(rows, value.Tuple{value.Int(i), value.Float(float64((i * 37) % 100))})
	}
	topk := &Limit{
		Child: &Sort{Child: NewSliceIter(rows), Keys: []SortKey{{Col: 1, Desc: true}}},
		N:     5,
	}
	got := drain(t, topk)
	if len(got) != 5 {
		t.Fatalf("top-5 returned %d rows", len(got))
	}
	prev := got[0][1].Float64()
	for _, r := range got[1:] {
		if r[1].Float64() > prev {
			t.Fatalf("not descending: %v", got)
		}
		prev = r[1].Float64()
	}
	if got[0][1].Float64() != 99 {
		t.Errorf("max = %v, want 99", got[0][1])
	}
}

func TestUnboundedIntervalRanges(t *testing.T) {
	// Unbounded interval bounds translate to open key ranges.
	kr := IntervalKeyRange(expr.Interval{}) // (-inf, +inf)
	if kr.Lo != nil || kr.Hi != nil {
		t.Errorf("unbounded interval produced bounds: %v", kr)
	}
	lo := IntervalKeyRange(expr.Interval{Lo: value.Int(5), LoIncl: true})
	if lo.Lo == nil || lo.Hi != nil {
		t.Errorf("[5,+inf) range wrong: %+v", lo)
	}
	// Open lower bound excludes the boundary value.
	open := IntervalKeyRange(expr.Interval{Lo: value.Int(5), LoIncl: false, Hi: value.Int(9), HiIncl: true})
	eq5 := EqKeyRange(value.Int(5))
	if string(open.Lo) == string(eq5.Lo) {
		t.Error("open bound did not advance past the boundary")
	}
}

func TestIndexScanOverDates(t *testing.T) {
	c := testCatalog(t)
	r, _ := c.CreateRelation("ev", newDateSchema())
	for d := int64(0); d < 30; d++ {
		r.Heap.Insert(value.Tuple{value.Date(20000 + d), value.Int(d)})
	}
	ix, err := c.CreateIndex("ev_d", "ev", "day")
	if err != nil {
		t.Fatal(err)
	}
	iv := expr.Interval{Lo: value.Date(20010), Hi: value.Date(20020), LoIncl: true, HiIncl: false}
	is := &IndexScan{Rel: r, Index: ix, Ranges: []KeyRange{IntervalKeyRange(iv)}}
	got := drain(t, is)
	if len(got) != 10 {
		t.Fatalf("date range returned %d rows, want 10", len(got))
	}
	for _, tp := range got {
		d := tp[0].Int64()
		if d < 20010 || d >= 20020 {
			t.Errorf("date %d outside range", d)
		}
	}
}

func newDateSchema() catalog.Schema {
	return catalog.NewSchema(
		catalog.Col("day", value.TypeDate),
		catalog.Col("n", value.TypeInt),
	)
}

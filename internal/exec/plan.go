package exec

import (
	"fmt"

	"pmv/internal/catalog"
	"pmv/internal/expr"
	"pmv/internal/value"
)

// Plan is a compiled query: a root iterator producing rows of the
// concatenated base-relation schema (every column of every relation in
// template order, qualified).
type Plan struct {
	Root   Iterator
	Schema RowSchema
}

// PlanQuery compiles a bound template query into the index-driven plan
// the paper describes: index access on the driving relation's selection
// attribute, index nested-loop joins in template order, residual
// filters for everything else. Falling back to sequential scans and
// in-memory joins when an index is missing keeps the planner total.
func PlanQuery(cat *catalog.Catalog, q *expr.Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	tpl := q.Template

	rels := make([]*catalog.Relation, len(tpl.Relations))
	for i, name := range tpl.Relations {
		r, err := cat.GetRelation(name)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}

	// Per-relation predicate lists.
	condsOf := func(relName string) []int {
		var out []int
		for i, c := range tpl.Conds {
			if c.Col.Rel == relName {
				out = append(out, i)
			}
		}
		return out
	}
	fixedOf := func(relName string) []expr.FixedPred {
		var out []expr.FixedPred
		for _, f := range tpl.Fixed {
			if f.Col.Rel == relName {
				out = append(out, f)
			}
		}
		return out
	}

	// Driver choice: with statistics (ANALYZE), start from the
	// relation whose bound conditions leave the fewest expected rows;
	// without statistics, keep the template's declared order.
	driverIdx := chooseDriver(tpl, q, rels, condsOf)
	driver := rels[driverIdx]
	driverName := tpl.Relations[driverIdx]
	schema := qualify(driver, driverName)
	var root Iterator
	usedCond := -1
	for _, ci := range condsOf(driverName) {
		colIdx := driver.Schema.ColIndex(tpl.Conds[ci].Col.Col)
		if colIdx < 0 {
			return nil, fmt.Errorf("exec: %s has no column %s", driverName, tpl.Conds[ci].Col.Col)
		}
		ix := driver.IndexOn(colIdx)
		if ix == nil {
			continue
		}
		root = &IndexScan{Rel: driver, Index: ix, Ranges: rangesFor(tpl.Conds[ci].Form, q.Conds[ci])}
		usedCond = ci
		break
	}
	if root == nil {
		root = &SeqScan{Rel: driver}
	}
	// Residual predicates on the driver.
	var preds []Pred
	for _, ci := range condsOf(driverName) {
		if ci == usedCond {
			continue
		}
		p, err := condPred(schema, tpl.Conds[ci], q.Conds[ci])
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	for _, f := range fixedOf(driverName) {
		p, err := fixedPredFn(schema, f)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	root = applyPreds(root, preds)

	// Join the remaining relations, preferring ones reachable from the
	// joined set through a join predicate (template order breaks ties).
	joined := map[string]bool{driverName: true}
	usedJoin := make([]bool, len(tpl.Join))
	remaining := make([]int, 0, len(rels)-1)
	for i := range rels {
		if i != driverIdx {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		pick := 0
		for pi, ri := range remaining {
			if connectsTo(tpl, usedJoin, joined, tpl.Relations[ri]) {
				pick = pi
				break
			}
		}
		ri := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		relName := tpl.Relations[ri]
		rel := rels[ri]
		relSchema := qualify(rel, relName)
		newSchema := schema.Concat(relSchema)

		// Find a join predicate linking the joined set to rel.
		linkIdx := -1
		var outerRef, innerRef expr.ColumnRef
		for ji, jp := range tpl.Join {
			if usedJoin[ji] {
				continue
			}
			switch {
			case joined[jp.Left.Rel] && jp.Right.Rel == relName:
				linkIdx, outerRef, innerRef = ji, jp.Left, jp.Right
			case joined[jp.Right.Rel] && jp.Left.Rel == relName:
				linkIdx, outerRef, innerRef = ji, jp.Right, jp.Left
			}
			if linkIdx >= 0 {
				break
			}
		}

		// Residuals for this relation: its conditions, fixed predicates,
		// and any further join predicates now fully bound.
		var resid []Pred
		for _, ci := range condsOf(relName) {
			p, err := condPred(newSchema, tpl.Conds[ci], q.Conds[ci])
			if err != nil {
				return nil, err
			}
			resid = append(resid, p)
		}
		for _, f := range fixedOf(relName) {
			p, err := fixedPredFn(newSchema, f)
			if err != nil {
				return nil, err
			}
			resid = append(resid, p)
		}
		for ji, jp := range tpl.Join {
			if usedJoin[ji] || ji == linkIdx {
				continue
			}
			if (joined[jp.Left.Rel] || jp.Left.Rel == relName) &&
				(joined[jp.Right.Rel] || jp.Right.Rel == relName) {
				p, err := joinPredFn(newSchema, jp)
				if err != nil {
					return nil, err
				}
				resid = append(resid, p)
				usedJoin[ji] = true
			}
		}
		residPred := andPreds(resid)

		if linkIdx >= 0 {
			usedJoin[linkIdx] = true
			outerPos, err := schema.MustIndex(outerRef)
			if err != nil {
				return nil, err
			}
			innerCol := rel.Schema.ColIndex(innerRef.Col)
			if innerCol < 0 {
				return nil, fmt.Errorf("exec: %s has no column %s", relName, innerRef.Col)
			}
			if ix := rel.IndexOn(innerCol); ix != nil {
				root = &IndexJoin{
					Outer: root, OuterCol: outerPos,
					Inner: rel, InnerIdx: ix,
					Residual: residPred,
				}
			} else {
				jpPred, err := joinPredFn(newSchema, expr.JoinPred{Left: outerRef, Right: innerRef})
				if err != nil {
					return nil, err
				}
				root = &NestedLoopJoin{
					Left: root, Right: &SeqScan{Rel: rel},
					On: andPreds(append([]Pred{jpPred}, resid...)),
				}
			}
		} else {
			// No join predicate reaches rel yet: cross join + residuals.
			root = &NestedLoopJoin{Left: root, Right: &SeqScan{Rel: rel}, On: residPred}
		}
		schema = newSchema
		joined[relName] = true
	}

	return &Plan{Root: root, Schema: schema}, nil
}

// connectsTo reports whether an unused join predicate links relName to
// the already-joined set.
func connectsTo(tpl *expr.Template, usedJoin []bool, joined map[string]bool, relName string) bool {
	for ji, jp := range tpl.Join {
		if usedJoin[ji] {
			continue
		}
		if (joined[jp.Left.Rel] && jp.Right.Rel == relName) ||
			(joined[jp.Right.Rel] && jp.Left.Rel == relName) {
			return true
		}
	}
	return false
}

// chooseDriver scores each relation by its expected driving-row count
// (row count × the combined selectivity of its bound conditions, per
// ANALYZE statistics) and returns the index of the cheapest. Relations
// without statistics score by template position, so an un-analyzed
// database keeps the declared order.
func chooseDriver(tpl *expr.Template, q *expr.Query, rels []*catalog.Relation,
	condsOf func(string) []int) int {
	for _, rel := range rels {
		if rel.Stats == nil {
			return 0 // incomplete statistics: keep the declared order
		}
	}
	best, bestScore := 0, -1.0
	for i, rel := range rels {
		conds := condsOf(tpl.Relations[i])
		if len(conds) == 0 {
			continue // nothing to drive with
		}
		sel := 1.0
		for _, ci := range conds {
			colIdx := rel.Schema.ColIndex(tpl.Conds[ci].Col.Col)
			if colIdx < 0 {
				continue
			}
			switch tpl.Conds[ci].Form {
			case expr.EqualityForm:
				sel *= rel.EqSelectivity(colIdx, len(q.Conds[ci].Values))
			case expr.IntervalForm:
				s := 0.0
				for _, iv := range q.Conds[ci].Intervals {
					s += rel.RangeSelectivity(colIdx, iv.Lo, iv.Hi)
				}
				if s > 1 {
					s = 1
				}
				sel *= s
			}
		}
		score := float64(rel.Stats.RowCount) * sel
		if bestScore < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// rangesFor converts one bound condition into index key ranges.
func rangesFor(form expr.CondForm, ci expr.CondInstance) []KeyRange {
	var out []KeyRange
	if form == expr.EqualityForm {
		for _, v := range ci.Values {
			out = append(out, EqKeyRange(v))
		}
		return out
	}
	for _, iv := range ci.Intervals {
		out = append(out, IntervalKeyRange(iv))
	}
	return out
}

// condPred compiles one bound selection condition against a schema.
func condPred(schema RowSchema, ct expr.CondTemplate, ci expr.CondInstance) (Pred, error) {
	pos, err := schema.MustIndex(ct.Col)
	if err != nil {
		return nil, err
	}
	form := ct.Form
	return func(t value.Tuple) bool { return ci.Matches(form, t[pos]) }, nil
}

func fixedPredFn(schema RowSchema, f expr.FixedPred) (Pred, error) {
	pos, err := schema.MustIndex(f.Col)
	if err != nil {
		return nil, err
	}
	return func(t value.Tuple) bool { return f.Op.Eval(t[pos], f.Val) }, nil
}

func joinPredFn(schema RowSchema, jp expr.JoinPred) (Pred, error) {
	l, err := schema.MustIndex(jp.Left)
	if err != nil {
		return nil, err
	}
	r, err := schema.MustIndex(jp.Right)
	if err != nil {
		return nil, err
	}
	return func(t value.Tuple) bool { return value.Equal(t[l], t[r]) }, nil
}

func andPreds(ps []Pred) Pred {
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	default:
		return func(t value.Tuple) bool {
			for _, p := range ps {
				if !p(t) {
					return false
				}
			}
			return true
		}
	}
}

func applyPreds(it Iterator, ps []Pred) Iterator {
	if p := andPreds(ps); p != nil {
		return &Filter{Child: it, Pred: p}
	}
	return it
}

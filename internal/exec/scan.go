package exec

import (
	"pmv/internal/catalog"
	"pmv/internal/expr"
	"pmv/internal/keycodec"
	"pmv/internal/storage"
	"pmv/internal/value"
)

// qualify returns the row schema of a base relation with every column
// qualified by the relation's (template) name.
func qualify(rel *catalog.Relation, as string) RowSchema {
	cols := make([]expr.ColumnRef, len(rel.Schema.Columns))
	for i, c := range rel.Schema.Columns {
		cols[i] = expr.ColumnRef{Rel: as, Col: c.Name}
	}
	return RowSchema{Cols: cols}
}

// SeqScan reads every live tuple of a relation. It materializes the
// RID list up front so concurrent inserts during the scan do not
// produce torn iteration state.
type SeqScan struct {
	Rel  *catalog.Relation
	rows []value.Tuple
	pos  int
}

// Open snapshots the heap.
func (s *SeqScan) Open() error {
	s.rows = s.rows[:0]
	s.pos = 0
	return s.Rel.Heap.Scan(func(_ storage.RID, t value.Tuple) error {
		s.rows = append(s.rows, t)
		return nil
	})
}

// Next returns the next tuple of the snapshot.
func (s *SeqScan) Next() (value.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// Close releases the snapshot.
func (s *SeqScan) Close() error {
	s.rows = nil
	return nil
}

// KeyRange is one [Lo, Hi) range of encoded index keys. A nil Hi means
// unbounded above.
type KeyRange struct {
	Lo, Hi []byte
}

// EqKeyRange returns the range covering exactly the encoded value v.
func EqKeyRange(v value.Value) KeyRange {
	lo := keycodec.AppendValue(nil, v)
	return KeyRange{Lo: lo, Hi: successorOf(lo)}
}

// IntervalKeyRange returns the encoded range for interval iv over a
// single-column index.
func IntervalKeyRange(iv expr.Interval) KeyRange {
	var kr KeyRange
	if !iv.Lo.IsNull() {
		lo := keycodec.AppendValue(nil, iv.Lo)
		if iv.LoIncl {
			kr.Lo = lo
		} else {
			kr.Lo = successorOf(lo)
		}
	}
	if !iv.Hi.IsNull() {
		hi := keycodec.AppendValue(nil, iv.Hi)
		if iv.HiIncl {
			kr.Hi = successorOf(hi)
		} else {
			kr.Hi = hi
		}
	}
	return kr
}

// successorOf returns the smallest byte string greater than every
// string with prefix key. Index entries are key || rid(6 bytes), so an
// exclusive upper bound on a logical key must clear every entry sharing
// that prefix — the carry-based prefix successor does exactly that.
func successorOf(key []byte) []byte { return prefixSuccessor(key) }

func prefixSuccessor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil // unbounded
}

// IndexScan fetches the heap tuples whose index keys fall in any of the
// given ranges, in range order.
type IndexScan struct {
	Rel    *catalog.Relation
	Index  *catalog.Index
	Ranges []KeyRange

	rids []storage.RID
	pos  int
}

// Open collects the matching RIDs from the index.
func (s *IndexScan) Open() error {
	s.rids = s.rids[:0]
	s.pos = 0
	for _, r := range s.Ranges {
		err := s.Index.LookupRange(r.Lo, r.Hi, func(rid storage.RID) error {
			s.rids = append(s.rids, rid)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Next fetches the next matching heap tuple.
func (s *IndexScan) Next() (value.Tuple, bool, error) {
	if s.pos >= len(s.rids) {
		return nil, false, nil
	}
	rid := s.rids[s.pos]
	s.pos++
	t, err := s.Rel.Heap.Get(rid)
	if err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// Close releases the RID list.
func (s *IndexScan) Close() error {
	s.rids = nil
	return nil
}

// Package exec is the Volcano-style query executor: iterators over
// value.Tuple rows plus a planner that turns a bound template query
// (expr.Query) into the index-driven plan the paper describes for its
// Eqt example — index access on the driving relation's selection
// attribute, then index nested-loop joins, with residual filters.
package exec

import (
	"errors"
	"fmt"

	"pmv/internal/expr"
	"pmv/internal/value"
)

// ErrNotOpen is returned by Next on an unopened iterator.
var ErrNotOpen = errors.New("exec: iterator not open")

// Iterator is the pull-based operator interface. Next returns
// (tuple, true, nil) per row and (nil, false, nil) at end of stream.
type Iterator interface {
	Open() error
	Next() (value.Tuple, bool, error)
	Close() error
}

// RowSchema binds qualified column references to positions in the
// tuples an iterator produces.
type RowSchema struct {
	Cols []expr.ColumnRef
}

// Index returns the position of ref, or -1.
func (rs RowSchema) Index(ref expr.ColumnRef) int {
	for i, c := range rs.Cols {
		if c == ref {
			return i
		}
	}
	return -1
}

// MustIndex returns the position of ref or an error naming it.
func (rs RowSchema) MustIndex(ref expr.ColumnRef) (int, error) {
	if i := rs.Index(ref); i >= 0 {
		return i, nil
	}
	return -1, fmt.Errorf("exec: column %s not in row schema", ref)
}

// Concat returns rs followed by other.
func (rs RowSchema) Concat(other RowSchema) RowSchema {
	cols := make([]expr.ColumnRef, 0, len(rs.Cols)+len(other.Cols))
	cols = append(cols, rs.Cols...)
	cols = append(cols, other.Cols...)
	return RowSchema{Cols: cols}
}

// Pred is a compiled row predicate.
type Pred func(value.Tuple) bool

// Collect drains an iterator into a slice (open/close included).
func Collect(it Iterator) ([]value.Tuple, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []value.Tuple
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// ForEach streams an iterator through fn (open/close included).
func ForEach(it Iterator, fn func(value.Tuple) error) error {
	if err := it.Open(); err != nil {
		return err
	}
	defer it.Close()
	for {
		t, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

// sliceIter replays a materialized row set; it is the building block of
// blocking operators (sort, aggregate, materialize).
type sliceIter struct {
	rows []value.Tuple
	pos  int
	open bool
}

// NewSliceIter returns an iterator over rows.
func NewSliceIter(rows []value.Tuple) Iterator { return &sliceIter{rows: rows} }

func (s *sliceIter) Open() error {
	s.pos = 0
	s.open = true
	return nil
}

func (s *sliceIter) Next() (value.Tuple, bool, error) {
	if !s.open {
		return nil, false, ErrNotOpen
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

func (s *sliceIter) Close() error {
	s.open = false
	return nil
}

// Guard injects a liveness check into a pipeline: Check runs before
// every row is pulled from the child, so a cancelled context (or any
// other abort condition) stops an in-flight plan between rows instead
// of letting it run to completion. The engine wraps plan roots with a
// Guard when the caller supplies a cancellable context.
type Guard struct {
	Child Iterator
	Check func() error
}

// Open checks once, then opens the child.
func (g *Guard) Open() error {
	if err := g.Check(); err != nil {
		return err
	}
	return g.Child.Open()
}

// Next checks, then pulls the next child row.
func (g *Guard) Next() (value.Tuple, bool, error) {
	if err := g.Check(); err != nil {
		return nil, false, err
	}
	return g.Child.Next()
}

// Close closes the child.
func (g *Guard) Close() error { return g.Child.Close() }

// Filter passes through rows satisfying pred.
type Filter struct {
	Child Iterator
	Pred  Pred
}

// Open opens the child.
func (f *Filter) Open() error { return f.Child.Open() }

// Next returns the next row satisfying the predicate.
func (f *Filter) Next() (value.Tuple, bool, error) {
	for {
		t, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred(t) {
			return t, true, nil
		}
	}
}

// Close closes the child.
func (f *Filter) Close() error { return f.Child.Close() }

// Project maps rows to the given column positions.
type Project struct {
	Child Iterator
	Cols  []int
}

// Open opens the child.
func (p *Project) Open() error { return p.Child.Open() }

// Next returns the projection of the next child row.
func (p *Project) Next() (value.Tuple, bool, error) {
	t, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(value.Tuple, len(p.Cols))
	for i, c := range p.Cols {
		out[i] = t[c]
	}
	return out, true, nil
}

// Close closes the child.
func (p *Project) Close() error { return p.Child.Close() }

// Limit passes through at most N rows.
type Limit struct {
	Child Iterator
	N     int
	seen  int
}

// Open opens the child and resets the count.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Child.Open()
}

// Next returns the next row while under the limit.
func (l *Limit) Next() (value.Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// Close closes the child.
func (l *Limit) Close() error { return l.Child.Close() }

// Materialize is a blocking wrapper: Open drains the child completely
// before the first Next — modeling the non-pipelined plans for which
// the paper says traditional execution "cannot provide any result until
// it almost finishes".
type Materialize struct {
	Child Iterator
	inner *sliceIter
}

// Open drains the child and buffers every row.
func (m *Materialize) Open() error {
	rows, err := Collect(m.Child)
	if err != nil {
		return err
	}
	m.inner = &sliceIter{rows: rows}
	return m.inner.Open()
}

// Next replays the buffered rows.
func (m *Materialize) Next() (value.Tuple, bool, error) {
	if m.inner == nil {
		return nil, false, ErrNotOpen
	}
	return m.inner.Next()
}

// Close releases the buffer.
func (m *Materialize) Close() error {
	m.inner = nil
	return nil
}

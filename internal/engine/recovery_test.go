package engine

import (
	"sort"
	"testing"

	"pmv/internal/catalog"
	"pmv/internal/storage"
	"pmv/internal/value"
)

// walEngine opens a WAL-enabled engine in dir.
func walEngine(t *testing.T, dir string, pool int) *Engine {
	t.Helper()
	e, err := Open(dir, Options{BufferPoolPages: pool, EnableWAL: true, SyncEveryOp: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// snapshot reads rel into sorted strings.
func snapshot(t *testing.T, e *Engine, rel string) []string {
	t.Helper()
	r, err := e.Catalog().GetRelation(rel)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	r.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		out = append(out, tu.String())
		return nil
	})
	sort.Strings(out)
	return out
}

func TestCleanShutdownNeedsNoRecovery(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, dir, 64)
	e.CreateRelation("kv", catalog.NewSchema(catalog.Col("k", value.TypeInt)))
	for i := 0; i < 50; i++ {
		e.Insert("kv", value.Tuple{value.Int(int64(i))})
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := walEngine(t, dir, 64)
	defer e2.Close()
	if e2.Recovered() != 0 {
		t.Errorf("clean shutdown replayed %d records", e2.Recovered())
	}
	if got := snapshot(t, e2, "kv"); len(got) != 50 {
		t.Errorf("%d rows after clean reopen", len(got))
	}
}

func TestCrashRecoveryReplaysInserts(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, dir, 64)
	e.CreateRelation("kv", catalog.NewSchema(
		catalog.Col("k", value.TypeInt), catalog.Col("v", value.TypeString)))
	e.CreateIndex("", "kv", "k")
	for i := 0; i < 200; i++ {
		if err := e.Insert("kv", value.Tuple{value.Int(int64(i)), value.Str("payload")}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon the engine without Close — dirty pages die with it.

	e2 := walEngine(t, dir, 64)
	defer e2.Close()
	if e2.Recovered() == 0 {
		t.Error("no records replayed after crash")
	}
	got := snapshot(t, e2, "kv")
	if len(got) != 200 {
		t.Fatalf("%d rows after recovery, want 200", len(got))
	}
	// Indexes were rebuilt.
	r, _ := e2.Catalog().GetRelation("kv")
	n, err := r.Indexes[0].Tree.Count()
	if err != nil || n != 200 {
		t.Errorf("rebuilt index has %d entries (%v)", n, err)
	}
}

func TestCrashRecoveryMixedOps(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, dir, 64)
	e.CreateRelation("kv", catalog.NewSchema(
		catalog.Col("k", value.TypeInt), catalog.Col("v", value.TypeString)))
	shadow := map[int64]string{}
	for i := int64(0); i < 100; i++ {
		e.Insert("kv", value.Tuple{value.Int(i), value.Str("a")})
		shadow[i] = "a"
	}
	e.DeleteWhere("kv", func(tu value.Tuple) bool { return tu[0].Int64()%3 == 0 })
	for k := range shadow {
		if k%3 == 0 {
			delete(shadow, k)
		}
	}
	e.UpdateWhere("kv",
		func(tu value.Tuple) bool { return tu[0].Int64()%5 == 0 },
		func(tu value.Tuple) value.Tuple {
			out := tu.Clone()
			out[1] = value.Str("updated-with-a-much-longer-payload-to-force-moves")
			return out
		})
	for k := range shadow {
		if k%5 == 0 {
			shadow[k] = "updated-with-a-much-longer-payload-to-force-moves"
		}
	}
	// Crash.

	e2 := walEngine(t, dir, 64)
	defer e2.Close()
	r, _ := e2.Catalog().GetRelation("kv")
	got := map[int64]string{}
	r.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		got[tu[0].Int64()] = tu[1].Str()
		return nil
	})
	if len(got) != len(shadow) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(shadow))
	}
	for k, v := range shadow {
		if got[k] != v {
			t.Errorf("key %d: %q, want %q", k, got[k], v)
		}
	}
}

func TestRecoveryIdempotentAfterPartialFlush(t *testing.T) {
	dir := t.TempDir()
	// A tiny pool forces dirty-page write-backs mid-run, so some logged
	// operations are already on disk at crash time — the page-LSN guard
	// must skip exactly those during replay.
	e := walEngine(t, dir, 8)
	e.CreateRelation("kv", catalog.NewSchema(
		catalog.Col("k", value.TypeInt), catalog.Col("pad", value.TypeString)))
	pad := make([]byte, 300)
	for i := range pad {
		pad[i] = 'x'
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := e.Insert("kv", value.Tuple{value.Int(int64(i)), value.Str(string(pad))}); err != nil {
			t.Fatal(err)
		}
	}
	e.DeleteWhere("kv", func(tu value.Tuple) bool { return tu[0].Int64() < 100 })
	// Crash.

	e2 := walEngine(t, dir, 64)
	defer e2.Close()
	got := snapshot(t, e2, "kv")
	if len(got) != n-100 {
		t.Fatalf("recovered %d rows, want %d", len(got), n-100)
	}
	// No duplicates: distinct keys only.
	r, _ := e2.Catalog().GetRelation("kv")
	seen := map[int64]bool{}
	r.Heap.Scan(func(_ storage.RID, tu value.Tuple) error {
		k := tu[0].Int64()
		if seen[k] {
			t.Errorf("duplicate key %d after replay", k)
		}
		seen[k] = true
		return nil
	})
}

func TestRecoveryAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, dir, 64)
	e.CreateRelation("kv", catalog.NewSchema(catalog.Col("k", value.TypeInt)))
	for i := 0; i < 50; i++ {
		e.Insert("kv", value.Tuple{value.Int(int64(i))})
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 80; i++ {
		e.Insert("kv", value.Tuple{value.Int(int64(i))})
	}
	// Crash: only the last 30 inserts are log-only.

	e2 := walEngine(t, dir, 64)
	defer e2.Close()
	if e2.Recovered() == 0 || e2.Recovered() > 30 {
		t.Errorf("replayed %d records, want 1..30", e2.Recovered())
	}
	if got := snapshot(t, e2, "kv"); len(got) != 80 {
		t.Errorf("%d rows, want 80", len(got))
	}
}

func TestRecoveryTwiceInARow(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, dir, 64)
	e.CreateRelation("kv", catalog.NewSchema(catalog.Col("k", value.TypeInt)))
	for i := 0; i < 40; i++ {
		e.Insert("kv", value.Tuple{value.Int(int64(i))})
	}
	// Crash once.
	e2 := walEngine(t, dir, 64)
	if got := snapshot(t, e2, "kv"); len(got) != 40 {
		t.Fatalf("first recovery: %d rows", len(got))
	}
	for i := 40; i < 60; i++ {
		e2.Insert("kv", value.Tuple{value.Int(int64(i))})
	}
	// Crash again without Close.
	e3 := walEngine(t, dir, 64)
	defer e3.Close()
	if got := snapshot(t, e3, "kv"); len(got) != 60 {
		t.Errorf("second recovery: %d rows, want 60", len(got))
	}
}

func TestWALDisabledStillWorks(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{BufferPoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	e.CreateRelation("kv", catalog.NewSchema(catalog.Col("k", value.TypeInt)))
	e.Insert("kv", value.Tuple{value.Int(1)})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, Options{BufferPoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := snapshot(t, e2, "kv"); len(got) != 1 {
		t.Errorf("%d rows", len(got))
	}
}

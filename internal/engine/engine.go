// Package engine is the embedded relational engine the PMV layer runs
// inside: it owns the disk manager, buffer pool, catalog, and lock
// manager, and exposes DDL, DML (with secondary-index maintenance and
// change notification), and template-query execution.
//
// The engine substitutes for the paper's PostgreSQL 7.3.4 host: it
// provides the same ingredients the PMV method needs — blocking
// index-driven plans, a page buffer pool, and hooks on every base-
// relation change for deferred view maintenance.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pmv/internal/buffer"
	"pmv/internal/catalog"
	"pmv/internal/exec"
	"pmv/internal/expr"
	"pmv/internal/lock"
	"pmv/internal/obs"
	"pmv/internal/storage"
	"pmv/internal/value"
	"pmv/internal/vfs"
	"pmv/internal/wal"
)

// ErrCorrupt wraps persistent-state corruption detected while reading
// back durable data: WAL records that fail to decode, and page
// checksum mismatches surfaced during recovery. Callers distinguish it
// from transient I/O errors with errors.Is.
var ErrCorrupt = errors.New("engine: persistent state corrupted")

// Options configures an engine instance.
type Options struct {
	// BufferPoolPages is the number of 8 KiB frames. The default (1000)
	// matches the paper's PostgreSQL setting.
	BufferPoolPages int
	// LockTimeout bounds lock waits (deadlock resolution by timeout).
	LockTimeout time.Duration
	// EnableWAL turns on write-ahead logging and crash recovery for
	// heap data (see internal/engine/wal.go for the guarantees).
	EnableWAL bool
	// SyncEveryOp fsyncs the log after every statement (durable on
	// return). Off, durability is batched at page write-back,
	// checkpoint, and Close.
	SyncEveryOp bool
	// CheckpointEvery starts a background checkpointer with the given
	// period (0 = checkpoint only on Close). Requires EnableWAL.
	CheckpointEvery time.Duration
	// FS routes every persisted byte (page files, WAL, JSON metadata)
	// through an alternate filesystem. Nil means the real OS; the
	// torture harness installs a fault-injecting vfs here.
	FS vfs.FS
	// LockAttempts bounds how many times AcquireLock tries before
	// giving up (each attempt waits up to LockTimeout). Default 3.
	LockAttempts int
	// LockRetryBackoff is the base delay between lock attempts; actual
	// delays grow exponentially with up to 100% random jitter. Default
	// 2ms.
	LockRetryBackoff time.Duration
}

func (o *Options) fill() {
	if o.BufferPoolPages <= 0 {
		o.BufferPoolPages = 1000
	}
	if o.LockTimeout <= 0 {
		o.LockTimeout = 5 * time.Second
	}
	if o.LockAttempts <= 0 {
		o.LockAttempts = 3
	}
	if o.LockRetryBackoff <= 0 {
		o.LockRetryBackoff = 2 * time.Millisecond
	}
}

// Stats is a snapshot of the engine's robustness counters.
type Stats struct {
	// LockRetries counts lock attempts that timed out and were retried
	// after backoff; LockTimeouts counts acquisitions that exhausted
	// every attempt.
	LockRetries  int64
	LockTimeouts int64
	// DegradedQueries counts queries answered without the PMV because
	// its lock could not be acquired in time (graceful degradation).
	DegradedQueries int64
	// TornPageRepairs counts torn trailing partial pages truncated when
	// a page file was opened after a crash.
	TornPageRepairs int64
}

// ChangeObserver receives base-relation change notifications. The PMV
// manager registers one to implement Section 3.4 deferred maintenance.
type ChangeObserver interface {
	// OnInsert is called after t is inserted into rel.
	OnInsert(rel string, t value.Tuple) error
	// OnDelete is called after t is deleted from rel.
	OnDelete(rel string, t value.Tuple) error
	// OnUpdate is called after old is replaced by new in rel.
	OnUpdate(rel string, old, new value.Tuple) error
}

// CtxChangeObserver is optionally implemented by change observers that
// want the statement's context — in practice, to record maintenance
// work into an obs.Trace the mutator attached. The engine prefers the
// ctx variants when an observer provides them; plain observers keep
// working unchanged.
type CtxChangeObserver interface {
	OnDeleteCtx(ctx context.Context, rel string, t value.Tuple) error
	OnUpdateCtx(ctx context.Context, rel string, old, new value.Tuple) error
}

// ChangeBarrier is implemented by observers that must serialize
// destructive base-relation changes against their own readers — the
// paper's Section 3.6 protocol, where a transaction that would have to
// update a PMV acquires the view's X lock before its change becomes
// visible. The engine calls BeforeChange before the first heap
// modification of a delete/update statement and invokes the returned
// release after the last notification. (Inserts need no barrier: they
// cannot invalidate results a reader has already received.)
type ChangeBarrier interface {
	BeforeChange(rel string) (release func(), err error)
}

// changeBarrier acquires every registered observer's barrier for rel,
// returning a combined release.
func (e *Engine) changeBarrier(rel string) (func(), error) {
	e.obsMu.RLock()
	obs := e.observers
	e.obsMu.RUnlock()
	var releases []func()
	for _, o := range obs {
		cb, ok := o.(ChangeBarrier)
		if !ok {
			continue
		}
		rel, err := cb.BeforeChange(rel)
		if err != nil {
			for _, r := range releases {
				r()
			}
			return nil, err
		}
		if rel != nil {
			releases = append(releases, rel)
		}
	}
	return func() {
		for _, r := range releases {
			r()
		}
	}, nil
}

// Engine is one open database.
type Engine struct {
	dir   string
	mgr   *storage.Manager
	pool  *buffer.Pool
	cat   *catalog.Catalog
	locks *lock.Manager
	opts  Options

	obsMu     sync.RWMutex
	observers []ChangeObserver

	nextTxn atomic.Uint64

	wal       *wal.Log
	opSeq     atomic.Uint64
	recovered int

	lockRetries  atomic.Int64
	lockTimeouts atomic.Int64
	degraded     atomic.Int64

	// chkMu quiesces writers during a checkpoint: DML holds the read
	// side, Checkpoint the write side, so FlushAll never races a page
	// mutation.
	chkMu   sync.RWMutex
	stopChk chan struct{}
	chkWG   sync.WaitGroup
}

// Open opens (creating if needed) a database directory.
func Open(dir string, opts Options) (*Engine, error) {
	opts.fill()
	mgr, err := storage.NewManagerFS(dir, opts.FS)
	if err != nil {
		return nil, err
	}
	pool := buffer.NewPool(mgr, opts.BufferPoolPages)
	cat, err := catalog.Open(dir, pool, mgr)
	if err != nil {
		mgr.Close()
		return nil, err
	}
	lm := lock.New()
	lm.DefaultTimeout = opts.LockTimeout
	e := &Engine{dir: dir, mgr: mgr, pool: pool, cat: cat, locks: lm, opts: opts}
	if opts.EnableWAL {
		if err := e.initWAL(); err != nil {
			mgr.Close()
			return nil, err
		}
		if opts.CheckpointEvery > 0 {
			e.startCheckpointer(opts.CheckpointEvery)
		}
	}
	return e, nil
}

// Close checkpoints (flushing dirty pages and truncating the WAL) and
// releases files. Every handle is closed even when the checkpoint
// fails (e.g. after an injected crash); the first error is returned.
func (e *Engine) Close() error {
	if e.stopChk != nil {
		close(e.stopChk)
		e.chkWG.Wait()
		e.stopChk = nil
	}
	first := e.Checkpoint()
	if e.wal != nil {
		if err := e.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := e.mgr.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Dir returns the database directory.
func (e *Engine) Dir() string { return e.dir }

// Catalog exposes the metadata root.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Locks exposes the lock manager (used by the PMV layer for the
// Section 3.6 S/X protocol).
func (e *Engine) Locks() *lock.Manager { return e.locks }

// Pool exposes the buffer pool for statistics.
func (e *Engine) Pool() *buffer.Pool { return e.pool }

// IOStats returns cumulative physical reads and writes.
func (e *Engine) IOStats() (reads, writes int64) { return e.mgr.Stats.Snapshot() }

// FS returns the filesystem all persistence flows through (the
// metadata files of higher layers should use it too, so fault
// injection covers them).
func (e *Engine) FS() vfs.FS { return e.mgr.FS() }

// DataStamp identifies the base data's mutation state: the WAL
// operation sequence number. With WAL enabled it advances on every
// logged statement (and is restored across restarts), so equal stamps
// mean no base-relation change happened in between. With WAL disabled
// it is always zero — callers that compare stamps across restarts get
// a trivially-true match and must rely on coarser checks.
func (e *Engine) DataStamp() uint64 { return e.opSeq.Load() }

// Stats returns a snapshot of the robustness counters.
func (e *Engine) Stats() Stats {
	return Stats{
		LockRetries:     e.lockRetries.Load(),
		LockTimeouts:    e.lockTimeouts.Load(),
		DegradedQueries: e.degraded.Load(),
		TornPageRepairs: e.mgr.Stats.Repairs.Load(),
	}
}

// NoteDegraded records one query answered in degraded mode (the PMV
// layer calls this when it bypasses the view after a lock timeout).
func (e *Engine) NoteDegraded() { e.degraded.Add(1) }

// AcquireLock takes res for txn in mode with bounded retry: a timed-out
// attempt backs off (exponential with full jitter) and tries again, up
// to Options.LockAttempts attempts. Retries and exhausted acquisitions
// are counted in the engine stats; the final error still satisfies
// errors.Is(err, lock.ErrTimeout) so callers can degrade.
func (e *Engine) AcquireLock(txn uint64, res string, mode lock.Mode) error {
	var err error
	for attempt := 0; attempt < e.opts.LockAttempts; attempt++ {
		err = e.locks.Acquire(txn, res, mode, 0)
		if err == nil {
			return nil
		}
		if !errors.Is(err, lock.ErrTimeout) {
			return err
		}
		if attempt < e.opts.LockAttempts-1 {
			e.lockRetries.Add(1)
			sleep := e.opts.LockRetryBackoff << uint(attempt)
			sleep += time.Duration(rand.Int63n(int64(sleep) + 1))
			time.Sleep(sleep)
		}
	}
	e.lockTimeouts.Add(1)
	return err
}

// NewTxnID allocates a transaction identifier for the lock manager.
func (e *Engine) NewTxnID() uint64 { return e.nextTxn.Add(1) }

// RegisterObserver adds a change observer.
func (e *Engine) RegisterObserver(obs ChangeObserver) {
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	e.observers = append(e.observers, obs)
}

// UnregisterObserver removes a previously registered observer (used
// when a view is dropped).
func (e *Engine) UnregisterObserver(obs ChangeObserver) {
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	for i, o := range e.observers {
		if o == obs {
			e.observers = append(e.observers[:i], e.observers[i+1:]...)
			return
		}
	}
}

func (e *Engine) eachObserver(fn func(ChangeObserver) error) error {
	e.obsMu.RLock()
	obs := e.observers
	e.obsMu.RUnlock()
	for _, o := range obs {
		if err := fn(o); err != nil {
			return err
		}
	}
	return nil
}

// CreateRelation defines a relation.
func (e *Engine) CreateRelation(name string, schema catalog.Schema) (*catalog.Relation, error) {
	return e.cat.CreateRelation(name, schema)
}

// CreateIndex builds a secondary index named rel_col1_col2... if name
// is empty.
func (e *Engine) CreateIndex(name, rel string, cols ...string) (*catalog.Index, error) {
	if name == "" {
		name = rel
		for _, c := range cols {
			name += "_" + c
		}
	}
	return e.cat.CreateIndex(name, rel, cols...)
}

// Insert adds t to rel, maintains its indexes, and notifies observers.
func (e *Engine) Insert(rel string, t value.Tuple) error {
	e.chkMu.RLock()
	defer e.chkMu.RUnlock()
	r, err := e.cat.GetRelation(rel)
	if err != nil {
		return err
	}
	if len(t) != r.Schema.Arity() {
		return fmt.Errorf("engine: insert into %s: got %d values, want %d", rel, len(t), r.Schema.Arity())
	}
	rid, err := e.heapInsert(rel, r, t)
	if err != nil {
		return err
	}
	for _, ix := range r.Indexes {
		if err := ix.Insert(t, rid); err != nil {
			return fmt.Errorf("engine: index %s: %w", ix.Name, err)
		}
	}
	return e.eachObserver(func(o ChangeObserver) error { return o.OnInsert(rel, t) })
}

// heapInsert routes through the WAL when enabled.
func (e *Engine) heapInsert(rel string, r *catalog.Relation, t value.Tuple) (storage.RID, error) {
	if e.wal != nil {
		return e.walInsert(rel, r.Heap, t)
	}
	return r.Heap.Insert(t)
}

// InsertBulk loads many tuples without per-row observer dispatch
// overhead (observers are still notified once per tuple, but the
// relation lookup is amortized). Used by the data generators.
func (e *Engine) InsertBulk(rel string, tuples []value.Tuple, notify bool) error {
	e.chkMu.RLock()
	defer e.chkMu.RUnlock()
	r, err := e.cat.GetRelation(rel)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		rid, err := e.heapInsert(rel, r, t)
		if err != nil {
			return err
		}
		for _, ix := range r.Indexes {
			if err := ix.Insert(t, rid); err != nil {
				return fmt.Errorf("engine: index %s: %w", ix.Name, err)
			}
		}
		if notify {
			if err := e.eachObserver(func(o ChangeObserver) error { return o.OnInsert(rel, t) }); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeleteWhere removes every tuple of rel satisfying pred, returning the
// deleted tuples. Observers are notified per tuple after removal.
func (e *Engine) DeleteWhere(rel string, pred func(value.Tuple) bool) ([]value.Tuple, error) {
	return e.DeleteWhereCtx(context.Background(), rel, pred)
}

// DeleteWhereCtx is DeleteWhere carrying a context: observers that
// implement CtxChangeObserver receive it, so a trace attached with
// obs.WithTrace records the statement's maintenance purge work.
func (e *Engine) DeleteWhereCtx(ctx context.Context, rel string, pred func(value.Tuple) bool) ([]value.Tuple, error) {
	e.chkMu.RLock()
	defer e.chkMu.RUnlock()
	r, err := e.cat.GetRelation(rel)
	if err != nil {
		return nil, err
	}
	// The barrier comes BEFORE the victim scan: scanning first would
	// let a concurrent statement commit between scan and apply, and the
	// observers would then be notified with stale pre-images — view
	// maintenance would purge the wrong cache keys and leave stale
	// entries behind.
	release, err := e.changeBarrier(rel)
	if err != nil {
		return nil, err
	}
	defer release()
	type victim struct {
		rid storage.RID
		t   value.Tuple
	}
	var victims []victim
	err = r.Heap.Scan(func(rid storage.RID, t value.Tuple) error {
		if pred(t) {
			victims = append(victims, victim{rid, t})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	deleted := make([]value.Tuple, 0, len(victims))
	for _, v := range victims {
		var err error
		if e.wal != nil {
			err = e.walDelete(rel, r.Heap, v.rid)
		} else {
			err = r.Heap.Delete(v.rid)
		}
		if err != nil {
			return deleted, err
		}
		for _, ix := range r.Indexes {
			if err := ix.Delete(v.t, v.rid); err != nil {
				return deleted, fmt.Errorf("engine: index %s: %w", ix.Name, err)
			}
		}
		deleted = append(deleted, v.t)
		if err := e.eachObserver(func(o ChangeObserver) error {
			if co, ok := o.(CtxChangeObserver); ok {
				return co.OnDeleteCtx(ctx, rel, v.t)
			}
			return o.OnDelete(rel, v.t)
		}); err != nil {
			return deleted, err
		}
	}
	return deleted, nil
}

// UpdateWhere replaces tuples satisfying pred with apply(t), returning
// the number updated.
func (e *Engine) UpdateWhere(rel string, pred func(value.Tuple) bool, apply func(value.Tuple) value.Tuple) (int, error) {
	return e.UpdateWhereCtx(context.Background(), rel, pred, apply)
}

// UpdateWhereCtx is UpdateWhere carrying a context for trace-aware
// observers (see DeleteWhereCtx).
func (e *Engine) UpdateWhereCtx(ctx context.Context, rel string, pred func(value.Tuple) bool, apply func(value.Tuple) value.Tuple) (int, error) {
	e.chkMu.RLock()
	defer e.chkMu.RUnlock()
	r, err := e.cat.GetRelation(rel)
	if err != nil {
		return 0, err
	}
	// Barrier before the scan — see DeleteWhereCtx: a scan-time
	// snapshot taken outside the barrier can go stale under a
	// concurrent statement, feeding observers wrong pre-images.
	release, err := e.changeBarrier(rel)
	if err != nil {
		return 0, err
	}
	defer release()
	type hit struct {
		rid storage.RID
		t   value.Tuple
	}
	var hits []hit
	err = r.Heap.Scan(func(rid storage.RID, t value.Tuple) error {
		if pred(t) {
			hits = append(hits, hit{rid, t.Clone()})
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for i, h := range hits {
		newT := apply(h.t.Clone())
		if len(newT) != r.Schema.Arity() {
			return i, fmt.Errorf("engine: update of %s produced %d values, want %d", rel, len(newT), r.Schema.Arity())
		}
		var newRID storage.RID
		if e.wal != nil {
			newRID, err = e.walUpdate(rel, r.Heap, h.rid, newT)
		} else {
			newRID, err = r.Heap.Update(h.rid, newT)
		}
		if err != nil {
			return i, err
		}
		for _, ix := range r.Indexes {
			if err := ix.Delete(h.t, h.rid); err != nil {
				return i, fmt.Errorf("engine: index %s: %w", ix.Name, err)
			}
			if err := ix.Insert(newT, newRID); err != nil {
				return i, fmt.Errorf("engine: index %s: %w", ix.Name, err)
			}
		}
		if err := e.eachObserver(func(o ChangeObserver) error {
			if co, ok := o.(CtxChangeObserver); ok {
				return co.OnUpdateCtx(ctx, rel, h.t, newT)
			}
			return o.OnUpdate(rel, h.t, newT)
		}); err != nil {
			return i, err
		}
	}
	return len(hits), nil
}

// Analyze recomputes optimizer statistics for one relation.
func (e *Engine) Analyze(rel string) error {
	_, err := e.cat.Analyze(rel)
	return err
}

// AnalyzeAll recomputes optimizer statistics for every relation, like
// the paper's "statistics collection program" run before experiments.
func (e *Engine) AnalyzeAll() error { return e.cat.AnalyzeAll() }

// Plan compiles a bound template query.
func (e *Engine) Plan(q *expr.Query) (*exec.Plan, error) {
	return exec.PlanQuery(e.cat, q)
}

// Execute runs q and streams the full concatenated rows to fn. The
// expanded select list of the PMV layer (Ls′) is applied by the caller.
func (e *Engine) Execute(q *expr.Query, fn func(value.Tuple) error) error {
	return e.ExecuteCtx(context.Background(), q, fn)
}

// ExecuteCtx is Execute with cancellation: the plan is wrapped in an
// exec.Guard so a cancelled or deadline-expired ctx aborts between
// rows with ctx.Err().
func (e *Engine) ExecuteCtx(ctx context.Context, q *expr.Query, fn func(value.Tuple) error) error {
	plan, err := e.Plan(q)
	if err != nil {
		return err
	}
	return exec.ForEach(guarded(ctx, plan.Root), fn)
}

// ExecuteProject runs q projecting the given column refs.
func (e *Engine) ExecuteProject(q *expr.Query, cols []expr.ColumnRef, fn func(value.Tuple) error) error {
	return e.ExecuteProjectCtx(context.Background(), q, cols, fn)
}

// ExecuteProjectCtx is ExecuteProject with cancellation, the seam the
// service layer uses to enforce per-query deadlines: when ctx expires
// mid-plan the iterator chain stops and ctx.Err() propagates up, so
// the PMV layer can return the partial results it already delivered.
// A trace attached with obs.WithTrace gets a plan span (optimizer
// time) and an exec span counting the rows the plan produced.
func (e *Engine) ExecuteProjectCtx(ctx context.Context, q *expr.Query, cols []expr.ColumnRef, fn func(value.Tuple) error) error {
	tr := obs.FromContext(ctx)
	var planStart time.Time
	if tr != nil {
		planStart = time.Now()
	}
	plan, err := e.Plan(q)
	if err != nil {
		return err
	}
	tr.Span(obs.KindPlan, planStart, 0, 0, 0)
	positions := make([]int, len(cols))
	for i, c := range cols {
		p, err := plan.Schema.MustIndex(c)
		if err != nil {
			return err
		}
		positions[i] = p
	}
	root := guarded(ctx, plan.Root)
	var tally *exec.Tally
	if tr != nil {
		tally = &exec.Tally{Child: root}
		root = tally
	}
	proj := &exec.Project{Child: root, Cols: positions}
	var execStart time.Time
	if tr != nil {
		execStart = time.Now()
	}
	err = exec.ForEach(proj, fn)
	if tally != nil {
		tr.Span(obs.KindExec, execStart, tally.N, 0, 0)
	}
	return err
}

// guarded wraps root with a cancellation Guard unless ctx can never be
// cancelled (context.Background and friends), keeping the uncancellable
// hot path check-free.
func guarded(ctx context.Context, root exec.Iterator) exec.Iterator {
	if ctx == nil || ctx.Done() == nil {
		return root
	}
	return &exec.Guard{Child: root, Check: ctx.Err}
}

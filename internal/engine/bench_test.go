package engine

import (
	"testing"

	"pmv/internal/catalog"
	"pmv/internal/value"
)

func benchEngine(b *testing.B, opts Options) *Engine {
	b.Helper()
	e, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	if _, err := e.CreateRelation("kv", catalog.NewSchema(
		catalog.Col("k", value.TypeInt), catalog.Col("v", value.TypeString))); err != nil {
		b.Fatal(err)
	}
	if _, err := e.CreateIndex("", "kv", "k"); err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkInsertNoWAL(b *testing.B) {
	e := benchEngine(b, Options{BufferPoolPages: 256})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Insert("kv", value.Tuple{value.Int(int64(i)), value.Str("payload-payload")}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertWALBuffered(b *testing.B) {
	e := benchEngine(b, Options{BufferPoolPages: 256, EnableWAL: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Insert("kv", value.Tuple{value.Int(int64(i)), value.Str("payload-payload")}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertWALSyncEveryOp(b *testing.B) {
	e := benchEngine(b, Options{BufferPoolPages: 256, EnableWAL: true, SyncEveryOp: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Insert("kv", value.Tuple{value.Int(int64(i)), value.Str("payload-payload")}); err != nil {
			b.Fatal(err)
		}
	}
}
